// Benchmarks that regenerate every table and figure of the reproduction
// (see DESIGN.md's experiment index). Each benchmark prints its artifact
// or measurement table once, so `go test -bench=. -benchmem` output is a
// complete experiment report; quality benches additionally report MAP/MRR
// as custom benchmark metrics.
//
// The figure/table artifacts are cheap and benchmarked at the default
// scale; the measured experiments run at a reduced scale (300 films, 30
// queries) so the whole suite stays in CPU-minutes. cmd/pivote-eval runs
// the committed EXPERIMENTS.md configuration (scale 1000, 100 queries).
package pivote_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"pivote/internal/eval"
)

// benchEnv is the shared environment for the measured experiments.
var (
	benchEnvOnce sync.Once
	benchEnv     *eval.Env
)

func getBenchEnv() *eval.Env {
	benchEnvOnce.Do(func() { benchEnv = eval.NewEnv(300, 42) })
	return benchEnv
}

func benchConfig() eval.Config {
	return eval.Config{Scale: 300, Seed: 42, Queries: 30, SeedsPerQuery: 3, MinConcept: 6, MaxConcept: 120, TopK: 100}
}

// printOnce prints each experiment's rendering a single time per process.
var printedExperiments sync.Map

func printOnce(id, text string) {
	if _, loaded := printedExperiments.LoadOrStore(id, true); !loaded {
		fmt.Println(text)
	}
}

// cell parses a numeric table cell, for ReportMetric.
func cell(t eval.Table, row, col int) float64 {
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkTable1FiveFieldRepresentation(b *testing.B) {
	env := getBenchEnv()
	b.ReportAllocs()
	var a eval.Artifact
	for i := 0; i < b.N; i++ {
		a = eval.RunT1(env)
	}
	printOnce("T1", a.Text)
}

func BenchmarkFigure1aNeighborhood(b *testing.B) {
	env := getBenchEnv()
	b.ReportAllocs()
	var a eval.Artifact
	for i := 0; i < b.N; i++ {
		a = eval.RunF1a(env)
	}
	printOnce("F1a", a.Text)
}

func BenchmarkFigure1bTypeView(b *testing.B) {
	env := getBenchEnv()
	b.ReportAllocs()
	var a eval.Artifact
	for i := 0; i < b.N; i++ {
		a = eval.RunF1b(env)
	}
	printOnce("F1b", a.Text)
}

func BenchmarkFigure2Architecture(b *testing.B) {
	b.ReportAllocs()
	var a eval.Artifact
	for i := 0; i < b.N; i++ {
		a = eval.RunF2()
	}
	printOnce("F2", a.Text)
}

func BenchmarkFigure3InterfaceState(b *testing.B) {
	env := getBenchEnv()
	b.ReportAllocs()
	var a eval.Artifact
	for i := 0; i < b.N; i++ {
		a = eval.RunF3(env)
	}
	printOnce("F3", a.Text)
}

func BenchmarkFigure4ExploratoryPath(b *testing.B) {
	env := getBenchEnv()
	b.ReportAllocs()
	var a eval.Artifact
	for i := 0; i < b.N; i++ {
		a = eval.RunF4(env)
	}
	printOnce("F4", a.Text)
}

func BenchmarkE5ExpansionQuality(b *testing.B) {
	env := getBenchEnv()
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunE5(env, benchConfig())
	}
	printOnce("E5", t.Render())
	b.ReportMetric(cell(t, 0, 1), "PivotE-MAP")
	b.ReportMetric(cell(t, 1, 1), "CommonNbr-MAP")
}

func BenchmarkE6SeedSweep(b *testing.B) {
	env := getBenchEnv()
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunE6(env, benchConfig())
	}
	printOnce("E6", t.Render())
	b.ReportMetric(cell(t, 0, 1), "MAP@m=1")
	b.ReportMetric(cell(t, 2, 1), "MAP@m=3")
}

func BenchmarkE7RetrievalQuality(b *testing.B) {
	env := getBenchEnv()
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunE7(env, benchConfig())
	}
	printOnce("E7", t.Render())
	b.ReportMetric(cell(t, 0, 1), "MLM-MRR")
	b.ReportMetric(cell(t, 2, 1), "LMnames-MRR")
}

func BenchmarkE8LatencySweep(b *testing.B) {
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunE8(benchConfig(), []int{300, 1000}, 10)
	}
	printOnce("E8", t.Render())
}

func BenchmarkE9SFScalability(b *testing.B) {
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunE9(benchConfig(), []int{300, 1000})
	}
	printOnce("E9", t.Render())
}

func BenchmarkE10RetrievalLatency(b *testing.B) {
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunE10(benchConfig(), []int{300, 1000}, 30)
	}
	printOnce("E10", t.Render())
}

func BenchmarkA1ErrorTolerantAblation(b *testing.B) {
	env := getBenchEnv()
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunA1(env, benchConfig())
	}
	printOnce("A1", t.Render())
	b.ReportMetric(cell(t, 0, 3), "tolerant-R50")
	b.ReportMetric(cell(t, 1, 3), "strict-R50")
}

func BenchmarkA2DiscriminabilityAblation(b *testing.B) {
	env := getBenchEnv()
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunA2(env, benchConfig())
	}
	printOnce("A2", t.Render())
	b.ReportMetric(cell(t, 0, 1), "idf-MAP")
	b.ReportMetric(cell(t, 1, 1), "uniform-MAP")
}

func BenchmarkA3FieldWeightAblation(b *testing.B) {
	env := getBenchEnv()
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunA3(env, benchConfig())
	}
	printOnce("A3", t.Render())
	b.ReportMetric(cell(t, 0, 1), "tuned-MRR")
	b.ReportMetric(cell(t, 1, 1), "uniform-MRR")
}

func BenchmarkA4HeatmapQuantizationAblation(b *testing.B) {
	env := getBenchEnv()
	var t eval.Table
	for i := 0; i < b.N; i++ {
		t = eval.RunA4(env, benchConfig())
	}
	printOnce("A4", t.Render())
	b.ReportMetric(cell(t, 0, 1), "quantile-levels")
	b.ReportMetric(cell(t, 1, 1), "linear-levels")
}
