// Quickstart: generate a synthetic knowledge graph, run a keyword query,
// investigate similar entities, and print the assembled interface state.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pivote"
)

func main() {
	// A deterministic DBpedia-like KG: ~1000 films plus actors,
	// directors, studios, genres... The paper's running examples
	// (Forrest_Gump, Tom_Hanks, ...) are embedded at every scale.
	g := pivote.GenerateDemo(1000, 42)
	fmt.Printf("knowledge graph: %d entities, %d triples\n\n",
		len(g.Entities()), g.Store().Len())

	eng := pivote.New(g, pivote.Options{TopEntities: 10, TopFeatures: 8})
	ctx := context.Background()

	// 1. Keyword search (the query area, Fig. 3-a). Every interaction is
	// an op applied through the engine's single protocol entry point.
	res, err := eng.Apply(ctx, pivote.OpSubmit("forrest gump"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top hit for %q: %s\n", "forrest gump", res.Entities[0].Name)

	// 2. Investigation: use the top hit as an example entity — "find
	// films similar to Forrest Gump".
	res, err = eng.Apply(ctx, pivote.OpAddSeed(res.Entities[0].Entity))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfilms similar to Forrest Gump:")
	for i, e := range res.Entities {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-30s %.5f\n", i+1, e.Name, e.Score)
	}

	// 3. The recommended semantic features are the exploration pointers.
	fmt.Println("\nrecommended semantic features:")
	for i, f := range res.Features {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-34s r=%.5f |E|=%d\n", i+1, f.Label, f.R, f.ExtentSize)
	}

	// 4. The full workspace, including the 7-level heat map.
	fmt.Println()
	fmt.Print(res.RenderASCII())
}
