// Search engine: the five-field entity representation of Table 1 and a
// comparison of the paper's mixture-of-language-models retrieval with
// the BM25F and names-only baselines — including an alias query that
// only the multi-fielded representation can answer.
//
//	go run ./examples/search_engine
package main

import (
	"fmt"

	"pivote"
	"pivote/internal/search"
)

func main() {
	g := pivote.GenerateDemo(1000, 42)

	// Table 1: the five-field representation of Forrest_Gump.
	ff := search.FiveFieldsOf(g, g.EntityByName("Forrest_Gump"))
	fmt.Print(ff.Render("Forrest_Gump"))

	eng := search.NewEngine(g)
	queries := []string{
		"forrest gump",   // exact name
		"tom hanks",      // person + his films via the related field
		"geenbow",        // redirect alias (Table 1) — needs the similar field
		"american drama", // category + attribute terms
	}
	models := []pivote.SearchModel{pivote.ModelMLM, pivote.ModelBM25F, pivote.ModelLMNames}

	for _, q := range queries {
		fmt.Printf("\nquery: %q\n", q)
		for _, m := range models {
			hits := eng.Search(q, 3, m)
			fmt.Printf("  %-10s", m)
			if len(hits) == 0 {
				fmt.Print("  (no hits)")
			}
			for _, h := range hits {
				fmt.Printf("  %s (%.3f)", h.Name, h.Score)
			}
			fmt.Println()
		}
	}
}
