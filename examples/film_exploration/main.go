// Film exploration: the paper's §3.1 scenario. Express "find films
// starring Tom Hanks" by pinning the semantic feature
// Tom_Hanks:starring, then narrow with a second condition, then switch to
// investigation by example — and read the heat map that explains the
// recommendations.
//
//	go run ./examples/film_exploration
package main

import (
	"context"
	"fmt"
	"log"

	"pivote"
)

func main() {
	g := pivote.GenerateDemo(1000, 42)
	eng := pivote.New(g, pivote.Options{TopEntities: 10, TopFeatures: 8})
	ctx := context.Background()
	apply := func(op pivote.Op) *pivote.Result {
		res, err := eng.Apply(ctx, op)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// "Find films starring Tom Hanks" — a semantic-feature condition.
	th, err := pivote.ParseFeature(g, "Tom_Hanks:starring")
	if err != nil {
		log.Fatal(err)
	}
	res := apply(pivote.OpAddFeature(th))
	fmt.Println("films starring Tom Hanks:")
	for _, e := range res.Entities {
		fmt.Printf("  %-28s %.5f\n", e.Name, e.Score)
	}

	// Narrow: also directed by Robert Zemeckis (conjunctive conditions).
	rz, err := pivote.ParseFeature(g, "Robert_Zemeckis:director")
	if err != nil {
		log.Fatal(err)
	}
	res = apply(pivote.OpAddFeature(rz))
	fmt.Println("\n... and directed by Robert Zemeckis:")
	for _, e := range res.Entities {
		fmt.Printf("  %-28s %.5f\n", e.Name, e.Score)
	}

	// Switch to investigation: drop the conditions, use Forrest Gump as
	// an example ("find films similar to Forrest Gump", §3.1).
	apply(pivote.OpRemoveFeature(rz))
	apply(pivote.OpRemoveFeature(th))
	res = apply(pivote.OpAddSeed(g.EntityByName("Forrest_Gump")))
	fmt.Println("\nfilms similar to Forrest Gump, with explanation heat map:")
	fmt.Print(res.Heat.ASCII())

	// The explanation of one cell, as in the paper: why does Apollo 13
	// correlate with Tom_Hanks:starring?
	for i, f := range res.Heat.Features {
		for j, e := range res.Heat.Entities {
			if f.Label == "Tom_Hanks:starring" && e.Name == "Apollo 13" {
				fmt.Printf("\nexplanation: %s\n", res.Heat.CellExplanation(eng.Features(), i, j))
			}
		}
	}

	// An entity profile (the presentation area, Fig. 3-d).
	fmt.Println()
	fmt.Print(eng.Lookup(g.EntityByName("Forrest_Gump")).Render())
}
