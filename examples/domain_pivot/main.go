// Domain pivot: the paper's §3.2 scenario. Start in the Film domain,
// pivot into the Actor domain through Tom Hanks, pivot again into the
// Director domain through Robert Zemeckis, then revisit the original
// query — and export the exploratory path (Fig. 4) as DOT.
//
//	go run ./examples/domain_pivot
package main

import (
	"context"
	"fmt"
	"log"

	"pivote"
)

func main() {
	g := pivote.GenerateDemo(1000, 42)
	eng := pivote.New(g, pivote.Options{TopEntities: 8, TopFeatures: 6})
	ctx := context.Background()
	apply := func(op pivote.Op) *pivote.Result {
		res, err := eng.Apply(ctx, op)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Step 1: start a session in the Film domain.
	res := apply(pivote.OpSubmit("forrest gump"))
	fmt.Printf("step 1 — keyword query, top hit: %s\n", res.Entities[0].Name)

	// Step 2: investigate similar films.
	res = apply(pivote.OpAddSeed(g.EntityByName("Forrest_Gump")))
	fmt.Println("step 2 — similar films:")
	for i, e := range res.Entities {
		if i >= 4 {
			break
		}
		fmt.Printf("    %s\n", e.Name)
	}

	// Step 3: pivot into the Actor domain through Tom Hanks. The x-axis
	// now holds actors similar to him (co-occurrence in films).
	res = apply(pivote.OpPivot(g.EntityByName("Tom_Hanks")))
	fmt.Println("step 3 — pivot to Actor domain, actors similar to Tom Hanks:")
	for i, e := range res.Entities {
		if i >= 4 {
			break
		}
		fmt.Printf("    %s\n", e.Name)
	}

	// Step 4: pivot again, into the Director domain.
	res = apply(pivote.OpPivot(g.EntityByName("Robert_Zemeckis")))
	fmt.Println("step 4 — pivot to Director domain, directors similar to Robert Zemeckis:")
	for i, e := range res.Entities {
		if i >= 4 {
			break
		}
		fmt.Printf("    %s\n", e.Name)
	}

	// Step 5: revisit the original query from the timeline.
	apply(pivote.OpRevisit(1))
	fmt.Println("step 5 — revisited the original query")

	// The session IS its op log: replaying it on a fresh engine under a
	// single batch reproduces the state (this is what POST /api/v1/ops
	// does over HTTP).
	replay := pivote.New(g, pivote.Options{TopEntities: 8, TopFeatures: 6})
	if _, _, err := replay.ApplyOps(ctx, eng.Ops(), pivote.FieldsAll); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d ops onto a fresh engine: %q\n",
		len(eng.Ops()), replay.Session().Current().Keywords)

	// The exploratory path of Fig. 4.
	fmt.Println()
	fmt.Print(eng.Session().PathASCII())
	fmt.Println("\nGraphviz DOT of the path:")
	fmt.Print(eng.Session().PathDOT())
}
