// Domain pivot: the paper's §3.2 scenario. Start in the Film domain,
// pivot into the Actor domain through Tom Hanks, pivot again into the
// Director domain through Robert Zemeckis, then revisit the original
// query — and export the exploratory path (Fig. 4) as DOT.
//
//	go run ./examples/domain_pivot
package main

import (
	"fmt"
	"log"

	"pivote"
)

func main() {
	g := pivote.GenerateDemo(1000, 42)
	eng := pivote.New(g, pivote.Options{TopEntities: 8, TopFeatures: 6})

	// Step 1: start a session in the Film domain.
	res := eng.Submit("forrest gump")
	fmt.Printf("step 1 — keyword query, top hit: %s\n", res.Entities[0].Name)

	// Step 2: investigate similar films.
	res = eng.AddSeed(g.EntityByName("Forrest_Gump"))
	fmt.Println("step 2 — similar films:")
	for i, e := range res.Entities {
		if i >= 4 {
			break
		}
		fmt.Printf("    %s\n", e.Name)
	}

	// Step 3: pivot into the Actor domain through Tom Hanks. The x-axis
	// now holds actors similar to him (co-occurrence in films).
	res = eng.Pivot(g.EntityByName("Tom_Hanks"))
	fmt.Println("step 3 — pivot to Actor domain, actors similar to Tom Hanks:")
	for i, e := range res.Entities {
		if i >= 4 {
			break
		}
		fmt.Printf("    %s\n", e.Name)
	}

	// Step 4: pivot again, into the Director domain.
	res = eng.Pivot(g.EntityByName("Robert_Zemeckis"))
	fmt.Println("step 4 — pivot to Director domain, directors similar to Robert Zemeckis:")
	for i, e := range res.Entities {
		if i >= 4 {
			break
		}
		fmt.Printf("    %s\n", e.Name)
	}

	// Step 5: revisit the original query from the timeline.
	if _, err := eng.Revisit(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("step 5 — revisited the original query")

	// The exploratory path of Fig. 4.
	fmt.Println()
	fmt.Print(eng.Session().PathASCII())
	fmt.Println("\nGraphviz DOT of the path:")
	fmt.Print(eng.Session().PathDOT())
}
