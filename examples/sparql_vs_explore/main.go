// SPARQL vs. exploration: the paper's motivating contrast. Structured
// queries (basic graph patterns) answer precisely — but only if you
// already know the schema and the exact entities. PivotE's exploration
// reaches the same answers from a keyword and a few clicks, revealing
// the schema (semantic features, coupled types) along the way.
//
//	go run ./examples/sparql_vs_explore
package main

import (
	"context"
	"fmt"
	"log"

	"pivote"
)

func main() {
	g := pivote.GenerateDemo(1000, 42)

	// --- The structured way: you must know predicate names, directions
	// and exact entity identifiers up front.
	fmt.Println("SPARQL-style access (schema knowledge required):")
	q, err := pivote.ParseBGP(g, `
		SELECT ?film WHERE {
			?film starring Tom_Hanks .
			?film director Robert_Zemeckis
		}`)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := pivote.ExecuteBGP(g, q)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range rows {
		fmt.Printf("  %s\n", g.Name(row["film"]))
	}

	// A second structured query: co-stars of Tom Hanks.
	q2, err := pivote.ParseBGP(g, `
		SELECT DISTINCT ?costar WHERE {
			?film starring Tom_Hanks .
			?film starring ?costar
		} LIMIT 8`)
	if err != nil {
		log.Fatal(err)
	}
	rows2, err := pivote.ExecuteBGP(g, q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  distinct co-stars (first 8):")
	for _, row := range rows2 {
		fmt.Printf("  %s\n", g.Name(row["costar"]))
	}

	// --- The exploratory way: no schema knowledge. Type a keyword; the
	// recommended semantic features ARE the schema, discovered on the
	// fly; clicking replaces query writing.
	fmt.Println("\nPivotE exploration (schema discovered on the fly):")
	eng := pivote.New(g, pivote.Options{TopEntities: 8, TopFeatures: 6})
	ctx := context.Background()
	res, err := eng.Apply(ctx, pivote.OpSubmit("forrest gump"))
	if err != nil {
		log.Fatal(err)
	}
	res, err = eng.Apply(ctx, pivote.OpAddSeed(res.Entities[0].Entity))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  after one keyword + one click, the system reveals these directions:")
	for _, f := range res.Features {
		fmt.Printf("    %-34s (reaches %d entities)\n", f.Label, f.ExtentSize)
	}

	// Clicking the Tom_Hanks:starring feature expresses the first SPARQL
	// query's intent — without knowing that "starring" exists.
	thFeature, err := pivote.ParseFeature(g, "Tom_Hanks:starring")
	if err != nil {
		log.Fatal(err)
	}
	res, err = eng.Apply(ctx, pivote.OpAddFeature(thFeature))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n  pinning Tom_Hanks:starring gives the films:")
	for _, e := range res.Entities {
		fmt.Printf("    %s\n", e.Name)
	}
	fmt.Println("\n  ...and the session kept the whole path for revisiting:")
	fmt.Print(indent(eng.Session().PathASCII(), "  "))
}

func indent(s, prefix string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += prefix + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
