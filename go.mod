module pivote

go 1.24
