package pivote_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pivote"
)

// TestFullSystemIntegration drives every subsystem through the public
// API in one scenario: generate → snapshot round-trip → keyword search →
// investigation → feature condition → BGP cross-check → pivot → session
// save/restore across graph rebuilds.
func TestFullSystemIntegration(t *testing.T) {
	g := pivote.GenerateDemo(300, 11)

	// Snapshot round trip through a file.
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "graph.snap")
	f, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := pivote.SaveSnapshot(g, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := pivote.LoadGraphFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Entities()) != len(g.Entities()) {
		t.Fatalf("snapshot lost entities: %d vs %d", len(g2.Entities()), len(g.Entities()))
	}

	// Work entirely on the reloaded graph from here.
	eng := pivote.New(g2, pivote.Options{TopEntities: 10, TopFeatures: 8})
	res := eng.Submit("forrest gump")
	if res.Entities[0].Name != "Forrest Gump" {
		t.Fatalf("top hit %q", res.Entities[0].Name)
	}
	res = eng.AddSeed(res.Entities[0].Entity)
	if len(res.Entities) == 0 {
		t.Fatal("investigation empty")
	}

	// Feature condition, cross-checked against the BGP engine: the same
	// semantics expressed two ways must agree on the result set.
	th, err := pivote.ParseFeature(g2, "Tom_Hanks:starring")
	if err != nil {
		t.Fatal(err)
	}
	eng.RemoveSeed(res.Query.Seeds[0])
	res = eng.AddFeature(th)
	q, err := pivote.ParseBGP(g2, `SELECT ?film WHERE { ?film starring Tom_Hanks }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pivote.ExecuteBGP(g2, q)
	if err != nil {
		t.Fatal(err)
	}
	bgpFilms := map[pivote.EntityID]bool{}
	for _, row := range rows {
		bgpFilms[row["film"]] = true
	}
	if len(res.Entities) != len(bgpFilms) {
		t.Fatalf("engine found %d films, BGP %d", len(res.Entities), len(bgpFilms))
	}
	for _, e := range res.Entities {
		if !bgpFilms[e.Entity] {
			t.Fatalf("engine result %s not confirmed by BGP", e.Name)
		}
	}

	// Pivot, then persist the session and restore it on a THIRD graph
	// instance (fresh term IDs) — symbolic references must re-resolve.
	eng.Pivot(g2.EntityByName("Tom_Hanks"))
	saved, err := eng.SaveSession()
	if err != nil {
		t.Fatal(err)
	}
	g3 := pivote.GenerateDemo(300, 11)
	eng3 := pivote.New(g3, pivote.Options{TopEntities: 10, TopFeatures: 8})
	restored, err := eng3.LoadSession(saved)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Query.Seeds) != 1 {
		t.Fatalf("restored query %+v", restored.Query)
	}
	if g3.Name(restored.Query.Seeds[0]) != "Tom Hanks" {
		t.Fatalf("restored seed = %s", g3.Name(restored.Query.Seeds[0]))
	}
	// The restored timeline supports revisiting the original query.
	if _, err := eng3.Revisit(1); err != nil {
		t.Fatal(err)
	}
	got := eng3.Evaluate()
	if got.Query.Keywords != "forrest gump" {
		t.Fatalf("revisited keywords %q", got.Query.Keywords)
	}
}

// TestSnapshotAndNTriplesAgree loads the same graph both ways and checks
// the engines rank identically.
func TestSnapshotAndNTriplesAgree(t *testing.T) {
	g := pivote.GenerateDemo(150, 3)
	var nt, snap bytes.Buffer
	if err := pivote.SaveNTriples(g, &nt); err != nil {
		t.Fatal(err)
	}
	if err := pivote.SaveSnapshot(g, &snap); err != nil {
		t.Fatal(err)
	}
	gNT, err := pivote.LoadNTriples(&nt)
	if err != nil {
		t.Fatal(err)
	}
	gSnap, err := pivote.LoadSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{"forrest gump", "tom hanks", "drama"} {
		a := pivote.New(gNT, pivote.Options{}).Submit(query)
		b := pivote.New(gSnap, pivote.Options{}).Submit(query)
		if len(a.Entities) != len(b.Entities) {
			t.Fatalf("%q: %d vs %d hits", query, len(a.Entities), len(b.Entities))
		}
		for i := range a.Entities {
			if a.Entities[i].Name != b.Entities[i].Name {
				t.Fatalf("%q: rank %d differs: %s vs %s", query, i, a.Entities[i].Name, b.Entities[i].Name)
			}
		}
	}
}
