// Command pivote-repl explores the knowledge graph from the terminal:
// the same investigate/pivot/heat-map loop as the web UI, line by line.
//
// Usage:
//
//	pivote-repl [-scale 1000] [-seed 42]
//	pivote-repl -load graph.nt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pivote"
	"pivote/internal/core"
	"pivote/internal/repl"
)

func main() {
	scale := flag.Int("scale", 1000, "synthetic KG size (films)")
	seed := flag.Int64("seed", 42, "synthetic KG seed")
	load := flag.String("load", "", "load an N-Triples file instead of generating")
	flag.Parse()

	var g *pivote.Graph
	var err error
	if *load != "" {
		g, err = pivote.LoadNTriplesFile(*load)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
	} else {
		g = pivote.GenerateDemo(*scale, *seed)
	}
	fmt.Fprintf(os.Stderr, "graph ready: %d entities, %d triples\n",
		len(g.Entities()), g.Store().Len())
	eng := core.New(g, core.Options{TopEntities: 15, TopFeatures: 10})
	if err := repl.Run(g, eng, os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
