// Command pivote runs the PivotE demo server: the web interface of the
// paper's Figure 3 backed by the JSON API.
//
// Usage:
//
//	pivote [-addr :8080] [-scale 2000] [-seed 42]          # synthetic KG
//	pivote [-addr :8080] -load graph.nt                    # real N-Triples
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"pivote"
	"pivote/internal/core"
	"pivote/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Int("scale", 2000, "synthetic KG size (films)")
	seed := flag.Int64("seed", 42, "synthetic KG seed")
	load := flag.String("load", "", "load an N-Triples file instead of generating")
	topEntities := flag.Int("entities", 20, "x-axis size")
	topFeatures := flag.Int("features", 15, "y-axis size")
	maxSessions := flag.Int("max-sessions", 64, "concurrent user sessions kept in memory")
	flag.Parse()

	var g *pivote.Graph
	var err error
	if *load != "" {
		fmt.Fprintf(os.Stderr, "loading %s ...\n", *load)
		g, err = pivote.LoadGraphFile(*load)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "generating synthetic KG (scale %d, seed %d) ...\n", *scale, *seed)
		g = pivote.GenerateDemo(*scale, *seed)
	}
	fmt.Fprintf(os.Stderr, "graph ready: %d entities, %d triples\n",
		len(g.Entities()), g.Store().Len())

	m := server.NewMulti(g, core.Options{TopEntities: *topEntities, TopFeatures: *topFeatures}, *maxSessions)
	fmt.Fprintf(os.Stderr, "PivotE listening on http://localhost%s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, m.Handler()))
}
