// Command pivote runs the PivotE demo server: the web interface of the
// paper's Figure 3 backed by the JSON API.
//
// Usage:
//
//	pivote [-addr :8080] [-scale 2000] [-seed 42]          # synthetic KG
//	pivote [-addr :8080] -load graph.nt                    # real N-Triples
//	pivote [-addr :8080] -live                             # enable live ingest
//	pivote [-addr :8080] -pprof localhost:6060             # profiling side listener
//	pivote -snapshot-dir snaps -write-snapshot             # persist a generation and exit
//	pivote [-addr :8080] -snapshot-dir snaps -restore      # mmap the newest snapshot
//
// With -live the graph accepts writes at runtime (POST /api/v1/ingest);
// a background compactor folds them into fresh generations without ever
// blocking readers. The server always shuts down gracefully: SIGINT or
// SIGTERM stops accepting connections, drains in-flight operations for
// up to -drain, then stops the compactor.
//
// With -snapshot-dir, every compaction swap under -live also persists
// the new generation as an atomic gen-<id>.pvgen file; -restore boots
// from the newest such snapshot via mmap — no graph build, no index
// build — and logs the startup time either way so the cold-start win is
// visible in ops logs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pivote"
	"pivote/internal/core"
	"pivote/internal/server"
)

func main() {
	start := time.Now()
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Int("scale", 2000, "synthetic KG size (films)")
	seed := flag.Int64("seed", 42, "synthetic KG seed")
	load := flag.String("load", "", "load an N-Triples file instead of generating")
	topEntities := flag.Int("entities", 20, "x-axis size")
	topFeatures := flag.Int("features", 15, "y-axis size")
	maxSessions := flag.Int("max-sessions", 64, "concurrent user sessions kept in memory")
	live := flag.Bool("live", false, "enable the live ingest write path (POST /api/v1/ingest)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	pprofAddr := flag.String("pprof", "", "address for a net/http/pprof side listener (e.g. localhost:6060; empty = disabled)")
	snapshotDir := flag.String("snapshot-dir", "", "directory for generation snapshots (with -live: persist every compaction swap)")
	restore := flag.Bool("restore", false, "boot from the newest snapshot in -snapshot-dir instead of building a graph")
	writeSnapshot := flag.Bool("write-snapshot", false, "write a generation snapshot to -snapshot-dir and exit")
	flag.Parse()

	if *pprofAddr != "" {
		// Profiling runs on its own listener and mux so the diagnostic
		// surface never shares a port (or a handler namespace) with user
		// traffic; hot-path regressions are then diagnosable in production
		// with the standard go tool pprof endpoints.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}

	if (*restore || *writeSnapshot) && *snapshotDir == "" {
		log.Fatal("-restore and -write-snapshot require -snapshot-dir")
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			log.Fatalf("snapshot-dir: %v", err)
		}
	}

	opts := core.Options{TopEntities: *topEntities, TopFeatures: *topFeatures}
	var sh *core.Shared
	source := "synthetic"
	if *restore {
		path, err := pivote.FindNewestSnapshot(*snapshotDir)
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		if path == "" {
			log.Fatalf("restore: no snapshot in %s", *snapshotDir)
		}
		fmt.Fprintf(os.Stderr, "restoring %s ...\n", path)
		gen, err := pivote.OpenGeneration(path)
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		fmt.Fprintf(os.Stderr, "generation %d ready: %d entities, %d triples\n",
			gen.ID, len(gen.Graph.Entities()), gen.Graph.Store().Len())
		if *live {
			sh = core.NewLiveSharedFromGeneration(gen, opts, *snapshotDir)
			fmt.Fprintln(os.Stderr, "live ingest enabled: POST /api/v1/ingest")
		} else {
			sh = core.NewSharedFromGeneration(gen, opts)
		}
		source = "snapshot"
	} else {
		var g *pivote.Graph
		var err error
		if *load != "" {
			fmt.Fprintf(os.Stderr, "loading %s ...\n", *load)
			g, err = pivote.LoadGraphFile(*load)
			if err != nil {
				log.Fatalf("load: %v", err)
			}
			source = "ntriples"
		} else {
			fmt.Fprintf(os.Stderr, "generating synthetic KG (scale %d, seed %d) ...\n", *scale, *seed)
			g = pivote.GenerateDemo(*scale, *seed)
		}
		fmt.Fprintf(os.Stderr, "graph ready: %d entities, %d triples\n",
			len(g.Entities()), g.Store().Len())
		switch {
		case *live && *snapshotDir != "":
			sh = core.NewLiveSharedWithSnapshots(g, opts, *snapshotDir)
			fmt.Fprintln(os.Stderr, "live ingest enabled: POST /api/v1/ingest")
		case *live:
			sh = core.NewLiveShared(g, opts)
			fmt.Fprintln(os.Stderr, "live ingest enabled: POST /api/v1/ingest")
		default:
			sh = core.NewShared(g, opts)
		}
	}

	if *writeSnapshot {
		gen := sh.Generation()
		path := pivote.SnapshotPath(*snapshotDir, gen.ID)
		if err := pivote.SaveGeneration(gen, path); err != nil {
			_ = sh.Close()
			log.Fatalf("write-snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		if err := sh.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
		return
	}

	m := server.NewMultiShared(sh, opts, *maxSessions)
	fmt.Fprintf(os.Stderr, "startup: %s core ready in %d ms\n",
		source, time.Since(start).Milliseconds())

	srv := &http.Server{Addr: *addr, Handler: m.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "PivotE listening on http://localhost%s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure; the compactor is still
		// running, so shut it down before exiting.
		_ = sh.Close()
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(os.Stderr, "shutting down: draining in-flight requests ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
	}
	if err := sh.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "close: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "bye")
}
