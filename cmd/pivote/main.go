// Command pivote runs the PivotE demo server: the web interface of the
// paper's Figure 3 backed by the JSON API.
//
// Usage:
//
//	pivote [-addr :8080] [-scale 2000] [-seed 42]          # synthetic KG
//	pivote [-addr :8080] -load graph.nt                    # real N-Triples
//	pivote [-addr :8080] -live                             # enable live ingest
//	pivote [-addr :8080] -pprof localhost:6060             # profiling side listener
//	pivote [-addr :8080] -metrics localhost:9090           # metrics side listener
//	pivote -snapshot-dir snaps -write-snapshot             # persist a generation and exit
//	pivote [-addr :8080] -snapshot-dir snaps -restore      # mmap the newest snapshot
//	pivote [-addr :8080] -shards 4                         # in-process sharded cluster
//	pivote [-addr :8080] -shards 4 -replicas 3 -live       # ... with 3 replicas per shard
//	pivote [-addr :8081] -shard-of 0/4                     # one shard node of a cluster
//	pivote [-addr :8081] -replica-of 0.1/4                 # replica 1 of shard 0 (of 4)
//	pivote [-addr :8080] -router http://h1:8081,http://h2:8082   # scatter-gather router
//	pivote [-addr :8080] -router 'http://h1:8081|http://h1b:9081,http://h2:8082|http://h2b:9082'
//	                                                       # ... with '|'-separated replicas
//
// With -live the graph accepts writes at runtime (POST /api/v1/ingest);
// a background compactor folds them into fresh generations without ever
// blocking readers. The server always shuts down gracefully: SIGINT or
// SIGTERM stops accepting connections, drains in-flight operations for
// up to -drain, then stops the compactor.
//
// With -snapshot-dir, every compaction swap under -live also persists
// the new generation as an atomic gen-<id>.pvgen file; -restore boots
// from the newest such snapshot via mmap — no graph build, no index
// build — and logs the startup time either way so the cold-start win is
// visible in ops logs.
//
// Sharded serving comes in three shapes. -shards N runs an in-process
// cluster (N partitioned nodes plus the router) behind one listener —
// results are byte-identical to the single-process server; -replicas M
// replicates every shard M ways (requires -live: write fan-out and
// snapshot adoption are live-path operations). -shard-of k/N runs one
// standalone shard node (hash partitioning by default, -partition
// overrides the spec); its snapshots are per-shard gen-<id>-s<k>.pvgen
// files and -restore finds those. -replica-of k.r/N is the same node
// wearing its replica identity — replica r of shard k — which matters
// for ops logs and the router's health report; give each replica its
// own -snapshot-dir, since replicas of a shard share the per-shard
// snapshot naming. -router fronts already-running shard nodes and
// serves the merged /api/v1 surface; within the comma-separated shard
// list, '|' separates the replicas of one shard, and the router
// health-routes reads across them, fans writes to all of them, and
// coordinates rolling swaps (see the README's Replication section).
//
// Router-shaped processes (-shards, -router) speak a compact binary
// codec on the hops to their shard nodes by default, negotiated per hop
// so pre-codec nodes transparently keep JSON; -codec json is the kill
// switch (see the README's Inter-node wire protocol section).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pivote"
	"pivote/internal/core"
	"pivote/internal/obs"
	"pivote/internal/server"
	"pivote/internal/shard"
)

func main() {
	start := time.Now()
	addr := flag.String("addr", ":8080", "listen address")
	scale := flag.Int("scale", 2000, "synthetic KG size (films)")
	seed := flag.Int64("seed", 42, "synthetic KG seed")
	load := flag.String("load", "", "load an N-Triples file instead of generating")
	topEntities := flag.Int("entities", 20, "x-axis size")
	topFeatures := flag.Int("features", 15, "y-axis size")
	maxSessions := flag.Int("max-sessions", 64, "concurrent user sessions kept in memory")
	live := flag.Bool("live", false, "enable the live ingest write path (POST /api/v1/ingest)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	pprofAddr := flag.String("pprof", "", "address for a net/http/pprof side listener (e.g. localhost:6060; empty = disabled)")
	metricsAddr := flag.String("metrics", "", "address for a metrics side listener serving /metrics, /api/v1/stats and /api/v1/debug/slow (empty = disabled; the main listener serves them too)")
	slowQuery := flag.Duration("slow-query", obs.DefaultSlowThreshold, "capture requests slower than this in the slow-query log (negative = disabled)")
	mutexFraction := flag.Int("mutex-profile-fraction", 0, "runtime.SetMutexProfileFraction rate for the pprof mutex profile (0 = off)")
	blockRate := flag.Int("block-profile-rate", 0, "runtime.SetBlockProfileRate threshold in ns for the pprof block profile (0 = off)")
	snapshotDir := flag.String("snapshot-dir", "", "directory for generation snapshots (with -live: persist every compaction swap)")
	restore := flag.Bool("restore", false, "boot from the newest snapshot in -snapshot-dir instead of building a graph")
	writeSnapshot := flag.Bool("write-snapshot", false, "write a generation snapshot to -snapshot-dir and exit")
	shards := flag.Int("shards", 0, "run an in-process sharded cluster with N partitions (0 = single process)")
	replicas := flag.Int("replicas", 1, "replicas per shard for -shards (requires -live when > 1)")
	shardOf := flag.String("shard-of", "", "run one shard node: k/N (e.g. 0/4)")
	replicaOf := flag.String("replica-of", "", "run one replica node: k.r/N (e.g. 0.1/4 = replica 1 of shard 0)")
	routerOf := flag.String("router", "", "run a scatter-gather router over comma-separated shard base URLs ('|' separates replicas of one shard)")
	partition := flag.String("partition", "", "partitioner spec for -shard-of (e.g. range/4:1000,2000,3000; default hash/N)")
	codecFlag := flag.String("codec", "auto", "inter-node codec for router→shard hops: auto (negotiate binary wire per hop, fall back to JSON), json (kill switch: force JSON), or wire (force binary; pre-codec shard nodes will error)")
	flag.Parse()

	var codec shard.Codec
	switch *codecFlag {
	case "auto":
		codec = shard.CodecAuto
	case "json":
		codec = shard.CodecJSON
	case "wire":
		codec = shard.CodecWire
	default:
		log.Fatalf("-codec %q: want auto, json or wire", *codecFlag)
	}

	obs.SlowQueries.SetThreshold(*slowQuery)
	if *mutexFraction > 0 {
		runtime.SetMutexProfileFraction(*mutexFraction)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}

	if *metricsAddr != "" {
		// Like -pprof, the scrape surface can run on its own listener so
		// monitoring stays reachable (and access-controllable) separately
		// from user traffic. The main listener serves the same routes.
		mux := http.NewServeMux()
		obs.MetricsRoutes(mux, obs.Default, obs.SlowQueries)
		go func() {
			fmt.Fprintf(os.Stderr, "metrics listening on http://%s/metrics\n", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			}
		}()
	}

	if *pprofAddr != "" {
		// Profiling runs on its own listener and mux so the diagnostic
		// surface never shares a port (or a handler namespace) with user
		// traffic; hot-path regressions are then diagnosable in production
		// with the standard go tool pprof endpoints.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
	}

	if (*restore || *writeSnapshot) && *snapshotDir == "" {
		log.Fatal("-restore and -write-snapshot require -snapshot-dir")
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			log.Fatalf("snapshot-dir: %v", err)
		}
	}

	opts := core.Options{TopEntities: *topEntities, TopFeatures: *topFeatures}

	// Router-only process: no graph at all, just scatter-gather over the
	// listed shard nodes. Within the comma-separated shard list, '|'
	// separates the replicas of one shard.
	if *routerOf != "" {
		if *shards > 0 || *shardOf != "" || *replicaOf != "" {
			log.Fatal("-router excludes -shards, -shard-of and -replica-of")
		}
		var urls [][]string
		nReplicas := 0
		for _, set := range strings.Split(*routerOf, ",") {
			var reps []string
			for _, u := range strings.Split(set, "|") {
				reps = append(reps, strings.TrimSpace(u))
			}
			urls = append(urls, reps)
			nReplicas += len(reps)
		}
		ro := shard.NewReplicatedRouter(urls, shard.Options{
			TopEntities: *topEntities,
			MaxSessions: *maxSessions,
			Codec:       codec,
		})
		fmt.Fprintf(os.Stderr, "startup: router over %d shards (%d replicas) ready in %d ms\n",
			len(urls), nReplicas, time.Since(start).Milliseconds())
		runServer(*addr, ro.Handler(), *drain, func() error { return nil },
			fmt.Sprintf("PivotE router (%d shards, %d replicas)", len(urls), nReplicas))
		return
	}

	// In-process cluster: N partitioned nodes (times M replicas) plus
	// the router behind one listener. Persistence flags belong to
	// standalone shard nodes.
	if *shards > 0 {
		if *shardOf != "" || *replicaOf != "" {
			log.Fatal("-shards excludes -shard-of and -replica-of")
		}
		if *restore || *writeSnapshot || *snapshotDir != "" {
			log.Fatal("-shards is in-process only; use -shard-of nodes for per-shard snapshots")
		}
		if *replicas > 1 && !*live {
			log.Fatal("-replicas > 1 requires -live: write fan-out and snapshot adoption are live-path operations")
		}
		g := buildGraph(*load, *scale, *seed)
		cl := shard.NewCluster(g, shard.ClusterConfig{
			Shards:      *shards,
			Replicas:    *replicas,
			Opts:        opts,
			Live:        *live,
			MaxSessions: *maxSessions,
			Router:      shard.Options{Codec: codec, MaxSessions: *maxSessions},
		})
		if *live {
			fmt.Fprintln(os.Stderr, "live ingest enabled: POST /api/v1/ingest")
		}
		banner := fmt.Sprintf("PivotE %d-shard cluster", cl.Partitioner.N())
		if *replicas > 1 {
			banner = fmt.Sprintf("PivotE %d-shard cluster (%d replicas each)", cl.Partitioner.N(), *replicas)
		}
		fmt.Fprintf(os.Stderr, "startup: %d-shard cluster (%s, %d replicas per shard) ready in %d ms\n",
			cl.Partitioner.N(), cl.Partitioner.Spec(), *replicas, time.Since(start).Milliseconds())
		runServer(*addr, cl.Handler(), *drain, cl.Close, banner)
		return
	}

	// Standalone shard node: partition result emission and switch the
	// snapshot format to per-shard files. -replica-of is the same node
	// wearing its replica identity; the partition (and so the results)
	// depend only on the shard index.
	var part shard.Partitioner
	shardIdx, replicaIdx := -1, -1
	if *shardOf != "" || *replicaOf != "" {
		var k, n int
		var err error
		switch {
		case *shardOf != "" && *replicaOf != "":
			log.Fatal("-shard-of excludes -replica-of")
		case *replicaOf != "":
			k, replicaIdx, n, err = parseReplicaOf(*replicaOf)
		default:
			k, n, err = parseShardOf(*shardOf)
		}
		if err != nil {
			log.Fatal(err)
		}
		if *partition != "" {
			part, err = shard.ParseSpec(*partition)
			if err != nil {
				log.Fatalf("-partition: %v", err)
			}
			if part.N() != n {
				log.Fatalf("-partition %s disagrees with the requested %d-shard node", part.Spec(), n)
			}
		} else {
			part = shard.NewHashPartitioner(n)
		}
		shardIdx = k
		opts.Partition = shard.OwnerOf(part, k)
		opts.SnapshotWrite = shard.SnapshotWriter(part, k)
		if replicaIdx >= 0 {
			fmt.Fprintf(os.Stderr, "replica %d of shard %d of %s\n", replicaIdx, k, part.Spec())
		} else {
			fmt.Fprintf(os.Stderr, "shard node %d of %s\n", k, part.Spec())
		}
	}
	var sh *core.Shared
	source := "synthetic"
	if *restore {
		var path string
		var err error
		if shardIdx >= 0 {
			path, err = shard.FindNewestSnapshot(*snapshotDir, shardIdx)
		} else {
			path, err = pivote.FindNewestSnapshot(*snapshotDir)
		}
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		if path == "" {
			log.Fatalf("restore: no snapshot in %s", *snapshotDir)
		}
		fmt.Fprintf(os.Stderr, "restoring %s ...\n", path)
		var gen *pivote.LiveGeneration
		if shardIdx >= 0 {
			var p shard.Partitioner
			var idx int
			gen, p, idx, err = shard.OpenFile(path)
			if err == nil && (idx != shardIdx || p.Spec() != part.Spec()) {
				log.Fatalf("restore: %s was written for shard %d of %s, node is shard %d of %s",
					path, idx, p.Spec(), shardIdx, part.Spec())
			}
		} else {
			gen, err = pivote.OpenGeneration(path)
		}
		if err != nil {
			log.Fatalf("restore: %v", err)
		}
		fmt.Fprintf(os.Stderr, "generation %d ready: %d entities, %d triples\n",
			gen.ID, len(gen.Graph.Entities()), gen.Graph.Store().Len())
		if *live {
			sh = core.NewLiveSharedFromGeneration(gen, opts, *snapshotDir)
			fmt.Fprintln(os.Stderr, "live ingest enabled: POST /api/v1/ingest")
		} else {
			sh = core.NewSharedFromGeneration(gen, opts)
		}
		source = "snapshot"
	} else {
		g := buildGraph(*load, *scale, *seed)
		if *load != "" {
			source = "ntriples"
		}
		switch {
		case *live && *snapshotDir != "":
			sh = core.NewLiveSharedWithSnapshots(g, opts, *snapshotDir)
			fmt.Fprintln(os.Stderr, "live ingest enabled: POST /api/v1/ingest")
		case *live:
			sh = core.NewLiveShared(g, opts)
			fmt.Fprintln(os.Stderr, "live ingest enabled: POST /api/v1/ingest")
		default:
			sh = core.NewShared(g, opts)
		}
	}

	if *writeSnapshot {
		gen := sh.Generation()
		var path string
		var err error
		if shardIdx >= 0 {
			path = shard.SnapshotPath(*snapshotDir, gen.ID, shardIdx)
			err = shard.WriteFile(gen, part, shardIdx, path)
		} else {
			path = pivote.SnapshotPath(*snapshotDir, gen.ID)
			err = pivote.SaveGeneration(gen, path)
		}
		if err != nil {
			_ = sh.Close()
			log.Fatalf("write-snapshot: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		if err := sh.Close(); err != nil {
			log.Fatalf("close: %v", err)
		}
		return
	}

	m := server.NewMultiShared(sh, opts, *maxSessions)
	fmt.Fprintf(os.Stderr, "startup: %s core ready in %d ms\n",
		source, time.Since(start).Milliseconds())
	banner := "PivotE"
	if replicaIdx >= 0 {
		banner = fmt.Sprintf("PivotE shard %d replica %d", shardIdx, replicaIdx)
	} else if shardIdx >= 0 {
		banner = fmt.Sprintf("PivotE shard %d", shardIdx)
	}
	runServer(*addr, m.Handler(), *drain, sh.Close, banner)
}

// buildGraph loads an N-Triples file or generates the synthetic demo KG.
func buildGraph(load string, scale int, seed int64) *pivote.Graph {
	var g *pivote.Graph
	var err error
	if load != "" {
		fmt.Fprintf(os.Stderr, "loading %s ...\n", load)
		g, err = pivote.LoadGraphFile(load)
		if err != nil {
			log.Fatalf("load: %v", err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "generating synthetic KG (scale %d, seed %d) ...\n", scale, seed)
		g = pivote.GenerateDemo(scale, seed)
	}
	fmt.Fprintf(os.Stderr, "graph ready: %d entities, %d triples\n",
		len(g.Entities()), g.Store().Len())
	return g
}

// parseShardOf parses a -shard-of value of the form k/N.
func parseShardOf(s string) (k, n int, err error) {
	ks, ns, ok := strings.Cut(s, "/")
	if ok {
		k, err = strconv.Atoi(ks)
		if err == nil {
			n, err = strconv.Atoi(ns)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard-of: want k/N, got %q", s)
	}
	if n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("-shard-of: index %d out of range for %d shards", k, n)
	}
	return k, n, nil
}

// parseReplicaOf parses a -replica-of value of the form k.r/N: replica
// r of shard k in an N-shard cluster.
func parseReplicaOf(s string) (k, r, n int, err error) {
	left, ns, ok := strings.Cut(s, "/")
	if ok {
		var ks, rs string
		ks, rs, ok = strings.Cut(left, ".")
		if ok {
			if k, err = strconv.Atoi(ks); err == nil {
				if r, err = strconv.Atoi(rs); err == nil {
					n, err = strconv.Atoi(ns)
				}
			}
		}
	}
	if !ok || err != nil {
		return 0, 0, 0, fmt.Errorf("-replica-of: want k.r/N, got %q", s)
	}
	if n < 1 || k < 0 || k >= n || r < 0 {
		return 0, 0, 0, fmt.Errorf("-replica-of: shard %d replica %d out of range for %d shards", k, r, n)
	}
	return k, r, n, nil
}

// runServer serves h on addr until SIGINT/SIGTERM, drains in-flight
// requests, then runs cleanup (compactor shutdown etc.).
func runServer(addr string, h http.Handler, drain time.Duration, cleanup func() error, banner string) {
	srv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "%s listening on http://localhost%s\n", banner, addr)
		errc <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// ListenAndServe only returns on failure; background work (the
		// compactor, if any) is still running, so shut it down first.
		_ = cleanup()
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(os.Stderr, "shutting down: draining in-flight requests ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
	}
	if err := cleanup(); err != nil {
		fmt.Fprintf(os.Stderr, "close: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "bye")
}
