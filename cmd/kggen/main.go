// Command kggen generates the synthetic DBpedia-like knowledge graph and
// writes it as N-Triples, for inspection or for loading into other
// stores.
//
// Usage:
//
//	kggen -scale 2000 -seed 42 -o graph.nt
//	kggen -scale 500 -stats            # print statistics only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"pivote/internal/rdf"
	"pivote/internal/synth"
)

func main() {
	scale := flag.Int("scale", 2000, "film count (total entities ~2.2x)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	statsOnly := flag.Bool("stats", false, "print statistics instead of triples")
	drop := flag.Float64("drop", 0.15, "relation incompleteness rate")
	snapshot := flag.Bool("snapshot", false, "write the binary snapshot format instead of N-Triples")
	flag.Parse()

	cfg := synth.Scaled(*scale)
	cfg.Seed = *seed
	cfg.DropRelationRate = *drop
	r := synth.Generate(cfg)

	if *statsOnly {
		s := rdf.ComputeStats(r.Store)
		fmt.Print(s.Summary(r.Store.Dict(), 15))
		fmt.Printf("entities=%d types=%d categories=%d\n",
			len(r.Graph.Entities()), len(r.Graph.Types()), len(r.Graph.Categories()))
		return
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatalf("create: %v", err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	write := rdf.WriteNTriples
	if *snapshot {
		write = rdf.WriteSnapshot
	}
	if err := write(r.Store, w); err != nil {
		log.Fatalf("write: %v", err)
	}
	if err := w.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d triples\n", r.Store.Len())
}
