// Command benchguard compares a benchjson result file against a
// committed baseline and exits non-zero when a benchmark regressed
// beyond the allowed ratio — CI's guard rail against silently losing a
// hot-path optimization.
//
//	benchguard -baseline BENCH_semfeat_baseline.json -current BENCH_semfeat.json -bench Rank -max-ratio 2
//
// The comparison is deliberately loose (a 2× default) so machine-to-
// machine variance between the baseline recorder and the CI runner
// doesn't flap the build; it exists to catch order-of-magnitude
// regressions like an accidental fallback from the frozen catalog to
// the naive scorer.
//
// -baseline-bench compares against a *different benchmark* instead of
// the same one — pointing -baseline at the current run's own file then
// yields a machine-independent in-run ratio gate:
//
//	benchguard -baseline BENCH_semfeat.json -baseline-bench RankNaive -current BENCH_semfeat.json -bench Rank -max-ratio 0.5
//
// ("Rank must stay at most half of RankNaive's ns/op on this machine",
// immune to how fast the runner itself is.)
//
// -gates runs a whole table of such comparisons from one JSON file, so
// CI adds a guard by editing data instead of stacking invocations:
//
//	benchguard -gates benchgates.json
//
// Each gate entry mirrors the flags ({"baseline", "baseline_bench",
// "current", "bench", "max_ratio"}); every gate is evaluated (no
// short-circuit on the first failure) and the exit status is non-zero
// when any failed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// result mirrors the fields of cmd/benchjson's output this tool reads.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp *int64  `json:"allocs_per_op"`
}

// Gate metrics: ns/op is the default; allocs/op gates allocation-budget
// wins (a codec that halves allocations must stay halved) and needs the
// benchmark to have run with -benchmem.
const (
	metricNs     = "ns_per_op"
	metricAllocs = "allocs_per_op"
)

// metricOf extracts the gated metric from a result; ok is false when the
// result does not carry it (allocs/op without -benchmem).
func metricOf(r result, metric string) (v float64, unit string, ok bool) {
	switch metric {
	case "", metricNs:
		return r.NsPerOp, "ns/op", true
	case metricAllocs:
		if r.AllocsPerOp == nil {
			return 0, "allocs/op", false
		}
		return float64(*r.AllocsPerOp), "allocs/op", true
	default:
		return 0, metric, false
	}
}

func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(raw, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		out[r.Name] = r
	}
	return out, nil
}

// check compares the current run's benchmark curName against the
// baseline file's baseName on the given metric (ns_per_op when empty),
// returning a human-readable verdict and whether the ratio is
// acceptable.
func check(baseline, current map[string]result, baseName, curName string, maxRatio float64, metric string) (string, bool) {
	b, okB := baseline[baseName]
	c, okC := current[curName]
	switch {
	case !okB:
		return fmt.Sprintf("benchguard: %q missing from baseline", baseName), false
	case !okC:
		return fmt.Sprintf("benchguard: %q missing from current run", curName), false
	}
	bv, unit, okB := metricOf(b, metric)
	cv, _, okC := metricOf(c, metric)
	switch {
	case !okB:
		return fmt.Sprintf("benchguard: baseline %q has no %s", baseName, unit), false
	case !okC:
		return fmt.Sprintf("benchguard: current %q has no %s", curName, unit), false
	case bv <= 0:
		return fmt.Sprintf("benchguard: baseline %q has non-positive %s", baseName, unit), false
	}
	ratio := cv / bv
	verdict := fmt.Sprintf("benchguard: %s %.0f %s vs baseline %s %.0f %s (%.2fx, limit %.2fx)",
		curName, cv, unit, baseName, bv, unit, ratio, maxRatio)
	return verdict, ratio <= maxRatio
}

// gate is one row of a -gates table; the JSON field names mirror the
// equivalent command-line flags.
type gate struct {
	Baseline      string  `json:"baseline"`
	BaselineBench string  `json:"baseline_bench,omitempty"`
	Current       string  `json:"current"`
	Bench         string  `json:"bench"`
	MaxRatio      float64 `json:"max_ratio"`
	// Metric selects what the ratio is computed over: "ns_per_op"
	// (default) or "allocs_per_op".
	Metric string `json:"metric,omitempty"`
}

// runGates evaluates every gate in the table, printing each verdict,
// and reports whether all passed. Result files are loaded once each no
// matter how many gates reference them.
func runGates(gates []gate, print func(string)) bool {
	files := make(map[string]map[string]result)
	loadCached := func(path string) (map[string]result, error) {
		if rs, ok := files[path]; ok {
			return rs, nil
		}
		rs, err := load(path)
		if err == nil {
			files[path] = rs
		}
		return rs, err
	}
	allOK := true
	for i, gt := range gates {
		if gt.Baseline == "" || gt.Current == "" || gt.Bench == "" || gt.MaxRatio <= 0 {
			print(fmt.Sprintf("benchguard: gate %d: baseline, current, bench and a positive max_ratio are required", i))
			allOK = false
			continue
		}
		baseName := gt.BaselineBench
		if baseName == "" {
			baseName = gt.Bench
		}
		baseline, err := loadCached(gt.Baseline)
		if err != nil {
			print(fmt.Sprintf("benchguard: gate %d: %v", i, err))
			allOK = false
			continue
		}
		current, err := loadCached(gt.Current)
		if err != nil {
			print(fmt.Sprintf("benchguard: gate %d: %v", i, err))
			allOK = false
			continue
		}
		verdict, ok := check(baseline, current, baseName, gt.Bench, gt.MaxRatio, gt.Metric)
		print(verdict)
		allOK = allOK && ok
	}
	return allOK
}

func main() {
	baselinePath := flag.String("baseline", "", "benchjson file with the committed baseline")
	currentPath := flag.String("current", "", "benchjson file from this run")
	bench := flag.String("bench", "", "benchmark name to compare (without the Benchmark prefix)")
	baselineBench := flag.String("baseline-bench", "", "baseline benchmark name when it differs from -bench (in-run ratio gates)")
	maxRatio := flag.Float64("max-ratio", 2, "fail when the current metric exceeds baseline by this factor")
	metric := flag.String("metric", metricNs, "metric the ratio is computed over: ns_per_op or allocs_per_op")
	gatesPath := flag.String("gates", "", "JSON file with a table of gates to run instead of the single-flag mode")
	flag.Parse()
	if *gatesPath != "" {
		raw, err := os.ReadFile(*gatesPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(2)
		}
		var gates []gate
		if err := json.Unmarshal(raw, &gates); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *gatesPath, err)
			os.Exit(2)
		}
		if len(gates) == 0 {
			fmt.Fprintf(os.Stderr, "benchguard: %s: empty gates table\n", *gatesPath)
			os.Exit(2)
		}
		if !runGates(gates, func(s string) { fmt.Println(s) }) {
			os.Exit(1)
		}
		return
	}
	if *baselinePath == "" || *currentPath == "" || *bench == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline, -current and -bench are required")
		os.Exit(2)
	}
	if *baselineBench == "" {
		*baselineBench = *bench
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	verdict, ok := check(baseline, current, *baselineBench, *bench, *maxRatio, *metric)
	fmt.Println(verdict)
	if !ok {
		os.Exit(1)
	}
}
