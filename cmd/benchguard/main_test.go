package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckWithinLimit(t *testing.T) {
	baseline := map[string]result{"Rank": {Name: "Rank", NsPerOp: 1000}}
	current := map[string]result{"Rank": {Name: "Rank", NsPerOp: 1900}}
	verdict, ok := check(baseline, current, "Rank", "Rank", 2, "")
	if !ok {
		t.Fatalf("1.9x should pass a 2x limit: %s", verdict)
	}
	if !strings.Contains(verdict, "1.90x") {
		t.Fatalf("verdict missing ratio: %s", verdict)
	}
}

func TestCheckRegression(t *testing.T) {
	baseline := map[string]result{"Rank": {Name: "Rank", NsPerOp: 1000}}
	current := map[string]result{"Rank": {Name: "Rank", NsPerOp: 2100}}
	if verdict, ok := check(baseline, current, "Rank", "Rank", 2, ""); ok {
		t.Fatalf("2.1x must fail a 2x limit: %s", verdict)
	}
}

func TestCheckInRunRatio(t *testing.T) {
	// Machine-independent gate: Rank vs RankNaive out of one run.
	run := map[string]result{
		"Rank":      {Name: "Rank", NsPerOp: 1000},
		"RankNaive": {Name: "RankNaive", NsPerOp: 5400},
	}
	verdict, ok := check(run, run, "RankNaive", "Rank", 0.5, "")
	if !ok {
		t.Fatalf("5.4x speedup must pass a 0.5x in-run limit: %s", verdict)
	}
	slow := map[string]result{
		"Rank":      {Name: "Rank", NsPerOp: 3000},
		"RankNaive": {Name: "RankNaive", NsPerOp: 5400},
	}
	if verdict, ok := check(slow, slow, "RankNaive", "Rank", 0.5, ""); ok {
		t.Fatalf("0.56x must fail a 0.5x in-run limit: %s", verdict)
	}
}

func TestCheckAllocsMetric(t *testing.T) {
	allocs := func(n int64) *int64 { return &n }
	run := map[string]result{
		"ScatterGather/codec=json/shards=4": {Name: "ScatterGather/codec=json/shards=4", NsPerOp: 400000, AllocsPerOp: allocs(1000)},
		"ScatterGather/codec=wire/shards=4": {Name: "ScatterGather/codec=wire/shards=4", NsPerOp: 150000, AllocsPerOp: allocs(400)},
	}
	verdict, ok := check(run, run, "ScatterGather/codec=json/shards=4", "ScatterGather/codec=wire/shards=4", 0.5, "allocs_per_op")
	if !ok {
		t.Fatalf("0.4x allocs must pass a 0.5x limit: %s", verdict)
	}
	if !strings.Contains(verdict, "allocs/op") || !strings.Contains(verdict, "0.40x") {
		t.Fatalf("verdict should report the allocs metric and ratio: %s", verdict)
	}
	if verdict, ok := check(run, run, "ScatterGather/codec=json/shards=4", "ScatterGather/codec=wire/shards=4", 0.3, "allocs_per_op"); ok {
		t.Fatalf("0.4x allocs must fail a 0.3x limit: %s", verdict)
	}
	// A result recorded without -benchmem has no allocs/op; gating on it
	// must fail loudly, not silently pass.
	bare := map[string]result{"A": {Name: "A", NsPerOp: 100}}
	if verdict, ok := check(bare, bare, "A", "A", 2, "allocs_per_op"); ok {
		t.Fatalf("missing allocs/op must fail the gate: %s", verdict)
	}
	if verdict, ok := check(run, run, "ScatterGather/codec=json/shards=4", "ScatterGather/codec=json/shards=4", 2, "bogus_metric"); ok {
		t.Fatalf("unknown metric must fail: %s", verdict)
	}
}

func TestRunGatesMetricRow(t *testing.T) {
	dir := t.TempDir()
	cur := writeJSON(t, dir, "cur.json", `[
	  {"name":"A","ns_per_op":1000,"allocs_per_op":1000},
	  {"name":"B","ns_per_op":900,"allocs_per_op":400}
	]`)
	gates := []gate{
		{Baseline: cur, BaselineBench: "A", Current: cur, Bench: "B", MaxRatio: 0.5, Metric: "allocs_per_op"},
	}
	var verdicts []string
	if !runGates(gates, func(s string) { verdicts = append(verdicts, s) }) {
		t.Fatalf("allocs gate should pass: %v", verdicts)
	}
	if !strings.Contains(verdicts[0], "allocs/op") {
		t.Fatalf("verdict should be in allocs/op: %v", verdicts)
	}
}

func TestCheckMissingEntries(t *testing.T) {
	baseline := map[string]result{"Rank": {Name: "Rank", NsPerOp: 1000}}
	if _, ok := check(baseline, map[string]result{}, "Rank", "Rank", 2, ""); ok {
		t.Fatal("missing current entry must fail")
	}
	if _, ok := check(map[string]result{}, baseline, "Rank", "Rank", 2, ""); ok {
		t.Fatal("missing baseline entry must fail")
	}
	zero := map[string]result{"Rank": {Name: "Rank", NsPerOp: 0}}
	if _, ok := check(zero, baseline, "Rank", "Rank", 2, ""); ok {
		t.Fatal("non-positive baseline must fail")
	}
}

func TestLoadParsesBenchjsonOutput(t *testing.T) {
	dir := t.TempDir()
	path := writeJSON(t, dir, "bench.json", `[
	  {"name":"Rank","iterations":100,"ns_per_op":913.7,"bytes_per_op":448,"allocs_per_op":1},
	  {"name":"RankNaive","iterations":50,"ns_per_op":5308}
	]`)
	got, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["Rank"].NsPerOp != 913.7 || got["RankNaive"].NsPerOp != 5308 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestRunGatesAllPass(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[{"name":"ColdStartMmap","ns_per_op":1000}]`)
	cur := writeJSON(t, dir, "cur.json", `[
	  {"name":"ColdStartMmap","ns_per_op":1500},
	  {"name":"ColdStartRebuild","ns_per_op":100000}
	]`)
	gates := []gate{
		{Baseline: base, Current: cur, Bench: "ColdStartMmap", MaxRatio: 2},
		{Baseline: cur, BaselineBench: "ColdStartRebuild", Current: cur, Bench: "ColdStartMmap", MaxRatio: 0.1},
	}
	var verdicts []string
	if !runGates(gates, func(s string) { verdicts = append(verdicts, s) }) {
		t.Fatalf("both gates should pass: %v", verdicts)
	}
	if len(verdicts) != 2 {
		t.Fatalf("want one verdict per gate, got %v", verdicts)
	}
}

func TestRunGatesEvaluatesEveryGate(t *testing.T) {
	// A failing gate must not short-circuit the rest: all verdicts print
	// so one CI run reports every regression at once.
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[{"name":"A","ns_per_op":1000},{"name":"B","ns_per_op":1000}]`)
	cur := writeJSON(t, dir, "cur.json", `[{"name":"A","ns_per_op":9000},{"name":"B","ns_per_op":1100}]`)
	gates := []gate{
		{Baseline: base, Current: cur, Bench: "A", MaxRatio: 2},
		{Baseline: base, Current: cur, Bench: "B", MaxRatio: 2},
	}
	var verdicts []string
	if runGates(gates, func(s string) { verdicts = append(verdicts, s) }) {
		t.Fatal("gate A regressed 9x; table must fail")
	}
	if len(verdicts) != 2 {
		t.Fatalf("failing gate short-circuited the table: %v", verdicts)
	}
}

func TestRunGatesRejectsBadRows(t *testing.T) {
	dir := t.TempDir()
	cur := writeJSON(t, dir, "cur.json", `[{"name":"A","ns_per_op":1000}]`)
	for _, bad := range []gate{
		{Current: cur, Bench: "A", MaxRatio: 2},                                            // no baseline
		{Baseline: cur, Current: cur, Bench: "A"},                                          // no ratio
		{Baseline: filepath.Join(dir, "nope.json"), Current: cur, Bench: "A", MaxRatio: 2}, // unreadable
	} {
		if runGates([]gate{bad}, func(string) {}) {
			t.Fatalf("gate %+v must fail", bad)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := writeJSON(t, t.TempDir(), "bad.json", "{not json")
	if _, err := load(bad); err == nil {
		t.Fatal("malformed file must error")
	}
}
