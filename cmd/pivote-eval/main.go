// Command pivote-eval regenerates every table and figure of the PivotE
// reproduction (see DESIGN.md for the experiment index): the paper's
// Table 1 and Figures 1–4 as artifacts, and the quality/efficiency
// evaluation of the ranking models as measured tables.
//
// Usage:
//
//	pivote-eval                          # run everything, write artifacts/
//	pivote-eval -exp E5,A1               # a subset
//	pivote-eval -scale 2000 -queries 200 # bigger workloads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"pivote/internal/eval"
)

func main() {
	exps := flag.String("exp", "all", "comma-separated experiment IDs (T1,F1a,F1b,F2,F3,F4,E5,E6,E7,E8,E9,E10,A1,A2,A3,A4) or 'all'")
	scale := flag.Int("scale", 1000, "synthetic KG size (films) for quality experiments")
	seed := flag.Int64("seed", 42, "generator/workload seed")
	queries := flag.Int("queries", 100, "queries per quality experiment")
	seedsPer := flag.Int("seeds", 3, "example entities per expansion query")
	outDir := flag.String("out", "artifacts", "artifact output directory")
	latencyScales := flag.String("latency-scales", "500,2000,8000", "comma-separated scales for E8/E9/E10")
	flag.Parse()

	cfg := eval.Config{Scale: *scale, Seed: *seed, Queries: *queries, SeedsPerQuery: *seedsPer}
	wanted := map[string]bool{}
	all := *exps == "all"
	for _, id := range strings.Split(*exps, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	want := func(id string) bool { return all || wanted[id] }

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatalf("mkdir: %v", err)
	}

	var scales []int
	for _, s := range strings.Split(*latencyScales, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			log.Fatalf("bad -latency-scales entry %q", s)
		}
		scales = append(scales, n)
	}

	needEnv := want("T1") || want("F1a") || want("F1b") || want("F3") || want("F4") ||
		want("E5") || want("E6") || want("E7") ||
		want("A1") || want("A2") || want("A3") || want("A4")
	var env *eval.Env
	if needEnv {
		fmt.Fprintf(os.Stderr, "generating environment (scale %d, seed %d) ...\n", *scale, *seed)
		env = eval.NewEnv(*scale, *seed)
	}

	emitArtifact := func(a eval.Artifact) {
		fmt.Printf("%s\n", a.Text)
		base := filepath.Join(*outDir, a.ID)
		if err := os.WriteFile(base+".txt", []byte(a.Text), 0o644); err != nil {
			log.Fatalf("write: %v", err)
		}
		for name, content := range a.Files {
			if err := os.WriteFile(filepath.Join(*outDir, a.ID+"_"+name), []byte(content), 0o644); err != nil {
				log.Fatalf("write: %v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "wrote %s artifacts\n", a.ID)
	}
	emitTable := func(t eval.Table) {
		text := t.Render()
		fmt.Println(text)
		if err := os.WriteFile(filepath.Join(*outDir, t.ID+".txt"), []byte(text), 0o644); err != nil {
			log.Fatalf("write: %v", err)
		}
	}

	if want("T1") {
		emitArtifact(eval.RunT1(env))
	}
	if want("F1a") {
		emitArtifact(eval.RunF1a(env))
	}
	if want("F1b") {
		emitArtifact(eval.RunF1b(env))
	}
	if want("F2") {
		emitArtifact(eval.RunF2())
	}
	if want("F3") {
		emitArtifact(eval.RunF3(env))
	}
	if want("F4") {
		emitArtifact(eval.RunF4(env))
	}
	if want("E5") {
		emitTable(eval.RunE5(env, cfg))
	}
	if want("E6") {
		emitTable(eval.RunE6(env, cfg))
	}
	if want("E7") {
		emitTable(eval.RunE7(env, cfg))
	}
	if want("E8") {
		emitTable(eval.RunE8(cfg, scales, 30))
	}
	if want("E9") {
		emitTable(eval.RunE9(cfg, scales))
	}
	if want("E10") {
		emitTable(eval.RunE10(cfg, scales, 50))
	}
	if want("A1") {
		emitTable(eval.RunA1(env, cfg))
	}
	if want("A2") {
		emitTable(eval.RunA2(env, cfg))
	}
	if want("A3") {
		emitTable(eval.RunA3(env, cfg))
	}
	if want("A4") {
		emitTable(eval.RunA4(env, cfg))
	}
}
