// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, so CI can publish benchmark results as a
// machine-readable artifact (BENCH_search.json) and the performance
// trajectory of the hot paths is recorded run over run.
//
//	go test -run xxx -bench 'BenchmarkSearch' -benchmem ./internal/search/ | benchjson
//
// Each benchmark line becomes one object:
//
//	{"name":"SearchMLM","iterations":20488,"ns_per_op":57008,
//	 "bytes_per_op":448,"allocs_per_op":3}
//
// bytes_per_op/allocs_per_op are present only when -benchmem was set;
// extra custom metrics (name "unit/op") are carried through under
// "metrics". Non-benchmark lines (headers, PASS, ok) are skipped.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	r := Result{Name: strings.TrimPrefix(fields[0], "Benchmark")}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	// The remainder alternates value, unit.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			b := int64(v)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(v)
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, seenNs
}

func main() {
	var results []Result
	scan := bufio.NewScanner(os.Stdin)
	scan.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scan.Scan() {
		if r, ok := parseLine(scan.Text()); ok {
			results = append(results, r)
		}
	}
	if err := scan.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	out := json.NewEncoder(os.Stdout)
	out.SetIndent("", "  ")
	if err := out.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
