package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkSearchMLM-8   \t 20488\t     57008 ns/op\t     448 B/op\t       3 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "SearchMLM" || r.Procs != 8 || r.Iterations != 20488 {
		t.Fatalf("header fields: %+v", r)
	}
	if r.NsPerOp != 57008 || r.BytesPerOp == nil || *r.BytesPerOp != 448 || r.AllocsPerOp == nil || *r.AllocsPerOp != 3 {
		t.Fatalf("measurements: %+v", r)
	}
}

func TestParseLineCustomMetricAndNoBenchmem(t *testing.T) {
	r, ok := parseLine("BenchmarkE7RetrievalQuality-4 10 123456 ns/op 0.812 MLM-MRR")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.BytesPerOp != nil || r.AllocsPerOp != nil {
		t.Fatalf("unexpected benchmem fields: %+v", r)
	}
	if r.Metrics["MLM-MRR"] != 0.812 {
		t.Fatalf("custom metric: %+v", r.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tpivote/internal/search\t8.563s",
		"",
		"Benchmark", // no fields
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parsed noise line %q", line)
		}
	}
}
