package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"pivote/internal/rdf"
	"pivote/internal/snap"
)

// SectionIndex holds the complete frozen inverted index: the flat term
// dictionary, the any-field document frequencies, the doc→entity map
// and, per field, the CSR postings with their length and collection
// statistics.
const SectionIndex = "index.idx"

// postingWire is the on-disk posting size: u64 doc, u32 tf, 4 bytes of
// zero padding — identical to the in-memory layout of Posting on
// 64-bit hosts, so reads alias the mapping there.
const postingWire = 16

// AppendSections writes the index section. Postings are encoded
// explicitly (never aliased) so struct padding bytes are deterministic
// and identical generations produce identical files.
func (x *Index) AppendSections(w *snap.Writer) error {
	w.Begin(SectionIndex)
	w.U32s(x.termOff)
	w.Bytes(x.termBlob)
	w.I32s(x.anyDF)
	snap.PutU32Slice(w, x.entities)
	for f := range x.fields {
		fi := &x.fields[f]
		w.I32s(fi.offsets)
		w.Records(len(fi.posts), postingWire, func(i int, dst []byte) {
			binary.LittleEndian.PutUint64(dst, uint64(fi.posts[i].Doc))
			binary.LittleEndian.PutUint32(dst[8:], uint32(fi.posts[i].TF))
		})
		w.I32s(fi.docLen)
		w.U64(uint64(fi.totalLen))
		w.F64s(fi.collProb)
	}
	return nil
}

// OpenIndexSections reconstructs the index from a mapping. bound is the
// term-dictionary slot count of the accompanying store: every entity ID
// must decode through it. All arrays alias the mapping on little-endian
// 64-bit hosts; the doc→entity map is built lazily on first DocOf.
func OpenIndexSections(m *snap.Mapping, bound rdf.TermID) (*Index, error) {
	c, err := m.Section(SectionIndex)
	if err != nil {
		return nil, err
	}
	x := &Index{}
	x.termOff = c.U32s()
	x.termBlob = c.Bytes()
	x.anyDF = c.I32s()
	x.entities = snap.U32Slice[rdf.TermID](c)
	for f := range x.fields {
		fi := &x.fields[f]
		fi.offsets = c.I32s()
		fi.posts = readPostings(c)
		fi.docLen = c.I32s()
		fi.totalLen = int64(c.U64())
		fi.collProb = c.F64s()
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	nTerms := len(x.termOff) - 1
	if nTerms < 0 {
		return nil, corruptIndex("empty term offset array")
	}
	prev := uint32(0)
	for _, o := range x.termOff {
		if o < prev {
			return nil, corruptIndex("term offsets not monotone")
		}
		prev = o
	}
	if x.termOff[0] != 0 || x.termOff[nTerms] != uint32(len(x.termBlob)) {
		return nil, corruptIndex("term offsets do not span the %d-byte blob", len(x.termBlob))
	}
	for tid := int32(1); tid < int32(nTerms); tid++ {
		if x.termAt(tid-1) >= x.termAt(tid) {
			return nil, corruptIndex("term dictionary not sorted at %d", tid)
		}
	}
	if len(x.anyDF) != nTerms {
		return nil, corruptIndex("anyDF sized %d, want %d", len(x.anyDF), nTerms)
	}
	for i, e := range x.entities {
		if e == rdf.NoTerm || e >= bound {
			return nil, corruptIndex("document %d maps to term %d outside dictionary", i, e)
		}
	}
	docs := len(x.entities)
	for f := range x.fields {
		fi := &x.fields[f]
		if len(fi.offsets) != nTerms+1 || len(fi.collProb) != nTerms || len(fi.docLen) != docs {
			return nil, corruptIndex("field %d tables mis-sized", f)
		}
		prev := int32(0)
		for _, o := range fi.offsets {
			if o < prev {
				return nil, corruptIndex("field %d offsets not monotone", f)
			}
			prev = o
		}
		if fi.offsets[0] != 0 || int(fi.offsets[nTerms]) != len(fi.posts) {
			return nil, corruptIndex("field %d offsets do not span %d postings", f, len(fi.posts))
		}
		for i, p := range fi.posts {
			if p.Doc < 0 || p.Doc >= docs {
				return nil, corruptIndex("field %d posting %d names document %d of %d", f, i, p.Doc, docs)
			}
		}
	}
	return x, nil
}

func corruptIndex(format string, args ...any) error {
	return errors.Join(snap.ErrCorrupt, fmt.Errorf("index: snapshot: "+format, args...))
}

// readPostings aliases the posting array when the in-memory layout
// matches the wire layout (64-bit little-endian hosts) and decodes it
// otherwise.
func readPostings(c *snap.Cursor) []Posting {
	b, n := c.RecordBytes(postingWire)
	if n == 0 {
		return nil
	}
	if snap.HostLittleEndian() && unsafe.Sizeof(Posting{}) == postingWire {
		return unsafe.Slice((*Posting)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]Posting, n)
	for i := range out {
		out[i].Doc = int(binary.LittleEndian.Uint64(b[postingWire*i:]))
		out[i].TF = int32(binary.LittleEndian.Uint32(b[postingWire*i+8:]))
	}
	return out
}
