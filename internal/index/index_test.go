package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pivote/internal/rdf"
)

func buildTestIndex() *Index {
	b := NewBuilder()
	var docs = []struct {
		e      rdf.TermID
		fields [NumFields][]string
	}{
		{1, [NumFields][]string{
			FieldNames:      {"forrest", "gump"},
			FieldAttributes: {"142", "minutes", "55", "million", "dollars"},
			FieldCategories: {"american", "films"},
			FieldSimilar:    {"geenbow", "gumpian"},
			FieldRelated:    {"tom", "hanks", "robert", "zemeckis"},
		}},
		{2, [NumFields][]string{
			FieldNames:      {"apollo", "13"},
			FieldAttributes: {"140", "minutes"},
			FieldCategories: {"american", "films"},
			FieldRelated:    {"tom", "hanks", "ron", "howard"},
		}},
		{3, [NumFields][]string{
			FieldNames:   {"tom", "hanks"},
			FieldRelated: {"forrest", "gump", "apollo", "13"},
		}},
	}
	for _, d := range docs {
		b.Add(d.e, d.fields)
	}
	return b.Build()
}

func TestIndexBasics(t *testing.T) {
	x := buildTestIndex()
	if x.DocCount() != 3 {
		t.Fatalf("DocCount = %d, want 3", x.DocCount())
	}
	if x.Entity(0) != 1 || x.Entity(2) != 3 {
		t.Fatal("Entity mapping wrong")
	}
	if d, ok := x.DocOf(2); !ok || d != 1 {
		t.Fatalf("DocOf(2) = %d,%v", d, ok)
	}
	if _, ok := x.DocOf(99); ok {
		t.Fatal("DocOf(unknown) reported present")
	}
}

func TestPostings(t *testing.T) {
	x := buildTestIndex()
	ps := x.Postings(FieldRelated, "tom")
	if len(ps) != 2 {
		t.Fatalf("postings for related:tom = %d, want 2", len(ps))
	}
	if !sort.SliceIsSorted(ps, func(i, j int) bool { return ps[i].Doc < ps[j].Doc }) {
		t.Fatal("postings not sorted by doc")
	}
	if x.Postings(FieldNames, "zzz") != nil {
		t.Fatal("postings for absent term should be nil")
	}
}

func TestTF(t *testing.T) {
	x := buildTestIndex()
	if got := x.TF(FieldNames, "gump", 0); got != 1 {
		t.Fatalf("TF = %d, want 1", got)
	}
	if got := x.TF(FieldNames, "gump", 1); got != 0 {
		t.Fatalf("TF of absent doc = %d, want 0", got)
	}
}

func TestDocLenAndAvg(t *testing.T) {
	x := buildTestIndex()
	if got := x.DocLen(FieldAttributes, 0); got != 5 {
		t.Fatalf("DocLen = %d, want 5", got)
	}
	if got := x.DocLen(FieldSimilar, 1); got != 0 {
		t.Fatalf("DocLen empty field = %d, want 0", got)
	}
	want := (2.0 + 2.0 + 2.0) / 3.0
	if got := x.AvgDocLen(FieldNames); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AvgDocLen = %f, want %f", got, want)
	}
}

func TestCollectionProb(t *testing.T) {
	x := buildTestIndex()
	// "minutes" occurs twice in attributes; attribute field total = 7.
	if got, want := x.CollectionProb(FieldAttributes, "minutes"), 2.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("CollectionProb = %f, want %f", got, want)
	}
	if got := x.CollectionProb(FieldAttributes, "zzz"); got != 0 {
		t.Fatalf("OOV CollectionProb = %f, want 0", got)
	}
	if got := x.CollectionProb(FieldSimilar, "geenbow"); got != 0.5 {
		t.Fatalf("similar field prob = %f, want 0.5", got)
	}
}

func TestDocFreq(t *testing.T) {
	x := buildTestIndex()
	if got := x.DocFreq(FieldCategories, "american"); got != 2 {
		t.Fatalf("DocFreq = %d, want 2", got)
	}
}

func TestCandidateDocs(t *testing.T) {
	x := buildTestIndex()
	docs := x.CandidateDocs([]string{"gump"})
	// "gump" appears in doc0 names and doc2 related.
	if len(docs) != 2 || docs[0] != 0 || docs[1] != 1 {
		// doc ordinals: entity1→0, entity2→1, entity3→2; gump is in doc0
		// (names) and doc2 (related).
		if len(docs) != 2 || docs[0] != 0 || docs[1] != 2 {
			t.Fatalf("CandidateDocs = %v", docs)
		}
	}
	if got := x.CandidateDocs([]string{"zzz"}); len(got) != 0 {
		t.Fatalf("CandidateDocs for OOV = %v", got)
	}
}

func TestTermDictionary(t *testing.T) {
	x := buildTestIndex()
	// The dictionary is the sorted union of every field's vocabulary.
	for tid := 1; tid < x.NumTerms(); tid++ {
		if x.Term(int32(tid-1)) >= x.Term(int32(tid)) {
			t.Fatalf("dictionary not strictly sorted at %d: %q >= %q",
				tid, x.Term(int32(tid-1)), x.Term(int32(tid)))
		}
	}
	for _, term := range []string{"forrest", "american", "minutes", "geenbow", "howard"} {
		tid := x.LookupTerm(term)
		if tid < 0 {
			t.Fatalf("LookupTerm(%q) = NoTerm", term)
		}
		if got := x.Term(tid); got != term {
			t.Fatalf("Term(LookupTerm(%q)) = %q", term, got)
		}
	}
	if x.LookupTerm("zzz") != NoTerm {
		t.Fatal("LookupTerm of absent term should be NoTerm")
	}
}

func TestPostingsByIDMatchesPostings(t *testing.T) {
	x := buildTestIndex()
	for f := Field(0); f < NumFields; f++ {
		for tid := int32(0); tid < int32(x.NumTerms()); tid++ {
			byID := x.PostingsByID(f, tid)
			byTerm := x.Postings(f, x.Term(tid))
			if len(byID) != len(byTerm) {
				t.Fatalf("field %v term %q: %d vs %d postings", f, x.Term(tid), len(byID), len(byTerm))
			}
			for i := range byID {
				if byID[i] != byTerm[i] {
					t.Fatalf("field %v term %q posting %d differs", f, x.Term(tid), i)
				}
			}
		}
	}
	if x.PostingsByID(FieldNames, NoTerm) != nil {
		t.Fatal("PostingsByID(NoTerm) should be nil")
	}
}

func TestAnyFieldDocFreq(t *testing.T) {
	x := buildTestIndex()
	// "tom" occurs in doc2 names and docs 0,1 related → 3 distinct docs.
	if got := x.AnyFieldDocFreq(x.LookupTerm("tom")); got != 3 {
		t.Fatalf("anyDF(tom) = %d, want 3", got)
	}
	// "forrest": doc0 names + doc2 related → 2.
	if got := x.AnyFieldDocFreq(x.LookupTerm("forrest")); got != 2 {
		t.Fatalf("anyDF(forrest) = %d, want 2", got)
	}
	// "minutes": attributes of docs 0 and 1 only → 2.
	if got := x.AnyFieldDocFreq(x.LookupTerm("minutes")); got != 2 {
		t.Fatalf("anyDF(minutes) = %d, want 2", got)
	}
	if got := x.AnyFieldDocFreq(NoTerm); got != 0 {
		t.Fatalf("anyDF(NoTerm) = %d, want 0", got)
	}
}

// The k-way-merge CandidateDocs and the build-time any-field df must
// agree with the naive map-based reference on random corpora.
func TestCandidateDocsAndAnyDFProperty(t *testing.T) {
	vocab := []string{"a", "b", "c", "d", "e", "f", "g"}
	f := func(docTokens [][]byte, queryRaw []byte) bool {
		b := NewBuilder()
		for i, raw := range docTokens {
			var fields [NumFields][]string
			for j, c := range raw {
				fields[Field(j)%NumFields] = append(fields[Field(j)%NumFields], vocab[int(c)%len(vocab)])
			}
			b.Add(rdf.TermID(i+1), fields)
		}
		x := b.Build()
		terms := make([]string, 0, len(queryRaw))
		for _, c := range queryRaw {
			terms = append(terms, vocab[int(c)%len(vocab)])
		}
		// Reference candidate set: the map-and-sort the merge replaced.
		seen := map[int]bool{}
		for _, t := range terms {
			for fl := Field(0); fl < NumFields; fl++ {
				for _, p := range x.Postings(fl, t) {
					seen[p.Doc] = true
				}
			}
		}
		want := make([]int, 0, len(seen))
		for d := range seen {
			want = append(want, d)
		}
		sort.Ints(want)
		got := x.CandidateDocs(terms)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		// Reference any-field df per term.
		for _, term := range vocab {
			docs := map[int]bool{}
			for fl := Field(0); fl < NumFields; fl++ {
				for _, p := range x.Postings(fl, term) {
					docs[p.Doc] = true
				}
			}
			if int(x.AnyFieldDocFreq(x.LookupTerm(term))) != len(docs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	b := NewBuilder()
	b.Add(1, [NumFields][]string{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Add did not panic")
		}
	}()
	b.Add(1, [NumFields][]string{})
}

func TestFieldString(t *testing.T) {
	if FieldNames.String() != "names" || FieldSimilar.String() != "similar entity names" {
		t.Fatal("Field.String mismatch")
	}
	if Field(99).String() != "Field(99)" {
		t.Fatal("out-of-range Field.String mismatch")
	}
}

func TestIndexInvariantsProperty(t *testing.T) {
	// For random documents: Σ_t collTF(t) == totalLen, postings doc
	// ordinals ascend, and TF(term, doc) sums match doc length.
	f := func(docTokens [][]byte) bool {
		b := NewBuilder()
		for i, raw := range docTokens {
			var fields [NumFields][]string
			toks := make([]string, 0, len(raw))
			for _, c := range raw {
				toks = append(toks, string(rune('a'+c%7)))
			}
			fields[FieldNames] = toks
			b.Add(rdf.TermID(i+1), fields)
		}
		x := b.Build()
		var collSum int64
		for _, term := range []string{"a", "b", "c", "d", "e", "f", "g"} {
			ps := x.Postings(FieldNames, term)
			for i, p := range ps {
				if i > 0 && ps[i-1].Doc >= p.Doc {
					return false
				}
				collSum += int64(p.TF)
			}
		}
		if collSum != x.TotalLen(FieldNames) {
			return false
		}
		for doc := 0; doc < x.DocCount(); doc++ {
			var sum int32
			for _, term := range []string{"a", "b", "c", "d", "e", "f", "g"} {
				sum += x.TF(FieldNames, term, doc)
			}
			if int(sum) != x.DocLen(FieldNames, doc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}
