// Package index implements the fielded inverted index behind PivotE's
// search engine. Each entity becomes one document with the paper's five
// fields (Table 1): names, attributes, categories, similar-entity names
// and related-entity names. The index stores per-field postings with term
// frequencies, per-field document lengths, and per-field collection
// language models — exactly the statistics the mixture-of-language-models
// retrieval model consumes.
//
// The index is built in two phases. A Builder accumulates documents into
// per-field hash maps; Build then compacts everything into a frozen
// representation: one sorted term dictionary shared by all fields
// (string → dense TermID), flat CSR posting arrays per field (offsets
// indexed by TermID into a contiguous doc/TF pair array), precomputed
// per-(field, term) collection probabilities, and a per-term any-field
// document-frequency table for BM25F. After Build no map is ever touched
// on a read path: term lookup is one binary search over the dictionary,
// and every statistic is an array load.
package index

import (
	"fmt"
	"sort"
	"sync"

	"pivote/internal/rdf"
	"pivote/internal/snap"
)

// Field enumerates the five fields of the entity representation.
type Field int

const (
	FieldNames Field = iota
	FieldAttributes
	FieldCategories
	FieldSimilar
	FieldRelated
	// NumFields is the number of fields; valid fields are < NumFields.
	NumFields
)

var fieldNames = [NumFields]string{
	"names", "attributes", "categories", "similar entity names", "related entity names",
}

func (f Field) String() string {
	if f < 0 || f >= NumFields {
		return fmt.Sprintf("Field(%d)", int(f))
	}
	return fieldNames[f]
}

// Posting records a term occurrence: document ordinal and term frequency.
type Posting struct {
	Doc int
	TF  int32
}

// NoTerm is the TermID returned for out-of-vocabulary terms.
const NoTerm int32 = -1

// fieldIndex holds the frozen statistics of one field across the
// collection: CSR postings over the shared term dictionary plus dense
// per-document and per-term arrays.
type fieldIndex struct {
	offsets  []int32   // TermID → start in posts; len = NumTerms()+1
	posts    []Posting // all posting runs, concatenated in TermID order
	docLen   []int32   // doc ordinal → token length of this field
	totalLen int64     // Σ docLen
	collProb []float64 // TermID → collTF/totalLen (0 when term absent)
}

// builderField is the mutable accumulation state of one field.
type builderField struct {
	postings map[string][]Posting
	docLen   []int32
	totalLen int64
	collTF   map[string]int64
}

// Index is an immutable fielded inverted index. Build one with a Builder
// or open one from a generation snapshot.
//
// The term dictionary is stored flat — one concatenated byte blob plus
// an offset array, with term tid occupying termBlob[termOff[tid]:
// termOff[tid+1]] — rather than as []string. Lookup is the same binary
// search either way, but the flat form has no per-term header to
// materialize, so an index opened from a snapshot aliases the mapping
// and is ready before a single term is touched.
type Index struct {
	termOff  []uint32 // sorted term dictionary, shared by all fields
	termBlob []byte
	fields   [NumFields]fieldIndex
	anyDF    []int32      // TermID → #docs containing the term in ≥1 field
	entities []rdf.TermID // doc ordinal → entity

	// entity → doc ordinal; off the query path, so built lazily — a
	// snapshot-opened index pays for the map only if DocOf is called.
	docOnce sync.Once
	docOf   map[rdf.TermID]int
}

// termAt views term tid as a string without copying.
func (x *Index) termAt(tid int32) string {
	return snap.UnsafeString(x.termBlob[x.termOff[tid]:x.termOff[tid+1]])
}

// Builder accumulates documents and produces an Index.
type Builder struct {
	fields   [NumFields]builderField
	entities []rdf.TermID
	docOf    map[rdf.TermID]int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	b := &Builder{docOf: map[rdf.TermID]int{}}
	for f := range b.fields {
		b.fields[f].postings = map[string][]Posting{}
		b.fields[f].collTF = map[string]int64{}
	}
	return b
}

// Add indexes one entity document given its per-field token streams.
// Adding the same entity twice is a bug and panics.
func (b *Builder) Add(entity rdf.TermID, tokens [NumFields][]string) {
	if _, dup := b.docOf[entity]; dup {
		panic(fmt.Sprintf("index: entity %d added twice", entity))
	}
	doc := len(b.entities)
	b.entities = append(b.entities, entity)
	b.docOf[entity] = doc
	for f := Field(0); f < NumFields; f++ {
		fi := &b.fields[f]
		toks := tokens[f]
		fi.docLen = append(fi.docLen, int32(len(toks)))
		fi.totalLen += int64(len(toks))
		if len(toks) == 0 {
			continue
		}
		tf := map[string]int32{}
		for _, t := range toks {
			tf[t]++
			fi.collTF[t]++
		}
		// Deterministic posting construction: sort the doc's terms.
		terms := make([]string, 0, len(tf))
		for t := range tf {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		for _, t := range terms {
			fi.postings[t] = append(fi.postings[t], Posting{Doc: doc, TF: tf[t]})
		}
	}
}

// Build freezes the accumulated documents into an Index and releases the
// builder's maps. The builder must not be used afterwards.
func (b *Builder) Build() *Index {
	// One shared dictionary: the sorted union of every field's vocabulary.
	seen := map[string]struct{}{}
	for f := range b.fields {
		for t := range b.fields[f].postings {
			seen[t] = struct{}{}
		}
	}
	terms := make([]string, 0, len(seen))
	for t := range seen {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	// Compact the dictionary into the flat blob form. The blob copies
	// the term bytes, so the frozen index pins only its own dictionary,
	// not every source literal a rare term happened to occur in.
	blobLen := 0
	for _, t := range terms {
		blobLen += len(t)
	}
	termOff := make([]uint32, len(terms)+1)
	termBlob := make([]byte, 0, blobLen)
	for i, t := range terms {
		termOff[i] = uint32(len(termBlob))
		termBlob = append(termBlob, t...)
	}
	termOff[len(terms)] = uint32(len(termBlob))

	idx := &Index{
		termOff:  termOff,
		termBlob: termBlob,
		anyDF:    make([]int32, len(terms)),
		entities: b.entities,
		docOf:    b.docOf,
	}
	idx.docOnce.Do(func() {}) // docOf is live from the start
	for f := range b.fields {
		bf := &b.fields[f]
		fi := &idx.fields[f]
		fi.docLen = bf.docLen
		fi.totalLen = bf.totalLen
		fi.offsets = make([]int32, len(terms)+1)
		fi.collProb = make([]float64, len(terms))
		total := 0
		for tid, t := range terms {
			fi.offsets[tid] = int32(total)
			total += len(bf.postings[t])
			if fi.totalLen > 0 {
				if ctf, ok := bf.collTF[t]; ok {
					fi.collProb[tid] = float64(ctf) / float64(fi.totalLen)
				}
			}
		}
		fi.offsets[len(terms)] = int32(total)
		fi.posts = make([]Posting, 0, total)
		for _, t := range terms {
			fi.posts = append(fi.posts, bf.postings[t]...)
		}
		bf.postings = nil
		bf.collTF = nil
	}
	// Any-field document frequency: the size of the union of the (sorted)
	// per-field runs of each term — BM25F's df, computed once at build
	// instead of via a per-query map.
	runs := make([][]Posting, NumFields)
	for tid := range terms {
		n := 0
		for f := range idx.fields {
			runs[f] = idx.fields[f].postingsByID(int32(tid))
		}
		mergeRuns(runs, func(int) { n++ })
		idx.anyDF[tid] = int32(n)
	}
	b.entities = nil
	b.docOf = nil
	return idx
}

func (fi *fieldIndex) postingsByID(tid int32) []Posting {
	if tid < 0 {
		return nil
	}
	return fi.posts[fi.offsets[tid]:fi.offsets[tid+1]]
}

// DocCount reports the number of indexed documents.
func (x *Index) DocCount() int { return len(x.entities) }

// NumTerms reports the size of the term dictionary.
func (x *Index) NumTerms() int { return len(x.termOff) - 1 }

// Term returns the dictionary string of a TermID. The string aliases
// the index (or the snapshot mapping) and must not be retained past it.
func (x *Index) Term(tid int32) string { return x.termAt(tid) }

// LookupTerm resolves a term string to its dense TermID via binary search
// over the frozen dictionary; NoTerm when out of vocabulary.
func (x *Index) LookupTerm(term string) int32 {
	n := x.NumTerms()
	i := sort.Search(n, func(i int) bool { return x.termAt(int32(i)) >= term })
	if i < n && x.termAt(int32(i)) == term {
		return int32(i)
	}
	return NoTerm
}

// Entity maps a document ordinal back to its entity ID.
func (x *Index) Entity(doc int) rdf.TermID { return x.entities[doc] }

// DocOf maps an entity to its document ordinal.
func (x *Index) DocOf(e rdf.TermID) (int, bool) {
	x.docOnce.Do(func() {
		m := make(map[rdf.TermID]int, len(x.entities))
		for i, id := range x.entities {
			m[id] = i
		}
		x.docOf = m
	})
	d, ok := x.docOf[e]
	return d, ok
}

// Postings returns the posting list of term in field f (ascending doc
// order; shared slice, do not modify).
func (x *Index) Postings(f Field, term string) []Posting {
	ps := x.fields[f].postingsByID(x.LookupTerm(term))
	if len(ps) == 0 {
		return nil
	}
	return ps
}

// PostingsByID is Postings keyed by the dense TermID — the scoring hot
// path resolves each query term once and then reads only arrays.
func (x *Index) PostingsByID(f Field, tid int32) []Posting {
	return x.fields[f].postingsByID(tid)
}

// DocLen reports the token length of field f in document doc.
func (x *Index) DocLen(f Field, doc int) int { return int(x.fields[f].docLen[doc]) }

// DocLens exposes the dense per-document length array of field f
// (shared slice, do not modify).
func (x *Index) DocLens(f Field) []int32 { return x.fields[f].docLen }

// AvgDocLen reports the mean token length of field f across documents.
func (x *Index) AvgDocLen(f Field) float64 {
	if len(x.entities) == 0 {
		return 0
	}
	return float64(x.fields[f].totalLen) / float64(len(x.entities))
}

// CollectionProb returns the collection language model probability
// p(term | C_f): collection term frequency over total field length. It is
// 0 for out-of-vocabulary terms.
func (x *Index) CollectionProb(f Field, term string) float64 {
	return x.CollProbByID(f, x.LookupTerm(term))
}

// CollProbByID is CollectionProb keyed by the dense TermID.
func (x *Index) CollProbByID(f Field, tid int32) float64 {
	if tid < 0 {
		return 0
	}
	return x.fields[f].collProb[tid]
}

// DocFreq reports the number of documents containing term in field f.
func (x *Index) DocFreq(f Field, term string) int {
	return len(x.fields[f].postingsByID(x.LookupTerm(term)))
}

// AnyFieldDocFreq reports the number of documents containing the term in
// at least one field — BM25F's document frequency, precomputed at Build.
func (x *Index) AnyFieldDocFreq(tid int32) int32 {
	if tid < 0 {
		return 0
	}
	return x.anyDF[tid]
}

// TotalLen reports the summed token length of field f.
func (x *Index) TotalLen(f Field) int64 { return x.fields[f].totalLen }

// CandidateDocs returns the ascending, deduplicated set of documents that
// contain at least one of the terms in at least one field — the candidate
// pool every retrieval model scores. It is a k-way merge over the already
// sorted CSR posting runs: no per-query map, no sort.
func (x *Index) CandidateDocs(terms []string) []int {
	runs := make([][]Posting, 0, len(terms)*int(NumFields))
	for _, t := range terms {
		tid := x.LookupTerm(t)
		if tid < 0 {
			continue
		}
		for f := Field(0); f < NumFields; f++ {
			if ps := x.fields[f].postingsByID(tid); len(ps) > 0 {
				runs = append(runs, ps)
			}
		}
	}
	if len(runs) == 0 {
		return nil
	}
	out := make([]int, 0, len(runs[0]))
	mergeRuns(runs, func(doc int) { out = append(out, doc) })
	return out
}

// mergeRuns walks the union of the sorted posting runs in ascending
// document order, calling visit once per distinct document. It consumes
// the run slices in place.
func mergeRuns(runs [][]Posting, visit func(doc int)) {
	for {
		minDoc := -1
		for _, r := range runs {
			if len(r) > 0 && (minDoc < 0 || r[0].Doc < minDoc) {
				minDoc = r[0].Doc
			}
		}
		if minDoc < 0 {
			return
		}
		visit(minDoc)
		for i, r := range runs {
			for len(r) > 0 && r[0].Doc == minDoc {
				r = r[1:]
			}
			runs[i] = r
		}
	}
}

// TF returns the term frequency of term in (field, doc), 0 if absent.
func (x *Index) TF(f Field, term string, doc int) int32 {
	return x.TFByID(f, x.LookupTerm(term), doc)
}

// TFByID is TF keyed by the dense TermID: one binary search inside the
// term's CSR run. The scatter scorer never calls this — it is the probe
// primitive of the retained naive scorers.
func (x *Index) TFByID(f Field, tid int32, doc int) int32 {
	ps := x.fields[f].postingsByID(tid)
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= doc })
	if i < len(ps) && ps[i].Doc == doc {
		return ps[i].TF
	}
	return 0
}
