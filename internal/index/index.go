// Package index implements the fielded inverted index behind PivotE's
// search engine. Each entity becomes one document with the paper's five
// fields (Table 1): names, attributes, categories, similar-entity names
// and related-entity names. The index stores per-field postings with term
// frequencies, per-field document lengths, and per-field collection
// language models — exactly the statistics the mixture-of-language-models
// retrieval model consumes.
package index

import (
	"fmt"
	"sort"

	"pivote/internal/rdf"
)

// Field enumerates the five fields of the entity representation.
type Field int

const (
	FieldNames Field = iota
	FieldAttributes
	FieldCategories
	FieldSimilar
	FieldRelated
	// NumFields is the number of fields; valid fields are < NumFields.
	NumFields
)

var fieldNames = [NumFields]string{
	"names", "attributes", "categories", "similar entity names", "related entity names",
}

func (f Field) String() string {
	if f < 0 || f >= NumFields {
		return fmt.Sprintf("Field(%d)", int(f))
	}
	return fieldNames[f]
}

// Posting records a term occurrence: document ordinal and term frequency.
type Posting struct {
	Doc int
	TF  int32
}

// fieldIndex holds the statistics of one field across the collection.
type fieldIndex struct {
	postings map[string][]Posting
	docLen   []int32
	totalLen int64
	collTF   map[string]int64
}

// Index is an immutable fielded inverted index. Build one with a Builder.
type Index struct {
	fields   [NumFields]fieldIndex
	entities []rdf.TermID       // doc ordinal → entity
	docOf    map[rdf.TermID]int // entity → doc ordinal
}

// Builder accumulates documents and produces an Index.
type Builder struct {
	idx *Index
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	idx := &Index{docOf: map[rdf.TermID]int{}}
	for f := range idx.fields {
		idx.fields[f].postings = map[string][]Posting{}
		idx.fields[f].collTF = map[string]int64{}
	}
	return &Builder{idx: idx}
}

// Add indexes one entity document given its per-field token streams.
// Adding the same entity twice is a bug and panics.
func (b *Builder) Add(entity rdf.TermID, tokens [NumFields][]string) {
	idx := b.idx
	if _, dup := idx.docOf[entity]; dup {
		panic(fmt.Sprintf("index: entity %d added twice", entity))
	}
	doc := len(idx.entities)
	idx.entities = append(idx.entities, entity)
	idx.docOf[entity] = doc
	for f := Field(0); f < NumFields; f++ {
		fi := &idx.fields[f]
		toks := tokens[f]
		fi.docLen = append(fi.docLen, int32(len(toks)))
		fi.totalLen += int64(len(toks))
		if len(toks) == 0 {
			continue
		}
		tf := map[string]int32{}
		for _, t := range toks {
			tf[t]++
			fi.collTF[t]++
		}
		// Deterministic posting construction: sort the doc's terms.
		terms := make([]string, 0, len(tf))
		for t := range tf {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		for _, t := range terms {
			fi.postings[t] = append(fi.postings[t], Posting{Doc: doc, TF: tf[t]})
		}
	}
}

// Build finalizes and returns the index. The builder must not be used
// afterwards.
func (b *Builder) Build() *Index {
	idx := b.idx
	b.idx = nil
	return idx
}

// DocCount reports the number of indexed documents.
func (x *Index) DocCount() int { return len(x.entities) }

// Entity maps a document ordinal back to its entity ID.
func (x *Index) Entity(doc int) rdf.TermID { return x.entities[doc] }

// DocOf maps an entity to its document ordinal.
func (x *Index) DocOf(e rdf.TermID) (int, bool) {
	d, ok := x.docOf[e]
	return d, ok
}

// Postings returns the posting list of term in field f (ascending doc
// order; shared slice, do not modify).
func (x *Index) Postings(f Field, term string) []Posting {
	return x.fields[f].postings[term]
}

// DocLen reports the token length of field f in document doc.
func (x *Index) DocLen(f Field, doc int) int { return int(x.fields[f].docLen[doc]) }

// AvgDocLen reports the mean token length of field f across documents.
func (x *Index) AvgDocLen(f Field) float64 {
	if len(x.entities) == 0 {
		return 0
	}
	return float64(x.fields[f].totalLen) / float64(len(x.entities))
}

// CollectionProb returns the collection language model probability
// p(term | C_f): collection term frequency over total field length. It is
// 0 for out-of-vocabulary terms.
func (x *Index) CollectionProb(f Field, term string) float64 {
	fi := &x.fields[f]
	if fi.totalLen == 0 {
		return 0
	}
	return float64(fi.collTF[term]) / float64(fi.totalLen)
}

// DocFreq reports the number of documents containing term in field f.
func (x *Index) DocFreq(f Field, term string) int {
	return len(x.fields[f].postings[term])
}

// TotalLen reports the summed token length of field f.
func (x *Index) TotalLen(f Field) int64 { return x.fields[f].totalLen }

// CandidateDocs returns the ascending, deduplicated set of documents that
// contain at least one of the terms in at least one field — the candidate
// pool every retrieval model scores.
func (x *Index) CandidateDocs(terms []string) []int {
	seen := map[int]bool{}
	for _, t := range terms {
		for f := Field(0); f < NumFields; f++ {
			for _, p := range x.fields[f].postings[t] {
				seen[p.Doc] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// TF returns the term frequency of term in (field, doc), 0 if absent.
func (x *Index) TF(f Field, term string, doc int) int32 {
	ps := x.fields[f].postings[term]
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Doc >= doc })
	if i < len(ps) && ps[i].Doc == doc {
		return ps[i].TF
	}
	return 0
}
