package expand

import (
	"time"

	"pivote/internal/obs"
)

// Per-entry-point latency histograms. One observation per expander
// call — never inside the scatter loops — so the overhead is two
// time.Now calls per expansion.
var (
	histPivotE   = expandHist("pivote")
	histFeatures = expandHist("features")
	histScore    = expandHist("score")
	histMethod   = map[Method]*obs.Histogram{
		MethodCommonNeighbors: expandHist("common-neighbors"),
		MethodJaccard:         expandHist("jaccard"),
		MethodFeatureCount:    expandHist("feature-count"),
		MethodPPR:             expandHist("ppr"),
	}
)

func expandHist(method string) *obs.Histogram {
	return obs.Default.Histogram("pivote_expand_seconds",
		"Candidate expansion latency by entry point.", obs.L("method", method))
}

// expandStart returns the clock, or zero when instrumentation is off.
func expandStart() time.Time {
	if !obs.On() {
		return time.Time{}
	}
	return time.Now()
}

// expandEnd records one expansion. Deferred with pre-evaluated
// arguments, so it costs no closure allocation.
func expandEnd(h *obs.Histogram, t0 time.Time) {
	if t0.IsZero() || h == nil {
		return
	}
	h.Observe(time.Since(t0))
}
