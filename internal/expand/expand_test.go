package expand

import (
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

func newExpander(t testing.TB, opts Options) (*Expander, *kgtest.Fixture) {
	t.Helper()
	f := kgtest.Build()
	return New(semfeat.NewEngine(f.Graph), opts), f
}

func names(rs []Ranked) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

func TestExpandFindsSimilarFilms(t *testing.T) {
	// "Find films similar to Forrest Gump": Tom Hanks films sharing the
	// director or cast must dominate; the Leonardo DiCaprio films must
	// rank below them or be absent.
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked, feats := x.Expand([]rdf.TermID{f.E("Forrest_Gump")}, 0)
	if len(ranked) == 0 {
		t.Fatal("no recommendations")
	}
	if len(feats) == 0 {
		t.Fatal("no features returned")
	}
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.Name] = i + 1
	}
	for _, want := range []string{"Cast Away", "Apollo 13"} {
		p, ok := pos[want]
		if !ok {
			t.Fatalf("%s missing from recommendations: %v", want, names(ranked))
		}
		if incep, ok := pos["Inception"]; ok && incep < p {
			t.Fatalf("Inception (%d) outranked %s (%d)", incep, want, p)
		}
	}
}

func TestExpandExcludesSeedsByDefault(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked, _ := x.Expand([]rdf.TermID{f.E("Forrest_Gump")}, 0)
	for _, r := range ranked {
		if r.Entity == f.E("Forrest_Gump") {
			t.Fatal("seed appeared in results")
		}
	}
	x2, f2 := newExpander(t, Options{SameTypeOnly: true, IncludeSeeds: true})
	ranked2, _ := x2.Expand([]rdf.TermID{f2.E("Forrest_Gump")}, 0)
	found := false
	for _, r := range ranked2 {
		if r.Entity == f2.E("Forrest_Gump") {
			found = true
		}
	}
	if !found {
		t.Fatal("IncludeSeeds did not keep the seed")
	}
}

func TestExpandSameTypeFilter(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked, _ := x.Expand([]rdf.TermID{f.E("Forrest_Gump")}, 0)
	film := f.E("Film")
	for _, r := range ranked {
		if got := x.g.PrimaryType(r.Entity); got != film {
			t.Fatalf("%s has primary type %s, want Film", r.Name, x.g.Name(got))
		}
	}
	// Without the filter, people (e.g. co-stars via ~starring features)
	// may appear.
	x2, f2 := newExpander(t, Options{SameTypeOnly: false})
	ranked2, _ := x2.Expand([]rdf.TermID{f2.E("Forrest_Gump")}, 0)
	if len(ranked2) < len(ranked) {
		t.Fatalf("unfiltered expansion smaller than filtered: %d < %d", len(ranked2), len(ranked))
	}
}

func TestExpandTwoSeedsSharpensRanking(t *testing.T) {
	// Seeds {Forrest_Gump, Apollo_13} share Gary Sinise and Tom Hanks;
	// their strongest co-member should be a Hanks film.
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked, _ := x.Expand([]rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}, 3)
	if len(ranked) == 0 {
		t.Fatal("no recommendations")
	}
	hanksFilms := map[string]bool{
		"Cast Away": true, "The Green Mile": true, "Philadelphia": true,
		"Saving Private Ryan": true,
	}
	if !hanksFilms[ranked[0].Name] {
		t.Fatalf("top recommendation = %s, want a Tom Hanks film", ranked[0].Name)
	}
}

func TestExpandTopKBound(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked, _ := x.Expand([]rdf.TermID{f.E("Forrest_Gump")}, 2)
	if len(ranked) > 2 {
		t.Fatalf("k=2 returned %d", len(ranked))
	}
}

func TestExpandScoresNonIncreasing(t *testing.T) {
	x, f := newExpander(t, Options{})
	ranked, _ := x.Expand([]rdf.TermID{f.E("Forrest_Gump"), f.E("Cast_Away")}, 0)
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("scores increase at %d", i)
		}
	}
}

func TestExpandEmptySeeds(t *testing.T) {
	x, _ := newExpander(t, Options{})
	ranked, feats := x.Expand(nil, 5)
	if len(ranked) != 0 || len(feats) != 0 {
		t.Fatalf("empty seeds produced %d ranked, %d feats", len(ranked), len(feats))
	}
}

func TestAllMethodsReturnFilms(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	seeds := []rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}
	for _, m := range Methods() {
		ranked := x.ExpandWith(m, seeds, 5)
		if len(ranked) == 0 {
			t.Fatalf("%v returned nothing", m)
		}
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Score > ranked[i-1].Score {
				t.Fatalf("%v scores not sorted", m)
			}
		}
		for _, r := range ranked {
			if r.Entity == seeds[0] || r.Entity == seeds[1] {
				t.Fatalf("%v leaked a seed", m)
			}
		}
	}
}

func TestCommonNeighborsFindsCoStarFilms(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked := x.ExpandWith(MethodCommonNeighbors, []rdf.TermID{f.E("Forrest_Gump")}, 0)
	pos := map[string]int{}
	for i, r := range ranked {
		pos[r.Name] = i + 1
	}
	// Cast Away shares Tom Hanks AND Robert Zemeckis with the seed (2
	// common neighbours); Philadelphia shares only Tom Hanks.
	ca, okCA := pos["Cast Away"]
	ph, okPH := pos["Philadelphia"]
	if !okCA || !okPH {
		t.Fatalf("expected films missing: %v", names(ranked))
	}
	if ca > ph {
		t.Fatalf("Cast Away (%d) should outrank Philadelphia (%d)", ca, ph)
	}
}

func TestJaccardNormalizesDegree(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked := x.ExpandWith(MethodJaccard, []rdf.TermID{f.E("Forrest_Gump")}, 0)
	if len(ranked) == 0 {
		t.Fatal("Jaccard returned nothing")
	}
	for _, r := range ranked {
		if r.Score <= 0 || r.Score > float64(len(ranked))+1 {
			t.Fatalf("implausible Jaccard score %f for %s", r.Score, r.Name)
		}
	}
}

func TestFeatureCountIsIntegerScores(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked := x.ExpandWith(MethodFeatureCount, []rdf.TermID{f.E("Forrest_Gump")}, 0)
	for _, r := range ranked {
		if r.Score != float64(int(r.Score)) {
			t.Fatalf("FeatureCount score %f not integral", r.Score)
		}
	}
}

func TestPPRMassBounded(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: false, IncludeSeeds: true})
	ranked := x.ExpandWith(MethodPPR, []rdf.TermID{f.E("Forrest_Gump")}, 0)
	total := 0.0
	for _, r := range ranked {
		if r.Score < 0 {
			t.Fatalf("negative PPR mass for %s", r.Name)
		}
		total += r.Score
	}
	if total > 1.0+1e-9 {
		t.Fatalf("PPR mass %f exceeds 1", total)
	}
	if total < 0.5 {
		t.Fatalf("PPR mass %f implausibly low", total)
	}
}

func TestPPRSeedNeighborsScoreHigh(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	ranked := x.ExpandWith(MethodPPR, []rdf.TermID{f.E("Forrest_Gump")}, 3)
	if len(ranked) == 0 {
		t.Fatal("PPR returned nothing")
	}
	// The top film should be one connected to Forrest Gump through
	// shared people (any Hanks/Zemeckis film qualifies).
	connected := map[string]bool{
		"Cast Away": true, "Apollo 13": true, "The Green Mile": true,
		"Philadelphia": true, "Saving Private Ryan": true,
	}
	if !connected[ranked[0].Name] {
		t.Fatalf("PPR top film = %s, want a connected film", ranked[0].Name)
	}
}

func TestUnknownMethodPanics(t *testing.T) {
	x, f := newExpander(t, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method did not panic")
		}
	}()
	x.ExpandWith(Method(77), []rdf.TermID{f.E("Forrest_Gump")}, 1)
}

func TestMethodString(t *testing.T) {
	want := map[Method]string{
		MethodPivotE:          "PivotE-SF",
		MethodCommonNeighbors: "CommonNeighbors",
		MethodJaccard:         "Jaccard",
		MethodFeatureCount:    "FeatureCount",
		MethodPPR:             "PPR",
		Method(9):             "Method(9)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("Method(%d).String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.TopFeatures != 50 || o.PPRAlpha != 0.15 || o.PPRIterations != 15 {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{TopFeatures: 7, PPRAlpha: 0.3, PPRIterations: 5}.withDefaults()
	if o2.TopFeatures != 7 || o2.PPRAlpha != 0.3 || o2.PPRIterations != 5 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestExpandDeterministic(t *testing.T) {
	x, f := newExpander(t, Options{SameTypeOnly: true})
	seeds := []rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}
	for _, m := range Methods() {
		a := x.ExpandWith(m, seeds, 10)
		b := x.ExpandWith(m, seeds, 10)
		if len(a) != len(b) {
			t.Fatalf("%v nondeterministic count", m)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v nondeterministic at %d: %v vs %v", m, i, a[i], b[i])
			}
		}
	}
}

func BenchmarkExpandPivotE(b *testing.B) {
	f := kgtest.Build()
	x := New(semfeat.NewEngine(f.Graph), Options{SameTypeOnly: true})
	seeds := []rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := x.Expand(seeds, 10)
		if len(r) == 0 {
			b.Fatal("no results")
		}
	}
}
