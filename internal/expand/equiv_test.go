package expand_test

import (
	"fmt"
	"sort"
	"testing"

	"pivote/internal/expand"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
	"pivote/internal/synth"
)

// The extent-driven scorer must reproduce the naive per-candidate probe
// loop exactly: same candidates, same scores, same order. The reference
// implementations below are the pre-refactor algorithms, kept verbatim
// (maps, per-pair Prob probes, full sort) as an executable spec.

func naiveTop(ranked []expand.Ranked, k int) []expand.Ranked {
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Score != ranked[j].Score {
			return ranked[i].Score > ranked[j].Score
		}
		return ranked[i].Entity < ranked[j].Entity
	})
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

func naiveCandidates(g *kg.Graph, en *semfeat.Engine, opts expand.Options, seeds []rdf.TermID, feats []semfeat.Score) []rdf.TermID {
	seedSet := map[rdf.TermID]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}
	var seedTypes map[rdf.TermID]bool
	if opts.SameTypeOnly {
		seedTypes = map[rdf.TermID]bool{}
		for _, s := range seeds {
			if t := g.PrimaryType(s); t != rdf.NoTerm {
				seedTypes[t] = true
			}
		}
	}
	seen := map[rdf.TermID]bool{}
	var out []rdf.TermID
	for _, fs := range feats {
		for _, e := range en.Extent(fs.Feature) {
			if seen[e] {
				continue
			}
			seen[e] = true
			if !opts.IncludeSeeds && seedSet[e] {
				continue
			}
			if seedTypes != nil && !seedTypes[g.PrimaryType(e)] {
				continue
			}
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func naivePivotE(g *kg.Graph, en *semfeat.Engine, opts expand.Options, seeds []rdf.TermID, k, topFeatures int) []expand.Ranked {
	feats := en.Rank(seeds, topFeatures)
	cands := naiveCandidates(g, en, opts, seeds, feats)
	ranked := make([]expand.Ranked, 0, len(cands))
	for _, e := range cands {
		score := 0.0
		for _, fs := range feats {
			p := en.Prob(fs.Feature, e)
			if p > 0 {
				score += p * fs.R
			}
		}
		if score > 0 {
			ranked = append(ranked, expand.Ranked{Entity: e, Name: g.Name(e), Score: score})
		}
	}
	return naiveTop(ranked, k)
}

func naiveFeatureCount(g *kg.Graph, en *semfeat.Engine, opts expand.Options, seeds []rdf.TermID, k, topFeatures int) []expand.Ranked {
	feats := en.Rank(seeds, topFeatures)
	cands := naiveCandidates(g, en, opts, seeds, feats)
	ranked := make([]expand.Ranked, 0, len(cands))
	for _, e := range cands {
		n := 0
		for _, fs := range feats {
			if en.Holds(e, fs.Feature) {
				n++
			}
		}
		if n > 0 {
			ranked = append(ranked, expand.Ranked{Entity: e, Name: g.Name(e), Score: float64(n)})
		}
	}
	return naiveTop(ranked, k)
}

func sameRanking(t *testing.T, label string, got, want []expand.Ranked) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Entity != w.Entity || g.Name != w.Name {
			t.Fatalf("%s: rank %d entity mismatch: got %d(%s), want %d(%s)", label, i, g.Entity, g.Name, w.Entity, w.Name)
		}
		diff := g.Score - w.Score
		if diff < 0 {
			diff = -diff
		}
		// Scores are sums of identical terms; the scatter adds them in a
		// different order, so allow only float round-off.
		tol := 1e-12 * (1 + w.Score)
		if diff > tol {
			t.Fatalf("%s: rank %d score mismatch: got %.17g, want %.17g", label, i, g.Score, w.Score)
		}
	}
}

func TestScoringEquivalenceAllMethods(t *testing.T) {
	res := synth.Generate(synth.Scaled(80))
	g := res.Graph
	m := res.Manifest
	seedSets := [][]rdf.TermID{
		m.Films[:3],
		m.Films[5:7],
		{m.Actors[0]},
		{m.Directors[0], m.Directors[1]},
	}
	optVariants := []expand.Options{
		{SameTypeOnly: true},
		{},
		{SameTypeOnly: true, IncludeSeeds: true},
	}
	featVariants := []semfeat.Options{{}, {Strict: true}}

	for oi, opts := range optVariants {
		for fi, fopts := range featVariants {
			en := semfeat.NewEngineWithOptions(g, fopts)
			x := expand.New(en, opts)
			topF := x.Options().TopFeatures
			for si, seeds := range seedSets {
				for _, k := range []int{10, 0} {
					label := fmt.Sprintf("opts=%d feats=%d seeds=%d k=%d", oi, fi, si, k)
					got, _ := x.Expand(seeds, k)
					want := naivePivotE(g, en, x.Options(), seeds, k, topF)
					sameRanking(t, label+" PivotE", got, want)

					gotFC := x.ExpandWith(expand.MethodFeatureCount, seeds, k)
					wantFC := naiveFeatureCount(g, en, x.Options(), seeds, k, topF)
					sameRanking(t, label+" FeatureCount", gotFC, wantFC)
				}
			}
		}
	}
}

// The three baselines did not change algorithmically, but they now share
// the bounded-heap top-k selection; pin their rankings as deterministic
// and consistent across repeated runs and engines.
func TestBaselineMethodsDeterministic(t *testing.T) {
	res := synth.Generate(synth.Scaled(60))
	g := res.Graph
	seeds := res.Manifest.Films[:2]
	for _, method := range []expand.Method{expand.MethodCommonNeighbors, expand.MethodJaccard, expand.MethodPPR} {
		x1 := expand.New(semfeat.NewEngine(g), expand.Options{SameTypeOnly: true})
		x2 := expand.New(semfeat.NewEngine(g), expand.Options{SameTypeOnly: true})
		a := x1.ExpandWith(method, seeds, 15)
		b := x2.ExpandWith(method, seeds, 15)
		if len(a) == 0 {
			t.Fatalf("%v returned no results", method)
		}
		sameRanking(t, method.String(), a, b)
	}
}

// ExpandWithFeatures (one scatter) must equal the two-pass
// CandidatesOf + ScoreCandidates composition.
func TestExpandWithFeaturesEquivalence(t *testing.T) {
	res := synth.Generate(synth.Scaled(60))
	g := res.Graph
	seeds := res.Manifest.Films[:3]
	for _, opts := range []expand.Options{{SameTypeOnly: true}, {}} {
		en := semfeat.NewEngine(g)
		x := expand.New(en, opts)
		feats := en.Rank(seeds, x.Options().TopFeatures)
		got := x.ExpandWithFeatures(seeds, feats, 12)
		want := x.ScoreCandidates(x.CandidatesOf(seeds, feats), feats, 12)
		sameRanking(t, fmt.Sprintf("opts=%+v", opts), got, want)
	}
}

// CandidatesOf must agree with the naive union-filter-sort reference.
func TestCandidatesEquivalence(t *testing.T) {
	res := synth.Generate(synth.Scaled(60))
	g := res.Graph
	seeds := res.Manifest.Films[:3]
	for _, opts := range []expand.Options{{SameTypeOnly: true}, {}, {IncludeSeeds: true}} {
		en := semfeat.NewEngine(g)
		x := expand.New(en, opts)
		feats := en.Rank(seeds, x.Options().TopFeatures)
		got := x.CandidatesOf(seeds, feats)
		want := naiveCandidates(g, en, x.Options(), seeds, feats)
		if len(got) != len(want) {
			t.Fatalf("opts=%+v: got %d candidates, want %d", opts, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("opts=%+v: candidate %d: got %d, want %d", opts, i, got[i], want[i])
			}
		}
	}
}
