package expand_test

import (
	"sync"
	"testing"

	"pivote/internal/expand"
	"pivote/internal/obs"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
	"pivote/internal/synth"
)

// benchEnv is built once: the graph is immutable and shared, exactly as a
// serving process would hold it.
var (
	benchOnce  sync.Once
	benchRes   *synth.Result
	benchSeeds []rdf.TermID
)

func benchSetup() (*synth.Result, []rdf.TermID) {
	benchOnce.Do(func() {
		benchRes = synth.Generate(synth.Scaled(300))
		benchSeeds = benchRes.Manifest.Films[:3]
	})
	return benchRes, benchSeeds
}

// BenchmarkExpand measures the paper's hot path: rank Φ(Q), union the
// extents, score every candidate with r(e,Q) = Σ p(π|e)·r(π,Q), select
// the top 20. The feature cache is warmed by one run before the loop, as
// in steady-state serving.
func BenchmarkExpand(b *testing.B) {
	res, seeds := benchSetup()
	en := semfeat.NewEngine(res.Graph)
	x := expand.New(en, expand.Options{SameTypeOnly: true})
	x.Expand(seeds, 20) // warm the extent/category caches
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked, _ := x.Expand(seeds, 20)
		if len(ranked) == 0 {
			b.Fatal("empty expansion")
		}
	}
}

// BenchmarkExpandStrict is the same pass with the category back-off
// disabled: pure extent scatter, no per-candidate probing.
func BenchmarkExpandStrict(b *testing.B) {
	res, seeds := benchSetup()
	en := semfeat.NewEngineWithOptions(res.Graph, semfeat.Options{Strict: true})
	x := expand.New(en, expand.Options{SameTypeOnly: true})
	x.Expand(seeds, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked, _ := x.Expand(seeds, 20)
		if len(ranked) == 0 {
			b.Fatal("empty expansion")
		}
	}
}

// BenchmarkExpandUninstrumented is BenchmarkExpand with the obs layer
// switched off; the pair is published as BENCH_obs.json and gated at
// ≤1.10× in benchgates.json.
func BenchmarkExpandUninstrumented(b *testing.B) {
	res, seeds := benchSetup()
	en := semfeat.NewEngine(res.Graph)
	x := expand.New(en, expand.Options{SameTypeOnly: true})
	x.Expand(seeds, 20)
	prev := obs.SetEnabled(false)
	defer obs.SetEnabled(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranked, _ := x.Expand(seeds, 20)
		if len(ranked) == 0 {
			b.Fatal("empty expansion")
		}
	}
}
