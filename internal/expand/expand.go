// Package expand implements PivotE's entity recommendation (§2.3.2 of the
// paper): given a query Q of seed entities, candidate entities are ranked
// by r(e,Q) = Σ_{π∈Φ(Q)} p(π|e) × r(π,Q), where Φ(Q) is the top-K
// semantic features of the seed set. This is the entity-set-expansion
// model of the paper's refs [1][6].
//
// For the quality experiments the package also implements the classical
// baselines a full evaluation would compare against: common-neighbour
// counting, Jaccard neighbourhood similarity, unweighted shared-feature
// counting, and personalized PageRank (random walk with restart).
package expand

import (
	"context"
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"sync"

	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
	"pivote/internal/topk"
)

// Method selects the expansion model.
type Method int

const (
	// MethodPivotE is the paper's SF-based ranking.
	MethodPivotE Method = iota
	// MethodCommonNeighbors scores candidates by summed common-neighbour
	// counts with the seeds.
	MethodCommonNeighbors
	// MethodJaccard scores candidates by summed Jaccard similarity of
	// entity neighbourhoods.
	MethodJaccard
	// MethodFeatureCount counts shared top features without weights —
	// PivotE with both d(π) and the error-tolerant back-off removed.
	MethodFeatureCount
	// MethodPPR is personalized PageRank (random walk with restart) from
	// the seed set over the semantic entity graph.
	MethodPPR
)

func (m Method) String() string {
	switch m {
	case MethodPivotE:
		return "PivotE-SF"
	case MethodCommonNeighbors:
		return "CommonNeighbors"
	case MethodJaccard:
		return "Jaccard"
	case MethodFeatureCount:
		return "FeatureCount"
	case MethodPPR:
		return "PPR"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists every implemented expansion method, PivotE first.
func Methods() []Method {
	return []Method{MethodPivotE, MethodCommonNeighbors, MethodJaccard, MethodFeatureCount, MethodPPR}
}

// Options tune expansion; the zero value means the defaults documented on
// each field.
type Options struct {
	// TopFeatures is K = |Φ(Q)|, the number of ranked features used for
	// candidate generation and scoring. Default 50.
	TopFeatures int
	// SameTypeOnly keeps only candidates sharing a primary type with at
	// least one seed — PivotE's investigation semantics (the x-axis holds
	// entities of one type).
	SameTypeOnly bool
	// IncludeSeeds keeps the seeds themselves in the ranking; by default
	// they are removed.
	IncludeSeeds bool
	// PPRAlpha is the restart probability (default 0.15) and
	// PPRIterations the number of power iterations (default 15) for
	// MethodPPR.
	PPRAlpha      float64
	PPRIterations int
	// Owned restricts emission to a shard's partition: when non-nil,
	// candidates it rejects are dropped before scoring. Scores of the
	// surviving candidates are bit-identical to an unpartitioned
	// expander's — every method scores against the full graph (extents,
	// neighbourhoods, PPR walk) and only the candidate set narrows.
	Owned func(rdf.TermID) bool
}

func (o Options) withDefaults() Options {
	if o.TopFeatures <= 0 {
		o.TopFeatures = 50
	}
	if o.PPRAlpha <= 0 || o.PPRAlpha >= 1 {
		o.PPRAlpha = 0.15
	}
	if o.PPRIterations <= 0 {
		o.PPRIterations = 15
	}
	return o
}

// Ranked is one recommended entity.
type Ranked struct {
	Entity rdf.TermID
	Name   string
	Score  float64
}

// Expander runs entity set expansion over one graph. All methods are
// safe for concurrent use: working state lives in pooled scratch
// structures, and the feature engine is concurrency-safe.
type Expander struct {
	en   *semfeat.Engine
	g    *kg.Graph
	opts Options
}

// New returns an expander with the given options over the feature
// engine's graph.
func New(en *semfeat.Engine, opts Options) *Expander {
	return &Expander{en: en, g: en.Graph(), opts: opts.withDefaults()}
}

// Options returns the effective options.
func (x *Expander) Options() Options { return x.opts }

// denseSize is the dense-array bound for per-TermID scratch.
func (x *Expander) denseSize() int { return int(x.g.Store().MaxTermID()) + 2 }

// Expand ranks candidates for the seed set with the paper's model and
// returns the top-k entities along with the ranked feature set Φ(Q) that
// produced them (for the y-axis and the heat map). k <= 0 returns all.
//
// Scoring is extent-driven: one scatter pass over the ranked features'
// extents produces both the candidate union and every exact-match score,
// and only the (candidate, feature) misses fall back to the per-pair
// probability probe. See score.go.
func (x *Expander) Expand(seeds []rdf.TermID, k int) ([]Ranked, []semfeat.Score) {
	out, feats, _ := x.ExpandCtx(context.Background(), seeds, k)
	return out, feats
}

// ExpandCtx is Expand with cancellation: the scatter and finalize passes
// check the context between features/chunks and the call returns the
// context's error instead of a partial ranking when it fires.
func (x *Expander) ExpandCtx(ctx context.Context, seeds []rdf.TermID, k int) ([]Ranked, []semfeat.Score, error) {
	defer expandEnd(histPivotE, expandStart())
	feats, err := x.en.RankCtx(ctx, seeds, x.opts.TopFeatures)
	if err != nil {
		return nil, nil, err
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.begin(x.denseSize(), maskWords(len(feats)))
	if err := x.scatter(ctx, sc, feats); err != nil {
		return nil, nil, err
	}
	cands := x.collectCandidates(sc, seeds)
	if err := x.finalize(ctx, sc, cands, feats); err != nil {
		return nil, nil, err
	}
	return x.rankTop(sc, cands, k), feats, nil
}

// ExpandWith ranks candidates using the selected method. For
// MethodPivotE it is equivalent to Expand (features discarded).
func (x *Expander) ExpandWith(method Method, seeds []rdf.TermID, k int) []Ranked {
	out, _ := x.ExpandWithCtx(context.Background(), method, seeds, k)
	return out
}

// ExpandWithCtx is ExpandWith with cancellation, checked inside each
// method's long loop (scatter pass, neighbourhood walk, PPR iteration).
func (x *Expander) ExpandWithCtx(ctx context.Context, method Method, seeds []rdf.TermID, k int) ([]Ranked, error) {
	defer expandEnd(histMethod[method], expandStart())
	switch method {
	case MethodPivotE:
		r, _, err := x.ExpandCtx(ctx, seeds, k)
		return r, err
	case MethodCommonNeighbors:
		return x.expandNeighbors(ctx, seeds, k, false)
	case MethodJaccard:
		return x.expandNeighbors(ctx, seeds, k, true)
	case MethodFeatureCount:
		return x.expandFeatureCount(ctx, seeds, k)
	case MethodPPR:
		return x.expandPPR(ctx, seeds, k)
	default:
		panic(fmt.Sprintf("expand: unknown method %d", int(method)))
	}
}

// CandidatesOf exposes candidate generation for callers that assemble
// their own feature sets (the core engine mixes user-pinned feature
// conditions with seed-derived features): the union of the features'
// extents, same-type filtered, seeds removed per the options.
func (x *Expander) CandidatesOf(seeds []rdf.TermID, feats []semfeat.Score) []rdf.TermID {
	return x.candidates(seeds, feats)
}

// ExpandWithFeaturesCtx is ExpandWithFeatures with cancellation.
func (x *Expander) ExpandWithFeaturesCtx(ctx context.Context, seeds []rdf.TermID, feats []semfeat.Score, k int) ([]Ranked, error) {
	defer expandEnd(histFeatures, expandStart())
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.begin(x.denseSize(), maskWords(len(feats)))
	if err := x.scatter(ctx, sc, feats); err != nil {
		return nil, err
	}
	cands := x.collectCandidates(sc, seeds)
	if err := x.finalize(ctx, sc, cands, feats); err != nil {
		return nil, err
	}
	return x.rankTop(sc, cands, k), nil
}

// ScoreCandidatesCtx is ScoreCandidates with cancellation.
func (x *Expander) ScoreCandidatesCtx(ctx context.Context, cands []rdf.TermID, feats []semfeat.Score, k int) ([]Ranked, error) {
	defer expandEnd(histScore, expandStart())
	if x.opts.Owned != nil {
		kept := make([]rdf.TermID, 0, len(cands))
		for _, c := range cands {
			if x.opts.Owned(c) {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.begin(x.denseSize(), maskWords(len(feats)))
	if err := x.scatter(ctx, sc, feats); err != nil {
		return nil, err
	}
	if err := x.finalize(ctx, sc, cands, feats); err != nil {
		return nil, err
	}
	return x.rankTop(sc, cands, k), nil
}

// ExpandWithFeatures ranks candidates for an explicit feature set Φ in
// one pass: the scatter yields the candidate union (same-type filtered,
// seeds removed per the options) and the exact-match scores together.
// This is Expand without the feature ranking — the core engine uses it
// when Φ mixes user-pinned conditions with seed-derived features.
func (x *Expander) ExpandWithFeatures(seeds []rdf.TermID, feats []semfeat.Score, k int) []Ranked {
	out, _ := x.ExpandWithFeaturesCtx(context.Background(), seeds, feats, k)
	return out
}

// ScoreCandidates ranks an explicit candidate set against an explicit
// feature set with the paper's r(e,Q) = Σ p(π|e)·r(π,Q) and returns the
// top-k.
func (x *Expander) ScoreCandidates(cands []rdf.TermID, feats []semfeat.Score, k int) []Ranked {
	out, _ := x.ScoreCandidatesCtx(context.Background(), cands, feats, k)
	return out
}

// candidates unions the extents of the ranked features, applies the
// same-type filter and removes seeds. The result is a fresh sorted slice.
func (x *Expander) candidates(seeds []rdf.TermID, feats []semfeat.Score) []rdf.TermID {
	sc := scratchPool.Get().(*scratch)
	sc.begin(x.denseSize(), maskWords(len(feats)))
	_ = x.scatter(context.Background(), sc, feats)
	out := append([]rdf.TermID(nil), x.collectCandidates(sc, seeds)...)
	scratchPool.Put(sc)
	return out
}

// expandFeatureCount scores candidates by the number of top features they
// hold, unweighted and strict: the popcount of the scatter bitmask.
func (x *Expander) expandFeatureCount(ctx context.Context, seeds []rdf.TermID, k int) ([]Ranked, error) {
	feats, err := x.en.RankCtx(ctx, seeds, x.opts.TopFeatures)
	if err != nil {
		return nil, err
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.begin(x.denseSize(), maskWords(len(feats)))
	if err := x.scatter(ctx, sc, feats); err != nil {
		return nil, err
	}
	cands := x.collectCandidates(sc, seeds)
	if cap(sc.scores) < len(cands) {
		sc.scores = make([]float64, len(cands))
	}
	sc.scores = sc.scores[:len(cands)]
	w := sc.words
	for i, e := range cands {
		n := 0
		if sc.stamp[e] == sc.epoch {
			for _, word := range sc.mask[int(e)*w : int(e)*w+w] {
				n += bits.OnesCount64(word)
			}
		}
		sc.scores[i] = float64(n)
	}
	return x.rankTop(sc, cands, k), nil
}

// nbrScratch pools the dense working state of the neighbourhood
// baselines: an epoch-stamped visited array for per-set deduplication
// (same pattern as the scorer's scratch), a second stamp for candidate
// collection, and reusable ID buffers. Replacing the per-call
// map[rdf.TermID]bool removed the last per-pivot map allocation in the
// package.
type nbrScratch struct {
	epoch     uint32
	stamp     []uint32 // per-call neighbour dedup
	candEpoch uint32
	candStamp []uint32 // candidate-set dedup
	buf       []rdf.TermID
	seeds     []rdf.TermID
	types     []rdf.TermID
}

var nbrPool = sync.Pool{New: func() interface{} { return &nbrScratch{} }}

// begin sizes the stamp arrays for n term IDs and opens a fresh
// candidate epoch.
func (ns *nbrScratch) begin(n int) {
	if len(ns.stamp) < n {
		ns.stamp = make([]uint32, n)
		ns.candStamp = make([]uint32, n)
	}
	ns.candEpoch++
	if ns.candEpoch == 0 {
		for i := range ns.candStamp {
			ns.candStamp[i] = 0
		}
		ns.candEpoch = 1
	}
}

// neighborAppend appends the distinct semantic entity neighbours of e to
// dst and returns it sorted ascending. dst must be empty (or nil); the
// pooled stamp array deduplicates without allocating.
func (x *Expander) neighborAppend(ns *nbrScratch, dst []rdf.TermID, e rdf.TermID) []rdf.TermID {
	ns.epoch++
	if ns.epoch == 0 {
		for i := range ns.stamp {
			ns.stamp[i] = 0
		}
		ns.epoch = 1
	}
	voc := x.g.Voc()
	for _, edge := range x.g.Store().Out(e) {
		if !voc.IsMeta(edge.P) && x.g.IsEntity(edge.Node) && ns.stamp[edge.Node] != ns.epoch {
			ns.stamp[edge.Node] = ns.epoch
			dst = append(dst, edge.Node)
		}
	}
	for _, edge := range x.g.Store().In(e) {
		if !voc.IsMeta(edge.P) && x.g.IsEntity(edge.Node) && ns.stamp[edge.Node] != ns.epoch {
			ns.stamp[edge.Node] = ns.epoch
			dst = append(dst, edge.Node)
		}
	}
	slices.Sort(dst)
	return dst
}

// expandNeighbors implements the common-neighbour and Jaccard baselines.
// Candidates are entities at distance 2 from a seed (sharing at least one
// neighbour). Neighbour sets are sorted ID runs deduplicated through the
// pooled stamps; intersections are linear merges.
func (x *Expander) expandNeighbors(ctx context.Context, seeds []rdf.TermID, k int, jaccard bool) ([]Ranked, error) {
	ns := nbrPool.Get().(*nbrScratch)
	defer nbrPool.Put(ns)
	ns.begin(x.denseSize())

	sortedSeeds := append(ns.seeds[:0], seeds...)
	slices.Sort(sortedSeeds)
	ns.seeds = sortedSeeds
	seedNbrs := make([][]rdf.TermID, len(seeds))
	var cands []rdf.TermID
	for i, s := range seeds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		seedNbrs[i] = x.neighborAppend(ns, nil, s)
		for _, n := range seedNbrs[i] {
			ns.buf = x.neighborAppend(ns, ns.buf[:0], n)
			for _, c := range ns.buf {
				if !x.opts.IncludeSeeds && rdf.ContainsSorted(sortedSeeds, c) {
					continue
				}
				if x.opts.Owned != nil && !x.opts.Owned(c) {
					continue
				}
				if ns.candStamp[c] != ns.candEpoch {
					ns.candStamp[c] = ns.candEpoch
					cands = append(cands, c)
				}
			}
		}
	}
	ns.types = ns.types[:0]
	if x.opts.SameTypeOnly {
		for _, s := range seeds {
			if t := x.g.PrimaryType(s); t != rdf.NoTerm && !slices.Contains(ns.types, t) {
				ns.types = append(ns.types, t)
			}
		}
		kept := cands[:0]
		for _, c := range cands {
			if slices.Contains(ns.types, x.g.PrimaryType(c)) {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	slices.Sort(cands)

	ranked := make([]Ranked, 0, len(cands))
	for i, c := range cands {
		if i%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ns.buf = x.neighborAppend(ns, ns.buf[:0], c)
		score := 0.0
		for i := range seeds {
			inter := rdf.IntersectSorted(ns.buf, seedNbrs[i])
			if jaccard {
				union := len(ns.buf) + len(seedNbrs[i]) - inter
				if union > 0 {
					score += float64(inter) / float64(union)
				}
			} else {
				score += float64(inter)
			}
		}
		if score > 0 {
			ranked = append(ranked, Ranked{Entity: c, Name: x.g.Name(c), Score: score})
		}
	}
	return x.top(ranked, k), nil
}

// expandPPR runs a power-iteration personalized PageRank from the seeds
// over the semantic entity graph (edges treated as bidirectional, uniform
// transition probabilities).
func (x *Expander) expandPPR(ctx context.Context, seeds []rdf.TermID, k int) ([]Ranked, error) {
	if len(seeds) == 0 {
		return nil, nil
	}
	alpha := x.opts.PPRAlpha
	restart := map[rdf.TermID]float64{}
	for _, s := range seeds {
		restart[s] += 1.0 / float64(len(seeds))
	}
	p := map[rdf.TermID]float64{}
	for s, v := range restart {
		p[s] = v
	}
	// Neighbour lists are recomputed per iteration frontier but memoized
	// across iterations: the frontier stabilizes quickly. Each list is
	// built through the pooled stamp dedup, not a per-node set map.
	sc := nbrPool.Get().(*nbrScratch)
	defer nbrPool.Put(sc)
	sc.begin(x.denseSize())
	nbrCache := map[rdf.TermID][]rdf.TermID{}
	neighbors := func(e rdf.TermID) []rdf.TermID {
		if ns, ok := nbrCache[e]; ok {
			return ns
		}
		ns := x.neighborAppend(sc, nil, e)
		nbrCache[e] = ns
		return ns
	}
	// Accumulation follows sorted node order so floating-point sums are
	// identical across runs (map iteration order is randomized in Go).
	sortedNodes := func(m map[rdf.TermID]float64) []rdf.TermID {
		out := make([]rdf.TermID, 0, len(m))
		for e := range m {
			out = append(out, e)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	restartNodes := sortedNodes(restart)
	const prune = 1e-9
	for it := 0; it < x.opts.PPRIterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := map[rdf.TermID]float64{}
		for _, s := range restartNodes {
			next[s] += alpha * restart[s]
		}
		for _, e := range sortedNodes(p) {
			mass := p[e]
			ns := neighbors(e)
			if len(ns) == 0 {
				// Dangling mass restarts.
				for _, s := range restartNodes {
					next[s] += (1 - alpha) * mass * restart[s]
				}
				continue
			}
			share := (1 - alpha) * mass / float64(len(ns))
			for _, n := range ns {
				next[n] += share
			}
		}
		for e, v := range next {
			if v < prune {
				delete(next, e)
			}
		}
		p = next
	}
	seedSet := map[rdf.TermID]bool{}
	for _, s := range seeds {
		seedSet[s] = true
	}
	var seedTypes map[rdf.TermID]bool
	if x.opts.SameTypeOnly {
		seedTypes = map[rdf.TermID]bool{}
		for _, s := range seeds {
			if t := x.g.PrimaryType(s); t != rdf.NoTerm {
				seedTypes[t] = true
			}
		}
	}
	ranked := make([]Ranked, 0, len(p))
	for e, v := range p {
		if !x.opts.IncludeSeeds && seedSet[e] {
			continue
		}
		if !x.g.IsEntity(e) {
			continue
		}
		if seedTypes != nil && !seedTypes[x.g.PrimaryType(e)] {
			continue
		}
		if x.opts.Owned != nil && !x.opts.Owned(e) {
			continue
		}
		ranked = append(ranked, Ranked{Entity: e, Name: x.g.Name(e), Score: v})
	}
	return x.top(ranked, k), nil
}

// top selects the k best (descending score, ties by entity ID) via the
// shared bounded-heap helper.
func (x *Expander) top(ranked []Ranked, k int) []Ranked {
	return topk.Select(ranked, k, lessRanked)
}
