package expand

import (
	"context"
	"math/bits"
	"slices"
	"sync"

	"pivote/internal/par"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
	"pivote/internal/topk"
)

// The scorer inverts the candidate×feature probe loop of the paper's
// r(e,Q) = Σ p(π|e)·r(π,Q). Instead of asking every candidate about
// every feature (K hash/binary probes per candidate), it scatters each
// feature's extent — a contiguous sorted run of the CSR arrays — into a
// dense per-TermID accumulator: one pass of Σ‖E(π)‖ additions total.
// Alongside the score each touched entity records *which* features it
// matched in a bitmask, so the error-tolerant category back-off is then
// computed only for the (candidate, feature) pairs that actually missed,
// and the exact-match part of the score never probes anything.
//
// All working state lives in a pooled scratch struct with epoch-stamped
// dense arrays: reusing it across calls costs zero allocations and zero
// clearing (a stale entry is detected by its stamp, not by sentinel
// values), and the pool makes concurrent calls on one Expander safe.

// scratch is the reusable dense working state of one scoring pass.
type scratch struct {
	epoch   uint32
	stamp   []uint32     // stamp[e] == epoch ⇔ e touched this pass
	acc     []float64    // Σ r(π,Q) over features whose extent contains e
	mask    []uint64     // per-entity bitset of matched features (stride words)
	words   int          // current mask stride
	touched []rdf.TermID // entities touched this pass, extent order
	cands   []rdf.TermID // candidate buffer
	scores  []float64    // per-candidate final scores
	ranked  []Ranked     // pre-selection result buffer
	seeds   []rdf.TermID // sorted seed buffer
	types   []rdf.TermID // seed primary-type buffer

	// fids holds the dense catalog FeatureIDs of this pass's features,
	// resolved once in scatter (NoFeature for off-catalog features or
	// when the graph has no catalog), so the back-off table fill reads
	// the frozen per-category rows instead of re-resolving Feature
	// structs through the cache.
	fids []semfeat.FeatureID

	// Back-off table for one pass: the distinct categories of the
	// candidate set are assigned dense indexes, and catProb[j*C+ci] holds
	// p(π_j|c_ci), so the per-candidate back-off walk reads arrays only.
	catStamp []uint32
	catIdx   []uint32
	catList  []rdf.TermID
	catProb  []float64
}

// begin sizes the dense arrays for n term IDs and w mask words per entity
// and opens a new epoch.
func (sc *scratch) begin(n, w int) {
	if len(sc.stamp) < n {
		sc.stamp = make([]uint32, n)
		sc.acc = make([]float64, n)
		sc.catStamp = make([]uint32, n)
		sc.catIdx = make([]uint32, n)
	}
	if sc.words != w || len(sc.mask) < n*w {
		sc.mask = make([]uint64, n*w)
		sc.words = w
		// The stride changed: stale bits from the previous layout would
		// be misattributed, so force every stamp stale.
		sc.clearStamps()
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: all stamps ambiguous, clear them
		sc.clearStamps()
		sc.epoch = 1
	}
	sc.touched = sc.touched[:0]
	sc.cands = sc.cands[:0]
	sc.ranked = sc.ranked[:0]
}

func (sc *scratch) clearStamps() {
	for i := range sc.stamp {
		sc.stamp[i] = 0
	}
	for i := range sc.catStamp {
		sc.catStamp[i] = 0
	}
}

var scratchPool = sync.Pool{New: func() interface{} { return &scratch{} }}

// scatter adds r(π,Q) of every feature into the accumulator over the
// feature's extent and records the match bit. Feature index j must fit
// the mask stride chosen by the caller. The context is checked once per
// feature — the unit of the long scatter loop. Features are resolved to
// dense catalog FeatureIDs once here; the extent read and the later
// back-off fill then work on the frozen flat arrays directly.
func (x *Expander) scatter(ctx context.Context, sc *scratch, feats []semfeat.Score) error {
	cat := x.en.Catalog()
	sc.fids = sc.fids[:0]
	w := sc.words
	for j, fs := range feats {
		if err := ctx.Err(); err != nil {
			return err
		}
		fid := semfeat.NoFeature
		if cat != nil {
			fid = cat.Lookup(fs.Feature)
		}
		sc.fids = append(sc.fids, fid)
		var ext []rdf.TermID
		if fid != semfeat.NoFeature {
			ext = cat.Extent(fid)
		} else {
			ext = x.en.Extent(fs.Feature)
		}
		bit := uint64(1) << (j % 64)
		word := j / 64
		for _, e := range ext {
			if sc.stamp[e] != sc.epoch {
				sc.stamp[e] = sc.epoch
				sc.acc[e] = 0
				row := sc.mask[int(e)*w : int(e)*w+w]
				for i := range row {
					row[i] = 0
				}
				sc.touched = append(sc.touched, e)
			}
			sc.acc[e] += fs.R
			sc.mask[int(e)*w+word] |= bit
		}
	}
	return nil
}

// prepareBackoffTable registers the distinct categories of every
// candidate that missed at least one feature under a dense index and
// fills catProb[j*C+ci] = p(π_j|c_ci) for the feature×category cross
// product, pulling each probability from the shared cache exactly once
// per pass. Returns C. Candidates that matched every feature never walk
// the back-off, so their categories are skipped — when exact matches
// dominate, C stays near zero. The K×C fill is far smaller than the
// per-(candidate, feature) probe count it replaces, and the fill itself
// is parallel over features.
func (x *Expander) prepareBackoffTable(sc *scratch, cands []rdf.TermID, feats []semfeat.Score) int {
	sc.catList = sc.catList[:0]
	w := sc.words
	for _, e := range cands {
		var row []uint64
		if sc.stamp[e] == sc.epoch {
			row = sc.mask[int(e)*w : int(e)*w+w]
		}
		if !missedAny(row, len(feats)) || !x.g.IsEntity(e) {
			continue
		}
		for _, cat := range x.en.CategoriesBySize(e) {
			if sc.catStamp[cat] != sc.epoch {
				sc.catStamp[cat] = sc.epoch
				sc.catIdx[cat] = uint32(len(sc.catList))
				sc.catList = append(sc.catList, cat)
			}
		}
	}
	c := len(sc.catList)
	if need := len(feats) * c; cap(sc.catProb) < need {
		sc.catProb = make([]float64, need)
	}
	sc.catProb = sc.catProb[:len(feats)*c]
	cache := x.en.Cache()
	catalog := x.en.Catalog()
	par.For(len(feats), 4, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			row := sc.catProb[j*c : (j+1)*c]
			if fid := sc.fids[j]; catalog != nil && fid != semfeat.NoFeature {
				// Dense path: read the frozen per-category back-off rows
				// keyed by FeatureID — no locks, no map probes.
				for ci, cat := range sc.catList {
					row[ci] = catalog.ProbGivenCategory(fid, cat)
				}
				continue
			}
			for ci, cat := range sc.catList {
				row[ci] = cache.ProbGivenCategory(feats[j].Feature, cat)
			}
		}
	})
	return c
}

// finalize computes the exact score of each candidate: the scattered
// exact-match sum plus, for every feature the candidate missed, the same
// p(π|e) term the naive loop would have used (Holds short-circuit for
// non-entities, category back-off otherwise, zero under Strict). The
// back-off walk reads the dense table built by prepareBackoffTable —
// no locks, no hashing. Large candidate sets fan out over a worker pool;
// each worker writes disjoint indexes of sc.scores, so the result is
// deterministic.
func (x *Expander) finalize(ctx context.Context, sc *scratch, cands []rdf.TermID, feats []semfeat.Score) error {
	if cap(sc.scores) < len(cands) {
		sc.scores = make([]float64, len(cands))
	}
	sc.scores = sc.scores[:len(cands)]
	w := sc.words
	strict := x.en.Options().Strict
	c := 0
	if !strict && len(feats) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		c = x.prepareBackoffTable(sc, cands, feats)
	}
	grain := 256
	if len(feats) >= 16 {
		grain = 32
	}
	par.For(len(cands), grain, func(lo, hi int) {
		if ctx.Err() != nil {
			return // canceled: skip the chunk, caller reports the error
		}
		for i := lo; i < hi; i++ {
			e := cands[i]
			var score float64
			var row []uint64
			if sc.stamp[e] == sc.epoch {
				score = sc.acc[e]
				row = sc.mask[int(e)*w : int(e)*w+w]
			}
			if missedAny(row, len(feats)) {
				isEnt := x.g.IsEntity(e)
				var cats []rdf.TermID
				if isEnt && !strict {
					cats = x.en.CategoriesBySize(e)
				}
				for j, fs := range feats {
					if row != nil && row[j/64]&(1<<(j%64)) != 0 {
						continue // exact match, already in score
					}
					// e ∉ E(π). For entities that implies ¬Holds, so only
					// the back-off can contribute; non-entity IDs are not
					// extent members even when the triple exists, so fall
					// back to the full p(π|e).
					if !isEnt {
						score += x.en.Prob(fs.Feature, e) * fs.R
						continue
					}
					if strict {
						continue
					}
					// Most specific category with p > 0, via the table.
					for _, cat := range cats {
						if p := sc.catProb[j*c+int(sc.catIdx[cat])]; p > 0 {
							score += p * fs.R
							break
						}
					}
				}
			}
			sc.scores[i] = score
		}
	})
	return ctx.Err()
}

// missedAny reports whether any of the k feature bits is unset in row
// (row == nil means all missed).
func missedAny(row []uint64, k int) bool {
	if row == nil {
		return k > 0
	}
	n := 0
	for _, w := range row {
		n += bits.OnesCount64(w)
	}
	return n < k
}

// rankTop converts the scored candidates into the final top-k Ranked
// page, resolving display names only for the survivors.
func (x *Expander) rankTop(sc *scratch, cands []rdf.TermID, k int) []Ranked {
	for i, e := range cands {
		if sc.scores[i] > 0 {
			sc.ranked = append(sc.ranked, Ranked{Entity: e, Score: sc.scores[i]})
		}
	}
	n := len(sc.ranked)
	out := topk.Select(sc.ranked, k, lessRanked)
	if k <= 0 || k >= n {
		// Select sorted in place and returned the scratch buffer: copy
		// out so the result survives scratch reuse.
		out = append([]Ranked(nil), out...)
	}
	for i := range out {
		out[i].Name = x.g.Name(out[i].Entity)
	}
	return out
}

// lessRanked orders descending by score, ties by entity ID.
func lessRanked(a, b Ranked) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Entity < b.Entity
}

// collectCandidates filters the touched set (the union of the extents)
// into sc.cands: seeds removed, same-type applied, ascending order.
func (x *Expander) collectCandidates(sc *scratch, seeds []rdf.TermID) []rdf.TermID {
	sc.seeds = append(sc.seeds[:0], seeds...)
	slices.Sort(sc.seeds)
	sc.types = sc.types[:0]
	if x.opts.SameTypeOnly {
		for _, s := range seeds {
			if t := x.g.PrimaryType(s); t != rdf.NoTerm && !slices.Contains(sc.types, t) {
				sc.types = append(sc.types, t)
			}
		}
	}
	for _, e := range sc.touched {
		if !x.opts.IncludeSeeds && rdf.ContainsSorted(sc.seeds, e) {
			continue
		}
		if x.opts.SameTypeOnly && !slices.Contains(sc.types, x.g.PrimaryType(e)) {
			continue
		}
		if x.opts.Owned != nil && !x.opts.Owned(e) {
			continue
		}
		sc.cands = append(sc.cands, e)
	}
	slices.Sort(sc.cands)
	return sc.cands
}

// maskWords returns the bitset stride for k features.
func maskWords(k int) int {
	if k <= 64 {
		return 1
	}
	return (k + 63) / 64
}
