package search

import (
	"context"
	"math"
	"sync"

	"pivote/internal/index"
	"pivote/internal/par"
	"pivote/internal/topk"
)

// The scatter scorer inverts the retrieval loop. The retained naive path
// (naive.go) is document-at-a-time: for every candidate document it
// probes TF(field, term, doc) — a binary search inside the posting run —
// once per (field, term), and materializes every scored hit before
// selecting the top k. The scatter path is term-at-a-time over the
// frozen index: each query term's posting runs (contiguous CSR slices)
// are scattered into dense per-document TF slots, then one pass over the
// candidate set folds the term into each document's score with the
// *same* per-field arithmetic, in the same order, as the naive inner
// loop — so scores are byte-identical, including the Dirichlet background
// mass that every candidate receives for in-vocabulary terms it does not
// contain. Candidates stream straight into the shared bounded top-k heap;
// no per-query hit list, no candidate map, no binary searches.
//
// All working state lives in a pooled scratch struct with epoch-stamped
// dense arrays (the same pattern as internal/expand's scorer): reusing it
// across queries costs zero allocations and zero clearing — a stale entry
// is detected by its stamp — and the pool makes concurrent SearchCtx
// calls on one shared Engine safe. Per-term constants live in the scratch
// too (foldArgs), so the fold over candidates is a plain method call on
// small queries and only materializes a closure when the candidate set is
// large enough to shard over the worker pool. Cancellation is checked at
// posting-block granularity during scatter and per shard during the
// folds; an abandoned pass leaves only stale epochs behind, which the
// next begin() invalidates wholesale.

// postingBlock is how many postings a scatter loop processes between
// context checks.
const postingBlock = 4096

// parGrain is the minimum candidate count before a fold pass fans out
// over the worker pool; below it the fork-join overhead dominates and
// the pass runs inline.
const parGrain = 2048

// foldArgs carries the per-query and per-term constants of the active
// fold so the parallel shards share one block of state instead of a
// fresh closure environment per term.
type foldArgs struct {
	w        [index.NumFields]float64 // normalized field weights
	dls      [index.NumFields][]int32 // dense per-field doc lengths
	avg      [index.NumFields]float64 // per-field average doc length
	cp       [index.NumFields]float64 // current term: p(t|C_f)
	mu       float64
	k1, b    float64
	idf      float64 // current term: BM25F idf
	cep, tep uint32  // candidate and current-term epochs
}

// scratch is the reusable dense working state of one query.
type scratch struct {
	epoch   uint32
	cstamp  []uint32  // cstamp[d] == cep ⇔ d is a candidate this query
	tstamp  []uint32  // tstamp[d] == tep ⇔ d's slots hold the current term
	mstamp  []uint32  // matched (MLM/LM-names) or eliminated (Boolean) mark
	slots   []int32   // per-term TF scatter slots, NumFields per document
	acc     []float64 // per-document accumulated score
	itot    []int32   // per-document integer tf total (Boolean)
	touched []int32   // candidate documents, first-touch order
	tids    []int32   // resolved dictionary IDs of the query terms
	fa      foldArgs
	heap    topk.Heap[Hit]
}

var scratchPool = sync.Pool{New: func() interface{} { return &scratch{} }}

// begin sizes the dense arrays for n documents and opens a fresh
// candidate epoch, guaranteeing headroom for one more epoch per query
// term. Returns the candidate epoch.
func (sc *scratch) begin(n, terms int) uint32 {
	if len(sc.cstamp) < n {
		sc.cstamp = make([]uint32, n)
		sc.tstamp = make([]uint32, n)
		sc.mstamp = make([]uint32, n)
		sc.slots = make([]int32, n*int(index.NumFields))
		sc.acc = make([]float64, n)
		sc.itot = make([]int32, n)
	}
	if sc.epoch > math.MaxUint32-uint32(terms)-2 {
		// Epoch space about to wrap: every stamp becomes ambiguous, so
		// clear them all and restart. Happens once per 4G queries.
		for i := range sc.cstamp {
			sc.cstamp[i] = 0
			sc.tstamp[i] = 0
			sc.mstamp[i] = 0
		}
		sc.epoch = 0
	}
	sc.epoch++
	sc.touched = sc.touched[:0]
	sc.tids = sc.tids[:0]
	sc.fa = foldArgs{}
	return sc.epoch
}

// nextTermEpoch opens the slot epoch for the next query term.
func (sc *scratch) nextTermEpoch() uint32 {
	sc.epoch++
	return sc.epoch
}

// searchScatter is the production retrieval path: term-at-a-time scatter
// scoring over the frozen index into pooled scratch, streaming into the
// bounded top-k heap.
func (e *Engine) searchScatter(ctx context.Context, terms []string, k int, model Model) ([]Hit, error) {
	// Validate params before touching any state, so errors are cheap.
	var w [index.NumFields]float64
	if model == ModelMLM || model == ModelBM25F {
		var err error
		if w, err = e.normWeights(); err != nil {
			return nil, err
		}
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	cep := sc.begin(e.idx.DocCount(), len(terms))
	for _, t := range terms {
		sc.tids = append(sc.tids, e.idx.LookupTerm(t))
	}
	if err := e.collectCandidates(ctx, sc, cep); err != nil {
		return nil, err
	}
	if len(sc.touched) == 0 {
		return nil, ctx.Err()
	}
	sc.fa.w = w
	sc.fa.cep = cep
	sc.fa.mu = e.params.Mu
	sc.fa.k1, sc.fa.b = e.params.K1, e.params.B
	for f := index.Field(0); f < index.NumFields; f++ {
		sc.fa.dls[f] = e.idx.DocLens(f)
		sc.fa.avg[f] = e.idx.AvgDocLen(f)
	}
	var err error
	switch model {
	case ModelMLM:
		err = e.scatterMLM(ctx, sc)
	case ModelBM25F:
		err = e.scatterBM25F(ctx, sc)
	case ModelLMNames:
		err = e.scatterLMNames(ctx, sc)
	case ModelBoolean:
		err = e.scatterBoolean(ctx, sc)
	}
	if err != nil {
		return nil, err
	}
	return e.selectHits(sc, cep, k, model), nil
}

// collectCandidates stamps the union of the query terms' posting runs
// across all fields — the same candidate pool CandidateDocs computes,
// without the merge — and resets each candidate's accumulators once.
func (e *Engine) collectCandidates(ctx context.Context, sc *scratch, cep uint32) error {
	for ti, tid := range sc.tids {
		if tid < 0 || seenBefore(sc.tids, ti) {
			continue
		}
		for f := index.Field(0); f < index.NumFields; f++ {
			run := e.idx.PostingsByID(f, tid)
			for i := range run {
				if i%postingBlock == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				d := int32(run[i].Doc)
				if sc.cstamp[d] != cep {
					sc.cstamp[d] = cep
					sc.acc[d] = 0
					sc.itot[d] = 0
					sc.touched = append(sc.touched, d)
				}
			}
		}
	}
	return nil
}

// seenBefore reports whether tids[i] already occurred at an earlier
// position — duplicate query terms scatter once per occurrence for
// scoring but need only one candidate-collection walk.
func seenBefore(tids []int32, i int) bool {
	for _, prev := range tids[:i] {
		if prev == tids[i] {
			return true
		}
	}
	return false
}

// scatterTF spreads one term's per-field frequencies into the dense
// slots under a fresh term epoch (recorded in fa.tep). Fields with no
// postings cost nothing.
func (e *Engine) scatterTF(ctx context.Context, sc *scratch, tid int32) error {
	sc.fa.tep = sc.nextTermEpoch()
	if tid < 0 {
		return nil
	}
	tep := sc.fa.tep
	for f := index.Field(0); f < index.NumFields; f++ {
		run := e.idx.PostingsByID(f, tid)
		for i := range run {
			if i%postingBlock == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			d := run[i].Doc
			base := d * int(index.NumFields)
			if sc.tstamp[d] != tep {
				sc.tstamp[d] = tep
				for j := 0; j < int(index.NumFields); j++ {
					sc.slots[base+j] = 0
				}
			}
			sc.slots[base+int(f)] = run[i].TF
		}
	}
	return nil
}

// runFold executes fold over [0, len(touched)): inline below parGrain,
// sharded over the worker pool above it. Shards own disjoint documents,
// so folds write acc/mstamp/itot without synchronization and the result
// is deterministic regardless of scheduling.
func (e *Engine) runFold(ctx context.Context, sc *scratch, fold func(sc *scratch, lo, hi int)) error {
	if n := len(sc.touched); n < parGrain {
		fold(sc, 0, n)
	} else {
		par.For(n, parGrain, func(lo, hi int) {
			if ctx.Err() != nil {
				return // canceled: skip the shard, caller reports the error
			}
			fold(sc, lo, hi)
		})
	}
	return ctx.Err()
}

// scatterMLM folds each query term into every candidate's score:
// acc[d] += log Σ_f w_f·(tf + μ·p(t|C_f))/(len_f + μ), replicating the
// naive inner loop's arithmetic (and skip rule) field by field so the
// result is bit-equal.
func (e *Engine) scatterMLM(ctx context.Context, sc *scratch) error {
	for _, tid := range sc.tids {
		inVocab := false
		for f := index.Field(0); f < index.NumFields; f++ {
			sc.fa.cp[f] = e.idx.CollProbByID(f, tid)
			if sc.fa.cp[f] != 0 {
				inVocab = true
			}
		}
		if !inVocab {
			continue // OOV everywhere: the naive mix is 0 for every doc
		}
		if err := e.scatterTF(ctx, sc, tid); err != nil {
			return err
		}
		if err := e.runFold(ctx, sc, foldMLM); err != nil {
			return err
		}
	}
	return nil
}

func foldMLM(sc *scratch, lo, hi int) {
	fa := &sc.fa
	for _, d := range sc.touched[lo:hi] {
		hasTF := sc.tstamp[d] == fa.tep
		base := int(d) * int(index.NumFields)
		mix := 0.0
		for f := 0; f < int(index.NumFields); f++ {
			var tf int32
			if hasTF {
				tf = sc.slots[base+f]
			}
			if fa.cp[f] == 0 && tf == 0 {
				continue
			}
			dl := float64(fa.dls[f][d])
			p := (float64(tf) + fa.mu*fa.cp[f]) / (dl + fa.mu)
			mix += fa.w[f] * p
		}
		if mix > 0 {
			sc.acc[d] += math.Log(mix)
			sc.mstamp[d] = fa.cep
		}
	}
}

// scatterBM25F folds each term's saturated pseudo-frequency into the
// candidates' scores, with document frequency read from the build-time
// any-field table instead of a per-query map.
func (e *Engine) scatterBM25F(ctx context.Context, sc *scratch) error {
	n := float64(e.idx.DocCount())
	for _, tid := range sc.tids {
		df := float64(e.idx.AnyFieldDocFreq(tid))
		if df == 0 {
			continue
		}
		sc.fa.idf = math.Log((n-df+0.5)/(df+0.5) + 1)
		if err := e.scatterTF(ctx, sc, tid); err != nil {
			return err
		}
		if err := e.runFold(ctx, sc, foldBM25F); err != nil {
			return err
		}
	}
	return nil
}

func foldBM25F(sc *scratch, lo, hi int) {
	fa := &sc.fa
	for _, d := range sc.touched[lo:hi] {
		if sc.tstamp[d] != fa.tep {
			continue // no occurrence in any field: pseudoTF is 0
		}
		base := int(d) * int(index.NumFields)
		pseudoTF := 0.0
		for f := 0; f < int(index.NumFields); f++ {
			tf := float64(sc.slots[base+f])
			if tf == 0 {
				continue
			}
			norm := 1.0
			if fa.avg[f] > 0 {
				norm = 1 - fa.b + fa.b*float64(fa.dls[f][d])/fa.avg[f]
			}
			pseudoTF += fa.w[f] * tf / norm
		}
		if pseudoTF == 0 {
			continue
		}
		sc.acc[d] += fa.idf * pseudoTF / (fa.k1 + pseudoTF)
	}
}

// scatterLMNames folds each term's names-field likelihood into the
// candidates' scores. The candidate pool is still the all-field union —
// a document matched only through, say, the related field is scored
// entirely on background mass, exactly as the naive baseline does.
func (e *Engine) scatterLMNames(ctx context.Context, sc *scratch) error {
	for _, tid := range sc.tids {
		cp := e.idx.CollProbByID(index.FieldNames, tid)
		if cp == 0 && len(e.idx.PostingsByID(index.FieldNames, tid)) == 0 {
			continue // naive skips (cp==0 && tf==0) for every doc
		}
		sc.fa.cp[index.FieldNames] = cp
		if err := e.scatterTF(ctx, sc, tid); err != nil {
			return err
		}
		if err := e.runFold(ctx, sc, foldLMNames); err != nil {
			return err
		}
	}
	return nil
}

func foldLMNames(sc *scratch, lo, hi int) {
	fa := &sc.fa
	cp := fa.cp[index.FieldNames]
	dl := fa.dls[index.FieldNames]
	for _, d := range sc.touched[lo:hi] {
		var tf int32
		if sc.tstamp[d] == fa.tep {
			tf = sc.slots[int(d)*int(index.NumFields)+int(index.FieldNames)]
		}
		if cp == 0 && tf == 0 {
			continue
		}
		sc.acc[d] += math.Log((float64(tf) + fa.mu*cp) / (float64(dl[d]) + fa.mu))
		sc.mstamp[d] = fa.cep
	}
}

// scatterBoolean eliminates candidates missing any term and totals the
// raw term frequencies of the survivors. mstamp marks *eliminated*
// documents here — conjunction is a kill-switch, not a match mark.
func (e *Engine) scatterBoolean(ctx context.Context, sc *scratch) error {
	for _, tid := range sc.tids {
		if err := e.scatterTF(ctx, sc, tid); err != nil {
			return err
		}
		if err := e.runFold(ctx, sc, foldBoolean); err != nil {
			return err
		}
	}
	return nil
}

func foldBoolean(sc *scratch, lo, hi int) {
	fa := &sc.fa
	for _, d := range sc.touched[lo:hi] {
		if sc.mstamp[d] == fa.cep {
			continue // already eliminated by an earlier term
		}
		total := int32(0)
		if sc.tstamp[d] == fa.tep {
			base := int(d) * int(index.NumFields)
			for f := 0; f < int(index.NumFields); f++ {
				total += sc.slots[base+f]
			}
		}
		if total == 0 {
			sc.mstamp[d] = fa.cep
			continue
		}
		sc.itot[d] += total
	}
}

// selectHits streams the surviving candidates into the bounded top-k
// heap and resolves display names only for the winners.
func (e *Engine) selectHits(sc *scratch, cep uint32, k int, model Model) []Hit {
	sc.heap.Reset(k, lessHit)
	for _, d := range sc.touched {
		var score float64
		switch model {
		case ModelMLM:
			if sc.mstamp[d] != cep {
				continue
			}
			score = sc.acc[d]
		case ModelBM25F:
			if sc.acc[d] <= 0 {
				continue
			}
			score = sc.acc[d]
		case ModelLMNames:
			if sc.mstamp[d] != cep || sc.acc[d] == 0 {
				continue
			}
			score = sc.acc[d]
		case ModelBoolean:
			if sc.mstamp[d] == cep {
				continue
			}
			score = float64(sc.itot[d])
		}
		ent := e.idx.Entity(int(d))
		if e.own != nil && !e.own(ent) {
			continue
		}
		sc.heap.Push(Hit{Entity: ent, Score: score})
	}
	if sc.heap.Len() == 0 {
		return nil
	}
	// The heap's buffer is scratch: copy the page out and only now touch
	// the name table, once per surviving hit.
	sorted := sc.heap.Sorted()
	out := make([]Hit, len(sorted))
	copy(out, sorted)
	for i := range out {
		out[i].Name = e.g.Name(out[i].Entity)
	}
	return out
}
