package search

import (
	"context"
	"fmt"
	"math"

	"pivote/internal/index"
)

// This file keeps the document-at-a-time scorers that predate the
// term-at-a-time scatter path (scatter.go) as an executable spec: per
// candidate document they probe TF(field, term, doc) with a binary
// search inside the term's posting run. The equivalence suite pins the
// scatter scorers to these byte for byte — same hits, same score bits,
// same order. They are not wired to any production entry point.

// searchNaive runs the pre-scatter pipeline: materialize and score every
// candidate document, then select top-k.
func (e *Engine) searchNaive(ctx context.Context, terms []string, k int, model Model) ([]Hit, error) {
	var scored []Hit
	var err error
	switch model {
	case ModelMLM:
		scored, err = e.naiveMLM(ctx, terms)
	case ModelBM25F:
		scored, err = e.naiveBM25F(ctx, terms)
	case ModelLMNames:
		scored, err = e.naiveLMNames(ctx, terms)
	case ModelBoolean:
		scored, err = e.naiveBoolean(ctx, terms)
	default:
		panic(fmt.Sprintf("search: unknown model %d", int(model)))
	}
	if err != nil {
		return nil, err
	}
	if e.own != nil {
		// Same contract as the scatter path: score globally, emit only the
		// owned partition.
		kept := scored[:0]
		for _, h := range scored {
			if e.own(h.Entity) {
				kept = append(kept, h)
			}
		}
		scored = kept
	}
	return topK(scored, k), nil
}

// naiveMLM implements the paper's mixture of language models: the score
// of a document is Σ_t log Σ_f w_f · p(t|θ_{d,f}) with per-field
// Dirichlet-smoothed document models. Terms that are out of vocabulary in
// every field contribute nothing (instead of -∞), which keeps multi-term
// queries robust — the "error-tolerant" behaviour keyword search needs.
func (e *Engine) naiveMLM(ctx context.Context, terms []string) ([]Hit, error) {
	w, err := e.normWeights()
	if err != nil {
		return nil, err
	}
	mu := e.params.Mu
	var collProb [index.NumFields]map[string]float64
	for f := index.Field(0); f < index.NumFields; f++ {
		collProb[f] = map[string]float64{}
		for _, t := range terms {
			collProb[f][t] = e.idx.CollectionProb(f, t)
		}
	}
	docs := e.idx.CandidateDocs(terms)
	hits := make([]Hit, 0, len(docs))
	for i, d := range docs {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		score := 0.0
		matched := false
		for _, t := range terms {
			mix := 0.0
			for f := index.Field(0); f < index.NumFields; f++ {
				cp := collProb[f][t]
				if cp == 0 && e.idx.TF(f, t, d) == 0 {
					continue
				}
				dl := float64(e.idx.DocLen(f, d))
				p := (float64(e.idx.TF(f, t, d)) + mu*cp) / (dl + mu)
				mix += w[f] * p
			}
			if mix > 0 {
				score += math.Log(mix)
				matched = true
			}
		}
		if matched {
			hits = append(hits, e.hit(d, score))
		}
	}
	return hits, nil
}

// naiveBM25F implements the weighted-field BM25 variant: per-field term
// frequencies are length-normalized, weighted and summed into a pseudo
// frequency that feeds the usual BM25 saturation, with document frequency
// computed over any-field occurrence (per query, via a map — the frozen
// index precomputes the same quantity).
func (e *Engine) naiveBM25F(ctx context.Context, terms []string) ([]Hit, error) {
	w, err := e.normWeights()
	if err != nil {
		return nil, err
	}
	k1, b := e.params.K1, e.params.B
	n := float64(e.idx.DocCount())
	df := map[string]float64{}
	for _, t := range terms {
		seen := map[int]bool{}
		for f := index.Field(0); f < index.NumFields; f++ {
			for _, p := range e.idx.Postings(f, t) {
				seen[p.Doc] = true
			}
		}
		df[t] = float64(len(seen))
	}
	docs := e.idx.CandidateDocs(terms)
	hits := make([]Hit, 0, len(docs))
	for i, d := range docs {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		score := 0.0
		for _, t := range terms {
			if df[t] == 0 {
				continue
			}
			pseudoTF := 0.0
			for f := index.Field(0); f < index.NumFields; f++ {
				tf := float64(e.idx.TF(f, t, d))
				if tf == 0 {
					continue
				}
				avg := e.idx.AvgDocLen(f)
				norm := 1.0
				if avg > 0 {
					norm = 1 - b + b*float64(e.idx.DocLen(f, d))/avg
				}
				pseudoTF += w[f] * tf / norm
			}
			if pseudoTF == 0 {
				continue
			}
			idf := math.Log((n-df[t]+0.5)/(df[t]+0.5) + 1)
			score += idf * pseudoTF / (k1 + pseudoTF)
		}
		if score > 0 {
			hits = append(hits, e.hit(d, score))
		}
	}
	return hits, nil
}

// naiveLMNames is the single-field query-likelihood baseline over names.
func (e *Engine) naiveLMNames(ctx context.Context, terms []string) ([]Hit, error) {
	mu := e.params.Mu
	docs := e.idx.CandidateDocs(terms)
	hits := make([]Hit, 0, len(docs))
	for i, d := range docs {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		score := 0.0
		matched := false
		for _, t := range terms {
			cp := e.idx.CollectionProb(index.FieldNames, t)
			tf := float64(e.idx.TF(index.FieldNames, t, d))
			if cp == 0 && tf == 0 {
				continue
			}
			dl := float64(e.idx.DocLen(index.FieldNames, d))
			score += math.Log((tf + mu*cp) / (dl + mu))
			matched = true
		}
		if matched && score != 0 {
			hits = append(hits, e.hit(d, score))
		}
	}
	return hits, nil
}

// naiveBoolean keeps documents containing every term (in any field) and
// ranks them by summed term frequency.
func (e *Engine) naiveBoolean(ctx context.Context, terms []string) ([]Hit, error) {
	docs := e.idx.CandidateDocs(terms)
	hits := make([]Hit, 0, len(docs))
	for i, d := range docs {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		total := int32(0)
		all := true
		for _, t := range terms {
			tf := int32(0)
			for f := index.Field(0); f < index.NumFields; f++ {
				tf += e.idx.TF(f, t, d)
			}
			if tf == 0 {
				all = false
				break
			}
			total += tf
		}
		if all {
			hits = append(hits, e.hit(d, float64(total)))
		}
	}
	return hits, nil
}
