package search

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pivote/internal/synth"
	"pivote/internal/text"
)

// The scatter scorers must reproduce the retained naive document-at-a-
// time scorers exactly — same hits, same order, and byte-identical score
// floats, which the scatter path guarantees by replicating the naive
// inner loop's field-by-field arithmetic per (document, term). Unlike
// the expansion equivalence suite (which tolerates round-off because its
// scatter reorders additions), this one compares with ==.

// equivQueries mixes the shapes keyword search must survive: exact
// names, partial names, cross-field matches, duplicated terms, OOV terms
// mixed with known ones, single terms with huge posting lists.
var equivQueries = []string{
	"forrest gump",
	"tom hanks",
	"tom hanks american",
	"american films",
	"films",
	"gump gump",
	"zzzyqx forrest",
	"geenbow",
	"university city drama",
	"the of",
}

func buildEquivEngine(tb testing.TB, films int) *Engine {
	tb.Helper()
	res := synth.Generate(synth.Scaled(films))
	return NewEngine(res.Graph)
}

func sameHits(t *testing.T, label string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d mismatch:\ngot:  %+v\nwant: %+v", label, i, got[i], want[i])
		}
	}
}

func TestScatterEquivalenceAllModels(t *testing.T) {
	e := buildEquivEngine(t, 150)
	ctx := context.Background()
	for _, model := range []Model{ModelMLM, ModelBM25F, ModelLMNames, ModelBoolean} {
		for _, q := range equivQueries {
			for _, k := range []int{10, 3, 0} {
				label := fmt.Sprintf("%v %q k=%d", model, q, k)
				got, err := e.SearchCtx(ctx, q, k, model)
				if err != nil {
					t.Fatalf("%s: scatter error %v", label, err)
				}
				terms := text.Analyze(q)
				if len(terms) == 0 {
					continue
				}
				want, err := e.searchNaive(ctx, terms, k, model)
				if err != nil {
					t.Fatalf("%s: naive error %v", label, err)
				}
				sameHits(t, label, got, want)
			}
		}
	}
}

// Equivalence must also hold under non-default hyperparameters — skewed
// weights zero out fields, μ=0 removes the background mass entirely.
func TestScatterEquivalenceParamVariants(t *testing.T) {
	base := buildEquivEngine(t, 80)
	variants := []func(*Params){
		func(p *Params) { p.Mu = 0 },
		func(p *Params) { p.Mu = 5000 },
		func(p *Params) {
			p.FieldWeights = [5]float64{}
			p.FieldWeights[0] = 1 // names only
		},
		func(p *Params) {
			p.FieldWeights = [5]float64{}
			p.FieldWeights[4] = 1 // related only
		},
		func(p *Params) { p.K1 = 0.1; p.B = 0 },
	}
	ctx := context.Background()
	for vi, mod := range variants {
		p := DefaultParams()
		mod(&p)
		e := base.WithParams(p)
		for _, model := range []Model{ModelMLM, ModelBM25F, ModelLMNames, ModelBoolean} {
			for _, q := range []string{"tom hanks american", "forrest gump", "films"} {
				label := fmt.Sprintf("variant=%d %v %q", vi, model, q)
				got, err := e.SearchCtx(ctx, q, 10, model)
				if err != nil {
					t.Fatalf("%s: scatter error %v", label, err)
				}
				want, err := e.searchNaive(ctx, text.Analyze(q), 10, model)
				if err != nil {
					t.Fatalf("%s: naive error %v", label, err)
				}
				sameHits(t, label, got, want)
			}
		}
	}
}

// One shared frozen index must serve concurrent SearchCtx calls: the
// scratch pool hands every goroutine its own epochs. Run with -race.
func TestConcurrentSearchSharedIndex(t *testing.T) {
	e := buildEquivEngine(t, 60)
	ctx := context.Background()
	// Reference rankings computed single-threaded.
	type key struct {
		q string
		m Model
	}
	want := map[key][]Hit{}
	for _, q := range equivQueries {
		for _, m := range []Model{ModelMLM, ModelBM25F, ModelLMNames, ModelBoolean} {
			hits, err := e.SearchCtx(ctx, q, 10, m)
			if err != nil {
				t.Fatal(err)
			}
			want[key{q, m}] = hits
		}
	}
	workers := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				q := equivQueries[(w+i)%len(equivQueries)]
				m := []Model{ModelMLM, ModelBM25F, ModelLMNames, ModelBoolean}[(w+i)%4]
				hits, err := e.SearchCtx(ctx, q, 10, m)
				if err != nil {
					errCh <- err
					return
				}
				ref := want[key{q, m}]
				if len(hits) != len(ref) {
					errCh <- fmt.Errorf("%v %q: %d hits, want %d", m, q, len(hits), len(ref))
					return
				}
				for j := range ref {
					if hits[j] != ref[j] {
						errCh <- fmt.Errorf("%v %q: rank %d = %+v, want %+v", m, q, j, hits[j], ref[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// errAfter is a context whose Err fires from the nth poll onward —
// deterministic in-flight cancellation, independent of timing.
type errAfter struct {
	context.Context
	n     int64
	calls atomic.Int64
}

func (c *errAfter) Err() error {
	if c.calls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

func TestSearchCancellation(t *testing.T) {
	e := buildEquivEngine(t, 60)

	// Pre-canceled: no hits, the context's error.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range []Model{ModelMLM, ModelBM25F, ModelLMNames, ModelBoolean} {
		hits, err := e.SearchCtx(canceled, "american films", 10, m)
		if err != context.Canceled || hits != nil {
			t.Fatalf("%v: pre-canceled returned (%v, %v)", m, hits, err)
		}
	}

	// In-flight: cancel at every possible poll count until the query
	// survives, covering cancellation points from candidate collection
	// through every scatter and fold pass. After each canceled run the
	// same engine must still answer the query identically to an
	// untouched engine — an abandoned pass may not corrupt the pooled
	// scratch.
	fresh := buildEquivEngine(t, 60)
	const q = "tom hanks american films"
	for _, m := range []Model{ModelMLM, ModelBM25F, ModelLMNames, ModelBoolean} {
		want, err := fresh.SearchCtx(context.Background(), q, 10, m)
		if err != nil {
			t.Fatal(err)
		}
		completedAt := int64(-1)
		for n := int64(0); n < 200; n++ {
			ctx := &errAfter{Context: context.Background(), n: n}
			hits, err := e.SearchCtx(ctx, q, 10, m)
			if err == nil {
				completedAt = n
				sameHits(t, fmt.Sprintf("%v complete n=%d", m, n), hits, want)
				break
			}
			if err != context.Canceled {
				t.Fatalf("%v n=%d: err = %v", m, n, err)
			}
			if hits != nil {
				t.Fatalf("%v n=%d: partial hits returned alongside error", m, n)
			}
			// Scratch state intact: a clean run right after the abort.
			got, err := e.SearchCtx(context.Background(), q, 10, m)
			if err != nil {
				t.Fatalf("%v n=%d: post-cancel query failed: %v", m, n, err)
			}
			sameHits(t, fmt.Sprintf("%v post-cancel n=%d", m, n), got, want)
		}
		if completedAt < 1 {
			t.Fatalf("%v: query never completed within poll budget (completedAt=%d)", m, completedAt)
		}
	}
}
