package search

import (
	"context"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"pivote/internal/errs"
	"pivote/internal/index"
	"pivote/internal/kgtest"
)

func TestFiveFieldsOfForrestGump(t *testing.T) {
	f := kgtest.Build()
	ff := FiveFieldsOf(f.Graph, f.E("Forrest_Gump"))
	if len(ff.Names) != 1 || ff.Names[0] != "Forrest Gump" {
		t.Fatalf("names = %v", ff.Names)
	}
	attrs := strings.Join(ff.Attributes, "|")
	if !strings.Contains(attrs, "142 minutes") || !strings.Contains(attrs, "55 million dollars") {
		t.Fatalf("attributes = %v", ff.Attributes)
	}
	cats := strings.Join(ff.Categories, "|")
	if !strings.Contains(cats, "American films") {
		t.Fatalf("categories = %v", ff.Categories)
	}
	similar := strings.Join(ff.Similar, "|")
	if !strings.Contains(similar, "Geenbow") || !strings.Contains(similar, "Gumpian") {
		t.Fatalf("similar = %v", ff.Similar)
	}
	related := strings.Join(ff.Related, "|")
	if !strings.Contains(related, "Tom Hanks") || !strings.Contains(related, "Robert Zemeckis") {
		t.Fatalf("related = %v", ff.Related)
	}
}

func TestFiveFieldsRender(t *testing.T) {
	f := kgtest.Build()
	ff := FiveFieldsOf(f.Graph, f.E("Forrest_Gump"))
	out := ff.Render("Forrest_Gump")
	for _, want := range []string{"Table 1", "names", `"142 minutes"`, "Geenbow", "Tom Hanks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFiveFieldsFallbackName(t *testing.T) {
	f := kgtest.Build()
	// Predicates have no labels; an entity without a label would fall
	// back to the local name. All fixture entities have labels, so check
	// the tokens path instead: tokens of names include "forrest".
	ff := FiveFieldsOf(f.Graph, f.E("Forrest_Gump"))
	toks := ff.Tokens()
	found := false
	for _, tok := range toks[index.FieldNames] {
		if tok == "forrest" {
			found = true
		}
	}
	if !found {
		t.Fatalf("names tokens = %v", toks[index.FieldNames])
	}
}

func TestSearchExactNameTopHit(t *testing.T) {
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	for _, model := range []Model{ModelMLM, ModelBM25F, ModelBoolean} {
		hits := e.Search("forrest gump", 5, model)
		if len(hits) == 0 {
			t.Fatalf("%v: no hits", model)
		}
		if hits[0].Entity != f.E("Forrest_Gump") {
			t.Fatalf("%v: top hit = %s, want Forrest Gump", model, hits[0].Name)
		}
	}
}

func TestSearchRelatedFieldMatches(t *testing.T) {
	// "tom hanks" must retrieve the films that star him (via the related
	// field) in addition to the person.
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	hits := e.Search("tom hanks", 0, ModelMLM)
	var names []string
	for _, h := range hits {
		names = append(names, h.Name)
	}
	joined := strings.Join(names, "|")
	if !strings.Contains(joined, "Tom Hanks") {
		t.Fatalf("person missing from hits: %v", names)
	}
	if !strings.Contains(joined, "Forrest Gump") {
		t.Fatalf("film starring him missing from hits: %v", names)
	}
	// The person himself should outrank films (name-field match beats
	// related-field match under the default weights).
	if hits[0].Entity != f.E("Tom_Hanks") {
		t.Fatalf("top hit = %s, want Tom Hanks", hits[0].Name)
	}
}

func TestSearchSimilarNamesField(t *testing.T) {
	// "geenbow" only occurs as a redirect label; MLM must still find
	// Forrest Gump through the similar-entity-names field.
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	hits := e.Search("geenbow", 3, ModelMLM)
	if len(hits) == 0 || hits[0].Entity != f.E("Forrest_Gump") {
		t.Fatalf("geenbow should resolve to Forrest Gump, got %v", hits)
	}
	// The names-only baseline cannot find it: redirect stubs are not
	// entities, so nothing has "geenbow" in its names field.
	lm := e.Search("geenbow", 3, ModelLMNames)
	for _, h := range lm {
		if h.Entity == f.E("Forrest_Gump") && h.Score > 0 {
			t.Fatal("LM-names unexpectedly matched through a non-name field")
		}
	}
}

func TestSearchBooleanConjunctive(t *testing.T) {
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	// "gary sinise" AND-semantics: only docs containing both terms.
	hits := e.Search("gary sinise", 0, ModelBoolean)
	for _, h := range hits {
		ff := FiveFieldsOf(f.Graph, h.Entity)
		all := strings.ToLower(strings.Join(append(append(ff.Names, ff.Related...), ff.Similar...), " "))
		if !strings.Contains(all, "gary") || !strings.Contains(all, "sinise") {
			t.Fatalf("boolean hit %s lacks a query term", h.Name)
		}
	}
}

func TestSearchEmptyAndOOVQueries(t *testing.T) {
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	if hits := e.Search("", 5, ModelMLM); hits != nil {
		t.Fatalf("empty query returned %v", hits)
	}
	if hits := e.Search("zzzyqx qwwz", 5, ModelMLM); len(hits) != 0 {
		t.Fatalf("OOV query returned %v", hits)
	}
}

func TestSearchTopKOrderingAndBound(t *testing.T) {
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	all := e.Search("films", 0, ModelMLM)
	top3 := e.Search("films", 3, ModelMLM)
	if len(top3) > 3 {
		t.Fatalf("k=3 returned %d hits", len(top3))
	}
	if !sort.SliceIsSorted(top3, func(i, j int) bool {
		if top3[i].Score != top3[j].Score {
			return top3[i].Score > top3[j].Score
		}
		return top3[i].Entity < top3[j].Entity
	}) {
		t.Fatal("hits not sorted")
	}
	// Top-3 must agree with the prefix of the full ranking.
	for i := range top3 {
		if top3[i].Entity != all[i].Entity {
			t.Fatalf("top-k disagrees with full ranking at %d: %v vs %v", i, top3[i], all[i])
		}
	}
}

func TestSearchDeterministic(t *testing.T) {
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	a := e.Search("american films", 10, ModelMLM)
	b := e.Search("american films", 10, ModelMLM)
	if len(a) != len(b) {
		t.Fatal("nondeterministic hit count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic ranking at %d", i)
		}
	}
}

func TestFieldWeightsChangeRanking(t *testing.T) {
	f := kgtest.Build()
	// With all weight on the related field, the query "tom hanks" should
	// rank a film above the person (films have him as related; his own
	// related field holds film titles).
	p := DefaultParams()
	p.FieldWeights = [index.NumFields]float64{}
	p.FieldWeights[index.FieldRelated] = 1
	e := NewEngineWithParams(f.Graph, p)
	hits := e.Search("tom hanks", 1, ModelMLM)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Entity == f.E("Tom_Hanks") {
		t.Fatal("related-only weighting still ranks the person first")
	}
}

func TestAllZeroWeightsTypedError(t *testing.T) {
	f := kgtest.Build()
	p := DefaultParams()
	p.FieldWeights = [index.NumFields]float64{}
	e := NewEngineWithParams(f.Graph, p)
	for _, model := range []Model{ModelMLM, ModelBM25F} {
		hits, err := e.SearchCtx(context.Background(), "gump", 1, model)
		if hits != nil {
			t.Fatalf("%v: got hits %v with invalid params", model, hits)
		}
		var te *errs.Error
		if !errors.As(err, &te) || te.Kind != errs.KindInvalid {
			t.Fatalf("%v: err = %v, want typed %q error", model, err, errs.KindInvalid)
		}
	}
	// The panic-free contract also holds on the plain Search wrapper.
	if hits := e.Search("gump", 1, ModelMLM); hits != nil {
		t.Fatalf("Search with invalid params returned %v", hits)
	}
	// Models that do not consume field weights still work.
	if hits := e.Search("forrest gump", 1, ModelBoolean); len(hits) == 0 {
		t.Fatal("boolean model should ignore field weights")
	}
}

func TestMLMScoresAreFiniteNegative(t *testing.T) {
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	for _, h := range e.Search("american films", 0, ModelMLM) {
		if math.IsInf(h.Score, 0) || math.IsNaN(h.Score) {
			t.Fatalf("non-finite score for %s", h.Name)
		}
		if h.Score >= 0 {
			t.Fatalf("log-probability score must be negative, got %f", h.Score)
		}
	}
}

func TestModelString(t *testing.T) {
	if ModelMLM.String() != "MLM" || ModelBM25F.String() != "BM25F" ||
		ModelLMNames.String() != "LM-names" || ModelBoolean.String() != "BooleanAND" {
		t.Fatal("Model.String mismatch")
	}
	if Model(9).String() != "Model(9)" {
		t.Fatal("unknown model string")
	}
}

func TestUnknownModelTypedError(t *testing.T) {
	f := kgtest.Build()
	e := NewEngine(f.Graph)
	hits, err := e.SearchCtx(context.Background(), "gump", 1, Model(42))
	if hits != nil {
		t.Fatalf("unknown model returned hits %v", hits)
	}
	var te *errs.Error
	if !errors.As(err, &te) || te.Kind != errs.KindInvalid {
		t.Fatalf("err = %v, want typed %q error", err, errs.KindInvalid)
	}
}
