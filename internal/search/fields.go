// Package search implements PivotE's entity search engine (§2.2 of the
// paper): every entity is represented as a five-field document — names,
// attributes, categories, similar entity names, related entity names
// (Table 1) — and retrieved with a mixture of per-field language models
// (a multi-fielded query-likelihood model with Dirichlet smoothing).
// BM25F, a names-only language model and boolean AND are provided as
// baselines for experiment E7/A3.
package search

import (
	"fmt"
	"strings"

	"pivote/internal/index"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/text"
)

// FiveFields is the raw (untokenized) five-field representation of an
// entity — the content of Table 1 in the paper.
type FiveFields struct {
	Entity     rdf.TermID
	Names      []string
	Attributes []string
	Categories []string
	Similar    []string
	Related    []string
}

// FiveFieldsOf assembles the representation from the graph.
func FiveFieldsOf(g *kg.Graph, e rdf.TermID) FiveFields {
	ff := FiveFields{Entity: e}
	ff.Names = g.Labels(e)
	if len(ff.Names) == 0 {
		ff.Names = []string{g.Dict().Term(e).LocalName()}
	}
	ff.Attributes = g.Attributes(e)
	for _, c := range g.CategoriesOf(e) {
		ff.Categories = append(ff.Categories, g.Name(c))
	}
	ff.Similar = g.SimilarNames(e)
	ff.Related = g.Names(g.Related(e))
	return ff
}

// Tokens analyzes each field into the token streams the index consumes.
func (ff FiveFields) Tokens() [index.NumFields][]string {
	var out [index.NumFields][]string
	out[index.FieldNames] = text.AnalyzeAll(ff.Names)
	out[index.FieldAttributes] = text.AnalyzeAll(ff.Attributes)
	out[index.FieldCategories] = text.AnalyzeAll(ff.Categories)
	out[index.FieldSimilar] = text.AnalyzeAll(ff.Similar)
	out[index.FieldRelated] = text.AnalyzeAll(ff.Related)
	return out
}

// Render prints the representation as the two-column table of Table 1.
func (ff FiveFields) Render(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: The multi-fielded entity representation for %s\n", name)
	row := func(field string, values []string) {
		content := strings.Join(values, ", ")
		if content == "" {
			content = "(none)"
		}
		fmt.Fprintf(&b, "  %-22s | %s\n", field, content)
	}
	row("names", ff.Names)
	row("attributes", quoteAll(ff.Attributes))
	row("categories", ff.Categories)
	row("similar entities names", ff.Similar)
	row("related entity names", ff.Related)
	return b.String()
}

func quoteAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = `"` + s + `"`
	}
	return out
}

// BuildIndex indexes every entity of the graph under its five-field
// representation.
func BuildIndex(g *kg.Graph) *index.Index {
	b := index.NewBuilder()
	for _, e := range g.Entities() {
		b.Add(e, FiveFieldsOf(g, e).Tokens())
	}
	return b.Build()
}
