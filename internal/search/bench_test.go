package search

import (
	"context"
	"sync"
	"testing"

	"pivote/internal/kg"
	"pivote/internal/synth"
	"pivote/internal/text"
)

// The retrieval benchmarks run on a DBpedia-like synthetic corpus (~1.1k
// entities at scale 500) rather than the hand-written fixture, so posting
// lists are long enough for the scatter-vs-probe difference to show. The
// *Naive benchmarks drive the retained pre-scatter scorers on the same
// index — the before/after pair the README table quotes.

var (
	benchOnce   sync.Once
	benchGraph  *kg.Graph
	benchEngine *Engine
)

func getBenchEngine(b *testing.B) *Engine {
	b.Helper()
	benchOnce.Do(func() {
		res := synth.Generate(synth.Scaled(500))
		benchGraph = res.Graph
		benchEngine = NewEngine(benchGraph)
	})
	return benchEngine
}

// benchQuery mixes a high-df term (american: most films), a person name
// that matches names and related fields, and a mid-frequency term.
const benchQuery = "tom hanks american films"

func benchSearch(b *testing.B, model Model) {
	e := getBenchEngine(b)
	// Warm the scratch pool so steady-state allocations are measured.
	if hits := e.Search(benchQuery, 10, model); len(hits) == 0 {
		b.Fatal("no hits")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := e.Search(benchQuery, 10, model); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

func benchSearchNaive(b *testing.B, model Model) {
	e := getBenchEngine(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Analyze inside the loop: the naive numbers measure the same
		// full query path the scatter benchmarks do.
		hits, err := e.searchNaive(ctx, text.Analyze(benchQuery), 10, model)
		if err != nil || len(hits) == 0 {
			b.Fatalf("hits=%d err=%v", len(hits), err)
		}
	}
}

func BenchmarkSearchMLM(b *testing.B)        { benchSearch(b, ModelMLM) }
func BenchmarkSearchMLMNaive(b *testing.B)   { benchSearchNaive(b, ModelMLM) }
func BenchmarkSearchBM25F(b *testing.B)      { benchSearch(b, ModelBM25F) }
func BenchmarkSearchBM25FNaive(b *testing.B) { benchSearchNaive(b, ModelBM25F) }
func BenchmarkSearchLMNames(b *testing.B)    { benchSearch(b, ModelLMNames) }
func BenchmarkSearchBoolean(b *testing.B)    { benchSearch(b, ModelBoolean) }

func BenchmarkIndexBuild(b *testing.B) {
	e := getBenchEngine(b) // forces graph generation outside the timer
	_ = e
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := BuildIndex(benchGraph)
		if idx.DocCount() == 0 {
			b.Fatal("empty index")
		}
	}
}
