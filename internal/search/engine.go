package search

import (
	"context"
	"fmt"
	"math"

	"pivote/internal/index"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/text"
	"pivote/internal/topk"
)

// Model selects the retrieval model.
type Model int

const (
	// ModelMLM is the paper's mixture of per-field language models.
	ModelMLM Model = iota
	// ModelBM25F is the fielded BM25 baseline.
	ModelBM25F
	// ModelLMNames is a single-field (names-only) language model.
	ModelLMNames
	// ModelBoolean is conjunctive boolean retrieval ranked by raw tf.
	ModelBoolean
)

func (m Model) String() string {
	switch m {
	case ModelMLM:
		return "MLM"
	case ModelBM25F:
		return "BM25F"
	case ModelLMNames:
		return "LM-names"
	case ModelBoolean:
		return "BooleanAND"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Params are the retrieval hyperparameters.
type Params struct {
	// FieldWeights mixes the per-field language models (MLM) or scales
	// per-field term frequencies (BM25F). They are normalized to sum to 1
	// at query time; all-zero weights are invalid.
	FieldWeights [index.NumFields]float64
	// Mu is the Dirichlet smoothing mass for the language models.
	Mu float64
	// K1 and B are the BM25F saturation and length-normalization knobs.
	K1, B float64
}

// DefaultParams mirror the common DBpedia-entity-search settings: names
// weighted highest, attributes and categories next, the two
// neighbour-name fields lower; μ=100 suits short KG fields.
func DefaultParams() Params {
	return Params{
		FieldWeights: [index.NumFields]float64{
			index.FieldNames:      0.40,
			index.FieldAttributes: 0.15,
			index.FieldCategories: 0.20,
			index.FieldSimilar:    0.10,
			index.FieldRelated:    0.15,
		},
		Mu: 100,
		K1: 1.2,
		B:  0.75,
	}
}

// Hit is one search result.
type Hit struct {
	Entity rdf.TermID
	Name   string
	Score  float64
}

// Engine retrieves entities for keyword queries.
type Engine struct {
	g      *kg.Graph
	idx    *index.Index
	params Params
}

// NewEngine builds the five-field index over the graph's entity universe.
func NewEngine(g *kg.Graph) *Engine {
	return &Engine{g: g, idx: BuildIndex(g), params: DefaultParams()}
}

// NewEngineWithParams is NewEngine with explicit hyperparameters.
func NewEngineWithParams(g *kg.Graph, p Params) *Engine {
	e := NewEngine(g)
	e.params = p
	return e
}

// Index exposes the underlying index (read-only) for diagnostics.
func (e *Engine) Index() *index.Index { return e.idx }

// SetParams replaces the hyperparameters (used by the ablation benches).
func (e *Engine) SetParams(p Params) { e.params = p }

// Search runs the query under the given model and returns the top-k hits
// in descending score order (ties broken by entity ID for determinism).
// k <= 0 returns all matching entities.
func (e *Engine) Search(query string, k int, model Model) []Hit {
	hits, _ := e.SearchCtx(context.Background(), query, k, model)
	return hits
}

// SearchCtx is Search with cancellation: the candidate-document scoring
// loops check the context periodically and return its error instead of
// partial hits when it fires.
func (e *Engine) SearchCtx(ctx context.Context, query string, k int, model Model) ([]Hit, error) {
	terms := text.Analyze(query)
	if len(terms) == 0 {
		return nil, ctx.Err()
	}
	var scored []Hit
	var err error
	switch model {
	case ModelMLM:
		scored, err = e.scoreMLM(ctx, terms)
	case ModelBM25F:
		scored, err = e.scoreBM25F(ctx, terms)
	case ModelLMNames:
		scored, err = e.scoreLMNames(ctx, terms)
	case ModelBoolean:
		scored, err = e.scoreBoolean(ctx, terms)
	default:
		panic(fmt.Sprintf("search: unknown model %d", int(model)))
	}
	if err != nil {
		return nil, err
	}
	return topK(scored, k), nil
}

// checkEvery is how many candidate documents a scoring loop processes
// between context checks.
const checkEvery = 1024

// normWeights returns the field weights normalized to sum to 1.
func (e *Engine) normWeights() [index.NumFields]float64 {
	var w [index.NumFields]float64
	sum := 0.0
	for _, v := range e.params.FieldWeights {
		sum += v
	}
	if sum <= 0 {
		panic("search: all-zero field weights")
	}
	for f, v := range e.params.FieldWeights {
		w[f] = v / sum
	}
	return w
}

// scoreMLM implements the paper's mixture of language models: the score
// of a document is Σ_t log Σ_f w_f · p(t|θ_{d,f}) with per-field
// Dirichlet-smoothed document models. Terms that are out of vocabulary in
// every field contribute nothing (instead of -∞), which keeps multi-term
// queries robust — the "error-tolerant" behaviour keyword search needs.
func (e *Engine) scoreMLM(ctx context.Context, terms []string) ([]Hit, error) {
	w := e.normWeights()
	mu := e.params.Mu
	var collProb [index.NumFields]map[string]float64
	for f := index.Field(0); f < index.NumFields; f++ {
		collProb[f] = map[string]float64{}
		for _, t := range terms {
			collProb[f][t] = e.idx.CollectionProb(f, t)
		}
	}
	docs := e.idx.CandidateDocs(terms)
	hits := make([]Hit, 0, len(docs))
	for i, d := range docs {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		score := 0.0
		matched := false
		for _, t := range terms {
			mix := 0.0
			for f := index.Field(0); f < index.NumFields; f++ {
				cp := collProb[f][t]
				if cp == 0 && e.idx.TF(f, t, d) == 0 {
					continue
				}
				dl := float64(e.idx.DocLen(f, d))
				p := (float64(e.idx.TF(f, t, d)) + mu*cp) / (dl + mu)
				mix += w[f] * p
			}
			if mix > 0 {
				score += math.Log(mix)
				matched = true
			}
		}
		if matched {
			hits = append(hits, e.hit(d, score))
		}
	}
	return hits, nil
}

// scoreBM25F implements the weighted-field BM25 variant: per-field term
// frequencies are length-normalized, weighted and summed into a pseudo
// frequency that feeds the usual BM25 saturation, with document frequency
// computed over any-field occurrence.
func (e *Engine) scoreBM25F(ctx context.Context, terms []string) ([]Hit, error) {
	w := e.normWeights()
	k1, b := e.params.K1, e.params.B
	n := float64(e.idx.DocCount())
	df := map[string]float64{}
	for _, t := range terms {
		seen := map[int]bool{}
		for f := index.Field(0); f < index.NumFields; f++ {
			for _, p := range e.idx.Postings(f, t) {
				seen[p.Doc] = true
			}
		}
		df[t] = float64(len(seen))
	}
	docs := e.idx.CandidateDocs(terms)
	hits := make([]Hit, 0, len(docs))
	for i, d := range docs {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		score := 0.0
		for _, t := range terms {
			if df[t] == 0 {
				continue
			}
			pseudoTF := 0.0
			for f := index.Field(0); f < index.NumFields; f++ {
				tf := float64(e.idx.TF(f, t, d))
				if tf == 0 {
					continue
				}
				avg := e.idx.AvgDocLen(f)
				norm := 1.0
				if avg > 0 {
					norm = 1 - b + b*float64(e.idx.DocLen(f, d))/avg
				}
				pseudoTF += w[f] * tf / norm
			}
			if pseudoTF == 0 {
				continue
			}
			idf := math.Log((n-df[t]+0.5)/(df[t]+0.5) + 1)
			score += idf * pseudoTF / (k1 + pseudoTF)
		}
		if score > 0 {
			hits = append(hits, e.hit(d, score))
		}
	}
	return hits, nil
}

// scoreLMNames is the single-field query-likelihood baseline over names.
func (e *Engine) scoreLMNames(ctx context.Context, terms []string) ([]Hit, error) {
	mu := e.params.Mu
	docs := e.idx.CandidateDocs(terms)
	hits := make([]Hit, 0, len(docs))
	for i, d := range docs {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		score := 0.0
		matched := false
		for _, t := range terms {
			cp := e.idx.CollectionProb(index.FieldNames, t)
			tf := float64(e.idx.TF(index.FieldNames, t, d))
			if cp == 0 && tf == 0 {
				continue
			}
			dl := float64(e.idx.DocLen(index.FieldNames, d))
			score += math.Log((tf + mu*cp) / (dl + mu))
			matched = true
		}
		if matched && score != 0 {
			hits = append(hits, e.hit(d, score))
		}
	}
	return hits, nil
}

// scoreBoolean keeps documents containing every term (in any field) and
// ranks them by summed term frequency.
func (e *Engine) scoreBoolean(ctx context.Context, terms []string) ([]Hit, error) {
	docs := e.idx.CandidateDocs(terms)
	hits := make([]Hit, 0, len(docs))
	for i, d := range docs {
		if i%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		total := int32(0)
		all := true
		for _, t := range terms {
			tf := int32(0)
			for f := index.Field(0); f < index.NumFields; f++ {
				tf += e.idx.TF(f, t, d)
			}
			if tf == 0 {
				all = false
				break
			}
			total += tf
		}
		if all {
			hits = append(hits, e.hit(d, float64(total)))
		}
	}
	return hits, nil
}

func (e *Engine) hit(doc int, score float64) Hit {
	ent := e.idx.Entity(doc)
	return Hit{Entity: ent, Name: e.g.Name(ent), Score: score}
}

// topK selects the k best hits via the shared bounded-heap helper.
func topK(hits []Hit, k int) []Hit {
	return topk.Select(hits, k, func(a, b Hit) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Entity < b.Entity
	})
}
