package search

import (
	"context"
	"fmt"

	"pivote/internal/errs"
	"pivote/internal/index"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/text"
	"pivote/internal/topk"
)

// Model selects the retrieval model.
type Model int

const (
	// ModelMLM is the paper's mixture of per-field language models.
	ModelMLM Model = iota
	// ModelBM25F is the fielded BM25 baseline.
	ModelBM25F
	// ModelLMNames is a single-field (names-only) language model.
	ModelLMNames
	// ModelBoolean is conjunctive boolean retrieval ranked by raw tf.
	ModelBoolean
)

func (m Model) String() string {
	switch m {
	case ModelMLM:
		return "MLM"
	case ModelBM25F:
		return "BM25F"
	case ModelLMNames:
		return "LM-names"
	case ModelBoolean:
		return "BooleanAND"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Params are the retrieval hyperparameters.
type Params struct {
	// FieldWeights mixes the per-field language models (MLM) or scales
	// per-field term frequencies (BM25F). They are normalized to sum to 1
	// at query time; all-zero weights are invalid.
	FieldWeights [index.NumFields]float64
	// Mu is the Dirichlet smoothing mass for the language models.
	Mu float64
	// K1 and B are the BM25F saturation and length-normalization knobs.
	K1, B float64
}

// DefaultParams mirror the common DBpedia-entity-search settings: names
// weighted highest, attributes and categories next, the two
// neighbour-name fields lower; μ=100 suits short KG fields.
func DefaultParams() Params {
	return Params{
		FieldWeights: [index.NumFields]float64{
			index.FieldNames:      0.40,
			index.FieldAttributes: 0.15,
			index.FieldCategories: 0.20,
			index.FieldSimilar:    0.10,
			index.FieldRelated:    0.15,
		},
		Mu: 100,
		K1: 1.2,
		B:  0.75,
	}
}

// Hit is one search result.
type Hit struct {
	Entity rdf.TermID
	Name   string
	Score  float64
}

// Engine retrieves entities for keyword queries.
type Engine struct {
	g      *kg.Graph
	idx    *index.Index
	params Params
	// own restricts emission to a shard's partition: when non-nil, hits
	// whose entity it rejects never enter the top-k heap. Scoring itself
	// is untouched — every document is still scored against the global
	// collection statistics, so the scores of owned hits are bit-identical
	// to an unpartitioned engine's.
	own func(rdf.TermID) bool
}

// NewEngine builds the five-field index over the graph's entity universe.
func NewEngine(g *kg.Graph) *Engine {
	return &Engine{g: g, idx: BuildIndex(g), params: DefaultParams()}
}

// NewEngineWithParams is NewEngine with explicit hyperparameters.
func NewEngineWithParams(g *kg.Graph, p Params) *Engine {
	e := NewEngine(g)
	e.params = p
	return e
}

// NewEngineFromIndex wraps an already-built index — the generation
// snapshot open path, where the index comes off the mapping instead of
// a fresh BuildIndex pass.
func NewEngineFromIndex(g *kg.Graph, idx *index.Index, p Params) *Engine {
	return &Engine{g: g, idx: idx, params: p}
}

// WithParams returns an engine sharing this engine's frozen index with
// different hyperparameters — parameter sweeps reuse one index build.
func (e *Engine) WithParams(p Params) *Engine {
	return &Engine{g: e.g, idx: e.idx, params: p, own: e.own}
}

// WithOwner returns an engine sharing this engine's frozen index that
// emits only hits own accepts (nil lifts the restriction). Shard nodes
// serve through an owned engine; the router merges the per-shard pages.
func (e *Engine) WithOwner(own func(rdf.TermID) bool) *Engine {
	return &Engine{g: e.g, idx: e.idx, params: e.params, own: own}
}

// Owner reports the emission restriction, nil when unpartitioned.
func (e *Engine) Owner() func(rdf.TermID) bool { return e.own }

// Index exposes the underlying index (read-only) for diagnostics.
func (e *Engine) Index() *index.Index { return e.idx }

// Params returns the engine's current hyperparameters.
func (e *Engine) Params() Params { return e.params }

// SetParams replaces the hyperparameters (used by the ablation benches).
func (e *Engine) SetParams(p Params) { e.params = p }

// Search runs the query under the given model and returns the top-k hits
// in descending score order (ties broken by entity ID for determinism).
// k <= 0 returns all matching entities. Errors (invalid params, unknown
// model) yield no hits.
func (e *Engine) Search(query string, k int, model Model) []Hit {
	hits, _ := e.SearchCtx(context.Background(), query, k, model)
	return hits
}

// SearchCtx is Search with cancellation: the scoring loops check the
// context at posting-block granularity and return its error instead of
// partial hits when it fires. Invalid parameters and unknown models
// return a typed error of kind "invalid" — a bad Params can never take
// down the server.
func (e *Engine) SearchCtx(ctx context.Context, query string, k int, model Model) ([]Hit, error) {
	terms := text.Analyze(query)
	if len(terms) == 0 {
		return nil, ctx.Err()
	}
	switch model {
	case ModelMLM, ModelBM25F, ModelLMNames, ModelBoolean:
	default:
		return nil, errs.Errf(errs.KindInvalid, "search: unknown model %d", int(model))
	}
	return e.searchScatter(ctx, terms, k, model)
}

// checkEvery is how many candidate documents the retained naive scoring
// loops process between context checks.
const checkEvery = 1024

// normWeights returns the field weights normalized to sum to 1, or a
// typed "invalid" error when they are all zero (or sum non-positive).
func (e *Engine) normWeights() ([index.NumFields]float64, error) {
	var w [index.NumFields]float64
	sum := 0.0
	for _, v := range e.params.FieldWeights {
		sum += v
	}
	if sum <= 0 {
		return w, errs.Errf(errs.KindInvalid, "search: all-zero field weights")
	}
	for f, v := range e.params.FieldWeights {
		w[f] = v / sum
	}
	return w, nil
}

func (e *Engine) hit(doc int, score float64) Hit {
	ent := e.idx.Entity(doc)
	return Hit{Entity: ent, Name: e.g.Name(ent), Score: score}
}

// lessHit orders hits descending by score, ties by entity ID.
func lessHit(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Entity < b.Entity
}

// topK selects the k best hits via the shared bounded-heap helper.
func topK(hits []Hit, k int) []Hit {
	return topk.Select(hits, k, lessHit)
}
