package search

import (
	"math"
	"testing"

	"pivote/internal/index"
	"pivote/internal/kg"
	"pivote/internal/rdf"
)

// buildTwoDocGraph constructs a minimal graph with two labeled entities
// so every quantity in the MLM formula can be computed by hand:
//
//	doc A: names tokens {alpha, beta}
//	doc B: names tokens {alpha, gamma, gamma}
//
// All other fields are empty.
func buildTwoDocGraph(t *testing.T) (*kg.Graph, rdf.TermID, rdf.TermID) {
	t.Helper()
	st := rdf.NewStore(nil)
	d := st.Dict()
	voc := kg.InternVocab(d)
	a := d.Intern(rdf.NewIRI(kg.ResourceIRI("A")))
	b := d.Intern(rdf.NewIRI(kg.ResourceIRI("B")))
	typ := d.Intern(rdf.NewIRI("http://x/Thing"))
	st.Add(a, voc.Type, typ)
	st.Add(b, voc.Type, typ)
	st.Add(a, voc.Label, d.Intern(rdf.NewLiteral("alpha beta")))
	st.Add(b, voc.Label, d.Intern(rdf.NewLiteral("alpha gamma gamma")))
	st.Freeze()
	return kg.NewGraph(st), a, b
}

// TestMLMScoreExact verifies the Dirichlet-smoothed mixture score digit
// for digit against the formula
//
//	score(d) = Σ_t log Σ_f w_f · (tf + μ·p(t|C_f)) / (len_f + μ)
func TestMLMScoreExact(t *testing.T) {
	g, aID, bID := buildTwoDocGraph(t)
	p := DefaultParams()
	p.Mu = 10
	eng := NewEngineWithParams(g, p)

	// Collection statistics over the names field: total length 5,
	// cf(alpha)=2, cf(beta)=1, cf(gamma)=2.
	wNames := p.FieldWeights[index.FieldNames]
	var wSum float64
	for _, w := range p.FieldWeights {
		wSum += w
	}
	wNames /= wSum

	mu := 10.0
	cpAlpha := 2.0 / 5.0
	score := func(tf, docLen float64, cp float64) float64 {
		return wNames * (tf + mu*cp) / (docLen + mu)
	}

	// Query "alpha": both docs match only in names.
	wantA := math.Log(score(1, 2, cpAlpha))
	wantB := math.Log(score(1, 3, cpAlpha))
	hits := eng.Search("alpha", 0, ModelMLM)
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	got := map[rdf.TermID]float64{}
	for _, h := range hits {
		got[h.Entity] = h.Score
	}
	if math.Abs(got[aID]-wantA) > 1e-12 {
		t.Fatalf("score(A) = %.15f, want %.15f", got[aID], wantA)
	}
	if math.Abs(got[bID]-wantB) > 1e-12 {
		t.Fatalf("score(B) = %.15f, want %.15f", got[bID], wantB)
	}
	// Doc A is shorter, so its smoothed probability is higher.
	if hits[0].Entity != aID {
		t.Fatal("shorter doc must rank first for equal tf")
	}

	// Query "gamma": doc B has tf=2; doc A only background mass.
	cpGamma := 2.0 / 5.0
	wantB2 := math.Log(score(2, 3, cpGamma))
	hits = eng.Search("gamma", 0, ModelMLM)
	if hits[0].Entity != bID {
		t.Fatal("B must rank first for gamma")
	}
	if math.Abs(hits[0].Score-wantB2) > 1e-12 {
		t.Fatalf("score(B|gamma) = %.15f, want %.15f", hits[0].Score, wantB2)
	}
}

// TestMLMTwoTermQueryIsSumOfLogs checks additivity over query terms.
func TestMLMTwoTermQueryIsSumOfLogs(t *testing.T) {
	g, aID, _ := buildTwoDocGraph(t)
	p := DefaultParams()
	p.Mu = 10
	eng := NewEngineWithParams(g, p)
	single := func(q string) float64 {
		for _, h := range eng.Search(q, 0, ModelMLM) {
			if h.Entity == aID {
				return h.Score
			}
		}
		t.Fatalf("A missing for %q", q)
		return 0
	}
	both := single("alpha beta")
	if math.Abs(both-(single("alpha")+single("beta"))) > 1e-12 {
		t.Fatal("two-term score is not the sum of single-term scores")
	}
}
