// Package apidto holds the /api/v1 wire-shape DTOs shared by the HTTP
// server, the scatter-gather router and the inter-node binary codec.
//
// It exists as a leaf so that internal/wire (the binary codec) and
// internal/server (the JSON surface) can both speak these exact types
// without importing each other: server re-exports them under their
// historical names (server.StateV1DTO et al.), so every existing caller
// keeps compiling while the codec encodes the same structs the JSON
// encoder does — there is one definition of the state shape, not two
// that could drift.
package apidto

import "pivote/internal/heatmap"

// EntityDTO is one recommended entity of a state response.
type EntityDTO struct {
	ID    uint32  `json:"id"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
	Type  string  `json:"type,omitempty"`
}

// FeatureDTO is one recommended semantic feature of a state response.
type FeatureDTO struct {
	Label      string  `json:"label"`
	AnchorID   uint32  `json:"anchorId"`
	R          float64 `json:"r"`
	ExtentSize int     `json:"extentSize"`
}

// TimelineDTO is one exploration step of the session timeline.
type TimelineDTO struct {
	Step         int    `json:"step"`
	Kind         string `json:"kind"`
	Label        string `json:"label"`
	RevisitOf    int    `json:"revisitOf,omitempty"`
	ChangesQuery bool   `json:"changesQuery"`
}

// StateV1DTO is the /api/v1 state shape: unrequested areas are omitted
// entirely (the engine leaves them nil under field selection), so a
// ?include=entities response carries no feature, heat-map or timeline
// payload at all.
type StateV1DTO struct {
	Description string          `json:"description"`
	Entities    []EntityDTO     `json:"entities,omitempty"`
	Features    []FeatureDTO    `json:"features,omitempty"`
	Heat        *heatmap.Matrix `json:"heat,omitempty"`
	Timeline    []TimelineDTO   `json:"timeline,omitempty"`
	// Fallback marks an entity page produced by the PPR fallback (the SF
	// extents yielded no candidates). The router's merge rule depends on
	// it: fallback pages are dropped whenever any shard produced a real
	// SF page, and merged only when every shard fell back.
	Fallback bool `json:"fallback,omitempty"`
}

// OpsResponse is the POST /api/v1/ops success body: how many ops were
// applied plus the final state, pruned to the requested fields.
type OpsResponse struct {
	Applied int        `json:"applied"`
	State   StateV1DTO `json:"state"`
}
