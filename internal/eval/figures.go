package eval

import (
	"context"
	"fmt"
	"strings"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/synth"
	"pivote/internal/viz"
)

// Env is a generated graph shared by the experiment drivers so that every
// experiment at one scale reuses the same data and indexes.
type Env struct {
	Result *synth.Result
	Graph  *kg.Graph
}

// NewEnv generates the standard synthetic KG at the given film count.
func NewEnv(scale int, seed int64) *Env {
	cfg := synth.Scaled(scale)
	cfg.Seed = seed
	r := synth.Generate(cfg)
	return &Env{Result: r, Graph: r.Graph}
}

// anchor returns the paper's example entity, which the generator embeds
// at every scale.
func (e *Env) anchor(name string) rdf.TermID {
	id := e.Graph.EntityByName(name)
	if id == rdf.NoTerm {
		panic("eval: anchor entity " + name + " missing from synthetic graph")
	}
	return id
}

// RunT1 regenerates Table 1: the five-field representation of
// Forrest_Gump.
func RunT1(env *Env) Artifact {
	ff := search.FiveFieldsOf(env.Graph, env.anchor("Forrest_Gump"))
	return Artifact{
		ID:    "T1",
		Title: "Multi-fielded entity representation for Forrest_Gump",
		Text:  ff.Render("Forrest_Gump"),
	}
}

// RunF1a regenerates Figure 1-a: the annotated neighbourhood of
// Forrest_Gump as DOT, plus the semantic features it exposes.
func RunF1a(env *Env) Artifact {
	g := env.Graph
	gump := env.anchor("Forrest_Gump")
	nb := g.NeighborhoodOf(gump, 2, 24)
	var b strings.Builder
	b.WriteString("Figure 1-a: 2-hop neighbourhood of Forrest_Gump (see forrest_gump.dot)\n")
	fmt.Fprintf(&b, "nodes=%d edges=%d\n", len(nb.Nodes), len(nb.Edges))
	return Artifact{
		ID:    "F1a",
		Title: "Example knowledge-graph fragment around Forrest_Gump",
		Text:  b.String(),
		Files: map[string]string{"forrest_gump.dot": g.DOT(nb)},
	}
}

// RunF1b regenerates Figure 1-b: the view of entity types — the global
// type histogram and the coupled-type view of Film.
func RunF1b(env *Env) Artifact {
	g := env.Graph
	var b strings.Builder
	b.WriteString("Figure 1-b: view of entity types\n\nType histogram:\n")
	hist := g.TypeHistogram()
	maxCount := 0
	for _, h := range hist {
		if h.Count > maxCount {
			maxCount = h.Count
		}
	}
	for _, h := range hist {
		fmt.Fprintf(&b, "  %-12s %6d %s\n", h.Name, h.Count, viz.Bar(h.Count, maxCount, 40))
	}
	b.WriteString("\nCoupled types of Film (search directions):\n")
	film := g.Dict().LookupIRI("http://pivote.dev/ontology/class/Film")
	b.WriteString(g.RenderTypeView(film, 500, 12))
	return Artifact{
		ID:    "F1b",
		Title: "View of entity types and their couplings",
		Text:  b.String(),
	}
}

// RunF2 regenerates Figure 2: the system architecture diagram.
func RunF2() Artifact {
	return Artifact{
		ID:    "F2",
		Title: "PivotE system architecture",
		Text:  "Figure 2: architecture of the PivotE system (see architecture.dot)\n",
		Files: map[string]string{"architecture.dot": core.ArchitectureDOT()},
	}
}

// RunF3 regenerates Figure 3: the full interface state after the paper's
// "forrest gump" query followed by an investigation on the entity — all
// five areas, with the heat map additionally rendered as SVG and JSON.
func RunF3(env *Env) Artifact {
	eng := core.New(env.Graph, core.Options{TopEntities: 12, TopFeatures: 10})
	res, _, err := eng.ApplyOps(context.Background(), []core.Op{
		core.OpSubmit("forrest gump"),
		core.OpAddSeed(env.anchor("Forrest_Gump")),
	}, core.FieldsAll)
	if err != nil {
		panic("eval: F3 ops failed: " + err.Error())
	}
	files := map[string]string{}
	if res.Heat != nil {
		files["heatmap.svg"] = res.Heat.SVG()
		if raw, err := res.Heat.JSON(); err == nil {
			files["heatmap.json"] = string(raw)
		}
	}
	profile := eng.Lookup(env.anchor("Forrest_Gump"))
	text := "Figure 3: PivotE workspace for query \"forrest gump\" + entity Forrest_Gump\n\n" +
		res.RenderASCII() + "\nEntity presentation area (d):\n" + profile.Render()
	return Artifact{
		ID:    "F3",
		Title: "User interface of PivotE (all areas)",
		Text:  text,
		Files: files,
	}
}

// RunF4 regenerates Figure 4: the exploratory path of the §3 demo
// scenario (query → lookup → investigate → pivot to Actor → pivot to
// Director-domain film → revisit).
func RunF4(env *Env) Artifact {
	eng := core.New(env.Graph, core.Options{TopEntities: 10, TopFeatures: 8})
	// The §3 demo scenario as one replayable op log (FieldNone: only the
	// exploratory path is needed, so no query is ever evaluated).
	if _, _, err := eng.ApplyOps(context.Background(), []core.Op{
		core.OpSubmit("forrest gump"),
		core.OpLookup(env.anchor("Forrest_Gump")),
		core.OpAddSeed(env.anchor("Forrest_Gump")),
		core.OpPivot(env.anchor("Tom_Hanks")),
		core.OpPivot(env.anchor("Robert_Zemeckis")),
		core.OpRevisit(1),
	}, core.FieldNone); err != nil {
		panic("eval: F4 ops failed: " + err.Error())
	}
	s := eng.Session()
	return Artifact{
		ID:    "F4",
		Title: "An example of the exploratory path",
		Text:  "Figure 4: exploratory search path\n\n" + s.PathASCII(),
		Files: map[string]string{
			"path.dot": s.PathDOT(),
			"path.svg": s.PathSVG(),
		},
	}
}
