package eval

import (
	"fmt"
	"strings"
)

// Table is one measured experiment result, rendered as an aligned text
// table — the shape in which the harness reports every E/A experiment.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends one row; the cell count should match the header.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render prints the table with aligned columns.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Artifact is a regenerated figure or illustration (T1, F1a, F1b, F2, F3,
// F4): a primary text rendering plus optional extra files (SVG, DOT,
// JSON) keyed by suggested filename.
type Artifact struct {
	ID    string
	Title string
	Text  string
	Files map[string]string
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
