package eval

import (
	"math/rand"
	"strings"
	"testing"
)

// tinyEnv is shared across experiment tests; generation is deterministic
// so sharing is safe.
var tinyEnv = NewEnv(120, 7)

func tinyConfig() Config {
	return Config{Scale: 120, Seed: 7, Queries: 8, SeedsPerQuery: 2, MinConcept: 5, MaxConcept: 80, TopK: 50}
}

func TestExpansionWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	qs := ExpansionWorkload(tinyEnv.Graph, rng, 10, 2, 5, 80)
	if len(qs) != 10 {
		t.Fatalf("got %d queries, want 10", len(qs))
	}
	for _, q := range qs {
		if len(q.Seeds) != 2 {
			t.Fatalf("query has %d seeds", len(q.Seeds))
		}
		if len(q.Relevant) == 0 {
			t.Fatalf("query %s has empty relevance set", q.Concept)
		}
		for _, s := range q.Seeds {
			if q.Relevant[s] {
				t.Fatal("seed leaked into relevance set")
			}
		}
	}
}

func TestExpansionWorkloadDeterministic(t *testing.T) {
	a := ExpansionWorkload(tinyEnv.Graph, rand.New(rand.NewSource(3)), 5, 2, 5, 80)
	b := ExpansionWorkload(tinyEnv.Graph, rand.New(rand.NewSource(3)), 5, 2, 5, 80)
	for i := range a {
		if a[i].Concept != b[i].Concept || len(a[i].Relevant) != len(b[i].Relevant) {
			t.Fatal("workload not deterministic")
		}
	}
}

func TestRetrievalWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	qs := RetrievalWorkload(tinyEnv.Graph, rng, 40)
	if len(qs) < 30 {
		t.Fatalf("got only %d retrieval queries", len(qs))
	}
	kinds := map[string]int{}
	for _, q := range qs {
		if q.Text == "" || len(q.Relevant) != 1 {
			t.Fatalf("malformed query %+v", q)
		}
		kinds[q.Kind]++
	}
	for _, k := range []string{"exact", "partial", "alias", "category-hint"} {
		if kinds[k] == 0 {
			t.Fatalf("no %q queries generated: %v", k, kinds)
		}
	}
}

func TestRunT1ContainsPaperContent(t *testing.T) {
	a := RunT1(tinyEnv)
	for _, want := range []string{"Forrest Gump", "142 minutes", "55 million dollars", "Geenbow", "Tom Hanks"} {
		if !strings.Contains(a.Text, want) {
			t.Fatalf("T1 missing %q:\n%s", want, a.Text)
		}
	}
}

func TestRunF1a(t *testing.T) {
	a := RunF1a(tinyEnv)
	dot := a.Files["forrest_gump.dot"]
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "Forrest Gump") {
		t.Fatal("F1a DOT malformed")
	}
}

func TestRunF1b(t *testing.T) {
	a := RunF1b(tinyEnv)
	for _, want := range []string{"Type histogram", "Film", "starring"} {
		if !strings.Contains(a.Text, want) {
			t.Fatalf("F1b missing %q", want)
		}
	}
}

func TestRunF2(t *testing.T) {
	a := RunF2()
	if !strings.Contains(a.Files["architecture.dot"], "Recommendation Engine") {
		t.Fatal("F2 architecture DOT malformed")
	}
}

func TestRunF3(t *testing.T) {
	a := RunF3(tinyEnv)
	for _, want := range []string{"entities (c)", "semantic features (e)", "timeline (g)", "Forrest Gump"} {
		if !strings.Contains(a.Text, want) {
			t.Fatalf("F3 missing %q", want)
		}
	}
	if !strings.HasPrefix(a.Files["heatmap.svg"], "<svg") {
		t.Fatal("F3 heat map SVG missing")
	}
	if a.Files["heatmap.json"] == "" {
		t.Fatal("F3 heat map JSON missing")
	}
}

func TestRunF4(t *testing.T) {
	a := RunF4(tinyEnv)
	for _, want := range []string{"pivot", "revisit"} {
		if !strings.Contains(a.Text, want) {
			t.Fatalf("F4 missing %q:\n%s", want, a.Text)
		}
	}
	if !strings.Contains(a.Files["path.dot"], "digraph") {
		t.Fatal("F4 DOT missing")
	}
	if !strings.HasPrefix(a.Files["path.svg"], "<svg") {
		t.Fatal("F4 SVG missing")
	}
}

func TestRunE5ShapePivotEWins(t *testing.T) {
	tab := RunE5(tinyEnv, tinyConfig())
	if len(tab.Rows) != 5 {
		t.Fatalf("E5 rows = %d, want 5 methods", len(tab.Rows))
	}
	if tab.Rows[0][0] != "PivotE-SF" {
		t.Fatal("first row should be PivotE-SF")
	}
	// The paper's method should beat the weakest baseline on MAP.
	pivot := parseF(t, tab.Rows[0][1])
	worst := 1.0
	for _, row := range tab.Rows[1:] {
		if v := parseF(t, row[1]); v < worst {
			worst = v
		}
	}
	if pivot <= worst {
		t.Fatalf("PivotE MAP %.3f does not beat the weakest baseline %.3f", pivot, worst)
	}
}

func TestRunE6Shape(t *testing.T) {
	tab := RunE6(tinyEnv, tinyConfig())
	if len(tab.Rows) != 5 {
		t.Fatalf("E6 rows = %d, want 5 seed counts", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if len(row) != 4 {
			t.Fatalf("E6 row %d has %d cells", i, len(row))
		}
	}
}

func TestRunE7MLMBeatsNamesOnly(t *testing.T) {
	tab := RunE7(tinyEnv, tinyConfig())
	var mlm, lmNames float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "MLM":
			mlm = parseF(t, row[1])
		case "LM-names":
			lmNames = parseF(t, row[1])
		}
	}
	// Alias queries are only answerable through the similar-names field,
	// so five-field MLM must beat the names-only LM on MRR.
	if mlm <= lmNames {
		t.Fatalf("MLM MRR %.3f does not beat LM-names %.3f", mlm, lmNames)
	}
}

func TestRunA1TolerantBeatsStrictRecall(t *testing.T) {
	tab := RunA1(tinyEnv, tinyConfig())
	if len(tab.Rows) != 2 {
		t.Fatal("A1 needs 2 rows")
	}
	tolerantR50 := parseF(t, tab.Rows[0][3])
	strictR50 := parseF(t, tab.Rows[1][3])
	if tolerantR50 < strictR50 {
		t.Fatalf("error-tolerant R@50 %.3f below strict %.3f", tolerantR50, strictR50)
	}
}

func TestRunA2RunsBothVariants(t *testing.T) {
	tab := RunA2(tinyEnv, tinyConfig())
	if len(tab.Rows) != 2 {
		t.Fatal("A2 needs 2 rows")
	}
	for _, row := range tab.Rows {
		if v := parseF(t, row[1]); v < 0 || v > 1 {
			t.Fatalf("A2 MAP out of range: %v", row)
		}
	}
}

func TestRunA3NamesMatter(t *testing.T) {
	tab := RunA3(tinyEnv, tinyConfig())
	var tuned, noNames float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "tuned (paper defaults)":
			tuned = parseF(t, row[1])
		case "no names":
			noNames = parseF(t, row[1])
		}
	}
	if tuned <= noNames {
		t.Fatalf("tuned MRR %.3f does not beat no-names %.3f", tuned, noNames)
	}
}

func TestRunA4QuantilePopulatesMoreLevels(t *testing.T) {
	tab := RunA4(tinyEnv, tinyConfig())
	if len(tab.Rows) != 2 {
		t.Fatal("A4 needs 2 rows")
	}
	quantile := parseF(t, tab.Rows[0][1])
	linear := parseF(t, tab.Rows[1][1])
	if quantile < linear {
		t.Fatalf("quantile levels %.2f below linear %.2f", quantile, linear)
	}
	if quantile < 3 {
		t.Fatalf("quantile populates only %.2f levels", quantile)
	}
}

func TestRunE8Shape(t *testing.T) {
	tab := RunE8(tinyConfig(), []int{60}, 3)
	if len(tab.Rows) != 4 {
		t.Fatalf("E8 rows = %d, want 4 operations", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 6 {
			t.Fatalf("E8 row cells = %d", len(row))
		}
	}
}

func TestRunE9Shape(t *testing.T) {
	tab := RunE9(tinyConfig(), []int{60, 120})
	if len(tab.Rows) != 2 {
		t.Fatalf("E9 rows = %d, want 2 scales", len(tab.Rows))
	}
}

func TestRunE10Shape(t *testing.T) {
	tab := RunE10(tinyConfig(), []int{60}, 5)
	if len(tab.Rows) != 4 {
		t.Fatalf("E10 rows = %d, want 4 models", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 7 {
			t.Fatalf("E10 row cells = %d", len(row))
		}
		if v := parseF(t, row[6]); v <= 0 {
			t.Fatalf("E10 qps = %v", row[6])
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// fmtSscan avoids importing fmt solely for tests' parse helper.
func fmtSscan(s string, v *float64) (int, error) {
	var parsed float64
	var frac, scale float64 = 0, 1
	neg := false
	i := 0
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		parsed = parsed*10 + float64(s[i]-'0')
	}
	if i < len(s) && s[i] == '.' {
		i++
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			frac = frac*10 + float64(s[i]-'0')
			scale *= 10
		}
	}
	parsed += frac / scale
	if neg {
		parsed = -parsed
	}
	*v = parsed
	return 1, nil
}
