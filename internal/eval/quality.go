package eval

import (
	"fmt"
	"math/rand"

	"pivote/internal/expand"
	"pivote/internal/heatmap"
	"pivote/internal/index"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
)

// Config sizes the measured experiments. Zero values take the defaults of
// DefaultConfig.
type Config struct {
	Scale         int   // synthetic film count
	Seed          int64 // synthetic + workload seed
	Queries       int   // queries per experiment
	SeedsPerQuery int   // m, the number of example entities
	MinConcept    int   // smallest eligible hidden-concept size
	MaxConcept    int   // largest eligible hidden-concept size
	TopK          int   // ranking depth handed to the metrics
}

// DefaultConfig is the configuration the committed EXPERIMENTS.md numbers
// were produced with.
func DefaultConfig() Config {
	return Config{
		Scale:         1000,
		Seed:          42,
		Queries:       100,
		SeedsPerQuery: 3,
		MinConcept:    8,
		MaxConcept:    150,
		TopK:          100,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Scale <= 0 {
		c.Scale = d.Scale
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.SeedsPerQuery <= 0 {
		c.SeedsPerQuery = d.SeedsPerQuery
	}
	if c.MinConcept <= 0 {
		c.MinConcept = d.MinConcept
	}
	if c.MaxConcept <= 0 {
		c.MaxConcept = d.MaxConcept
	}
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	return c
}

// runExpansion evaluates one expansion method over a workload.
func runExpansion(x *expand.Expander, method expand.Method, queries []ExpansionQuery, topK int) Metrics {
	var m Metrics
	for _, q := range queries {
		ranked := x.ExpandWith(method, q.Seeds, topK)
		ids := make([]rdf.TermID, len(ranked))
		for i, r := range ranked {
			ids[i] = r.Entity
		}
		m.Accumulate(ids, q.Relevant)
	}
	return m.Finalize()
}

// RunE5 measures expansion quality: PivotE's SF ranking vs the four
// baselines on hidden-category recovery.
func RunE5(env *Env, cfg Config) Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	queries := ExpansionWorkload(env.Graph, rng, cfg.Queries, cfg.SeedsPerQuery, cfg.MinConcept, cfg.MaxConcept)
	t := Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Expansion quality (%d queries, %d seeds, scale %d)", len(queries), cfg.SeedsPerQuery, cfg.Scale),
		Header: []string{"method", "MAP", "P@10", "nDCG@10", "MRR", "R@50"},
	}
	for _, method := range expand.Methods() {
		en := semfeat.NewEngine(env.Graph)
		x := expand.New(en, expand.Options{SameTypeOnly: true, TopFeatures: 50})
		m := runExpansion(x, method, queries, cfg.TopK)
		t.AddRow(method.String(), f3(m.MAP), f3(m.P10), f3(m.NDCG10), f3(m.MRR), f3(m.R50))
	}
	t.Notes = "hidden concepts are categories; seeds sampled per query; higher is better"
	return t
}

// RunE6 measures seed-count sensitivity: MAP as a function of the number
// of example entities m = 1..5 for the three strongest methods.
func RunE6(env *Env, cfg Config) Table {
	cfg = cfg.withDefaults()
	methods := []expand.Method{expand.MethodPivotE, expand.MethodCommonNeighbors, expand.MethodPPR}
	t := Table{
		ID:     "E6",
		Title:  fmt.Sprintf("MAP vs number of seeds (scale %d)", cfg.Scale),
		Header: []string{"seeds m", "PivotE-SF", "CommonNeighbors", "PPR"},
	}
	for m := 1; m <= 5; m++ {
		rng := rand.New(rand.NewSource(cfg.Seed + 60 + int64(m)))
		queries := ExpansionWorkload(env.Graph, rng, cfg.Queries, m, cfg.MinConcept, cfg.MaxConcept)
		row := []string{fmt.Sprintf("%d", m)}
		for _, method := range methods {
			en := semfeat.NewEngine(env.Graph)
			x := expand.New(en, expand.Options{SameTypeOnly: true, TopFeatures: 50})
			mm := runExpansion(x, method, queries, cfg.TopK)
			row = append(row, f3(mm.MAP))
		}
		t.AddRow(row...)
	}
	t.Notes = "each m uses a fresh workload of the same size; MAP reported"
	return t
}

// RunE7 measures retrieval quality of the search engine: the paper's
// five-field MLM vs BM25F, names-only LM and boolean AND on known-item
// queries.
func RunE7(env *Env, cfg Config) Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	queries := RetrievalWorkload(env.Graph, rng, cfg.Queries*3)
	eng := search.NewEngine(env.Graph)
	t := Table{
		ID:     "E7",
		Title:  fmt.Sprintf("Retrieval quality (%d known-item queries, scale %d)", len(queries), cfg.Scale),
		Header: []string{"model", "MRR", "MAP", "S@1", "S@10"},
	}
	for _, model := range []search.Model{search.ModelMLM, search.ModelBM25F, search.ModelLMNames, search.ModelBoolean} {
		var m Metrics
		s1, s10 := 0.0, 0.0
		for _, q := range queries {
			hits := eng.Search(q.Text, 100, model)
			ids := make([]rdf.TermID, len(hits))
			for i, h := range hits {
				ids[i] = h.Entity
			}
			m.Accumulate(ids, q.Relevant)
			if len(ids) > 0 && q.Relevant[ids[0]] {
				s1++
			}
			s10 += RecallAt(ids, q.Relevant, 10)
		}
		fm := m.Finalize()
		n := float64(len(queries))
		t.AddRow(model.String(), f3(fm.MRR), f3(fm.MAP), f3(s1/n), f3(s10/n))
	}
	t.Notes = "known-item search over exact/partial/alias/category-hint query forms"
	return t
}

// RunA1 measures the error-tolerant back-off ablation: PivotE with and
// without the category back-off of p(π|e).
func RunA1(env *Env, cfg Config) Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 5)) // E5's workload for comparability
	queries := ExpansionWorkload(env.Graph, rng, cfg.Queries, cfg.SeedsPerQuery, cfg.MinConcept, cfg.MaxConcept)
	t := Table{
		ID:     "A1",
		Title:  "Ablation: error-tolerant p(π|e) vs strict membership",
		Header: []string{"variant", "MAP", "P@10", "R@50"},
	}
	for _, variant := range []struct {
		name string
		opts semfeat.Options
	}{
		{"error-tolerant (paper)", semfeat.Options{}},
		{"strict", semfeat.Options{Strict: true}},
	} {
		en := semfeat.NewEngineWithOptions(env.Graph, variant.opts)
		x := expand.New(en, expand.Options{SameTypeOnly: true, TopFeatures: 50})
		m := runExpansion(x, expand.MethodPivotE, queries, cfg.TopK)
		t.AddRow(variant.name, f3(m.MAP), f3(m.P10), f3(m.R50))
	}
	t.Notes = "same workload as E5"
	return t
}

// RunA2 measures the discriminability ablation: d(π)=1/‖E(π)‖ vs d(π)=1.
func RunA2(env *Env, cfg Config) Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	queries := ExpansionWorkload(env.Graph, rng, cfg.Queries, cfg.SeedsPerQuery, cfg.MinConcept, cfg.MaxConcept)
	t := Table{
		ID:     "A2",
		Title:  "Ablation: IDF-like discriminability vs uniform",
		Header: []string{"variant", "MAP", "P@10", "R@50"},
	}
	for _, variant := range []struct {
		name string
		opts semfeat.Options
	}{
		{"d(π)=1/|E(π)| (paper)", semfeat.Options{}},
		{"d(π)=1 (uniform)", semfeat.Options{UniformDiscriminability: true}},
	} {
		en := semfeat.NewEngineWithOptions(env.Graph, variant.opts)
		x := expand.New(en, expand.Options{SameTypeOnly: true, TopFeatures: 50})
		m := runExpansion(x, expand.MethodPivotE, queries, cfg.TopK)
		t.AddRow(variant.name, f3(m.MAP), f3(m.P10), f3(m.R50))
	}
	t.Notes = "same workload as E5"
	return t
}

// RunA4 measures the heat-map quantization ablation: quantile-based
// seven-level assignment (the implementation choice documented in
// DESIGN.md) vs a naive linear split of the value range. The metric is
// how many of the seven shades a rendered explanation actually uses —
// visual discrimination, the property §2.3.2's "seven levels" exist for.
func RunA4(env *Env, cfg Config) Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	queries := ExpansionWorkload(env.Graph, rng, cfg.Queries/2, 2, cfg.MinConcept, cfg.MaxConcept)
	en := semfeat.NewEngine(env.Graph)
	x := expand.New(en, expand.Options{SameTypeOnly: true})
	t := Table{
		ID:     "A4",
		Title:  "Ablation: heat-map level quantization",
		Header: []string{"quantization", "mean populated levels (of 7)", "share of non-zero cells in bottom shade"},
	}
	for _, variant := range []struct {
		name string
		mode heatmap.Quantization
	}{
		{"quantile (ours)", heatmap.QuantileLevels},
		{"linear", heatmap.LinearLevels},
	} {
		totalLevels, totalBottom, totalNonzero := 0.0, 0, 0
		n := 0
		for _, q := range queries {
			ranked, feats := x.Expand(q.Seeds, 12)
			if len(ranked) == 0 || len(feats) == 0 {
				continue
			}
			m := heatmap.BuildWith(en, ranked, feats, variant.mode)
			totalLevels += float64(m.PopulatedLevels())
			for i := range m.Level {
				for j := range m.Level[i] {
					if m.Values[i][j] > 0 {
						totalNonzero++
						if m.Level[i][j] == 1 {
							totalBottom++
						}
					}
				}
			}
			n++
		}
		if n == 0 {
			t.AddRow(variant.name, "n/a", "n/a")
			continue
		}
		t.AddRow(variant.name,
			f3(totalLevels/float64(n)),
			f3(float64(totalBottom)/float64(totalNonzero)))
	}
	t.Notes = "2-seed investigation heat maps; more populated levels = better visual discrimination"
	return t
}

// RunA3 measures the field-weight ablation of the search engine's MLM.
func RunA3(env *Env, cfg Config) Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 7)) // E7's workload
	queries := RetrievalWorkload(env.Graph, rng, cfg.Queries*3)
	variants := []struct {
		name    string
		weights [index.NumFields]float64
	}{
		{"tuned (paper defaults)", search.DefaultParams().FieldWeights},
		{"uniform", [index.NumFields]float64{1, 1, 1, 1, 1}},
		{"names only", [index.NumFields]float64{index.FieldNames: 1}},
		{"no names", [index.NumFields]float64{0, 1, 1, 1, 1}},
	}
	t := Table{
		ID:     "A3",
		Title:  "Ablation: MLM field weights",
		Header: []string{"weights", "MRR", "S@1"},
	}
	// One frozen index serves every weight variant: weights are query-time
	// parameters, so the sweep shares the build via WithParams.
	base := search.NewEngine(env.Graph)
	for _, v := range variants {
		p := search.DefaultParams()
		p.FieldWeights = v.weights
		eng := base.WithParams(p)
		var m Metrics
		s1 := 0.0
		for _, q := range queries {
			hits := eng.Search(q.Text, 100, search.ModelMLM)
			ids := make([]rdf.TermID, len(hits))
			for i, h := range hits {
				ids[i] = h.Entity
			}
			m.Accumulate(ids, q.Relevant)
			if len(ids) > 0 && q.Relevant[ids[0]] {
				s1++
			}
		}
		fm := m.Finalize()
		t.AddRow(v.name, f3(fm.MRR), f3(s1/float64(len(queries))))
	}
	t.Notes = "same workload as E7; MLM retrieval throughout"
	return t
}
