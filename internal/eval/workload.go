package eval

import (
	"math/rand"
	"sort"
	"strings"

	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/text"
)

// ExpansionQuery is one entity-set-expansion task: given the seeds, an
// expansion method should recover the held-out members of the hidden
// concept.
type ExpansionQuery struct {
	Concept  string
	Seeds    []rdf.TermID
	Relevant map[rdf.TermID]bool
}

// ExpansionWorkload derives expansion queries from the graph's category
// system: each query picks a category whose size lies in [minSize,
// maxSize], samples numSeeds members as the query and holds out the rest
// as the relevance set. Categories are the hidden concepts — precisely
// the evaluation protocol of the paper's refs [1][6]. Generation is
// deterministic for a given rng.
func ExpansionWorkload(g *kg.Graph, rng *rand.Rand, numQueries, numSeeds, minSize, maxSize int) []ExpansionQuery {
	var eligible []rdf.TermID
	for _, c := range g.Categories() {
		n := len(g.CategoryMembers(c))
		if n >= minSize && n <= maxSize && n > numSeeds {
			eligible = append(eligible, c)
		}
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i] < eligible[j] })
	var out []ExpansionQuery
	for len(out) < numQueries && len(eligible) > 0 {
		c := eligible[rng.Intn(len(eligible))]
		members := g.CategoryMembers(c)
		perm := rng.Perm(len(members))
		seeds := make([]rdf.TermID, numSeeds)
		for i := 0; i < numSeeds; i++ {
			seeds[i] = members[perm[i]]
		}
		relevant := make(map[rdf.TermID]bool, len(members)-numSeeds)
		for _, idx := range perm[numSeeds:] {
			relevant[members[idx]] = true
		}
		out = append(out, ExpansionQuery{
			Concept:  g.Dict().Term(c).LocalName(),
			Seeds:    seeds,
			Relevant: relevant,
		})
	}
	return out
}

// RetrievalQuery is one keyword-search task with its relevant entities.
type RetrievalQuery struct {
	Text     string
	Kind     string // "exact", "partial", "alias", "category-hint"
	Relevant map[rdf.TermID]bool
}

// RetrievalWorkload derives known-item keyword queries from entity
// labels: exact labels, partial labels (one non-stopword token dropped),
// redirect alias labels (only findable through the similar-entity-names
// field) and label+category hints. Each query's relevant set is the
// single target entity. The four kinds are interleaved evenly; each kind
// samples only from the entities that can express it, so the mix stays
// stable at every graph scale.
func RetrievalWorkload(g *kg.Graph, rng *rand.Rand, numQueries int) []RetrievalQuery {
	var multiToken, withAlias, withCats []rdf.TermID
	ents := g.Entities()
	if len(ents) == 0 {
		return nil
	}
	for _, e := range ents {
		if len(text.Analyze(g.Name(e))) >= 2 {
			multiToken = append(multiToken, e)
		}
		if len(g.SimilarNames(e)) > 0 {
			withAlias = append(withAlias, e)
		}
		if len(g.CategoriesOf(e)) > 0 {
			withCats = append(withCats, e)
		}
	}
	var out []RetrievalQuery
	for i := 0; len(out) < numQueries && i < numQueries*4; i++ {
		rel := func(e rdf.TermID) map[rdf.TermID]bool { return map[rdf.TermID]bool{e: true} }
		switch i % 4 {
		case 0:
			e := ents[rng.Intn(len(ents))]
			out = append(out, RetrievalQuery{Text: g.Name(e), Kind: "exact", Relevant: rel(e)})
		case 1:
			if len(multiToken) == 0 {
				continue
			}
			e := multiToken[rng.Intn(len(multiToken))]
			toks := text.Analyze(g.Name(e))
			drop := rng.Intn(len(toks))
			kept := make([]string, 0, len(toks)-1)
			for j, t := range toks {
				if j != drop {
					kept = append(kept, t)
				}
			}
			out = append(out, RetrievalQuery{Text: strings.Join(kept, " "), Kind: "partial", Relevant: rel(e)})
		case 2:
			if len(withAlias) == 0 {
				continue
			}
			e := withAlias[rng.Intn(len(withAlias))]
			similar := g.SimilarNames(e)
			out = append(out, RetrievalQuery{Text: similar[rng.Intn(len(similar))], Kind: "alias", Relevant: rel(e)})
		default:
			if len(withCats) == 0 {
				continue
			}
			e := withCats[rng.Intn(len(withCats))]
			cats := g.CategoriesOf(e)
			hint := g.Name(cats[rng.Intn(len(cats))])
			hintToks := text.Tokenize(hint)
			out = append(out, RetrievalQuery{
				Text:     g.Name(e) + " " + hintToks[0],
				Kind:     "category-hint",
				Relevant: rel(e),
			})
		}
	}
	return out
}
