package eval

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pivote/internal/core"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
)

// latencies collects wall-clock samples and reports percentiles in
// milliseconds. Timing lives only in the experiment harness — library
// code paths stay deterministic.
type latencies struct{ samples []float64 }

func (l *latencies) observe(d time.Duration) {
	l.samples = append(l.samples, float64(d.Nanoseconds())/1e6)
}

func (l *latencies) percentiles() (p50, p95, p99 float64) {
	sort.Float64s(l.samples)
	return Percentile(l.samples, 50), Percentile(l.samples, 95), Percentile(l.samples, 99)
}

// RunE8 measures interactive latency of the four core operations —
// keyword search, investigation (seed expansion), pivot, and full
// interface assembly with heat map — across KG scales. The demo's
// implicit claim is that every interaction stays interactive; the table
// lets the reader check where that holds.
func RunE8(cfg Config, scales []int, opsPerScale int) Table {
	cfg = cfg.withDefaults()
	if opsPerScale <= 0 {
		opsPerScale = 30
	}
	t := Table{
		ID:     "E8",
		Title:  "Interactive latency by scale (milliseconds)",
		Header: []string{"scale(films)", "entities", "operation", "p50", "p95", "p99"},
	}
	ctx := context.Background()
	for _, scale := range scales {
		env := NewEnv(scale, cfg.Seed)
		eng := core.New(env.Graph, core.Options{})
		rng := rand.New(rand.NewSource(cfg.Seed + 8))
		films := env.Result.Manifest.Films
		actors := env.Result.Manifest.Actors
		nEnts := len(env.Graph.Entities())

		// The harness drives the engine through the same op protocol the
		// servers use; a batch via ApplyOps evaluates once at the end,
		// exactly like POST /api/v1/ops.
		apply := func(ops ...core.Op) {
			if _, _, err := eng.ApplyOps(ctx, ops, core.FieldsAll); err != nil {
				panic("eval: " + err.Error())
			}
		}
		ops := []struct {
			name string
			run  func()
		}{
			{"keyword search", func() {
				apply(core.OpSubmit(env.Graph.Name(films[rng.Intn(len(films))])))
			}},
			{"investigate (expand)", func() {
				apply(core.OpSubmit(""), core.OpAddSeed(films[rng.Intn(len(films))]))
			}},
			{"pivot", func() {
				apply(core.OpPivot(actors[rng.Intn(len(actors))]))
			}},
			{"full state + heat map", func() {
				apply(core.OpSubmit(""),
					core.OpAddSeed(films[rng.Intn(len(films))]),
					core.OpAddSeed(films[rng.Intn(len(films))]))
			}},
		}
		for _, op := range ops {
			var lat latencies
			for i := 0; i < opsPerScale; i++ {
				start := time.Now()
				op.run()
				lat.observe(time.Since(start))
			}
			p50, p95, p99 := lat.percentiles()
			t.AddRow(fmt.Sprintf("%d", scale), fmt.Sprintf("%d", nEnts), op.name,
				fmt.Sprintf("%.2f", p50), fmt.Sprintf("%.2f", p95), fmt.Sprintf("%.2f", p99))
		}
	}
	t.Notes = "single-threaded; includes result assembly and 7-level heat map"
	return t
}

// RunE10 measures raw retrieval latency of the four search models over
// one shared frozen index per scale — the term-at-a-time scatter path
// the keyword entry point runs on. Queries come from the same workload
// generator the quality experiments use, so the latency numbers describe
// realistic query shapes, not synthetic best cases.
func RunE10(cfg Config, scales []int, queriesPerScale int) Table {
	cfg = cfg.withDefaults()
	if queriesPerScale <= 0 {
		queriesPerScale = 50
	}
	t := Table{
		ID:     "E10",
		Title:  "Retrieval latency by model and scale (milliseconds)",
		Header: []string{"scale(films)", "entities", "model", "p50", "p95", "p99", "qps"},
	}
	for _, scale := range scales {
		env := NewEnv(scale, cfg.Seed)
		eng := search.NewEngine(env.Graph)
		rng := rand.New(rand.NewSource(cfg.Seed + 10))
		queries := RetrievalWorkload(env.Graph, rng, queriesPerScale)
		nEnts := len(env.Graph.Entities())
		for _, model := range []search.Model{search.ModelMLM, search.ModelBM25F, search.ModelLMNames, search.ModelBoolean} {
			var lat latencies
			total := time.Duration(0)
			for _, q := range queries {
				start := time.Now()
				_ = eng.Search(q.Text, 10, model)
				d := time.Since(start)
				lat.observe(d)
				total += d
			}
			p50, p95, p99 := lat.percentiles()
			qps := 0.0
			if total > 0 {
				qps = float64(len(queries)) / total.Seconds()
			}
			t.AddRow(fmt.Sprintf("%d", scale), fmt.Sprintf("%d", nEnts), model.String(),
				fmt.Sprintf("%.3f", p50), fmt.Sprintf("%.3f", p95), fmt.Sprintf("%.3f", p99),
				fmt.Sprintf("%.0f", qps))
		}
	}
	t.Notes = "single-threaded; top-10 pages over the shared frozen index (term-at-a-time scatter scoring)"
	return t
}

// RunE9 measures the scalability of the semantic-feature machinery and
// index construction: build times (graph, search index, feature catalog)
// and SF-ranking throughput per scale, naive model vs frozen-catalog
// scatter — the before/after record of the catalog optimization.
func RunE9(cfg Config, scales []int) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:     "E9",
		Title:  "Substrate scalability (SF ranking: naive vs frozen catalog)",
		Header: []string{"scale(films)", "triples", "graph build(ms)", "index build(ms)", "catalog build(ms)", "extent ops/s", "rank ops/s naive", "rank ops/s catalog"},
	}
	for _, scale := range scales {
		start := time.Now()
		env := NewEnv(scale, cfg.Seed)
		buildMS := float64(time.Since(start).Nanoseconds()) / 1e6

		start = time.Now()
		_ = search.BuildIndex(env.Graph)
		indexMS := float64(time.Since(start).Nanoseconds()) / 1e6

		start = time.Now()
		catalogCache := semfeat.NewCatalogCache(env.Graph)
		catalogMS := float64(time.Since(start).Nanoseconds()) / 1e6

		en := semfeat.NewEngine(env.Graph)
		rng := rand.New(rand.NewSource(cfg.Seed + 9))
		films := env.Result.Manifest.Films

		// Extent throughput over fresh (uncached) features.
		var feats []semfeat.Feature
		for len(feats) < 500 {
			e := films[rng.Intn(len(films))]
			feats = append(feats, en.FeaturesOf(e)...)
		}
		start = time.Now()
		for _, f := range feats {
			_ = en.Extent(f)
		}
		extentOps := float64(len(feats)) / time.Since(start).Seconds()

		// Feature-ranking throughput (two-seed queries), same query
		// stream through both models.
		const rankOpsN = 20
		var seedPairs [][]rdf.TermID
		for i := 0; i < rankOpsN; i++ {
			seedPairs = append(seedPairs, []rdf.TermID{
				films[rng.Intn(len(films))],
				films[rng.Intn(len(films))],
			})
		}
		start = time.Now()
		for _, seeds := range seedPairs {
			_ = en.Rank(seeds, 50)
		}
		rankOpsNaive := float64(rankOpsN) / time.Since(start).Seconds()

		cen := semfeat.NewEngineWithCache(catalogCache, semfeat.Options{})
		start = time.Now()
		for _, seeds := range seedPairs {
			_ = cen.Rank(seeds, 50)
		}
		rankOpsCatalog := float64(rankOpsN) / time.Since(start).Seconds()

		t.AddRow(fmt.Sprintf("%d", scale),
			fmt.Sprintf("%d", env.Result.Store.Len()),
			fmt.Sprintf("%.1f", buildMS),
			fmt.Sprintf("%.1f", indexMS),
			fmt.Sprintf("%.1f", catalogMS),
			fmt.Sprintf("%.0f", extentOps),
			fmt.Sprintf("%.1f", rankOpsNaive),
			fmt.Sprintf("%.1f", rankOpsCatalog))
	}
	t.Notes = "graph build includes synthesis + freeze + entity scan; extent ops measured cold on the lazy cache; rank throughput over identical query streams"
	return t
}
