package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pivote/internal/rdf"
)

func rel(ids ...rdf.TermID) map[rdf.TermID]bool {
	m := map[rdf.TermID]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAveragePrecision(t *testing.T) {
	ranking := []rdf.TermID{1, 2, 3, 4, 5}
	// Relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2.
	if got := AveragePrecision(ranking, rel(1, 3)); !almost(got, (1.0+2.0/3)/2) {
		t.Fatalf("AP = %f", got)
	}
	// Unfound relevant items count in the denominator.
	if got := AveragePrecision(ranking, rel(1, 99)); !almost(got, 0.5) {
		t.Fatalf("AP with missing relevant = %f, want 0.5", got)
	}
	if got := AveragePrecision(ranking, rel()); got != 0 {
		t.Fatalf("AP with empty relevance = %f", got)
	}
	if got := AveragePrecision(nil, rel(1)); got != 0 {
		t.Fatalf("AP of empty ranking = %f", got)
	}
}

func TestPrecisionAt(t *testing.T) {
	ranking := []rdf.TermID{1, 2, 3}
	if got := PrecisionAt(ranking, rel(1, 3), 3); !almost(got, 2.0/3) {
		t.Fatalf("P@3 = %f", got)
	}
	// Short rankings are padded with misses.
	if got := PrecisionAt(ranking, rel(1, 3), 10); !almost(got, 0.2) {
		t.Fatalf("P@10 = %f, want 0.2", got)
	}
	if got := PrecisionAt(ranking, rel(1), 0); got != 0 {
		t.Fatalf("P@0 = %f", got)
	}
}

func TestRecallAt(t *testing.T) {
	ranking := []rdf.TermID{1, 2, 3, 4}
	if got := RecallAt(ranking, rel(1, 9, 8), 4); !almost(got, 1.0/3) {
		t.Fatalf("R@4 = %f", got)
	}
	if got := RecallAt(ranking, rel(), 4); got != 0 {
		t.Fatalf("R with empty relevance = %f", got)
	}
}

func TestNDCG(t *testing.T) {
	// Perfect ranking of 2 relevant items in top-2.
	if got := NDCGAt([]rdf.TermID{1, 2, 3}, rel(1, 2), 10); !almost(got, 1) {
		t.Fatalf("perfect nDCG = %f", got)
	}
	// Relevant at rank 2 only, one relevant total: DCG = 1/log2(3),
	// ideal = 1.
	want := 1 / math.Log2(3)
	if got := NDCGAt([]rdf.TermID{9, 1}, rel(1), 10); !almost(got, want) {
		t.Fatalf("nDCG = %f, want %f", got, want)
	}
	if got := NDCGAt(nil, rel(1), 10); got != 0 {
		t.Fatalf("nDCG of empty ranking = %f", got)
	}
}

func TestReciprocalRank(t *testing.T) {
	if got := ReciprocalRank([]rdf.TermID{9, 9, 1}, rel(1)); !almost(got, 1.0/3) {
		t.Fatalf("RR = %f", got)
	}
	if got := ReciprocalRank([]rdf.TermID{9}, rel(1)); got != 0 {
		t.Fatalf("RR without hit = %f", got)
	}
}

func TestMetricsAccumulateFinalize(t *testing.T) {
	var m Metrics
	m.Accumulate([]rdf.TermID{1}, rel(1))    // AP=1, P10=0.1, MRR=1
	m.Accumulate([]rdf.TermID{9, 1}, rel(1)) // AP=0.5, MRR=0.5
	f := m.Finalize()
	if f.Queries != 2 || !almost(f.MAP, 0.75) || !almost(f.MRR, 0.75) {
		t.Fatalf("finalized = %+v", f)
	}
	// Finalize of zero queries is a no-op.
	var z Metrics
	if got := z.Finalize(); got.Queries != 0 {
		t.Fatal("zero finalize changed state")
	}
}

func TestMetricBoundsProperty(t *testing.T) {
	// All metrics lie in [0,1] for arbitrary rankings/relevance sets.
	f := func(rankRaw, relRaw []uint8) bool {
		seen := map[rdf.TermID]bool{}
		var ranking []rdf.TermID
		for _, r := range rankRaw {
			id := rdf.TermID(r) + 1
			if !seen[id] {
				seen[id] = true
				ranking = append(ranking, id)
			}
		}
		relevant := map[rdf.TermID]bool{}
		for _, r := range relRaw {
			relevant[rdf.TermID(r)+1] = true
		}
		vals := []float64{
			AveragePrecision(ranking, relevant),
			PrecisionAt(ranking, relevant, 10),
			RecallAt(ranking, relevant, 50),
			NDCGAt(ranking, relevant, 10),
			ReciprocalRank(ranking, relevant),
		}
		for _, v := range vals {
			if v < 0 || v > 1+1e-12 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectRankingMaximizesAP(t *testing.T) {
	// AP of a ranking with all relevant items first is 1.
	ranking := []rdf.TermID{1, 2, 3, 4, 5}
	if got := AveragePrecision(ranking, rel(1, 2, 3)); !almost(got, 1) {
		t.Fatalf("perfect AP = %f", got)
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(s, 50); got != 5 {
		t.Fatalf("p50 = %f", got)
	}
	if got := Percentile(s, 95); got != 10 {
		t.Fatalf("p95 = %f", got)
	}
	if got := Percentile(s, 0); got != 1 {
		t.Fatalf("p0 = %f", got)
	}
	if got := Percentile(s, 100); got != 10 {
		t.Fatalf("p100 = %f", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty percentile did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestTableRender(t *testing.T) {
	tab := Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}, Notes: "n"}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.Render()
	for _, want := range []string{"== X: demo ==", "a", "bb", "333", "note: n"} {
		if !contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
