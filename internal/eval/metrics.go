// Package eval provides the evaluation harness for the PivotE
// reproduction: standard IR metrics, deterministic workload generators
// that derive ground truth from the synthetic knowledge graph, and the
// experiment drivers that regenerate every table and figure listed in
// DESIGN.md (T1, F1–F4, E5–E9, A1–A3).
package eval

import (
	"math"

	"pivote/internal/rdf"
)

// AveragePrecision computes AP of a ranking against a binary relevance
// set: the mean of precision@i over the ranks i that hold a relevant
// item, normalized by the total number of relevant items. Empty relevance
// sets yield 0.
func AveragePrecision(ranking []rdf.TermID, relevant map[rdf.TermID]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for i, e := range ranking {
		if relevant[e] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// PrecisionAt computes P@k. Rankings shorter than k are padded with
// misses (standard trec_eval behaviour).
func PrecisionAt(ranking []rdf.TermID, relevant map[rdf.TermID]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	for i, e := range ranking {
		if i >= k {
			break
		}
		if relevant[e] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAt computes R@k: the fraction of relevant items found in the top
// k.
func RecallAt(ranking []rdf.TermID, relevant map[rdf.TermID]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	for i, e := range ranking {
		if i >= k {
			break
		}
		if relevant[e] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// NDCGAt computes nDCG@k with binary gains.
func NDCGAt(ranking []rdf.TermID, relevant map[rdf.TermID]bool, k int) float64 {
	if len(relevant) == 0 || k <= 0 {
		return 0
	}
	dcg := 0.0
	for i, e := range ranking {
		if i >= k {
			break
		}
		if relevant[e] {
			dcg += 1 / math.Log2(float64(i)+2)
		}
	}
	ideal := 0.0
	n := len(relevant)
	if n > k {
		n = k
	}
	for i := 0; i < n; i++ {
		ideal += 1 / math.Log2(float64(i)+2)
	}
	if ideal == 0 {
		return 0
	}
	return dcg / ideal
}

// ReciprocalRank returns 1/rank of the first relevant item, 0 if none.
func ReciprocalRank(ranking []rdf.TermID, relevant map[rdf.TermID]bool) float64 {
	for i, e := range ranking {
		if relevant[e] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// Metrics aggregates per-query measurements into means.
type Metrics struct {
	MAP, P10, NDCG10, MRR, R50 float64
	Queries                    int
}

// Accumulate folds one query's ranking into the running sums.
func (m *Metrics) Accumulate(ranking []rdf.TermID, relevant map[rdf.TermID]bool) {
	m.MAP += AveragePrecision(ranking, relevant)
	m.P10 += PrecisionAt(ranking, relevant, 10)
	m.NDCG10 += NDCGAt(ranking, relevant, 10)
	m.MRR += ReciprocalRank(ranking, relevant)
	m.R50 += RecallAt(ranking, relevant, 50)
	m.Queries++
}

// Finalize divides the sums by the query count, returning means.
func (m Metrics) Finalize() Metrics {
	if m.Queries == 0 {
		return m
	}
	n := float64(m.Queries)
	return Metrics{
		MAP: m.MAP / n, P10: m.P10 / n, NDCG10: m.NDCG10 / n,
		MRR: m.MRR / n, R50: m.R50 / n, Queries: m.Queries,
	}
}

// Percentile returns the p-th percentile (0..100) of the sorted slice
// using nearest-rank; it panics on empty input.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("eval: percentile of empty slice")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
