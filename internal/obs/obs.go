// Package obs is PivotE's dependency-free observability layer: striped
// atomic counters and gauges, fixed-boundary log-scale latency
// histograms whose record path never allocates, a registry with a
// Prometheus text-exposition encoder and a JSON snapshot, a per-request
// stage Recorder threaded through context, and a lock-free slow-query
// ring buffer.
//
// Everything here is safe for the scatter loops: a histogram
// observation is two atomic adds on a cache-line-padded stripe chosen
// from the goroutine's stack address, so concurrent recorders on
// different Ps rarely contend on the same line. The package has no
// dependencies outside the standard library and no background
// goroutines; encoding walks the stripes at scrape time.
//
// Instrumentation call sites gate on On() before calling time.Now, so
// flipping SetEnabled(false) removes essentially the whole cost — the
// instrumented/uninstrumented benchmark pairs published as
// BENCH_obs.json measure exactly that delta.
package obs

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide kill switch. It defaults to on; the
// *Uninstrumented benchmark variants flip it off to measure the true
// overhead of the record paths.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// On reports whether instrumentation is enabled. Hot paths check this
// before calling time.Now — the disabled cost is one relaxed atomic
// load.
func On() bool { return enabled.Load() }

// SetEnabled flips the process-wide instrumentation switch and returns
// the previous value.
func SetEnabled(v bool) bool { return enabled.Swap(v) }

// start anchors Uptime. Set once at process init.
var start = time.Now()

// Uptime returns how long this process has been running.
func Uptime() time.Duration { return time.Since(start) }

var (
	buildOnce sync.Once
	goVersion string
	revision  string
)

// BuildInfo returns the Go toolchain version and the VCS revision the
// binary was built from (empty when the build carries no VCS stamp,
// e.g. `go test` binaries).
func BuildInfo() (goVer, rev string) {
	buildOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		goVersion = bi.GoVersion
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	})
	return goVersion, revision
}
