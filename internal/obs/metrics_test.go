package obs

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// naiveBucketOf is the executable spec: scan the boundaries linearly
// and return the first bucket whose inclusive upper bound holds v.
// Bucket b's bound is 2^b − 1 raw units; the last bucket is +Inf.
func naiveBucketOf(v uint64) int {
	for b := 0; b < NumBuckets-1; b++ {
		ub := uint64(1)<<uint(b) - 1
		if v <= ub {
			return b
		}
	}
	return NumBuckets - 1
}

func TestBucketOfMatchesNaive(t *testing.T) {
	// Exhaustive around every boundary, then random sweep.
	for b := 0; b < 64; b++ {
		edge := uint64(1) << uint(b)
		for _, v := range []uint64{edge - 1, edge, edge + 1} {
			if got, want := bucketOf(v), naiveBucketOf(v); got != want {
				t.Fatalf("bucketOf(%d) = %d, naive = %d", v, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		if got, want := bucketOf(v), naiveBucketOf(v); got != want {
			t.Fatalf("bucketOf(%d) = %d, naive = %d", v, got, want)
		}
	}
	if bucketOf(0) != 0 {
		t.Fatalf("bucketOf(0) = %d, want 0", bucketOf(0))
	}
	if bucketOf(math.MaxUint64) != NumBuckets-1 {
		t.Fatalf("bucketOf(max) = %d, want overflow bucket", bucketOf(math.MaxUint64))
	}
}

// TestBucketBoundsCumulative checks the exposition invariant: a value
// lands in bucket b exactly when upperBound(b-1) < v ≤ upperBound(b).
func TestBucketBoundsCumulative(t *testing.T) {
	h := newHistogram(UnitCount)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		v := rng.Uint64() >> uint(rng.Intn(64))
		b := bucketOf(v)
		if fb := float64(v); fb > h.upperBound(b) {
			t.Fatalf("v=%d in bucket %d but > upper bound %g", v, b, h.upperBound(b))
		}
		if b > 0 {
			if fb := float64(v); fb <= h.upperBound(b-1) {
				t.Fatalf("v=%d in bucket %d but ≤ previous bound %g", v, b, h.upperBound(b-1))
			}
		}
	}
	if !math.IsInf(h.upperBound(NumBuckets-1), 1) {
		t.Fatal("last bucket bound must be +Inf")
	}
}

func TestHistogramObserveSeconds(t *testing.T) {
	h := newHistogram(UnitSeconds)
	h.Observe(1500 * time.Microsecond) // 1500µs → bits.Len(1500)=11
	h.Observe(0)
	h.Observe(-time.Second) // clamps to 0
	counts, sum, total := h.snapshot()
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	if counts[0] != 2 {
		t.Fatalf("zero bucket = %d, want 2", counts[0])
	}
	if want := bits.Len64(1500); counts[want] != 1 {
		t.Fatalf("bucket %d = %d, want 1", want, counts[want])
	}
	if got, want := sum, 0.0015; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestCounterStripes(t *testing.T) {
	c := newCounter()
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestRecordPathZeroAlloc is the acceptance criterion: counter and
// histogram record paths must not allocate.
func TestRecordPathZeroAlloc(t *testing.T) {
	c := newCounter()
	h := newHistogram(UnitSeconds)
	vh := newHistogram(UnitCount)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(123 * time.Microsecond) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { vh.ObserveVal(17) }); n != 0 {
		t.Fatalf("Histogram.ObserveVal allocates %v/op", n)
	}
	g := newGauge()
	if n := testing.AllocsPerRun(1000, func() { g.Set(42); g.Inc(); g.Dec() }); n != 0 {
		t.Fatalf("Gauge ops allocate %v/op", n)
	}
	rec := new(Recorder)
	if n := testing.AllocsPerRun(1000, func() { rec.Add(StageSearch, time.Millisecond) }); n != 0 {
		t.Fatalf("Recorder.Add allocates %v/op", n)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := newHistogram(UnitCount)
	for v := uint64(1); v <= 1000; v++ {
		h.ObserveVal(v)
	}
	// Log buckets are coarse: accept a factor-of-two band.
	p50 := h.Quantile(0.50)
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %g, want within [250,1000]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 512 || p99 > 1024 {
		t.Fatalf("p99 = %g, want within [512,1024]", p99)
	}
	if q := newHistogram(UnitCount).Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("x_total", "help", L("k", "w"))
	if a == c {
		t.Fatal("different labels must return a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestRecorderContext(t *testing.T) {
	rec := new(Recorder)
	ctx := WithRecorder(testingContext(), rec)
	got := RecorderOf(ctx)
	if got != rec {
		t.Fatal("RecorderOf must return the attached recorder")
	}
	got.Add(StageExpand, 5*time.Millisecond)
	got.Add(StageExpand, 5*time.Millisecond)
	if rec.Get(StageExpand) != 10*time.Millisecond {
		t.Fatalf("stage accumulation = %v", rec.Get(StageExpand))
	}
	if RecorderOf(testingContext()) != nil {
		t.Fatal("bare context must have no recorder")
	}
	var nilRec *Recorder
	nilRec.Add(StageSearch, time.Second) // must not panic
	nilRec.SetOp("x")
	if nilRec.Get(StageSearch) != 0 || nilRec.Op() != "" {
		t.Fatal("nil recorder must be inert")
	}
}
