package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testingContext() context.Context { return context.Background() }

// TestPrometheusGolden pins the exposition format byte-for-byte: HELP
// and TYPE lines, label escaping and ordering, cumulative buckets with
// le boundaries, _sum/_count, family sorting.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pivote_test_ops_total", "Operations applied.", L("kind", "submit"))
	c.Add(7)
	r.Counter("pivote_test_ops_total", "Operations applied.", L("kind", "pivot")).Add(2)
	g := r.Gauge("pivote_test_generation", "Current generation.")
	g.Set(42)
	r.GaugeFunc("pivote_test_uptime_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.Histogram("pivote_test_latency_seconds", "Latency.", L("route", "/api/v1/ops"))
	h.Observe(0)
	h.Observe(1 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	h.Observe(100 * time.Microsecond)
	vh := r.ValueHistogram("pivote_test_batch_triples", "Batch size.")
	vh.ObserveVal(5)
	vh.ObserveVal(1000)
	esc := r.Counter("pivote_test_escapes_total", "Escaping.", L("path", "a\\b\"c\nd"))
	esc.Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestStatsJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(3)
	h := r.Histogram("b_seconds", "B.")
	h.Observe(10 * time.Millisecond)
	st := r.Stats()
	if len(st) != 2 {
		t.Fatalf("series = %d, want 2", len(st))
	}
	if st[0].Name != "a_total" || st[0].Value == nil || *st[0].Value != 3 {
		t.Fatalf("counter stats wrong: %+v", st[0])
	}
	if st[1].Name != "b_seconds" || st[1].Count == nil || *st[1].Count != 1 || st[1].P99 == nil {
		t.Fatalf("histogram stats wrong: %+v", st[1])
	}
	if _, err := json.Marshal(st); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "H.").Inc()
	slow := NewSlowLog(0)
	rec := new(Recorder)
	rec.Add(StageSearch, 2*time.Millisecond)
	slow.Record("/api/v1/ops", "submit", 200, 5*time.Millisecond, rec)

	w := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 || !bytes.Contains(w.Body.Bytes(), []byte("h_total 1")) {
		t.Fatalf("metrics: %d %q", w.Code, w.Body.String())
	}

	w = httptest.NewRecorder()
	StatsHandler(r).ServeHTTP(w, httptest.NewRequest("GET", "/api/v1/stats", nil))
	var dto statsDTO
	if err := json.Unmarshal(w.Body.Bytes(), &dto); err != nil {
		t.Fatal(err)
	}
	if dto.UptimeSeconds <= 0 || len(dto.Series) != 1 {
		t.Fatalf("stats dto: %+v", dto)
	}

	w = httptest.NewRecorder()
	SlowHandler(slow).ServeHTTP(w, httptest.NewRequest("GET", "/api/v1/debug/slow", nil))
	var sd slowDTO
	if err := json.Unmarshal(w.Body.Bytes(), &sd); err != nil {
		t.Fatal(err)
	}
	if len(sd.Entries) != 1 || sd.Entries[0].Op != "submit" || sd.Entries[0].Stages["search"] != 2 {
		t.Fatalf("slow dto: %+v", sd)
	}

	// threshold retune via query param
	w = httptest.NewRecorder()
	SlowHandler(slow).ServeHTTP(w, httptest.NewRequest("GET", "/api/v1/debug/slow?threshold=1s", nil))
	if slow.Threshold() != time.Second {
		t.Fatalf("threshold = %v, want 1s", slow.Threshold())
	}
	w = httptest.NewRecorder()
	SlowHandler(slow).ServeHTTP(w, httptest.NewRequest("GET", "/api/v1/debug/slow?threshold=bogus", nil))
	if w.Code != 400 {
		t.Fatalf("bad threshold must 400, got %d", w.Code)
	}
}

func TestInstrumentMiddleware(t *testing.T) {
	reg := NewRegistry()
	slow := NewSlowLog(0) // capture everything
	h := Instrument(reg, slow, "/api/v1/test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`pivote_http_request_seconds_count{route="/api/v1/test"} 1`,
		`pivote_http_requests_total{route="/api/v1/test",class="2xx"} 1`,
		"pivote_http_inflight 0",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
	if n := len(slow.Entries()); n != 1 {
		t.Fatalf("slow entries = %d, want 1", n)
	}
}
