package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// recPool recycles Recorders across requests so the middleware stays
// allocation-free on the recorder itself (the per-request
// context.WithValue and status wrapper are the unavoidable cost).
var recPool = sync.Pool{New: func() any { return new(Recorder) }}

// statusWriter captures the response status for the metrics and the
// slow log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

var classes = [...]string{"other", "2xx", "3xx", "4xx", "5xx"}

func classIdx(status int) int {
	if c := status / 100; c >= 2 && c <= 5 {
		return c - 1
	}
	return 0
}

// routeInstruments is the pre-registered set for one route: one
// latency histogram and one counter per status class, created at
// registration time so the request path only records.
type routeInstruments struct {
	seconds  *Histogram
	requests [len(classes)]*Counter
}

// Instrument wraps h with request metrics and stage tracing: a
// pivote_http_request_seconds{route} observation, a
// pivote_http_requests_total{route,class} increment, a pooled Recorder
// attached to the request context for engine stage timings, and a
// slow-log capture when the request exceeds slow's threshold. reg and
// slow are typically Default and SlowQueries.
func Instrument(reg *Registry, slow *SlowLog, route string, h http.Handler) http.Handler {
	ri := &routeInstruments{
		seconds: reg.Histogram("pivote_http_request_seconds",
			"HTTP request latency by route.", L("route", route)),
	}
	for i, cl := range classes {
		ri.requests[i] = reg.Counter("pivote_http_requests_total",
			"HTTP requests by route and status class.",
			L("route", route), L("class", cl))
	}
	inflight := reg.Gauge("pivote_http_inflight", "Requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !On() {
			h.ServeHTTP(w, r)
			return
		}
		inflight.Inc()
		t0 := time.Now()
		rec := recPool.Get().(*Recorder)
		rec.Reset()
		sw := &statusWriter{ResponseWriter: w}
		h.ServeHTTP(sw, r.WithContext(WithRecorder(r.Context(), rec)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		d := time.Since(t0)
		ri.seconds.Observe(d)
		ri.requests[classIdx(sw.status)].Inc()
		inflight.Dec()
		if slow != nil {
			slow.Record(route, rec.Op(), sw.status, d, rec)
		}
		recPool.Put(rec)
	})
}

// MetricsHandler serves reg in the Prometheus text exposition format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// statsDTO is the /api/v1/stats payload.
type statsDTO struct {
	UptimeSeconds float64       `json:"uptimeSeconds"`
	GoVersion     string        `json:"goVersion,omitempty"`
	Revision      string        `json:"revision,omitempty"`
	Series        []SeriesStats `json:"series"`
}

// StatsHandler serves the JSON digest of reg plus process identity.
func StatsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		goVer, rev := BuildInfo()
		dto := statsDTO{
			UptimeSeconds: Uptime().Seconds(),
			GoVersion:     goVer,
			Revision:      rev,
			Series:        reg.Stats(),
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(dto)
	})
}

// slowDTO is the /api/v1/debug/slow payload.
type slowDTO struct {
	ThresholdMs float64     `json:"thresholdMs"`
	Entries     []SlowEntry `json:"entries"`
}

// SlowHandler serves the slow-request ring, newest first. A
// ?threshold=<duration> query (e.g. 100ms, 1s) retunes the capture
// threshold on the fly.
func SlowHandler(l *SlowLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if v := r.URL.Query().Get("threshold"); v != "" {
			if d, err := time.ParseDuration(v); err == nil {
				l.SetThreshold(d)
			} else {
				http.Error(w, "bad threshold: "+strconv.Quote(v), http.StatusBadRequest)
				return
			}
		}
		dto := slowDTO{
			ThresholdMs: float64(l.Threshold()) / 1e6,
			Entries:     l.Entries(),
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(dto)
	})
}

// MetricsRoutes mounts the three observability endpoints on mux:
// /metrics, /api/v1/stats, /api/v1/debug/slow. Every process shape
// (single server, shard node, router) calls this so the scrape surface
// is uniform.
func MetricsRoutes(mux *http.ServeMux, reg *Registry, slow *SlowLog) {
	mux.Handle("GET /metrics", MetricsHandler(reg))
	mux.Handle("GET /api/v1/stats", StatsHandler(reg))
	mux.Handle("GET /api/v1/debug/slow", SlowHandler(slow))
}

// IsMetricsPath reports whether path is one of the observability
// endpoints. Session-minting front doors use this to serve scrapes
// without creating sessions (a Prometheus scraper must not churn the
// session LRU).
func IsMetricsPath(path string) bool {
	switch path {
	case "/metrics", "/api/v1/stats", "/api/v1/debug/slow":
		return true
	}
	return false
}
