package obs

import (
	"sync/atomic"
	"time"
)

// slowLogSize is the ring capacity. Power of two so the slot index is
// a mask.
const slowLogSize = 256

// SlowEntry is one captured slow request, rendered for the
// /api/v1/debug/slow surface. Stage times are milliseconds; stages the
// request never entered are omitted.
type SlowEntry struct {
	UnixMs  int64              `json:"unixMs"`
	Route   string             `json:"route"`
	Op      string             `json:"op,omitempty"`
	Status  int                `json:"status"`
	TotalMs float64            `json:"totalMs"`
	Stages  map[string]float64 `json:"stagesMs,omitempty"`
}

// slowRec is the immutable captured payload. Writers publish a fresh
// one with an atomic pointer store; readers load and render. Stage
// times stay as the raw nanosecond array — the JSON map is built only
// at serve time.
type slowRec struct {
	when   int64 // unix nanos
	status int
	total  int64
	route  string
	op     string
	stages [NumStages]int64
}

// SlowLog is a lock-free ring of the most recent requests that
// exceeded the threshold. The request path takes no lock: a writer
// claims a slot with one atomic add and publishes an immutable record
// with one atomic store. The single allocation happens only for
// requests that are already slow, never on the hot path.
type SlowLog struct {
	threshold atomic.Int64
	next      atomic.Uint64
	slots     [slowLogSize]atomic.Pointer[slowRec]
}

// NewSlowLog returns a ring that captures requests slower than
// threshold. A zero threshold captures everything; a negative one
// disables capture.
func NewSlowLog(threshold time.Duration) *SlowLog {
	l := &SlowLog{}
	l.threshold.Store(int64(threshold))
	return l
}

// DefaultSlowThreshold is the capture threshold processes start with;
// cmd/pivote's -slow-query flag overrides it.
const DefaultSlowThreshold = 250 * time.Millisecond

// SlowQueries is the process-wide slow-request ring served at
// /api/v1/debug/slow.
var SlowQueries = NewSlowLog(DefaultSlowThreshold)

// Threshold returns the current capture threshold.
func (l *SlowLog) Threshold() time.Duration { return time.Duration(l.threshold.Load()) }

// SetThreshold replaces the capture threshold.
func (l *SlowLog) SetThreshold(d time.Duration) { l.threshold.Store(int64(d)) }

// Record captures one request if total exceeds the threshold. rec may
// be nil (no stage breakdown). Safe for concurrent writers: each
// claims a distinct slot.
func (l *SlowLog) Record(route, op string, status int, total time.Duration, rec *Recorder) {
	th := l.threshold.Load()
	if th < 0 || total < time.Duration(th) {
		return
	}
	r := &slowRec{
		when:   time.Now().UnixNano(),
		status: status,
		total:  int64(total),
		route:  route,
		op:     op,
	}
	if rec != nil {
		r.stages = rec.stages
	}
	i := (l.next.Add(1) - 1) & (slowLogSize - 1)
	l.slots[i].Store(r)
}

// Entries returns the captured requests, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	head := l.next.Load()
	n := head
	if n > slowLogSize {
		n = slowLogSize
	}
	out := make([]SlowEntry, 0, n)
	for k := uint64(0); k < n; k++ {
		i := (head - 1 - k) & (slowLogSize - 1)
		r := l.slots[i].Load()
		if r == nil {
			continue
		}
		e := SlowEntry{
			UnixMs:  r.when / int64(time.Millisecond),
			Route:   r.route,
			Op:      r.op,
			Status:  r.status,
			TotalMs: float64(r.total) / 1e6,
		}
		for st := Stage(0); st < NumStages; st++ {
			if v := r.stages[st]; v > 0 {
				if e.Stages == nil {
					e.Stages = make(map[string]float64, int(NumStages))
				}
				e.Stages[st.String()] = float64(v) / 1e6
			}
		}
		out = append(out, e)
	}
	return out
}
