package obs

// SeriesStats is one series in the JSON stats surface — the same data
// /metrics exposes, pre-digested (quantiles instead of buckets) for
// humans and dashboards that do not speak PromQL.
type SeriesStats struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Type   string            `json:"type"`
	Value  *float64          `json:"value,omitempty"` // counter / gauge
	Count  *uint64           `json:"count,omitempty"` // histogram
	Sum    *float64          `json:"sum,omitempty"`
	P50    *float64          `json:"p50,omitempty"`
	P90    *float64          `json:"p90,omitempty"`
	P99    *float64          `json:"p99,omitempty"`
}

// Stats digests every registered series. Histogram quantiles are
// bucket-interpolated estimates (log₂ boundaries), good to roughly a
// factor of two — enough to spot a p99 cliff.
func (r *Registry) Stats() []SeriesStats {
	var out []SeriesStats
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.series {
			st := SeriesStats{Name: f.name, Type: f.kind}
			if len(s.labels) > 0 {
				st.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					st.Labels[l.Key] = l.Value
				}
			}
			switch {
			case s.c != nil:
				v := float64(s.c.Value())
				st.Value = &v
			case s.g != nil:
				v := float64(s.g.Value())
				st.Value = &v
			case s.gf != nil:
				v := s.gf()
				st.Value = &v
			case s.h != nil:
				_, sum, total := s.h.snapshot()
				p50, p90, p99 := s.h.Quantile(0.50), s.h.Quantile(0.90), s.h.Quantile(0.99)
				st.Count, st.Sum, st.P50, st.P90, st.P99 = &total, &sum, &p50, &p90, &p99
			}
			out = append(out, st)
		}
	}
	return out
}
