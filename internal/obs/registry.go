package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name=value pair on a series.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// series is one (name, labels) instrument plus its kind-specific
// payload. Exactly one of c/g/gf/h is set.
type series struct {
	labels   []Label
	labelKey string // canonical "k1=v1,k2=v2" sort key
	c        *Counter
	g        *Gauge
	gf       func() float64
	h        *Histogram
}

type family struct {
	name   string
	help   string
	kind   string // "counter" | "gauge" | "histogram"
	series []*series
}

// Registry holds families of metrics and renders them. Registration is
// get-or-create: asking twice for the same (name, labels) returns the
// same instrument, so test fixtures that build many Stores or Routers
// per process share series instead of panicking. Asking for an
// existing name with a different kind panics — that is a programming
// error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// Default is the process-wide registry that the instrumented packages
// register into and that /metrics serves.
var Default = NewRegistry()

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup finds or creates the series for (name, labels), verifying the
// family kind. create is called with the registry lock held.
func (r *Registry) lookup(name, help, kind string, labels []Label, create func(*series)) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	for _, s := range f.series {
		if s.labelKey == key {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...), labelKey: key}
	create(s)
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labelKey < f.series[j].labelKey })
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, "counter", labels, func(s *series) { s.c = newCounter() })
	if s.c == nil {
		panic(fmt.Sprintf("obs: series %q{%s} is not a counter", name, labelKey(labels)))
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, "gauge", labels, func(s *series) { s.g = newGauge() })
	if s.g == nil {
		panic(fmt.Sprintf("obs: series %q{%s} is not a settable gauge", name, labelKey(labels)))
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Re-registering the same (name, labels) replaces the function — the
// newest owner wins, which is what repeated fixture construction
// wants.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, "gauge", labels, func(s *series) {})
	r.mu.Lock()
	s.gf = fn
	s.g = nil
	r.mu.Unlock()
}

// Histogram returns the duration histogram for (name, labels),
// creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	return r.histogram(name, help, UnitSeconds, labels)
}

// ValueHistogram returns a unit-less histogram (batch sizes, fan-out
// widths) for (name, labels).
func (r *Registry) ValueHistogram(name, help string, labels ...Label) *Histogram {
	return r.histogram(name, help, UnitCount, labels)
}

func (r *Registry) histogram(name, help string, u Unit, labels []Label) *Histogram {
	s := r.lookup(name, help, "histogram", labels, func(s *series) { s.h = newHistogram(u) })
	if s.h == nil || s.h.unit != u {
		panic(fmt.Sprintf("obs: series %q{%s} histogram unit mismatch", name, labelKey(labels)))
	}
	return s.h
}

// snapshotFamilies copies the family list under the lock so encoding
// (which may call GaugeFuncs that take other locks) runs without it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		ff := &family{name: f.name, help: f.help, kind: f.kind,
			series: append([]*series(nil), f.series...)}
		fams = append(fams, ff)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
