package obs

import (
	"context"
	"time"
)

// Stage names one timed section of a request's life. The engine
// records the four paper stages; the router adds its scatter/merge
// span when a request fans out.
type Stage uint8

const (
	// StageSearch is keyword search over the inverted index.
	StageSearch Stage = iota
	// StageExpand is candidate expansion: extent scatter + r(e,Q).
	StageExpand
	// StageRank is semantic-feature ranking (r(π,Q) over Φ(Q)).
	StageRank
	// StageHeatmap is heat-map matrix assembly.
	StageHeatmap
	// StageScatter is the router's shard/replica fan-out + merge.
	StageScatter
	// NumStages bounds the per-recorder stage array.
	NumStages
)

var stageNames = [NumStages]string{"search", "expand", "rank", "heatmap", "scatter"}

// String returns the stage's metric label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Recorder accumulates per-stage wall time for one request. It is a
// fixed array of nanosecond accumulators — no map, no allocation after
// construction — and is pooled by the HTTP middleware. A Recorder is
// used by one request at a time; stages within a request may run
// sequentially from different goroutines, but never concurrently, so
// plain int64s suffice.
type Recorder struct {
	op     string
	stages [NumStages]int64
}

// Reset clears the recorder for reuse.
func (r *Recorder) Reset() {
	r.op = ""
	for i := range r.stages {
		r.stages[i] = 0
	}
}

// SetOp tags the recorder with the op kind being applied ("submit",
// "pivot", ...) for the slow-query log.
func (r *Recorder) SetOp(op string) {
	if r != nil {
		r.op = op
	}
}

// Op returns the tag set by SetOp.
func (r *Recorder) Op() string {
	if r == nil {
		return ""
	}
	return r.op
}

// Add accumulates d into stage s. Nil recorders are inert, so call
// sites need no guard.
func (r *Recorder) Add(s Stage, d time.Duration) {
	if r != nil && s < NumStages {
		r.stages[s] += int64(d)
	}
}

// Get returns the accumulated time for stage s.
func (r *Recorder) Get(s Stage) time.Duration {
	if r == nil || s >= NumStages {
		return 0
	}
	return time.Duration(r.stages[s])
}

type recorderKey struct{}

// WithRecorder attaches rec to ctx so engine internals can find it.
func WithRecorder(ctx context.Context, rec *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderOf returns the recorder attached to ctx, or nil.
func RecorderOf(ctx context.Context) *Recorder {
	rec, _ := ctx.Value(recorderKey{}).(*Recorder)
	return rec
}
