package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(100 * time.Millisecond)
	l.Record("/a", "", 200, 50*time.Millisecond, nil)
	if len(l.Entries()) != 0 {
		t.Fatal("fast request must not be captured")
	}
	l.Record("/a", "submit", 200, 150*time.Millisecond, nil)
	es := l.Entries()
	if len(es) != 1 || es[0].Route != "/a" || es[0].TotalMs != 150 {
		t.Fatalf("entries = %+v", es)
	}
	l.SetThreshold(-1)
	l.Record("/a", "", 200, time.Hour, nil)
	if len(l.Entries()) != 1 {
		t.Fatal("negative threshold must disable capture")
	}
}

func TestSlowLogWrapAndOrder(t *testing.T) {
	l := NewSlowLog(0)
	for i := 0; i < slowLogSize+10; i++ {
		l.Record(fmt.Sprintf("/r%d", i), "", 200, time.Duration(i+1)*time.Millisecond, nil)
	}
	es := l.Entries()
	if len(es) != slowLogSize {
		t.Fatalf("entries = %d, want %d", len(es), slowLogSize)
	}
	// Newest first: the last write was /r<size+9>.
	if want := fmt.Sprintf("/r%d", slowLogSize+9); es[0].Route != want {
		t.Fatalf("newest = %q, want %q", es[0].Route, want)
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].TotalMs <= es[i].TotalMs {
			t.Fatalf("order broken at %d: %g then %g", i, es[i-1].TotalMs, es[i].TotalMs)
		}
	}
}

// TestSlowLogConcurrent hammers writers against readers; run with
// -race this doubles as the lock-freedom proof.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := new(Recorder)
			rec.Add(StageSearch, time.Millisecond)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				l.Record(fmt.Sprintf("/w%d", w), "submit", 200, time.Duration(i)*time.Microsecond, rec)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, e := range l.Entries() {
					if e.Route == "" {
						t.Error("torn entry: empty route")
						return
					}
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
