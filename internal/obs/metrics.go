package obs

import (
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// nStripes is the number of atomic stripes per metric: the smallest
// power of two ≥ GOMAXPROCS, clamped to [1, 64]. Go does not expose a
// CPU index, so stripeIdx hashes a stack address instead — goroutines
// running on different Ps live on different stacks, which spreads them
// across stripes well enough to keep cache lines from ping-ponging in
// the scatter loops.
var (
	nStripes   = stripeCount()
	stripeMask = uint64(nStripes - 1)
)

func stripeCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// stripeIdx picks a stripe from the address of a stack variable via a
// Fibonacci multiply-shift. The variable never escapes (only its
// uintptr is taken), so this is allocation-free.
func stripeIdx() uint64 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) * 0x9E3779B97F4A7C15
	return (h >> 32) & stripeMask
}

// pad64 separates adjacent stripes so two stripes never share a cache
// line (64B lines; 128B on some parts — one line of slack is the usual
// compromise).
type pad64 [56]byte

type counterStripe struct {
	v atomic.Uint64
	_ pad64
}

// Counter is a monotonically increasing uint64 spread over stripes.
// Inc/Add never allocate and scale with concurrent writers.
type Counter struct {
	stripes []counterStripe
}

func newCounter() *Counter { return &Counter{stripes: make([]counterStripe, nStripes)} }

// Inc adds one.
func (c *Counter) Inc() { c.stripes[stripeIdx()].v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.stripes[stripeIdx()].v.Add(n) }

// Value sums the stripes. The result is a consistent lower bound, not
// a linearizable snapshot — fine for monitoring.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

// Gauge is a settable instantaneous value. Writes are rare (publish a
// generation, enter/leave a request), so it is a single atomic rather
// than stripes.
type Gauge struct {
	v atomic.Int64
}

func newGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NumBuckets is the number of histogram buckets. Bucket 0 holds value
// 0; bucket b (1 ≤ b < NumBuckets-1) holds values v with
// bits.Len64(v) == b, i.e. v ∈ [2^(b-1), 2^b − 1]; the last bucket is
// the +Inf overflow. For duration histograms values are microseconds,
// so the finite range spans 1µs … 2^30−1 µs ≈ 17.9 min — generous for
// request latencies and compaction pauses alike.
const NumBuckets = 32

// bucketOf returns the bucket index for a raw value.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Unit tells the encoder how to scale a histogram's recorded values.
type Unit uint8

const (
	// UnitSeconds histograms record time.Durations (stored as
	// nanoseconds, bucketed by microsecond magnitude, exposed in
	// seconds).
	UnitSeconds Unit = iota
	// UnitCount histograms record raw quantities (batch sizes,
	// fan-out widths) with unit-less boundaries.
	UnitCount
)

type histStripe struct {
	counts [NumBuckets]atomic.Uint64
	sum    atomic.Uint64 // ns for UnitSeconds, raw units for UnitCount
	_      pad64
}

// Histogram is a fixed-boundary log₂ latency/size histogram. Observe
// is two atomic adds on one stripe: no locks, no allocation, no
// boundary search.
type Histogram struct {
	unit    Unit
	stripes []histStripe
}

func newHistogram(u Unit) *Histogram {
	return &Histogram{unit: u, stripes: make([]histStripe, nStripes)}
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	var ns uint64
	if d > 0 {
		ns = uint64(d)
	}
	s := &h.stripes[stripeIdx()]
	s.counts[bucketOf(ns/1000)].Add(1)
	s.sum.Add(ns)
}

// ObserveVal records one raw value into a UnitCount histogram.
func (h *Histogram) ObserveVal(v uint64) {
	s := &h.stripes[stripeIdx()]
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(v)
}

// Count reports the total number of observations so far.
func (h *Histogram) Count() uint64 {
	_, _, total := h.snapshot()
	return total
}

// snapshot sums the stripes. counts are per-bucket (not cumulative);
// sum is scaled to the exposition unit (seconds or raw).
func (h *Histogram) snapshot() (counts [NumBuckets]uint64, sum float64, total uint64) {
	var rawSum uint64
	for i := range h.stripes {
		s := &h.stripes[i]
		for b := 0; b < NumBuckets; b++ {
			c := s.counts[b].Load()
			counts[b] += c
			total += c
		}
		rawSum += s.sum.Load()
	}
	if h.unit == UnitSeconds {
		sum = float64(rawSum) / 1e9
	} else {
		sum = float64(rawSum)
	}
	return counts, sum, total
}

// upperBound returns the inclusive upper boundary of bucket b in the
// exposition unit: (2^b − 1) µs for durations, (2^b − 1) raw units for
// counts, +Inf for the last bucket.
func (h *Histogram) upperBound(b int) float64 {
	if b >= NumBuckets-1 {
		return math.Inf(1)
	}
	u := float64(uint64(1)<<uint(b) - 1)
	if h.unit == UnitSeconds {
		return u / 1e6
	}
	return u
}

// Quantile estimates quantile q (0 < q ≤ 1) from a bucket snapshot by
// linear interpolation inside the winning bucket. Used only by the
// JSON stats surface; Prometheus consumers compute their own from the
// cumulative buckets.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for b := 0; b < NumBuckets; b++ {
		c := float64(counts[b])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := 0.0
			if b > 0 {
				lo = float64(uint64(1) << uint(b-1))
			}
			hi := float64(uint64(1)<<uint(b)) - 1
			if b == NumBuckets-1 {
				hi = lo * 2 // open-ended: fake a width
			}
			frac := (rank - cum) / c
			v := lo + (hi-lo)*frac
			if h.unit == UnitSeconds {
				return v / 1e6
			}
			return v
		}
		cum += c
	}
	return h.upperBound(NumBuckets - 2)
}
