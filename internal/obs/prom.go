package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP/# TYPE pair per
// family, series sorted by label key, histograms as cumulative
// _bucket{le=...} series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind)
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch {
			case s.c != nil:
				writeName(bw, f.name, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(s.c.Value(), 10))
				bw.WriteByte('\n')
			case s.g != nil:
				writeName(bw, f.name, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(s.g.Value(), 10))
				bw.WriteByte('\n')
			case s.gf != nil:
				writeName(bw, f.name, s.labels, "")
				bw.WriteByte(' ')
				bw.WriteString(formatFloat(s.gf()))
				bw.WriteByte('\n')
			case s.h != nil:
				writeHistogram(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, name string, s *series) {
	counts, sum, total := s.h.snapshot()
	var cum uint64
	for b := 0; b < NumBuckets; b++ {
		cum += counts[b]
		// Buckets are cumulative, so interior empty ones carry no
		// information: emit a boundary only where the count steps
		// (this bucket or its predecessor is non-empty) plus the
		// final +Inf.
		if b < NumBuckets-1 && counts[b] == 0 && (b == 0 || counts[b-1] == 0) {
			continue
		}
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, s.labels, leString(s.h, b))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, s.labels, "")
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(sum))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, s.labels, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(total, 10))
	bw.WriteByte('\n')
}

func leString(h *Histogram, b int) string {
	ub := h.upperBound(b)
	if math.IsInf(ub, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(ub, 'g', -1, 64)
}

func writeName(bw *bufio.Writer, name string, labels []Label, le string) {
	bw.WriteString(name)
	writeLabels(bw, labels, le)
}

// writeLabels emits {k="v",...} with the optional le boundary
// appended. Values are escaped per the exposition format.
func writeLabels(bw *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(l.Key)
		bw.WriteString(`="`)
		escapeLabel(bw, l.Value)
		bw.WriteByte('"')
	}
	if le != "" {
		if !first {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

func escapeLabel(bw *bufio.Writer, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '"':
			bw.WriteString(`\"`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
