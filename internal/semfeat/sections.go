package semfeat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/snap"
)

// SectionCatalog holds the frozen feature catalog: the dense feature
// table, the label blob, and every CSR table of the ranking model
// (extents, adjacency, category runs, back-off rows).
const SectionCatalog = "semfeat.catalog"

// featureWire is the on-disk feature size: u32 anchor, u32 pred, u8
// dir, 3 bytes of zero padding — identical to the in-memory layout of
// Feature, so reads alias the mapping on little-endian hosts.
const featureWire = 12

// AppendSections writes the catalog section. Features are encoded
// explicitly so struct padding is deterministic on disk.
func (c *Catalog) AppendSections(w *snap.Writer) error {
	w.Begin(SectionCatalog)
	w.Records(len(c.features), featureWire, func(i int, dst []byte) {
		binary.LittleEndian.PutUint32(dst, uint32(c.features[i].Anchor))
		binary.LittleEndian.PutUint32(dst[4:], uint32(c.features[i].Pred))
		dst[8] = byte(c.features[i].Dir)
	})
	w.U32s(c.labelOff)
	w.Bytes(c.labelBlob)
	w.U32s(c.anchorOff)
	w.U32s(c.extOff)
	snap.PutU32Slice(w, c.extents)
	w.U32s(c.adjOff)
	snap.PutU32Slice(w, c.adj)
	w.U32s(c.catOff)
	snap.PutU32Slice(w, c.cats)
	w.U32s(c.catIdx)
	w.U32s(c.cpOff)
	snap.PutU32Slice(w, c.cpFeat)
	w.F64s(c.cpProb)
	return nil
}

// OpenCatalogSections reconstructs the catalog over an opened graph.
// Every array aliases the mapping on little-endian hosts. Validation
// pins the CSR invariants the ranking hot paths index by, so a
// checksum-valid but malformed file fails here with a typed error.
func OpenCatalogSections(m *snap.Mapping, g *kg.Graph) (*Catalog, error) {
	cur, err := m.Section(SectionCatalog)
	if err != nil {
		return nil, err
	}
	c := &Catalog{g: g}
	c.features = readFeatures(cur)
	c.labelOff = cur.U32s()
	c.labelBlob = cur.Bytes()
	c.anchorOff = cur.U32s()
	c.extOff = cur.U32s()
	c.extents = snap.U32Slice[rdf.TermID](cur)
	c.adjOff = cur.U32s()
	c.adj = snap.U32Slice[FeatureID](cur)
	c.catOff = cur.U32s()
	c.cats = snap.U32Slice[rdf.TermID](cur)
	c.catIdx = cur.U32s()
	c.cpOff = cur.U32s()
	c.cpFeat = snap.U32Slice[FeatureID](cur)
	c.cpProb = cur.F64s()
	if err := cur.Err(); err != nil {
		return nil, err
	}

	st := g.Store()
	nodes := int(st.MaxTermID()) + 1
	bound := rdf.TermID(st.Dict().Len()) + 1
	nFeat := len(c.features)
	for i, f := range c.features {
		if f.Anchor == rdf.NoTerm || f.Anchor >= bound ||
			f.Pred == rdf.NoTerm || f.Pred >= bound || f.Dir > Forward {
			return nil, corruptCatalog("feature %d malformed", i)
		}
	}
	if err := checkCSR("labels", c.labelOff, nFeat+1, len(c.labelBlob)); err != nil {
		return nil, err
	}
	if err := checkCSR("anchorOff", c.anchorOff, nodes+2, nFeat); err != nil {
		return nil, err
	}
	if err := checkCSR("extents", c.extOff, nFeat+1, len(c.extents)); err != nil {
		return nil, err
	}
	if err := checkCSR("adjacency", c.adjOff, nodes+2, len(c.adj)); err != nil {
		return nil, err
	}
	if err := checkCSR("categories", c.catOff, nodes+2, len(c.cats)); err != nil {
		return nil, err
	}
	for i, e := range c.extents {
		if e == rdf.NoTerm || e >= bound {
			return nil, corruptCatalog("extent entry %d outside dictionary", i)
		}
	}
	for i, fid := range c.adj {
		if int(fid) >= nFeat {
			return nil, corruptCatalog("adjacency entry %d names feature %d of %d", i, fid, nFeat)
		}
	}
	for i, cat := range c.cats {
		if cat == rdf.NoTerm || cat >= bound {
			return nil, corruptCatalog("category run entry %d outside dictionary", i)
		}
	}
	nCats := len(c.cpOff) - 1
	if nCats < 0 {
		return nil, corruptCatalog("empty back-off offset array")
	}
	if len(c.catIdx) != nodes+1 {
		return nil, corruptCatalog("catIdx sized %d, want %d", len(c.catIdx), nodes+1)
	}
	for i, ci := range c.catIdx {
		if ci != noCat && int(ci) >= nCats {
			return nil, corruptCatalog("catIdx[%d] names category row %d of %d", i, ci, nCats)
		}
	}
	if err := checkCSR("back-off rows", c.cpOff, nCats+1, len(c.cpFeat)); err != nil {
		return nil, err
	}
	if len(c.cpProb) != len(c.cpFeat) {
		return nil, corruptCatalog("%d back-off probs for %d features", len(c.cpProb), len(c.cpFeat))
	}
	for i, fid := range c.cpFeat {
		if int(fid) >= nFeat {
			return nil, corruptCatalog("back-off row entry %d names feature %d of %d", i, fid, nFeat)
		}
	}
	return c, nil
}

func corruptCatalog(format string, args ...any) error {
	return errors.Join(snap.ErrCorrupt, fmt.Errorf("semfeat: snapshot catalog: "+format, args...))
}

// checkCSR validates an offset array: expected length, monotone, first
// element 0, last element spanning exactly the payload.
func checkCSR(what string, off []uint32, wantLen, payload int) error {
	if len(off) != wantLen {
		return corruptCatalog("%s offsets sized %d, want %d", what, len(off), wantLen)
	}
	if off[0] != 0 || off[len(off)-1] != uint32(payload) {
		return corruptCatalog("%s offsets do not span %d entries", what, payload)
	}
	prev := uint32(0)
	for _, o := range off {
		if o < prev {
			return corruptCatalog("%s offsets not monotone", what)
		}
		prev = o
	}
	return nil
}

// readFeatures aliases the feature table when the in-memory layout
// matches the wire layout and decodes it otherwise.
func readFeatures(c *snap.Cursor) []Feature {
	b, n := c.RecordBytes(featureWire)
	if n == 0 {
		return nil
	}
	if snap.HostLittleEndian() && unsafe.Sizeof(Feature{}) == featureWire {
		return unsafe.Slice((*Feature)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]Feature, n)
	for i := range out {
		out[i].Anchor = rdf.TermID(binary.LittleEndian.Uint32(b[featureWire*i:]))
		out[i].Pred = rdf.TermID(binary.LittleEndian.Uint32(b[featureWire*i+4:]))
		out[i].Dir = Dir(b[featureWire*i+8])
	}
	return out
}
