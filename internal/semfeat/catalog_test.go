package semfeat

import (
	"testing"

	"pivote/internal/kg"
	"pivote/internal/kgtest"
	"pivote/internal/rdf"
	"pivote/internal/synth"
)

// catalogTestGraphs returns the graphs the property tests sweep: the
// handcrafted fixture and a synthetic graph big enough to have multi-run
// anchors, shared predicates in both directions and non-trivial category
// overlap.
func catalogTestGraphs(t *testing.T) []*kg.Graph {
	t.Helper()
	return []*kg.Graph{kgtest.Build().Graph, synth.Generate(synth.Scaled(80)).Graph}
}

// TestCatalogFeatureTable: the dense feature table is sorted by
// (Anchor, Pred, Dir), Lookup round-trips every ID, off-catalog probes
// miss, and labels match the reference renderer.
func TestCatalogFeatureTable(t *testing.T) {
	for _, g := range catalogTestGraphs(t) {
		c := NewCatalog(g)
		if c.NumFeatures() == 0 {
			t.Fatal("catalog is empty")
		}
		prev := Feature{}
		for id := 0; id < c.NumFeatures(); id++ {
			f := c.FeatureAt(FeatureID(id))
			if id > 0 && !featureLess(prev, f) {
				t.Fatalf("feature table not strictly ascending at %d: %+v !< %+v", id, prev, f)
			}
			prev = f
			if got := c.Lookup(f); got != FeatureID(id) {
				t.Fatalf("Lookup(FeatureAt(%d)) = %d", id, got)
			}
			if !g.IsEntity(f.Anchor) {
				t.Fatalf("feature %d has non-entity anchor %d", id, f.Anchor)
			}
			if g.Voc().IsMeta(f.Pred) {
				t.Fatalf("feature %d has metadata predicate %d", id, f.Pred)
			}
			if want := Label(g, f); c.LabelOf(FeatureID(id)) != want {
				t.Fatalf("label of %d = %q, want %q", id, c.LabelOf(FeatureID(id)), want)
			}
		}
		// Misses: unknown anchor/pred, out-of-range anchor.
		if got := c.Lookup(Feature{Anchor: prev.Anchor, Pred: g.Voc().Type, Dir: Backward}); got != NoFeature {
			t.Fatalf("meta-predicate lookup hit %d", got)
		}
		if got := c.Lookup(Feature{Anchor: rdf.TermID(1 << 25), Pred: prev.Pred}); got != NoFeature {
			t.Fatalf("out-of-range lookup hit %d", got)
		}
	}
}

func featureLess(a, b Feature) bool {
	if a.Anchor != b.Anchor {
		return a.Anchor < b.Anchor
	}
	if a.Pred != b.Pred {
		return a.Pred < b.Pred
	}
	return a.Dir < b.Dir
}

// TestCatalogExtentsMatchReference: every feature's frozen extent equals
// the lazily-computed reference, and ExtentSize agrees.
func TestCatalogExtentsMatchReference(t *testing.T) {
	for _, g := range catalogTestGraphs(t) {
		c := NewCatalog(g)
		ref := NewFeatureCache(g) // map-backed reference, no catalog
		for id := 0; id < c.NumFeatures(); id++ {
			f := c.FeatureAt(FeatureID(id))
			got := c.Extent(FeatureID(id))
			want := ref.Extent(f)
			if !equalTermIDs(got, want) {
				t.Fatalf("extent of %+v = %v, want %v", f, got, want)
			}
			if c.ExtentSize(FeatureID(id)) != len(want) {
				t.Fatalf("extent size of %+v = %d, want %d", f, c.ExtentSize(FeatureID(id)), len(want))
			}
		}
	}
}

// TestCatalogAdjacencyMatchesReference: FeaturesHeldBy(e) is exactly the
// deduplicated feature enumeration of the naive candidate generator, for
// every node of the graph (entities and non-entities alike).
func TestCatalogAdjacencyMatchesReference(t *testing.T) {
	for _, g := range catalogTestGraphs(t) {
		c := NewCatalog(g)
		en := NewEngine(g) // naive enumeration
		maxID := int(g.Store().MaxTermID())
		for e := 0; e <= maxID; e++ {
			want := sortDedupFeatures(en.FeaturesOf(rdf.TermID(e)))
			got := c.FeaturesHeldBy(rdf.TermID(e))
			if len(got) != len(want) {
				t.Fatalf("node %d holds %d catalog features, want %d", e, len(got), len(want))
			}
			for i, fid := range got {
				if c.FeatureAt(fid) != want[i] {
					t.Fatalf("node %d feature %d = %+v, want %+v", e, i, c.FeatureAt(fid), want[i])
				}
			}
		}
	}
}

// TestCatalogCategoriesMatchReference: the frozen most-specific-first
// category runs and the per-(feature, category) back-off probabilities
// equal the map-backed reference over the full cross product.
func TestCatalogCategoriesMatchReference(t *testing.T) {
	for _, g := range catalogTestGraphs(t) {
		c := NewCatalog(g)
		ref := NewFeatureCache(g)
		maxID := int(g.Store().MaxTermID())
		for e := 0; e <= maxID; e++ {
			got := c.CategoriesBySize(rdf.TermID(e))
			want := ref.CategoriesBySize(rdf.TermID(e))
			if !equalTermIDs(got, want) {
				t.Fatalf("categories of %d = %v, want %v", e, got, want)
			}
		}
		// Cross product, feature-sampled on big graphs to bound runtime.
		cats := append([]rdf.TermID{rdf.TermID(1 << 25)}, g.Categories()...)
		stride := 1
		if c.NumFeatures() > 300 {
			stride = c.NumFeatures() / 300
		}
		for id := 0; id < c.NumFeatures(); id += stride {
			f := c.FeatureAt(FeatureID(id))
			for _, cat := range cats {
				got := c.ProbGivenCategory(FeatureID(id), cat)
				want := ref.ProbGivenCategory(f, cat)
				if got != want {
					t.Fatalf("p(%+v|%d) = %v, want %v", f, cat, got, want)
				}
			}
		}
	}
}

// TestCatalogCacheServesCatalog: a catalog-backed cache serves extents,
// sizes, category runs and probabilities from the flat arrays with the
// same values as the lazy reference, and leaves the lazy maps empty for
// covered features.
func TestCatalogCacheServesCatalog(t *testing.T) {
	fx := kgtest.Build()
	cache := NewCatalogCache(fx.Graph)
	ref := NewFeatureCache(fx.Graph)
	c := cache.Catalog()
	if c == nil {
		t.Fatal("no catalog attached")
	}
	for id := 0; id < c.NumFeatures(); id++ {
		f := c.FeatureAt(FeatureID(id))
		if !equalTermIDs(cache.Extent(f), ref.Extent(f)) {
			t.Fatalf("cache extent of %+v diverges", f)
		}
		if cache.ExtentSize(f) != ref.ExtentSize(f) {
			t.Fatalf("cache extent size of %+v diverges", f)
		}
	}
	for i := range cache.shards {
		if n := len(cache.shards[i].extents); n != 0 {
			t.Fatalf("lazy extent map populated (%d entries) despite catalog coverage", n)
		}
	}
	// Off-catalog feature (metadata predicate) falls back to the lazy path.
	meta := Feature{Anchor: fx.E("American_films"), Pred: fx.Graph.Voc().Subject, Dir: Backward}
	if !equalTermIDs(cache.Extent(meta), ref.Extent(meta)) {
		t.Fatal("fallback extent diverges from reference")
	}
}
