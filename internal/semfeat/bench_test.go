package semfeat_test

import (
	"sync"
	"testing"

	"pivote/internal/rdf"
	"pivote/internal/semfeat"
	"pivote/internal/synth"
)

// The benchmarks share the standard synthetic fixture the expand benches
// use (Scaled(300), three film seeds), so BENCH_semfeat.json numbers are
// comparable across the serving hot paths.
var (
	benchOnce  sync.Once
	benchRes   *synth.Result
	benchSeeds []rdf.TermID
)

func benchSetup() (*synth.Result, []rdf.TermID) {
	benchOnce.Do(func() {
		benchRes = synth.Generate(synth.Scaled(300))
		benchSeeds = benchRes.Manifest.Films[:3]
	})
	return benchRes, benchSeeds
}

// BenchmarkRank is the catalog scatter ranker: candidate union from the
// dense adjacency runs, per-seed holds/back-off scatter into
// epoch-stamped FeatureID accumulators, streaming top-k selection.
func BenchmarkRank(b *testing.B) {
	res, seeds := benchSetup()
	en := semfeat.NewEngineWithCache(semfeat.NewCatalogCache(res.Graph), semfeat.Options{})
	if len(en.Rank(seeds, 15)) == 0 {
		b.Fatal("no features")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := en.Rank(seeds, 15); len(s) == 0 {
			b.Fatal("no features")
		}
	}
}

// BenchmarkRankNaive is the executable-spec model on the lazy map-backed
// cache (warmed), for the before/after record.
func BenchmarkRankNaive(b *testing.B) {
	res, seeds := benchSetup()
	en := semfeat.NewEngine(res.Graph)
	if len(en.Rank(seeds, 15)) == 0 {
		b.Fatal("no features")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := en.Rank(seeds, 15); len(s) == 0 {
			b.Fatal("no features")
		}
	}
}

// BenchmarkCatalogBuild measures the freeze/compaction-time cost the
// frozen representation adds per generation.
func BenchmarkCatalogBuild(b *testing.B) {
	res, _ := benchSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := semfeat.NewCatalog(res.Graph); c.NumFeatures() == 0 {
			b.Fatal("empty catalog")
		}
	}
}
