package semfeat

import (
	"sort"

	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/snap"
)

// FeatureID is the dense identifier of a semantic feature inside one
// generation's Catalog. IDs are assigned in ascending (Anchor, Pred, Dir)
// order at build time, so they index flat arrays directly and the scatter
// ranker can use epoch-stamped dense accumulators instead of hash maps.
// FeatureIDs are only meaningful relative to the Catalog that minted
// them; they are not stable across generations (use Feature for that).
type FeatureID uint32

// NoFeature is the sentinel returned by Lookup for features outside the
// catalog (non-entity anchors, metadata predicates, no matching edges).
const NoFeature FeatureID = ^FeatureID(0)

// noCat marks TermIDs that are not categories in the dense category index.
const noCat = ^uint32(0)

// Catalog is the frozen serving representation of a graph's semantic
// features: every (anchor, pred, dir) with an entity anchor, a
// non-metadata predicate and at least one edge is interned into a dense
// FeatureID space at build time, and all graph-derived quantities of the
// ranking model are materialized as flat CSR arrays:
//
//   - features / anchorOff: the dense feature table, grouped by anchor so
//     Lookup is a binary search inside one anchor's run;
//   - extents / extOff: per-feature extent E(π), non-entity members
//     pre-filtered, sorted — ‖E(π)‖ is an offset subtraction;
//   - adj / adjOff: entity→features adjacency (both directions folded),
//     i.e. exactly the candidate features appendFeaturesOf enumerates and
//     the holds-set of the p(π|e) probe;
//   - cats / catOff: per-node category run ordered most-specific (fewest
//     members) first — the back-off walk order;
//   - cpFeat / cpProb / cpOff: per-category back-off rows, each the
//     sorted (FeatureID, p(π|c)) pairs with p > 0, so one seed's back-off
//     is a scatter of its categories' rows with first-write-wins.
//
// A Catalog is immutable after NewCatalog and safe for unbounded
// concurrent use; one catalog serves every session and engine of its
// generation. The lazily-memoized FeatureCache remains the fallback for
// features outside the catalog and for graphs without one.
type Catalog struct {
	g *kg.Graph

	features []Feature
	// anchor:pred label renderings, precomputed at build and stored
	// flat (offsets + one blob) so a snapshot-opened catalog aliases
	// them instead of materializing string headers.
	labelOff  []uint32
	labelBlob []byte
	anchorOff []uint32

	extOff  []uint32
	extents []rdf.TermID

	adjOff []uint32
	adj    []FeatureID

	catOff []uint32
	cats   []rdf.TermID

	catIdx []uint32    // TermID → dense category index (noCat otherwise)
	cpOff  []uint32    // dense category index → row bounds
	cpFeat []FeatureID // row: features with p(π|c) > 0, ascending
	cpProb []float64   // row: the matching p(π|c) values
}

// NewCatalog builds the frozen feature catalog for the graph. The store
// must be frozen (any kg.Graph satisfies this). Construction is a small
// constant number of near-linear passes over the CSR adjacency.
func NewCatalog(g *kg.Graph) *Catalog {
	st := g.Store()
	nodes := int(st.MaxTermID()) + 1
	c := &Catalog{g: g}

	// Pass 1: count features per anchor, total extent entries, and the
	// per-node feature-adjacency degrees.
	anchorCount := make([]uint32, nodes+1)
	adjCount := make([]uint32, nodes+1)
	nFeat, nExt := 0, 0
	forEachAnchorRun(g, func(a, p rdf.TermID, dir Dir, run []rdf.Edge) {
		anchorCount[a]++
		nFeat++
		for _, e := range run {
			adjCount[e.Node]++
			if g.IsEntity(e.Node) {
				nExt++
			}
		}
	})

	c.anchorOff = prefixSum(anchorCount)
	c.adjOff = prefixSum(adjCount)
	c.features = make([]Feature, 0, nFeat)
	c.labelOff = make([]uint32, 1, nFeat+1)
	c.extOff = make([]uint32, 1, nFeat+1)
	c.extents = make([]rdf.TermID, 0, nExt)
	c.adj = make([]FeatureID, c.adjOff[len(c.adjOff)-1])

	// Pass 2: emit the feature table, labels, extents and adjacency. The
	// enumeration order is identical to pass 1, so FeatureIDs ascend in
	// (Anchor, Pred, Dir) order and every adjacency run ends up sorted.
	adjCur := append([]uint32(nil), c.adjOff[:len(c.adjOff)-1]...)
	dict := g.Dict()
	forEachAnchorRun(g, func(a, p rdf.TermID, dir Dir, run []rdf.Edge) {
		fid := FeatureID(len(c.features))
		c.features = append(c.features, Feature{Anchor: a, Pred: p, Dir: dir})
		anchor := dict.Term(a).LocalName()
		pred := dict.Term(p).LocalName()
		c.labelBlob = append(c.labelBlob, anchor...)
		c.labelBlob = append(c.labelBlob, ':')
		if dir == Forward {
			c.labelBlob = append(c.labelBlob, '~')
		}
		c.labelBlob = append(c.labelBlob, pred...)
		c.labelOff = append(c.labelOff, uint32(len(c.labelBlob)))
		for _, e := range run {
			c.adj[adjCur[e.Node]] = fid
			adjCur[e.Node]++
			if g.IsEntity(e.Node) {
				c.extents = append(c.extents, e.Node)
			}
		}
		c.extOff = append(c.extOff, uint32(len(c.extents)))
	})

	c.buildCategoryTables(nodes)
	return c
}

// buildCategoryTables materializes the dense category index, the
// per-node most-specific-first category runs, and the per-category
// back-off probability rows.
func (c *Catalog) buildCategoryTables(nodes int) {
	g, st, voc := c.g, c.g.Store(), c.g.Voc()
	catList := g.Categories()
	c.catIdx = make([]uint32, nodes+1)
	for i := range c.catIdx {
		c.catIdx[i] = noCat
	}
	for ci, cat := range catList {
		c.catIdx[cat] = uint32(ci)
	}

	// Per-node category runs, through the same most-specific-first sort
	// as the lazy computeCategoriesBySize.
	catCount := make([]uint32, nodes+1)
	for _, s := range st.NodesWithOut() {
		catCount[s] = uint32(st.CountObjects(s, voc.Subject))
	}
	c.catOff = prefixSum(catCount)
	c.cats = make([]rdf.TermID, c.catOff[len(c.catOff)-1])
	for _, s := range st.NodesWithOut() {
		run := c.cats[c.catOff[s]:c.catOff[s+1]]
		st.ObjectsAppend(run[:0], s, voc.Subject)
		sortCategoriesBySize(g, run)
	}

	// Per-category back-off rows: p(π|c) = ‖E(π)∩E(c)‖/‖E(c)‖ for every
	// feature with a non-empty intersection. An entity member m of c lies
	// in E(π) exactly when π ∈ adj[m], so one pass over the members'
	// adjacency runs counts every intersection at once.
	c.cpOff = make([]uint32, len(catList)+1)
	cnt := make([]uint32, len(c.features))
	stamp := make([]uint32, len(c.features))
	var touched []FeatureID
	var members []rdf.TermID
	for ci, cat := range catList {
		pass := uint32(ci) + 1
		touched = touched[:0]
		members = st.SubjectsAppend(members[:0], voc.Subject, cat)
		for _, m := range members {
			if !g.IsEntity(m) {
				continue
			}
			for _, fid := range c.FeaturesHeldBy(m) {
				if stamp[fid] != pass {
					stamp[fid] = pass
					cnt[fid] = 0
					touched = append(touched, fid)
				}
				cnt[fid]++
			}
		}
		sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
		denom := float64(len(members))
		for _, fid := range touched {
			c.cpFeat = append(c.cpFeat, fid)
			c.cpProb = append(c.cpProb, float64(cnt[fid])/denom)
		}
		c.cpOff[ci+1] = uint32(len(c.cpFeat))
	}
}

// forEachAnchorRun enumerates every catalog feature in ascending
// (Anchor, Pred, Dir) order along with its raw (unfiltered) edge run:
// for each entity anchor, the In runs yield Backward features (extent =
// subjects) and the Out runs yield Forward features (extent = objects),
// metadata predicates skipped. Both CSR runs are sorted by (P, Node), so
// one merge walk visits the predicate groups in order, Backward before
// Forward on a shared predicate.
func forEachAnchorRun(g *kg.Graph, fn func(anchor, pred rdf.TermID, dir Dir, run []rdf.Edge)) {
	st := g.Store()
	voc := g.Voc()
	for _, a := range g.Entities() {
		in, out := st.In(a), st.Out(a)
		i, j := 0, 0
		for i < len(in) || j < len(out) {
			var p rdf.TermID
			switch {
			case i >= len(in):
				p = out[j].P
			case j >= len(out):
				p = in[i].P
			case in[i].P <= out[j].P:
				p = in[i].P
			default:
				p = out[j].P
			}
			var inRun, outRun []rdf.Edge
			if i < len(in) && in[i].P == p {
				k := i
				for k < len(in) && in[k].P == p {
					k++
				}
				inRun, i = in[i:k], k
			}
			if j < len(out) && out[j].P == p {
				k := j
				for k < len(out) && out[k].P == p {
					k++
				}
				outRun, j = out[j:k], k
			}
			if voc.IsMeta(p) {
				continue
			}
			if inRun != nil {
				fn(a, p, Backward, inRun)
			}
			if outRun != nil {
				fn(a, p, Forward, outRun)
			}
		}
	}
}

func prefixSum(counts []uint32) []uint32 {
	off := make([]uint32, len(counts)+1)
	for i, n := range counts {
		off[i+1] = off[i] + n
	}
	return off
}

// Graph exposes the catalog's graph.
func (c *Catalog) Graph() *kg.Graph { return c.g }

// NumFeatures reports the size of the dense FeatureID space.
func (c *Catalog) NumFeatures() int { return len(c.features) }

// FeatureAt returns the feature with the given dense ID.
func (c *Catalog) FeatureAt(id FeatureID) Feature { return c.features[id] }

// LabelOf returns the precomputed anchor:predicate rendering of id. The
// string aliases the catalog (or the snapshot mapping); do not retain
// it past the generation.
func (c *Catalog) LabelOf(id FeatureID) string {
	return snap.UnsafeString(c.labelBlob[c.labelOff[id]:c.labelOff[id+1]])
}

// Lookup resolves a feature to its dense ID, or NoFeature when the
// feature is outside the catalog (non-entity anchor, metadata predicate,
// or no matching edge). Cost: one binary search inside the anchor's run.
func (c *Catalog) Lookup(f Feature) FeatureID {
	a := int(f.Anchor)
	if a+1 >= len(c.anchorOff) {
		return NoFeature
	}
	lo, hi := c.anchorOff[a], c.anchorOff[a+1]
	run := c.features[lo:hi]
	i := sort.Search(len(run), func(i int) bool {
		if run[i].Pred != f.Pred {
			return run[i].Pred >= f.Pred
		}
		return run[i].Dir >= f.Dir
	})
	if i < len(run) && run[i].Pred == f.Pred && run[i].Dir == f.Dir {
		return FeatureID(lo) + FeatureID(i)
	}
	return NoFeature
}

// Extent returns E(π) of the feature: its entity members, ascending. The
// slice aliases the catalog's arrays; do not modify.
func (c *Catalog) Extent(id FeatureID) []rdf.TermID {
	return c.extents[c.extOff[id]:c.extOff[id+1]]
}

// ExtentSize returns ‖E(π)‖ — two loads and a subtraction.
func (c *Catalog) ExtentSize(id FeatureID) int {
	return int(c.extOff[id+1] - c.extOff[id])
}

// FeaturesHeldBy returns the dense IDs of every catalog feature the node
// holds (matches its triple pattern), ascending — the union of
// appendFeaturesOf's Backward and Forward enumerations. The slice aliases
// the catalog's arrays; do not modify.
func (c *Catalog) FeaturesHeldBy(e rdf.TermID) []FeatureID {
	if int(e)+1 >= len(c.adjOff) {
		return nil
	}
	return c.adj[c.adjOff[e]:c.adjOff[e+1]]
}

// CategoriesBySize returns the node's categories ordered most-specific
// (fewest members) first — the back-off walk order. The slice aliases the
// catalog's arrays; do not modify.
func (c *Catalog) CategoriesBySize(e rdf.TermID) []rdf.TermID {
	if int(e)+1 >= len(c.catOff) {
		return nil
	}
	return c.cats[c.catOff[e]:c.catOff[e+1]]
}

// ProbGivenCategory returns p(π|c) = ‖E(π)∩E(c)‖/‖E(c)‖ for a catalog
// feature, 0 when cat is not a category or the intersection is empty.
func (c *Catalog) ProbGivenCategory(id FeatureID, cat rdf.TermID) float64 {
	if int(cat) >= len(c.catIdx) {
		return 0
	}
	ci := c.catIdx[cat]
	if ci == noCat {
		return 0
	}
	fids, probs := c.catRow(ci)
	i := sort.Search(len(fids), func(i int) bool { return fids[i] >= id })
	if i < len(fids) && fids[i] == id {
		return probs[i]
	}
	return 0
}

// catRow returns the back-off row of one dense category index: the
// ascending FeatureIDs with p(π|c) > 0 and their probabilities.
func (c *Catalog) catRow(ci uint32) ([]FeatureID, []float64) {
	lo, hi := c.cpOff[ci], c.cpOff[ci+1]
	return c.cpFeat[lo:hi], c.cpProb[lo:hi]
}

// catRowOf is catRow keyed by category TermID (empty row when cat is not
// a category).
func (c *Catalog) catRowOf(cat rdf.TermID) ([]FeatureID, []float64) {
	if int(cat) >= len(c.catIdx) {
		return nil, nil
	}
	ci := c.catIdx[cat]
	if ci == noCat {
		return nil, nil
	}
	return c.catRow(ci)
}
