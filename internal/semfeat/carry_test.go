package semfeat

import (
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/rdf"
)

// TestFeatureCacheCarryRules exercises the three invalidation rules of
// NewFeatureCacheFrom directly: extents keyed on a touched anchor drop,
// category probabilities drop when either the anchor or the category is
// touched, and category-by-size lists drop when the entity or any cached
// category is touched. Everything else is carried by reference.
func TestFeatureCacheCarryRules(t *testing.T) {
	fx := kgtest.Build()
	old := NewFeatureCache(fx.Graph)
	d := fx.Store.Dict()
	starring := d.LookupIRI("http://pivote.dev/ontology/starring")
	if starring == rdf.NoTerm {
		t.Fatal("no starring predicate in fixture")
	}
	hanks := fx.E("Tom_Hanks")
	dicaprio := fx.E("Leonardo_DiCaprio")
	gump := fx.E("Forrest_Gump")
	inception := fx.E("Inception")

	fHanks := Feature{Anchor: hanks, Pred: starring, Dir: Backward}
	fDiCaprio := Feature{Anchor: dicaprio, Pred: starring, Dir: Backward}

	// Warm: two extents, one catProb, two catsBySize lists.
	extHanks := old.Extent(fHanks)
	extDiCaprio := old.Extent(fDiCaprio)
	catsGump := old.CategoriesBySize(gump)
	if len(extHanks) == 0 || len(extDiCaprio) == 0 || len(catsGump) == 0 {
		t.Fatal("fixture warm-up produced empty entries")
	}
	var cat rdf.TermID
	if len(catsGump) > 0 {
		cat = catsGump[0]
	}
	_ = old.ProbGivenCategory(fHanks, cat)
	_ = old.ProbGivenCategory(fDiCaprio, cat)
	_ = old.CategoriesBySize(inception)

	// Delta touches Tom_Hanks and Forrest_Gump's first category; the new
	// graph is the same graph (the rules, not the data, are under test).
	touched := map[rdf.TermID]bool{hanks: true, cat: true, gump: true}
	fresh := NewFeatureCacheFrom(fx.Graph, nil, old, 3, func(id rdf.TermID) bool { return touched[id] })

	if fresh.Generation() != 3 {
		t.Fatalf("generation tag %d, want 3", fresh.Generation())
	}
	stats := fresh.Carry()
	if stats.Carried == 0 || stats.Dropped == 0 {
		t.Fatalf("expected both carried and dropped entries, got %+v", stats)
	}

	// Untouched anchor: extent carried by reference (same backing array).
	got := fresh.Extent(fDiCaprio)
	if len(got) != len(extDiCaprio) || (len(got) > 0 && &got[0] != &extDiCaprio[0]) {
		t.Fatal("untouched extent was not carried by reference")
	}
	// Touched anchor: not present until recomputed; recompute matches.
	if sh := fresh.featureShard(fHanks); func() bool {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		_, ok := sh.extents[fHanks]
		return ok
	}() {
		t.Fatal("touched extent should have been dropped")
	}
	if re := fresh.Extent(fHanks); !equalTermIDs(re, extHanks) {
		t.Fatalf("recomputed extent differs on identical graph: %v vs %v", re, extHanks)
	}

	// catProb on (touched cat) dropped for both features.
	for _, f := range []Feature{fHanks, fDiCaprio} {
		sh := fresh.featureShard(f)
		sh.mu.RLock()
		_, ok := sh.catProb[catKey{f, cat}]
		sh.mu.RUnlock()
		if ok {
			t.Fatalf("catProb with touched category carried for %v", f)
		}
	}

	// catsBySize: a touched entity, or any entity whose cached category
	// list includes the touched category, must drop.
	for _, e := range []rdf.TermID{gump, inception} {
		sh := fresh.entityShard(e)
		sh.mu.RLock()
		_, ok := sh.catsBySize[e]
		sh.mu.RUnlock()
		if ok && (e == gump || containsID(fresh.CategoriesBySize(e), cat)) {
			t.Fatalf("catsBySize carried for %d despite touched dependency", e)
		}
	}

	// Old cache is untouched: pinned readers keep their entries.
	oldSh := old.featureShard(fHanks)
	oldSh.mu.RLock()
	_, stillThere := oldSh.extents[fHanks]
	oldSh.mu.RUnlock()
	if !stillThere {
		t.Fatal("carry mutated the previous generation's cache")
	}
}

// TestFeatureCacheFromNil: a nil predecessor yields a plain cold cache
// with the generation tag set.
func TestFeatureCacheFromNil(t *testing.T) {
	fx := kgtest.Build()
	c := NewFeatureCacheFrom(fx.Graph, nil, nil, 7, nil)
	if c.Generation() != 7 {
		t.Fatalf("generation %d, want 7", c.Generation())
	}
	if s := c.Carry(); s.Carried != 0 || s.Dropped != 0 {
		t.Fatalf("cold cache reports carry stats %+v", s)
	}
	if c.Graph() != fx.Graph {
		t.Fatal("graph not wired")
	}
}

func equalTermIDs(a, b []rdf.TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsID(ids []rdf.TermID, x rdf.TermID) bool {
	for _, id := range ids {
		if id == x {
			return true
		}
	}
	return false
}
