package semfeat_test

import (
	"sync"
	"testing"

	"pivote/internal/expand"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
	"pivote/internal/synth"
)

// TestFeatureCacheConcurrent hammers one shared cache from many
// goroutines mixing engines with different options, ranking, probing and
// extent reads, plus a concurrent Reset. Run under -race this is the
// proof the shared core needs no external lock.
func TestFeatureCacheConcurrent(t *testing.T) {
	res := synth.Generate(synth.Scaled(60))
	g := res.Graph
	cache := semfeat.NewFeatureCache(g)
	seeds := res.Manifest.Films[:3]

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := semfeat.Options{Strict: w%2 == 0}
			en := semfeat.NewEngineWithCache(cache, opts)
			x := expand.New(en, expand.Options{SameTypeOnly: true})
			for i := 0; i < 20; i++ {
				feats := en.Rank(seeds, 20)
				if len(feats) == 0 {
					t.Error("no features ranked")
					return
				}
				probe := feats
				if len(probe) > 5 {
					probe = probe[:5]
				}
				for _, fs := range probe {
					_ = en.Extent(fs.Feature)
					_ = en.ExtentSize(fs.Feature)
					_ = en.Prob(fs.Feature, seeds[i%len(seeds)])
				}
				ranked, _ := x.Expand(seeds, 10)
				if len(ranked) == 0 {
					t.Error("no entities ranked")
					return
				}
				if w == 0 && i%7 == 0 {
					cache.Reset()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSharedCacheDeterministic checks that engines sharing a cache return
// the same ranking as engines with private caches — the cache is a pure
// memo, never semantics.
func TestSharedCacheDeterministic(t *testing.T) {
	res := synth.Generate(synth.Scaled(60))
	g := res.Graph
	seeds := res.Manifest.Films[:3]

	private := semfeat.NewEngine(g)
	shared := semfeat.NewEngineWithCache(semfeat.NewFeatureCache(g), semfeat.Options{})
	a := private.Rank(seeds, 15)
	b := shared.Rank(seeds, 15)
	if len(a) != len(b) {
		t.Fatalf("rank sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Feature != b[i].Feature || a[i].R != b[i].R || a[i].Label != b[i].Label {
			t.Fatalf("rank %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEngineProbMatchesExtentMembership(t *testing.T) {
	res := synth.Generate(synth.Scaled(40))
	g := res.Graph
	en := semfeat.NewEngine(g)
	seeds := res.Manifest.Films[:2]
	feats := en.Rank(seeds, 10)
	for _, fs := range feats {
		ext := en.Extent(fs.Feature)
		for _, e := range ext {
			if p := en.Prob(fs.Feature, e); p != 1 {
				t.Fatalf("extent member %d of %s has p=%v, want 1", e, fs.Label, p)
			}
			if !en.Holds(e, fs.Feature) {
				t.Fatalf("extent member %d of %s does not Hold", e, fs.Label)
			}
		}
		var notInExtent rdf.TermID
		for _, cand := range g.Entities() {
			if !rdf.ContainsSorted(ext, cand) {
				notInExtent = cand
				break
			}
		}
		if notInExtent != rdf.NoTerm && en.Holds(notInExtent, fs.Feature) {
			t.Fatalf("non-member %d Holds %s", notInExtent, fs.Label)
		}
	}
}
