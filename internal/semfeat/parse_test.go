package semfeat

import (
	"testing"

	"pivote/internal/kg"
	"pivote/internal/kgtest"
)

func TestParseBackward(t *testing.T) {
	f := kgtest.Build()
	got, err := Parse(f.Graph, "Tom_Hanks:starring")
	if err != nil {
		t.Fatal(err)
	}
	want := Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:starring"), Dir: Backward}
	if got != want {
		t.Fatalf("Parse = %+v, want %+v", got, want)
	}
}

func TestParseForward(t *testing.T) {
	f := kgtest.Build()
	got, err := Parse(f.Graph, "Forrest_Gump:~starring")
	if err != nil {
		t.Fatal(err)
	}
	if got.Dir != Forward || got.Anchor != f.E("Forrest_Gump") {
		t.Fatalf("Parse = %+v", got)
	}
}

func TestParseFullIRIAnchor(t *testing.T) {
	f := kgtest.Build()
	got, err := Parse(f.Graph, kg.ResourceIRI("Tom_Hanks")+":starring")
	if err != nil {
		t.Fatal(err)
	}
	if got.Anchor != f.E("Tom_Hanks") {
		t.Fatalf("Parse with IRI anchor = %+v", got)
	}
}

func TestParseFullIRIPredicate(t *testing.T) {
	f := kgtest.Build()
	got, err := Parse(f.Graph, "Tom_Hanks:http://pivote.dev/ontology/starring")
	if err != nil {
		t.Fatal(err)
	}
	if got.Pred != f.E("p:starring") {
		t.Fatalf("Parse with IRI predicate = %+v", got)
	}
}

func TestParseRoundTripsLabel(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	for _, ft := range en.FeaturesOf(f.E("Forrest_Gump")) {
		label := en.Label(ft)
		back, err := Parse(f.Graph, label)
		if err != nil {
			t.Fatalf("Parse(%q): %v", label, err)
		}
		if back != ft {
			t.Fatalf("round trip of %q: %+v vs %+v", label, back, ft)
		}
	}
}

func TestParseErrorCases(t *testing.T) {
	f := kgtest.Build()
	for _, bad := range []string{
		"", ":", "noseparator", ":starring", "Tom_Hanks:",
		"Unknown_Person:starring", "Tom_Hanks:nosuchpred", "Tom_Hanks:~",
	} {
		if _, err := Parse(f.Graph, bad); err == nil {
			t.Fatalf("no error for %q", bad)
		}
	}
}

func TestEngineAccessors(t *testing.T) {
	f := kgtest.Build()
	en := NewEngineWithOptions(f.Graph, Options{Strict: true})
	if en.Graph() != f.Graph {
		t.Fatal("Graph accessor mismatch")
	}
	if !en.Options().Strict {
		t.Fatal("Options accessor mismatch")
	}
}
