package semfeat

import (
	"sync"

	"pivote/internal/kg"
	"pivote/internal/rdf"
)

// FeatureCache memoizes the graph-derived quantities that dominate
// feature evaluation — extents E(π), the per-entity category lists
// ordered most-specific-first, and the back-off probabilities p(π|c) —
// independent of any model options, so one cache serves every session and
// every Engine over the same graph concurrently.
//
// The cache is sharded: each shard guards its three maps with one
// RWMutex, and entries are immutable once published, so steady-state
// reads are an RLock and a map probe. Writes (first computation of an
// entry) take the shard's write lock; losers of a compute race discard
// their duplicate, which is cheaper than holding the lock across the
// graph scan.
type FeatureCache struct {
	g *kg.Graph
	// cat is the generation's frozen feature catalog when one was built
	// (Freeze/compaction time); accessors serve catalog-covered features
	// from its flat arrays and fall back to the lazy maps only for
	// features outside the dense FeatureID space.
	cat    *Catalog
	gen    uint64 // generation tag (0 for caches outside the live path)
	shards [cacheShards]cacheShard
	carry  CarryStats
}

// CarryStats reports how a generation-carried cache was seeded: how many
// memoized entries survived the delta's invalidation rules and how many
// were dropped for recomputation on demand.
type CarryStats struct {
	// Gen is the generation tag of this cache.
	Gen uint64
	// Carried counts entries copied forward from the previous generation.
	Carried int
	// Dropped counts entries invalidated by the delta.
	Dropped int
}

const cacheShards = 16

type cacheShard struct {
	mu         sync.RWMutex
	extents    map[Feature][]rdf.TermID
	catProb    map[catKey]float64
	catsBySize map[rdf.TermID][]rdf.TermID
}

type catKey struct {
	f   Feature
	cat rdf.TermID
}

// NewFeatureCache returns an empty cache over the graph.
func NewFeatureCache(g *kg.Graph) *FeatureCache {
	c := &FeatureCache{g: g}
	c.reset()
	return c
}

// NewFeatureCacheFrom builds the next generation's cache over g, seeded
// with every entry of the previous generation's cache that the delta
// provably did not touch. cat, when non-nil, is the generation's frozen
// catalog and moves carry accounting to FeatureID granularity: every
// feature of the new catalog is classified by the same anchor-touch rule
// — untouched anchors count as Carried (the rebuild provably reproduced
// the old values), touched anchors as Dropped (the delta rewrote them) —
// and lazily-memoized entries the catalog covers are never copied (the
// flat arrays serve them). Only off-catalog entries go through the
// per-entry rules below. touched reports whether a term was written by
// the delta (any S, P or O of an added or tombstoned triple, expanded
// with the neighbours of nodes whose rdf:type set changed — see
// live.touchedSet). Entries are invalidated by generation tag rather
// than flushed wholesale:
//
//   - Extent(π) depends only on the triples around the anchor plus the
//     entity status of its members, so it survives unless the anchor is
//     touched (the neighbour expansion folds entity-status changes into
//     the anchors they can reach).
//   - p(π|c) additionally depends on E(c), so it survives unless the
//     anchor or the category is touched.
//   - CategoriesBySize(e) depends on e's category list and those
//     categories' member counts, so it survives unless e or any cached
//     category is touched.
//
// The old cache is left intact: readers pinned to the previous
// generation keep their fully-warm cache, which is what makes the RCU
// swap safe without any locking between generations.
func NewFeatureCacheFrom(g *kg.Graph, cat *Catalog, old *FeatureCache, gen uint64, touched func(rdf.TermID) bool) *FeatureCache {
	c := NewFeatureCache(g)
	c.cat = cat
	c.gen = gen
	c.carry.Gen = gen
	if old == nil {
		return c
	}
	if cat != nil && touched != nil {
		// FeatureID-granularity accounting over the frozen catalog: the
		// anchor-touch rule decides, per dense feature, whether the swap
		// preserved its extent (Carried) or the delta rewrote it (Dropped).
		for i := range cat.features {
			if touched(cat.features[i].Anchor) {
				c.carry.Dropped++
			} else {
				c.carry.Carried++
			}
		}
	}
	for i := range old.shards {
		sh := &old.shards[i]
		sh.mu.RLock()
		for f, ext := range sh.extents {
			if cat != nil && cat.Lookup(f) != NoFeature {
				continue // served frozen; already accounted above
			}
			if touched(f.Anchor) {
				c.carry.Dropped++
				continue
			}
			dst := c.featureShard(f)
			dst.extents[f] = ext
			c.carry.Carried++
		}
		for key, p := range sh.catProb {
			if cat != nil && cat.Lookup(key.f) != NoFeature {
				continue // served frozen; already accounted above
			}
			if touched(key.f.Anchor) || touched(key.cat) {
				c.carry.Dropped++
				continue
			}
			dst := c.featureShard(key.f)
			dst.catProb[key] = p
			c.carry.Carried++
		}
		for e, cats := range sh.catsBySize {
			if cat != nil {
				continue // the catalog covers every node's category run
			}
			drop := touched(e)
			for _, cc := range cats {
				if drop {
					break
				}
				drop = touched(cc)
			}
			if drop {
				c.carry.Dropped++
				continue
			}
			dst := c.entityShard(e)
			dst.catsBySize[e] = cats
			c.carry.Carried++
		}
		sh.mu.RUnlock()
	}
	return c
}

// NewCatalogCache builds the frozen catalog for g and wraps it in a
// cache — the standard serving configuration over a static graph. The
// lazy maps remain as the fallback for off-catalog features.
func NewCatalogCache(g *kg.Graph) *FeatureCache {
	return NewFeatureCacheFrom(g, NewCatalog(g), nil, 0, nil)
}

// Catalog returns the generation's frozen feature catalog, or nil when
// this cache serves a graph without one (the lazy fallback path).
func (c *FeatureCache) Catalog() *Catalog { return c.cat }

// Carry reports how this cache was seeded from its predecessor (zero for
// caches built from scratch).
func (c *FeatureCache) Carry() CarryStats { return c.carry }

// Generation returns the cache's generation tag.
func (c *FeatureCache) Generation() uint64 { return c.gen }

// Graph exposes the underlying graph.
func (c *FeatureCache) Graph() *kg.Graph { return c.g }

// Reset drops every memoized entry. It is safe to call concurrently with
// readers, which will simply recompute.
func (c *FeatureCache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.extents = map[Feature][]rdf.TermID{}
		sh.catProb = map[catKey]float64{}
		sh.catsBySize = map[rdf.TermID][]rdf.TermID{}
		sh.mu.Unlock()
	}
}

func (c *FeatureCache) reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.extents = map[Feature][]rdf.TermID{}
		sh.catProb = map[catKey]float64{}
		sh.catsBySize = map[rdf.TermID][]rdf.TermID{}
	}
}

// featureShard spreads features across shards by mixing the anchor,
// predicate and direction.
func (c *FeatureCache) featureShard(f Feature) *cacheShard {
	h := uint32(f.Anchor)*0x9e3779b1 ^ uint32(f.Pred)*0x85ebca6b ^ uint32(f.Dir)
	return &c.shards[(h>>16)%cacheShards]
}

func (c *FeatureCache) entityShard(e rdf.TermID) *cacheShard {
	h := uint32(e) * 0x9e3779b1
	return &c.shards[(h>>16)%cacheShards]
}

// Extent returns E(π) as a sorted slice of entity IDs (shared with the
// cache; do not modify). Non-entity nodes (literals, categories, redirect
// stubs) are excluded. Catalog-covered features are served from the flat
// extent arrays without touching the lazy maps.
func (c *FeatureCache) Extent(f Feature) []rdf.TermID {
	if c.cat != nil {
		if id := c.cat.Lookup(f); id != NoFeature {
			return c.cat.Extent(id)
		}
	}
	sh := c.featureShard(f)
	sh.mu.RLock()
	ext, ok := sh.extents[f]
	sh.mu.RUnlock()
	if ok {
		return ext
	}
	ext = c.computeExtent(f)
	sh.mu.Lock()
	if prev, ok := sh.extents[f]; ok {
		ext = prev // another goroutine won the race; keep one canonical slice
	} else {
		sh.extents[f] = ext
	}
	sh.mu.Unlock()
	return ext
}

func (c *FeatureCache) computeExtent(f Feature) []rdf.TermID {
	var raw []rdf.TermID
	if f.Dir == Backward {
		raw = c.g.Store().Subjects(f.Pred, f.Anchor)
	} else {
		raw = c.g.Store().Objects(f.Anchor, f.Pred)
	}
	ext := raw[:0]
	for _, id := range raw {
		if c.g.IsEntity(id) {
			ext = append(ext, id)
		}
	}
	return ext
}

// ExtentSize returns ‖E(π)‖ — an offset subtraction for catalog-covered
// features.
func (c *FeatureCache) ExtentSize(f Feature) int {
	if c.cat != nil {
		if id := c.cat.Lookup(f); id != NoFeature {
			return c.cat.ExtentSize(id)
		}
	}
	return len(c.Extent(f))
}

// CategoriesBySize returns e's categories ordered most-specific (fewest
// members) first. The slice is shared with the cache; do not modify.
// With a catalog this is a slice of the frozen category run — no locks.
func (c *FeatureCache) CategoriesBySize(e rdf.TermID) []rdf.TermID {
	if c.cat != nil {
		return c.cat.CategoriesBySize(e)
	}
	sh := c.entityShard(e)
	sh.mu.RLock()
	cats, ok := sh.catsBySize[e]
	sh.mu.RUnlock()
	if ok {
		return cats
	}
	cats = c.computeCategoriesBySize(e)
	sh.mu.Lock()
	if prev, ok := sh.catsBySize[e]; ok {
		cats = prev
	} else {
		sh.catsBySize[e] = cats
	}
	sh.mu.Unlock()
	return cats
}

func (c *FeatureCache) computeCategoriesBySize(e rdf.TermID) []rdf.TermID {
	cats := append([]rdf.TermID(nil), c.g.CategoriesOf(e)...)
	sortCategoriesBySize(c.g, cats)
	return cats
}

// sortCategoriesBySize orders a category list most-specific-first:
// ascending member count, ties by ID. Both the lazy cache and the frozen
// catalog build sort through here — the back-off walk order (and with it
// the byte-identical score guarantee) is defined exactly once. Insertion
// sort: category lists are short (a handful per entity), and sizes come
// from the graph's dense per-category table.
func sortCategoriesBySize(g *kg.Graph, cats []rdf.TermID) {
	for i := 1; i < len(cats); i++ {
		for j := i; j > 0; j-- {
			ni, nj := g.CategorySize(cats[j]), g.CategorySize(cats[j-1])
			if ni < nj || (ni == nj && cats[j] < cats[j-1]) {
				cats[j], cats[j-1] = cats[j-1], cats[j]
				continue
			}
			break
		}
	}
}

// ProbGivenCategory returns p(π|c) = ‖E(π)∩E(c)‖/‖E(c)‖, memoized.
// Catalog-covered features read the precomputed per-category back-off
// rows instead.
func (c *FeatureCache) ProbGivenCategory(f Feature, cat rdf.TermID) float64 {
	if c.cat != nil {
		if id := c.cat.Lookup(f); id != NoFeature {
			return c.cat.ProbGivenCategory(id, cat)
		}
	}
	key := catKey{f, cat}
	sh := c.featureShard(f)
	sh.mu.RLock()
	p, ok := sh.catProb[key]
	sh.mu.RUnlock()
	if ok {
		return p
	}
	members := c.g.CategoryMembers(cat)
	p = 0.0
	if len(members) > 0 {
		inter := rdf.IntersectSorted(c.Extent(f), members)
		p = float64(inter) / float64(len(members))
	}
	sh.mu.Lock()
	sh.catProb[key] = p
	sh.mu.Unlock()
	return p
}
