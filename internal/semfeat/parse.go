package semfeat

import (
	"fmt"
	"strings"

	"pivote/internal/kg"
	"pivote/internal/rdf"
)

// ontologyNS is the predicate namespace of the synthetic generator; Parse
// falls back to it for bare predicate names such as "starring".
const ontologyNS = "http://pivote.dev/ontology/"

// Parse resolves the "Anchor:predicate" / "Anchor:~predicate" notation
// produced by Label back into a Feature. Anchors and predicates may be
// local names or full IRIs.
func Parse(g *kg.Graph, s string) (Feature, error) {
	i := strings.LastIndex(s, ":")
	// IRIs contain ':'; skip over any "://" so full-IRI anchors parse.
	for i > 0 && strings.HasPrefix(s[i:], "://") {
		i = strings.LastIndex(s[:i], ":")
	}
	if i <= 0 || i == len(s)-1 {
		return Feature{}, fmt.Errorf("semfeat: feature %q is not in Anchor:predicate form", s)
	}
	anchorStr, predStr := s[:i], s[i+1:]
	dir := Backward
	if strings.HasPrefix(predStr, "~") {
		dir = Forward
		predStr = predStr[1:]
	}
	anchor := g.EntityByName(anchorStr)
	if anchor == rdf.NoTerm {
		return Feature{}, fmt.Errorf("semfeat: unknown anchor entity %q", anchorStr)
	}
	pred := g.Dict().LookupIRI(predStr)
	if pred == rdf.NoTerm {
		pred = g.Dict().LookupIRI(ontologyNS + predStr)
	}
	if pred == rdf.NoTerm {
		return Feature{}, fmt.Errorf("semfeat: unknown predicate %q", predStr)
	}
	return Feature{Anchor: anchor, Pred: pred, Dir: dir}, nil
}
