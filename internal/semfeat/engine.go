package semfeat

import (
	"context"
	"slices"
	"sync"

	"pivote/internal/kg"
	"pivote/internal/par"
	"pivote/internal/rdf"
	"pivote/internal/topk"
)

// Options tune the ranking model; the zero value is the paper's model.
type Options struct {
	// Strict disables the error-tolerant category back-off of p(π|e)
	// (ablation A1): a seed either holds the feature or contributes 0.
	Strict bool
	// UniformDiscriminability replaces d(π)=1/‖E(π)‖ with d(π)=1
	// (ablation A2).
	UniformDiscriminability bool
}

// Engine evaluates semantic features over one graph: model options plus a
// FeatureCache holding the memoized extents and category probabilities.
// Engines are cheap; any number of them (with different options) may
// share one cache, and all methods are safe for concurrent use.
type Engine struct {
	g     *kg.Graph
	opts  Options
	cache *FeatureCache
}

// NewEngine returns an engine with the paper's model (error-tolerant,
// IDF-like discriminability) over a fresh private cache.
func NewEngine(g *kg.Graph) *Engine { return NewEngineWithOptions(g, Options{}) }

// NewEngineWithOptions returns an engine with explicit model options over
// a fresh private cache.
func NewEngineWithOptions(g *kg.Graph, opts Options) *Engine {
	return &Engine{g: g, opts: opts, cache: NewFeatureCache(g)}
}

// NewEngineWithCache returns an engine sharing an existing cache — the
// multi-session serving configuration, where every session's engine reads
// and extends one cache over the shared graph.
func NewEngineWithCache(cache *FeatureCache, opts Options) *Engine {
	return &Engine{g: cache.Graph(), opts: opts, cache: cache}
}

// Graph exposes the underlying graph.
func (en *Engine) Graph() *kg.Graph { return en.g }

// Cache exposes the feature cache (shared or private).
func (en *Engine) Cache() *FeatureCache { return en.cache }

// Catalog exposes the frozen feature catalog behind the cache, or nil
// when the engine runs on the lazy fallback path.
func (en *Engine) Catalog() *Catalog { return en.cache.cat }

// Options returns the model options in effect.
func (en *Engine) Options() Options { return en.opts }

// Reset drops the memoized extents and probabilities. On a shared cache
// this affects every engine using it.
func (en *Engine) Reset() { en.cache.Reset() }

// Label renders the feature in anchor:predicate notation.
func (en *Engine) Label(f Feature) string { return Label(en.g, f) }

// Extent returns E(π) as a sorted slice of entity IDs (shared with the
// cache; do not modify). Non-entity nodes (literals, categories, redirect
// stubs) are excluded.
func (en *Engine) Extent(f Feature) []rdf.TermID { return en.cache.Extent(f) }

// ExtentSize returns ‖E(π)‖.
func (en *Engine) ExtentSize(f Feature) int { return en.cache.ExtentSize(f) }

// Holds reports e ⊨ π: the entity matches the feature's triple pattern.
func (en *Engine) Holds(e rdf.TermID, f Feature) bool {
	if f.Dir == Backward {
		return en.g.Store().Has(e, f.Pred, f.Anchor)
	}
	return en.g.Store().Has(f.Anchor, f.Pred, e)
}

// Discriminability returns d(π) = 1/‖E(π)‖ (or 1 under the A2 ablation).
// Features with empty extents have zero discriminability — they identify
// nothing.
func (en *Engine) Discriminability(f Feature) float64 {
	n := en.ExtentSize(f)
	if n == 0 {
		return 0
	}
	if en.opts.UniformDiscriminability {
		return 1
	}
	return 1 / float64(n)
}

// Prob returns p(π|e): 1 when e holds π; otherwise the error-tolerant
// back-off p(π|c*) over e's best category — the most specific (smallest)
// category of e whose extent overlaps E(π). Strict mode returns 0 for
// non-holding entities.
func (en *Engine) Prob(f Feature, e rdf.TermID) float64 {
	if en.Holds(e, f) {
		return 1
	}
	if en.opts.Strict {
		return 0
	}
	return en.ProbBackoff(f, e)
}

// CategoriesBySize returns e's categories ordered most-specific first
// (shared slice; do not modify).
func (en *Engine) CategoriesBySize(e rdf.TermID) []rdf.TermID {
	return en.cache.CategoriesBySize(e)
}

// ProbBackoff returns the category back-off term of p(π|e) alone: the
// probability through e's most specific overlapping category, 0 when no
// category overlaps. Callers that already know e does not hold π (the
// expand scorer's scatter pass) skip the Holds probe this way.
func (en *Engine) ProbBackoff(f Feature, e rdf.TermID) float64 {
	// Scan categories from most to least specific; the first overlapping
	// one is c*.
	for _, cat := range en.cache.CategoriesBySize(e) {
		if p := en.cache.ProbGivenCategory(f, cat); p > 0 {
			return p
		}
	}
	return 0
}

// Commonality returns c(π,Q) = Π_{e∈Q} p(π|e).
func (en *Engine) Commonality(f Feature, seeds []rdf.TermID) float64 {
	c := 1.0
	for _, e := range seeds {
		c *= en.Prob(f, e)
		if c == 0 {
			return 0
		}
	}
	return c
}

// Relevance returns r(π,Q) = d(π) × c(π,Q).
func (en *Engine) Relevance(f Feature, seeds []rdf.TermID) float64 {
	d := en.Discriminability(f)
	if d == 0 {
		return 0
	}
	return d * en.Commonality(f, seeds)
}

// FeaturesOf enumerates the semantic features the entity holds: one
// Backward feature per outgoing semantic edge (anchored at the object)
// and one Forward feature per incoming semantic edge (anchored at the
// subject). Metadata predicates and non-entity anchors are skipped.
func (en *Engine) FeaturesOf(e rdf.TermID) []Feature {
	return en.appendFeaturesOf(nil, e)
}

// CandidateFeatures unions the features held by the seeds, deduplicated,
// in deterministic (sorted) order.
func (en *Engine) CandidateFeatures(seeds []rdf.TermID) []Feature {
	var out []Feature
	for _, e := range seeds {
		out = en.appendFeaturesOf(out, e)
	}
	return sortDedupFeatures(out)
}

// appendFeaturesOf is FeaturesOf into a caller-owned buffer.
func (en *Engine) appendFeaturesOf(dst []Feature, e rdf.TermID) []Feature {
	voc := en.g.Voc()
	for _, edge := range en.g.Store().Out(e) {
		if voc.IsMeta(edge.P) || !en.g.IsEntity(edge.Node) {
			continue
		}
		dst = append(dst, Feature{Anchor: edge.Node, Pred: edge.P, Dir: Backward})
	}
	for _, edge := range en.g.Store().In(e) {
		if voc.IsMeta(edge.P) || !en.g.IsEntity(edge.Node) {
			continue
		}
		dst = append(dst, Feature{Anchor: edge.Node, Pred: edge.P, Dir: Forward})
	}
	return dst
}

func sortDedupFeatures(fs []Feature) []Feature {
	slices.SortFunc(fs, func(a, b Feature) int {
		if a.Anchor != b.Anchor {
			return int(a.Anchor) - int(b.Anchor)
		}
		if a.Pred != b.Pred {
			return int(a.Pred) - int(b.Pred)
		}
		return int(a.Dir) - int(b.Dir)
	})
	return slices.Compact(fs)
}

// rankScratch pools the working slices of Rank across calls and
// goroutines (the engine is shared).
type rankScratch struct {
	cands  []Feature
	rs     []float64
	scores []Score
}

var rankPool = sync.Pool{New: func() interface{} { return &rankScratch{} }}

// Rank scores every candidate feature of the seed set and returns the
// topK (all when topK <= 0) in descending relevance, ties broken by
// extent size (smaller first — more discriminative), then the feature's
// identity so the order is total and reproducible. Relevance of the
// candidates is computed in parallel for large candidate sets; the
// result is deterministic. Labels are rendered only for the surviving
// topK features.
func (en *Engine) Rank(seeds []rdf.TermID, topK int) []Score {
	out, _ := en.RankCtx(context.Background(), seeds, topK)
	return out
}

// RankCtx is Rank with cancellation: the scoring passes check the
// context between units of work and the call returns ctx.Err() instead
// of a partial ranking when canceled. Engines whose cache carries a
// frozen catalog rank term-at-a-time over the dense FeatureID space
// (see rank_scatter.go) with byte-identical scores; the body below is
// the naive model, kept as the executable spec and the fallback for
// graphs without a catalog.
func (en *Engine) RankCtx(ctx context.Context, seeds []rdf.TermID, topK int) ([]Score, error) {
	if cat := en.cache.cat; cat != nil {
		return en.rankCatalog(ctx, cat, seeds, topK)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := rankPool.Get().(*rankScratch)
	sc.cands = sc.cands[:0]
	for _, e := range seeds {
		sc.cands = en.appendFeaturesOf(sc.cands, e)
	}
	cands := sortDedupFeatures(sc.cands)
	if cap(sc.rs) < len(cands) {
		sc.rs = make([]float64, len(cands))
	}
	rs := sc.rs[:len(cands)]
	par.For(len(cands), 64, func(lo, hi int) {
		if ctx.Err() != nil {
			return // canceled: skip the chunk, caller reports the error
		}
		for i := lo; i < hi; i++ {
			rs[i] = en.Relevance(cands[i], seeds)
		}
	})
	if err := ctx.Err(); err != nil {
		rankPool.Put(sc)
		return nil, err
	}
	sc.scores = sc.scores[:0]
	for i, f := range cands {
		if rs[i] <= 0 {
			continue
		}
		sc.scores = append(sc.scores, Score{
			Feature:    f,
			R:          rs[i],
			ExtentSize: en.ExtentSize(f),
		})
	}
	n := len(sc.scores)
	out := topk.Select(sc.scores, topK, lessScore)
	if topK <= 0 || topK >= n {
		// Select sorted the scratch buffer in place: copy out so the
		// result survives scratch reuse.
		out = append([]Score(nil), out...)
	}
	for i := range out {
		out[i].Label = en.Label(out[i].Feature)
	}
	rankPool.Put(sc)
	return out, nil
}

// lessScore is the total order features are ranked by.
func lessScore(a, b Score) bool {
	if a.R != b.R {
		return a.R > b.R
	}
	if a.ExtentSize != b.ExtentSize {
		return a.ExtentSize < b.ExtentSize
	}
	if a.Feature.Anchor != b.Feature.Anchor {
		return a.Feature.Anchor < b.Feature.Anchor
	}
	if a.Feature.Pred != b.Feature.Pred {
		return a.Feature.Pred < b.Feature.Pred
	}
	return a.Feature.Dir < b.Feature.Dir
}
