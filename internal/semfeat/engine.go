package semfeat

import (
	"sort"

	"pivote/internal/kg"
	"pivote/internal/rdf"
)

// Options tune the ranking model; the zero value is the paper's model.
type Options struct {
	// Strict disables the error-tolerant category back-off of p(π|e)
	// (ablation A1): a seed either holds the feature or contributes 0.
	Strict bool
	// UniformDiscriminability replaces d(π)=1/‖E(π)‖ with d(π)=1
	// (ablation A2).
	UniformDiscriminability bool
}

// Engine evaluates semantic features over one graph. It memoizes feature
// extents and category back-off probabilities, which dominate the cost of
// ranking. An Engine is not safe for concurrent use; create one per
// goroutine (they share the read-only graph).
type Engine struct {
	g    *kg.Graph
	opts Options

	extents map[Feature][]rdf.TermID
	// catProb memoizes p(π|c) = ‖E(π)∩E(c)‖/‖E(c)‖.
	catProb map[catKey]float64
	// catsBySize memoizes each entity's categories ordered most-specific
	// first; Prob walks this list on every back-off.
	catsBySize map[rdf.TermID][]rdf.TermID
}

type catKey struct {
	f   Feature
	cat rdf.TermID
}

// NewEngine returns an engine with the paper's model (error-tolerant,
// IDF-like discriminability).
func NewEngine(g *kg.Graph) *Engine { return NewEngineWithOptions(g, Options{}) }

// NewEngineWithOptions returns an engine with explicit model options.
func NewEngineWithOptions(g *kg.Graph, opts Options) *Engine {
	return &Engine{
		g:          g,
		opts:       opts,
		extents:    map[Feature][]rdf.TermID{},
		catProb:    map[catKey]float64{},
		catsBySize: map[rdf.TermID][]rdf.TermID{},
	}
}

// Graph exposes the underlying graph.
func (en *Engine) Graph() *kg.Graph { return en.g }

// Options returns the model options in effect.
func (en *Engine) Options() Options { return en.opts }

// Reset drops the memoized extents and probabilities.
func (en *Engine) Reset() {
	en.extents = map[Feature][]rdf.TermID{}
	en.catProb = map[catKey]float64{}
	en.catsBySize = map[rdf.TermID][]rdf.TermID{}
}

// Label renders the feature in anchor:predicate notation.
func (en *Engine) Label(f Feature) string { return Label(en.g, f) }

// Extent returns E(π) as a sorted slice of entity IDs (shared with the
// cache; do not modify). Non-entity nodes (literals, categories, redirect
// stubs) are excluded.
func (en *Engine) Extent(f Feature) []rdf.TermID {
	if ext, ok := en.extents[f]; ok {
		return ext
	}
	var raw []rdf.TermID
	if f.Dir == Backward {
		raw = en.g.Store().Subjects(f.Pred, f.Anchor)
	} else {
		raw = en.g.Store().Objects(f.Anchor, f.Pred)
	}
	ext := make([]rdf.TermID, 0, len(raw))
	for _, id := range raw {
		if en.g.IsEntity(id) {
			ext = append(ext, id)
		}
	}
	en.extents[f] = ext
	return ext
}

// ExtentSize returns ‖E(π)‖.
func (en *Engine) ExtentSize(f Feature) int { return len(en.Extent(f)) }

// Holds reports e ⊨ π: the entity matches the feature's triple pattern.
func (en *Engine) Holds(e rdf.TermID, f Feature) bool {
	if f.Dir == Backward {
		return en.g.Store().Has(e, f.Pred, f.Anchor)
	}
	return en.g.Store().Has(f.Anchor, f.Pred, e)
}

// Discriminability returns d(π) = 1/‖E(π)‖ (or 1 under the A2 ablation).
// Features with empty extents have zero discriminability — they identify
// nothing.
func (en *Engine) Discriminability(f Feature) float64 {
	n := en.ExtentSize(f)
	if n == 0 {
		return 0
	}
	if en.opts.UniformDiscriminability {
		return 1
	}
	return 1 / float64(n)
}

// Prob returns p(π|e): 1 when e holds π; otherwise the error-tolerant
// back-off p(π|c*) over e's best category — the most specific (smallest)
// category of e whose extent overlaps E(π). Strict mode returns 0 for
// non-holding entities.
func (en *Engine) Prob(f Feature, e rdf.TermID) float64 {
	if en.Holds(e, f) {
		return 1
	}
	if en.opts.Strict {
		return 0
	}
	// Scan categories from most to least specific; the first overlapping
	// one is c*.
	for _, cat := range en.categoriesBySize(e) {
		if p := en.probGivenCategory(f, cat); p > 0 {
			return p
		}
	}
	return 0
}

// categoriesBySize returns e's categories ordered most-specific (fewest
// members) first, memoized: Prob walks it once per (feature, entity)
// back-off and candidates are scored against dozens of features.
func (en *Engine) categoriesBySize(e rdf.TermID) []rdf.TermID {
	if cats, ok := en.catsBySize[e]; ok {
		return cats
	}
	cats := append([]rdf.TermID(nil), en.g.CategoriesOf(e)...)
	sort.Slice(cats, func(i, j int) bool {
		ni, nj := len(en.g.CategoryMembers(cats[i])), len(en.g.CategoryMembers(cats[j]))
		if ni != nj {
			return ni < nj
		}
		return cats[i] < cats[j]
	})
	en.catsBySize[e] = cats
	return cats
}

func (en *Engine) probGivenCategory(f Feature, cat rdf.TermID) float64 {
	key := catKey{f, cat}
	if p, ok := en.catProb[key]; ok {
		return p
	}
	members := en.g.CategoryMembers(cat)
	p := 0.0
	if len(members) > 0 {
		inter := rdf.IntersectSorted(en.Extent(f), members)
		p = float64(inter) / float64(len(members))
	}
	en.catProb[key] = p
	return p
}

// Commonality returns c(π,Q) = Π_{e∈Q} p(π|e).
func (en *Engine) Commonality(f Feature, seeds []rdf.TermID) float64 {
	c := 1.0
	for _, e := range seeds {
		c *= en.Prob(f, e)
		if c == 0 {
			return 0
		}
	}
	return c
}

// Relevance returns r(π,Q) = d(π) × c(π,Q).
func (en *Engine) Relevance(f Feature, seeds []rdf.TermID) float64 {
	d := en.Discriminability(f)
	if d == 0 {
		return 0
	}
	return d * en.Commonality(f, seeds)
}

// FeaturesOf enumerates the semantic features the entity holds: one
// Backward feature per outgoing semantic edge (anchored at the object)
// and one Forward feature per incoming semantic edge (anchored at the
// subject). Metadata predicates and non-entity anchors are skipped.
func (en *Engine) FeaturesOf(e rdf.TermID) []Feature {
	var out []Feature
	voc := en.g.Voc()
	for _, edge := range en.g.Store().Out(e) {
		if voc.IsMeta(edge.P) || !en.g.IsEntity(edge.Node) {
			continue
		}
		out = append(out, Feature{Anchor: edge.Node, Pred: edge.P, Dir: Backward})
	}
	for _, edge := range en.g.Store().In(e) {
		if voc.IsMeta(edge.P) || !en.g.IsEntity(edge.Node) {
			continue
		}
		out = append(out, Feature{Anchor: edge.Node, Pred: edge.P, Dir: Forward})
	}
	return out
}

// CandidateFeatures unions the features held by the seeds, deduplicated,
// in deterministic order.
func (en *Engine) CandidateFeatures(seeds []rdf.TermID) []Feature {
	seen := map[Feature]bool{}
	var out []Feature
	for _, e := range seeds {
		for _, f := range en.FeaturesOf(e) {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}

// Rank scores every candidate feature of the seed set and returns the
// topK (all when topK <= 0) in descending relevance, ties broken by
// extent size (smaller first — more discriminative) then label.
func (en *Engine) Rank(seeds []rdf.TermID, topK int) []Score {
	cands := en.CandidateFeatures(seeds)
	scores := make([]Score, 0, len(cands))
	for _, f := range cands {
		r := en.Relevance(f, seeds)
		if r <= 0 {
			continue
		}
		scores = append(scores, Score{
			Feature:    f,
			Label:      en.Label(f),
			R:          r,
			ExtentSize: en.ExtentSize(f),
		})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].R != scores[j].R {
			return scores[i].R > scores[j].R
		}
		if scores[i].ExtentSize != scores[j].ExtentSize {
			return scores[i].ExtentSize < scores[j].ExtentSize
		}
		return scores[i].Label < scores[j].Label
	})
	if topK > 0 && len(scores) > topK {
		scores = scores[:topK]
	}
	return scores
}
