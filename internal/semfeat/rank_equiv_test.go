package semfeat

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/rdf"
	"pivote/internal/synth"
)

// TestRankCatalogEquivalence: the catalog scatter ranker must be
// byte-identical to the naive model — same features, same float64 score
// bits, same labels, same order — across every option combination, seed
// shape and page size, on both the handcrafted fixture and a synthetic
// graph.
func TestRankCatalogEquivalence(t *testing.T) {
	fx := kgtest.Build()
	res := synth.Generate(synth.Scaled(60))

	graphs := []struct {
		name  string
		build func() (seedsSets map[string][]rdf.TermID, naive func(Options) *Engine, catalog func(Options) *Engine)
	}{
		{"fixture", func() (map[string][]rdf.TermID, func(Options) *Engine, func(Options) *Engine) {
			seeds := map[string][]rdf.TermID{
				"empty":      nil,
				"single":     {fx.E("Forrest_Gump")},
				"pair":       {fx.E("Forrest_Gump"), fx.E("Apollo_13")},
				"triple":     {fx.E("Forrest_Gump"), fx.E("Apollo_13"), fx.E("Cast_Away")},
				"person":     {fx.E("Tom_Hanks")},
				"mixedKind":  {fx.E("Forrest_Gump"), fx.E("Tom_Hanks")},
				"duplicate":  {fx.E("Apollo_13"), fx.E("Apollo_13")},
				"nonEntity":  {fx.E("American_films")}, // category node, not an entity
				"mixedNonE":  {fx.E("Forrest_Gump"), fx.E("American_films")},
				"outOfRange": {rdf.TermID(1 << 20)},
				"disjoint":   {fx.E("Forrest_Gump"), fx.E("Inception")},
			}
			cache := NewCatalogCache(fx.Graph)
			return seeds,
				func(o Options) *Engine { return NewEngineWithOptions(fx.Graph, o) },
				func(o Options) *Engine { return NewEngineWithCache(cache, o) }
		}},
		{"synth", func() (map[string][]rdf.TermID, func(Options) *Engine, func(Options) *Engine) {
			films := res.Manifest.Films
			actors := res.Manifest.Actors
			seeds := map[string][]rdf.TermID{
				"single": {films[0]},
				"pair":   {films[1], films[2]},
				"five":   {films[0], films[3], films[5], films[7], films[9]},
				"actors": {actors[0], actors[1]},
				"mixed":  {films[0], actors[0]},
			}
			cache := NewCatalogCache(res.Graph)
			return seeds,
				func(o Options) *Engine { return NewEngineWithOptions(res.Graph, o) },
				func(o Options) *Engine { return NewEngineWithCache(cache, o) }
		}},
	}

	opts := []Options{
		{},
		{Strict: true},
		{UniformDiscriminability: true},
		{Strict: true, UniformDiscriminability: true},
	}
	topKs := []int{0, 1, 3, 7, 1000}

	for _, gspec := range graphs {
		seedSets, naiveOf, catalogOf := gspec.build()
		for _, o := range opts {
			naive := naiveOf(o)
			catalog := catalogOf(o)
			if catalog.Catalog() == nil {
				t.Fatal("catalog engine has no catalog")
			}
			if naive.Catalog() != nil {
				t.Fatal("naive engine unexpectedly has a catalog")
			}
			for name, seeds := range seedSets {
				for _, k := range topKs {
					label := fmt.Sprintf("%s/strict=%v,uniform=%v/%s/k=%d",
						gspec.name, o.Strict, o.UniformDiscriminability, name, k)
					want := naive.Rank(seeds, k)
					got := catalog.Rank(seeds, k)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s: rankings diverge\ncatalog: %+v\nnaive:   %+v", label, got, want)
					}
				}
			}
		}
	}
}

// TestRankCatalogRepeatable: the pooled scratch must not leak state
// between calls — interleaving different seed sets and option engines
// over one shared catalog cache reproduces the first-run results.
func TestRankCatalogRepeatable(t *testing.T) {
	fx := kgtest.Build()
	cache := NewCatalogCache(fx.Graph)
	tolerant := NewEngineWithCache(cache, Options{})
	strict := NewEngineWithCache(cache, Options{Strict: true})
	seedsA := []rdf.TermID{fx.E("Forrest_Gump"), fx.E("Apollo_13")}
	seedsB := []rdf.TermID{fx.E("Tom_Hanks")}

	wantA := tolerant.Rank(seedsA, 0)
	wantB := strict.Rank(seedsB, 5)
	for i := 0; i < 50; i++ {
		if got := tolerant.Rank(seedsA, 0); !reflect.DeepEqual(got, wantA) {
			t.Fatalf("iteration %d: tolerant ranking drifted", i)
		}
		if got := strict.Rank(seedsB, 5); !reflect.DeepEqual(got, wantB) {
			t.Fatalf("iteration %d: strict ranking drifted", i)
		}
	}
}

// TestRankCatalogCancellation: a pre-canceled context returns the
// context error and no ranking, exactly like the naive path.
func TestRankCatalogCancellation(t *testing.T) {
	fx := kgtest.Build()
	en := NewEngineWithCache(NewCatalogCache(fx.Graph), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := en.RankCtx(ctx, []rdf.TermID{fx.E("Forrest_Gump")}, 5)
	if err == nil || out != nil {
		t.Fatalf("canceled rank returned (%v, %v), want (nil, ctx error)", out, err)
	}
}
