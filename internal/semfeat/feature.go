// Package semfeat implements PivotE's semantic features and their ranking
// model (§2.3.1 of the paper).
//
// A semantic feature (SF) π is an anchor entity plus a directional
// predicate, e.g. Tom_Hanks:starring — "the entities that have Tom_Hanks
// as a star". Its extent E(π) is the set of entities matching the triple
// pattern. Features are ranked against a query (a set of seed entities)
// by r(π,Q) = d(π) × c(π,Q), where the discriminability d(π) = 1/‖E(π)‖
// is IDF-like and the commonality c(π,Q) = Π_{e∈Q} p(π|e) multiplies the
// per-seed membership probabilities. p(π|e) is error-tolerant: a seed
// that does not hold π itself is backed off to its best category c*,
// p(π|c*) = ‖E(π)∩E(c*)‖/‖E(c*)‖, so near-miss features still receive
// credit — the property that makes the model robust to incomplete KGs.
package semfeat

import (
	"fmt"

	"pivote/internal/kg"
	"pivote/internal/rdf"
)

// Dir is the direction of a semantic feature's predicate relative to its
// anchor.
type Dir uint8

const (
	// Backward is the paper's canonical form <x, p, e>: the anchor is the
	// object and the extent is the subjects (Tom_Hanks:starring — films
	// that star Tom Hanks).
	Backward Dir = iota
	// Forward is the form <e, p, x>: the anchor is the subject and the
	// extent is the objects (Forrest_Gump:starring — the actors starring
	// in Forrest Gump).
	Forward
)

func (d Dir) String() string {
	if d == Backward {
		return "backward"
	}
	return "forward"
}

// Feature is a semantic feature π. The zero value is not a valid feature.
type Feature struct {
	Anchor rdf.TermID
	Pred   rdf.TermID
	Dir    Dir
}

// Score pairs a feature with its relevance to a query.
type Score struct {
	Feature Feature
	Label   string
	// R is the relevance r(π,Q) = d(π)·c(π,Q).
	R float64
	// ExtentSize is ‖E(π)‖.
	ExtentSize int
}

// Label renders π in the paper's anchor:predicate notation; the inverse
// (Forward) direction is marked with '~' before the predicate, e.g.
// "Forrest_Gump:~starring".
func Label(g *kg.Graph, f Feature) string {
	anchor := g.Dict().Term(f.Anchor).LocalName()
	pred := g.Dict().Term(f.Pred).LocalName()
	if f.Dir == Forward {
		return fmt.Sprintf("%s:~%s", anchor, pred)
	}
	return fmt.Sprintf("%s:%s", anchor, pred)
}
