package semfeat_test

import (
	"reflect"
	"sync"
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/live"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
	"pivote/internal/synth"
)

// TestCatalogSharedRace hammers one frozen catalog from many engines
// with different model options concurrently — the multi-session serving
// shape. Run with -race; every goroutine also asserts its rankings stay
// identical run over run, so pooled-scratch leaks surface as test
// failures even without the race detector.
func TestCatalogSharedRace(t *testing.T) {
	res := synth.Generate(synth.Scaled(60))
	cache := semfeat.NewCatalogCache(res.Graph)
	films := res.Manifest.Films

	optSet := []semfeat.Options{
		{},
		{Strict: true},
		{UniformDiscriminability: true},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			en := semfeat.NewEngineWithCache(cache, optSet[w%len(optSet)])
			seeds := []rdf.TermID{films[w%len(films)], films[(w+3)%len(films)]}
			want := en.Rank(seeds, 10)
			for i := 0; i < 200; i++ {
				if got := en.Rank(seeds, 10); !reflect.DeepEqual(got, want) {
					t.Errorf("worker %d: ranking drifted on iteration %d", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCatalogAcrossCompactionSwap hammers feature ranking while live
// ingest batches land and compaction swaps publish fresh generations,
// each with its own catalog. Readers pin one generation per rank — a pin
// must keep serving its own frozen catalog bit-for-bit even after the
// store has moved on several generations.
func TestCatalogAcrossCompactionSwap(t *testing.T) {
	fx := kgtest.Build()
	s := live.NewStore(fx.Graph, live.Config{})
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()
	starring := dict.LookupIRI("http://pivote.dev/ontology/starring")
	filmType := fx.Store.Objects(fx.E("Forrest_Gump"), voc.Type)[0]
	seeds := []rdf.TermID{fx.E("Forrest_Gump"), fx.E("Apollo_13")}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pinnedGen uint64
			var pinnedWant []semfeat.Score
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen := s.Generation()
				en := semfeat.NewEngineWithCache(gen.Features, semfeat.Options{})
				got := en.Rank(seeds, 8)
				if gen.ID == pinnedGen && pinnedWant != nil {
					if !reflect.DeepEqual(got, pinnedWant) {
						t.Errorf("generation %d ranking changed under ingest", gen.ID)
						return
					}
				} else {
					pinnedGen, pinnedWant = gen.ID, got
				}
				if gen.Catalog == nil {
					t.Error("generation published without a catalog")
					return
				}
			}
		}()
	}
	for i := 0; i < 12; i++ {
		film := dict.Intern(rdf.NewIRI(kgtestFilmIRI(i)))
		batch := []rdf.Triple{
			{S: film, P: voc.Type, O: filmType},
			{S: film, P: starring, O: fx.E("Tom_Hanks")},
		}
		if _, err := s.Ingest(batch, nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.CompactNow(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The final generation's catalog must include the ingested films in
	// the Tom_Hanks:starring extent.
	gen := s.Generation()
	fid := gen.Catalog.Lookup(semfeat.Feature{Anchor: fx.E("Tom_Hanks"), Pred: starring, Dir: semfeat.Backward})
	if fid == semfeat.NoFeature {
		t.Fatal("Tom_Hanks:starring missing from the final catalog")
	}
	if n := gen.Catalog.ExtentSize(fid); n != 6+12 {
		t.Fatalf("final extent size %d, want 18", n)
	}
}

func kgtestFilmIRI(i int) string {
	return "http://pivote.dev/resource/Hammer_Film_" + string(rune('A'+i))
}
