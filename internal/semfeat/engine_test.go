package semfeat

import (
	"math"
	"testing"

	"pivote/internal/kgtest"
	"pivote/internal/rdf"
)

const eps = 1e-12

// feature constructors against the fixture.
func starring(f *kgtest.Fixture, actor string) Feature {
	return Feature{Anchor: f.E(actor), Pred: f.E("p:starring"), Dir: Backward}
}

func directedBy(f *kgtest.Fixture, d string) Feature {
	return Feature{Anchor: f.E(d), Pred: f.E("p:director"), Dir: Backward}
}

func castOf(f *kgtest.Fixture, film string) Feature {
	return Feature{Anchor: f.E(film), Pred: f.E("p:starring"), Dir: Forward}
}

func TestExtentBackward(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	// Tom Hanks stars in six fixture films.
	ext := en.Extent(starring(f, "Tom_Hanks"))
	if len(ext) != 6 {
		t.Fatalf("E(Tom_Hanks:starring) = %d, want 6", len(ext))
	}
	if !rdf.ContainsSorted(ext, f.E("Forrest_Gump")) || !rdf.ContainsSorted(ext, f.E("Philadelphia")) {
		t.Fatal("extent missing an expected film")
	}
	if got := en.ExtentSize(starring(f, "Gary_Sinise")); got != 2 {
		t.Fatalf("E(Gary_Sinise:starring) = %d, want 2", got)
	}
}

func TestExtentForward(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	// Forrest_Gump:~starring = the cast of Forrest Gump.
	ext := en.Extent(castOf(f, "Forrest_Gump"))
	if len(ext) != 3 {
		t.Fatalf("E(Forrest_Gump:~starring) = %d, want 3", len(ext))
	}
}

func TestExtentExcludesNonEntities(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	// Forward feature over a literal-valued predicate has empty extent.
	ext := en.Extent(Feature{Anchor: f.E("Forrest_Gump"), Pred: f.E("p:runtime"), Dir: Forward})
	if len(ext) != 0 {
		t.Fatalf("literal extent = %d, want 0", len(ext))
	}
}

func TestHolds(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	if !en.Holds(f.E("Forrest_Gump"), starring(f, "Tom_Hanks")) {
		t.Fatal("Forrest_Gump must hold Tom_Hanks:starring")
	}
	if en.Holds(f.E("Inception"), starring(f, "Tom_Hanks")) {
		t.Fatal("Inception must not hold Tom_Hanks:starring")
	}
	if !en.Holds(f.E("Tom_Hanks"), castOf(f, "Forrest_Gump")) {
		t.Fatal("Tom_Hanks must hold Forrest_Gump:~starring")
	}
}

func TestDiscriminability(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	if got := en.Discriminability(starring(f, "Tom_Hanks")); math.Abs(got-1.0/6) > eps {
		t.Fatalf("d(Tom_Hanks:starring) = %f, want 1/6", got)
	}
	if got := en.Discriminability(starring(f, "Gary_Sinise")); math.Abs(got-0.5) > eps {
		t.Fatalf("d(Gary_Sinise:starring) = %f, want 1/2", got)
	}
	// Empty extent → zero discriminability.
	empty := Feature{Anchor: f.E("Tom_Hanks"), Pred: f.E("p:director"), Dir: Backward}
	if got := en.Discriminability(empty); got != 0 {
		t.Fatalf("d(empty) = %f, want 0", got)
	}
}

func TestDiscriminabilityUniformAblation(t *testing.T) {
	f := kgtest.Build()
	en := NewEngineWithOptions(f.Graph, Options{UniformDiscriminability: true})
	if got := en.Discriminability(starring(f, "Tom_Hanks")); got != 1 {
		t.Fatalf("uniform d = %f, want 1", got)
	}
}

func TestProbMemberIsOne(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	if got := en.Prob(starring(f, "Tom_Hanks"), f.E("Forrest_Gump")); got != 1 {
		t.Fatalf("p(π|e) for holding entity = %f, want 1", got)
	}
}

func TestProbErrorTolerantBackoff(t *testing.T) {
	// Apollo_13 does not hold Robin_Wright:starring. Its most specific
	// category is Films_directed_by_Ron_Howard = {Apollo_13}, which has
	// empty overlap with E = {Forrest_Gump}; the next category,
	// American_films (8 members, 1 of which is Forrest_Gump), yields 1/8.
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	got := en.Prob(starring(f, "Robin_Wright"), f.E("Apollo_13"))
	if math.Abs(got-1.0/8) > eps {
		t.Fatalf("back-off p = %f, want 1/8", got)
	}
}

func TestProbStrictMode(t *testing.T) {
	f := kgtest.Build()
	en := NewEngineWithOptions(f.Graph, Options{Strict: true})
	if got := en.Prob(starring(f, "Robin_Wright"), f.E("Apollo_13")); got != 0 {
		t.Fatalf("strict p = %f, want 0", got)
	}
	if got := en.Prob(starring(f, "Robin_Wright"), f.E("Forrest_Gump")); got != 1 {
		t.Fatalf("strict p for holder = %f, want 1", got)
	}
}

func TestProbNoCategories(t *testing.T) {
	// People have no categories in the fixture, so back-off fails to 0.
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	if got := en.Prob(starring(f, "Tom_Hanks"), f.E("Gary_Sinise")); got != 0 {
		t.Fatalf("p for category-less entity = %f, want 0", got)
	}
}

func TestCommonalityAndRelevance(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	seeds := []rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}

	// Both seeds hold Gary_Sinise:starring: c = 1, d = 1/2.
	gs := starring(f, "Gary_Sinise")
	if got := en.Commonality(gs, seeds); got != 1 {
		t.Fatalf("c(GS,Q) = %f, want 1", got)
	}
	if got := en.Relevance(gs, seeds); math.Abs(got-0.5) > eps {
		t.Fatalf("r(GS,Q) = %f, want 0.5", got)
	}

	// Robert_Zemeckis:director: Forrest_Gump holds (p=1); Apollo_13 backs
	// off to American_films where 2 of 8 members are Zemeckis films.
	// c = 1 × 2/8, d = 1/2 → r = 1/8.
	rz := directedBy(f, "Robert_Zemeckis")
	if got := en.Relevance(rz, seeds); math.Abs(got-1.0/8) > eps {
		t.Fatalf("r(RZ,Q) = %f, want 1/8", got)
	}

	// Tom_Hanks:starring: both hold, d = 1/6.
	th := starring(f, "Tom_Hanks")
	if got := en.Relevance(th, seeds); math.Abs(got-1.0/6) > eps {
		t.Fatalf("r(TH,Q) = %f, want 1/6", got)
	}
}

func TestCommonalityShortCircuitsOnZero(t *testing.T) {
	f := kgtest.Build()
	en := NewEngineWithOptions(f.Graph, Options{Strict: true})
	seeds := []rdf.TermID{f.E("Forrest_Gump"), f.E("Inception")}
	if got := en.Commonality(starring(f, "Tom_Hanks"), seeds); got != 0 {
		t.Fatalf("c = %f, want 0", got)
	}
}

func TestFeaturesOf(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	feats := en.FeaturesOf(f.E("Forrest_Gump"))
	// Outgoing semantic edges: 3 stars + 1 director + 1 writer = 5
	// Backward features; no semantic incoming edges.
	if len(feats) != 5 {
		t.Fatalf("FeaturesOf(Forrest_Gump) = %d features, want 5", len(feats))
	}
	for _, ft := range feats {
		if ft.Dir != Backward {
			t.Fatalf("unexpected forward feature %+v", ft)
		}
	}
	// Tom_Hanks's features are all Forward (anchored at his films).
	feats = en.FeaturesOf(f.E("Tom_Hanks"))
	if len(feats) != 6 {
		t.Fatalf("FeaturesOf(Tom_Hanks) = %d, want 6", len(feats))
	}
	for _, ft := range feats {
		if ft.Dir != Forward {
			t.Fatalf("unexpected backward feature %+v", ft)
		}
	}
}

func TestRankSingleSeed(t *testing.T) {
	// With one seed every held feature has c=1, so ranking is pure
	// discriminability: extent-1 features first, Tom_Hanks:starring
	// (extent 6) last.
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	scores := en.Rank([]rdf.TermID{f.E("Forrest_Gump")}, 0)
	if len(scores) != 5 {
		t.Fatalf("got %d scored features, want 5", len(scores))
	}
	if scores[0].Label != "Robin_Wright:starring" || scores[1].Label != "Winston_Groom:writer" {
		t.Fatalf("top-2 = %s, %s; want Robin_Wright:starring, Winston_Groom:writer",
			scores[0].Label, scores[1].Label)
	}
	last := scores[len(scores)-1]
	if last.Label != "Tom_Hanks:starring" || math.Abs(last.R-1.0/6) > eps {
		t.Fatalf("last = %+v, want Tom_Hanks:starring at 1/6", last)
	}
}

func TestRankTwoSeedsPrefersSharedSpecificFeature(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	seeds := []rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}
	scores := en.Rank(seeds, 0)
	if len(scores) == 0 {
		t.Fatal("no features ranked")
	}
	// Gary Sinise stars in exactly the two seeds: the strongest feature.
	if scores[0].Label != "Gary_Sinise:starring" {
		t.Fatalf("top feature = %s, want Gary_Sinise:starring", scores[0].Label)
	}
	if math.Abs(scores[0].R-0.5) > eps {
		t.Fatalf("top score = %f, want 0.5", scores[0].R)
	}
	// Tom_Hanks:starring is second (both hold it, d=1/6 beats the 1/8
	// back-off group).
	if scores[1].Label != "Tom_Hanks:starring" {
		t.Fatalf("second feature = %s, want Tom_Hanks:starring", scores[1].Label)
	}
}

func TestRankTopKTruncates(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	scores := en.Rank([]rdf.TermID{f.E("Forrest_Gump")}, 2)
	if len(scores) != 2 {
		t.Fatalf("topK=2 returned %d", len(scores))
	}
}

func TestRankMonotoneNonIncreasing(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	scores := en.Rank([]rdf.TermID{f.E("Forrest_Gump"), f.E("Cast_Away")}, 0)
	for i := 1; i < len(scores); i++ {
		if scores[i].R > scores[i-1].R+eps {
			t.Fatalf("scores not non-increasing at %d: %f > %f", i, scores[i].R, scores[i-1].R)
		}
	}
}

func TestRankStrictSubsetOfTolerant(t *testing.T) {
	// Every feature with positive score under strict mode must score at
	// least as high under the error-tolerant model.
	f := kgtest.Build()
	tolerant := NewEngine(f.Graph)
	strict := NewEngineWithOptions(f.Graph, Options{Strict: true})
	seeds := []rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}
	strictScores := map[Feature]float64{}
	for _, s := range strict.Rank(seeds, 0) {
		strictScores[s.Feature] = s.R
	}
	tolerantScores := map[Feature]float64{}
	for _, s := range tolerant.Rank(seeds, 0) {
		tolerantScores[s.Feature] = s.R
	}
	if len(tolerantScores) < len(strictScores) {
		t.Fatal("tolerant model ranked fewer features than strict")
	}
	for ft, rs := range strictScores {
		if tolerantScores[ft]+eps < rs {
			t.Fatalf("tolerant score below strict for %v: %f < %f", ft, tolerantScores[ft], rs)
		}
	}
}

func TestLabelNotation(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	if got := en.Label(starring(f, "Tom_Hanks")); got != "Tom_Hanks:starring" {
		t.Fatalf("label = %q", got)
	}
	if got := en.Label(castOf(f, "Forrest_Gump")); got != "Forrest_Gump:~starring" {
		t.Fatalf("forward label = %q", got)
	}
}

func TestDirString(t *testing.T) {
	if Backward.String() != "backward" || Forward.String() != "forward" {
		t.Fatal("Dir.String mismatch")
	}
}

func TestResetClearsCaches(t *testing.T) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	_ = en.Extent(starring(f, "Tom_Hanks"))
	en.Reset()
	if got := en.ExtentSize(starring(f, "Tom_Hanks")); got != 6 {
		t.Fatalf("extent after reset = %d, want 6", got)
	}
}

func BenchmarkRankTwoSeeds(b *testing.B) {
	f := kgtest.Build()
	en := NewEngine(f.Graph)
	seeds := []rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := en.Rank(seeds, 10); len(s) == 0 {
			b.Fatal("no features")
		}
	}
}
