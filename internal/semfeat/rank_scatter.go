package semfeat

import (
	"context"
	"slices"
	"sync"

	"pivote/internal/rdf"
	"pivote/internal/topk"
)

// The catalog ranker inverts Rank's candidate×seed probe loop into
// term-at-a-time scatter over the dense FeatureID space, mirroring the
// search scorer (PR 3) and the expand scorer (PR 1):
//
//  1. the candidate set Φ is the union of the seeds' adjacency runs,
//     deduplicated by epoch stamp — no sort, no map, no allocation;
//  2. per seed, p(π|e) lands on every candidate at once: the seed's
//     adjacency run sets the holds bit (p = 1), then — unless Strict —
//     the seed's categories are walked most-specific-first and each
//     category's back-off row is scattered with first-write-wins, which
//     is exactly "the most specific category with p(π|c) > 0";
//  3. the commonality products fold in seed order into a dense
//     accumulator, so every float multiplication happens in the same
//     order, on the same values, as the naive model — scores are
//     byte-identical, which the equivalence suite asserts;
//  4. d(π) folds from the extent-offset array and survivors stream into
//     the shared bounded top-k heap, labels attached post-selection.
//
// All working state lives in a pooled scratch with epoch-stamped arrays
// sized by the catalog's FeatureID space: steady-state ranking performs
// zero allocations beyond the result page.

// catScratch is the reusable dense working state of one catalog rank.
type catScratch struct {
	tick  uint32
	stamp []uint32  // stamp[f] == candidate epoch ⇔ f ∈ Φ this pass
	acc   []float64 // running Π p(π|e) per candidate
	hold  []uint32  // hold[f] == seed pass ⇔ current seed holds f
	boSt  []uint32  // boSt[f] == seed pass ⇔ back-off written for f
	bo    []float64 // back-off p(π|c*) of the current seed
	cands []FeatureID
	heap  topk.Heap[catHit]
}

// catHit is the compact selection record of one scoring survivor. The
// dense FeatureID was assigned in ascending (Anchor, Pred, Dir) order,
// so comparing IDs is exactly the lessScore identity tiebreak — the
// shared bounded heap selects over 16-byte records instead of 48-byte
// Scores, which are materialized (with labels) only post-selection.
type catHit struct {
	r   float64
	ext int32
	fid FeatureID
}

// catHitLess is lessScore over the compact record.
func catHitLess(a, b catHit) bool {
	if a.r != b.r {
		return a.r > b.r
	}
	if a.ext != b.ext {
		return a.ext < b.ext
	}
	return a.fid < b.fid
}

var catScratchPool = sync.Pool{New: func() interface{} { return &catScratch{} }}

// begin sizes the dense arrays for n features and reserves ticks for one
// candidate epoch plus one pass per seed, clearing stamps on wrap.
func (sc *catScratch) begin(n, ticks int) uint32 {
	if len(sc.stamp) < n {
		sc.stamp = make([]uint32, n)
		sc.acc = make([]float64, n)
		sc.hold = make([]uint32, n)
		sc.boSt = make([]uint32, n)
		sc.bo = make([]float64, n)
	}
	if sc.tick > ^uint32(0)-uint32(ticks) {
		for i := range sc.stamp {
			sc.stamp[i] = 0
			sc.hold[i] = 0
			sc.boSt[i] = 0
		}
		sc.tick = 0
	}
	sc.cands = sc.cands[:0]
	sc.tick++
	return sc.tick
}

// rankCatalog is RankCtx over the frozen catalog.
func (en *Engine) rankCatalog(ctx context.Context, cat *Catalog, seeds []rdf.TermID, topK int) ([]Score, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := catScratchPool.Get().(*catScratch)
	epoch := sc.begin(cat.NumFeatures(), len(seeds)+1)

	// Candidate union: every feature some seed holds.
	for _, e := range seeds {
		for _, fid := range cat.FeaturesHeldBy(e) {
			if sc.stamp[fid] != epoch {
				sc.stamp[fid] = epoch
				sc.acc[fid] = 1
				sc.cands = append(sc.cands, fid)
			}
		}
	}

	// Per-seed scatter + fold: p(π|e) for every candidate at once.
	// Candidates whose product hits zero are compacted out — the naive
	// model short-circuits the same way, and every later seed then pays
	// only for candidates that can still score.
	strict := en.opts.Strict
	for _, e := range seeds {
		if err := ctx.Err(); err != nil {
			catScratchPool.Put(sc)
			return nil, err
		}
		sc.tick++
		pass := sc.tick
		for _, fid := range cat.FeaturesHeldBy(e) {
			sc.hold[fid] = pass
		}
		if !strict {
			for _, ct := range cat.CategoriesBySize(e) {
				fids, probs := cat.catRowOf(ct)
				if len(fids) <= 8*len(sc.cands) {
					// Scatter the row: first write wins, so an earlier
					// (more specific) category keeps its p(π|c*).
					for i, fid := range fids {
						if sc.stamp[fid] == epoch && sc.boSt[fid] != pass {
							sc.boSt[fid] = pass
							sc.bo[fid] = probs[i]
						}
					}
					continue
				}
				// The row dwarfs the candidate set (a huge category):
				// gather instead — binary-probe only the candidates still
				// missing a back-off value for this seed.
				for _, fid := range sc.cands {
					if sc.hold[fid] == pass || sc.boSt[fid] == pass || sc.acc[fid] == 0 {
						continue
					}
					if i, ok := slices.BinarySearch(fids, fid); ok {
						sc.boSt[fid] = pass
						sc.bo[fid] = probs[i]
					}
				}
			}
		}
		live := sc.cands[:0]
		for _, fid := range sc.cands {
			if sc.hold[fid] == pass {
				live = append(live, fid) // p = 1: multiplying by one is the identity
				continue
			}
			if sc.acc[fid] == 0 {
				continue // the naive product short-circuited here too
			}
			if !strict && sc.boSt[fid] == pass {
				sc.acc[fid] *= sc.bo[fid]
				if sc.acc[fid] != 0 {
					live = append(live, fid)
				}
			} else {
				sc.acc[fid] = 0
			}
		}
		sc.cands = live
	}
	if err := ctx.Err(); err != nil {
		catScratchPool.Put(sc)
		return nil, err
	}

	// Fold d(π) and stream survivors into the bounded heap.
	uniform := en.opts.UniformDiscriminability
	sc.heap.Reset(topK, catHitLess)
	for _, fid := range sc.cands {
		n := cat.ExtentSize(fid)
		if n == 0 {
			continue // zero discriminability identifies nothing
		}
		d := 1 / float64(n)
		if uniform {
			d = 1
		}
		r := d * sc.acc[fid]
		if r <= 0 {
			continue
		}
		sc.heap.Push(catHit{r: r, ext: int32(n), fid: fid})
	}
	hits := sc.heap.Sorted()
	var out []Score
	if len(hits) > 0 {
		out = make([]Score, len(hits))
		for i, h := range hits {
			out[i] = Score{
				Feature:    cat.FeatureAt(h.fid),
				Label:      cat.LabelOf(h.fid),
				R:          h.r,
				ExtentSize: int(h.ext),
			}
		}
	}
	catScratchPool.Put(sc)
	return out, nil
}
