// Package kgtest provides a small handcrafted movie knowledge graph used
// by tests across the repository. It reproduces the fragment drawn in
// Figure 1-a of the PivotE paper (Forrest Gump, Apollo 13, Tom Hanks,
// Gary Sinise, Robert Zemeckis, ...) extended just enough that every
// ranking formula has non-trivial, hand-checkable values, including the
// Table 1 five-field representation of Forrest_Gump.
package kgtest

import (
	"strings"

	"pivote/internal/kg"
	"pivote/internal/rdf"
)

// Fixture bundles the graph with name→ID lookups for test assertions.
type Fixture struct {
	Graph *kg.Graph
	Store *rdf.Store
	IDs   map[string]rdf.TermID
}

// E returns the ID of the named node, panicking on unknown names so tests
// fail loudly on typos.
func (f *Fixture) E(name string) rdf.TermID {
	id, ok := f.IDs[name]
	if !ok {
		panic("kgtest: unknown fixture node " + name)
	}
	return id
}

// Build constructs the fixture graph.
//
// Films and their casts/directors:
//
//	Forrest_Gump      starring Tom_Hanks, Gary_Sinise, Robin_Wright; director Robert_Zemeckis
//	Apollo_13         starring Tom_Hanks, Gary_Sinise, Kevin_Bacon;  director Ron_Howard
//	Cast_Away         starring Tom_Hanks;                            director Robert_Zemeckis
//	The_Green_Mile    starring Tom_Hanks, Michael_Clarke_Duncan;     director Frank_Darabont
//	Philadelphia      starring Tom_Hanks;                            director Jonathan_Demme
//	Saving_Private_Ryan starring Tom_Hanks, Matt_Damon;              director Steven_Spielberg
//	Inception         starring Leonardo_DiCaprio;                    director Christopher_Nolan
//	Titanic           starring Leonardo_DiCaprio;                    director James_Cameron
//
// All films have type Film; people have type Actor or Director (and
// Person). Categories: American_films for all US films, Films_directed_by_*
// for each director's films, 1994_films for Forrest_Gump.
func Build() *Fixture {
	st := rdf.NewStore(nil)
	d := st.Dict()
	ids := map[string]rdf.TermID{}

	res := func(name string) rdf.TermID {
		if id, ok := ids[name]; ok {
			return id
		}
		id := d.Intern(rdf.NewIRI(kg.ResourceIRI(name)))
		ids[name] = id
		return id
	}
	prop := func(name string) rdf.TermID {
		key := "p:" + name
		if id, ok := ids[key]; ok {
			return id
		}
		id := d.Intern(rdf.NewIRI("http://pivote.dev/ontology/" + name))
		ids[key] = id
		return id
	}
	voc := kg.InternVocab(d)
	lit := func(s string) rdf.TermID { return d.Intern(rdf.NewLiteral(s)) }

	label := func(node rdf.TermID, text string) { st.Add(node, voc.Label, lit(text)) }
	typ := func(node rdf.TermID, t string) { st.Add(node, voc.Type, res(t)) }
	cat := func(node rdf.TermID, c string) { st.Add(node, voc.Subject, res(c)) }

	starring := prop("starring")
	director := prop("director")
	writer := prop("writer")

	type filmSpec struct {
		name     string
		stars    []string
		director string
		cats     []string
	}
	films := []filmSpec{
		{"Forrest_Gump", []string{"Tom_Hanks", "Gary_Sinise", "Robin_Wright"}, "Robert_Zemeckis", []string{"American_films", "1994_films", "Films_directed_by_Robert_Zemeckis"}},
		{"Apollo_13", []string{"Tom_Hanks", "Gary_Sinise", "Kevin_Bacon"}, "Ron_Howard", []string{"American_films", "Films_directed_by_Ron_Howard"}},
		{"Cast_Away", []string{"Tom_Hanks"}, "Robert_Zemeckis", []string{"American_films", "Films_directed_by_Robert_Zemeckis"}},
		{"The_Green_Mile", []string{"Tom_Hanks", "Michael_Clarke_Duncan"}, "Frank_Darabont", []string{"American_films"}},
		{"Philadelphia", []string{"Tom_Hanks"}, "Jonathan_Demme", []string{"American_films"}},
		{"Saving_Private_Ryan", []string{"Tom_Hanks", "Matt_Damon"}, "Steven_Spielberg", []string{"American_films"}},
		{"Inception", []string{"Leonardo_DiCaprio"}, "Christopher_Nolan", []string{"American_films"}},
		{"Titanic", []string{"Leonardo_DiCaprio"}, "James_Cameron", []string{"American_films", "1997_films"}},
	}
	actorSet := map[string]bool{}
	directorSet := map[string]bool{}
	for _, f := range films {
		film := res(f.name)
		typ(film, "Film")
		label(film, strings.ReplaceAll(f.name, "_", " "))
		for _, a := range f.stars {
			st.Add(film, starring, res(a))
			actorSet[a] = true
		}
		st.Add(film, director, res(f.director))
		directorSet[f.director] = true
		for _, c := range f.cats {
			cat(film, c)
		}
	}
	for a := range actorSet {
		typ(res(a), "Actor")
		typ(res(a), "Person")
		label(res(a), strings.ReplaceAll(a, "_", " "))
	}
	for dd := range directorSet {
		typ(res(dd), "Director")
		typ(res(dd), "Person")
		label(res(dd), strings.ReplaceAll(dd, "_", " "))
	}
	// Type and category nodes get labels too.
	for _, t := range []string{"Film", "Actor", "Director", "Person"} {
		label(res(t), t)
	}
	for _, c := range []string{"American_films", "1994_films", "1997_films",
		"Films_directed_by_Robert_Zemeckis", "Films_directed_by_Ron_Howard"} {
		label(res(c), strings.ReplaceAll(c, "_", " "))
	}

	// Table 1 content for Forrest_Gump: attributes, similar entity names.
	gump := res("Forrest_Gump")
	st.Add(gump, prop("runtime"), lit("142 minutes"))
	st.Add(gump, prop("budget"), lit("55 million dollars"))
	st.Add(gump, voc.Abstract, lit("Forrest Gump is a 1994 American film."))
	st.Add(gump, writer, res("Winston_Groom"))
	typ(res("Winston_Groom"), "Writer")
	typ(res("Winston_Groom"), "Person")
	label(res("Winston_Groom"), "Winston Groom")
	label(res("Writer"), "Writer")
	// Redirect/disambiguation sources ("Geenbow", "Gumpian" in the paper).
	geenbow := res("Geenbow")
	label(geenbow, "Geenbow")
	st.Add(geenbow, voc.Redirects, gump)
	gumpian := res("Gumpian")
	label(gumpian, "Gumpian")
	st.Add(gumpian, voc.Disambiguates, gump)

	st.Freeze()
	return &Fixture{Graph: kg.NewGraph(st), Store: st, IDs: ids}
}
