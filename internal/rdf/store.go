package rdf

import (
	"sort"
)

// Triple is a dictionary-encoded RDF statement.
type Triple struct {
	S, P, O TermID
}

// Edge is one half of a triple as seen from a subject or an object:
// (P, Node) where Node is the other endpoint.
type Edge struct {
	P    TermID
	Node TermID
}

// Store holds a set of triples with three access paths:
//
//   - out[s]  = sorted edges (p, o) leaving s     → forward traversal
//   - in[o]   = sorted edges (p, s) entering o    → backward traversal
//   - extents = (p, o) → sorted subjects, (s, p) → sorted objects,
//     materialized lazily from out/in on demand
//
// Adjacency lists are sorted by (P, Node), so the objects of a fixed
// (s, p) — the extent of a forward semantic feature — and the subjects of
// a fixed (p, o) — the extent of a backward one — are contiguous runs
// located with binary search.
//
// A Store is built once and then read concurrently; mutation is not
// goroutine-safe and Freeze must be called before concurrent reads.
type Store struct {
	dict    *Dictionary
	out     map[TermID][]Edge
	in      map[TermID][]Edge
	triples int
	frozen  bool
}

// NewStore returns an empty store sharing (or creating) a dictionary.
// Passing nil creates a fresh dictionary.
func NewStore(dict *Dictionary) *Store {
	if dict == nil {
		dict = NewDictionary()
	}
	return &Store{
		dict: dict,
		out:  make(map[TermID][]Edge),
		in:   make(map[TermID][]Edge),
	}
}

// Dict exposes the store's dictionary.
func (st *Store) Dict() *Dictionary { return st.dict }

// Len reports the number of triples added (including duplicates removed at
// Freeze time, until Freeze runs).
func (st *Store) Len() int { return st.triples }

// Add inserts the triple (s, p, o). Duplicate triples are tolerated and
// removed when the store is frozen.
func (st *Store) Add(s, p, o TermID) {
	if st.frozen {
		panic("rdf: Add after Freeze")
	}
	st.out[s] = append(st.out[s], Edge{P: p, Node: o})
	st.in[o] = append(st.in[o], Edge{P: p, Node: s})
	st.triples++
}

// AddTerms interns the three terms and inserts the triple, returning it.
func (st *Store) AddTerms(s, p, o Term) Triple {
	t := Triple{st.dict.Intern(s), st.dict.Intern(p), st.dict.Intern(o)}
	st.Add(t.S, t.P, t.O)
	return t
}

// Freeze sorts and deduplicates all adjacency lists. It must be called
// after loading and before any query; queries on an unfrozen store panic
// so that missing-Freeze bugs surface immediately.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	dedup := func(m map[TermID][]Edge) int {
		removed := 0
		for k, edges := range m {
			sort.Slice(edges, func(i, j int) bool {
				if edges[i].P != edges[j].P {
					return edges[i].P < edges[j].P
				}
				return edges[i].Node < edges[j].Node
			})
			w := 0
			for i, e := range edges {
				if i > 0 && e == edges[i-1] {
					removed++
					continue
				}
				edges[w] = e
				w++
			}
			m[k] = edges[:w:w]
		}
		return removed
	}
	removedOut := dedup(st.out)
	dedup(st.in)
	st.triples -= removedOut
	st.frozen = true
}

// Frozen reports whether Freeze has run.
func (st *Store) Frozen() bool { return st.frozen }

func (st *Store) mustFrozen() {
	if !st.frozen {
		panic("rdf: query on unfrozen store (call Freeze first)")
	}
}

// Out returns the sorted (p, o) edges leaving s. The returned slice is
// shared with the store and must not be modified.
func (st *Store) Out(s TermID) []Edge {
	st.mustFrozen()
	return st.out[s]
}

// In returns the sorted (p, s) edges entering o. The returned slice is
// shared with the store and must not be modified.
func (st *Store) In(o TermID) []Edge {
	st.mustFrozen()
	return st.in[o]
}

// predRun binary-searches the run of edges with predicate p inside a list
// sorted by (P, Node).
func predRun(edges []Edge, p TermID) []Edge {
	lo := sort.Search(len(edges), func(i int) bool { return edges[i].P >= p })
	hi := sort.Search(len(edges), func(i int) bool { return edges[i].P > p })
	return edges[lo:hi]
}

// Objects returns the sorted objects o of triples (s, p, o). The slice
// aliases internal storage via the Node field; callers receive a fresh
// []TermID copy only when copyOut is true in ObjectsAppend, so here the
// result is materialized into dst (which may be nil).
func (st *Store) Objects(s, p TermID) []TermID {
	st.mustFrozen()
	return nodes(predRun(st.out[s], p), nil)
}

// Subjects returns the sorted subjects s of triples (s, p, o).
func (st *Store) Subjects(p, o TermID) []TermID {
	st.mustFrozen()
	return nodes(predRun(st.in[o], p), nil)
}

// ObjectsAppend appends the objects of (s, p, *) to dst and returns it,
// avoiding an allocation when the caller reuses buffers.
func (st *Store) ObjectsAppend(dst []TermID, s, p TermID) []TermID {
	st.mustFrozen()
	return nodes(predRun(st.out[s], p), dst)
}

// SubjectsAppend appends the subjects of (*, p, o) to dst and returns it.
func (st *Store) SubjectsAppend(dst []TermID, p, o TermID) []TermID {
	st.mustFrozen()
	return nodes(predRun(st.in[o], p), dst)
}

// CountObjects reports |{o : (s,p,o)}| without materializing the set.
func (st *Store) CountObjects(s, p TermID) int {
	st.mustFrozen()
	return len(predRun(st.out[s], p))
}

// CountSubjects reports |{s : (s,p,o)}| without materializing the set.
func (st *Store) CountSubjects(p, o TermID) int {
	st.mustFrozen()
	return len(predRun(st.in[o], p))
}

// Has reports whether the triple (s, p, o) is present.
func (st *Store) Has(s, p, o TermID) bool {
	st.mustFrozen()
	run := predRun(st.out[s], p)
	i := sort.Search(len(run), func(i int) bool { return run[i].Node >= o })
	return i < len(run) && run[i].Node == o
}

// OutDegree reports the number of distinct outgoing edges of s.
func (st *Store) OutDegree(s TermID) int {
	st.mustFrozen()
	return len(st.out[s])
}

// InDegree reports the number of distinct incoming edges of o.
func (st *Store) InDegree(o TermID) int {
	st.mustFrozen()
	return len(st.in[o])
}

// Subjects.
//
// ForEachTriple visits every triple in subject order. The callback must
// not retain the triple beyond the call if it mutates it.
func (st *Store) ForEachTriple(fn func(Triple)) {
	st.mustFrozen()
	ids := make([]TermID, 0, len(st.out))
	for s := range st.out {
		ids = append(ids, s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, s := range ids {
		for _, e := range st.out[s] {
			fn(Triple{S: s, P: e.P, O: e.Node})
		}
	}
}

// NodesWithOut returns all subjects that have at least one outgoing edge.
func (st *Store) NodesWithOut() []TermID {
	st.mustFrozen()
	ids := make([]TermID, 0, len(st.out))
	for s := range st.out {
		ids = append(ids, s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func nodes(run []Edge, dst []TermID) []TermID {
	if dst == nil {
		dst = make([]TermID, 0, len(run))
	}
	for _, e := range run {
		dst = append(dst, e.Node)
	}
	return dst
}

// IntersectSorted computes |a ∩ b| for two ascending TermID slices.
func IntersectSorted(a, b []TermID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// IntersectSortedInto writes a ∩ b into dst (which may be nil) and returns
// it. Both inputs must be ascending and duplicate-free.
func IntersectSortedInto(dst, a, b []TermID) []TermID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst
}

// ContainsSorted reports whether x occurs in the ascending slice a.
func ContainsSorted(a []TermID, x TermID) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	return i < len(a) && a[i] == x
}
