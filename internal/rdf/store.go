package rdf

import (
	"slices"
	"sort"

	"pivote/internal/errs"
)

// Triple is a dictionary-encoded RDF statement.
type Triple struct {
	S, P, O TermID
}

// Edge is one half of a triple as seen from a subject or an object:
// (P, Node) where Node is the other endpoint.
type Edge struct {
	P    TermID
	Node TermID
}

// Store holds a set of triples with three access paths:
//
//   - Out(s)  = sorted edges (p, o) leaving s     → forward traversal
//   - In(o)   = sorted edges (p, s) entering o    → backward traversal
//   - extents = (p, o) → sorted subjects, (s, p) → sorted objects,
//     served as contiguous runs of the adjacency arrays
//
// While loading, triples accumulate in a flat append-only log. Freeze
// sorts the log globally, deduplicates it, and compacts both directions
// into CSR (compressed sparse row) form: one flat []Edge per direction
// plus a dense offset array indexed by TermID, so Out(s) is the slice
// outEdges[outOff[s]:outOff[s+1]] — an O(1) two-load access with no hash
// probe, cache-friendly to scan, and invisible to the garbage collector
// (pointerless arrays instead of a map with tens of thousands of slice
// headers). The build-time log is released at Freeze.
//
// Adjacency runs are sorted by (P, Node), so the objects of a fixed
// (s, p) — the extent of a forward semantic feature — and the subjects of
// a fixed (p, o) — the extent of a backward one — are contiguous runs
// located with binary search.
//
// A Store is built once and then read concurrently; mutation is not
// goroutine-safe and Freeze must be called before concurrent reads.
// After Freeze all read methods are safe for concurrent use.
type Store struct {
	dict *Dictionary

	// Build-time triple log; nil after Freeze.
	log []Triple

	// Frozen CSR adjacency. offsets have length maxID+2 so that the edges
	// of node id are edges[off[id]:off[id+1]] for any id ≤ maxID.
	outOff   []uint32
	inOff    []uint32
	outEdges []Edge
	inEdges  []Edge

	// subjects is the sorted list of nodes with ≥1 outgoing edge,
	// computed once at Freeze (NodesWithOut and ForEachTriple serve it).
	subjects []TermID
	// objects counts the nodes with ≥1 incoming edge (for stats).
	objects int

	triples int
	frozen  bool
}

// NewStore returns an empty store sharing (or creating) a dictionary.
// Passing nil creates a fresh dictionary.
func NewStore(dict *Dictionary) *Store {
	if dict == nil {
		dict = NewDictionary()
	}
	return &Store{dict: dict}
}

// Dict exposes the store's dictionary.
func (st *Store) Dict() *Dictionary { return st.dict }

// Len reports the number of triples added (including duplicates removed at
// Freeze time, until Freeze runs).
func (st *Store) Len() int { return st.triples }

// Add inserts the triple (s, p, o). Duplicate triples are tolerated and
// removed when the store is frozen.
func (st *Store) Add(s, p, o TermID) {
	if st.frozen {
		panic("rdf: Add after Freeze")
	}
	st.log = append(st.log, Triple{S: s, P: p, O: o})
	st.triples++
}

// TryAdd is Add with a typed error instead of a panic: the live ingest
// path routes through it so a misdirected write surfaces as an invalid
// operation rather than crashing the process.
func (st *Store) TryAdd(s, p, o TermID) error {
	if st.frozen {
		return errs.Errf(errs.KindInvalid, "rdf: add after freeze")
	}
	if s == NoTerm || p == NoTerm || o == NoTerm {
		return errs.Errf(errs.KindInvalid, "rdf: triple references the NoTerm sentinel")
	}
	st.Add(s, p, o)
	return nil
}

// AddTerms interns the three terms and inserts the triple, returning it.
func (st *Store) AddTerms(s, p, o Term) Triple {
	t := Triple{st.dict.Intern(s), st.dict.Intern(p), st.dict.Intern(o)}
	st.Add(t.S, t.P, t.O)
	return t
}

// Freeze sorts and deduplicates all adjacency lists and compacts them
// into the CSR arrays. It must be called after loading and before any
// query; queries on an unfrozen store panic so that missing-Freeze bugs
// surface immediately.
func (st *Store) Freeze() {
	if st.frozen {
		return
	}
	log := st.log

	// The offset arrays cover every interned term plus any raw IDs used
	// directly (tests add triples without interning).
	maxID := TermID(st.dict.Len())
	for _, t := range log {
		if t.S > maxID {
			maxID = t.S
		}
		if t.O > maxID {
			maxID = t.O
		}
	}

	st.outOff, st.outEdges = buildCSR(log, maxID, true)
	st.inOff, st.inEdges = buildCSR(log, maxID, false)
	st.triples = len(st.outEdges)

	st.subjects = make([]TermID, 0, 1024)
	for id := TermID(0); id <= maxID; id++ {
		if st.outOff[id+1] > st.outOff[id] {
			st.subjects = append(st.subjects, id)
		}
		if st.inOff[id+1] > st.inOff[id] {
			st.objects++
		}
	}

	st.log = nil
	st.frozen = true
}

// buildCSR counting-sorts the triple log by node (S when forward, O when
// backward), sorts each node's run by (P, Node) and deduplicates it in
// place, returning the compacted offsets and edges. Counting sort keeps
// the node grouping O(n); the per-run sorts are tiny (mean degree), so
// the whole build is near-linear.
func buildCSR(log []Triple, maxID TermID, forward bool) ([]uint32, []Edge) {
	off := make([]uint32, int(maxID)+2)
	for _, t := range log {
		if forward {
			off[t.S+1]++
		} else {
			off[t.O+1]++
		}
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	edges := make([]Edge, len(log))
	cursor := append([]uint32(nil), off[:len(off)-1]...)
	for _, t := range log {
		if forward {
			edges[cursor[t.S]] = Edge{P: t.P, Node: t.O}
			cursor[t.S]++
		} else {
			edges[cursor[t.O]] = Edge{P: t.P, Node: t.S}
			cursor[t.O]++
		}
	}
	w := uint32(0)
	for id := 0; id <= int(maxID); id++ {
		lo, hi := off[id], off[id+1]
		run := edges[lo:hi]
		slices.SortFunc(run, func(a, b Edge) int {
			if a.P != b.P {
				return int(a.P) - int(b.P)
			}
			return int(a.Node) - int(b.Node)
		})
		off[id] = w
		// Compact forward: w never exceeds the run start, so reads stay
		// ahead of writes.
		for i, e := range run {
			if i > 0 && e == run[i-1] {
				continue
			}
			edges[w] = e
			w++
		}
	}
	off[maxID+1] = w
	return off, edges[:w:w]
}

// Frozen reports whether Freeze has run.
func (st *Store) Frozen() bool { return st.frozen }

// CheckFrozen returns a typed error when the store has not been frozen
// yet. Read paths that must not panic on a half-built store (the live
// overlay) gate on it instead of relying on mustFrozen's panic.
func (st *Store) CheckFrozen() error {
	if !st.frozen {
		return errs.Errf(errs.KindInternal, "rdf: query on unfrozen store (call Freeze first)")
	}
	return nil
}

func (st *Store) mustFrozen() {
	if !st.frozen {
		panic("rdf: query on unfrozen store (call Freeze first)")
	}
}

// MaxTermID returns the largest node ID addressable in the frozen
// adjacency arrays. Dense per-node scratch arrays (the expand scorer's
// accumulator) size themselves as MaxTermID()+1.
func (st *Store) MaxTermID() TermID {
	st.mustFrozen()
	return TermID(len(st.outOff) - 2)
}

// Out returns the sorted (p, o) edges leaving s. The returned slice is
// shared with the store and must not be modified.
func (st *Store) Out(s TermID) []Edge {
	st.mustFrozen()
	if int(s)+1 >= len(st.outOff) {
		return nil
	}
	return st.outEdges[st.outOff[s]:st.outOff[s+1]]
}

// In returns the sorted (p, s) edges entering o. The returned slice is
// shared with the store and must not be modified.
func (st *Store) In(o TermID) []Edge {
	st.mustFrozen()
	if int(o)+1 >= len(st.inOff) {
		return nil
	}
	return st.inEdges[st.inOff[o]:st.inOff[o+1]]
}

// PredRun binary-searches the run of edges with predicate p inside a list
// sorted by (P, Node) — the contiguous extent of one semantic feature.
// The live overlay reuses it to slice both the base CSR run and the
// sorted delta run before merging them.
func PredRun(edges []Edge, p TermID) []Edge {
	lo := sort.Search(len(edges), func(i int) bool { return edges[i].P >= p })
	hi := lo + sort.Search(len(edges)-lo, func(i int) bool { return edges[lo+i].P > p })
	return edges[lo:hi]
}

func predRun(edges []Edge, p TermID) []Edge { return PredRun(edges, p) }

// Objects returns the sorted objects o of triples (s, p, o), materialized
// into a fresh slice.
func (st *Store) Objects(s, p TermID) []TermID {
	return nodes(predRun(st.Out(s), p), nil)
}

// Subjects returns the sorted subjects s of triples (s, p, o).
func (st *Store) Subjects(p, o TermID) []TermID {
	return nodes(predRun(st.In(o), p), nil)
}

// ObjectsAppend appends the objects of (s, p, *) to dst and returns it,
// avoiding an allocation when the caller reuses buffers.
func (st *Store) ObjectsAppend(dst []TermID, s, p TermID) []TermID {
	return nodes(predRun(st.Out(s), p), dst)
}

// SubjectsAppend appends the subjects of (*, p, o) to dst and returns it.
func (st *Store) SubjectsAppend(dst []TermID, p, o TermID) []TermID {
	return nodes(predRun(st.In(o), p), dst)
}

// CountObjects reports |{o : (s,p,o)}| without materializing the set.
func (st *Store) CountObjects(s, p TermID) int {
	return len(predRun(st.Out(s), p))
}

// CountSubjects reports |{s : (s,p,o)}| without materializing the set.
func (st *Store) CountSubjects(p, o TermID) int {
	return len(predRun(st.In(o), p))
}

// Has reports whether the triple (s, p, o) is present.
func (st *Store) Has(s, p, o TermID) bool {
	run := predRun(st.Out(s), p)
	i := sort.Search(len(run), func(i int) bool { return run[i].Node >= o })
	return i < len(run) && run[i].Node == o
}

// OutDegree reports the number of distinct outgoing edges of s.
func (st *Store) OutDegree(s TermID) int {
	return len(st.Out(s))
}

// InDegree reports the number of distinct incoming edges of o.
func (st *Store) InDegree(o TermID) int {
	return len(st.In(o))
}

// ForEachTriple visits every triple in subject order. The callback must
// not retain the triple beyond the call if it mutates it.
func (st *Store) ForEachTriple(fn func(Triple)) {
	st.mustFrozen()
	for _, s := range st.subjects {
		for _, e := range st.Out(s) {
			fn(Triple{S: s, P: e.P, O: e.Node})
		}
	}
}

// NodesWithOut returns all subjects that have at least one outgoing edge,
// ascending. The slice is shared with the store and must not be modified.
func (st *Store) NodesWithOut() []TermID {
	st.mustFrozen()
	return st.subjects
}

func nodes(run []Edge, dst []TermID) []TermID {
	if dst == nil {
		dst = make([]TermID, 0, len(run))
	}
	for _, e := range run {
		dst = append(dst, e.Node)
	}
	return dst
}

// IntersectSorted computes |a ∩ b| for two ascending TermID slices.
func IntersectSorted(a, b []TermID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// IntersectSortedInto writes a ∩ b into dst (which may be nil) and returns
// it. Both inputs must be ascending and duplicate-free.
func IntersectSortedInto(dst, a, b []TermID) []TermID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			dst = append(dst, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return dst
}

// ContainsSorted reports whether x occurs in the ascending slice a.
func ContainsSorted(a []TermID, x TermID) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	return i < len(a) && a[i] == x
}
