package rdf

import (
	"errors"
	"fmt"
	"unsafe"

	"pivote/internal/snap"
)

// Generation-snapshot sections for the RDF layer. AppendSections writes
// the dictionary and the frozen CSR store as two checksummed sections;
// OpenStoreSections rebuilds both from an opened mapping with zero
// copies of the bulk arrays on little-endian hosts. This is the v2
// sectioned format — the varint stream in snapshot.go (version 1) stays
// as the portable interchange format; sections are the serving format.
const (
	// SectionDict holds the term dictionary as a flat base region:
	// slot count, per-slot kind bytes, 3n+1 string offsets and one
	// string blob (value/datatype/lang runs back to back).
	SectionDict = "rdf.dict"
	// SectionStore holds the frozen CSR adjacency: both offset arrays,
	// both edge arrays, the subject list and the scalar stats.
	SectionStore = "rdf.store"
)

// AppendSections writes the dictionary and store sections. The store
// must be frozen: sections serialize the CSR arrays, not the build log.
func (st *Store) AppendSections(w *snap.Writer) error {
	if err := st.CheckFrozen(); err != nil {
		return err
	}
	if err := st.dict.appendSection(w); err != nil {
		return err
	}
	w.Begin(SectionStore)
	w.U32s(st.outOff)
	putEdges(w, st.outEdges)
	w.U32s(st.inOff)
	putEdges(w, st.inEdges)
	snap.PutU32Slice(w, st.subjects)
	w.U64(uint64(st.objects))
	w.U64(uint64(st.triples))
	return nil
}

// OpenStoreSections reconstructs a frozen store (and its dictionary)
// from a mapping. Every array aliases the mapping on little-endian
// hosts; the store is immediately queryable. Structural invariants the
// hot paths rely on — offset monotonicity, edge IDs inside the
// dictionary — are validated here so that even a checksum-valid but
// malformed file yields a typed error instead of a panic later.
func OpenStoreSections(m *snap.Mapping) (*Store, error) {
	dict, err := openDictSection(m)
	if err != nil {
		return nil, err
	}
	c, err := m.Section(SectionStore)
	if err != nil {
		return nil, err
	}
	outOff := c.U32s()
	outEdges := readEdges(c)
	inOff := c.U32s()
	inEdges := readEdges(c)
	subjects := snap.U32Slice[TermID](c)
	objects := c.U64()
	triples := c.U64()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if len(outOff) < 2 || len(inOff) != len(outOff) {
		return nil, corruptStore("offset arrays have lengths %d/%d", len(outOff), len(inOff))
	}
	if err := checkOffsets(outOff, len(outEdges), "out"); err != nil {
		return nil, err
	}
	if err := checkOffsets(inOff, len(inEdges), "in"); err != nil {
		return nil, err
	}
	// Edge endpoints must decode through the dictionary and index into
	// the offset arrays; cap at whichever bound is tighter.
	bound := TermID(len(outOff) - 1)
	if slots := TermID(dict.n.Load()); slots < bound {
		bound = slots
	}
	if err := checkEdges(outEdges, bound, "out"); err != nil {
		return nil, err
	}
	if err := checkEdges(inEdges, bound, "in"); err != nil {
		return nil, err
	}
	prev := TermID(0)
	for i, s := range subjects {
		if s >= bound || (i > 0 && s <= prev) {
			return nil, corruptStore("subject list entry %d out of order or range", i)
		}
		prev = s
	}
	if triples != uint64(len(outEdges)) {
		return nil, corruptStore("triple count %d != %d edges", triples, len(outEdges))
	}
	return &Store{
		dict:     dict,
		outOff:   outOff,
		inOff:    inOff,
		outEdges: outEdges,
		inEdges:  inEdges,
		subjects: subjects,
		objects:  int(objects),
		triples:  int(triples),
		frozen:   true,
	}, nil
}

func corruptStore(format string, args ...any) error {
	return errors.Join(snap.ErrCorrupt, fmt.Errorf("rdf: snapshot store: "+format, args...))
}

func checkOffsets(off []uint32, edges int, dir string) error {
	if off[0] != 0 || off[len(off)-1] != uint32(edges) {
		return corruptStore("%s offsets do not span %d edges", dir, edges)
	}
	prev := uint32(0)
	for _, o := range off {
		if o < prev {
			return corruptStore("%s offsets not monotone", dir)
		}
		prev = o
	}
	return nil
}

func checkEdges(edges []Edge, bound TermID, dir string) error {
	for i, e := range edges {
		if e.P == NoTerm || e.P >= bound || e.Node == NoTerm || e.Node >= bound {
			return corruptStore("%s edge %d references term outside dictionary", dir, i)
		}
	}
	return nil
}

// appendSection writes the dictionary as a flat base region. Slot 0 is
// the NoTerm placeholder (empty strings, kind 0); string data for slot
// i occupies blob[off[3i+j]:off[3i+j+1]] for j = value, datatype, lang.
func (d *Dictionary) appendSection(w *snap.Writer) error {
	w.Begin(SectionDict)
	n := int(d.n.Load())
	w.U64(uint64(n))
	w.Records(n, 1, func(i int, dst []byte) {
		if i > 0 {
			dst[0] = byte(d.Term(TermID(i)).Kind)
		}
	})
	off := make([]uint32, 3*n+1)
	var pos uint64
	for i := 1; i < n; i++ {
		t := d.Term(TermID(i))
		off[3*i] = uint32(pos)
		pos += uint64(len(t.Value))
		off[3*i+1] = uint32(pos)
		pos += uint64(len(t.Datatype))
		off[3*i+2] = uint32(pos)
		pos += uint64(len(t.Lang))
	}
	if pos > 0xffffffff {
		return fmt.Errorf("rdf: dictionary string blob exceeds 4 GiB (%d bytes)", pos)
	}
	off[3*n] = uint32(pos)
	w.U32s(off)
	w.StreamBytes(pos, func(emit func([]byte)) {
		for i := 1; i < n; i++ {
			t := d.Term(TermID(i))
			emit(strBytes(t.Value))
			emit(strBytes(t.Datatype))
			emit(strBytes(t.Lang))
		}
	})
	return nil
}

// openDictSection rebuilds a dictionary whose base region aliases the
// mapping. Open cost is O(n) integer validation only — no strings, no
// map; the key map materializes lazily on first Intern/Lookup.
func openDictSection(m *snap.Mapping) (*Dictionary, error) {
	c, err := m.Section(SectionDict)
	if err != nil {
		return nil, err
	}
	n := c.U64()
	kinds := c.Bytes()
	off := c.U32s()
	blob := c.Bytes()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if n == 0 || uint64(len(kinds)) != n || uint64(len(off)) != 3*n+1 {
		return nil, corruptDict("slot count %d vs %d kinds, %d offsets", n, len(kinds), len(off))
	}
	if off[0] != 0 || off[len(off)-1] != uint32(len(blob)) {
		return nil, corruptDict("string offsets do not span the %d-byte blob", len(blob))
	}
	prev := uint32(0)
	for _, o := range off {
		if o < prev {
			return nil, corruptDict("string offsets not monotone")
		}
		prev = o
	}
	for i, k := range kinds {
		if k > byte(Blank) {
			return nil, corruptDict("slot %d has unknown term kind %d", i, k)
		}
	}
	return newDictionaryFromBase(kinds, off, blob), nil
}

func corruptDict(format string, args ...any) error {
	return errors.Join(snap.ErrCorrupt, fmt.Errorf("rdf: snapshot dictionary: "+format, args...))
}

// putEdges writes a length-prefixed edge array. Edge is two uint32s —
// 8 bytes with no padding — so on little-endian hosts the in-memory
// bytes are the wire bytes and the array is written in one shot.
func putEdges(w *snap.Writer, edges []Edge) {
	if snap.HostLittleEndian() && len(edges) > 0 {
		w.RawRecords(len(edges), unsafe.Slice((*byte)(unsafe.Pointer(&edges[0])), 8*len(edges)))
		return
	}
	w.Records(len(edges), 8, func(i int, dst []byte) {
		putU32LE(dst, uint32(edges[i].P))
		putU32LE(dst[4:], uint32(edges[i].Node))
	})
}

// readEdges aliases (little-endian) or decodes a length-prefixed edge
// array out of the section cursor.
func readEdges(c *snap.Cursor) []Edge {
	b, n := c.RecordBytes(8)
	if n == 0 {
		return nil
	}
	if snap.HostLittleEndian() {
		return unsafe.Slice((*Edge)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]Edge, n)
	for i := range out {
		out[i].P = TermID(u32LE(b[8*i:]))
		out[i].Node = TermID(u32LE(b[8*i+4:]))
	}
	return out
}

func strBytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}

func putU32LE(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func u32LE(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
