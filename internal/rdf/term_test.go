package rdf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDictionaryInternIsIdempotent(t *testing.T) {
	d := NewDictionary()
	a := d.Intern(NewIRI("http://x/A"))
	b := d.Intern(NewIRI("http://x/A"))
	if a != b {
		t.Fatalf("interning the same IRI twice gave %d and %d", a, b)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDictionaryDistinguishesKinds(t *testing.T) {
	d := NewDictionary()
	iri := d.Intern(NewIRI("Gump"))
	lit := d.Intern(NewLiteral("Gump"))
	blank := d.Intern(Term{Kind: Blank, Value: "Gump"})
	if iri == lit || iri == blank || lit == blank {
		t.Fatalf("IRI/literal/blank with same lexical form collided: %d %d %d", iri, lit, blank)
	}
}

func TestDictionaryDistinguishesLiteralQualifiers(t *testing.T) {
	d := NewDictionary()
	plain := d.Intern(NewLiteral("1994"))
	typed := d.Intern(NewTypedLiteral("1994", "http://www.w3.org/2001/XMLSchema#gYear"))
	lang := d.Intern(NewLangLiteral("1994", "en"))
	if plain == typed || plain == lang || typed == lang {
		t.Fatal("literals differing only in datatype/lang collided")
	}
}

func TestDictionaryLookupMissing(t *testing.T) {
	d := NewDictionary()
	if got := d.Lookup(NewIRI("http://x/missing")); got != NoTerm {
		t.Fatalf("Lookup of missing term = %d, want NoTerm", got)
	}
	if got := d.LookupIRI("http://x/missing"); got != NoTerm {
		t.Fatalf("LookupIRI of missing term = %d, want NoTerm", got)
	}
}

func TestDictionaryRoundTripProperty(t *testing.T) {
	d := NewDictionary()
	f := func(value, datatype, lang string, kindSel uint8) bool {
		var tm Term
		switch kindSel % 3 {
		case 0:
			tm = NewIRI(value)
		case 1:
			tm = Term{Kind: Literal, Value: value, Datatype: datatype, Lang: lang}
		default:
			tm = Term{Kind: Blank, Value: value}
		}
		id := d.Intern(tm)
		return d.Term(id) == tm && d.Intern(tm) == id && d.Lookup(tm) == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestTermPanicOnInvalidID(t *testing.T) {
	d := NewDictionary()
	defer func() {
		if recover() == nil {
			t.Fatal("Term(NoTerm) did not panic")
		}
	}()
	d.Term(NoTerm)
}

func TestLocalName(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{NewIRI("http://dbpedia.org/resource/Forrest_Gump"), "Forrest_Gump"},
		{NewIRI("http://example.org/ns#starring"), "starring"},
		{NewIRI("plain"), "plain"},
		{NewIRI("http://example.org/trailing/"), "http://example.org/trailing/"},
		{NewLiteral("142 minutes"), "142 minutes"},
	}
	for _, c := range cases {
		if got := c.in.LocalName(); got != c.want {
			t.Errorf("LocalName(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTermStringNTriplesSyntax(t *testing.T) {
	cases := []struct {
		in   Term
		want string
	}{
		{NewIRI("http://x/A"), "<http://x/A>"},
		{NewLiteral("hi"), `"hi"`},
		{NewLangLiteral("hi", "en"), `"hi"@en`},
		{NewTypedLiteral("5", "http://x/int"), `"5"^^<http://x/int>`},
		{NewLiteral("a\"b\\c\nd"), `"a\"b\\c\nd"`},
		{Term{Kind: Blank, Value: "b0"}, "_:b0"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "iri" || Literal.String() != "literal" || Blank.String() != "blank" {
		t.Fatal("TermKind.String mismatch")
	}
	if got := TermKind(9).String(); got != "TermKind(9)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestDictionaryDenseIDs(t *testing.T) {
	d := NewDictionary()
	var ids []TermID
	for i := 0; i < 100; i++ {
		ids = append(ids, d.Intern(NewIRI(string(rune('a'+i%26))+string(rune('0'+i/26)))))
	}
	want := make([]TermID, 100)
	for i := range want {
		want[i] = TermID(i + 1)
	}
	if !reflect.DeepEqual(ids, want) {
		t.Fatal("IDs are not dense starting at 1")
	}
}
