package rdf

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pivote/internal/errs"
)

// quickCheck runs the property with the package's standard settings.
func quickCheck(t *testing.T, f interface{}) error {
	t.Helper()
	return quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(31))})
}

func TestSnapshotRoundTrip(t *testing.T) {
	st, ids := buildFilmStore(t)
	// Add literal and language-tagged terms to exercise every term shape.
	s := ids["Forrest_Gump"]
	p := st.Dict().Intern(NewIRI("http://x/label"))
	_ = p
	var buf bytes.Buffer
	if err := WriteSnapshot(st, &buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != st.Len() {
		t.Fatalf("triples after round trip: %d vs %d", st2.Len(), st.Len())
	}
	if st2.Dict().Len() != st.Dict().Len() {
		t.Fatalf("terms after round trip: %d vs %d", st2.Dict().Len(), st.Dict().Len())
	}
	// Term IDs are preserved exactly, so queries transfer unchanged.
	st.ForEachTriple(func(tr Triple) {
		if !st2.Has(tr.S, tr.P, tr.O) {
			t.Fatalf("triple %v missing after round trip", tr)
		}
	})
	if st2.Dict().Term(s) != st.Dict().Term(s) {
		t.Fatal("term content changed")
	}
}

func TestSnapshotWithLiterals(t *testing.T) {
	st := NewStore(nil)
	d := st.Dict()
	a := d.Intern(NewIRI("http://x/a"))
	p := d.Intern(NewIRI("http://x/p"))
	st.Add(a, p, d.Intern(NewLiteral("plain")))
	st.Add(a, p, d.Intern(NewLangLiteral("hallo", "de")))
	st.Add(a, p, d.Intern(NewTypedLiteral("5", "http://x/int")))
	st.Add(a, p, d.Intern(Term{Kind: Blank, Value: "b0"}))
	st.Freeze()
	var buf bytes.Buffer
	if err := WriteSnapshot(st, &buf); err != nil {
		t.Fatal(err)
	}
	st2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for id := TermID(1); int(id) <= st.Dict().Len(); id++ {
		if st.Dict().Term(id) != st2.Dict().Term(id) {
			t.Fatalf("term %d differs: %v vs %v", id, st.Dict().Term(id), st2.Dict().Term(id))
		}
	}
}

// TestSnapshotRoundTripEdges pins the boundary shapes a growing format
// tends to lose: the empty graph, stores whose *final* dictionary entry
// carries the optional lang/datatype fields (a writer that trims
// trailing empties would pass every other test), and the single-subject
// store whose delta-coded subject stream never advances.
func TestSnapshotRoundTripEdges(t *testing.T) {
	cases := []struct {
		name  string
		build func(st *Store)
	}{
		{"empty graph", func(st *Store) {}},
		{"terms but no triples", func(st *Store) {
			st.Dict().Intern(NewIRI("http://x/orphan"))
			st.Dict().Intern(NewLangLiteral("loose", "en"))
		}},
		{"lang literal as final term", func(st *Store) {
			d := st.Dict()
			s := d.Intern(NewIRI("http://x/s"))
			p := d.Intern(NewIRI("http://x/p"))
			st.Add(s, p, d.Intern(NewLangLiteral("hallo", "de")))
		}},
		{"datatype literal as final term", func(st *Store) {
			d := st.Dict()
			s := d.Intern(NewIRI("http://x/s"))
			p := d.Intern(NewIRI("http://x/p"))
			st.Add(s, p, d.Intern(NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")))
		}},
		{"lang and datatype on one final term", func(st *Store) {
			d := st.Dict()
			s := d.Intern(NewIRI("http://x/s"))
			p := d.Intern(NewIRI("http://x/p"))
			st.Add(s, p, d.Intern(Term{Kind: Literal, Value: "v", Datatype: "http://x/dt", Lang: "en-GB"}))
		}},
		{"single subject", func(st *Store) {
			d := st.Dict()
			s := d.Intern(NewIRI("http://x/only"))
			for i := 0; i < 4; i++ {
				p := d.Intern(NewIRI("http://x/p" + string(rune('0'+i))))
				st.Add(s, p, d.Intern(NewLiteral("o"+string(rune('0'+i)))))
			}
		}},
		{"single triple", func(st *Store) {
			d := st.Dict()
			st.Add(d.Intern(NewIRI("http://x/s")), d.Intern(NewIRI("http://x/p")), d.Intern(NewIRI("http://x/o")))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := NewStore(nil)
			tc.build(st)
			st.Freeze()
			var buf bytes.Buffer
			if err := WriteSnapshot(st, &buf); err != nil {
				t.Fatalf("write: %v", err)
			}
			st2, err := ReadSnapshot(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if !st2.Frozen() {
				t.Fatal("decoded store not frozen")
			}
			if st2.Len() != st.Len() {
				t.Fatalf("triples: %d vs %d", st2.Len(), st.Len())
			}
			if st2.Dict().Len() != st.Dict().Len() {
				t.Fatalf("terms: %d vs %d", st2.Dict().Len(), st.Dict().Len())
			}
			for id := TermID(1); int(id) <= st.Dict().Len(); id++ {
				if a, b := st.Dict().Term(id), st2.Dict().Term(id); a != b {
					t.Fatalf("term %d: %+v vs %+v", id, a, b)
				}
			}
			st.ForEachTriple(func(tr Triple) {
				if !st2.Has(tr.S, tr.P, tr.O) {
					t.Fatalf("triple %v lost", tr)
				}
			})
			// And the decoded store must itself re-snapshot identically —
			// catches decoders that "repair" the data on the way in.
			var buf2 bytes.Buffer
			if err := WriteSnapshot(st2, &buf2); err != nil {
				t.Fatalf("re-write: %v", err)
			}
			if err := WriteSnapshot(st, &buf); err != nil {
				t.Fatalf("write again: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("round-tripped store re-serializes differently")
			}
		})
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad magic":   "NOPE\x01",
		"empty":       "",
		"short magic": "PV",
		"bad version": "PVTE\x09",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadSnapshot(strings.NewReader(in)); err == nil {
				t.Fatal("no error")
			}
		})
	}
}

func TestSnapshotTruncated(t *testing.T) {
	st, _ := buildFilmStore(t)
	var buf bytes.Buffer
	if err := WriteSnapshot(st, &buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail cleanly, never panic.
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestSnapshotUnfrozenError(t *testing.T) {
	// Snapshotting an unfrozen store is a typed error, not a panic: the
	// live path may try to snapshot and must not crash the server.
	st := NewStore(nil)
	if err := WriteSnapshot(st, io.Discard); err == nil {
		t.Fatal("WriteSnapshot on unfrozen store did not error")
	} else if errs.KindOf(err) != errs.KindInternal {
		t.Fatalf("unexpected error kind %q for %v", errs.KindOf(err), err)
	}
}

func TestSnapshotSmallerThanNTriples(t *testing.T) {
	st, _ := buildFilmStore(t)
	var snap, nt bytes.Buffer
	if err := WriteSnapshot(st, &snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteNTriples(st, &nt); err != nil {
		t.Fatal(err)
	}
	if snap.Len() >= nt.Len() {
		t.Fatalf("snapshot (%d bytes) not smaller than N-Triples (%d bytes)", snap.Len(), nt.Len())
	}
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	// Random stores survive the round trip with identical dictionaries
	// and triple sets.
	f := func(raw []uint16, litSel []bool) bool {
		st := NewStore(nil)
		d := st.Dict()
		term := func(v uint16, i int) TermID {
			if i < len(litSel) && litSel[i] {
				return d.Intern(NewLiteral(string(rune('a' + v%17))))
			}
			return d.Intern(NewIRI(string(rune('A' + v%17))))
		}
		for i := 0; i+2 < len(raw); i += 3 {
			s := term(raw[i], i)
			p := d.Intern(NewIRI(string(rune('p' + raw[i+1]%5))))
			o := term(raw[i+2], i+2)
			st.Add(s, p, o)
		}
		st.Freeze()
		var buf bytes.Buffer
		if err := WriteSnapshot(st, &buf); err != nil {
			return false
		}
		st2, err := ReadSnapshot(&buf)
		if err != nil {
			return false
		}
		if st2.Len() != st.Len() || st2.Dict().Len() != st.Dict().Len() {
			return false
		}
		ok := true
		st.ForEachTriple(func(tr Triple) {
			if !st2.Has(tr.S, tr.P, tr.O) {
				ok = false
			}
		})
		return ok
	}
	if err := quickCheck(t, f); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSnapshotRead(b *testing.B) {
	st, _ := buildFilmStore(b)
	var buf bytes.Buffer
	if err := WriteSnapshot(st, &buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
