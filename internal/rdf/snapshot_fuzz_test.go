package rdf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSnapshot feeds arbitrary (and mutated-valid) bytes to the
// snapshot decoder. The contract under fuzz: ReadSnapshot either
// succeeds or returns an error — it must never panic, and a corrupt
// length prefix must not force a large allocation (string reads are
// chunked, so memory grows only as real input arrives; the fuzz
// engine's memory limit enforces the rest).
func FuzzReadSnapshot(f *testing.F) {
	// Seed corpus: a genuine snapshot of a small store, plus truncations
	// and header mutations of it, plus degenerate inputs.
	st := NewStore(nil)
	s := st.Dict().Intern(NewIRI("http://x/s"))
	p := st.Dict().Intern(NewIRI("http://x/p"))
	o := st.Dict().Intern(NewLiteral("object value"))
	lang := st.Dict().Intern(NewLangLiteral("hallo", "de"))
	typed := st.Dict().Intern(NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"))
	st.Add(s, p, o)
	st.Add(s, p, lang)
	st.Add(o, p, typed) // literal as subject is fine at this layer
	st.Freeze()
	var buf bytes.Buffer
	if err := WriteSnapshot(st, &buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{1, 4, 5, 9, len(valid) / 2, len(valid) - 1} {
		if cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	for _, mut := range []int{0, 4, 5, 6, len(valid) - 1} {
		b := append([]byte(nil), valid...)
		b[mut] ^= 0xff
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte("PVTE"))
	f.Add([]byte("PVTE\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01")) // huge term count
	f.Add([]byte("PVTE\x01\x01\x00\xff\xff\xff\xff\x7f"))             // huge string length

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded store must be frozen and internally
		// consistent enough to re-serialize.
		if !st.Frozen() {
			t.Fatal("decoded store not frozen")
		}
		var out strings.Builder
		if err := WriteNTriples(st, &out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
	})
}
