// Package rdf implements the RDF substrate PivotE runs on: an interning
// term dictionary, a triple store with subject/object adjacency and
// pattern indexes, an N-Triples reader/writer, and graph statistics.
//
// The store is dictionary-encoded: every IRI and literal is interned to a
// dense TermID, and all triples are stored as (TermID, TermID, TermID).
// This keeps the in-memory footprint small enough to hold DBpedia-scale
// slices of a knowledge graph and makes set operations over entity IDs
// (the heart of PivotE's semantic-feature ranking) cheap.
package rdf

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"pivote/internal/snap"
)

// TermID is a dense identifier assigned by a Dictionary. The zero value is
// never assigned to a term, so it can be used as a sentinel.
type TermID uint32

// NoTerm is the sentinel TermID returned by lookups that find nothing.
const NoTerm TermID = 0

// TermKind distinguishes the lexical categories of RDF terms.
type TermKind uint8

const (
	// IRI identifies a resource (entity, predicate, class, category).
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) literal value.
	Literal
	// Blank is an anonymous node. The synthetic generator never emits
	// blank nodes but the N-Triples reader accepts them.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a decoded RDF term. Value holds the IRI, the blank-node label or
// the literal's lexical form; Datatype and Lang are only meaningful for
// literals and are empty when absent.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a datatyped literal term.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

// LocalName returns the fragment of an IRI after the last '/' or '#',
// which is how PivotE displays entity identifiers (e.g. "Forrest_Gump").
// For literals it returns the lexical form unchanged.
func (t Term) LocalName() string {
	if t.Kind != IRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexAny(v, "/#"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// key produces the unique dictionary key for the term. Kind and the
// qualifiers are folded in so that an IRI and a literal with the same
// lexical form intern to different IDs.
func (t Term) key() string {
	switch t.Kind {
	case IRI:
		return "i\x00" + t.Value
	case Blank:
		return "b\x00" + t.Value
	default:
		return "l\x00" + t.Value + "\x00" + t.Datatype + "\x00" + t.Lang
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Term storage is chunked so that decoding never races interning: a
// published chunk is immutable forever (chunks are never reallocated or
// moved), the spine slice is copy-on-grow behind an atomic pointer, and a
// slot becomes readable only once the atomic count covers it. Readers
// therefore take no lock at all — Term is two loads plus an atomic — which
// keeps name rendering wait-free while live ingest interns new terms.
const (
	termChunkBits = 12 // 4096 terms per chunk
	termChunkSize = 1 << termChunkBits
	termChunkMask = termChunkSize - 1
)

type termChunk [termChunkSize]Term

// Dictionary interns terms to dense TermIDs and decodes them back. The
// zero value is not usable; call NewDictionary.
//
// A Dictionary is append-only and safe for concurrent use: Intern (and
// the key lookups, which share its map) serialize behind a mutex, while
// decoding an already-published ID is lock-free. IDs are never reassigned
// or reordered, which is what lets live generations share one dictionary —
// a TermID minted at any generation stays valid in every later one.
//
// A dictionary opened from a generation snapshot additionally carries a
// frozen base region: IDs below baseN decode straight out of flat
// kind/offset/blob arrays that alias the snapshot mapping — zero
// materialization at open. The byKey map those IDs would occupy is
// built lazily on the first Intern or Lookup (the decode-only serving
// paths — name rendering, scoring — never pay for it).
type Dictionary struct {
	mu    sync.RWMutex      // guards byKey and spine growth
	byKey map[string]TermID // term key → ID; nil until keyOnce fires
	spine atomic.Pointer[[]*termChunk]
	n     atomic.Uint32 // slots published, including the NoTerm placeholder

	// Frozen base region (snapshot-opened dictionaries only; baseN is 0
	// otherwise). Term id < baseN has kind baseKinds[id] and strings
	// baseBlob[baseOff[3id+j]:baseOff[3id+j+1]] for j = value, datatype,
	// lang. The arrays alias the snapshot mapping and never change.
	baseN     uint32
	baseKinds []byte
	baseOff   []uint32
	baseBlob  []byte

	keyOnce sync.Once
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	d := &Dictionary{byKey: make(map[string]TermID)}
	d.keyOnce.Do(func() {}) // byKey is live from the start
	spine := []*termChunk{new(termChunk)}
	d.spine.Store(&spine)
	d.n.Store(1) // reserve index 0 = NoTerm
	return d
}

// newDictionaryFromBase wraps snapshot arrays as a dictionary whose
// first nSlots IDs (slot 0 = NoTerm placeholder included) decode from
// the flat base region. Construction is O(1): only the spine chunk that
// future Interns will write into is allocated.
func newDictionaryFromBase(kinds []byte, off []uint32, blob []byte) *Dictionary {
	d := &Dictionary{
		baseN:     uint32(len(kinds)),
		baseKinds: kinds,
		baseOff:   off,
		baseBlob:  blob,
	}
	nChunks := (len(kinds) >> termChunkBits) + 1
	spine := make([]*termChunk, nChunks)
	spine[nChunks-1] = new(termChunk)
	d.spine.Store(&spine)
	d.n.Store(uint32(len(kinds)))
	return d
}

// ensureByKey materializes the key map on first use. Safe for
// concurrent callers; Intern and the lookups all route through it.
func (d *Dictionary) ensureByKey() {
	d.keyOnce.Do(func() {
		n := TermID(d.n.Load())
		m := make(map[string]TermID, int(n))
		for id := TermID(1); id < n; id++ {
			m[d.Term(id).key()] = id
		}
		d.mu.Lock()
		d.byKey = m
		d.mu.Unlock()
	})
}

// Intern returns the ID for t, assigning a fresh one on first sight.
func (d *Dictionary) Intern(t Term) TermID {
	d.ensureByKey()
	k := t.key()
	d.mu.RLock()
	id, ok := d.byKey[k]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byKey[k]; ok {
		return id
	}
	n := d.n.Load()
	spine := *d.spine.Load()
	if int(n)>>termChunkBits == len(spine) {
		// Copy-on-grow: readers holding the old spine still see every
		// published chunk pointer.
		grown := make([]*termChunk, len(spine), len(spine)+1)
		copy(grown, spine)
		grown = append(grown, new(termChunk))
		d.spine.Store(&grown)
		spine = grown
	}
	spine[n>>termChunkBits][n&termChunkMask] = t
	id = TermID(n)
	d.byKey[k] = id
	// Publish last: a reader that observes n > id is guaranteed to see the
	// chunk write above.
	d.n.Store(n + 1)
	return id
}

// Lookup returns the ID previously assigned to t, or NoTerm.
func (d *Dictionary) Lookup(t Term) TermID {
	d.ensureByKey()
	d.mu.RLock()
	id := d.byKey[t.key()]
	d.mu.RUnlock()
	return id
}

// LookupIRI returns the ID of the IRI, or NoTerm if it was never interned.
func (d *Dictionary) LookupIRI(iri string) TermID {
	d.ensureByKey()
	d.mu.RLock()
	id := d.byKey["i\x00"+iri]
	d.mu.RUnlock()
	return id
}

// Term decodes an ID. It panics on NoTerm or out-of-range IDs, which
// always indicate a programming error rather than bad data.
func (d *Dictionary) Term(id TermID) Term {
	if id == NoTerm || id >= TermID(d.n.Load()) {
		panic(fmt.Sprintf("rdf: invalid TermID %d (dictionary size %d)", id, d.Len()))
	}
	if id < TermID(d.baseN) {
		j := 3 * int(id)
		return Term{
			Kind:     TermKind(d.baseKinds[id]),
			Value:    snap.UnsafeString(d.baseBlob[d.baseOff[j]:d.baseOff[j+1]]),
			Datatype: snap.UnsafeString(d.baseBlob[d.baseOff[j+1]:d.baseOff[j+2]]),
			Lang:     snap.UnsafeString(d.baseBlob[d.baseOff[j+2]:d.baseOff[j+3]]),
		}
	}
	return (*d.spine.Load())[id>>termChunkBits][id&termChunkMask]
}

// Len reports the number of interned terms.
func (d *Dictionary) Len() int { return int(d.n.Load()) - 1 }
