// Package rdf implements the RDF substrate PivotE runs on: an interning
// term dictionary, a triple store with subject/object adjacency and
// pattern indexes, an N-Triples reader/writer, and graph statistics.
//
// The store is dictionary-encoded: every IRI and literal is interned to a
// dense TermID, and all triples are stored as (TermID, TermID, TermID).
// This keeps the in-memory footprint small enough to hold DBpedia-scale
// slices of a knowledge graph and makes set operations over entity IDs
// (the heart of PivotE's semantic-feature ranking) cheap.
package rdf

import (
	"fmt"
	"strings"
)

// TermID is a dense identifier assigned by a Dictionary. The zero value is
// never assigned to a term, so it can be used as a sentinel.
type TermID uint32

// NoTerm is the sentinel TermID returned by lookups that find nothing.
const NoTerm TermID = 0

// TermKind distinguishes the lexical categories of RDF terms.
type TermKind uint8

const (
	// IRI identifies a resource (entity, predicate, class, category).
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) literal value.
	Literal
	// Blank is an anonymous node. The synthetic generator never emits
	// blank nodes but the N-Triples reader accepts them.
	Blank
)

func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a decoded RDF term. Value holds the IRI, the blank-node label or
// the literal's lexical form; Datatype and Lang are only meaningful for
// literals and are empty when absent.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain literal term.
func NewLiteral(lex string) Term { return Term{Kind: Literal, Value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{Kind: Literal, Value: lex, Lang: lang}
}

// NewTypedLiteral returns a datatyped literal term.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{Kind: Literal, Value: lex, Datatype: datatype}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

// LocalName returns the fragment of an IRI after the last '/' or '#',
// which is how PivotE displays entity identifiers (e.g. "Forrest_Gump").
// For literals it returns the lexical form unchanged.
func (t Term) LocalName() string {
	if t.Kind != IRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexAny(v, "/#"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

// key produces the unique dictionary key for the term. Kind and the
// qualifiers are folded in so that an IRI and a literal with the same
// lexical form intern to different IDs.
func (t Term) key() string {
	switch t.Kind {
	case IRI:
		return "i\x00" + t.Value
	case Blank:
		return "b\x00" + t.Value
	default:
		return "l\x00" + t.Value + "\x00" + t.Datatype + "\x00" + t.Lang
	}
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Dictionary interns terms to dense TermIDs and decodes them back. The
// zero value is not usable; call NewDictionary.
type Dictionary struct {
	byKey map[string]TermID
	terms []Term // index 0 is a placeholder for NoTerm
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{
		byKey: make(map[string]TermID),
		terms: make([]Term, 1), // reserve index 0 = NoTerm
	}
}

// Intern returns the ID for t, assigning a fresh one on first sight.
func (d *Dictionary) Intern(t Term) TermID {
	k := t.key()
	if id, ok := d.byKey[k]; ok {
		return id
	}
	id := TermID(len(d.terms))
	d.terms = append(d.terms, t)
	d.byKey[k] = id
	return id
}

// Lookup returns the ID previously assigned to t, or NoTerm.
func (d *Dictionary) Lookup(t Term) TermID {
	return d.byKey[t.key()]
}

// LookupIRI returns the ID of the IRI, or NoTerm if it was never interned.
func (d *Dictionary) LookupIRI(iri string) TermID {
	return d.byKey["i\x00"+iri]
}

// Term decodes an ID. It panics on NoTerm or out-of-range IDs, which
// always indicate a programming error rather than bad data.
func (d *Dictionary) Term(id TermID) Term {
	if id == NoTerm || int(id) >= len(d.terms) {
		panic(fmt.Sprintf("rdf: invalid TermID %d (dictionary size %d)", id, len(d.terms)-1))
	}
	return d.terms[id]
}

// Len reports the number of interned terms.
func (d *Dictionary) Len() int { return len(d.terms) - 1 }
