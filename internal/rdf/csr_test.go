package rdf

import (
	"math/rand"
	"sync"
	"testing"
)

// TestCSRMatchesNaive inserts random triples (with duplicates) and
// verifies every read accessor against a naive triple-set model.
func TestCSRMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := NewStore(nil)
	type key = Triple
	truth := map[key]bool{}
	const nodes, preds = 40, 5
	for i := 0; i < 600; i++ {
		tr := Triple{
			S: TermID(1 + rng.Intn(nodes)),
			P: TermID(1 + rng.Intn(preds)),
			O: TermID(1 + rng.Intn(nodes)),
		}
		st.Add(tr.S, tr.P, tr.O)
		truth[tr] = true
	}
	st.Freeze()

	if st.Len() != len(truth) {
		t.Fatalf("Len=%d after dedup, want %d", st.Len(), len(truth))
	}
	var walked int
	prev := Triple{}
	first := true
	st.ForEachTriple(func(tr Triple) {
		if !truth[tr] {
			t.Fatalf("ForEachTriple produced alien triple %+v", tr)
		}
		if !first {
			if tr.S < prev.S || (tr.S == prev.S && (tr.P < prev.P || (tr.P == prev.P && tr.O <= prev.O))) {
				t.Fatalf("ForEachTriple out of order: %+v after %+v", tr, prev)
			}
		}
		prev, first = tr, false
		walked++
	})
	if walked != len(truth) {
		t.Fatalf("ForEachTriple visited %d, want %d", walked, len(truth))
	}

	for s := TermID(1); s <= nodes; s++ {
		for p := TermID(1); p <= preds; p++ {
			for o := TermID(1); o <= nodes; o++ {
				if st.Has(s, p, o) != truth[Triple{S: s, P: p, O: o}] {
					t.Fatalf("Has(%d,%d,%d) = %v, want %v", s, p, o, st.Has(s, p, o), truth[Triple{s, p, o}])
				}
			}
			objs := st.Objects(s, p)
			for i, o := range objs {
				if i > 0 && objs[i-1] >= o {
					t.Fatalf("Objects(%d,%d) not strictly ascending: %v", s, p, objs)
				}
				if !truth[Triple{S: s, P: p, O: o}] {
					t.Fatalf("Objects(%d,%d) contains alien %d", s, p, o)
				}
			}
			if len(objs) != st.CountObjects(s, p) {
				t.Fatalf("CountObjects(%d,%d) = %d, want %d", s, p, st.CountObjects(s, p), len(objs))
			}
			subs := st.Subjects(p, s)
			if len(subs) != st.CountSubjects(p, s) {
				t.Fatalf("CountSubjects mismatch at (%d,%d)", p, s)
			}
		}
	}
}

// TestCSROutOfRangeIDs checks that IDs beyond the frozen arrays (e.g.
// terms interned after Freeze) read as empty rather than panicking.
func TestCSROutOfRangeIDs(t *testing.T) {
	st := NewStore(nil)
	a := st.dict.Intern(NewIRI("a"))
	b := st.dict.Intern(NewIRI("b"))
	p := st.dict.Intern(NewIRI("p"))
	st.Add(a, p, b)
	st.Freeze()
	late := st.dict.Intern(NewIRI("late-interned"))
	if got := st.Out(late); len(got) != 0 {
		t.Fatalf("Out(late) = %v, want empty", got)
	}
	if got := st.In(late + 100); len(got) != 0 {
		t.Fatalf("In(far) = %v, want empty", got)
	}
	if st.Has(late, p, b) {
		t.Fatal("Has(late,...) = true")
	}
	if st.OutDegree(late) != 0 || st.InDegree(late) != 0 {
		t.Fatal("degrees of late-interned ID should be 0")
	}
}

func TestCSRMaxTermIDAndSubjects(t *testing.T) {
	st := NewStore(nil)
	a := st.dict.Intern(NewIRI("a"))
	b := st.dict.Intern(NewIRI("b"))
	p := st.dict.Intern(NewIRI("p"))
	st.Add(a, p, b)
	st.Add(b, p, a)
	st.Freeze()
	if max := st.MaxTermID(); max < b {
		t.Fatalf("MaxTermID = %d, want >= %d", max, b)
	}
	subs := st.NodesWithOut()
	if len(subs) != 2 || subs[0] != a || subs[1] != b {
		t.Fatalf("NodesWithOut = %v, want [%d %d]", subs, a, b)
	}
}

// TestCSRConcurrentReads hammers frozen-store reads from many goroutines;
// meaningful under -race.
func TestCSRConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	st := NewStore(nil)
	for i := 0; i < 2000; i++ {
		st.Add(TermID(1+rng.Intn(100)), TermID(1+rng.Intn(8)), TermID(1+rng.Intn(100)))
	}
	st.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				s := TermID(1 + r.Intn(100))
				p := TermID(1 + r.Intn(8))
				_ = st.Out(s)
				_ = st.In(s)
				_ = st.CountObjects(s, p)
				_ = st.Has(s, p, TermID(1+r.Intn(100)))
			}
		}(int64(w))
	}
	wg.Wait()
}
