package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pivote/internal/errs"
)

// scanNTriples drives the shared line loop: blank lines and comment
// lines (starting with '#') are skipped, each remaining line is parsed
// as one triple and handed to fn, and the first malformed line stops
// the scan with an error naming the line number.
func scanNTriples(r io.Reader, fn func(s, p, o Term)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		s, p, o, err := parseNTriple(text)
		if err != nil {
			return fmt.Errorf("rdf: line %d: %w", line, err)
		}
		fn(s, p, o)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("rdf: read: %w", err)
	}
	return nil
}

// ReadNTriples parses a stream of N-Triples lines into the store. The
// reader is line-oriented, which matches the N-Triples grammar. Parsing
// stops at the first malformed line with an error that names the line
// number; triples before the bad line remain added (callers that need
// all-or-nothing use DecodeNTriples).
func ReadNTriples(st *Store, r io.Reader) (int, error) {
	n := 0
	err := scanNTriples(r, func(s, p, o Term) {
		st.AddTerms(s, p, o)
		n++
	})
	return n, err
}

// TermTriple is one parsed but not-yet-interned triple.
type TermTriple struct {
	S, P, O Term
}

// ParseNTriples parses a stream of N-Triples lines into term triples
// without touching any dictionary. A malformed line is a typed invalid
// error naming the line number, and nothing is returned.
func ParseNTriples(r io.Reader) ([]TermTriple, error) {
	var parsed []TermTriple
	if err := scanNTriples(r, func(s, p, o Term) {
		parsed = append(parsed, TermTriple{S: s, P: p, O: o})
	}); err != nil {
		return nil, errs.Errf(errs.KindInvalid, "%v", err)
	}
	return parsed, nil
}

// InternTriples interns every term of the parsed triples, returning the
// dictionary-encoded form.
func InternTriples(dict *Dictionary, ts []TermTriple) []Triple {
	out := make([]Triple, len(ts))
	for i, t := range ts {
		out[i] = Triple{dict.Intern(t.S), dict.Intern(t.P), dict.Intern(t.O)}
	}
	return out
}

// DecodeNTriples parses a stream of N-Triples lines and interns them
// against the dictionary, returning the dictionary-encoded triples. The
// decode is two-phase: every line is parsed before any term is interned,
// so a malformed batch (error names the line number, typed invalid)
// leaves the dictionary completely untouched — the live ingest path
// depends on that to reject bad batches without side effects. Callers
// decoding several batches that must succeed or fail together parse
// each with ParseNTriples first and intern afterwards.
func DecodeNTriples(dict *Dictionary, r io.Reader) ([]Triple, error) {
	parsed, err := ParseNTriples(r)
	if err != nil {
		return nil, err
	}
	return InternTriples(dict, parsed), nil
}

// WriteNTriples serializes every triple in the store in subject order.
func WriteNTriples(st *Store, w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	st.ForEachTriple(func(t Triple) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "%s %s %s .\n",
			st.dict.Term(t.S), st.dict.Term(t.P), st.dict.Term(t.O))
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func parseNTriple(line string) (s, p, o Term, err error) {
	rest := line
	if s, rest, err = parseTerm(rest); err != nil {
		return s, p, o, fmt.Errorf("subject: %w", err)
	}
	if s.Kind == Literal {
		return s, p, o, fmt.Errorf("subject must not be a literal")
	}
	if p, rest, err = parseTerm(rest); err != nil {
		return s, p, o, fmt.Errorf("predicate: %w", err)
	}
	if p.Kind != IRI {
		return s, p, o, fmt.Errorf("predicate must be an IRI")
	}
	if o, rest, err = parseTerm(rest); err != nil {
		return s, p, o, fmt.Errorf("object: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return s, p, o, fmt.Errorf("expected terminating '.', got %q", rest)
	}
	return s, p, o, nil
}

// parseTerm consumes one term from the front of s and returns the
// remainder.
func parseTerm(s string) (Term, string, error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of line")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return NewIRI(s[1:end]), s[end+1:], nil
	case '_':
		if !strings.HasPrefix(s, "_:") {
			return Term{}, "", fmt.Errorf("malformed blank node")
		}
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			end = len(s)
		}
		return Term{Kind: Blank, Value: s[2:end]}, s[end:], nil
	case '"':
		lex, rest, err := parseQuoted(s)
		if err != nil {
			return Term{}, "", err
		}
		t := NewLiteral(lex)
		if strings.HasPrefix(rest, "@") {
			end := strings.IndexAny(rest, " \t")
			if end < 0 {
				end = len(rest)
			}
			t.Lang = rest[1:end]
			rest = rest[end:]
		} else if strings.HasPrefix(rest, "^^<") {
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype IRI")
			}
			t.Datatype = rest[3:end]
			rest = rest[end+1:]
		}
		return t, rest, nil
	default:
		return Term{}, "", fmt.Errorf("unexpected character %q", s[0])
	}
}

// parseQuoted consumes a double-quoted, backslash-escaped string.
func parseQuoted(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("expected opening quote")
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		switch c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		default:
			b.WriteByte(c)
		}
		i++
	}
	return "", "", fmt.Errorf("unterminated literal")
}
