package rdf

import (
	"fmt"
	"sync"
	"testing"
)

// TestDictionaryConcurrent hammers the dictionary with a writer
// interning fresh terms (forcing chunk and spine growth) while readers
// decode every published ID and run key lookups. Run with -race this
// proves the lock-free read path: a reader that observes Len() >= id is
// guaranteed a consistent Term(id).
func TestDictionaryConcurrent(t *testing.T) {
	d := NewDictionary()
	const terms = 9000 // spans several 4096-term chunks
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := d.Len()
				for id := TermID(1); int(id) <= n; id++ {
					tm := d.Term(id)
					if tm.Value == "" {
						t.Errorf("term %d published empty", id)
						return
					}
				}
				_ = d.LookupIRI("http://x/t5")
				_ = d.Lookup(NewLiteral("lit-7"))
			}
		}()
	}

	for i := 0; i < terms; i++ {
		if i%3 == 0 {
			d.Intern(NewLiteral(fmt.Sprintf("lit-%d", i)))
		} else {
			d.Intern(NewIRI(fmt.Sprintf("http://x/t%d", i)))
		}
	}
	close(stop)
	wg.Wait()

	// Interning is idempotent and IDs are dense.
	if got := d.Intern(NewIRI("http://x/t1")); got != d.LookupIRI("http://x/t1") {
		t.Fatal("re-intern changed the ID")
	}
	if d.Len() != terms {
		t.Fatalf("len %d, want %d", d.Len(), terms)
	}
	for id := TermID(1); int(id) <= d.Len(); id++ {
		if d.Term(id).Value == "" {
			t.Fatalf("term %d empty after quiesce", id)
		}
	}
}
