package rdf

import (
	"bytes"
	"strings"
	"testing"
)

const sampleNT = `
# The Figure 1-a fragment.
<http://x/Forrest_Gump> <http://x/starring> <http://x/Tom_Hanks> .
<http://x/Forrest_Gump> <http://x/runtime> "142 minutes" .
<http://x/Forrest_Gump> <http://x/budget> "55"^^<http://www.w3.org/2001/XMLSchema#int> .
<http://x/Forrest_Gump> <http://x/label> "Forrest Gump"@en .
_:b0 <http://x/seeAlso> <http://x/Apollo_13> .
`

func TestReadNTriples(t *testing.T) {
	st := NewStore(nil)
	n, err := ReadNTriples(st, strings.NewReader(sampleNT))
	if err != nil {
		t.Fatalf("ReadNTriples: %v", err)
	}
	if n != 5 {
		t.Fatalf("parsed %d triples, want 5", n)
	}
	st.Freeze()
	gump := st.Dict().LookupIRI("http://x/Forrest_Gump")
	if gump == NoTerm {
		t.Fatal("Forrest_Gump not interned")
	}
	if got := st.OutDegree(gump); got != 4 {
		t.Fatalf("out-degree of Forrest_Gump = %d, want 4", got)
	}
	runtime := st.Dict().LookupIRI("http://x/runtime")
	objs := st.Objects(gump, runtime)
	if len(objs) != 1 {
		t.Fatalf("runtime objects = %d, want 1", len(objs))
	}
	lit := st.Dict().Term(objs[0])
	if !lit.IsLiteral() || lit.Value != "142 minutes" {
		t.Fatalf("runtime literal = %v", lit)
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"literal subject", `"x" <http://p> <http://o> .`},
		{"literal predicate", `<http://s> "p" <http://o> .`},
		{"blank predicate", `<http://s> _:p <http://o> .`},
		{"missing dot", `<http://s> <http://p> <http://o>`},
		{"unterminated iri", `<http://s <http://p> <http://o> .`},
		{"unterminated literal", `<http://s> <http://p> "abc .`},
		{"bad escape", `<http://s> <http://p> "a\qb" .`},
		{"garbage", `hello world .`},
		{"truncated", `<http://s> <http://p>`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := NewStore(nil)
			if _, err := ReadNTriples(st, strings.NewReader(c.line)); err == nil {
				t.Fatalf("no error for %q", c.line)
			}
		})
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	st := NewStore(nil)
	if _, err := ReadNTriples(st, strings.NewReader(sampleNT)); err != nil {
		t.Fatal(err)
	}
	st.Freeze()
	var buf bytes.Buffer
	if err := WriteNTriples(st, &buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(nil)
	n, err := ReadNTriples(st2, &buf)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if n != 5 {
		t.Fatalf("round trip produced %d triples, want 5", n)
	}
	st2.Freeze()
	// Every triple of st must exist in st2 under its own dictionary.
	st.ForEachTriple(func(tr Triple) {
		s := st2.Dict().Lookup(st.Dict().Term(tr.S))
		p := st2.Dict().Lookup(st.Dict().Term(tr.P))
		o := st2.Dict().Lookup(st.Dict().Term(tr.O))
		if s == NoTerm || p == NoTerm || o == NoTerm || !st2.Has(s, p, o) {
			t.Fatalf("triple %v lost in round trip", tr)
		}
	})
}

func TestNTriplesEscapedLiteralsRoundTrip(t *testing.T) {
	st := NewStore(nil)
	s := st.Dict().Intern(NewIRI("http://x/s"))
	p := st.Dict().Intern(NewIRI("http://x/p"))
	o := st.Dict().Intern(NewLiteral("line1\nline2\t\"quoted\" back\\slash"))
	st.Add(s, p, o)
	st.Freeze()
	var buf bytes.Buffer
	if err := WriteNTriples(st, &buf); err != nil {
		t.Fatal(err)
	}
	st2 := NewStore(nil)
	if _, err := ReadNTriples(st2, &buf); err != nil {
		t.Fatalf("re-read escaped literal: %v", err)
	}
	if st2.Dict().Lookup(st.Dict().Term(o)) == NoTerm {
		t.Fatal("escaped literal did not survive the round trip")
	}
}

func TestReadNTriplesSkipsCommentsAndBlank(t *testing.T) {
	st := NewStore(nil)
	in := "# comment only\n\n   \n<http://s> <http://p> <http://o> .\n"
	n, err := ReadNTriples(st, strings.NewReader(in))
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v, want 1 triple and no error", n, err)
	}
}
