package rdf

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// buildFilmStore assembles the paper's Figure 1-a fragment: Forrest Gump,
// Apollo 13, Tom Hanks, Gary Sinise, Robert Zemeckis.
func buildFilmStore(t testing.TB) (*Store, map[string]TermID) {
	t.Helper()
	st := NewStore(nil)
	ids := map[string]TermID{}
	iri := func(name string) TermID {
		if id, ok := ids[name]; ok {
			return id
		}
		id := st.Dict().Intern(NewIRI("http://x/" + name))
		ids[name] = id
		return id
	}
	add := func(s, p, o string) { st.Add(iri(s), iri(p), iri(o)) }
	add("Forrest_Gump", "starring", "Tom_Hanks")
	add("Forrest_Gump", "starring", "Gary_Sinise")
	add("Forrest_Gump", "director", "Robert_Zemeckis")
	add("Apollo_13", "starring", "Tom_Hanks")
	add("Apollo_13", "starring", "Gary_Sinise")
	add("Cast_Away", "starring", "Tom_Hanks")
	add("Cast_Away", "director", "Robert_Zemeckis")
	st.Freeze()
	return st, ids
}

func TestStoreObjectsAndSubjects(t *testing.T) {
	st, ids := buildFilmStore(t)
	stars := st.Objects(ids["Forrest_Gump"], ids["starring"])
	if len(stars) != 2 {
		t.Fatalf("Forrest_Gump starring -> %d objects, want 2", len(stars))
	}
	films := st.Subjects(ids["starring"], ids["Tom_Hanks"])
	if len(films) != 3 {
		t.Fatalf("?film starring Tom_Hanks -> %d subjects, want 3", len(films))
	}
	if !sort.SliceIsSorted(films, func(i, j int) bool { return films[i] < films[j] }) {
		t.Fatal("Subjects result not sorted")
	}
}

func TestStoreCounts(t *testing.T) {
	st, ids := buildFilmStore(t)
	if got := st.CountSubjects(ids["starring"], ids["Tom_Hanks"]); got != 3 {
		t.Fatalf("CountSubjects = %d, want 3", got)
	}
	if got := st.CountObjects(ids["Forrest_Gump"], ids["starring"]); got != 2 {
		t.Fatalf("CountObjects = %d, want 2", got)
	}
	if got := st.CountObjects(ids["Forrest_Gump"], ids["producer"]); got != 0 {
		t.Fatalf("CountObjects for absent predicate = %d, want 0", got)
	}
}

func TestStoreHas(t *testing.T) {
	st, ids := buildFilmStore(t)
	if !st.Has(ids["Apollo_13"], ids["starring"], ids["Gary_Sinise"]) {
		t.Fatal("Has missed an existing triple")
	}
	if st.Has(ids["Apollo_13"], ids["director"], ids["Gary_Sinise"]) {
		t.Fatal("Has reported an absent triple")
	}
}

func TestStoreDeduplicatesOnFreeze(t *testing.T) {
	st := NewStore(nil)
	a := st.Dict().Intern(NewIRI("a"))
	p := st.Dict().Intern(NewIRI("p"))
	b := st.Dict().Intern(NewIRI("b"))
	st.Add(a, p, b)
	st.Add(a, p, b)
	st.Add(a, p, b)
	st.Freeze()
	if st.Len() != 1 {
		t.Fatalf("Len after dedup = %d, want 1", st.Len())
	}
	if got := len(st.Out(a)); got != 1 {
		t.Fatalf("out-degree after dedup = %d, want 1", got)
	}
}

func TestStoreQueryBeforeFreezePanics(t *testing.T) {
	st := NewStore(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("query on unfrozen store did not panic")
		}
	}()
	st.Objects(1, 2)
}

func TestStoreAddAfterFreezePanics(t *testing.T) {
	st := NewStore(nil)
	st.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Freeze did not panic")
		}
	}()
	st.Add(1, 2, 3)
}

func TestStoreInOutSymmetryProperty(t *testing.T) {
	// For random triple sets, every (s,p,o) visible via Out must be
	// visible via In and vice versa, and ForEachTriple must enumerate
	// exactly the deduplicated set.
	f := func(raw []uint16) bool {
		st := NewStore(nil)
		// Map raw bytes into a small ID space to force collisions.
		get := func(v uint16) TermID {
			return st.Dict().Intern(NewIRI(string(rune('a' + v%23))))
		}
		type tr struct{ s, p, o TermID }
		want := map[tr]bool{}
		for i := 0; i+2 < len(raw); i += 3 {
			s, p, o := get(raw[i]), get(raw[i+1]), get(raw[i+2])
			st.Add(s, p, o)
			want[tr{s, p, o}] = true
		}
		st.Freeze()
		got := map[tr]bool{}
		st.ForEachTriple(func(x Triple) { got[tr{x.S, x.P, x.O}] = true })
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			return false
		}
		for k := range want {
			if !st.Has(k.s, k.p, k.o) {
				return false
			}
			if !ContainsSorted(st.Subjects(k.p, k.o), k.s) {
				return false
			}
			if !ContainsSorted(st.Objects(k.s, k.p), k.o) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct {
		a, b []TermID
		want int
	}{
		{nil, nil, 0},
		{[]TermID{1, 2, 3}, nil, 0},
		{[]TermID{1, 2, 3}, []TermID{2, 3, 4}, 2},
		{[]TermID{1, 5, 9}, []TermID{2, 6, 10}, 0},
		{[]TermID{1, 2, 3}, []TermID{1, 2, 3}, 3},
	}
	for _, c := range cases {
		if got := IntersectSorted(c.a, c.b); got != c.want {
			t.Errorf("IntersectSorted(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		into := IntersectSortedInto(nil, c.a, c.b)
		if len(into) != c.want {
			t.Errorf("IntersectSortedInto(%v, %v) has %d items, want %d", c.a, c.b, len(into), c.want)
		}
	}
}

func TestIntersectAgreesWithMapProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := toSortedIDs(xs)
		b := toSortedIDs(ys)
		set := map[TermID]bool{}
		for _, v := range a {
			set[v] = true
		}
		want := 0
		for _, v := range b {
			if set[v] {
				want++
			}
		}
		return IntersectSorted(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func toSortedIDs(xs []uint8) []TermID {
	seen := map[TermID]bool{}
	var out []TermID
	for _, x := range xs {
		id := TermID(x) + 1
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestAppendVariantsReuseBuffer(t *testing.T) {
	st, ids := buildFilmStore(t)
	buf := make([]TermID, 0, 8)
	got := st.SubjectsAppend(buf, ids["starring"], ids["Tom_Hanks"])
	if len(got) != 3 {
		t.Fatalf("SubjectsAppend returned %d, want 3", len(got))
	}
	got2 := st.ObjectsAppend(got[:0], ids["Forrest_Gump"], ids["director"])
	if len(got2) != 1 {
		t.Fatalf("ObjectsAppend returned %d, want 1", len(got2))
	}
}

func TestInOutAccessors(t *testing.T) {
	st, ids := buildFilmStore(t)
	if !st.Frozen() {
		t.Fatal("store should report frozen")
	}
	in := st.In(ids["Tom_Hanks"])
	if len(in) != 3 {
		t.Fatalf("In(Tom_Hanks) = %d edges, want 3", len(in))
	}
	if got := st.InDegree(ids["Tom_Hanks"]); got != 3 {
		t.Fatalf("InDegree = %d, want 3", got)
	}
	if got := st.OutDegree(ids["Forrest_Gump"]); got != 3 {
		t.Fatalf("OutDegree = %d, want 3", got)
	}
	subs := st.NodesWithOut()
	if len(subs) != 3 { // the three films with outgoing edges
		t.Fatalf("NodesWithOut = %d, want 3", len(subs))
	}
	if !sort.SliceIsSorted(subs, func(i, j int) bool { return subs[i] < subs[j] }) {
		t.Fatal("NodesWithOut not sorted")
	}
}

func TestTermKindPredicates(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewIRI("x").IsLiteral() {
		t.Fatal("IRI predicates wrong")
	}
	if !NewLiteral("x").IsLiteral() || NewLiteral("x").IsIRI() {
		t.Fatal("literal predicates wrong")
	}
}

func TestComputeStats(t *testing.T) {
	st, ids := buildFilmStore(t)
	s := ComputeStats(st)
	if s.Triples != 7 {
		t.Fatalf("Triples = %d, want 7", s.Triples)
	}
	if s.Predicates != 2 {
		t.Fatalf("Predicates = %d, want 2", s.Predicates)
	}
	if s.PredicateFreqs[0].P != ids["starring"] || s.PredicateFreqs[0].Count != 5 {
		t.Fatalf("top predicate = %+v, want starring x5", s.PredicateFreqs[0])
	}
	if s.MaxInDegree < 3 {
		t.Fatalf("MaxInDegree = %d, want >= 3 (Tom_Hanks)", s.MaxInDegree)
	}
	sum := s.Summary(st.Dict(), 2)
	if sum == "" {
		t.Fatal("Summary returned empty string")
	}
}

func BenchmarkStoreSubjects(b *testing.B) {
	st, ids := buildFilmStore(b)
	p, o := ids["starring"], ids["Tom_Hanks"]
	var buf []TermID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = st.SubjectsAppend(buf[:0], p, o)
	}
	_ = buf
}
