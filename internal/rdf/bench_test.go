package rdf

import (
	"math/rand"
	"testing"
)

// benchTriples builds a deterministic random edge set shaped like a KG
// slice: 200k triples over 20k nodes and 40 predicates.
func benchTriples() []Triple {
	rng := rand.New(rand.NewSource(7))
	const (
		nodes   = 20000
		preds   = 40
		triples = 200000
	)
	out := make([]Triple, triples)
	for i := range out {
		out[i] = Triple{
			S: TermID(1 + rng.Intn(nodes)),
			P: TermID(1 + rng.Intn(preds)),
			O: TermID(1 + rng.Intn(nodes)),
		}
	}
	return out
}

// BenchmarkFreezeCSR measures Freeze — sort, dedup and (post-refactor)
// CSR compaction — excluding the Add loop.
func BenchmarkFreezeCSR(b *testing.B) {
	ts := benchTriples()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := NewStore(nil)
		for _, t := range ts {
			st.Add(t.S, t.P, t.O)
		}
		b.StartTimer()
		st.Freeze()
	}
}

// BenchmarkStoreReads measures the frozen read path: Out scans plus Has
// point lookups, the two accesses the expand hot loop leans on.
func BenchmarkStoreReads(b *testing.B) {
	ts := benchTriples()
	st := NewStore(nil)
	for _, t := range ts {
		st.Add(t.S, t.P, t.O)
	}
	st.Freeze()
	b.ReportAllocs()
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		t := ts[i%len(ts)]
		acc += len(st.Out(t.S))
		if st.Has(t.S, t.P, t.O) {
			acc++
		}
	}
	if acc < 0 {
		b.Fatal("impossible")
	}
}
