package rdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary snapshot format. N-Triples is the interchange format; snapshots
// are the fast path for repeatedly serving the same graph (they skip
// string parsing and re-interning — loading is one pass of varint
// decoding).
//
// Layout (all integers unsigned varints unless noted):
//
//	magic   "PVTE" + version byte
//	nTerms  then per term: kind byte, value, datatype, lang (len-prefixed)
//	nTriples then per triple: S, P, O as deltas — triples are emitted in
//	        (S,P,O) order, so S is delta-coded against the previous S and
//	        P/O restart per subject run
const (
	snapshotMagic   = "PVTE"
	snapshotVersion = 1
)

// WriteSnapshot serializes the frozen store. An unfrozen store is a
// typed error rather than a panic: snapshotting is an I/O operation
// servers call on live-path stores.
func WriteSnapshot(st *Store, w io.Writer) error {
	if err := st.CheckFrozen(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	writeString := func(s string) error {
		if err := writeUvarint(uint64(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}

	// Capture the dictionary length once: the dictionary is shared and
	// append-only, so a concurrent ingest may intern terms while we
	// write. The frozen store's triples only reference terms interned
	// before its Freeze, all ≤ this capture, so prefix and loop agree
	// and the snapshot stays self-consistent.
	d := st.dict
	nTerms := d.Len()
	if err := writeUvarint(uint64(nTerms)); err != nil {
		return err
	}
	for id := TermID(1); int(id) <= nTerms; id++ {
		t := d.Term(id)
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return err
		}
		if err := writeString(t.Value); err != nil {
			return err
		}
		if err := writeString(t.Datatype); err != nil {
			return err
		}
		if err := writeString(t.Lang); err != nil {
			return err
		}
	}

	if err := writeUvarint(uint64(st.Len())); err != nil {
		return err
	}
	var prevS TermID
	var werr error
	st.ForEachTriple(func(t Triple) {
		if werr != nil {
			return
		}
		// Delta-code subjects (sorted ascending); P and O raw.
		if werr = writeUvarint(uint64(t.S - prevS)); werr != nil {
			return
		}
		prevS = t.S
		if werr = writeUvarint(uint64(t.P)); werr != nil {
			return
		}
		werr = writeUvarint(uint64(t.O))
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a snapshot into a fresh, frozen store.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("rdf: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("rdf: not a snapshot (magic %q)", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("rdf: unsupported snapshot version %d", version)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<30 {
			return "", fmt.Errorf("rdf: implausible string length %d", n)
		}
		// Read in bounded chunks so a corrupt length prefix cannot force a
		// large allocation: memory grows only as actual input arrives, and
		// a truncated stream fails after at most one chunk of slack.
		const chunk = 64 * 1024
		var b []byte
		for remaining := int(n); remaining > 0; {
			step := remaining
			if step > chunk {
				step = chunk
			}
			start := len(b)
			b = append(b, make([]byte, step)...)
			if _, err := io.ReadFull(br, b[start:]); err != nil {
				return "", err
			}
			remaining -= step
		}
		return string(b), nil
	}

	st := NewStore(nil)
	nTerms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("rdf: term count: %w", err)
	}
	for i := uint64(0); i < nTerms; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("rdf: term %d: %w", i, err)
		}
		if TermKind(kind) > Blank {
			return nil, fmt.Errorf("rdf: term %d: bad kind %d", i, kind)
		}
		value, err := readString()
		if err != nil {
			return nil, fmt.Errorf("rdf: term %d value: %w", i, err)
		}
		datatype, err := readString()
		if err != nil {
			return nil, fmt.Errorf("rdf: term %d datatype: %w", i, err)
		}
		lang, err := readString()
		if err != nil {
			return nil, fmt.Errorf("rdf: term %d lang: %w", i, err)
		}
		got := st.dict.Intern(Term{Kind: TermKind(kind), Value: value, Datatype: datatype, Lang: lang})
		if got != TermID(i+1) {
			return nil, fmt.Errorf("rdf: snapshot contains duplicate term at %d", i)
		}
	}

	nTriples, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("rdf: triple count: %w", err)
	}
	maxID := uint64(st.dict.Len())
	var prevS uint64
	for i := uint64(0); i < nTriples; i++ {
		ds, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("rdf: triple %d: %w", i, err)
		}
		s := prevS + ds
		prevS = s
		p, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("rdf: triple %d: %w", i, err)
		}
		o, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("rdf: triple %d: %w", i, err)
		}
		if s == 0 || s > maxID || p == 0 || p > maxID || o == 0 || o > maxID {
			return nil, fmt.Errorf("rdf: triple %d references term out of range", i)
		}
		st.Add(TermID(s), TermID(p), TermID(o))
	}
	st.Freeze()
	return st, nil
}
