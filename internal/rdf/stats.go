package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the shape of a frozen store. PivotE uses these numbers
// to size caches and the experiment harness prints them alongside every
// measurement so that results are interpretable.
type Stats struct {
	Triples        int
	Terms          int
	Subjects       int
	Objects        int
	Predicates     int
	MaxOutDegree   int
	MaxInDegree    int
	MeanOutDegree  float64
	PredicateFreqs []PredicateFreq // descending by count
}

// PredicateFreq is the usage count of one predicate.
type PredicateFreq struct {
	P     TermID
	Count int
}

// ComputeStats scans the store once and returns its statistics.
func ComputeStats(st *Store) Stats {
	st.mustFrozen()
	var s Stats
	s.Triples = st.Len()
	s.Terms = st.dict.Len()
	s.Subjects = len(st.subjects)
	s.Objects = st.objects
	predCount := make(map[TermID]int)
	totalOut := 0
	for _, sub := range st.subjects {
		edges := st.Out(sub)
		if len(edges) > s.MaxOutDegree {
			s.MaxOutDegree = len(edges)
		}
		totalOut += len(edges)
		for _, e := range edges {
			predCount[e.P]++
		}
	}
	for id := 1; id < len(st.inOff); id++ {
		if deg := int(st.inOff[id] - st.inOff[id-1]); deg > s.MaxInDegree {
			s.MaxInDegree = deg
		}
	}
	if s.Subjects > 0 {
		s.MeanOutDegree = float64(totalOut) / float64(s.Subjects)
	}
	s.Predicates = len(predCount)
	s.PredicateFreqs = make([]PredicateFreq, 0, len(predCount))
	for p, c := range predCount {
		s.PredicateFreqs = append(s.PredicateFreqs, PredicateFreq{P: p, Count: c})
	}
	sort.Slice(s.PredicateFreqs, func(i, j int) bool {
		if s.PredicateFreqs[i].Count != s.PredicateFreqs[j].Count {
			return s.PredicateFreqs[i].Count > s.PredicateFreqs[j].Count
		}
		return s.PredicateFreqs[i].P < s.PredicateFreqs[j].P
	})
	return s
}

// Summary renders the statistics as a short human-readable block, decoding
// the top predicates through the dictionary.
func (s Stats) Summary(d *Dictionary, topPredicates int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "triples=%d terms=%d subjects=%d objects=%d predicates=%d\n",
		s.Triples, s.Terms, s.Subjects, s.Objects, s.Predicates)
	fmt.Fprintf(&b, "out-degree: mean=%.2f max=%d; in-degree: max=%d\n",
		s.MeanOutDegree, s.MaxOutDegree, s.MaxInDegree)
	n := topPredicates
	if n > len(s.PredicateFreqs) {
		n = len(s.PredicateFreqs)
	}
	for i := 0; i < n; i++ {
		pf := s.PredicateFreqs[i]
		fmt.Fprintf(&b, "  %-40s %d\n", d.Term(pf.P).LocalName(), pf.Count)
	}
	return b.String()
}
