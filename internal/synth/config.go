// Package synth generates deterministic, DBpedia-like synthetic knowledge
// graphs. The PivotE paper demonstrates on DBpedia, which we cannot ship;
// the generator reproduces the statistical structure PivotE exploits —
// entities labelled with types, types coupled through specific relations
// (films—starring→actors, films—director→directors, people—birthPlace→
// cities, ...), Zipfian popularity so some anchors (prolific actors,
// studios) have large semantic-feature extents while most are rare,
// categories that group entities into human-meaningful overlapping sets,
// and redirect/disambiguation stubs that feed the "similar entity names"
// search field.
//
// Generation is fully deterministic for a (Config, Seed) pair: iteration
// never ranges over maps and all randomness flows from one seeded source.
// A small paper-anchor cluster (Forrest Gump, Tom Hanks, Apollo 13, ...)
// is embedded verbatim so that the paper's running examples and Table 1
// can be reproduced name-for-name at any scale.
package synth

// Config sizes the generated graph. Derived counts keep DBpedia-like
// proportions; use DefaultConfig or Scaled rather than filling fields by
// hand unless a test needs a specific shape.
type Config struct {
	Seed int64

	Films        int
	Actors       int
	Directors    int
	Writers      int
	Composers    int
	Studios      int
	Cities       int
	Universities int

	// StarsPerFilmMax bounds the cast size (uniform 1..max, Zipf-chosen
	// actors so popular actors accumulate many films).
	StarsPerFilmMax int

	// RedirectEvery creates one redirect stub per this many entities
	// (0 disables). DisambiguateEvery likewise for disambiguation pages.
	RedirectEvery     int
	DisambiguateEvery int

	// DropRelationRate simulates knowledge-graph incompleteness: each
	// film's genre and country relation edge is independently omitted
	// with this probability while the derived category membership is
	// kept — exactly the gap the paper's error-tolerant p(π|e) bridges.
	// Real DBpedia slices show 10–20% of such missing links.
	DropRelationRate float64

	// AnchorCluster embeds the paper's Forrest-Gump cluster.
	AnchorCluster bool
}

// DefaultConfig returns the configuration used by examples and the
// default experiment harness: ~2k films, ~4.3k entities total.
func DefaultConfig() Config { return Scaled(2000) }

// Scaled derives a config whose film count is n and whose other
// populations follow fixed DBpedia-like ratios. Total entity count is
// roughly 2.2×n.
func Scaled(n int) Config {
	if n < 10 {
		n = 10
	}
	return Config{
		Seed:              42,
		Films:             n,
		Actors:            n / 2,
		Directors:         max(4, n/12),
		Writers:           max(4, n/16),
		Composers:         max(3, n/25),
		Studios:           max(3, n/50),
		Cities:            max(8, n/20),
		Universities:      max(4, n/60),
		StarsPerFilmMax:   6,
		RedirectEvery:     10,
		DisambiguateEvery: 40,
		DropRelationRate:  0.15,
		AnchorCluster:     true,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
