package synth

import (
	"bytes"
	"fmt"
	"testing"

	"pivote/internal/rdf"
)

func smallConfig() Config {
	c := Scaled(150)
	c.Seed = 7
	return c
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if a.Store.Len() != b.Store.Len() {
		t.Fatalf("triple counts differ: %d vs %d", a.Store.Len(), b.Store.Len())
	}
	var bufA, bufB bytes.Buffer
	if err := rdf.WriteNTriples(a.Store, &bufA); err != nil {
		t.Fatal(err)
	}
	if err := rdf.WriteNTriples(b.Store, &bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("same config produced different serializations")
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	c1 := smallConfig()
	c2 := smallConfig()
	c2.Seed = 8
	a := Generate(c1)
	b := Generate(c2)
	var bufA, bufB bytes.Buffer
	if err := rdf.WriteNTriples(a.Store, &bufA); err != nil {
		t.Fatal(err)
	}
	if err := rdf.WriteNTriples(b.Store, &bufB); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGeneratePopulationCounts(t *testing.T) {
	cfg := smallConfig()
	r := Generate(cfg)
	m := r.Manifest
	// Anchor cluster adds 5 films, 6 actors, 4 directors, 1 writer.
	if got, want := len(m.Films), cfg.Films+5; got != want {
		t.Fatalf("films = %d, want %d", got, want)
	}
	if got, want := len(m.Actors), cfg.Actors+6; got != want {
		t.Fatalf("actors = %d, want %d", got, want)
	}
	if got, want := len(m.Directors), cfg.Directors+4; got != want {
		t.Fatalf("directors = %d, want %d", got, want)
	}
	if len(m.Genres) != 20 || len(m.Countries) != 30 || len(m.Awards) != 15 {
		t.Fatalf("fixed vocab sizes wrong: %d genres %d countries %d awards",
			len(m.Genres), len(m.Countries), len(m.Awards))
	}
}

func TestGenerateAnchorClusterPresent(t *testing.T) {
	r := Generate(smallConfig())
	g := r.Graph
	gump := g.EntityByName("Forrest_Gump")
	if gump == rdf.NoTerm {
		t.Fatal("Forrest_Gump missing")
	}
	hanks := g.EntityByName("Tom_Hanks")
	if hanks == rdf.NoTerm {
		t.Fatal("Tom_Hanks missing")
	}
	// Forrest_Gump stars Tom_Hanks.
	if !g.Store().Has(gump, r.Manifest.Preds.Starring, hanks) {
		t.Fatal("Forrest_Gump starring Tom_Hanks triple missing")
	}
	// Tom Hanks stars in the 5 anchor films, and possibly more: anchor
	// actors join the casting pool for generated films.
	films := g.Store().Subjects(r.Manifest.Preds.Starring, hanks)
	if len(films) < 5 {
		t.Fatalf("Tom_Hanks stars in %d films, want >= 5", len(films))
	}
	// Table 1 literals.
	attrs := g.Attributes(gump)
	found := map[string]bool{}
	for _, a := range attrs {
		found[a] = true
	}
	if !found["142 minutes"] || !found["55 million dollars"] {
		t.Fatalf("Forrest_Gump attributes = %v", attrs)
	}
	similar := g.SimilarNames(gump)
	if len(similar) < 2 {
		t.Fatalf("similar names = %v, want Geenbow and Gumpian", similar)
	}
}

func TestGenerateEveryFilmWellFormed(t *testing.T) {
	r := Generate(smallConfig())
	g := r.Graph
	p := r.Manifest.Preds
	for _, f := range r.Manifest.Films {
		if n := g.Store().CountObjects(f, p.Director); n < 1 {
			t.Fatalf("film %s has %d directors", g.Name(f), n)
		}
		if n := g.Store().CountObjects(f, p.Starring); n < 1 {
			t.Fatalf("film %s has no cast", g.Name(f))
		}
		if len(g.CategoriesOf(f)) < 3 {
			t.Fatalf("film %s has %d categories, want >= 3", g.Name(f), len(g.CategoriesOf(f)))
		}
		if g.PrimaryType(f) == rdf.NoTerm {
			t.Fatalf("film %s has no type", g.Name(f))
		}
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	// Popularity must be skewed: the most popular actor should appear in
	// far more films than the median actor.
	r := Generate(Scaled(500))
	p := r.Manifest.Preds
	counts := make([]int, 0, len(r.Manifest.Actors))
	for _, a := range r.Manifest.Actors {
		counts = append(counts, r.Store.CountSubjects(p.Starring, a))
	}
	maxC, total := 0, 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
		total += c
	}
	mean := float64(total) / float64(len(counts))
	if float64(maxC) < 5*mean {
		t.Fatalf("degree distribution not skewed: max=%d mean=%.1f", maxC, mean)
	}
}

func TestGenerateRedirectStubsAreNotEntities(t *testing.T) {
	r := Generate(smallConfig())
	g := r.Graph
	voc := g.Voc()
	nRedirects := 0
	g.Store().ForEachTriple(func(tr rdf.Triple) {
		if tr.P == voc.Redirects {
			nRedirects++
			if g.IsEntity(tr.S) {
				t.Fatalf("redirect stub %s is in the entity universe", g.Name(tr.S))
			}
		}
	})
	if nRedirects == 0 {
		t.Fatal("no redirect stubs generated")
	}
}

func TestGenerateCategoriesCoverFilms(t *testing.T) {
	r := Generate(smallConfig())
	g := r.Graph
	// American_films must exist and be one of the biggest categories.
	var american rdf.TermID
	for _, c := range g.Categories() {
		if g.Dict().Term(c).LocalName() == "American_films" {
			american = c
		}
	}
	if american == rdf.NoTerm {
		t.Fatal("American_films category missing")
	}
	members := g.CategoryMembers(american)
	if len(members) < len(r.Manifest.Films)/4 {
		t.Fatalf("American_films has only %d members out of %d films",
			len(members), len(r.Manifest.Films))
	}
}

func TestGenerateScalesMonotonically(t *testing.T) {
	small := Generate(Scaled(100))
	large := Generate(Scaled(400))
	if large.Store.Len() <= small.Store.Len() {
		t.Fatalf("larger scale produced fewer triples: %d <= %d",
			large.Store.Len(), small.Store.Len())
	}
	if len(large.Graph.Entities()) <= len(small.Graph.Entities()) {
		t.Fatal("larger scale produced fewer entities")
	}
}

func TestDropRelationRateControlsIncompleteness(t *testing.T) {
	count := func(rate float64) int {
		cfg := Scaled(300)
		cfg.Seed = 5
		cfg.DropRelationRate = rate
		r := Generate(cfg)
		n := 0
		for _, f := range r.Manifest.Films {
			n += r.Store.CountObjects(f, r.Manifest.Preds.Genre)
			n += r.Store.CountObjects(f, r.Manifest.Preds.Country)
		}
		return n
	}
	full := count(0)
	half := count(0.5)
	if half >= full {
		t.Fatalf("drop rate 0.5 kept %d edges vs %d at rate 0", half, full)
	}
	// Roughly half should survive (anchor films always keep theirs).
	ratio := float64(half) / float64(full)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("survival ratio %.2f implausible for rate 0.5", ratio)
	}
	// Categories are unaffected by dropping.
	cfg := Scaled(300)
	cfg.Seed = 5
	cfg.DropRelationRate = 0.5
	r := Generate(cfg)
	for _, f := range r.Manifest.Films {
		if len(r.Graph.CategoriesOf(f)) < 3 {
			t.Fatalf("film %s lost categories under dropping", r.Graph.Name(f))
		}
	}
}

func TestAliasLabelsShareNoTokens(t *testing.T) {
	cases := map[string]string{
		"Forrest Gump": "Frrst Gmp",
		"Tom Hanks":    "Tm Hnks",
		"Apollo":       "Apll",
	}
	for in, want := range cases {
		if got := aliasLabel(in); got != want {
			t.Fatalf("aliasLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAnchorNamesAlwaysResolve(t *testing.T) {
	// Regardless of scale or seed, the paper anchors must resolve to the
	// anchor entities (a random person named Robert_Zemeckis must not
	// shadow the director).
	for _, seed := range []int64{1, 2, 3} {
		cfg := Scaled(400)
		cfg.Seed = seed
		r := Generate(cfg)
		g := r.Graph
		hanks := g.EntityByName("Tom_Hanks")
		gump := g.EntityByName("Forrest_Gump")
		if !g.Store().Has(gump, r.Manifest.Preds.Starring, hanks) {
			t.Fatalf("seed %d: anchor names shadowed", seed)
		}
		zem := g.EntityByName("Robert_Zemeckis")
		if !g.Store().Has(gump, r.Manifest.Preds.Director, zem) {
			t.Fatalf("seed %d: Robert_Zemeckis shadowed", seed)
		}
	}
}

func TestNameMinterUniqueness(t *testing.T) {
	m := newNameMinter()
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		n := m.mint("Tom_Hanks")
		if seen[n] {
			t.Fatalf("minter produced duplicate %q", n)
		}
		seen[n] = true
	}
	if !seen["Tom_Hanks"] || !seen["Tom_Hanks_II"] || !seen["Tom_Hanks_III"] {
		t.Fatal("expected roman-numeral suffix scheme")
	}
}

func TestRoman(t *testing.T) {
	cases := map[int]string{1: "I", 2: "II", 4: "IV", 9: "IX", 14: "XIV", 40: "XL", 1987: "MCMLXXXVII"}
	for n, want := range cases {
		if got := roman(n); got != want {
			t.Errorf("roman(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestDisplay(t *testing.T) {
	if display("Forrest_Gump") != "Forrest Gump" {
		t.Fatal("display failed")
	}
}

func TestCountryAdjectiveAlignment(t *testing.T) {
	if len(countryNames) != len(countryAdjectives) {
		t.Fatalf("countryNames (%d) and countryAdjectives (%d) misaligned",
			len(countryNames), len(countryAdjectives))
	}
}

func BenchmarkGenerateScale1000(b *testing.B) {
	cfg := Scaled(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Generate(cfg)
		if r.Store.Len() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func ExampleGenerate() {
	r := Generate(Scaled(100))
	g := r.Graph
	gump := g.EntityByName("Forrest_Gump")
	fmt.Println(g.Name(gump))
	fmt.Println(g.Name(g.PrimaryType(gump)))
	// Output:
	// Forrest Gump
	// Film
}
