package synth

import (
	"fmt"
	"math/rand"

	"pivote/internal/kg"
	"pivote/internal/rdf"
)

// Predicates holds the interned semantic predicate IDs the generator
// emits, so that tests and experiments can form semantic features without
// string lookups.
type Predicates struct {
	Starring   rdf.TermID
	Director   rdf.TermID
	Writer     rdf.TermID
	Composer   rdf.TermID
	Studio     rdf.TermID
	Genre      rdf.TermID
	Country    rdf.TermID
	BirthPlace rdf.TermID
	AlmaMater  rdf.TermID
	Award      rdf.TermID
	Spouse     rdf.TermID
	LocatedIn  rdf.TermID

	ReleaseYear rdf.TermID
	Runtime     rdf.TermID
	Budget      rdf.TermID
	BirthYear   rdf.TermID
}

// Manifest records what was generated, keyed by kind, for workload
// construction and tests.
type Manifest struct {
	Config Config
	Preds  Predicates

	Films        []rdf.TermID
	Actors       []rdf.TermID
	Directors    []rdf.TermID
	Writers      []rdf.TermID
	Composers    []rdf.TermID
	Studios      []rdf.TermID
	Cities       []rdf.TermID
	Universities []rdf.TermID
	Genres       []rdf.TermID
	Countries    []rdf.TermID
	Awards       []rdf.TermID
}

// Result is a generated graph plus its manifest.
type Result struct {
	Graph    *kg.Graph
	Store    *rdf.Store
	Manifest Manifest
}

const ontologyNS = "http://pivote.dev/ontology/"

// Generate builds a synthetic knowledge graph per cfg. The same cfg
// always yields the identical graph, triple for triple.
func Generate(cfg Config) *Result {
	g := &generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		st:     rdf.NewStore(nil),
		minter: newNameMinter(),
	}
	g.voc = kg.InternVocab(g.st.Dict())
	g.internPredicates()
	if cfg.AnchorCluster {
		// Claim the paper-example names before random generation can, so
		// EntityByName("Tom_Hanks") always resolves to the anchor.
		g.minter.reserve(anchorNames...)
	}
	g.makeFixedVocabEntities()
	g.makeCities()
	g.makeUniversities()
	g.makeStudios()
	g.makePeople()
	if cfg.AnchorCluster {
		g.makeAnchorCluster()
	}
	g.makeFilms()
	g.makeRedirectsAndDisambiguations()
	g.st.Freeze()
	return &Result{
		Graph:    kg.NewGraph(g.st),
		Store:    g.st,
		Manifest: g.man,
	}
}

type generator struct {
	cfg    Config
	rng    *rand.Rand
	st     *rdf.Store
	voc    kg.Vocab
	minter *nameMinter
	man    Manifest

	// catIDs interns category nodes by local name; insertion order is
	// tracked separately so nothing iterates this map.
	catIDs map[string]rdf.TermID

	allEntities []rdf.TermID // insertion order, for redirect stubs
}

func (g *generator) internPredicates() {
	p := func(name string) rdf.TermID {
		return g.st.Dict().Intern(rdf.NewIRI(ontologyNS + name))
	}
	g.man.Config = g.cfg
	g.man.Preds = Predicates{
		Starring:    p("starring"),
		Director:    p("director"),
		Writer:      p("writer"),
		Composer:    p("musicComposer"),
		Studio:      p("distributor"),
		Genre:       p("genre"),
		Country:     p("country"),
		BirthPlace:  p("birthPlace"),
		AlmaMater:   p("almaMater"),
		Award:       p("award"),
		Spouse:      p("spouse"),
		LocatedIn:   p("locatedIn"),
		ReleaseYear: p("releaseYear"),
		Runtime:     p("runtime"),
		Budget:      p("budget"),
		BirthYear:   p("birthYear"),
	}
	g.catIDs = map[string]rdf.TermID{}
}

// entity interns a resource node, types it, labels it and registers it.
func (g *generator) entity(local, typeName string) rdf.TermID {
	id := g.st.Dict().Intern(rdf.NewIRI(kg.ResourceIRI(local)))
	g.st.Add(id, g.voc.Type, g.typeNode(typeName))
	g.st.Add(id, g.voc.Label, g.lit(display(local)))
	g.allEntities = append(g.allEntities, id)
	return id
}

func (g *generator) typeNode(name string) rdf.TermID {
	key := "type:" + name
	if id, ok := g.catIDs[key]; ok {
		return id
	}
	id := g.st.Dict().Intern(rdf.NewIRI("http://pivote.dev/ontology/class/" + name))
	g.st.Add(id, g.voc.Label, g.lit(display(name)))
	g.catIDs[key] = id
	return id
}

func (g *generator) category(local string) rdf.TermID {
	if id, ok := g.catIDs[local]; ok {
		return id
	}
	id := g.st.Dict().Intern(rdf.NewIRI("http://pivote.dev/category/" + local))
	g.st.Add(id, g.voc.Label, g.lit(display(local)))
	g.catIDs[local] = id
	return id
}

func (g *generator) lit(s string) rdf.TermID {
	return g.st.Dict().Intern(rdf.NewLiteral(s))
}

func (g *generator) makeFixedVocabEntities() {
	for _, name := range genreNames {
		g.man.Genres = append(g.man.Genres, g.entity(name, "Genre"))
	}
	for _, name := range countryNames {
		g.man.Countries = append(g.man.Countries, g.entity(name, "Country"))
	}
	for _, name := range awardNames {
		g.man.Awards = append(g.man.Awards, g.entity(name, "Award"))
	}
}

func (g *generator) makeCities() {
	for i := 0; i < g.cfg.Cities; i++ {
		city := g.entity(cityName(g.rng, g.minter), "City")
		country := g.man.Countries[g.rng.Intn(len(g.man.Countries))]
		g.st.Add(city, g.man.Preds.LocatedIn, country)
		g.man.Cities = append(g.man.Cities, city)
	}
}

func (g *generator) makeUniversities() {
	for i := 0; i < g.cfg.Universities; i++ {
		cityIdx := g.rng.Intn(len(g.man.Cities))
		cityLocal := g.st.Dict().Term(g.man.Cities[cityIdx]).LocalName()
		uni := g.entity(universityName(g.rng, g.minter, cityLocal), "University")
		g.st.Add(uni, g.man.Preds.LocatedIn, g.man.Cities[cityIdx])
		g.man.Universities = append(g.man.Universities, uni)
	}
}

func (g *generator) makeStudios() {
	for i := 0; i < g.cfg.Studios; i++ {
		studio := g.entity(studioName(g.rng, g.minter), "Studio")
		country := g.pickCountry()
		g.st.Add(studio, g.man.Preds.Country, country)
		g.man.Studios = append(g.man.Studios, studio)
	}
}

// pickCountry is biased toward the first country (United_States) the way
// DBpedia's film slice is, which is what makes "American films" the
// canonical big category of the paper.
func (g *generator) pickCountry() rdf.TermID {
	if g.rng.Float64() < 0.45 {
		return g.man.Countries[0]
	}
	return g.man.Countries[g.rng.Intn(len(g.man.Countries))]
}

func (g *generator) makePerson(typeName string) rdf.TermID {
	p := g.entity(personName(g.rng, g.minter), typeName)
	g.st.Add(p, g.voc.Type, g.typeNode("Person"))
	city := g.man.Cities[g.rng.Intn(len(g.man.Cities))]
	g.st.Add(p, g.man.Preds.BirthPlace, city)
	birth := 1920 + g.rng.Intn(81)
	g.st.Add(p, g.man.Preds.BirthYear, g.lit(fmt.Sprintf("%d", birth)))
	if g.rng.Float64() < 0.5 && len(g.man.Universities) > 0 {
		g.st.Add(p, g.man.Preds.AlmaMater, g.man.Universities[g.rng.Intn(len(g.man.Universities))])
	}
	if g.rng.Float64() < 0.08 {
		g.st.Add(p, g.man.Preds.Award, g.man.Awards[g.rng.Intn(len(g.man.Awards))])
	}
	return p
}

func (g *generator) makePeople() {
	for i := 0; i < g.cfg.Actors; i++ {
		g.man.Actors = append(g.man.Actors, g.makePerson("Actor"))
	}
	for i := 0; i < g.cfg.Directors; i++ {
		g.man.Directors = append(g.man.Directors, g.makePerson("Director"))
	}
	for i := 0; i < g.cfg.Writers; i++ {
		g.man.Writers = append(g.man.Writers, g.makePerson("Writer"))
	}
	for i := 0; i < g.cfg.Composers; i++ {
		g.man.Composers = append(g.man.Composers, g.makePerson("Composer"))
	}
	// Sparse spouse edges between consecutive actors keep the person
	// subgraph connected beyond film co-occurrence.
	for i := 1; i < len(g.man.Actors); i++ {
		if g.rng.Float64() < 0.03 {
			g.st.Add(g.man.Actors[i-1], g.man.Preds.Spouse, g.man.Actors[i])
		}
	}
}

// zipfPick returns Zipf-distributed indexes into a population of size n so
// that index 0 is most popular, matching real KG degree skew.
func (g *generator) zipfPick(z *rand.Zipf, n int) int {
	if n <= 1 {
		return 0
	}
	return int(z.Uint64())
}

func (g *generator) makeFilms() {
	p := g.man.Preds
	actorZipf := rand.NewZipf(g.rng, 1.2, 8, uint64(maxInt(len(g.man.Actors)-1, 1)))
	directorZipf := rand.NewZipf(g.rng, 1.2, 4, uint64(maxInt(len(g.man.Directors)-1, 1)))
	writerZipf := rand.NewZipf(g.rng, 1.2, 4, uint64(maxInt(len(g.man.Writers)-1, 1)))
	composerZipf := rand.NewZipf(g.rng, 1.2, 4, uint64(maxInt(len(g.man.Composers)-1, 1)))
	studioZipf := rand.NewZipf(g.rng, 1.2, 2, uint64(maxInt(len(g.man.Studios)-1, 1)))

	for i := 0; i < g.cfg.Films; i++ {
		film := g.entity(filmTitle(g.rng, g.minter), "Film")
		g.man.Films = append(g.man.Films, film)

		year := 1930 + g.rng.Intn(91)
		g.st.Add(film, p.ReleaseYear, g.lit(fmt.Sprintf("%d", year)))
		g.st.Add(film, p.Runtime, g.lit(fmt.Sprintf("%d minutes", 70+g.rng.Intn(120))))
		g.st.Add(film, p.Budget, g.lit(fmt.Sprintf("%d million dollars", 1+g.rng.Intn(250))))

		// Cast: 1..StarsPerFilmMax distinct Zipf-chosen actors.
		castSize := 1 + g.rng.Intn(g.cfg.StarsPerFilmMax)
		cast := map[int]bool{}
		for len(cast) < castSize && len(cast) < len(g.man.Actors) {
			cast[g.zipfPick(actorZipf, len(g.man.Actors))] = true
		}
		castIdx := sortedKeys(cast)
		for _, ai := range castIdx {
			g.st.Add(film, p.Starring, g.man.Actors[ai])
		}

		di := g.zipfPick(directorZipf, len(g.man.Directors))
		directorID := g.man.Directors[di]
		g.st.Add(film, p.Director, directorID)

		for w := g.rng.Intn(3); w > 0; w-- {
			g.st.Add(film, p.Writer, g.man.Writers[g.zipfPick(writerZipf, len(g.man.Writers))])
		}
		if g.rng.Float64() < 0.6 {
			g.st.Add(film, p.Composer, g.man.Composers[g.zipfPick(composerZipf, len(g.man.Composers))])
		}
		if len(g.man.Studios) > 0 {
			g.st.Add(film, p.Studio, g.man.Studios[g.zipfPick(studioZipf, len(g.man.Studios))])
		}

		nGenres := 1 + g.rng.Intn(3)
		genreSet := map[int]bool{}
		for len(genreSet) < nGenres {
			genreSet[g.rng.Intn(len(g.man.Genres))] = true
		}
		genreIdx := sortedKeys(genreSet)
		country := g.pickCountry()
		// The country/genre relation edges are dropped with
		// DropRelationRate to simulate KG incompleteness; the category
		// memberships below are always kept (Wikipedia editors maintain
		// categories more completely than infobox relations).
		if g.rng.Float64() >= g.cfg.DropRelationRate {
			g.st.Add(film, p.Country, country)
		}

		// Categories: year, country adjective, genres, director.
		g.st.Add(film, g.voc.Subject, g.category(fmt.Sprintf("%d_films", year)))
		countryIdx := g.countryIndex(country)
		g.st.Add(film, g.voc.Subject, g.category(countryAdjectives[countryIdx]+"_films"))
		for _, gi := range genreIdx {
			if g.rng.Float64() >= g.cfg.DropRelationRate {
				g.st.Add(film, p.Genre, g.man.Genres[gi])
			}
			g.st.Add(film, g.voc.Subject, g.category(genreNames[gi]+"_films"))
		}
		directorLocal := g.st.Dict().Term(directorID).LocalName()
		g.st.Add(film, g.voc.Subject, g.category("Films_directed_by_"+directorLocal))

		if g.rng.Float64() < 0.04 {
			g.st.Add(film, p.Award, g.man.Awards[g.rng.Intn(len(g.man.Awards))])
		}

		abstract := fmt.Sprintf("%s is a %d %s %s film directed by %s.",
			display(g.st.Dict().Term(film).LocalName()), year,
			display(countryAdjectives[countryIdx]),
			display(genreNames[genreIdx[0]]),
			display(directorLocal))
		g.st.Add(film, g.voc.Abstract, g.lit(abstract))
	}
}

func (g *generator) countryIndex(country rdf.TermID) int {
	for i, c := range g.man.Countries {
		if c == country {
			return i
		}
	}
	return 0
}

// anchorNames are the paper-example identifiers the generator reserves up
// front; makeAnchorCluster uses them verbatim.
var anchorNames = []string{
	"Tom_Hanks", "Gary_Sinise", "Robin_Wright", "Kevin_Bacon",
	"Michael_Clarke_Duncan", "Matt_Damon", "Robert_Zemeckis", "Ron_Howard",
	"Frank_Darabont", "Steven_Spielberg", "Winston_Groom",
	"Forrest_Gump", "Apollo_13", "Cast_Away", "The_Green_Mile",
	"Saving_Private_Ryan", "Geenbow", "Gumpian",
}

// makeAnchorCluster embeds the paper's running example so Table 1 and the
// Figure 1/3/4 scenarios reproduce name-for-name. The cluster reuses the
// generated Country/Genre/Award nodes but introduces its own people and
// films under the names reserved in Generate.
func (g *generator) makeAnchorCluster() {
	p := g.man.Preds
	mk := func(name, typeName string) rdf.TermID {
		return g.entity(name, typeName)
	}
	person := func(name, typeName string) rdf.TermID {
		id := mk(name, typeName)
		g.st.Add(id, g.voc.Type, g.typeNode("Person"))
		if len(g.man.Cities) > 0 {
			g.st.Add(id, p.BirthPlace, g.man.Cities[g.rng.Intn(len(g.man.Cities))])
		}
		return id
	}
	hanks := person("Tom_Hanks", "Actor")
	sinise := person("Gary_Sinise", "Actor")
	wright := person("Robin_Wright", "Actor")
	bacon := person("Kevin_Bacon", "Actor")
	duncan := person("Michael_Clarke_Duncan", "Actor")
	damon := person("Matt_Damon", "Actor")
	zemeckis := person("Robert_Zemeckis", "Director")
	howard := person("Ron_Howard", "Director")
	darabont := person("Frank_Darabont", "Director")
	spielberg := person("Steven_Spielberg", "Director")
	groom := person("Winston_Groom", "Writer")
	g.man.Actors = append(g.man.Actors, hanks, sinise, wright, bacon, duncan, damon)
	g.man.Directors = append(g.man.Directors, zemeckis, howard, darabont, spielberg)
	g.man.Writers = append(g.man.Writers, groom)

	usa := g.man.Countries[0]
	drama := g.man.Genres[0]
	film := func(name string, year int, runtime string, budget string, director rdf.TermID, stars ...rdf.TermID) rdf.TermID {
		f := mk(name, "Film")
		g.man.Films = append(g.man.Films, f)
		g.st.Add(f, p.ReleaseYear, g.lit(fmt.Sprintf("%d", year)))
		g.st.Add(f, p.Runtime, g.lit(runtime))
		g.st.Add(f, p.Budget, g.lit(budget))
		g.st.Add(f, p.Director, director)
		for _, s := range stars {
			g.st.Add(f, p.Starring, s)
		}
		g.st.Add(f, p.Country, usa)
		g.st.Add(f, p.Genre, drama)
		g.st.Add(f, g.voc.Subject, g.category("American_films"))
		g.st.Add(f, g.voc.Subject, g.category(fmt.Sprintf("%d_films", year)))
		g.st.Add(f, g.voc.Subject, g.category(genreNames[0]+"_films"))
		directorLocal := g.st.Dict().Term(director).LocalName()
		g.st.Add(f, g.voc.Subject, g.category("Films_directed_by_"+directorLocal))
		return f
	}

	gump := film("Forrest_Gump", 1994, "142 minutes", "55 million dollars", zemeckis, hanks, sinise, wright)
	g.st.Add(gump, p.Writer, groom)
	g.st.Add(gump, g.voc.Abstract, g.lit("Forrest Gump is a 1994 American comedy-drama film directed by Robert Zemeckis."))
	film("Apollo_13", 1995, "140 minutes", "52 million dollars", howard, hanks, sinise, bacon)
	film("Cast_Away", 2000, "143 minutes", "90 million dollars", zemeckis, hanks)
	film("The_Green_Mile", 1999, "189 minutes", "60 million dollars", darabont, hanks, duncan)
	film("Saving_Private_Ryan", 1998, "169 minutes", "70 million dollars", spielberg, hanks, damon)

	// Table 1's similar-entity names.
	geenbow := g.st.Dict().Intern(rdf.NewIRI(kg.ResourceIRI("Geenbow")))
	g.st.Add(geenbow, g.voc.Label, g.lit("Geenbow"))
	g.st.Add(geenbow, g.voc.Redirects, gump)
	gumpian := g.st.Dict().Intern(rdf.NewIRI(kg.ResourceIRI("Gumpian")))
	g.st.Add(gumpian, g.voc.Label, g.lit("Gumpian"))
	g.st.Add(gumpian, g.voc.Disambiguates, gump)
}

// makeRedirectsAndDisambiguations adds alias stubs: every RedirectEvery-th
// entity receives a redirect page, every DisambiguateEvery-th a
// disambiguation page. Stubs are plain IRIs without rdf:type, so they stay
// outside the entity universe just like Wikipedia redirect pages.
func (g *generator) makeRedirectsAndDisambiguations() {
	d := g.st.Dict()
	if g.cfg.RedirectEvery > 0 {
		for i := g.cfg.RedirectEvery - 1; i < len(g.allEntities); i += g.cfg.RedirectEvery {
			target := g.allEntities[i]
			local := d.Term(target).LocalName()
			stub := d.Intern(rdf.NewIRI(kg.ResourceIRI(g.minter.mint(local + "_(alias)"))))
			g.st.Add(stub, g.voc.Label, g.lit(aliasLabel(display(local))))
			g.st.Add(stub, g.voc.Redirects, target)
		}
	}
	if g.cfg.DisambiguateEvery > 0 {
		for i := g.cfg.DisambiguateEvery - 1; i < len(g.allEntities); i += g.cfg.DisambiguateEvery {
			target := g.allEntities[i]
			local := d.Term(target).LocalName()
			stub := d.Intern(rdf.NewIRI(kg.ResourceIRI(g.minter.mint(local + "_(disambiguation)"))))
			g.st.Add(stub, g.voc.Label, g.lit(display(local)+" (disambiguation)"))
			g.st.Add(stub, g.voc.Disambiguates, target)
		}
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
