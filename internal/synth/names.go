package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// Word tables for pseudo-realistic names. They are intentionally larger
// than needed so that collisions stay rare at every scale; the generator
// still deduplicates deterministically by appending roman-numeral
// suffixes.
var (
	givenNames = []string{
		"Tom", "Gary", "Robin", "Kevin", "Robert", "Ron", "Frank", "Steven",
		"Anna", "Maria", "Elena", "Sofia", "James", "John", "Michael", "David",
		"Laura", "Emma", "Olivia", "Noah", "Liam", "Mason", "Ethan", "Lucas",
		"Amelia", "Harper", "Evelyn", "Abigail", "Henry", "Alexander", "Sebastian",
		"Jack", "Aiden", "Owen", "Samuel", "Matthew", "Joseph", "Levi", "Mateo",
		"Grace", "Chloe", "Victoria", "Riley", "Aria", "Lily", "Nora", "Zoey",
		"Mila", "Aubrey", "Hannah", "Layla", "Ingrid", "Astrid", "Bjorn", "Sven",
		"Yuki", "Hiro", "Kenji", "Mei", "Wei", "Jun", "Ravi", "Priya", "Arjun",
		"Fatima", "Omar", "Layth", "Zara", "Nadia", "Pablo", "Diego", "Lucia",
	}
	familyNames = []string{
		"Hanks", "Sinise", "Wright", "Bacon", "Zemeckis", "Howard", "Darabont",
		"Spielberg", "Miller", "Smith", "Johnson", "Williams", "Brown", "Jones",
		"Garcia", "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez",
		"Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson",
		"Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
		"Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen",
		"King", "Scott", "Green", "Baker", "Adams", "Nelson", "Hill", "Rivera",
		"Campbell", "Mitchell", "Carter", "Roberts", "Nakamura", "Tanaka",
		"Kowalski", "Novak", "Ivanov", "Petrov", "Larsson", "Berg", "Haugen",
	}
	titleAdjectives = []string{
		"Silent", "Golden", "Hidden", "Broken", "Burning", "Frozen", "Distant",
		"Crimson", "Eternal", "Forgotten", "Savage", "Gentle", "Midnight",
		"Scarlet", "Velvet", "Shattered", "Wandering", "Luminous", "Restless",
		"Hollow", "Electric", "Quiet", "Wild", "Lost", "Final", "Rising",
	}
	titleNouns = []string{
		"Horizon", "River", "Empire", "Garden", "Journey", "Shadow", "Symphony",
		"Voyage", "Harvest", "Kingdom", "Promise", "Letter", "Winter", "Summer",
		"Mirror", "Bridge", "Station", "Harbor", "Canyon", "Meadow", "Tempest",
		"Lantern", "Compass", "Orchard", "Fortress", "Cathedral", "Labyrinth",
	}
	cityRoots = []string{
		"Green", "River", "Spring", "Oak", "Maple", "Stone", "Clear", "Fair",
		"North", "South", "East", "West", "Bright", "Silver", "Iron", "Golden",
		"Lake", "Hill", "Wood", "Mill",
	}
	citySuffixes = []string{
		"field", "ton", "ville", "burg", "port", "haven", "dale", "wood",
		"bridge", "ford", "mouth", "stead",
	}
	countryNames = []string{
		"United_States", "United_Kingdom", "France", "Germany", "Italy",
		"Spain", "Japan", "China", "India", "Brazil", "Canada", "Australia",
		"Mexico", "Sweden", "Norway", "Denmark", "Poland", "Netherlands",
		"South_Korea", "Argentina", "Ireland", "New_Zealand", "Austria",
		"Belgium", "Portugal", "Greece", "Finland", "Czech_Republic",
		"Hungary", "Switzerland",
	}
	// countryAdjectives must stay aligned with countryNames: they name the
	// "<Adjective> films" categories (e.g. American_films).
	countryAdjectives = []string{
		"American", "British", "French", "German", "Italian",
		"Spanish", "Japanese", "Chinese", "Indian", "Brazilian", "Canadian",
		"Australian", "Mexican", "Swedish", "Norwegian", "Danish", "Polish",
		"Dutch", "South_Korean", "Argentine", "Irish", "New_Zealand",
		"Austrian", "Belgian", "Portuguese", "Greek", "Finnish", "Czech",
		"Hungarian", "Swiss",
	}
	genreNames = []string{
		"Drama", "Comedy", "Thriller", "Romance", "Science_fiction", "Horror",
		"Documentary", "Animation", "Adventure", "Crime", "Fantasy", "Mystery",
		"Western", "War", "Musical", "Biography", "Sport", "Film_noir",
		"Family", "History",
	}
	awardNames = []string{
		"Academy_Award_for_Best_Picture", "Academy_Award_for_Best_Actor",
		"Academy_Award_for_Best_Director", "Golden_Globe_Award",
		"BAFTA_Award", "Palme_d_Or", "Golden_Lion", "Golden_Bear",
		"Screen_Actors_Guild_Award", "Critics_Choice_Award",
		"Saturn_Award", "Independent_Spirit_Award", "Cesar_Award",
		"Goya_Award", "European_Film_Award",
	}
	studioSuffixes = []string{
		"Pictures", "Studios", "Films", "Entertainment", "Productions",
		"Media", "Bros", "Features",
	}
	universityPatterns = []string{
		"University_of_%s", "%s_State_University", "%s_Institute_of_Technology",
		"%s_College",
	}
)

// nameMinter mints unique local names (IRI fragments). A collision gets a
// deterministic "_II", "_III", ... suffix, mirroring Wikipedia-style
// disambiguated titles.
type nameMinter struct {
	used map[string]int
}

func newNameMinter() *nameMinter { return &nameMinter{used: map[string]int{}} }

func (m *nameMinter) mint(base string) string {
	n := m.used[base]
	m.used[base] = n + 1
	if n == 0 {
		return base
	}
	return fmt.Sprintf("%s_%s", base, roman(n+1))
}

// reserve claims the exact names for later use, so random minting cannot
// take them (it will receive "_II" variants instead). Reserved names must
// then be used directly, not re-minted.
func (m *nameMinter) reserve(names ...string) {
	for _, n := range names {
		if m.used[n] == 0 {
			m.used[n] = 1
		}
	}
}

func roman(n int) string {
	// Supports the small suffix counts the minter needs.
	vals := []struct {
		v int
		s string
	}{{1000, "M"}, {900, "CM"}, {500, "D"}, {400, "CD"}, {100, "C"}, {90, "XC"},
		{50, "L"}, {40, "XL"}, {10, "X"}, {9, "IX"}, {5, "V"}, {4, "IV"}, {1, "I"}}
	var b strings.Builder
	for _, p := range vals {
		for n >= p.v {
			b.WriteString(p.s)
			n -= p.v
		}
	}
	return b.String()
}

func personName(r *rand.Rand, m *nameMinter) string {
	return m.mint(givenNames[r.Intn(len(givenNames))] + "_" + familyNames[r.Intn(len(familyNames))])
}

func filmTitle(r *rand.Rand, m *nameMinter) string {
	switch r.Intn(4) {
	case 0:
		return m.mint("The_" + titleAdjectives[r.Intn(len(titleAdjectives))] + "_" + titleNouns[r.Intn(len(titleNouns))])
	case 1:
		return m.mint(titleAdjectives[r.Intn(len(titleAdjectives))] + "_" + titleNouns[r.Intn(len(titleNouns))])
	case 2:
		return m.mint(titleNouns[r.Intn(len(titleNouns))] + "_of_" + titleNouns[r.Intn(len(titleNouns))])
	default:
		return m.mint("The_" + titleNouns[r.Intn(len(titleNouns))])
	}
}

func cityName(r *rand.Rand, m *nameMinter) string {
	return m.mint(cityRoots[r.Intn(len(cityRoots))] + citySuffixes[r.Intn(len(citySuffixes))])
}

func studioName(r *rand.Rand, m *nameMinter) string {
	return m.mint(familyNames[r.Intn(len(familyNames))] + "_" + studioSuffixes[r.Intn(len(studioSuffixes))])
}

func universityName(r *rand.Rand, m *nameMinter, city string) string {
	pat := universityPatterns[r.Intn(len(universityPatterns))]
	return m.mint(fmt.Sprintf(pat, city))
}

// display converts a local name to its human-readable label.
func display(local string) string { return strings.ReplaceAll(local, "_", " ") }

// aliasLabel derives a redirect-style alias that shares no tokens with the
// original label, the way DBpedia redirects are misspellings or alternate
// renderings ("Geenbow" → Forrest_Gump): every token keeps its first rune
// and loses its remaining vowels.
func aliasLabel(label string) string {
	words := strings.Fields(label)
	out := make([]string, 0, len(words))
	for _, w := range words {
		runes := []rune(w)
		var b strings.Builder
		for i, r := range runes {
			if i == 0 || !isVowel(r) {
				b.WriteRune(r)
			}
		}
		out = append(out, b.String())
	}
	return strings.Join(out, " ")
}

func isVowel(r rune) bool {
	switch r {
	case 'a', 'e', 'i', 'o', 'u', 'A', 'E', 'I', 'O', 'U':
		return true
	}
	return false
}
