package heatmap

import (
	"encoding/json"
	"strings"
	"testing"

	"pivote/internal/expand"
	"pivote/internal/kgtest"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

func buildMatrix(t testing.TB, seeds ...string) (*Matrix, *semfeat.Engine, *kgtest.Fixture) {
	t.Helper()
	f := kgtest.Build()
	en := semfeat.NewEngine(f.Graph)
	x := expand.New(en, expand.Options{SameTypeOnly: true})
	ids := make([]rdf.TermID, len(seeds))
	for i, s := range seeds {
		ids[i] = f.E(s)
	}
	ranked, feats := x.Expand(ids, 8)
	if len(ranked) == 0 || len(feats) == 0 {
		t.Fatal("expansion produced nothing to plot")
	}
	return Build(en, ranked, feats), en, f
}

func TestBuildShape(t *testing.T) {
	m, _, _ := buildMatrix(t, "Forrest_Gump")
	if len(m.Values) != len(m.Features) {
		t.Fatalf("rows = %d, features = %d", len(m.Values), len(m.Features))
	}
	for i, row := range m.Values {
		if len(row) != len(m.Entities) {
			t.Fatalf("row %d has %d cols, want %d", i, len(row), len(m.Entities))
		}
		if len(m.Level[i]) != len(m.Entities) {
			t.Fatal("Level shape mismatch")
		}
	}
}

func TestLevelsWithinRange(t *testing.T) {
	m, _, _ := buildMatrix(t, "Forrest_Gump", "Apollo_13")
	for i, row := range m.Level {
		for j, l := range row {
			if l < 0 || l >= Levels {
				t.Fatalf("cell (%d,%d) level %d out of [0,%d)", i, j, l, Levels)
			}
			if (m.Values[i][j] == 0) != (l == 0) {
				t.Fatalf("cell (%d,%d): value %f but level %d", i, j, m.Values[i][j], l)
			}
		}
	}
}

func TestLevelMonotoneInValue(t *testing.T) {
	// Within the matrix, a strictly greater value must never get a lower
	// level.
	m, _, _ := buildMatrix(t, "Forrest_Gump", "Apollo_13")
	type cell struct {
		v float64
		l int
	}
	var cells []cell
	for i := range m.Values {
		for j := range m.Values[i] {
			cells = append(cells, cell{m.Values[i][j], m.Level[i][j]})
		}
	}
	for _, a := range cells {
		for _, b := range cells {
			if a.v > b.v && a.l < b.l {
				t.Fatalf("value %f got level %d but smaller %f got %d", a.v, a.l, b.v, b.l)
			}
		}
	}
}

func TestMemberCellStrongerThanBackoff(t *testing.T) {
	// A film that actually stars Tom Hanks must have a higher
	// Tom_Hanks:starring cell than a film that only backs off through
	// categories.
	m, en, f := buildMatrix(t, "Forrest_Gump", "Apollo_13")
	row := -1
	for i, ft := range m.Features {
		if ft.Label == "Tom_Hanks:starring" {
			row = i
		}
	}
	if row < 0 {
		t.Fatal("Tom_Hanks:starring row missing")
	}
	var member, backoff float64 = -1, -1
	for j, e := range m.Entities {
		if en.Holds(e.ID, m.Features[row].Feature) {
			member = m.Values[row][j]
		} else if m.Values[row][j] > 0 {
			backoff = m.Values[row][j]
		}
	}
	_ = f
	if member < 0 {
		t.Fatal("no member film in the matrix")
	}
	if backoff >= 0 && member <= backoff {
		t.Fatalf("member cell %f not stronger than back-off cell %f", member, backoff)
	}
}

func TestQuantizationPopulatesMultipleLevels(t *testing.T) {
	m, _, _ := buildMatrix(t, "Forrest_Gump", "Apollo_13")
	if m.MaxLevel() < 3 {
		t.Fatalf("quantile quantization produced max level %d; expected a spread", m.MaxLevel())
	}
}

func TestASCIIRender(t *testing.T) {
	m, _, _ := buildMatrix(t, "Forrest_Gump")
	out := m.ASCII()
	for _, want := range []string{"columns:", "levels:", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII output missing %q:\n%s", want, out)
		}
	}
	// Every entity must be listed in the legend.
	for _, e := range m.Entities {
		if !strings.Contains(out, e.Name) {
			t.Fatalf("legend missing %s", e.Name)
		}
	}
}

func TestSVGRender(t *testing.T) {
	m, _, _ := buildMatrix(t, "Forrest_Gump")
	svg := m.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if got := strings.Count(svg, "<rect"); got != len(m.Entities)*len(m.Features) {
		t.Fatalf("SVG has %d rects, want %d", got, len(m.Entities)*len(m.Features))
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m, _, _ := buildMatrix(t, "Forrest_Gump")
	raw, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Matrix
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Entities) != len(m.Entities) || len(decoded.Values) != len(m.Values) {
		t.Fatal("JSON round trip lost shape")
	}
}

func TestCellExplanation(t *testing.T) {
	m, en, _ := buildMatrix(t, "Forrest_Gump", "Apollo_13")
	foundMatch, foundBackoff := false, false
	for i := range m.Features {
		for j := range m.Entities {
			ex := m.CellExplanation(en, i, j)
			switch {
			case strings.Contains(ex, "matches"):
				foundMatch = true
			case strings.Contains(ex, "through its category"):
				foundBackoff = true
			case strings.Contains(ex, "no correlation"):
			default:
				t.Fatalf("unexpected explanation %q", ex)
			}
		}
	}
	if !foundMatch || !foundBackoff {
		t.Fatalf("explanations incomplete: match=%v backoff=%v", foundMatch, foundBackoff)
	}
}

func TestQuantileBeatsLinearQuantization(t *testing.T) {
	// The heavy-tailed cell values leave linear splits with few
	// populated shades; quantile splits must populate at least as many.
	f := kgtest.Build()
	en := semfeat.NewEngine(f.Graph)
	x := expand.New(en, expand.Options{SameTypeOnly: true})
	ranked, feats := x.Expand([]rdf.TermID{f.E("Forrest_Gump"), f.E("Apollo_13")}, 8)
	quantile := BuildWith(en, ranked, feats, QuantileLevels)
	linear := BuildWith(en, ranked, feats, LinearLevels)
	if quantile.PopulatedLevels() < linear.PopulatedLevels() {
		t.Fatalf("quantile populates %d levels, linear %d",
			quantile.PopulatedLevels(), linear.PopulatedLevels())
	}
	// Values are identical across modes; only levels differ.
	for i := range quantile.Values {
		for j := range quantile.Values[i] {
			if quantile.Values[i][j] != linear.Values[i][j] {
				t.Fatal("quantization changed values")
			}
		}
	}
}

func TestEmptyMatrix(t *testing.T) {
	f := kgtest.Build()
	en := semfeat.NewEngine(f.Graph)
	m := Build(en, nil, nil)
	if len(m.Values) != 0 || m.MaxLevel() != 0 {
		t.Fatal("empty build not empty")
	}
	if out := m.ASCII(); out == "" {
		t.Fatal("empty matrix should still render headers")
	}
}
