package heatmap

import (
	"encoding/json"
	"fmt"
	"strings"

	"pivote/internal/viz"
)

// shades maps levels 0..6 to ASCII density glyphs.
var shades = [Levels]rune{' ', '·', ':', '-', '=', '#', '@'}

// colors maps levels 0..6 to an SVG blue ramp (light → dark), matching
// the paper's "darker means stronger".
var colors = [Levels]string{
	"#f7fbff", "#deebf7", "#c6dbef", "#9ecae1", "#6baed6", "#3182bd", "#08519c",
}

// ASCII renders the matrix as a fixed-width text grid: one row per
// feature (label left), one column per entity (header rotated into
// numbered columns with a legend below).
func (m *Matrix) ASCII() string {
	var b strings.Builder
	labelW := 0
	for _, f := range m.Features {
		if len(f.Label) > labelW {
			labelW = len(f.Label)
		}
	}
	if labelW > 40 {
		labelW = 40
	}
	// Header: column numbers.
	fmt.Fprintf(&b, "%*s |", labelW, "")
	for j := range m.Entities {
		fmt.Fprintf(&b, "%2d", j+1)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%s-+%s\n", strings.Repeat("-", labelW), strings.Repeat("--", len(m.Entities)))
	for i, f := range m.Features {
		fmt.Fprintf(&b, "%*s |", labelW, viz.Truncate(f.Label, labelW))
		for j := range m.Entities {
			b.WriteString(" ")
			b.WriteRune(shades[m.Level[i][j]])
		}
		b.WriteString("\n")
	}
	b.WriteString("\ncolumns:\n")
	for j, e := range m.Entities {
		fmt.Fprintf(&b, "  %2d: %s\n", j+1, e.Name)
	}
	fmt.Fprintf(&b, "levels: 0..%d rendered as %q\n", Levels-1, string(shades[:]))
	return b.String()
}

// SVG renders the matrix as a colored grid with entity names on top
// (rotated) and feature labels on the left.
func (m *Matrix) SVG() string {
	const (
		cell    = 18.0
		leftPad = 260.0
		topPad  = 120.0
	)
	w := int(leftPad + float64(len(m.Entities))*cell + 20)
	h := int(topPad + float64(len(m.Features))*cell + 20)
	s := viz.NewSVG(w, h)
	for j, e := range m.Entities {
		x := leftPad + float64(j)*cell + cell/2
		s.TextRotated(x, topPad-6, 10, -60, viz.Truncate(e.Name, 24))
	}
	for i, f := range m.Features {
		y := topPad + float64(i)*cell + cell*0.7
		s.Text(leftPad-6, y, 10, "end", viz.Truncate(f.Label, 36))
	}
	for i := range m.Features {
		for j := range m.Entities {
			s.Rect(leftPad+float64(j)*cell, topPad+float64(i)*cell, cell-1, cell-1,
				colors[m.Level[i][j]], "#ffffff")
		}
	}
	return s.String()
}

// JSON renders the matrix for the web UI.
func (m *Matrix) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}
