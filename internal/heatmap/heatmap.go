// Package heatmap builds and renders PivotE's explanation area (Fig. 3-f
// of the paper): a matrix whose columns are the recommended entities
// (x-axis), whose rows are the recommended semantic features (y-axis) and
// whose cells visualize the semantic correlation p(π|e)·r(π,Q), divided
// into seven levels exactly as §2.3.2 describes ("the darker the color,
// the stronger the semantic correlation").
package heatmap

import (
	"sort"

	"pivote/internal/expand"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

// Levels is the number of correlation levels (0 = no correlation,
// Levels-1 = strongest).
const Levels = 7

// EntityAxis is one column of the matrix.
type EntityAxis struct {
	ID    rdf.TermID `json:"id"`
	Name  string     `json:"name"`
	Score float64    `json:"score"`
}

// FeatureAxis is one row of the matrix.
type FeatureAxis struct {
	Feature semfeat.Feature `json:"-"`
	Label   string          `json:"label"`
	R       float64         `json:"r"`
}

// Matrix is the built heat map. Values and Level are indexed
// [row=feature][col=entity].
type Matrix struct {
	Entities []EntityAxis  `json:"entities"`
	Features []FeatureAxis `json:"features"`
	Values   [][]float64   `json:"values"`
	Level    [][]int       `json:"level"`
}

// Quantization selects how cell values map to the seven levels.
type Quantization int

const (
	// QuantileLevels splits the non-zero cells at value quantiles so
	// every shade is populated whenever enough distinct values exist —
	// the default, because r(π,Q) is heavy-tailed.
	QuantileLevels Quantization = iota
	// LinearLevels splits the [0, max] value range evenly — the naive
	// alternative, kept for the A4 ablation; it collapses most cells
	// into the bottom shades.
	LinearLevels
)

// Build computes the correlation matrix for the recommended entities and
// features with the default quantile quantization. Cell (π, e) holds
// p(π|e)·r(π,Q).
func Build(en *semfeat.Engine, entities []expand.Ranked, features []semfeat.Score) *Matrix {
	return BuildWith(en, entities, features, QuantileLevels)
}

// BuildWith is Build with an explicit quantization mode.
func BuildWith(en *semfeat.Engine, entities []expand.Ranked, features []semfeat.Score, q Quantization) *Matrix {
	m := &Matrix{}
	for _, e := range entities {
		m.Entities = append(m.Entities, EntityAxis{ID: e.Entity, Name: e.Name, Score: e.Score})
	}
	for _, f := range features {
		m.Features = append(m.Features, FeatureAxis{Feature: f.Feature, Label: f.Label, R: f.R})
	}
	m.Values = make([][]float64, len(m.Features))
	var nonzero []float64
	for i, f := range features {
		row := make([]float64, len(entities))
		for j, e := range entities {
			v := en.Prob(f.Feature, e.Entity) * f.R
			row[j] = v
			if v > 0 {
				nonzero = append(nonzero, v)
			}
		}
		m.Values[i] = row
	}
	m.quantize(nonzero, q)
	return m
}

// Requantize recomputes the Level grid from the Values grid with the
// default quantile quantization. The scatter-gather router needs this:
// per-shard matrices are quantized over each shard's own page, but the
// merged matrix's thresholds are quantiles over ALL merged cells, so the
// router reassembles Values from the owning shards and re-levels the
// result — the outcome is byte-identical to a single-process Build over
// the same entities and features, because quantile thresholds depend
// only on the multiset of non-zero values.
func (m *Matrix) Requantize() {
	var nonzero []float64
	for _, row := range m.Values {
		for _, v := range row {
			if v > 0 {
				nonzero = append(nonzero, v)
			}
		}
	}
	m.quantize(nonzero, QuantileLevels)
}

// quantize assigns levels 1..6 to the non-zero cells and level 0 to zero
// cells.
func (m *Matrix) quantize(nonzero []float64, q Quantization) {
	sort.Float64s(nonzero)
	thresholds := make([]float64, 0, Levels-2)
	if n := len(nonzero); n > 0 {
		switch q {
		case LinearLevels:
			maxV := nonzero[n-1]
			for i := 1; i <= Levels-2; i++ {
				thresholds = append(thresholds, maxV*float64(i)/float64(Levels-1))
			}
		default:
			for i := 1; i <= Levels-2; i++ {
				idx := i * n / (Levels - 1)
				if idx >= n {
					idx = n - 1
				}
				thresholds = append(thresholds, nonzero[idx])
			}
		}
	}
	m.Level = make([][]int, len(m.Values))
	for i, row := range m.Values {
		lv := make([]int, len(row))
		for j, v := range row {
			lv[j] = levelOf(v, thresholds)
		}
		m.Level[i] = lv
	}
}

// PopulatedLevels counts how many of the seven levels occur in the
// matrix — the quality measure of a quantization (more populated shades
// = more visual discrimination).
func (m *Matrix) PopulatedLevels() int {
	seen := [Levels]bool{}
	for _, row := range m.Level {
		for _, l := range row {
			seen[l] = true
		}
	}
	n := 0
	for _, s := range seen {
		if s {
			n++
		}
	}
	return n
}

func levelOf(v float64, thresholds []float64) int {
	if v <= 0 {
		return 0
	}
	level := 1
	for _, t := range thresholds {
		if v > t {
			level++
		}
	}
	return level
}

// MaxLevel returns the largest level present in the matrix.
func (m *Matrix) MaxLevel() int {
	maxL := 0
	for _, row := range m.Level {
		for _, l := range row {
			if l > maxL {
				maxL = l
			}
		}
	}
	return maxL
}

// CellExplanation describes why entity column j correlates with feature
// row i — the hover text of the explanation area ("both performed by Tom
// Hanks and Gary Sinise" in the paper's example).
func (m *Matrix) CellExplanation(en *semfeat.Engine, i, j int) string {
	f := m.Features[i]
	e := m.Entities[j]
	switch {
	case m.Values[i][j] == 0:
		return e.Name + " has no correlation with " + f.Label
	case en.Holds(e.ID, f.Feature):
		return e.Name + " matches " + f.Label
	default:
		return e.Name + " is related to " + f.Label + " through its category"
	}
}
