package viz

import (
	"strings"
	"testing"
)

func TestSVGDocument(t *testing.T) {
	s := NewSVG(200, 100)
	s.Rect(0, 0, 10, 10, "#ff0000", "#000000")
	s.Text(5, 5, 10, "middle", "hello")
	s.TextRotated(5, 5, 10, -60, "tilted")
	s.Line(0, 0, 10, 10, "#333333", 1)
	out := s.String()
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg" width="200" height="100">`,
		"<rect", "<text", "rotate(-60", "<line", "</svg>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q:\n%s", want, out)
		}
	}
}

func TestSVGEscapesXML(t *testing.T) {
	s := NewSVG(10, 10)
	s.Text(0, 0, 8, "start", `a<b&"c"`)
	out := s.String()
	if strings.Contains(out, "a<b") || !strings.Contains(out, "a&lt;b&amp;&quot;c&quot;") {
		t.Fatalf("XML not escaped:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); len([]rune(got)) != 5 {
		t.Fatalf("Bar(5,10,10) = %q", got)
	}
	if got := Bar(1, 1000, 10); len([]rune(got)) != 1 {
		t.Fatalf("nonzero value must render at least one cell, got %q", got)
	}
	if got := Bar(0, 10, 10); got != "" {
		t.Fatalf("Bar(0) = %q, want empty", got)
	}
	if got := Bar(5, 0, 10); got != "" {
		t.Fatalf("Bar with zero max = %q, want empty", got)
	}
}

func TestTruncate(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"hello", 10, "hello"},
		{"hello", 5, "hello"},
		{"hello world", 5, "hell…"},
		{"héllo wörld", 6, "héllo…"},
		{"x", 0, ""},
		{"xy", 1, "…"},
	}
	for _, c := range cases {
		if got := Truncate(c.in, c.n); got != c.want {
			t.Errorf("Truncate(%q,%d) = %q, want %q", c.in, c.n, got, c.want)
		}
	}
}
