// Package viz provides the small drawing toolkit the PivotE artifacts are
// rendered with: an SVG document builder and ASCII chart helpers. Keeping
// it stdlib-only means every figure of the paper can be regenerated
// headlessly in tests and benches.
package viz

import (
	"fmt"
	"strings"
)

// SVG accumulates elements of a fixed-size SVG document.
type SVG struct {
	width, height int
	elems         []string
}

// NewSVG returns an empty document of the given pixel size.
func NewSVG(width, height int) *SVG {
	return &SVG{width: width, height: height}
}

// Rect appends a rectangle. Empty stroke omits the outline.
func (s *SVG) Rect(x, y, w, h float64, fill, stroke string) {
	attr := fmt.Sprintf(`x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"`, x, y, w, h, fill)
	if stroke != "" {
		attr += fmt.Sprintf(` stroke="%s"`, stroke)
	}
	s.elems = append(s.elems, "<rect "+attr+"/>")
}

// Text appends a text element. anchor is one of "start", "middle", "end".
func (s *SVG) Text(x, y, size float64, anchor, content string) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="%.1f" font-family="monospace" text-anchor="%s">%s</text>`,
		x, y, size, anchor, escapeXML(content)))
}

// TextRotated appends text rotated by deg degrees around its own origin.
func (s *SVG) TextRotated(x, y, size float64, deg float64, content string) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<text x="%.1f" y="%.1f" font-size="%.1f" font-family="monospace" transform="rotate(%.0f %.1f %.1f)">%s</text>`,
		x, y, size, deg, x, y, escapeXML(content)))
}

// Line appends a straight line segment.
func (s *SVG) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	s.elems = append(s.elems, fmt.Sprintf(
		`<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`,
		x1, y1, x2, y2, stroke, width))
}

// String renders the document.
func (s *SVG) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, s.width, s.height)
	b.WriteByte('\n')
	for _, e := range s.elems {
		b.WriteString("  ")
		b.WriteString(e)
		b.WriteByte('\n')
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Bar renders one ASCII histogram bar of at most width cells, scaled so
// that maxValue fills the width.
func Bar(value, maxValue, width int) string {
	if maxValue <= 0 || width <= 0 {
		return ""
	}
	n := value * width / maxValue
	if n == 0 && value > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// Truncate shortens s to at most n runes, appending "…" when cut.
func Truncate(s string, n int) string {
	if n <= 0 {
		return ""
	}
	runes := []rune(s)
	if len(runes) <= n {
		return s
	}
	if n == 1 {
		return "…"
	}
	return string(runes[:n-1]) + "…"
}
