package shard

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"pivote/internal/core"
	"pivote/internal/server"
	"pivote/internal/wire"
)

// Router-side half of the inter-node codec negotiation (the server half
// lives in internal/server/wire.go). The router offers the binary codec
// with an Accept header on every wire-eligible hop; a capable replica
// advertises back with X-Pivote-Wire, and from then on the router also
// sends wire-encoded REQUEST bodies to that replica. Capability is
// tracked per replica, so a mixed cluster — some nodes predating the
// codec — degrades exactly those hops to JSON and nothing else.
//
// Public responses never change: the router decodes whichever codec a
// shard answered with and re-encodes the merged result as JSON through
// the same WriteJSON every shard node uses. Error envelopes are always
// JSON (shards never wire-encode them), so relaying them verbatim stays
// byte-identical too.

// Codec selects the router's inter-node codec policy.
type Codec int

const (
	// CodecAuto (default) negotiates per replica: offer wire, fall back
	// to JSON until — and wherever — the advertisement is seen.
	CodecAuto Codec = iota
	// CodecJSON forces JSON on every hop (kill switch; also what the
	// equivalence suites use to pin the fallback path).
	CodecJSON
	// CodecWire forces wire encoding without waiting for the
	// advertisement — for homogeneous clusters and tests; a node that
	// cannot decode it will reject request bodies.
	CodecWire
)

// wireCap is the per-replica negotiation state.
const (
	wireCapUnknown int32 = 0  // no negotiated response seen yet
	wireCapYes     int32 = 1  // replica advertised X-Pivote-Wire
	wireCapNo      int32 = -1 // replica answered without the advertisement
)

func newWireCap(shards [][]string) [][]atomic.Int32 {
	grid := make([][]atomic.Int32, len(shards))
	for k := range shards {
		grid[k] = make([]atomic.Int32, len(shards[k]))
	}
	return grid
}

// wireEligible reports whether a hop may negotiate the codec: exactly
// the state-bearing session routes. GET /api/v1/session is excluded on
// purpose — its body is relayed verbatim to the client as the session
// file download — and the control surface (ingest, snapshot, adopt,
// live, compact) keeps its existing formats.
func wireEligible(method, pathq string) bool {
	switch method {
	case http.MethodGet:
		return strings.HasPrefix(pathq, "/api/v1/state")
	case http.MethodPost:
		return strings.HasPrefix(pathq, "/api/v1/ops") || strings.HasPrefix(pathq, "/api/v1/session")
	}
	return false
}

// useWire decides whether to wire-encode a request body for replica
// (k, r).
func (rt *Router) useWire(k, r int) bool {
	switch rt.opts.Codec {
	case CodecWire:
		return true
	case CodecJSON:
		return false
	default:
		return rt.wireCap[k][r].Load() == wireCapYes
	}
}

// observeWireCap records a replica's advertisement state from a
// negotiated response (any status — the shard advertises on error
// envelopes too).
func (rt *Router) observeWireCap(k, r int, header http.Header) {
	if header.Get(server.WireHeader) != "" {
		rt.wireCap[k][r].Store(wireCapYes)
	} else {
		rt.wireCap[k][r].Store(wireCapNo)
	}
}

// hopBody is a fan-out request body held in both codecs, each encoded
// lazily and at most once no matter how many replicas the fan (plus its
// repairs and failovers) touches. The sync.Once guards make concurrent
// per-shard goroutines safe without any lock on the hot path.
type hopBody struct {
	jsonOnce sync.Once
	jsonBuf  []byte
	mkJSON   func() []byte // nil when jsonBuf is pre-encoded
	wireOnce sync.Once
	wireBuf  []byte
	mkWire   func() []byte // nil when no wire form exists for this body
}

// jsonOnlyBody wraps pre-encoded JSON bytes (e.g. a client upload
// relayed as-is) that have no wire twin.
func jsonOnlyBody(b []byte) *hopBody { return &hopBody{jsonBuf: b} }

// pick resolves the encoding to send to replica (k, r).
func (rt *Router) pick(hb *hopBody, k, r int) (body []byte, contentType string) {
	if hb == nil {
		return nil, ""
	}
	if hb.mkWire != nil && rt.useWire(k, r) {
		hb.wireOnce.Do(func() { hb.wireBuf = hb.mkWire() })
		return hb.wireBuf, wire.ContentType
	}
	if hb.mkJSON != nil {
		hb.jsonOnce.Do(func() { hb.jsonBuf = hb.mkJSON() })
	}
	return hb.jsonBuf, "application/json"
}

// isWireResp reports whether a shard response body is wire-encoded.
// Dispatching on the response's own Content-Type (rather than on what
// the router asked for) keeps decoding robust during negotiation
// transitions — whatever the shard actually sent is what gets decoded.
func isWireResp(resp *shardResp) bool {
	ct := resp.header.Get("Content-Type")
	return ct == wire.ContentType || strings.HasPrefix(ct, wire.ContentType+";")
}

// decodeStateResp decodes a GET /api/v1/state (or session-replay)
// response into st, reusing st's capacity from a previous decode.
func decodeStateResp(resp *shardResp, st *server.StateV1DTO) error {
	if isWireResp(resp) {
		mHopsWire.Inc()
		return wire.DecodeState(resp.body, st)
	}
	mHopsJSON.Inc()
	// Zero the reused target first: JSON leaves fields whose keys are
	// absent untouched, and a stale area from the previous decode must
	// not leak into this page.
	*st = server.StateV1DTO{}
	return json.Unmarshal(resp.body, st)
}

// decodeOpsResp decodes a POST /api/v1/ops response into (applied, st).
func decodeOpsResp(resp *shardResp, applied *int, st *server.StateV1DTO) error {
	if isWireResp(resp) {
		mHopsWire.Inc()
		return wire.DecodeOpsResponse(resp.body, applied, st)
	}
	mHopsJSON.Inc()
	*applied = 0
	*st = server.StateV1DTO{}
	aux := struct {
		Applied *int               `json:"applied"`
		State   *server.StateV1DTO `json:"state"`
	}{applied, st}
	return json.Unmarshal(resp.body, &aux)
}

// opsBody builds the hop body for an op batch: the JSON twin of the
// shard nodes' opsRequest shape plus the wire form. core.OpDTO contains
// nothing json.Marshal can fail on.
func opsBody(ops []core.OpDTO, include string) *hopBody {
	return &hopBody{
		mkJSON: func() []byte {
			b, _ := json.Marshal(opsRequestJSON{Ops: ops, Include: include})
			return b
		},
		mkWire: func() []byte { return wire.AppendOpsRequest(nil, ops, include) },
	}
}
