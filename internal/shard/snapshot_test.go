package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
	"pivote/internal/live"
)

// TestSnapshotRoundTrip: a per-shard snapshot re-opened from disk must
// come back partitioned — same spec, same shard index, ownership
// predicate installed — and an engine over it must emit exactly what an
// in-memory engine with the same partition emits.
func TestSnapshotRoundTrip(t *testing.T) {
	f := kgtest.Build()
	p := NewHashPartitioner(4)
	sh := core.NewShared(f.Graph, core.Options{})
	defer sh.Close()
	gen := sh.Generation()

	dir := t.TempDir()
	paths, err := WriteSnapshots(gen, p, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("wrote %d snapshots, want 4", len(paths))
	}

	for k, path := range paths {
		got, q, idx, err := OpenFile(path)
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		if idx != k {
			t.Fatalf("shard %d: opened index %d", k, idx)
		}
		if q.Spec() != p.Spec() {
			t.Fatalf("shard %d: spec %q, want %q", k, q.Spec(), p.Spec())
		}
		if got.Own == nil {
			t.Fatalf("shard %d: opened generation has no ownership predicate", k)
		}

		// Scoring must match an in-memory shard node exactly.
		want := core.Options{Partition: OwnerOf(p, k)}
		wantEng := core.New(f.Graph, want)
		gotEng := core.NewWithShared(core.NewSharedFromGeneration(got, core.Options{}), core.Options{})
		wantRes, err := wantEng.ApplyFields(t.Context(), core.OpSubmit("tom hanks film"), core.FieldsAll)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := gotEng.ApplyFields(t.Context(), core.OpSubmit("tom hanks film"), core.FieldsAll)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotRes.Entities) != len(wantRes.Entities) {
			t.Fatalf("shard %d: %d entities from snapshot, %d in memory",
				k, len(gotRes.Entities), len(wantRes.Entities))
		}
		for i := range gotRes.Entities {
			ge, we := gotRes.Entities[i], wantRes.Entities[i]
			if ge.Entity != we.Entity || ge.Score != we.Score {
				t.Fatalf("shard %d entity %d: snapshot (%d, %v) vs memory (%d, %v)",
					k, i, ge.Entity, ge.Score, we.Entity, we.Score)
			}
		}
	}
}

// TestOpenFileRejectsUnshardedSnapshot: the shard opener must refuse an
// ordinary generation snapshot rather than serve the whole graph as one
// shard.
func TestOpenFileRejectsUnshardedSnapshot(t *testing.T) {
	f := kgtest.Build()
	sh := core.NewShared(f.Graph, core.Options{})
	defer sh.Close()
	dir := t.TempDir()
	path := live.SnapshotPath(dir, 0)
	if err := live.WriteGenerationFile(sh.Generation(), path); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile accepted an unpartitioned snapshot")
	}
}

// TestFindNewestSnapshotPerShard: discovery is scoped to one shard
// index and picks the highest generation; the live store's own
// discovery must in turn skip shard files entirely, so an unpartitioned
// restart can never mmap a partial view.
func TestFindNewestSnapshotPerShard(t *testing.T) {
	dir := t.TempDir()
	touch := func(name string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	touch("gen-0000000000000003-s0.pvgen")
	touch("gen-0000000000000007-s0.pvgen")
	touch("gen-0000000000000009-s1.pvgen")
	touch("gen-0000000000000005.pvgen")
	touch("notes.txt")

	got, err := FindNewestSnapshot(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "gen-0000000000000007-s0.pvgen" {
		t.Fatalf("shard 0 newest = %q", got)
	}
	got, err = FindNewestSnapshot(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "gen-0000000000000009-s1.pvgen" {
		t.Fatalf("shard 1 newest = %q", got)
	}
	got, err = FindNewestSnapshot(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != "" {
		t.Fatalf("shard 2 has no snapshot but found %q", got)
	}

	got, err = live.FindNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "gen-0000000000000005.pvgen" {
		t.Fatalf("live discovery must skip shard files, found %q", got)
	}
}

// TestSnapshotWriterHook: wired into the live store, every compaction
// writes this shard's file and restore round-trips through it.
func TestSnapshotWriterHook(t *testing.T) {
	f := kgtest.Build()
	p := NewHashPartitioner(2)
	dir := t.TempDir()
	opts := core.Options{
		Partition:     OwnerOf(p, 1),
		SnapshotWrite: SnapshotWriter(p, 1),
	}
	sh := core.NewLiveSharedWithSnapshots(f.Graph, opts, dir)
	defer sh.Close()

	nt := "<http://pivote.dev/resource/Hook_Film> <http://pivote.dev/ontology/starring> <http://pivote.dev/resource/Tom_Hanks> .\n"
	if _, err := sh.Live().IngestNTriples(strings.NewReader(nt), nil); err != nil {
		t.Fatal(err)
	}
	if _, swapped, err := sh.Live().CompactNow(); err != nil || !swapped {
		t.Fatalf("compaction: swapped=%v err=%v", swapped, err)
	}
	path, err := FindNewestSnapshot(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("compaction wrote no per-shard snapshot")
	}
	gen, q, idx, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || q.Spec() != p.Spec() || gen.Own == nil {
		t.Fatalf("restored shard snapshot wrong: idx=%d spec=%q own=%v", idx, q.Spec(), gen.Own != nil)
	}
}
