package shard

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
	"pivote/internal/server"
)

// The equivalence suite: a sharded cluster behind the router must be
// indistinguishable from a single-process server — byte-identical
// bodies, identical statuses, identical headers that matter — for every
// shard count, across success responses, error envelopes, pagination
// boundaries, include combinations and the PPR-fallback divergence
// case. This is the subsystem's headline guarantee; everything in
// MergeStates exists to make these comparisons exact.

// equivStep is one request of a scripted session.
type equivStep struct {
	name   string
	method string
	path   string // path + query
	body   string // JSON (or raw) body; "" means no body
}

func equivScript() []equivStep {
	const (
		hanks  = "http://pivote.dev/resource/Tom_Hanks"
		sinise = "http://pivote.dev/resource/Gary_Sinise"
		gump   = "http://pivote.dev/resource/Forrest_Gump"
		zemeck = "http://pivote.dev/resource/Robert_Zemeckis"
	)
	return []equivStep{
		{"empty state", "GET", "/api/v1/state", ""},
		{"keyword submit", "POST", "/api/v1/ops", `{"ops":[{"op":"submit","keywords":"tom hanks film"}]}`},
		{"state entities only", "GET", "/api/v1/state?include=entities", ""},
		{"state features only", "GET", "/api/v1/state?include=features", ""},
		{"state heatmap only", "GET", "/api/v1/state?include=heatmap", ""},
		{"state timeline only", "GET", "/api/v1/state?include=timeline", ""},
		{"state entities+heatmap", "GET", "/api/v1/state?include=entities,heatmap", ""},
		{"seed query", "POST", "/api/v1/ops", `{"ops":[{"op":"submit","keywords":""},{"op":"add-entity","entity":"` + gump + `"}]}`},
		{"two seeds", "POST", "/api/v1/ops", `{"ops":[{"op":"add-entity","entity":"` + hanks + `"}]}`},
		{"pinned feature", "POST", "/api/v1/ops?include=entities,features", `{"ops":[{"op":"add-feature","feature":"Tom_Hanks:starring"}]}`},
		{"unpin feature", "POST", "/api/v1/ops", `{"ops":[{"op":"remove-feature","feature":"Tom_Hanks:starring"}]}`},
		{"remove seed", "POST", "/api/v1/ops", `{"ops":[{"op":"remove-entity","entity":"` + hanks + `"}]}`},
		{"lookup", "POST", "/api/v1/ops", `{"ops":[{"op":"lookup","entity":"` + sinise + `"}]}`},
		// Pivoting on a director is the documented PPR-fallback case: two
		// directors share no direct neighbour, so the SF extent page is
		// empty and the engine falls back to a random walk. Under
		// sharding every shard must fall back and the merged fallback
		// page must equal the single-process one.
		{"pivot fallback", "POST", "/api/v1/ops", `{"ops":[{"op":"pivot","entity":"` + zemeck + `"}]}`},
		{"fallback state", "GET", "/api/v1/state", ""},
		{"revisit", "POST", "/api/v1/ops", `{"ops":[{"op":"revisit","step":1}]}`},
		{"batch replay", "POST", "/api/v1/ops", `{"ops":[{"op":"submit","keywords":"film"},{"op":"add-entity","entity":"` + gump + `"},{"op":"add-entity","entity":"` + sinise + `"}]}`},
		{"session download", "GET", "/api/v1/session", ""},

		// Error envelopes, all shapes: they must be byte-identical too,
		// including the opIndex of the failing op.
		{"unknown entity", "POST", "/api/v1/ops", `{"ops":[{"op":"add-entity","entity":"http://pivote.dev/resource/Nobody"}]}`},
		{"unknown entity mid-batch", "POST", "/api/v1/ops", `{"ops":[{"op":"submit","keywords":"x"},{"op":"add-entity","entity":"http://pivote.dev/resource/Nobody"}]}`},
		{"unknown op kind", "POST", "/api/v1/ops", `{"ops":[{"op":"frobnicate"}]}`},
		{"bad feature", "POST", "/api/v1/ops", `{"ops":[{"op":"add-feature","feature":"garbage"}]}`},
		{"revisit out of range", "POST", "/api/v1/ops", `{"ops":[{"op":"revisit","step":999}]}`},
		{"bad body", "POST", "/api/v1/ops", `{"ops":[`},
		{"bad include", "GET", "/api/v1/state?include=bogus", ""},
		{"bad include on ops", "POST", "/api/v1/ops?include=bogus", `{"ops":[]}`},
		{"state after errors", "GET", "/api/v1/state", ""},

		// Session replay round-trips: a saved file POSTed back, a
		// malformed file, an unsupported version, a replay with include.
		{"session load", "POST", "/api/v1/session", `{"version":2,"ops":[{"op":"submit","keywords":"hanks"},{"op":"add-entity","entity":"` + gump + `"}]}`},
		{"state after load", "GET", "/api/v1/state", ""},
		{"session load include", "POST", "/api/v1/session?include=timeline", `{"version":2,"ops":[{"op":"submit","keywords":"film"}]}`},
		{"session load bad op", "POST", "/api/v1/session", `{"version":2,"ops":[{"op":"submit","keywords":"x"},{"op":"add-entity","entity":"http://pivote.dev/resource/Nobody"}]}`},
		{"session load bad version", "POST", "/api/v1/session", `{"version":9}`},
		{"session load bad json", "POST", "/api/v1/session", `{"version":`},
		{"final state", "GET", "/api/v1/state", ""},
	}
}

// equivClient wraps one server with a cookie jar so the scripted
// session sticks to one session on both sides.
type equivClient struct {
	ts     *httptest.Server
	client *http.Client
}

func newEquivClient(t *testing.T, h http.Handler) *equivClient {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &equivClient{ts: ts, client: &http.Client{Jar: jar}}
}

func (c *equivClient) do(t *testing.T, step equivStep) (int, string, http.Header) {
	t.Helper()
	var body io.Reader
	if step.body != "" {
		body = strings.NewReader(step.body)
	}
	req, err := http.NewRequest(step.method, c.ts.URL+step.path, body)
	if err != nil {
		t.Fatal(err)
	}
	if step.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client.Do(req)
	if err != nil {
		t.Fatalf("%s: %v", step.name, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: read body: %v", step.name, err)
	}
	return resp.StatusCode, string(data), resp.Header
}

func runEquivalence(t *testing.T, shards int, opts core.Options) {
	t.Helper()
	runEquivalenceCfg(t, ClusterConfig{Shards: shards, Opts: opts})
}

// runEquivalenceCfg runs the scripted session against a single-process
// server and a cluster built from cfg, demanding byte-identical output.
func runEquivalenceCfg(t *testing.T, cfg ClusterConfig) {
	t.Helper()
	f := kgtest.Build()
	single := newEquivClient(t, server.NewMulti(f.Graph, cfg.Opts, 16).Handler())
	cl := NewCluster(f.Graph, cfg)
	t.Cleanup(func() { _ = cl.Close() })
	clustered := newEquivClient(t, cl.Handler())

	for _, step := range equivScript() {
		wantStatus, wantBody, wantHdr := single.do(t, step)
		gotStatus, gotBody, gotHdr := clustered.do(t, step)
		if gotStatus != wantStatus {
			t.Fatalf("%s: status diverged: single=%d sharded=%d\nsingle body: %s\nsharded body: %s",
				step.name, wantStatus, gotStatus, wantBody, gotBody)
		}
		if gotBody != wantBody {
			t.Fatalf("%s: body diverged (status %d)\nsingle:  %s\nsharded: %s",
				step.name, wantStatus, wantBody, gotBody)
		}
		for _, h := range []string{"Content-Type", "Content-Disposition"} {
			if gotHdr.Get(h) != wantHdr.Get(h) {
				t.Fatalf("%s: header %s diverged: single=%q sharded=%q",
					step.name, h, wantHdr.Get(h), gotHdr.Get(h))
			}
		}
	}
}

// TestEquivalence is the headline suite: N ∈ {1, 2, 4, 7} (1 being the
// degenerate single-shard cluster) at the default page size.
func TestEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			runEquivalence(t, n, core.Options{})
		})
	}
}

// TestEquivalencePagination pins the merge at page-size boundaries: k
// smaller than, equal to, and larger than what individual shards hold,
// so truncation inside MergeSorted is exercised from both sides.
func TestEquivalencePagination(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8, 50} {
		t.Run(fmt.Sprintf("top=%d", k), func(t *testing.T) {
			runEquivalence(t, 4, core.Options{TopEntities: k, TopFeatures: 6})
		})
	}
}

// TestEquivalenceRange runs the suite under the range partitioner,
// including a deliberately lopsided split whose high shard owns almost
// nothing — empty and near-empty partitions must stay invisible.
func TestEquivalenceRange(t *testing.T) {
	f := kgtest.Build()
	dictLen := f.Store.Dict().Len()
	cuts := [][]uint32{
		{uint32(dictLen) / 2},                  // balanced-ish 2-way
		{3, uint32(dictLen)},                   // shard 1 owns nearly all, shard 2 nothing
		{uint32(dictLen) / 3, 2 * uint32(dictLen) / 3},
	}
	for ci, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", ci), func(t *testing.T) {
			p, err := ParseSpec(rangeSpec(cut))
			if err != nil {
				t.Fatal(err)
			}
			opts := core.Options{}
			single := newEquivClient(t, server.NewMulti(f.Graph, opts, 16).Handler())
			cl := NewCluster(f.Graph, ClusterConfig{Partitioner: p, Opts: opts})
			t.Cleanup(func() { _ = cl.Close() })
			clustered := newEquivClient(t, cl.Handler())
			for _, step := range equivScript() {
				wantStatus, wantBody, _ := single.do(t, step)
				gotStatus, gotBody, _ := clustered.do(t, step)
				if gotStatus != wantStatus || gotBody != wantBody {
					t.Fatalf("%s: diverged: single %d %s / sharded %d %s",
						step.name, wantStatus, wantBody, gotStatus, gotBody)
				}
			}
		})
	}
}

func rangeSpec(bounds []uint32) string {
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		parts[i] = fmt.Sprintf("%d", b)
	}
	return fmt.Sprintf("range/%d:%s", len(bounds)+1, strings.Join(parts, ","))
}
