package shard

import (
	"context"
	mrand "math/rand/v2"
	"sync"
	"time"
)

// replicaHealth is the router's record of one replica: transport health
// (feeding the circuit breaker), divergence (dirty — the replica missed
// a write or a generation adoption while unreachable and must not serve
// reads until resynced), and the newest generation it reported.
type replicaHealth struct {
	mu      sync.Mutex
	seen    bool
	healthy bool
	lastErr string
	// fails counts consecutive transport failures; reaching the breaker
	// threshold opens the breaker until openUntil.
	fails     int
	openUntil time.Time
	// dirty marks a replica whose store diverged from its peers (a
	// failed write fan-out, a failed snapshot adoption, or a response
	// from an older generation than the shard's committed one). Dirty
	// replicas are excluded from reads and force-resynced by the next
	// rolling swap.
	dirty    bool
	dirtyWhy string
	// gen is the newest generation this replica reported.
	gen uint64
}

func (h *replicaHealth) recordSuccess() {
	h.mu.Lock()
	closed := !h.openUntil.IsZero()
	h.seen, h.healthy, h.lastErr = true, true, ""
	h.fails = 0
	h.openUntil = time.Time{}
	h.mu.Unlock()
	if closed {
		mBreakerCloses.Inc()
	}
}

func (h *replicaHealth) recordFailure(msg string, threshold int, cooldown time.Duration) {
	h.mu.Lock()
	h.seen, h.healthy, h.lastErr = true, false, msg
	h.fails++
	opened := false
	if h.fails >= threshold {
		opened = h.openUntil.IsZero()
		h.openUntil = time.Now().Add(cooldown)
	}
	h.mu.Unlock()
	if opened {
		mBreakerOpens.Inc()
	}
}

// available reports whether the breaker admits a request right now. An
// open breaker admits nothing until its cooldown elapses; after that the
// next request is the half-open probe (success closes the breaker,
// failure re-opens it for another cooldown).
func (h *replicaHealth) available() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.openUntil.IsZero() || time.Now().After(h.openUntil)
}

func (h *replicaHealth) markDirty(why string) {
	h.mu.Lock()
	fresh := !h.dirty
	h.dirty, h.dirtyWhy = true, why
	h.mu.Unlock()
	if fresh {
		mDirtyMarks.Inc()
	}
}

func (h *replicaHealth) clearDirty() {
	h.mu.Lock()
	h.dirty, h.dirtyWhy = false, ""
	h.mu.Unlock()
}

func (h *replicaHealth) isDirty() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dirty
}

// observeGen records the newest generation seen from this replica.
func (h *replicaHealth) observeGen(g uint64) {
	h.mu.Lock()
	if g > h.gen {
		h.gen = g
	}
	h.mu.Unlock()
}

func (h *replicaHealth) lastGen() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gen
}

// view is a consistent copy for the live report.
func (h *replicaHealth) view() (seen, healthy, dirty, cooling bool, lastErr, dirtyWhy string, gen uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cooling = !h.openUntil.IsZero() && time.Now().Before(h.openUntil)
	return h.seen, h.healthy, h.dirty, cooling, h.lastErr, h.dirtyWhy, h.gen
}

// backoff sleeps the bounded-exponential, fully-jittered delay before
// retry attempt n (n >= 1): a random duration in (0, min(cap,
// base<<(n-1))]. Full jitter decorrelates the retry storms of concurrent
// router sessions hitting the same dying replica. Reports false when the
// context ended first.
func (rt *Router) backoff(ctx context.Context, attempt int) bool {
	d := rt.opts.RetryBase << (attempt - 1)
	if d > rt.opts.RetryCap || d <= 0 {
		d = rt.opts.RetryCap
	}
	d = time.Duration(1 + mrand.Int64N(int64(d)))
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// replicaOrder is the health-routed candidate order for one shard:
// starting from the preferred replica (session affinity — the shard-side
// session cache lives there), rotating through the set, with
// breaker-open replicas demoted to the back so they are only probed when
// every closed replica has failed. Dirty replicas are excluded entirely;
// the second return value reports how many were.
func (rt *Router) replicaOrder(k, pref int) (order []int, dirty int) {
	m := len(rt.shards[k])
	if pref < 0 || pref >= m {
		pref = 0
	}
	var cooling []int
	for i := 0; i < m; i++ {
		r := (pref + i) % m
		h := rt.health[k][r]
		if h.isDirty() {
			dirty++
			continue
		}
		if !h.available() {
			cooling = append(cooling, r)
			continue
		}
		order = append(order, r)
	}
	return append(order, cooling...), dirty
}
