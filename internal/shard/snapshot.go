package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pivote/internal/live"
	"pivote/internal/snap"
)

// SectionShard is the trailing section of a per-shard snapshot: the
// shard index and the partitioner spec. Everything before it is the
// ordinary generation snapshot (the full graph — partitioning happens
// at emission, so a shard persists the same sections a single-process
// generation does), which is why OpenGeneration would happily open a
// shard file and silently serve it unpartitioned; the shard-aware
// opener below exists so it never has to.
const SectionShard = "shard.part"

// SnapshotPath names the snapshot of one shard of a generation:
// gen-<id>-s<shard>.pvgen.
func SnapshotPath(dir string, gen uint64, shardIdx int) string {
	return filepath.Join(dir, fmt.Sprintf("gen-%016d-s%d%s", gen, shardIdx, live.SnapshotExt))
}

// WriteFile atomically persists one shard's view of a generation: the
// full generation sections plus the trailing shard section. The same
// temp-and-rename discipline as live.WriteGenerationFile keeps a crash
// from leaving a half-written file where a restore would look.
func WriteFile(gen *live.Generation, p Partitioner, shardIdx int, path string) (err error) {
	if shardIdx < 0 || shardIdx >= p.N() {
		return fmt.Errorf("shard: index %d out of range for %s", shardIdx, p.Spec())
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pvgen-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w := snap.NewWriter(tmp)
	if err = live.AppendGenerationSections(gen, w); err != nil {
		return err
	}
	w.Begin(SectionShard)
	w.U64(uint64(shardIdx))
	w.String(p.Spec())
	if err = w.Close(); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteSnapshots persists every shard of a generation into dir and
// returns the written paths in shard order.
func WriteSnapshots(gen *live.Generation, p Partitioner, dir string) ([]string, error) {
	paths := make([]string, p.N())
	for k := 0; k < p.N(); k++ {
		path := SnapshotPath(dir, gen.ID, k)
		if err := WriteFile(gen, p, k, path); err != nil {
			return nil, err
		}
		paths[k] = path
	}
	return paths, nil
}

// OpenFile opens a per-shard snapshot: the generation comes back with
// its ownership predicate already applied, plus the partitioner and
// shard index the file was written with.
func OpenFile(path string) (*live.Generation, Partitioner, int, error) {
	m, err := snap.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	c, err := m.Section(SectionShard)
	if err != nil {
		m.Close()
		return nil, nil, 0, fmt.Errorf("shard: %s is not a shard snapshot: %w", path, err)
	}
	idx := c.U64()
	spec := c.String()
	if err := c.Err(); err != nil {
		m.Close()
		return nil, nil, 0, err
	}
	p, err := ParseSpec(spec)
	if err != nil {
		m.Close()
		return nil, nil, 0, err
	}
	if idx >= uint64(p.N()) {
		m.Close()
		return nil, nil, 0, errors.Join(snap.ErrCorrupt,
			fmt.Errorf("shard: index %d out of range for %s", idx, spec))
	}
	gen, err := live.OpenGenerationSections(m)
	if err != nil {
		m.Close()
		return nil, nil, 0, err
	}
	gen.ApplyPartition(OwnerOf(p, int(idx)))
	return gen, p, int(idx), nil
}

// FindNewestSnapshot returns the newest snapshot of one shard in dir,
// or "" when there is none. It only considers files written for exactly
// this shard index (gen-*-s<shard>.pvgen).
func FindNewestSnapshot(dir string, shardIdx int) (string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	suffix := fmt.Sprintf("-s%d%s", shardIdx, live.SnapshotExt)
	var names []string
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() &&
			strings.HasPrefix(name, "gen-") && strings.HasSuffix(name, suffix) {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "", nil
	}
	// Zero-padded fixed-width generation numbers: the lexicographic
	// maximum is the newest generation.
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}

// SnapshotWriter adapts per-shard persistence to the live store's
// compaction hook: every swap writes this shard's gen-<id>-s<k>.pvgen
// instead of the unpartitioned gen-<id>.pvgen.
func SnapshotWriter(p Partitioner, shardIdx int) func(gen *live.Generation, dir string) (string, error) {
	return func(gen *live.Generation, dir string) (string, error) {
		path := SnapshotPath(dir, gen.ID, shardIdx)
		return path, WriteFile(gen, p, shardIdx, path)
	}
}
