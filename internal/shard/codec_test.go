package shard

import (
	"testing"

	"pivote/internal/core"
)

// Codec equivalence: the inter-node codec must be invisible from the
// outside. The full scripted session runs with the binary codec forced
// on, forced off, and in a mixed cluster where one shard predates the
// codec — every public response must stay byte-identical to a
// single-process server's, and the hop counters must prove the intended
// codec actually carried the traffic (a silent fallback to JSON would
// otherwise pass these suites while voiding the perf win).

// hopDeltas runs fn and reports how many shard responses were decoded
// from each codec while it ran. The counters are process-global, so the
// suites below must not run in parallel with other router traffic.
func hopDeltas(fn func()) (wireHops, jsonHops uint64) {
	w0, j0 := mHopsWire.Value(), mHopsJSON.Value()
	fn()
	return mHopsWire.Value() - w0, mHopsJSON.Value() - j0
}

func TestEquivalenceCodecWire(t *testing.T) {
	wireHops, jsonHops := hopDeltas(func() {
		runEquivalenceCfg(t, ClusterConfig{
			Shards: 4,
			Router: Options{Codec: CodecWire},
		})
	})
	if wireHops == 0 {
		t.Fatal("CodecWire ran no wire hops; the suite exercised nothing")
	}
	if jsonHops != 0 {
		t.Fatalf("CodecWire decoded %d JSON hops; forced wire must not fall back", jsonHops)
	}
}

func TestEquivalenceCodecJSON(t *testing.T) {
	wireHops, jsonHops := hopDeltas(func() {
		runEquivalenceCfg(t, ClusterConfig{
			Shards: 4,
			Router: Options{Codec: CodecJSON},
		})
	})
	if jsonHops == 0 {
		t.Fatal("CodecJSON ran no JSON hops; the suite exercised nothing")
	}
	if wireHops != 0 {
		t.Fatalf("CodecJSON decoded %d wire hops; the kill switch leaked", wireHops)
	}
}

// TestEquivalenceCodecMixed pins the negotiation: shard 1's nodes
// simulate a pre-codec version, so under CodecAuto the router must run
// wire hops against shards 0/2/3 and JSON hops against shard 1 — in the
// SAME fans — and still merge to byte-identical public output.
func TestEquivalenceCodecMixed(t *testing.T) {
	wireHops, jsonHops := hopDeltas(func() {
		runEquivalenceCfg(t, ClusterConfig{
			Shards:         4,
			JSONOnlyShards: []int{1},
			Router:         Options{Codec: CodecAuto},
		})
	})
	if wireHops == 0 {
		t.Fatal("mixed cluster negotiated no wire hops; auto-negotiation is broken")
	}
	if jsonHops == 0 {
		t.Fatal("mixed cluster ran no JSON hops; the pre-codec shard was not exercised")
	}
	if wireHops < jsonHops {
		t.Fatalf("mixed 3:1 cluster decoded wire=%d json=%d hops; the wire majority should dominate",
			wireHops, jsonHops)
	}
}

// TestEquivalenceCodecPagination re-runs the page-boundary suite with
// the codec forced on: truncation inside MergeSorted must behave
// identically when the pages arrive wire-encoded into pooled scratch.
func TestEquivalenceCodecPagination(t *testing.T) {
	for _, k := range []int{1, 3, 50} {
		runEquivalenceCfg(t, ClusterConfig{
			Shards: 4,
			Opts:   core.Options{TopEntities: k, TopFeatures: 6},
			Router: Options{Codec: CodecWire},
		})
	}
}
