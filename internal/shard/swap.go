package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"pivote/internal/errs"
	"pivote/internal/server"
)

// Rolling swaps: coordinated compaction across the whole cluster.
//
// Compaction is deterministic, so every clean replica WOULD reach the
// same generation on its own — but "would" is not a guarantee the
// router can serve on: a replica whose compact request was lost holds
// an older generation under an ID its peers have already reused for a
// newer one, and merging pages across that split produces output no
// single-process server could emit. Instead the snapshot FILE is the
// unit of replication. Every node holds the full graph and applies its
// partition at emission (the snapshot carries no shard section; each
// adopter re-applies its own), so ONE primary's snapshot serves every
// replica of every shard, and the router coordinates the swap in three
// steps:
//
//	prepare  one primary replica — any clean, admitting replica in the
//	         cluster — compacts (POST /api/v1/compact) and publishes
//	         the new generation: on disk as gen-<id>-s<k>.pvgen when
//	         the node snapshots, over the wire as GET /api/v1/snapshot
//	adopt    the router pushes the snapshot bytes into every other
//	         replica (POST /api/v1/adopt, ?force=1 for replicas marked
//	         dirty); each one RCU-swaps the generation in exactly like
//	         a local compaction, so its readers never block and its
//	         sessions survive
//	commit   the router records the generation in its committed
//	         counter; from here on a replica answering from an older
//	         generation is known-stale and is routed around, not served
//
// The protocol runs under ingestMu, so no ingest can land between the
// primary's compaction and the peers' adoptions — which is what makes
// wholesale adoption (it clears the peer's delta log) sound. Because
// every clean replica ends up holding the same adopted bytes under the
// same ID, generation agreement across the cluster converges
// deterministically instead of probabilistically: after a committed
// swap, equal generation IDs imply identical stores.
//
// Failure semantics: a peer that cannot adopt is marked dirty and the
// swap still commits — one clean replica per shard at the committed
// generation keeps the shard serving, and the next swap force-resyncs
// the stragglers. Only two failures abort without commit: no clean
// primary could compact, or the primary compacted but its snapshot
// could not be fetched. Both come back as typed unavailable errors and
// dirty nobody; the client retries, and the retry re-publishes a (new)
// generation to the whole cluster, re-aligning any replica the aborted
// attempt left ahead.

// rollingSwap runs the cluster-wide swap and returns the primary's
// compact response (relayed to the client, byte-identical to a
// single-process compact since the report is deterministic).
func (rt *Router) rollingSwap(ctx context.Context) (*shardResp, error) {
	tTotal := shardStart()
	reqCtx, cancel := context.WithTimeout(ctx, rt.opts.RequestTimeout)
	defer cancel()

	// Prepare: the primary is the first clean, admitting replica in
	// health order, searching shard 0 first. Transport failures move on
	// to the next candidate; an HTTP error is the deterministic answer
	// and is relayed as-is.
	var resp *shardResp
	pk, pr := -1, -1
	var lastErr error
	allDirty := true
	tPrepare := shardStart()
search:
	for k := range rt.shards {
		order, _ := rt.replicaOrder(k, 0)
		if len(order) > 0 {
			allDirty = false
		}
		for _, r := range order {
			var err error
			resp, err = rt.ctrlReplica(ctx, reqCtx, k, r, http.MethodPost, "/api/v1/compact", nil, "", 1)
			if err != nil {
				if errs.KindOf(err) == errs.KindCanceled {
					return nil, err
				}
				lastErr = err
				continue
			}
			pk, pr = k, r
			break search
		}
	}
	if pk == -1 {
		if allDirty {
			return nil, errs.Errf(errs.KindUnavailable,
				"shard: all replicas diverged, no clean compaction source")
		}
		return nil, lastErr
	}
	if resp.status != http.StatusOK {
		return resp, nil
	}
	shardEnd(mSwapPhase["prepare"], tPrepare)
	var report server.IngestResponse
	if err := json.Unmarshal(resp.body, &report); err != nil {
		resp.free()
		return nil, errs.Errf(errs.KindInternal, "shard %d: bad compact response: %v", pk, err)
	}

	// Fetch the primary's generation snapshot. The store may have
	// background-compacted past the forced generation between the two
	// calls (threshold compaction is node-local); the snapshot's own
	// generation header is authoritative for what the cluster adopts.
	tFetch := shardStart()
	snap, err := rt.ctrlReplica(ctx, reqCtx, pk, pr, http.MethodGet, "/api/v1/snapshot", nil, "", 1)
	if err != nil || snap.status != http.StatusOK {
		// The primary compacted but will not hand over the bytes, so the
		// cluster cannot be brought to its generation. Abort WITHOUT
		// commit and without acking the compaction; the client's retry
		// re-runs the whole protocol (compaction of an empty delta is a
		// cheap no-op) and re-aligns the replica this attempt left ahead.
		if err == nil {
			err = errs.Errf(errs.KindUnavailable,
				"shard %d replica %d: snapshot fetch failed with status %d", pk, pr, snap.status)
		}
		snap.free()
		return nil, err
	}
	shardEnd(mSwapPhase["fetch"], tFetch)
	adoptGen := report.Generation
	if g, ok := snap.generation(); ok && g > adoptGen {
		adoptGen = g
	}

	// Adopt: push the snapshot into every other replica of every shard,
	// in parallel. Dirty replicas are forced (their local state is wrong
	// by definition); clean replicas already at the generation — from a
	// no-op compact, say — are skipped.
	tAdopt := shardStart()
	var wg sync.WaitGroup
	for k := range rt.shards {
		for r := range rt.shards[k] {
			if k == pk && r == pr {
				rt.health[k][r].observeGen(adoptGen)
				continue
			}
			h := rt.health[k][r]
			if !h.isDirty() && h.lastGen() == adoptGen {
				continue
			}
			wg.Add(1)
			go func(k, r int, h *replicaHealth) {
				defer wg.Done()
				pathq := "/api/v1/adopt"
				if h.isDirty() {
					pathq += "?force=1"
				}
				aresp, err := rt.ctrlReplica(ctx, reqCtx, k, r, http.MethodPost, pathq, snap.body, "application/octet-stream", 1)
				if err != nil {
					h.markDirty("missed generation adoption: " + err.Error())
					return
				}
				var ar server.AdoptResponse
				decodeErr := json.Unmarshal(aresp.body, &ar)
				bad := aresp.status != http.StatusOK || decodeErr != nil || ar.Generation != adoptGen
				aresp.free()
				if bad {
					h.markDirty("generation adoption rejected")
					return
				}
				// The replica now holds the exact published generation
				// bytes: whatever divergence it had is gone.
				h.clearDirty()
				h.observeGen(adoptGen)
			}(k, r, h)
		}
	}
	wg.Wait()
	snap.free() // adopters are done with the snapshot bytes
	shardEnd(mSwapPhase["adopt"], tAdopt)

	// Commit: record the generation. Replicas later observed below it
	// are known-stale and get routed around (see Router.stateful).
	rt.commitGen(adoptGen)
	shardEnd(mSwapPhase["total"], tTotal)
	return resp, nil
}

// handleCompact runs the cluster-wide rolling swap, serialized with
// ingest (and other swaps).
func (rt *Router) handleCompact(w http.ResponseWriter, r *http.Request) {
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()
	resp, err := rt.rollingSwap(r.Context())
	if err != nil {
		server.WriteV1Error(w, err, nil)
		return
	}
	relay(w, resp)
	resp.free()
}
