package shard

import (
	"fmt"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
	"pivote/internal/rdf"
)

// TestPartitionCoversEveryTermExactlyOnce: for every partitioner and
// every TermID, ShardOf lands in [0, N) and exactly one shard's
// ownership predicate accepts the ID — no orphans, no double owners.
func TestPartitionCoversEveryTermExactlyOnce(t *testing.T) {
	rp, err := NewRangePartitioner([]rdf.TermID{10, 1000, 5000})
	if err != nil {
		t.Fatal(err)
	}
	parts := []Partitioner{
		NewHashPartitioner(1),
		NewHashPartitioner(2),
		NewHashPartitioner(4),
		NewHashPartitioner(7),
		rp,
	}
	for _, p := range parts {
		t.Run(p.Spec(), func(t *testing.T) {
			owners := make([]func(rdf.TermID) bool, p.N())
			for k := range owners {
				owners[k] = OwnerOf(p, k)
			}
			for id := rdf.TermID(0); id < 20000; id++ {
				s := p.ShardOf(id)
				if s < 0 || s >= p.N() {
					t.Fatalf("ShardOf(%d) = %d out of [0,%d)", id, s, p.N())
				}
				count := 0
				for k := range owners {
					if owners[k](id) {
						count++
						if k != s {
							t.Fatalf("owner %d accepts id %d but ShardOf says %d", k, id, s)
						}
					}
				}
				if count != 1 {
					t.Fatalf("id %d has %d owners, want exactly 1", id, count)
				}
			}
		})
	}
}

// TestPartitionSpecRoundTrip: ParseSpec(p.Spec()) reproduces the exact
// assignment, which is what lets a per-shard snapshot carry its
// partitioner as a string.
func TestPartitionSpecRoundTrip(t *testing.T) {
	rp, err := NewRangePartitioner([]rdf.TermID{7, 77, 777})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Partitioner{NewHashPartitioner(5), rp} {
		q, err := ParseSpec(p.Spec())
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", p.Spec(), err)
		}
		if q.N() != p.N() || q.Spec() != p.Spec() {
			t.Fatalf("round trip changed the partitioner: %q -> %q", p.Spec(), q.Spec())
		}
		for id := rdf.TermID(0); id < 5000; id++ {
			if q.ShardOf(id) != p.ShardOf(id) {
				t.Fatalf("%s: assignment of %d diverged after round trip", p.Spec(), id)
			}
		}
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"", "hash", "hash/", "hash/0", "hash/x", "modulo/4",
		"range/2", "range/2:", "range/3:5", "range/2:a", "range/3:9,3",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", spec)
		}
	}
}

// TestPartitionStableAcrossCompaction: ownership of every pre-existing
// term survives ingest and compaction swaps — the dictionary is
// append-only and shared across generations, so TermIDs (and the pure
// predicate over them) cannot move. This is what lets sessions span
// swaps under sharding.
func TestPartitionStableAcrossCompaction(t *testing.T) {
	f := kgtest.Build()
	p := NewHashPartitioner(4)
	opts := core.Options{Partition: OwnerOf(p, 1)}
	sh := core.NewLiveShared(f.Graph, opts)
	defer sh.Close()

	dict := f.Store.Dict()
	before := map[rdf.TermID]int{}
	for id := rdf.TermID(1); int(id) <= dict.Len(); id++ {
		before[id] = p.ShardOf(id)
	}

	ls := sh.Live()
	for round := 0; round < 3; round++ {
		nt := fmt.Sprintf("<http://pivote.dev/resource/Swap_Film_%d> <http://pivote.dev/ontology/starring> <http://pivote.dev/resource/Tom_Hanks> .\n", round)
		if _, err := ls.IngestNTriples(strings.NewReader(nt), nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ls.CompactNow(); err != nil {
			t.Fatal(err)
		}
	}
	if ls.Swaps() < 3 {
		t.Fatalf("expected 3 swaps, got %d", ls.Swaps())
	}
	for id, want := range before {
		if got := p.ShardOf(id); got != want {
			t.Fatalf("term %d moved from shard %d to %d across compaction", id, want, got)
		}
	}
	// The new generation's ownership predicate is the same function: the
	// published generation must still carry it.
	if sh.Generation().Own == nil {
		t.Fatal("compacted generation lost its ownership predicate")
	}
}

// TestEmptyPartitionServesValidEmptyResults: a shard that owns nothing
// must still answer every query correctly — empty pages, valid
// envelopes — because the router merges it like any other shard.
func TestEmptyPartitionServesValidEmptyResults(t *testing.T) {
	f := kgtest.Build()
	// Own nothing at all.
	opts := core.Options{Partition: func(rdf.TermID) bool { return false }}
	eng := core.New(f.Graph, opts)

	res, err := eng.ApplyFields(t.Context(), core.OpSubmit("tom hanks"), core.FieldsAll)
	if err != nil {
		t.Fatalf("keyword query on empty partition: %v", err)
	}
	if len(res.Entities) != 0 {
		t.Fatalf("empty partition emitted %d entities", len(res.Entities))
	}
	// Features still rank globally: the y-axis is shard-independent.
	if len(res.Features) == 0 {
		t.Fatal("empty partition lost the global feature ranking")
	}
	if res.Heat == nil {
		t.Fatal("empty partition returned no heat matrix")
	}
	if len(res.Heat.Entities) != 0 {
		t.Fatal("heat matrix has columns for unowned entities")
	}

	res, err = eng.ApplyFields(t.Context(), core.OpAddSeed(f.E("Forrest_Gump")), core.FieldsAll)
	if err != nil {
		t.Fatalf("seed query on empty partition: %v", err)
	}
	if len(res.Entities) != 0 {
		t.Fatalf("empty partition emitted %d entities for a seed query", len(res.Entities))
	}
}
