package shard

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// FaultTransport wraps another RoundTripper (in practice the
// InprocTransport) and injects scripted failures per host — the chaos
// half of the replication story. Two mechanisms compose:
//
//   - Kill/Revive: a killed host fails every request with a transport
//     error until revived, modelling a crashed or partitioned replica.
//     The node behind it is untouched — revival brings it back with the
//     state it had, exactly like a process that was only partitioned.
//   - Push: a FIFO of one-shot faults per host; each request to the
//     host consumes (at most) one and suffers it. Faults model dropped
//     requests, slow replicas, server errors and torn response bodies.
//
// All methods are safe for concurrent use; the race hammer scripts
// kills from one goroutine while request goroutines consume them.
type FaultTransport struct {
	mu     sync.Mutex
	next   http.RoundTripper
	killed map[string]bool
	queue  map[string][]Fault
}

// Fault is one scripted failure. Zero value is a plain drop.
type Fault struct {
	// Drop fails the request with a transport error before it reaches
	// the node.
	Drop bool
	// Delay stalls the request before forwarding (the router's
	// per-attempt timeout turns a long enough delay into a transport
	// failure; a short one just exercises the retry budget).
	Delay time.Duration
	// Status, when non-zero, short-circuits with an empty response of
	// this status (a 5xx from a sick replica that never did the work).
	Status int
	// TruncateAt, when > 0, serves the real response but tears the body
	// after this many bytes with io.ErrUnexpectedEOF — the torn-TCP
	// case. The router treats an unreadable body as a transport
	// failure, never as an answer.
	TruncateAt int
}

// NewFaultTransport wraps next. A nil next can be set later with Wrap.
func NewFaultTransport(next http.RoundTripper) *FaultTransport {
	return &FaultTransport{next: next, killed: map[string]bool{}, queue: map[string][]Fault{}}
}

// Wrap (re)targets the underlying transport.
func (f *FaultTransport) Wrap(next http.RoundTripper) { f.mu.Lock(); f.next = next; f.mu.Unlock() }

// Kill makes every request to host fail until Revive.
func (f *FaultTransport) Kill(host string) { f.mu.Lock(); f.killed[host] = true; f.mu.Unlock() }

// Revive ends a Kill.
func (f *FaultTransport) Revive(host string) { f.mu.Lock(); delete(f.killed, host); f.mu.Unlock() }

// Killed reports whether host is currently killed.
func (f *FaultTransport) Killed(host string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed[host]
}

// Push appends one-shot faults to host's script; each subsequent
// request to the host consumes one in FIFO order.
func (f *FaultTransport) Push(host string, faults ...Fault) {
	f.mu.Lock()
	f.queue[host] = append(f.queue[host], faults...)
	f.mu.Unlock()
}

// Pending reports how many scripted faults host has left.
func (f *FaultTransport) Pending(host string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue[host])
}

func (f *FaultTransport) take(host string) (Fault, bool, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed[host] {
		return Fault{}, false, true
	}
	q := f.queue[host]
	if len(q) == 0 {
		return Fault{}, false, false
	}
	f.queue[host] = q[1:]
	return q[0], true, false
}

// RoundTrip applies the host's scripted fault (if any) and forwards.
func (f *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	fault, ok, dead := f.take(host)
	if dead {
		return nil, fmt.Errorf("shard: injected fault: host %q is down", host)
	}
	if ok {
		if fault.Delay > 0 {
			select {
			case <-time.After(fault.Delay):
			case <-req.Context().Done():
				return nil, req.Context().Err()
			}
		}
		if fault.Drop {
			return nil, fmt.Errorf("shard: injected fault: request to %q dropped", host)
		}
		if fault.Status != 0 {
			return &http.Response{
				Status:     fmt.Sprintf("%d %s", fault.Status, http.StatusText(fault.Status)),
				StatusCode: fault.Status,
				Proto:      "HTTP/1.1",
				ProtoMajor: 1,
				ProtoMinor: 1,
				Header:     http.Header{},
				Body:       io.NopCloser(bytes.NewReader(nil)),
				Request:    req,
			}, nil
		}
	}
	f.mu.Lock()
	next := f.next
	f.mu.Unlock()
	resp, err := next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if ok && fault.TruncateAt > 0 {
		resp.Body = io.NopCloser(&truncatedBody{r: resp.Body, n: fault.TruncateAt})
		resp.ContentLength = -1
	}
	return resp, nil
}

// truncatedBody yields n bytes of the real body, then fails the read —
// the reader sees a torn connection, not a short-but-clean body.
type truncatedBody struct {
	r io.ReadCloser
	n int
}

func (t *truncatedBody) Read(p []byte) (int, error) {
	if t.n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > t.n {
		p = p[:t.n]
	}
	n, err := t.r.Read(p)
	t.n -= n
	if err == io.EOF {
		// The real body ended before the tear point; still tear, so the
		// fault is deterministic regardless of response size.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
