package shard

import (
	"strconv"
	"time"

	"pivote/internal/obs"
)

// Router-side observability: the scatter path (per-shard, per-replica
// latency), the resilience machinery (retries, failovers, breaker
// transitions, dirty marks, generation re-reads) and the rolling-swap
// protocol phases. Everything registers into obs.Default so a router
// process exposes one merged /metrics with whatever else it hosts
// (in-process clusters share the registry with their shard nodes —
// series are process-wide, and deltas are what tests assert on).
var (
	mRetries = obs.Default.Counter("pivote_router_retries_total",
		"Same-replica retry attempts after a transport failure.")
	mFailovers = obs.Default.Counter("pivote_router_failovers_total",
		"Requests that moved on to another replica after one failed.")
	mBreakerOpens = obs.Default.Counter("pivote_router_breaker_open_total",
		"Circuit-breaker open transitions (replica taken out of rotation).")
	mBreakerCloses = obs.Default.Counter("pivote_router_breaker_close_total",
		"Circuit-breaker close transitions (replica back in rotation).")
	mDirtyMarks = obs.Default.Counter("pivote_router_dirty_total",
		"Replicas marked diverged (excluded from reads until resynced).")
	mGenRereads = obs.Default.Counter("pivote_router_genreread_total",
		"State re-reads because shards answered from mixed generations.")
	mGenCoalesced = obs.Default.Counter("pivote_router_genwait_coalesced_total",
		"Generation-agreement waits coalesced into another session's probe (single-flight).")
	// Inter-node codec traffic, by the codec the shard's response body
	// actually arrived in (the wire/JSON split is what the equivalence
	// suites assert on to prove which path ran).
	mHopsWire = obs.Default.Counter("pivote_router_hops_total",
		"Decoded state-bearing shard responses by codec.", obs.L("codec", "wire"))
	mHopsJSON = obs.Default.Counter("pivote_router_hops_total",
		"Decoded state-bearing shard responses by codec.", obs.L("codec", "json"))
	// Buffer-pool effectiveness on the scatter path.
	mBodyPoolHit = obs.Default.Counter("pivote_router_body_pool_total",
		"Response-body buffer pool fetches.", obs.L("outcome", "hit"))
	mBodyPoolMiss = obs.Default.Counter("pivote_router_body_pool_total",
		"Response-body buffer pool fetches.", obs.L("outcome", "miss"))
	mScratchPoolHit = obs.Default.Counter("pivote_router_scratch_pool_total",
		"Per-fan state decode scratch fetches.", obs.L("outcome", "hit"))
	mScratchPoolMiss = obs.Default.Counter("pivote_router_scratch_pool_total",
		"Per-fan state decode scratch fetches.", obs.L("outcome", "miss"))
	mSwapPhase = map[string]*obs.Histogram{
		"prepare": swapPhaseHist("prepare"),
		"fetch":   swapPhaseHist("fetch"),
		"adopt":   swapPhaseHist("adopt"),
		"total":   swapPhaseHist("total"),
	}
)

func swapPhaseHist(phase string) *obs.Histogram {
	return obs.Default.Histogram("pivote_router_swap_seconds",
		"Rolling-swap phase durations (prepare=primary compaction, fetch=snapshot download, adopt=parallel push, total=whole protocol).",
		obs.L("phase", phase))
}

// scatterHist builds the per-(shard, replica) latency grid once at
// router construction — the scatter hot path then indexes a slice
// instead of taking the registry lock.
func scatterHist(shards [][]string) [][]*obs.Histogram {
	hs := make([][]*obs.Histogram, len(shards))
	for k := range shards {
		hs[k] = make([]*obs.Histogram, len(shards[k]))
		for r := range shards[k] {
			hs[k][r] = obs.Default.Histogram("pivote_router_scatter_seconds",
				"Per-replica shard request latency (all attempts of one logical send).",
				obs.L("shard", strconv.Itoa(k)), obs.L("replica", strconv.Itoa(r)))
		}
	}
	return hs
}

// shardStart returns the clock, or zero when instrumentation is off.
func shardStart() time.Time {
	if !obs.On() {
		return time.Time{}
	}
	return time.Now()
}

// shardEnd observes t0..now into h; a zero t0 (instrumentation off at
// entry) or nil histogram records nothing.
func shardEnd(h *obs.Histogram, t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(time.Since(t0))
}
