package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pivote/internal/core"
	"pivote/internal/kgtest"
	"pivote/internal/server"
)

// The chaos suite: the replicated cluster must stay byte-identical to a
// single-process server while replicas die, lag, lie (5xx) and tear
// response bodies — and must degrade to a typed unavailable error, not
// a wrong answer, only when an entire replica set is down. Faults are
// injected at the transport (FaultTransport), so the nodes themselves
// are never corrupted — exactly the failure model of a partitioned or
// crashed process.

// chaosOpts are router options tightened for test time: millisecond
// backoff and breaker cooldown so failover storms resolve instantly.
func chaosOpts() Options {
	return Options{
		Timeout:          2 * time.Second,
		RequestTimeout:   5 * time.Second,
		RetryBase:        time.Millisecond,
		RetryCap:         4 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Millisecond,
	}
}

func chaosHost(k, r int) string { return fmt.Sprintf("shard%dr%d.inproc", k, r) }

// TestChaosEquivalence runs the full equivalence script against a
// 2-shard × 3-replica cluster while one replica per shard is dead at
// every step (a rotating one, so each replica takes turns being down
// and coming back with a stale session). Every response must stay
// byte-identical to the single-process server: failover and
// repair-by-replay must be invisible. The suite runs once per codec
// mode — negotiated, forced wire, forced JSON, and a mixed cluster with
// one pre-codec shard — because failover and repair-by-replay are
// exactly where a codec bug would corrupt state invisibly.
func TestChaosEquivalence(t *testing.T) {
	modes := []struct {
		name     string
		codec    Codec
		jsonOnly []int
	}{
		{"codec=auto", CodecAuto, nil},
		{"codec=wire", CodecWire, nil},
		{"codec=json", CodecJSON, nil},
		{"codec=mixed", CodecAuto, []int{1}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			runChaosEquivalence(t, mode.codec, mode.jsonOnly)
		})
	}
}

func runChaosEquivalence(t *testing.T, codec Codec, jsonOnly []int) {
	const replicas = 3
	f := kgtest.Build()
	opts := core.Options{}
	single := newEquivClient(t, server.NewMulti(f.Graph, opts, 16).Handler())
	fault := NewFaultTransport(nil)
	ro := chaosOpts()
	ro.Codec = codec
	cl := NewCluster(f.Graph, ClusterConfig{
		Shards:         2,
		Replicas:       replicas,
		Opts:           opts,
		Live:           true,
		Router:         ro,
		Fault:          fault,
		JSONOnlyShards: jsonOnly,
	})
	t.Cleanup(func() { _ = cl.Close() })
	clustered := newEquivClient(t, cl.Handler())

	for i, step := range equivScript() {
		// Rotate the dead replica: revive everyone, then kill replica
		// (i mod 3) of every shard for the duration of this step.
		for k := range cl.Nodes {
			for r := 0; r < replicas; r++ {
				fault.Revive(chaosHost(k, r))
			}
			fault.Kill(chaosHost(k, i%replicas))
		}
		wantStatus, wantBody, wantHdr := single.do(t, step)
		gotStatus, gotBody, gotHdr := clustered.do(t, step)
		if gotStatus != wantStatus {
			t.Fatalf("%s (replica %d dead): status diverged: single=%d replicated=%d\nsingle body: %s\nreplicated body: %s",
				step.name, i%replicas, wantStatus, gotStatus, wantBody, gotBody)
		}
		if gotBody != wantBody {
			t.Fatalf("%s (replica %d dead): body diverged (status %d)\nsingle:     %s\nreplicated: %s",
				step.name, i%replicas, wantStatus, wantBody, gotBody)
		}
		for _, h := range []string{"Content-Type", "Content-Disposition"} {
			if gotHdr.Get(h) != wantHdr.Get(h) {
				t.Fatalf("%s: header %s diverged: single=%q replicated=%q",
					step.name, h, wantHdr.Get(h), gotHdr.Get(h))
			}
		}
	}
}

// TestChaosWholeSetDown pins the unavailability boundary: with one
// replica of a shard dead the cluster serves; with ALL replicas of one
// shard dead it answers 503 with a typed unavailable envelope (never a
// partial merge); revival restores service on the same session.
func TestChaosWholeSetDown(t *testing.T) {
	f := kgtest.Build()
	fault := NewFaultTransport(nil)
	cl := NewCluster(f.Graph, ClusterConfig{
		Shards:   2,
		Replicas: 2,
		Opts:     core.Options{},
		Live:     true,
		Router:   chaosOpts(),
		Fault:    fault,
	})
	t.Cleanup(func() { _ = cl.Close() })
	c := newEquivClient(t, cl.Handler())

	seed := equivStep{"seed", "POST", "/api/v1/ops", `{"ops":[{"op":"submit","keywords":"tom hanks film"}]}`}
	if code, body, _ := c.do(t, seed); code != http.StatusOK {
		t.Fatalf("seed: status %d: %s", code, body)
	}
	_, wantBody, _ := c.do(t, equivStep{"baseline", "GET", "/api/v1/state", ""})

	// One replica down: still serving, same bytes.
	fault.Kill(chaosHost(1, 0))
	if code, body, _ := c.do(t, equivStep{"degraded", "GET", "/api/v1/state", ""}); code != http.StatusOK || body != wantBody {
		t.Fatalf("one replica down: status %d, body diverged:\nwant %s\ngot  %s", code, wantBody, body)
	}

	// Whole set down: typed unavailable, not a wrong answer.
	fault.Kill(chaosHost(1, 1))
	code, body, _ := c.do(t, equivStep{"down", "GET", "/api/v1/state", ""})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("whole set down: status %d, want 503: %s", code, body)
	}
	var env server.V1ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("whole set down: not an error envelope: %s", body)
	}
	if string(env.Error.Kind) != "unavailable" {
		t.Fatalf("whole set down: kind %q, want unavailable: %s", env.Error.Kind, body)
	}

	// Revival restores the SAME session (repair-by-replay rebuilds the
	// shard-side state wherever it is needed).
	fault.Revive(chaosHost(1, 0))
	fault.Revive(chaosHost(1, 1))
	if code, body, _ := c.do(t, equivStep{"revived", "GET", "/api/v1/state", ""}); code != http.StatusOK || body != wantBody {
		t.Fatalf("after revival: status %d, body diverged:\nwant %s\ngot  %s", code, wantBody, body)
	}
}

// sessionPref digs the (single) router session out and reports its
// preferred replica for shard k — the one the next fault should target.
func sessionPref(t *testing.T, rt *Router, k int) int {
	t.Helper()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if len(rt.sessions) != 1 {
		t.Fatalf("want exactly 1 router session, have %d", len(rt.sessions))
	}
	for _, rs := range rt.sessions {
		return rs.pref[k]
	}
	return 0
}

// TestChaosFaultKinds aims each scripted fault kind at the replica the
// session actually prefers and asserts the response stays byte-
// identical anyway: drops and torn bodies are absorbed by the in-place
// retry, delays by the per-attempt timeout, and 5xx answers by failing
// over to the sibling replica.
func TestChaosFaultKinds(t *testing.T) {
	f := kgtest.Build()
	fault := NewFaultTransport(nil)
	ro := chaosOpts()
	ro.Timeout = 50 * time.Millisecond // so a scripted delay becomes a timeout fast
	cl := NewCluster(f.Graph, ClusterConfig{
		Shards:   1,
		Replicas: 2,
		Opts:     core.Options{},
		Live:     true,
		Router:   ro,
		Fault:    fault,
	})
	t.Cleanup(func() { _ = cl.Close() })
	c := newEquivClient(t, cl.Handler())

	seed := equivStep{"seed", "POST", "/api/v1/ops", `{"ops":[{"op":"submit","keywords":"tom hanks film"}]}`}
	if code, body, _ := c.do(t, seed); code != http.StatusOK {
		t.Fatalf("seed: status %d: %s", code, body)
	}
	_, wantBody, _ := c.do(t, equivStep{"baseline", "GET", "/api/v1/state", ""})

	cases := []struct {
		name   string
		faults []Fault
	}{
		// Two one-shot transport faults exhaust the read's in-place
		// retry budget on the preferred replica, forcing a failover.
		{"drop", []Fault{{Drop: true}, {Drop: true}}},
		{"delay past timeout", []Fault{{Delay: 300 * time.Millisecond}, {Delay: 300 * time.Millisecond}}},
		{"truncated body", []Fault{{TruncateAt: 16}, {TruncateAt: 16}}},
		// A single transport fault is healed by the in-place retry —
		// no failover needed.
		{"drop once", []Fault{{Drop: true}}},
		// A 5xx is an answer, not a transport error: the read fails
		// over immediately and the sibling's page is served.
		{"server error", []Fault{{Status: http.StatusInternalServerError}}},
	}
	for _, tc := range cases {
		pref := sessionPref(t, cl.Router, 0)
		host := chaosHost(0, pref)
		fault.Push(host, tc.faults...)
		code, body, _ := c.do(t, equivStep{tc.name, "GET", "/api/v1/state", ""})
		if code != http.StatusOK || body != wantBody {
			t.Fatalf("%s: status %d, body diverged:\nwant %s\ngot  %s", tc.name, code, wantBody, body)
		}
		if n := fault.Pending(host); n != 0 {
			t.Fatalf("%s: %d scripted faults never consumed (aimed at %s)", tc.name, n, host)
		}
	}
}

// TestChaosResyncAfterMissedWrite drives the full divergence lifecycle:
// a replica dies, misses an ingest batch (the router marks it dirty and
// stops reading from it), revives, is force-resynced by the next
// rolling swap via snapshot adoption, and rejoins — with the cluster
// byte-identical to a single-process live server throughout, and the
// degradation visible in GET /api/v1/live at every stage.
func TestChaosResyncAfterMissedWrite(t *testing.T) {
	f := kgtest.Build()
	opts := core.Options{}
	singleSrv := server.NewMultiShared(core.NewLiveShared(f.Graph, opts), opts, 16)
	t.Cleanup(func() { _ = singleSrv.Shared().Close() })
	single := newEquivClient(t, singleSrv.Handler())
	fault := NewFaultTransport(nil)
	cl := NewCluster(f.Graph, ClusterConfig{
		Shards:   2,
		Replicas: 2,
		Opts:     opts,
		Live:     true,
		Router:   chaosOpts(),
		Fault:    fault,
	})
	t.Cleanup(func() { _ = cl.Close() })
	clustered := newEquivClient(t, cl.Handler())

	post := func(t *testing.T, c *equivClient, path, ctype, body string) (int, string) {
		t.Helper()
		resp, err := c.client.Post(c.ts.URL+path, ctype, strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}
	liveReport := func(t *testing.T) RouterLiveDTO {
		t.Helper()
		code, body, _ := clustered.do(t, equivStep{"live", "GET", "/api/v1/live", ""})
		if code != http.StatusOK {
			t.Fatalf("live: status %d: %s", code, body)
		}
		var dto RouterLiveDTO
		if err := json.Unmarshal([]byte(body), &dto); err != nil {
			t.Fatalf("live: %v: %s", err, body)
		}
		return dto
	}

	// Kill replica 1 of both shards, then ingest: the batch lands on the
	// survivors and the dead replicas are marked diverged.
	fault.Kill(chaosHost(0, 1))
	fault.Kill(chaosHost(1, 1))
	const nt = "<http://pivote.dev/resource/Chaos_Film> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pivote.dev/resource/Film> .\n" +
		"<http://pivote.dev/resource/Chaos_Film> <http://pivote.dev/ontology/starring> <http://pivote.dev/resource/Tom_Hanks> .\n"
	wantCode, wantBody := post(t, single, "/api/v1/ingest", "application/n-triples", nt)
	gotCode, gotBody := post(t, clustered, "/api/v1/ingest", "application/n-triples", nt)
	if gotCode != wantCode || gotBody != wantBody {
		t.Fatalf("ingest diverged: single %d %s / replicated %d %s", wantCode, wantBody, gotCode, gotBody)
	}

	// Revive: the replicas answer probes again but must stay out of
	// rotation — their stores missed the batch.
	fault.Revive(chaosHost(0, 1))
	fault.Revive(chaosHost(1, 1))
	dto := liveReport(t)
	if dto.Router.DegradedReplicas != 2 {
		t.Fatalf("after missed write: %d degraded replicas, want 2: %+v", dto.Router.DegradedReplicas, dto.Router)
	}
	for k := range dto.ShardHealth {
		if got := dto.ShardHealth[k].Replicas[1].State; got != "stale" {
			t.Fatalf("shard %d replica 1: state %q, want stale", k, got)
		}
		if !dto.ShardHealth[k].Healthy {
			t.Fatalf("shard %d should still be healthy on replica 0", k)
		}
	}

	// The rolling swap force-resyncs the stragglers via snapshot
	// adoption; its response must match a single-process compact.
	wantCode, wantBody = post(t, single, "/api/v1/compact", "", "")
	gotCode, gotBody = post(t, clustered, "/api/v1/compact", "", "")
	if gotCode != wantCode || gotBody != wantBody {
		t.Fatalf("compact diverged: single %d %s / replicated %d %s", wantCode, wantBody, gotCode, gotBody)
	}
	for k := range cl.Nodes {
		if got := cl.Nodes[k][1].Shared().Live().Adoptions(); got < 1 {
			t.Fatalf("shard %d replica 1: %d adoptions, want >= 1 (resync must go through snapshot adoption)", k, got)
		}
	}
	dto = liveReport(t)
	if dto.Router.DegradedReplicas != 0 {
		t.Fatalf("after resync: %d degraded replicas, want 0: %+v", dto.Router.DegradedReplicas, dto)
	}
	if dto.Router.Committed == 0 {
		t.Fatal("after rolling swap: committed generation still 0")
	}

	// The resynced replicas hold the published generation bytes: the
	// ingested entity resolves identically on both sides, wherever the
	// session lands.
	look := equivStep{"lookup", "POST", "/api/v1/ops", `{"ops":[{"op":"submit","keywords":"chaos"},{"op":"lookup","entity":"http://pivote.dev/resource/Chaos_Film"}]}`}
	wantStatus, wantB, _ := single.do(t, look)
	gotStatus, gotB, _ := clustered.do(t, look)
	if gotStatus != wantStatus || gotB != wantB {
		t.Fatalf("post-resync lookup diverged: single %d %s / replicated %d %s", wantStatus, wantB, gotStatus, gotB)
	}
}

// TestHammerReplicatedChaos is the replicated race hammer: a 4-shard ×
// 2-replica live cluster serves concurrent sessions while an ingest
// loop drives >= 10 rolling swaps AND a chaos loop kills and revives
// one replica per shard the whole time. Run under -race (CI does).
// Transient 503s are legal — a kill can briefly leave a set with no
// clean replica — but they must be typed unavailable envelopes, the
// same session must keep working afterwards (repair-by-replay), and no
// response may ever be a panic, a torn merge, or a wrong answer.
func TestHammerReplicatedChaos(t *testing.T) {
	const (
		readers   = 6
		swapsWant = 10
	)
	f := kgtest.Build()
	fault := NewFaultTransport(nil)
	cl := NewCluster(f.Graph, ClusterConfig{
		Shards:   4,
		Replicas: 2,
		Opts:     core.Options{},
		Live:     true,
		Router:   chaosOpts(),
		Fault:    fault,
	})
	defer cl.Close()
	ts := httptest.NewServer(cl.Handler())
	defer ts.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, readers+2)

	// tolerable reports whether a non-200 is a legal degraded-mode
	// answer: a well-formed typed unavailable envelope.
	tolerable := func(code int, body string) bool {
		if code != http.StatusServiceUnavailable {
			return false
		}
		var env server.V1ErrorEnvelope
		return json.Unmarshal([]byte(body), &env) == nil && string(env.Error.Kind) == "unavailable"
	}

	post := func(c *http.Client, path, ctype, body string) (int, string, error) {
		resp, err := c.Post(ts.URL+path, ctype, strings.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data), err
	}

	// Chaos loop: kill one replica per shard, let traffic run degraded,
	// revive, alternate sides. Every replica takes turns being dead.
	var kills atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for cycle := 0; !stop.Load(); cycle++ {
			r := cycle % 2
			for k := 0; k < 4; k++ {
				fault.Kill(chaosHost(k, r))
			}
			kills.Add(1)
			time.Sleep(4 * time.Millisecond)
			for k := 0; k < 4; k++ {
				fault.Revive(chaosHost(k, r))
			}
			time.Sleep(2 * time.Millisecond)
		}
		// Leave everything alive for the post-hammer checks.
		for k := 0; k < 4; k++ {
			for r := 0; r < 2; r++ {
				fault.Revive(chaosHost(k, r))
			}
		}
	}()

	// Session workers: each owns one router session and keeps it alive
	// across kill windows — a tolerated 503 must be followed by working
	// requests on the SAME session once a replica is back.
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			jar, err := cookiejar.New(nil)
			if err != nil {
				fail <- err.Error()
				return
			}
			c := &http.Client{Jar: jar}
			seeds := []string{"tom hanks", "film", "gary sinise", "gump"}
			for i := 0; !stop.Load(); i++ {
				kw := seeds[(w+i)%len(seeds)]
				body := fmt.Sprintf(`{"ops":[{"op":"submit","keywords":"%s"}]}`, kw)
				if code, data, err := post(c, "/api/v1/ops", "application/json", body); err != nil {
					fail <- fmt.Sprintf("worker %d ops: %v", w, err)
					return
				} else if code != http.StatusOK && !tolerable(code, data) {
					fail <- fmt.Sprintf("worker %d ops: status %d: %s", w, code, data)
					return
				}
				resp, err := c.Get(ts.URL + "/api/v1/state?include=entities,heatmap")
				if err != nil {
					fail <- fmt.Sprintf("worker %d state: %v", w, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && !tolerable(resp.StatusCode, string(data)) {
					fail <- fmt.Sprintf("worker %d state: status %d: %s", w, resp.StatusCode, data)
					return
				}
				if i%4 == 0 {
					resp, err := c.Get(ts.URL + "/api/v1/session")
					if err != nil {
						fail <- fmt.Sprintf("worker %d session: %v", w, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(w)
	}

	// Writer: ingest a fresh film, then force a rolling swap, until at
	// least swapsWant swaps have committed. Unavailable rounds (the kill
	// window caught every clean replica of some shard) are retried,
	// never fatal.
	var committedSwaps atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		c := &http.Client{}
		for round := 0; committedSwaps.Load() < swapsWant; round++ {
			if round > 500 {
				fail <- fmt.Sprintf("hammer never reached %d swaps in %d rounds", swapsWant, round)
				return
			}
			nt := fmt.Sprintf(
				"<http://pivote.dev/resource/Hammer_Film_%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pivote.dev/resource/Film> .\n"+
					"<http://pivote.dev/resource/Hammer_Film_%d> <http://pivote.dev/ontology/starring> <http://pivote.dev/resource/Tom_Hanks> .\n",
				round, round)
			if code, data, err := post(c, "/api/v1/ingest", "application/n-triples", nt); err != nil {
				fail <- fmt.Sprintf("ingest: %v", err)
				return
			} else if code != http.StatusOK && !tolerable(code, data) {
				fail <- fmt.Sprintf("ingest: status %d: %s", code, data)
				return
			}
			if code, data, err := post(c, "/api/v1/compact", "", ""); err != nil {
				fail <- fmt.Sprintf("compact: %v", err)
				return
			} else if code == http.StatusOK {
				committedSwaps.Add(1)
			} else if !tolerable(code, data) {
				fail <- fmt.Sprintf("compact: status %d: %s", code, data)
				return
			}
		}
	}()

	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if t.Failed() {
		return
	}
	if got := kills.Load(); got < 2 {
		t.Errorf("chaos loop only completed %d kill/revive cycles; hammer too short to mean anything", got)
	}
	if got := committedSwaps.Load(); got < swapsWant {
		t.Errorf("%d rolling swaps committed, want >= %d", got, swapsWant)
	}

	// Post-hammer: one final rolling swap with everything alive resyncs
	// any replica still marked dirty from the last kill window...
	c := &http.Client{}
	if code, data, err := post(c, "/api/v1/compact", "", ""); err != nil || code != http.StatusOK {
		t.Fatalf("post-hammer compact: code=%d err=%v body=%s", code, err, data)
	}
	// ...after which every replica of every shard must hold the SAME
	// committed generation — the convergence the rolling-swap protocol
	// promises — and the replicas that died mid-swap must have caught up
	// through snapshot adoption, not luck.
	want := cl.Router.committedGen()
	if want == 0 {
		t.Fatal("no committed generation after the hammer")
	}
	adoptions := uint64(0)
	for k := range cl.Nodes {
		for r, n := range cl.Nodes[k] {
			if got := n.Shared().Generation().ID; got != want {
				t.Errorf("shard %d replica %d at generation %d, want committed %d", k, r, got, want)
			}
			adoptions += n.Shared().Live().Adoptions()
		}
	}
	if adoptions == 0 {
		t.Error("no snapshot adoptions during a hammer full of kill/revive cycles")
	}
	// ...after which the ingested data must resolve through the router
	// on a fresh session, proving every surviving replica adopted the
	// swapped-in generations.
	jar, _ := cookiejar.New(nil)
	cj := &http.Client{Jar: jar}
	code, data, err := post(cj, "/api/v1/ops", "application/json",
		`{"ops":[{"op":"lookup","entity":"http://pivote.dev/resource/Hammer_Film_0"}]}`)
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-hammer lookup of ingested entity: code=%d err=%v body=%s", code, err, data)
	}
}
