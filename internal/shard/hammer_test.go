package shard

import (
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
)

// TestHammerShardedCompaction is the sharded race hammer: a 4-shard
// live cluster serves concurrent sessions (ops + state + session
// download) while an ingest loop drives at least 10 compaction swaps
// through the router. Run under -race (CI does) this pins down the
// cross-shard coordination: fan-out goroutines against the per-session
// op log, RCU generation swaps under reads, and the router's health
// table under concurrent failure recording.
func TestHammerShardedCompaction(t *testing.T) {
	const (
		readers   = 6
		swapsWant = 10
	)

	f := kgtest.Build()
	cl := NewCluster(f.Graph, ClusterConfig{
		Shards: 4,
		Opts:   core.Options{},
		Live:   true,
	})
	defer cl.Close()
	ts := httptest.NewServer(cl.Handler())
	defer ts.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan string, readers+1)

	post := func(c *http.Client, path, ctype, body string) (int, string, error) {
		resp, err := c.Post(ts.URL+path, ctype, strings.NewReader(body))
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data), err
	}

	// Session workers: each owns one router session and keeps querying
	// while generations swap underneath.
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			jar, err := cookiejar.New(nil)
			if err != nil {
				fail <- err.Error()
				return
			}
			c := &http.Client{Jar: jar}
			seeds := []string{"tom hanks", "film", "gary sinise", "gump"}
			for i := 0; !stop.Load(); i++ {
				kw := seeds[(w+i)%len(seeds)]
				body := fmt.Sprintf(`{"ops":[{"op":"submit","keywords":"%s"}]}`, kw)
				if code, data, err := post(c, "/api/v1/ops", "application/json", body); err != nil {
					fail <- fmt.Sprintf("worker %d ops: %v", w, err)
					return
				} else if code != http.StatusOK {
					fail <- fmt.Sprintf("worker %d ops: status %d: %s", w, code, data)
					return
				}
				resp, err := c.Get(ts.URL + "/api/v1/state?include=entities,heatmap")
				if err != nil {
					fail <- fmt.Sprintf("worker %d state: %v", w, err)
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail <- fmt.Sprintf("worker %d state: status %d: %s", w, resp.StatusCode, data)
					return
				}
				if i%4 == 0 {
					resp, err := c.Get(ts.URL + "/api/v1/session")
					if err != nil {
						fail <- fmt.Sprintf("worker %d session: %v", w, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(w)
	}

	// Writer: ingest a fresh film, then force a compaction swap, until
	// every shard has swapped at least swapsWant times. The router
	// serializes control-plane fan-out, so all shards stay on the same
	// generation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		c := &http.Client{}
		for round := 0; cl.Nodes[0][0].Shared().Live().Swaps() < swapsWant; round++ {
			// The type triple puts the new film in the entity universe, so
			// the post-hammer lookup can prove the swap is visible.
			nt := fmt.Sprintf(
				"<http://pivote.dev/resource/Hammer_Film_%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pivote.dev/resource/Film> .\n"+
					"<http://pivote.dev/resource/Hammer_Film_%d> <http://pivote.dev/ontology/starring> <http://pivote.dev/resource/Tom_Hanks> .\n",
				round, round)
			if code, data, err := post(c, "/api/v1/ingest", "application/n-triples", nt); err != nil {
				fail <- fmt.Sprintf("ingest: %v", err)
				return
			} else if code != http.StatusOK {
				fail <- fmt.Sprintf("ingest: status %d: %s", code, data)
				return
			}
			if code, data, err := post(c, "/api/v1/compact", "", ""); err != nil {
				fail <- fmt.Sprintf("compact: %v", err)
				return
			} else if code != http.StatusOK {
				fail <- fmt.Sprintf("compact: status %d: %s", code, data)
				return
			}
		}
	}()

	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
	if t.Failed() {
		return
	}
	for k, set := range cl.Nodes {
		if got := set[0].Shared().Live().Swaps(); got < swapsWant {
			t.Errorf("shard %d saw %d swaps, want >= %d", k, got, swapsWant)
		}
	}
	// The swapped-in data must be resolvable through the router: a lookup
	// of an ingested IRI only succeeds if every shard adopted the new
	// generation.
	jar, _ := cookiejar.New(nil)
	c := &http.Client{Jar: jar}
	code, data, err := post(c, "/api/v1/ops", "application/json",
		`{"ops":[{"op":"lookup","entity":"http://pivote.dev/resource/Hammer_Film_0"}]}`)
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-hammer lookup of ingested entity: code=%d err=%v body=%s", code, err, data)
	}
}
