package shard

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pivote/internal/core"
	"pivote/internal/errs"
	"pivote/internal/obs"
	"pivote/internal/server"
	"pivote/internal/wire"
)

// Options tune a Router; zero values select the documented defaults.
type Options struct {
	// TopEntities is the merged x-axis size and MUST match the shard
	// nodes' core.Options.TopEntities (default 20): per-shard page
	// lengths alone cannot reveal the global page size.
	TopEntities int
	// Timeout bounds each individual request attempt (default 10s).
	Timeout time.Duration
	// RequestTimeout bounds one whole logical shard request — every
	// replica attempt, backoff pause and session repair included
	// (default 15s). Without it a hung replica stalls the entire
	// scatter until the client gives up; with it the request fails over
	// (or fails typed) inside a bounded window.
	RequestTimeout time.Duration
	// RetryBase and RetryCap shape the bounded exponential backoff
	// between attempts against one replica: retry n sleeps a random
	// duration in (0, min(RetryCap, RetryBase<<(n-1))] — full jitter,
	// so concurrent sessions hitting the same dying replica do not
	// retry in lockstep. Defaults 25ms and 250ms.
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold consecutive transport failures open a replica's
	// circuit breaker (default 3): the router stops sending it traffic
	// until BreakerCooldown (default 1s) elapses, then lets one probe
	// through — so a dead replica costs its connection failures once
	// per cooldown instead of once per request.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MaxSessions bounds the router-side session LRU (default 64, like
	// server.Multi).
	MaxSessions int
	// Codec selects the inter-node codec policy: CodecAuto (default)
	// negotiates the binary codec per replica and falls back to JSON,
	// CodecJSON forces the fallback everywhere, CodecWire forces the
	// codec on without negotiating. See codec.go.
	Codec Codec
	// Transport issues the shard requests; nil selects
	// http.DefaultTransport. The in-process cluster plugs its
	// InprocTransport (optionally wrapped in a FaultTransport) in here.
	Transport http.RoundTripper
}

func (o Options) withDefaults() Options {
	if o.TopEntities <= 0 {
		o.TopEntities = 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 15 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 250 * time.Millisecond
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	return o
}

// Router is the scatter-gather front of a replicated shard cluster: it
// serves the /api/v1 surface, fans every request out to all shards, and
// merges the per-shard pages back into the exact bytes a single-process
// server would have produced (see MergeStates for the rules and why
// they are sound).
//
// Each shard is a replica SET. Reads are routed to one healthy replica
// per shard (session affinity first, then health-ordered rotation) and
// fail over on transport error; a replica that keeps failing trips a
// per-replica circuit breaker and is routed around until its cooldown
// expires. Writes (ingest) fan to every replica of every shard with
// agreement checks; compaction is a coordinated rolling swap (see
// swap.go). A replica that missed a write or a swap while unreachable
// is marked dirty — excluded from reads, force-resynced by the next
// rolling swap — so the router degrades per replica and only returns a
// typed unavailable error when an entire replica set is gone.
//
// The router holds no graph. Its per-session state is the canonical op
// log plus one cookie per replica; the log is what makes the cluster
// self-healing — a replica that lost its session (restart, LRU
// eviction, failed fan-out, failover target that never saw the session)
// is repaired by idempotently replaying the log through
// POST /api/v1/session before it serves the session.
type Router struct {
	shards [][]string // [shard][replica] base URLs
	opts   Options
	client *http.Client

	mu       sync.Mutex
	sessions map[string]*routerSession
	lru      *list.List // of string tokens, most-recent first

	// ctrl holds per-replica cookies for the session-independent
	// surface (ingest, compact, adopt, live) so control traffic reuses
	// one shard session per replica instead of minting one per request.
	ctrlMu sync.Mutex
	ctrl   [][]string

	// ingestMu serializes write fan-outs (ingest, compact/rolling
	// swap): every replica must intern new terms in the same order so
	// TermIDs — and therefore the partitioning — stay identical across
	// the cluster, and no ingest may land between a shard's compaction
	// and its peers' adoption of the result.
	ingestMu sync.Mutex

	health [][]*replicaHealth

	// scatter is the per-(shard, replica) request-latency grid, built
	// once at construction so the hot path indexes a slice instead of
	// hitting the registry.
	scatter [][]*obs.Histogram

	// committed is the newest generation the rolling-swap protocol
	// committed cluster-wide (every clean replica of every shard adopted
	// it — the stores hold the full graph and partition at emission, so
	// one snapshot serves the whole cluster). A replica answering from
	// an older generation is stale (it revived after missing a swap) and
	// is marked dirty instead of served.
	committed atomic.Uint64

	// rr spreads fresh sessions across replicas.
	rr atomic.Uint32

	// wireCap is the per-replica codec negotiation state (see codec.go).
	wireCap [][]atomic.Int32

	// genFlight coalesces concurrent generation-agreement waits across
	// sessions (see flight.go).
	genFlight flightGroup
}

// routerSession is the per-cookie state: the replayable op log, one
// shard-session cookie per replica, the per-replica sync mark, and the
// preferred replica per shard (session affinity — the shard-side
// session cache lives there). mu serializes fan-outs for the session
// the same way server.mu serializes a single-process session's
// requests.
//
// synced[k][r] is the log length replica (k, r) is known to hold: a
// mutation fan only lands on one replica per shard, so the others fall
// behind the log the moment it grows — not just when a failure is
// observed. Any replica whose mark differs from len(log) (-1 encodes
// "unknown", the ambiguous-failure case) is repaired by replay before
// it serves the session; that invariant is what lets a failover target
// that hasn't seen the session for fifty batches — or ever — answer
// with the exact bytes the dead replica would have produced.
type routerSession struct {
	mu      sync.Mutex
	log     []core.OpDTO
	cookies [][]string
	synced  [][]int
	pref    []int
	elem    *list.Element

	// logEnc caches the repair body (the v2 session file of log) in both
	// codecs, so repairing R replicas — or repairing again next request —
	// re-encodes nothing. Refreshed via refreshLogEnc whenever the log
	// changes, always under rs.mu and never while a fan is in flight;
	// fan goroutines only read the pointer and encode through its
	// sync.Onces.
	logEnc *hopBody
}

// refreshLogEnc rebinds the cached repair encodings to the current log.
// The closures capture the slice VALUE, so a later append to rs.log can
// neither change nor race an encoding already handed out.
func (rs *routerSession) refreshLogEnc() {
	log := rs.log
	rs.logEnc = &hopBody{
		mkJSON: func() []byte {
			b, _ := json.Marshal(sessionFileJSON{Version: 2, Ops: log})
			return b
		},
		mkWire: func() []byte { return wire.AppendSessionFile(nil, 2, log) },
	}
}

// unsynced marks a replica session in an unknown or diverged state.
const unsynced = -1

// sessionFileJSON mirrors the engine's v2 session-file shape; the
// router writes it when replaying its log into a shard replica.
type sessionFileJSON struct {
	Version int          `json:"version"`
	Ops     []core.OpDTO `json:"ops"`
}

// NewRouter builds a router over unreplicated shards — one base URL
// (scheme + host, no trailing slash) per shard.
func NewRouter(shardURLs []string, opts Options) *Router {
	sets := make([][]string, len(shardURLs))
	for i, u := range shardURLs {
		sets[i] = []string{u}
	}
	return NewReplicatedRouter(sets, opts)
}

// NewReplicatedRouter builds a router over replica sets: urls[k] lists
// the base URLs of shard k's replicas. Every set must be non-empty.
func NewReplicatedRouter(urls [][]string, opts Options) *Router {
	opts = opts.withDefaults()
	transport := opts.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	shards := make([][]string, len(urls))
	ctrl := make([][]string, len(urls))
	health := make([][]*replicaHealth, len(urls))
	for k, set := range urls {
		shards[k] = make([]string, len(set))
		ctrl[k] = make([]string, len(set))
		health[k] = make([]*replicaHealth, len(set))
		for r, u := range set {
			shards[k][r] = strings.TrimRight(u, "/")
			health[k][r] = &replicaHealth{}
		}
	}
	return &Router{
		shards:   shards,
		opts:     opts,
		client:   &http.Client{Transport: transport},
		sessions: map[string]*routerSession{},
		lru:      list.New(),
		ctrl:     ctrl,
		health:   health,
		scatter:  scatterHist(shards),
		wireCap:  newWireCap(shards),
	}
}

// NumShards reports the cluster size.
func (rt *Router) NumShards() int { return len(rt.shards) }

// NumReplicas reports the replica count of shard k.
func (rt *Router) NumReplicas(k int) int { return len(rt.shards[k]) }

func (rt *Router) committedGen() uint64 { return rt.committed.Load() }

func (rt *Router) commitGen(g uint64) {
	for {
		cur := rt.committed.Load()
		if g <= cur || rt.committed.CompareAndSwap(cur, g) {
			return
		}
	}
}

// Handler returns the router's HTTP handler: the full /api/v1 surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/ops", rt.withSession(rt.handleOps))
	mux.HandleFunc("GET /api/v1/state", rt.withSession(rt.handleState))
	mux.HandleFunc("GET /api/v1/session", rt.withSession(rt.handleSessionSave))
	mux.HandleFunc("POST /api/v1/session", rt.withSession(rt.handleSessionLoad))
	mux.HandleFunc("POST /api/v1/ingest", rt.handleIngest)
	mux.HandleFunc("POST /api/v1/compact", rt.handleCompact)
	mux.HandleFunc("GET /api/v1/live", rt.handleLive)
	// The same observability surface a shard node serves, so one scrape
	// config covers every process shape in the cluster.
	obs.MetricsRoutes(mux, obs.Default, obs.SlowQueries)
	return mux
}

const sessionCookie = "pivote_session" // same name the shard nodes use

// withSession resolves (or mints) the router-side session for the
// request and pins its cookie on the response, mirroring server.Multi.
func (rt *Router) withSession(h func(http.ResponseWriter, *http.Request, *routerSession)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := ""
		if c, err := r.Cookie(sessionCookie); err == nil && c.Value != "" {
			token = c.Value
		}
		rs, token, err := rt.getOrCreate(token)
		if err != nil {
			server.WriteV1Error(w, err, nil)
			return
		}
		http.SetCookie(w, &http.Cookie{
			Name:     sessionCookie,
			Value:    token,
			Path:     "/",
			HttpOnly: true,
			SameSite: http.SameSiteLaxMode,
		})
		h(w, r, rs)
	}
}

func (rt *Router) getOrCreate(token string) (*routerSession, string, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rs, ok := rt.sessions[token]; ok {
		rt.lru.MoveToFront(rs.elem)
		return rs, token, nil
	}
	// Unknown (or empty) token: mint a fresh one, never adopt a
	// client-supplied value — same policy as server.Multi.
	token, err := newToken()
	if err != nil {
		return nil, "", err
	}
	rs := &routerSession{
		cookies: make([][]string, len(rt.shards)),
		synced:  make([][]int, len(rt.shards)),
		pref:    make([]int, len(rt.shards)),
	}
	rs.refreshLogEnc()
	seed := int(rt.rr.Add(1))
	for k := range rt.shards {
		rs.cookies[k] = make([]string, len(rt.shards[k]))
		rs.synced[k] = make([]int, len(rt.shards[k]))
		rs.pref[k] = seed % len(rt.shards[k])
	}
	rs.elem = rt.lru.PushFront(token)
	rt.sessions[token] = rs
	for len(rt.sessions) > rt.opts.MaxSessions {
		oldest := rt.lru.Back()
		rt.lru.Remove(oldest)
		delete(rt.sessions, oldest.Value.(string))
	}
	return rs, token, nil
}

// newToken mints a session ID. An entropy failure surfaces as a typed
// internal error on the response path — a router must not crash the
// process because /dev/urandom hiccuped under one request.
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", errs.Errf(errs.KindInternal, "shard: session id: crypto/rand unavailable: %v", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// shardResp is one replica's reply, body fully read into a pooled
// buffer. The consumer that receives it owns it and calls free() after
// the last touch of body/header (see bufpool.go).
type shardResp struct {
	status int
	header http.Header
	body   []byte
	bp     *[]byte // pool ticket for body's buffer; nil once freed
}

func (sr *shardResp) sessionCookie() string {
	for _, c := range (&http.Response{Header: sr.header}).Cookies() {
		if c.Name == sessionCookie {
			return c.Value
		}
	}
	return ""
}

// generation parses the response's generation header; ok is false when
// the response carries none (error envelopes, session downloads).
func (sr *shardResp) generation() (uint64, bool) {
	v := sr.header.Get(server.GenerationHeader)
	if v == "" {
		return 0, false
	}
	g, err := strconv.ParseUint(v, 10, 64)
	return g, err == nil
}

// shardOutcome is one shard's result of a fan-out: the reply (or typed
// error) plus which replica produced it.
type shardOutcome struct {
	resp    *shardResp
	err     error
	replica int
}

// sendReplica issues one request to a specific replica with a
// per-attempt timeout and, when retries > 0, bounded-exponential
// jittered retries on transport failure. HTTP responses of any status
// are NOT retried here — they are answers; replica selection above
// decides whether to fail over on them. A request that cannot be
// delivered comes back as a typed unavailable error. parent is the
// client's context: its cancellation is reported as canceled, while an
// expiry of the (router-imposed) deadline on ctx is reported as
// unavailable — a hung replica is the cluster's problem, not the
// client's.
func (rt *Router) sendReplica(parent, ctx context.Context, k, r int, method, pathq string, body []byte, contentType, cookie string, retries int) (*shardResp, error) {
	h := rt.health[k][r]
	defer shardEnd(rt.scatter[k][r], shardStart())
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			mRetries.Inc()
			if !rt.backoff(ctx, attempt) {
				break // context ended during backoff; classified below
			}
		}
		resp, err := rt.sendOnce(ctx, k, r, method, pathq, body, contentType, cookie)
		if err == nil {
			h.recordSuccess()
			if g, ok := resp.generation(); ok {
				h.observeGen(g)
			}
			return resp, nil
		}
		if errors.Is(err, errHopTooLarge) {
			// An oversized body is a deterministic answer, not a transient
			// fault: retrying would re-download the same overflow.
			h.recordFailure(err.Error(), rt.opts.BreakerThreshold, rt.opts.BreakerCooldown)
			return nil, errs.Errf(errs.KindUnavailable, "shard %d replica %d (%s): %v",
				k, r, rt.shards[k][r], err)
		}
		lastErr = err
		if ctx.Err() != nil {
			if parent.Err() != nil {
				// The client went away: report cancellation, not shard death.
				return nil, errs.Errf(errs.KindCanceled, "shard %d: %v", k, parent.Err())
			}
			h.recordFailure("timed out", rt.opts.BreakerThreshold, rt.opts.BreakerCooldown)
			return nil, errs.Errf(errs.KindUnavailable, "shard %d replica %d (%s): request timed out: %v",
				k, r, rt.shards[k][r], err)
		}
		h.recordFailure(err.Error(), rt.opts.BreakerThreshold, rt.opts.BreakerCooldown)
	}
	return nil, errs.Errf(errs.KindUnavailable, "shard %d replica %d (%s) unreachable: %v",
		k, r, rt.shards[k][r], lastErr)
}

func (rt *Router) sendOnce(ctx context.Context, k, r int, method, pathq string, body []byte, contentType, cookie string) (*shardResp, error) {
	cctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
	defer cancel()
	var rdr io.Reader
	if body != nil {
		rdr = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(cctx, method, rt.shards[k][r]+pathq, rdr)
	if err != nil {
		return nil, err
	}
	if contentType != "" && body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	if cookie != "" {
		req.AddCookie(&http.Cookie{Name: sessionCookie, Value: cookie})
	}
	offerWire := rt.opts.Codec != CodecJSON && wireEligible(method, pathq)
	if offerWire {
		req.Header.Set("Accept", wire.ContentType)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if offerWire {
		// Negotiated routes always advertise (even on error envelopes),
		// so any response is a definitive capability verdict.
		rt.observeWireCap(k, r, resp.Header)
	}
	data, bp, err := readBody(resp.Body, resp.ContentLength, limitFor(pathq))
	if err != nil {
		// A truncated or torn body is a transport failure, not an
		// answer: the status line arrived but the response did not.
		// (An oversized one is typed and handled by sendReplica.)
		return nil, err
	}
	return &shardResp{status: resp.StatusCode, header: resp.Header, body: data, bp: bp}, nil
}

// repair replays the session's op log into replica (k, r), rebuilding
// the shard-side session from scratch. Replay is idempotent
// (LoadSession replaces the session wholesale), and ?include=timeline
// keeps it cheap: the shard skips ranking and heat-map work entirely.
// The body comes from the session's cached log encodings (rs.logEnc) —
// repairing many replicas, or the same one across requests, re-encodes
// the log zero times.
func (rt *Router) repair(parent, ctx context.Context, rs *routerSession, k, r int) error {
	body, contentType := rt.pick(rs.logEnc, k, r)
	resp, err := rt.sendReplica(parent, ctx, k, r, http.MethodPost, "/api/v1/session?include=timeline",
		body, contentType, rs.cookies[k][r], 1)
	if err != nil {
		return err
	}
	defer resp.free()
	if c := resp.sessionCookie(); c != "" {
		rs.cookies[k][r] = c
	}
	if resp.status != http.StatusOK {
		return errs.Errf(errs.KindUnavailable, "shard %d replica %d: session repair failed: %s",
			k, r, strings.TrimSpace(string(resp.body)))
	}
	rs.synced[k][r] = len(rs.log)
	return nil
}

// statefulReplica issues a session-scoped request to one replica,
// transparently repairing the replica's session first when it is out of
// sync with the log (it missed mutations routed elsewhere, holds an
// ambiguous state, or has never seen the session at all), and redoing
// the request once when the replica evicted the session mid-flight
// (detected by a changed session cookie: shard nodes never adopt an
// unknown token, so a different Set-Cookie value proves the response
// came from a fresh, empty session instead of ours).
func (rt *Router) statefulReplica(parent, ctx context.Context, rs *routerSession, k, r int, method, pathq string, hb *hopBody, retries int) (*shardResp, error) {
	if rs.synced[k][r] != len(rs.log) {
		if err := rt.repair(parent, ctx, rs, k, r); err != nil {
			return nil, err
		}
	}
	body, contentType := rt.pick(hb, k, r)
	resp, err := rt.sendReplica(parent, ctx, k, r, method, pathq, body, contentType, rs.cookies[k][r], retries)
	if err != nil {
		// Ambiguous outcome (a mutation may or may not have landed):
		// force a repair before this replica serves this session again.
		rs.synced[k][r] = unsynced
		return nil, err
	}
	c := resp.sessionCookie()
	switch {
	case rs.cookies[k][r] == "":
		rs.cookies[k][r] = c
	case c != "" && c != rs.cookies[k][r]:
		resp.free() // fresh-session answer; superseded by the redo below
		rs.cookies[k][r] = c
		if err := rt.repair(parent, ctx, rs, k, r); err != nil {
			rs.synced[k][r] = unsynced
			return nil, err
		}
		// Re-pick: the negotiation state may have flipped on the repair.
		body, contentType = rt.pick(hb, k, r)
		resp, err = rt.sendReplica(parent, ctx, k, r, method, pathq, body, contentType, rs.cookies[k][r], retries)
		if err != nil {
			rs.synced[k][r] = unsynced
			return nil, err
		}
		if c2 := resp.sessionCookie(); c2 != "" {
			rs.cookies[k][r] = c2
		}
	}
	return resp, nil
}

// stateful issues a session-scoped request to shard k, failing over
// across the shard's replicas: transport failures (and, for idempotent
// requests, 5xx responses and answers from a generation older than the
// shard's committed one) move on to the next healthy replica; the
// replica that answers becomes the session's preferred replica. Only
// when every replica is exhausted does the shard report a typed
// unavailable error. retries > 0 marks the request idempotent (reads,
// replays); mutations pass 0 and fail over on transport errors alone —
// the stale-repair machinery is their retry path.
func (rt *Router) stateful(ctx context.Context, rs *routerSession, k int, method, pathq string, hb *hopBody, retries int) (*shardResp, int, error) {
	reqCtx, cancel := context.WithTimeout(ctx, rt.opts.RequestTimeout)
	defer cancel()
	order, dirty := rt.replicaOrder(k, rs.pref[k])
	if len(order) == 0 {
		return nil, -1, errs.Errf(errs.KindUnavailable,
			"shard %d: all %d replicas diverged, awaiting resync", k, dirty)
	}
	idempotent := retries > 0
	var firstServerErr *shardResp
	firstServerReplica := -1
	var lastErr error
	for i, r := range order {
		resp, err := rt.statefulReplica(ctx, reqCtx, rs, k, r, method, pathq, hb, retries)
		if err != nil {
			if errs.KindOf(err) == errs.KindCanceled {
				return nil, r, err
			}
			lastErr = err
			if i < len(order)-1 {
				mFailovers.Inc()
			}
			continue
		}
		if g, ok := resp.generation(); ok && resp.status == http.StatusOK && g < rt.committedGen() {
			// The replica answered from a generation the cluster moved
			// past — it revived after missing a swap. Serving it would
			// un-happen acknowledged writes; resync it instead. The
			// request may have mutated the replica's session, so its sync
			// mark is gone too.
			rt.health[k][r].markDirty("behind committed generation")
			rs.synced[k][r] = unsynced
			lastErr = errs.Errf(errs.KindUnavailable,
				"shard %d replica %d: generation %d behind committed %d", k, r, g, rt.committedGen())
			resp.free()
			continue
		}
		if idempotent && resp.status >= http.StatusInternalServerError {
			// A 5xx on an idempotent request: remember the answer but
			// give the other replicas a chance to serve.
			if firstServerErr == nil {
				firstServerErr, firstServerReplica = resp, r
			} else {
				resp.free()
			}
			continue
		}
		rs.pref[k] = r
		firstServerErr.free() // a later replica served; the 5xx loses
		return resp, r, nil
	}
	if firstServerErr != nil {
		return firstServerErr, firstServerReplica, nil
	}
	if lastErr == nil {
		lastErr = errs.Errf(errs.KindUnavailable, "shard %d: no replica available", k)
	}
	return nil, -1, lastErr
}

// fanStateful runs a session-scoped request against every shard
// concurrently. The caller holds rs.mu; the goroutines touch disjoint
// per-shard slots (cookies, staleness, preference are per-shard
// slices).
func (rt *Router) fanStateful(ctx context.Context, rs *routerSession, method, pathq string, hb *hopBody, retries int) []shardOutcome {
	outs := make([]shardOutcome, len(rt.shards))
	var wg sync.WaitGroup
	for k := range rt.shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			resp, r, err := rt.stateful(ctx, rs, k, method, pathq, hb, retries)
			outs[k] = shardOutcome{resp: resp, err: err, replica: r}
		}(k)
	}
	wg.Wait()
	return outs
}

// firstFailure finds the lowest-indexed shard whose request failed
// (transport error or non-200), or -1 when all succeeded. Picking the
// lowest index keeps error responses deterministic.
func firstFailure(outs []shardOutcome) int {
	for k := range outs {
		if outs[k].err != nil || outs[k].resp.status != http.StatusOK {
			return k
		}
	}
	return -1
}

// markApplied voids the sync mark of every replica session that
// accepted a mutation the batch ultimately failed on (some peer
// rejected it or went away): their session state has diverged from the
// log and must be rebuilt by replay before next use.
func markApplied(rs *routerSession, outs []shardOutcome) {
	for k := range outs {
		if outs[k].err == nil && outs[k].resp.status == http.StatusOK && outs[k].replica >= 0 {
			rs.synced[k][outs[k].replica] = unsynced
		}
	}
}

// markSynced records, after the log changed to length n, that the
// replica which served each shard's part of the mutation now holds
// exactly the new log. Every other replica's mark now differs from
// len(log), which is precisely what schedules their repair.
func markSynced(rs *routerSession, outs []shardOutcome, n int) {
	for k := range outs {
		if outs[k].replica >= 0 {
			rs.synced[k][outs[k].replica] = n
		}
	}
}

// relay writes a shard's response through unchanged — error envelopes
// and downloads stay byte-identical to a direct server's.
func relay(w http.ResponseWriter, resp *shardResp) {
	for _, k := range []string{"Content-Type", "Content-Disposition"} {
		if v := resp.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// failOut reports the fan-out's first failure: transport failures
// become typed unavailable envelopes, shard HTTP errors are relayed
// verbatim.
func failOut(w http.ResponseWriter, outs []shardOutcome, k int) {
	if outs[k].err != nil {
		server.WriteV1Error(w, outs[k].err, nil)
		return
	}
	relay(w, outs[k].resp)
}

func rawQuery(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return "?" + r.URL.RawQuery
	}
	return ""
}

// sameGeneration reports whether every shard evaluated on the same
// generation (by the X-Pivote-Generation response header). Pages from
// mixed generations must never be merged: the result would match no
// single-process output. Responses without the header don't vote.
func sameGeneration(outs []shardOutcome) bool {
	seen := uint64(0)
	have := false
	for _, out := range outs {
		g, ok := out.resp.generation()
		if !ok {
			continue
		}
		if !have {
			seen, have = g, true
		} else if g != seen {
			return false
		}
	}
	return true
}

// genRetries bounds the re-reads while shards adopt a new generation.
// Router-coordinated swaps converge deterministically (the rolling-swap
// commit happens before the compact response returns), so this loop
// only absorbs node-local background compactions; a handful of short
// pauses is plenty, and a cluster that cannot converge in this many
// rounds is genuinely unhealthy.
const genRetries = 25

// genPause briefly decorrelates a re-read from the swap in progress.
func (rt *Router) genPause(ctx context.Context) {
	select {
	case <-time.After(rt.opts.RetryBase/5 + time.Millisecond):
	case <-ctx.Done():
	}
}

// fanMergeState fans a session-scoped GET /api/v1/state to every shard
// and merges the pages, re-reading while a compaction swap leaves the
// shards on different generations (reads are idempotent, so the loop is
// safe). On failure it writes the error response and reports false.
//
// sc is the caller's pooled decode scratch; the merged state ALIASES
// its first element's slices, so the caller must not release sc until
// the merged response has been written.
func (rt *Router) fanMergeState(ctx context.Context, w http.ResponseWriter, rs *routerSession, pathq string, sc *stateScratch) (server.StateV1DTO, bool) {
	for attempt := 0; ; attempt++ {
		outs := rt.fanStateful(ctx, rs, http.MethodGet, pathq, nil, 1)
		if k := firstFailure(outs); k >= 0 {
			failOut(w, outs, k)
			freeOuts(outs)
			return server.StateV1DTO{}, false
		}
		if !sameGeneration(outs) {
			freeOuts(outs)
			if attempt < genRetries {
				mGenRereads.Inc()
				rt.awaitAgreement(ctx)
				continue
			}
			server.WriteV1Error(w, errs.Errf(errs.KindUnavailable,
				"shard: cluster did not converge on one generation"), nil)
			return server.StateV1DTO{}, false
		}
		states := sc.states
		for k, out := range outs {
			if err := decodeStateResp(out.resp, &states[k]); err != nil {
				server.WriteV1Error(w, core.Errf(core.KindInternal, "shard %d: bad state response: %v", k, err), nil)
				freeOuts(outs)
				return server.StateV1DTO{}, false
			}
		}
		freeOuts(outs) // decoded pages hold no references into the bodies
		merged, err := MergeStates(states, rt.opts.TopEntities)
		if err != nil {
			server.WriteV1Error(w, err, nil)
			return server.StateV1DTO{}, false
		}
		return merged, true
	}
}

// statePathFor builds the GET /api/v1/state path that reproduces a
// request's field selection (?include= wins over the body value, like
// the shard nodes).
func statePathFor(r *http.Request, bodyInclude string) string {
	inc := r.URL.Query().Get("include")
	if inc == "" {
		inc = bodyInclude
	}
	if inc == "" {
		return "/api/v1/state"
	}
	return "/api/v1/state?include=" + url.QueryEscape(inc)
}

// opsRequestJSON mirrors the shard nodes' opsRequest body.
type opsRequestJSON struct {
	Ops     []core.OpDTO `json:"ops"`
	Include string       `json:"include,omitempty"`
}

// handleOps fans an op batch to every shard (one replica each, with
// transport failover) and merges the pages. On unanimous success the
// batch joins the session log; on any failure the replicas that DID
// apply it are marked stale so the next request rolls them back by
// replaying the log (which does not contain the batch).
func (rt *Router) handleOps(w http.ResponseWriter, r *http.Request, rs *routerSession) {
	var req opsRequestJSON
	// Same decode, same 4 MB cap as a shard node, so a malformed body
	// produces the identical envelope without any fan-out.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		server.WriteV1Error(w, core.Errf(core.KindInvalid, "bad request body: %v", err), nil)
		return
	}
	// The fan body is encoded lazily, at most once per codec, no matter
	// how many replicas (and repairs) the fan ends up touching.
	hb := opsBody(req.Ops, req.Include)
	pathq := "/api/v1/ops" + rawQuery(r)

	rs.mu.Lock()
	defer rs.mu.Unlock()
	sc := getScratch(len(rt.shards))
	defer putScratch(sc) // merged response aliases sc; release after write
	// No blind resend for ops: a retry after an ambiguous transport
	// failure could double-apply the batch. Failover plus the
	// stale-repair machinery is the retry path instead.
	outs := rt.fanStateful(r.Context(), rs, http.MethodPost, pathq, hb, 0)
	if k := firstFailure(outs); k >= 0 {
		markApplied(rs, outs)
		failOut(w, outs, k)
		freeOuts(outs)
		return
	}
	// Unanimous success: the batch is part of every shard's session, so
	// it joins the log now — whatever happens below, a repair replay must
	// reproduce the sessions as they are. The replicas that served the
	// batch are the only ones holding the grown log.
	rs.log = append(rs.log, req.Ops...)
	rs.refreshLogEnc()
	markSynced(rs, outs, len(rs.log))
	if !sameGeneration(outs) {
		freeOuts(outs)
		// A compaction swap landed mid-fan: the pages come from different
		// generations and must not be merged. The ops ARE applied; re-read
		// the (deterministic) session state until the shards agree on one
		// generation, and answer with that — a valid single-process
		// outcome, since the swap also could have landed just before the
		// batch.
		applied := len(req.Ops)
		merged, ok := rt.fanMergeState(r.Context(), w, rs, statePathFor(r, req.Include), sc)
		if !ok {
			return
		}
		server.WriteJSON(w, http.StatusOK, server.OpsResponse{Applied: applied, State: merged})
		return
	}
	applied := 0
	for k, out := range outs {
		var shardApplied int
		if err := decodeOpsResp(out.resp, &shardApplied, &sc.states[k]); err != nil {
			server.WriteV1Error(w, core.Errf(core.KindInternal, "shard %d: bad ops response: %v", k, err), nil)
			freeOuts(outs)
			return
		}
		if k == 0 {
			applied = shardApplied
		}
	}
	freeOuts(outs)
	merged, err := MergeStates(sc.states, rt.opts.TopEntities)
	if err != nil {
		server.WriteV1Error(w, err, nil)
		return
	}
	server.WriteJSON(w, http.StatusOK, server.OpsResponse{Applied: applied, State: merged})
}

// handleState fans the read to every shard and merges, re-reading while
// a compaction swap leaves the shards on mixed generations.
func (rt *Router) handleState(w http.ResponseWriter, r *http.Request, rs *routerSession) {
	pathq := "/api/v1/state" + rawQuery(r)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	sc := getScratch(len(rt.shards))
	defer putScratch(sc) // merged response aliases sc; release after write
	merged, ok := rt.fanMergeState(r.Context(), w, rs, pathq, sc)
	if !ok {
		return
	}
	server.WriteJSON(w, http.StatusOK, merged)
}

// handleSessionSave proxies the download from shard 0 (any healthy
// replica): every replica's canonical op log is identical (EncodeOp
// canonicalizes entity references to IRIs regardless of how the client
// spelled them), so one replica's file is THE file.
func (rt *Router) handleSessionSave(w http.ResponseWriter, r *http.Request, rs *routerSession) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	resp, _, err := rt.stateful(r.Context(), rs, 0, http.MethodGet, "/api/v1/session", nil, 1)
	if err != nil {
		server.WriteV1Error(w, err, nil)
		return
	}
	relay(w, resp)
	resp.free()
}

// handleSessionLoad fans a session replay to every shard. On unanimous
// success the uploaded file's ops become the router's log; on any
// failure the replicas that did replay are marked stale (they now hold
// the NEW session while the log still describes the old one).
func (rt *Router) handleSessionLoad(w http.ResponseWriter, r *http.Request, rs *routerSession) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		server.WriteV1Error(w, core.Errf(core.KindInvalid, "read body: %v", err), nil)
		return
	}
	// Pre-decode the upload once: a decodable file gets a wire twin for
	// the fan (encoded lazily, shared across replicas); an undecodable
	// one is still fanned verbatim as JSON so the shards produce the
	// byte-identical rejection envelope a single-process server would.
	hb := jsonOnlyBody(raw)
	dtos, derr := core.DecodeSessionDTOs(raw)
	if derr == nil {
		hb.mkWire = func() []byte { return wire.AppendSessionFile(nil, 2, dtos) }
	}
	pathq := "/api/v1/session" + rawQuery(r)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	sc := getScratch(len(rt.shards))
	defer putScratch(sc) // merged response aliases sc; release after write
	// Replay is idempotent, so the transport-level retry is safe here.
	outs := rt.fanStateful(r.Context(), rs, http.MethodPost, pathq, hb, 1)
	if k := firstFailure(outs); k >= 0 {
		markApplied(rs, outs)
		failOut(w, outs, k)
		freeOuts(outs)
		return
	}
	// All shards accepted the replay, so the file decodes; its DTOs are
	// the new log. (A v1-format upload synthesizes the same ops the
	// shards synthesized.)
	if derr != nil {
		server.WriteV1Error(w, core.Errf(core.KindInternal, "session accepted by shards but not decodable: %v", derr), nil)
		freeOuts(outs)
		return
	}
	rs.log = dtos
	rs.refreshLogEnc()
	// The log was REPLACED, so no stale mark may survive by length
	// coincidence: void everyone, then credit the repliers.
	for k := range rs.synced {
		for r := range rs.synced[k] {
			rs.synced[k][r] = unsynced
		}
	}
	markSynced(rs, outs, len(rs.log))
	if !sameGeneration(outs) {
		freeOuts(outs)
		// Same rule as handleOps: the replay landed everywhere, but the
		// pages straddle a compaction swap — re-read instead of merging.
		merged, ok := rt.fanMergeState(r.Context(), w, rs, statePathFor(r, ""), sc)
		if !ok {
			return
		}
		server.WriteJSON(w, http.StatusOK, merged)
		return
	}
	for k, out := range outs {
		if err := decodeStateResp(out.resp, &sc.states[k]); err != nil {
			server.WriteV1Error(w, core.Errf(core.KindInternal, "shard %d: bad state response: %v", k, err), nil)
			freeOuts(outs)
			return
		}
	}
	freeOuts(outs)
	merged, err := MergeStates(sc.states, rt.opts.TopEntities)
	if err != nil {
		server.WriteV1Error(w, err, nil)
		return
	}
	server.WriteJSON(w, http.StatusOK, merged)
}

// ctrlReplica runs a session-independent request against one specific
// replica with the control cookie jar.
func (rt *Router) ctrlReplica(parent, ctx context.Context, k, r int, method, pathq string, body []byte, contentType string, retries int) (*shardResp, error) {
	rt.ctrlMu.Lock()
	cookie := rt.ctrl[k][r]
	rt.ctrlMu.Unlock()
	resp, err := rt.sendReplica(parent, ctx, k, r, method, pathq, body, contentType, cookie, retries)
	if err == nil {
		if c := resp.sessionCookie(); c != "" {
			rt.ctrlMu.Lock()
			rt.ctrl[k][r] = c
			rt.ctrlMu.Unlock()
		}
	}
	return resp, err
}

// ctrlShard runs a session-independent idempotent request against the
// first replica of shard k that delivers an answer, in health order.
// Returns the replica that answered.
func (rt *Router) ctrlShard(ctx context.Context, k int, method, pathq string, body []byte, contentType string) (*shardResp, int, error) {
	reqCtx, cancel := context.WithTimeout(ctx, rt.opts.RequestTimeout)
	defer cancel()
	order, dirty := rt.replicaOrder(k, 0)
	if len(order) == 0 {
		return nil, -1, errs.Errf(errs.KindUnavailable,
			"shard %d: all %d replicas diverged, awaiting resync", k, dirty)
	}
	var lastErr error
	for _, r := range order {
		resp, err := rt.ctrlReplica(ctx, reqCtx, k, r, method, pathq, body, contentType, 1)
		if err != nil {
			if errs.KindOf(err) == errs.KindCanceled {
				return nil, r, err
			}
			lastErr = err
			continue
		}
		return resp, r, nil
	}
	return nil, -1, lastErr
}

// handleIngest fans the batch to EVERY replica of every shard,
// serialized so all replicas intern new terms in the same order (TermID
// agreement is what keeps the partitioning consistent). Ingest is
// idempotent by content — re-adding a triple or re-deleting a tombstone
// converges — so a client that sees an unavailable error retries the
// same batch safely.
//
// Per shard the write is acknowledged by the first successful CLEAN
// replica; once acked, every clean sibling that was unreachable or
// whose report disagrees is marked dirty (its store now provably lacks
// an acknowledged write) and is excluded from reads until the next
// rolling swap force-resyncs it. A shard whose clean replicas all
// failed rejects the batch WITHOUT dirtying anyone: an unacknowledged
// write leaves no replica behind. Together with the swap protocol
// (adoption failures dirty the peer, never the primary) this keeps the
// invariant that every shard always has at least one clean replica —
// the one holding every acknowledged write — so a shard can always be
// resynced, and "all replicas diverged" is unreachable under any
// sequence of single faults.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		server.WriteV1Error(w, core.Errf(core.KindInvalid, "read body: %v", err), nil)
		return
	}
	contentType := r.Header.Get("Content-Type")
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()

	type replicaOut struct {
		resp *shardResp
		err  error
	}
	results := make([][]replicaOut, len(rt.shards))
	defer func() {
		// Every replica response is compared (and one relayed) before the
		// handler returns; release all the bodies in one sweep.
		for k := range results {
			for rep := range results[k] {
				results[k][rep].resp.free()
			}
		}
	}()
	reqCtx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for k := range rt.shards {
		results[k] = make([]replicaOut, len(rt.shards[k]))
		for rep := range rt.shards[k] {
			wg.Add(1)
			go func(k, rep int) {
				defer wg.Done()
				resp, err := rt.ctrlReplica(r.Context(), reqCtx, k, rep, http.MethodPost, "/api/v1/ingest", body, contentType, 1)
				results[k][rep] = replicaOut{resp: resp, err: err}
			}(k, rep)
		}
	}
	wg.Wait()

	outs := make([]shardOutcome, len(rt.shards))
	for k := range results {
		ref, firstCleanErr := -1, error(nil)
		allDirty := true
		for rep, ro := range results[k] {
			if rt.health[k][rep].isDirty() {
				continue // a diverged store cannot acknowledge a write
			}
			allDirty = false
			if ro.err == nil && ref == -1 {
				ref = rep
			}
			if ro.err != nil && firstCleanErr == nil {
				firstCleanErr = ro.err
			}
		}
		if ref == -1 {
			// Unacknowledged: the batch failed on this shard and dirties
			// nobody — the clean replicas still agree with each other.
			err := firstCleanErr
			if allDirty {
				err = errs.Errf(errs.KindUnavailable,
					"shard %d: all %d replicas diverged, awaiting resync", k, len(results[k]))
			}
			outs[k] = shardOutcome{err: err, replica: -1}
			continue
		}
		outs[k] = shardOutcome{resp: results[k][ref].resp, replica: ref}
		// Agreement check: every other clean replica must have produced
		// the byte-identical report (the stores are deterministic, so any
		// disagreement means divergence). Failures and disagreements are
		// dirtied — the acknowledged write lives on replica ref, not them.
		for rep, ro := range results[k] {
			h := rt.health[k][rep]
			if rep == ref || h.isDirty() {
				continue
			}
			switch {
			case ro.err != nil:
				h.markDirty("missed ingest batch: " + ro.err.Error())
			case ro.resp.status != results[k][ref].resp.status || string(ro.resp.body) != string(results[k][ref].resp.body):
				h.markDirty("ingest report diverged from replica " + strconv.Itoa(ref))
			}
		}
	}
	if k := firstFailure(outs); k >= 0 {
		failOut(w, outs, k)
		return
	}
	// Every shard holds the same store content, so the reports agree;
	// shard 0's is relayed verbatim.
	relay(w, outs[0].resp)
}

// ReplicaHealthDTO is one replica's entry in the router's live report.
type ReplicaHealthDTO struct {
	Replica int    `json:"replica"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// State summarizes serving eligibility: "ok" (in rotation),
	// "cooldown" (breaker open), "stale" (diverged, awaiting resync) or
	// "unreachable".
	State string `json:"state"`
	// Generation is the newest generation this replica reported.
	Generation uint64 `json:"generation"`
	Error      string `json:"error,omitempty"`
	// Stats is the replica's own /api/v1/live body when it answered.
	Stats *server.LiveStats `json:"stats,omitempty"`
}

// ShardHealthDTO is one replica set's entry in the router's live
// report. A shard is healthy while at least one replica serves;
// Degraded reports replicas that are out of rotation (dead, cooling
// down, or awaiting resync).
type ShardHealthDTO struct {
	Shard    int                `json:"shard"`
	Addr     string             `json:"addr"` // first replica, for single-replica compatibility
	Healthy  bool               `json:"healthy"`
	Degraded int                `json:"degraded,omitempty"`
	Error    string             `json:"error,omitempty"`
	Stats    *server.LiveStats  `json:"stats,omitempty"`
	Replicas []ReplicaHealthDTO `json:"replicas"`
}

// RouterInfoDTO summarizes the cluster.
type RouterInfoDTO struct {
	Shards int `json:"shards"`
	// Replicas is the total replica count across all shards.
	Replicas int `json:"replicas"`
	// Healthy counts shards with at least one serving replica.
	Healthy int `json:"healthy"`
	// DegradedReplicas counts replicas out of rotation cluster-wide.
	DegradedReplicas int `json:"degradedReplicas,omitempty"`
	// Committed is the generation the rolling-swap protocol last
	// committed cluster-wide (0 until the first coordinated swap).
	Committed uint64 `json:"committed,omitempty"`
}

// RouterLiveDTO is the router's GET /api/v1/live body: the first
// healthy replica's stats flattened at the top level (so single-process
// monitoring keeps working against a router), plus per-shard,
// per-replica health.
type RouterLiveDTO struct {
	server.LiveStats
	Router      RouterInfoDTO    `json:"router"`
	ShardHealth []ShardHealthDTO `json:"shardHealth"`
}

// handleLive aggregates cluster health from every replica. Unlike every
// other endpoint it never fails outright: a dead replica becomes an
// unhealthy row, because the whole point of a health endpoint is
// answering while things burn.
func (rt *Router) handleLive(w http.ResponseWriter, r *http.Request) {
	out := RouterLiveDTO{
		Router:      RouterInfoDTO{Shards: len(rt.shards), Committed: rt.committedGen()},
		ShardHealth: make([]ShardHealthDTO, len(rt.shards)),
	}
	reqCtx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
	defer cancel()
	type probe struct {
		resp *shardResp
		err  error
	}
	probes := make([][]probe, len(rt.shards))
	defer func() {
		for k := range probes {
			for rep := range probes[k] {
				probes[k][rep].resp.free()
			}
		}
	}()
	var wg sync.WaitGroup
	for k := range rt.shards {
		probes[k] = make([]probe, len(rt.shards[k]))
		for rep := range rt.shards[k] {
			wg.Add(1)
			go func(k, rep int) {
				defer wg.Done()
				resp, err := rt.ctrlReplica(r.Context(), reqCtx, k, rep, http.MethodGet, "/api/v1/live", nil, "", 1)
				probes[k][rep] = probe{resp: resp, err: err}
			}(k, rep)
		}
	}
	wg.Wait()

	statsSet := false
	for k := range rt.shards {
		sh := ShardHealthDTO{
			Shard:    k,
			Addr:     rt.shards[k][0],
			Replicas: make([]ReplicaHealthDTO, len(rt.shards[k])),
		}
		out.Router.Replicas += len(rt.shards[k])
		for rep := range rt.shards[k] {
			h := rt.health[k][rep]
			_, _, dirty, cooling, _, dirtyWhy, gen := h.view()
			rd := ReplicaHealthDTO{Replica: rep, Addr: rt.shards[k][rep], Generation: gen}
			p := probes[k][rep]
			switch {
			case p.err != nil:
				rd.State = "unreachable"
				rd.Error = p.err.Error()
			case p.resp.status != http.StatusOK:
				rd.State = "unreachable"
				rd.Error = strings.TrimSpace(string(p.resp.body))
			default:
				var stats server.LiveStats
				if err := json.Unmarshal(p.resp.body, &stats); err != nil {
					rd.State = "unreachable"
					rd.Error = "bad live response: " + err.Error()
					break
				}
				rd.Healthy = true
				rd.Stats = &stats
				rd.Generation = stats.Generation
				h.observeGen(stats.Generation)
				switch {
				case dirty:
					rd.State = "stale"
					rd.Error = dirtyWhy
				case cooling:
					rd.State = "cooldown"
				default:
					rd.State = "ok"
				}
			}
			if rd.Healthy && rd.State == "ok" {
				if !sh.Healthy {
					sh.Healthy = true
					sh.Stats = rd.Stats
				}
			} else {
				sh.Degraded++
				out.Router.DegradedReplicas++
			}
			sh.Replicas[rep] = rd
		}
		if sh.Healthy {
			out.Router.Healthy++
			if !statsSet {
				out.LiveStats = *sh.Stats
				statsSet = true
			}
		} else {
			sh.Error = "no serving replica"
		}
		out.ShardHealth[k] = sh
	}
	server.WriteJSON(w, http.StatusOK, out)
}
