package shard

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"pivote/internal/core"
	"pivote/internal/errs"
	"pivote/internal/server"
)

// Options tune a Router; zero values select the documented defaults.
type Options struct {
	// TopEntities is the merged x-axis size and MUST match the shard
	// nodes' core.Options.TopEntities (default 20): per-shard page
	// lengths alone cannot reveal the global page size.
	TopEntities int
	// Timeout bounds each shard request attempt (default 10s).
	Timeout time.Duration
	// RetryJitter is the maximum random delay before the single retry of
	// a failed shard request (default 100ms), decorrelating the retry
	// storms of concurrent router sessions.
	RetryJitter time.Duration
	// MaxSessions bounds the router-side session LRU (default 64, like
	// server.Multi).
	MaxSessions int
	// Transport issues the shard requests; nil selects
	// http.DefaultTransport. The in-process cluster plugs its
	// InprocTransport in here.
	Transport http.RoundTripper
}

func (o Options) withDefaults() Options {
	if o.TopEntities <= 0 {
		o.TopEntities = 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.RetryJitter <= 0 {
		o.RetryJitter = 100 * time.Millisecond
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	return o
}

// Router is the scatter-gather front of a shard cluster: it serves the
// /api/v1 surface, fans every request out to all shards, and merges the
// per-shard pages back into the exact bytes a single-process server
// would have produced (see MergeStates for the rules and why they are
// sound).
//
// The router holds no graph. Its per-session state is the canonical op
// log plus one cookie per shard; the log is what makes the cluster
// self-healing — a shard that lost its session (restart, LRU eviction,
// failed fan-out) is repaired by idempotently replaying the log through
// POST /api/v1/session before the next request touches it.
type Router struct {
	shards []string
	opts   Options
	client *http.Client

	mu       sync.Mutex
	sessions map[string]*routerSession
	lru      *list.List // of string tokens, most-recent first

	// ctrl holds per-shard cookies for the session-independent surface
	// (ingest, compact, live) so control traffic reuses one shard
	// session instead of minting one per request.
	ctrlMu sync.Mutex
	ctrl   []string

	// ingestMu serializes write fan-outs (ingest, compact): every shard
	// must intern new terms in the same order so TermIDs — and therefore
	// the partitioning — stay identical across the cluster.
	ingestMu sync.Mutex

	health []shardHealth
}

type shardHealth struct {
	mu      sync.Mutex
	seen    bool
	healthy bool
	lastErr string
}

// routerSession is the per-cookie state: the replayable op log, one
// shard session cookie per shard, and per-shard staleness (the shard's
// session is not known to equal the log and must be repaired before
// use). mu serializes fan-outs for the session the same way server.mu
// serializes a single-process session's requests.
type routerSession struct {
	mu      sync.Mutex
	log     []core.OpDTO
	cookies []string
	stale   []bool
	elem    *list.Element
}

// sessionFileJSON mirrors the engine's v2 session-file shape; the
// router writes it when replaying its log into a shard.
type sessionFileJSON struct {
	Version int          `json:"version"`
	Ops     []core.OpDTO `json:"ops"`
}

// NewRouter builds a router over the given shard base URLs (scheme +
// host, no trailing slash).
func NewRouter(shardURLs []string, opts Options) *Router {
	opts = opts.withDefaults()
	transport := opts.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	shards := make([]string, len(shardURLs))
	for i, u := range shardURLs {
		shards[i] = strings.TrimRight(u, "/")
	}
	return &Router{
		shards:   shards,
		opts:     opts,
		client:   &http.Client{Transport: transport},
		sessions: map[string]*routerSession{},
		lru:      list.New(),
		ctrl:     make([]string, len(shards)),
		health:   make([]shardHealth, len(shards)),
	}
}

// NumShards reports the cluster size.
func (rt *Router) NumShards() int { return len(rt.shards) }

// Handler returns the router's HTTP handler: the full /api/v1 surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/ops", rt.withSession(rt.handleOps))
	mux.HandleFunc("GET /api/v1/state", rt.withSession(rt.handleState))
	mux.HandleFunc("GET /api/v1/session", rt.withSession(rt.handleSessionSave))
	mux.HandleFunc("POST /api/v1/session", rt.withSession(rt.handleSessionLoad))
	mux.HandleFunc("POST /api/v1/ingest", rt.handleIngest)
	mux.HandleFunc("POST /api/v1/compact", rt.handleCompact)
	mux.HandleFunc("GET /api/v1/live", rt.handleLive)
	return mux
}

const sessionCookie = "pivote_session" // same name the shard nodes use

// withSession resolves (or mints) the router-side session for the
// request and pins its cookie on the response, mirroring server.Multi.
func (rt *Router) withSession(h func(http.ResponseWriter, *http.Request, *routerSession)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := ""
		if c, err := r.Cookie(sessionCookie); err == nil && c.Value != "" {
			token = c.Value
		}
		rs, token := rt.getOrCreate(token)
		http.SetCookie(w, &http.Cookie{
			Name:     sessionCookie,
			Value:    token,
			Path:     "/",
			HttpOnly: true,
			SameSite: http.SameSiteLaxMode,
		})
		h(w, r, rs)
	}
}

func (rt *Router) getOrCreate(token string) (*routerSession, string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rs, ok := rt.sessions[token]; ok {
		rt.lru.MoveToFront(rs.elem)
		return rs, token
	}
	// Unknown (or empty) token: mint a fresh one, never adopt a
	// client-supplied value — same policy as server.Multi.
	token = newToken()
	rs := &routerSession{
		cookies: make([]string, len(rt.shards)),
		stale:   make([]bool, len(rt.shards)),
	}
	rs.elem = rt.lru.PushFront(token)
	rt.sessions[token] = rs
	for len(rt.sessions) > rt.opts.MaxSessions {
		oldest := rt.lru.Back()
		rt.lru.Remove(oldest)
		delete(rt.sessions, oldest.Value.(string))
	}
	return rs, token
}

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("shard: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// shardResp is one shard's reply, body fully read.
type shardResp struct {
	status int
	header http.Header
	body   []byte
}

func (sr *shardResp) sessionCookie() string {
	for _, c := range (&http.Response{Header: sr.header}).Cookies() {
		if c.Name == sessionCookie {
			return c.Value
		}
	}
	return ""
}

// send issues one shard request with a per-attempt timeout and, when
// retries > 0, a single jittered retry on transport failure. HTTP
// responses of any status are NOT retried — they are answers. A request
// that cannot be delivered comes back as a typed unavailable error.
func (rt *Router) send(ctx context.Context, i int, method, pathq string, body []byte, contentType, cookie string, retries int) (*shardResp, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			jitter := time.Duration(mrand.Int64N(int64(rt.opts.RetryJitter)))
			select {
			case <-time.After(jitter):
			case <-ctx.Done():
				return nil, errs.Errf(errs.KindCanceled, "shard %d: %v", i, ctx.Err())
			}
		}
		resp, err := rt.sendOnce(ctx, i, method, pathq, body, contentType, cookie)
		if err == nil {
			rt.recordHealth(i, true, "")
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The client went away: report cancellation, not shard death.
			return nil, errs.Errf(errs.KindCanceled, "shard %d: %v", i, ctx.Err())
		}
	}
	rt.recordHealth(i, false, lastErr.Error())
	return nil, errs.Errf(errs.KindUnavailable, "shard %d (%s) unreachable: %v", i, rt.shards[i], lastErr)
}

func (rt *Router) sendOnce(ctx context.Context, i int, method, pathq string, body []byte, contentType, cookie string) (*shardResp, error) {
	cctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
	defer cancel()
	var rdr io.Reader
	if body != nil {
		rdr = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(cctx, method, rt.shards[i]+pathq, rdr)
	if err != nil {
		return nil, err
	}
	if contentType != "" && body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	if cookie != "" {
		req.AddCookie(&http.Cookie{Name: sessionCookie, Value: cookie})
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &shardResp{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

func (rt *Router) recordHealth(i int, ok bool, msg string) {
	h := &rt.health[i]
	h.mu.Lock()
	h.seen, h.healthy, h.lastErr = true, ok, msg
	h.mu.Unlock()
}

// repair replays the session's op log into shard i, rebuilding the
// shard-side session from scratch. Replay is idempotent (LoadSession
// replaces the session wholesale), and ?include=timeline keeps it cheap:
// the shard skips ranking and heat-map work entirely.
func (rt *Router) repair(ctx context.Context, rs *routerSession, i int) error {
	body, err := json.Marshal(sessionFileJSON{Version: 2, Ops: append([]core.OpDTO{}, rs.log...)})
	if err != nil {
		return errs.Errf(errs.KindInternal, "shard: encode repair log: %v", err)
	}
	resp, err := rt.send(ctx, i, http.MethodPost, "/api/v1/session?include=timeline", body, "application/json", rs.cookies[i], 1)
	if err != nil {
		return err
	}
	if c := resp.sessionCookie(); c != "" {
		rs.cookies[i] = c
	}
	if resp.status != http.StatusOK {
		return errs.Errf(errs.KindUnavailable, "shard %d: session repair failed: %s", i, strings.TrimSpace(string(resp.body)))
	}
	rs.stale[i] = false
	return nil
}

// stateful issues a session-scoped request to shard i, transparently
// repairing the shard's session first when it is stale, and redoing the
// request once when the shard evicted the session mid-flight (detected
// by a changed session cookie: shard nodes never adopt an unknown
// token, so a different Set-Cookie value proves the response came from
// a fresh, empty session instead of ours).
func (rt *Router) stateful(ctx context.Context, rs *routerSession, i int, method, pathq string, body []byte, retries int) (*shardResp, error) {
	if rs.stale[i] {
		if err := rt.repair(ctx, rs, i); err != nil {
			return nil, err
		}
	}
	resp, err := rt.send(ctx, i, method, pathq, body, "application/json", rs.cookies[i], retries)
	if err != nil {
		// Ambiguous outcome (a mutation may or may not have landed):
		// force a repair before this shard serves this session again.
		rs.stale[i] = true
		return nil, err
	}
	c := resp.sessionCookie()
	switch {
	case rs.cookies[i] == "":
		rs.cookies[i] = c
	case c != "" && c != rs.cookies[i]:
		rs.cookies[i] = c
		if err := rt.repair(ctx, rs, i); err != nil {
			rs.stale[i] = true
			return nil, err
		}
		resp, err = rt.send(ctx, i, method, pathq, body, "application/json", rs.cookies[i], retries)
		if err != nil {
			rs.stale[i] = true
			return nil, err
		}
		if c2 := resp.sessionCookie(); c2 != "" {
			rs.cookies[i] = c2
		}
	}
	return resp, nil
}

// fanStateful runs a session-scoped request against every shard
// concurrently. The caller holds rs.mu; the goroutines touch disjoint
// per-shard slots.
func (rt *Router) fanStateful(ctx context.Context, rs *routerSession, method, pathq string, body []byte, retries int) ([]*shardResp, []error) {
	resps := make([]*shardResp, len(rt.shards))
	errors := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errors[i] = rt.stateful(ctx, rs, i, method, pathq, body, retries)
		}(i)
	}
	wg.Wait()
	return resps, errors
}

// firstFailure finds the lowest-indexed shard whose request failed
// (transport error or non-200), or -1 when all succeeded. Picking the
// lowest index keeps error responses deterministic.
func firstFailure(resps []*shardResp, errors []error) int {
	for i := range resps {
		if errors[i] != nil || resps[i].status != http.StatusOK {
			return i
		}
	}
	return -1
}

// markApplied flags every shard that accepted a mutation the batch
// ultimately failed on (some peer rejected it or went away): their
// session state has diverged from the log and must be rebuilt by replay
// before next use.
func markApplied(rs *routerSession, resps []*shardResp, errors []error) {
	for i := range resps {
		if errors[i] == nil && resps[i].status == http.StatusOK {
			rs.stale[i] = true
		}
	}
}

// relay writes a shard's response through unchanged — error envelopes
// and downloads stay byte-identical to a direct server's.
func relay(w http.ResponseWriter, resp *shardResp) {
	for _, k := range []string{"Content-Type", "Content-Disposition"} {
		if v := resp.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.status)
	_, _ = w.Write(resp.body)
}

// failOut reports the fan-out's first failure: transport failures
// become typed unavailable envelopes, shard HTTP errors are relayed
// verbatim.
func failOut(w http.ResponseWriter, resps []*shardResp, errors []error, i int) {
	if errors[i] != nil {
		server.WriteV1Error(w, errors[i], nil)
		return
	}
	relay(w, resps[i])
}

func rawQuery(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return "?" + r.URL.RawQuery
	}
	return ""
}

// sameGeneration reports whether every shard evaluated on the same
// generation (by the X-Pivote-Generation response header). Pages from
// mixed generations must never be merged: the result would match no
// single-process output. Responses without the header don't vote.
func sameGeneration(resps []*shardResp) bool {
	seen := ""
	for _, resp := range resps {
		g := resp.header.Get(server.GenerationHeader)
		if g == "" {
			continue
		}
		if seen == "" {
			seen = g
		} else if g != seen {
			return false
		}
	}
	return true
}

// genRetries bounds the re-reads while shards adopt a new generation. A
// compaction swap propagates through the (serialized) compact fan-out
// in milliseconds, so a handful of short pauses is plenty; a cluster
// that cannot converge in this many rounds is genuinely unhealthy.
const genRetries = 25

// genPause briefly decorrelates a re-read from the swap in progress.
func (rt *Router) genPause(ctx context.Context) {
	d := time.Duration(1+mrand.Int64N(5)) * time.Millisecond
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
}

// fanMergeState fans a session-scoped GET /api/v1/state to every shard
// and merges the pages, re-reading while a compaction swap leaves the
// shards on different generations (reads are idempotent, so the loop is
// safe). On failure it writes the error response and reports false.
func (rt *Router) fanMergeState(ctx context.Context, w http.ResponseWriter, rs *routerSession, pathq string) (server.StateV1DTO, bool) {
	for attempt := 0; ; attempt++ {
		resps, errors := rt.fanStateful(ctx, rs, http.MethodGet, pathq, nil, 1)
		if i := firstFailure(resps, errors); i >= 0 {
			failOut(w, resps, errors, i)
			return server.StateV1DTO{}, false
		}
		if !sameGeneration(resps) {
			if attempt < genRetries {
				rt.genPause(ctx)
				continue
			}
			server.WriteV1Error(w, errs.Errf(errs.KindUnavailable,
				"shard: cluster did not converge on one generation"), nil)
			return server.StateV1DTO{}, false
		}
		states := make([]server.StateV1DTO, len(resps))
		for i, resp := range resps {
			if err := json.Unmarshal(resp.body, &states[i]); err != nil {
				server.WriteV1Error(w, core.Errf(core.KindInternal, "shard %d: bad state response: %v", i, err), nil)
				return server.StateV1DTO{}, false
			}
		}
		merged, err := MergeStates(states, rt.opts.TopEntities)
		if err != nil {
			server.WriteV1Error(w, err, nil)
			return server.StateV1DTO{}, false
		}
		return merged, true
	}
}

// statePathFor builds the GET /api/v1/state path that reproduces a
// request's field selection (?include= wins over the body value, like
// the shard nodes).
func statePathFor(r *http.Request, bodyInclude string) string {
	inc := r.URL.Query().Get("include")
	if inc == "" {
		inc = bodyInclude
	}
	if inc == "" {
		return "/api/v1/state"
	}
	return "/api/v1/state?include=" + url.QueryEscape(inc)
}

// opsRequestJSON mirrors the shard nodes' opsRequest body.
type opsRequestJSON struct {
	Ops     []core.OpDTO `json:"ops"`
	Include string       `json:"include,omitempty"`
}

// handleOps fans an op batch to every shard and merges the pages. On
// unanimous success the batch joins the session log; on any failure the
// shards that DID apply it are marked stale so the next request rolls
// them back by replaying the log (which does not contain the batch).
func (rt *Router) handleOps(w http.ResponseWriter, r *http.Request, rs *routerSession) {
	var req opsRequestJSON
	// Same decode, same 4 MB cap as a shard node, so a malformed body
	// produces the identical envelope without any fan-out.
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		server.WriteV1Error(w, core.Errf(core.KindInvalid, "bad request body: %v", err), nil)
		return
	}
	fwd, err := json.Marshal(req)
	if err != nil {
		server.WriteV1Error(w, core.Errf(core.KindInternal, "encode ops: %v", err), nil)
		return
	}
	pathq := "/api/v1/ops" + rawQuery(r)

	rs.mu.Lock()
	defer rs.mu.Unlock()
	// No blind resend for ops: a retry after an ambiguous transport
	// failure could double-apply the batch. The stale-repair machinery
	// is the retry path instead.
	resps, errors := rt.fanStateful(r.Context(), rs, http.MethodPost, pathq, fwd, 0)
	if i := firstFailure(resps, errors); i >= 0 {
		markApplied(rs, resps, errors)
		failOut(w, resps, errors, i)
		return
	}
	// Unanimous success: the batch is part of every shard's session, so
	// it joins the log now — whatever happens below, a repair replay must
	// reproduce the sessions as they are.
	rs.log = append(rs.log, req.Ops...)
	if !sameGeneration(resps) {
		// A compaction swap landed mid-fan: the pages come from different
		// generations and must not be merged. The ops ARE applied; re-read
		// the (deterministic) session state until the shards agree on one
		// generation, and answer with that — a valid single-process
		// outcome, since the swap also could have landed just before the
		// batch.
		applied := len(req.Ops)
		merged, ok := rt.fanMergeState(r.Context(), w, rs, statePathFor(r, req.Include))
		if !ok {
			return
		}
		server.WriteJSON(w, http.StatusOK, server.OpsResponse{Applied: applied, State: merged})
		return
	}
	states := make([]server.StateV1DTO, len(resps))
	applied := 0
	for i, resp := range resps {
		var or server.OpsResponse
		if err := json.Unmarshal(resp.body, &or); err != nil {
			server.WriteV1Error(w, core.Errf(core.KindInternal, "shard %d: bad ops response: %v", i, err), nil)
			return
		}
		states[i] = or.State
		if i == 0 {
			applied = or.Applied
		}
	}
	merged, err := MergeStates(states, rt.opts.TopEntities)
	if err != nil {
		server.WriteV1Error(w, err, nil)
		return
	}
	server.WriteJSON(w, http.StatusOK, server.OpsResponse{Applied: applied, State: merged})
}

// handleState fans the read to every shard and merges, re-reading while
// a compaction swap leaves the shards on mixed generations.
func (rt *Router) handleState(w http.ResponseWriter, r *http.Request, rs *routerSession) {
	pathq := "/api/v1/state" + rawQuery(r)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	merged, ok := rt.fanMergeState(r.Context(), w, rs, pathq)
	if !ok {
		return
	}
	server.WriteJSON(w, http.StatusOK, merged)
}

// handleSessionSave proxies the download from shard 0: every shard's
// canonical op log is identical (EncodeOp canonicalizes entity
// references to IRIs regardless of how the client spelled them), so one
// shard's file is THE file.
func (rt *Router) handleSessionSave(w http.ResponseWriter, r *http.Request, rs *routerSession) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	resp, err := rt.stateful(r.Context(), rs, 0, http.MethodGet, "/api/v1/session", nil, 1)
	if err != nil {
		server.WriteV1Error(w, err, nil)
		return
	}
	relay(w, resp)
}

// handleSessionLoad fans a session replay to every shard. On unanimous
// success the uploaded file's ops become the router's log; on any
// failure the shards that did replay are marked stale (they now hold
// the NEW session while the log still describes the old one).
func (rt *Router) handleSessionLoad(w http.ResponseWriter, r *http.Request, rs *routerSession) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		server.WriteV1Error(w, core.Errf(core.KindInvalid, "read body: %v", err), nil)
		return
	}
	pathq := "/api/v1/session" + rawQuery(r)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	// Replay is idempotent, so the transport-level retry is safe here.
	resps, errors := rt.fanStateful(r.Context(), rs, http.MethodPost, pathq, raw, 1)
	if i := firstFailure(resps, errors); i >= 0 {
		markApplied(rs, resps, errors)
		failOut(w, resps, errors, i)
		return
	}
	// All shards accepted the replay, so the file decodes; its DTOs are
	// the new log. (A v1-format upload synthesizes the same ops the
	// shards synthesized.)
	dtos, err := core.DecodeSessionDTOs(raw)
	if err != nil {
		server.WriteV1Error(w, core.Errf(core.KindInternal, "session accepted by shards but not decodable: %v", err), nil)
		return
	}
	rs.log = dtos
	if !sameGeneration(resps) {
		// Same rule as handleOps: the replay landed everywhere, but the
		// pages straddle a compaction swap — re-read instead of merging.
		merged, ok := rt.fanMergeState(r.Context(), w, rs, statePathFor(r, ""))
		if !ok {
			return
		}
		server.WriteJSON(w, http.StatusOK, merged)
		return
	}
	states := make([]server.StateV1DTO, len(resps))
	for i, resp := range resps {
		if err := json.Unmarshal(resp.body, &states[i]); err != nil {
			server.WriteV1Error(w, core.Errf(core.KindInternal, "shard %d: bad state response: %v", i, err), nil)
			return
		}
	}
	merged, err := MergeStates(states, rt.opts.TopEntities)
	if err != nil {
		server.WriteV1Error(w, err, nil)
		return
	}
	server.WriteJSON(w, http.StatusOK, merged)
}

// fanControl runs a session-independent request against every shard
// with the control cookie jar.
func (rt *Router) fanControl(ctx context.Context, method, pathq string, body []byte, contentType string) ([]*shardResp, []error) {
	resps := make([]*shardResp, len(rt.shards))
	errors := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i := range rt.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt.ctrlMu.Lock()
			cookie := rt.ctrl[i]
			rt.ctrlMu.Unlock()
			resp, err := rt.send(ctx, i, method, pathq, body, contentType, cookie, 1)
			if err == nil {
				if c := resp.sessionCookie(); c != "" {
					rt.ctrlMu.Lock()
					rt.ctrl[i] = c
					rt.ctrlMu.Unlock()
				}
			}
			resps[i], errors[i] = resp, err
		}(i)
	}
	wg.Wait()
	return resps, errors
}

// handleIngest fans the batch to every shard, serialized so every shard
// interns new terms in the same order (TermID agreement is what keeps
// the partitioning consistent). Ingest is idempotent by content —
// re-adding a triple or re-deleting a tombstone converges — so a client
// that sees an unavailable error retries the same batch safely.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		server.WriteV1Error(w, core.Errf(core.KindInvalid, "read body: %v", err), nil)
		return
	}
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()
	resps, errors := rt.fanControl(r.Context(), http.MethodPost, "/api/v1/ingest", body, r.Header.Get("Content-Type"))
	if i := firstFailure(resps, errors); i >= 0 {
		failOut(w, resps, errors, i)
		return
	}
	// Every shard holds the same store content, so the reports agree;
	// shard 0's is relayed verbatim.
	relay(w, resps[0])
}

// handleCompact forces a compaction swap on every shard; idempotent and
// serialized with ingest.
func (rt *Router) handleCompact(w http.ResponseWriter, r *http.Request) {
	rt.ingestMu.Lock()
	defer rt.ingestMu.Unlock()
	resps, errors := rt.fanControl(r.Context(), http.MethodPost, "/api/v1/compact", nil, "")
	if i := firstFailure(resps, errors); i >= 0 {
		failOut(w, resps, errors, i)
		return
	}
	relay(w, resps[0])
}

// ShardHealthDTO is one shard's entry in the router's live report.
type ShardHealthDTO struct {
	Shard   int    `json:"shard"`
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
	// Stats is the shard's own /api/v1/live body when it answered.
	Stats *server.LiveStats `json:"stats,omitempty"`
}

// RouterInfoDTO summarizes the cluster.
type RouterInfoDTO struct {
	Shards  int `json:"shards"`
	Healthy int `json:"healthy"`
}

// RouterLiveDTO is the router's GET /api/v1/live body: the first
// healthy shard's stats flattened at the top level (so single-process
// monitoring keeps working against a router), plus per-shard health.
type RouterLiveDTO struct {
	server.LiveStats
	Router      RouterInfoDTO    `json:"router"`
	ShardHealth []ShardHealthDTO `json:"shardHealth"`
}

// handleLive aggregates cluster health. Unlike every other endpoint it
// never fails outright: a dead shard becomes an unhealthy row, because
// the whole point of a health endpoint is answering while things burn.
func (rt *Router) handleLive(w http.ResponseWriter, r *http.Request) {
	resps, errors := rt.fanControl(r.Context(), http.MethodGet, "/api/v1/live", nil, "")
	out := RouterLiveDTO{
		Router:      RouterInfoDTO{Shards: len(rt.shards)},
		ShardHealth: make([]ShardHealthDTO, len(rt.shards)),
	}
	statsSet := false
	for i := range resps {
		h := ShardHealthDTO{Shard: i, Addr: rt.shards[i]}
		switch {
		case errors[i] != nil:
			h.Error = errors[i].Error()
		case resps[i].status != http.StatusOK:
			h.Error = strings.TrimSpace(string(resps[i].body))
		default:
			var stats server.LiveStats
			if err := json.Unmarshal(resps[i].body, &stats); err != nil {
				h.Error = "bad live response: " + err.Error()
				break
			}
			h.Healthy = true
			h.Stats = &stats
			out.Router.Healthy++
			if !statsSet {
				out.LiveStats = stats
				statsSet = true
			}
		}
		out.ShardHealth[i] = h
	}
	server.WriteJSON(w, http.StatusOK, out)
}
