package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"pivote/internal/server"
)

// Single-flight coalescing for generation-agreement re-reads.
//
// When a compaction swap is propagating, every session reading through
// the router hits the same mixed-generation condition at the same time,
// and each used to sleep-and-refan independently — N sessions, N
// identical probe storms against the cluster. Generation agreement is a
// CLUSTER property, not a session property, so one wait serves everyone:
// the first session in runs one probe round (one /api/v1/live per
// shard), the rest block on its completion and then re-fan. Correctness
// never rests on the probe — sameGeneration over the actual re-read
// responses remains the authority — the flight only decides how long to
// wait before trying again.

// flightGroup is a minimal single-flight: concurrent Do calls with the
// same key share one execution of fn.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
}

// Do runs fn once per in-flight key; duplicate callers wait for the
// leader and are counted as coalesced.
func (g *flightGroup) Do(key string, fn func()) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		mGenCoalesced.Inc()
		<-c.done
		return
	}
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	fn()
}

// awaitAgreement blocks (briefly) until the shards look likely to agree
// on one generation again, coalesced across sessions. The leader probes
// one replica per shard for its current generation; if they already
// agree the wait ends immediately (the swap finished while we decoded),
// otherwise it backs off one jittered pause to let the adoption land.
func (rt *Router) awaitAgreement(ctx context.Context) {
	rt.genFlight.Do("generation", func() {
		if rt.probeAgreement(ctx) {
			return
		}
		rt.genPause(ctx)
	})
}

// probeAgreement reports whether every shard's first answering replica
// is currently on the same generation. Probe failures abstain rather
// than vote: a dead replica is the failover machinery's problem.
func (rt *Router) probeAgreement(ctx context.Context) bool {
	var (
		mu     sync.Mutex
		seen   uint64
		have   bool
		mixed  bool
		wg     sync.WaitGroup
	)
	for k := range rt.shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			resp, _, err := rt.ctrlShard(ctx, k, http.MethodGet, "/api/v1/live", nil, "")
			if err != nil || resp.status != http.StatusOK {
				resp.free()
				return
			}
			var stats server.LiveStats
			decodeErr := json.Unmarshal(resp.body, &stats)
			resp.free()
			if decodeErr != nil {
				return
			}
			mu.Lock()
			if !have {
				seen, have = stats.Generation, true
			} else if stats.Generation != seen {
				mixed = true
			}
			mu.Unlock()
		}(k)
	}
	wg.Wait()
	return have && !mixed
}
