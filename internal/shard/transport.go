package shard

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// InprocTransport is an http.RoundTripper that maps synthetic hosts
// onto in-process handlers — no sockets, no ports. The single-process
// cluster mode (-shards N), the equivalence suite, the race hammer and
// the scatter-gather benchmark all drive real HTTP semantics (cookies,
// headers, status codes, bodies) through it while every shard lives in
// the same address space and shares one append-only dictionary.
type InprocTransport struct {
	mu       sync.RWMutex
	handlers map[string]http.Handler
}

// NewInprocTransport returns an empty transport; Register adds hosts.
func NewInprocTransport() *InprocTransport {
	return &InprocTransport{handlers: map[string]http.Handler{}}
}

// Register binds a handler to a synthetic host and returns its base URL
// (http://<host>).
func (t *InprocTransport) Register(host string, h http.Handler) string {
	t.mu.Lock()
	t.handlers[host] = h
	t.mu.Unlock()
	return "http://" + host
}

// RoundTrip serves the request synchronously through the registered
// handler. The caller's context still applies: handlers observe it via
// req.Context() exactly as under net/http.
func (t *InprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.RLock()
	h := t.handlers[req.URL.Host]
	t.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("shard: no in-process handler for host %q", req.URL.Host)
	}
	if req.Body == nil {
		req.Body = http.NoBody
	}
	rec := &inprocRecorder{header: http.Header{}, code: http.StatusOK}
	h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", rec.code, http.StatusText(rec.code)),
		StatusCode:    rec.code,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        rec.header,
		Body:          io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// inprocRecorder is the minimal ResponseWriter the transport needs; it
// captures status, headers and body in memory.
type inprocRecorder struct {
	header    http.Header
	body      bytes.Buffer
	code      int
	wroteHead bool
}

func (r *inprocRecorder) Header() http.Header { return r.header }

func (r *inprocRecorder) WriteHeader(code int) {
	if !r.wroteHead {
		r.code = code
		r.wroteHead = true
	}
}

func (r *inprocRecorder) Write(b []byte) (int, error) {
	r.wroteHead = true
	return r.body.Write(b)
}
