package shard

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
)

// TestRouterMetricsSurface: the router process shape serves /metrics
// (so one scrape config covers routers and shard nodes alike) and its
// resilience counters move when faults are injected — breaker trips
// from the chaos machinery must be visible to monitoring, not just to
// the health endpoint.
func TestRouterMetricsSurface(t *testing.T) {
	f := kgtest.Build()
	fault := NewFaultTransport(nil)
	cl := NewCluster(f.Graph, ClusterConfig{
		Shards:   2,
		Replicas: 2,
		Opts:     core.Options{},
		Live:     true,
		Router:   chaosOpts(),
		Fault:    fault,
	})
	t.Cleanup(func() { _ = cl.Close() })
	ts := httptest.NewServer(cl.Handler())
	t.Cleanup(ts.Close)

	opensBefore := mBreakerOpens.Value()
	failoversBefore := mFailovers.Value()

	// Kill one replica of shard 0 and drive enough reads through to
	// trip its breaker (threshold 2 in chaosOpts).
	fault.Kill(chaosHost(0, 0))
	for i := 0; i < 4; i++ {
		resp, err := http.Get(ts.URL + "/api/v1/state")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("state with one replica dead: status %d", resp.StatusCode)
		}
	}

	if d := mBreakerOpens.Value() - opensBefore; d == 0 {
		t.Error("breaker open transitions not counted under injected faults")
	}
	if d := mFailovers.Value() - failoversBefore; d == 0 {
		t.Error("failovers not counted under injected faults")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	body := string(b)
	for _, series := range []string{
		"pivote_router_breaker_open_total",
		"pivote_router_failovers_total",
		"pivote_router_retries_total",
		`pivote_router_scatter_seconds_count{shard="0",replica="1"}`,
		"pivote_live_generation", // in-process nodes share the registry
	} {
		if !strings.Contains(body, series) {
			t.Errorf("router /metrics missing series %q", series)
		}
	}

	// Revive and let the half-open probe close the breaker.
	fault.Revive(chaosHost(0, 0))
}

// TestRouterSwapMetrics: a coordinated rolling swap records every
// protocol phase.
func TestRouterSwapMetrics(t *testing.T) {
	f := kgtest.Build()
	cl := NewCluster(f.Graph, ClusterConfig{
		Shards:   2,
		Replicas: 2,
		Opts:     core.Options{},
		Live:     true,
		Router:   chaosOpts(),
	})
	t.Cleanup(func() { _ = cl.Close() })
	ts := httptest.NewServer(cl.Handler())
	t.Cleanup(ts.Close)

	totalBefore := mSwapPhase["total"].Count()
	nt := `<http://pivote.dev/resource/SwapMetric_1> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pivote.dev/ontology/Film> .`
	resp, err := http.Post(ts.URL+"/api/v1/ingest", "text/plain", strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/api/v1/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact status %d", resp.StatusCode)
	}

	for _, phase := range []string{"prepare", "fetch", "adopt", "total"} {
		if mSwapPhase[phase].Count() == 0 {
			t.Errorf("swap phase %q never observed", phase)
		}
	}
	if mSwapPhase["total"].Count() == totalBefore {
		t.Error("rolling swap did not record a total-phase observation")
	}
}
