package shard

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/synth"
)

// BenchmarkScatterGather measures the serving cost of the sharded read
// path end to end — router fan-out over the in-process transport,
// per-shard evaluation, k-way page merge, heat reassembly — against the
// degenerate single-shard cluster on the same synthetic graph. The
// in-run shards=4/shards=1 ratio is gated in benchgates.json: fanning
// to 4 replicated partitions costs roughly 4 evaluations plus merge, so
// a blowout means the router started serializing (retry storms, session
// repairs, generation re-read loops) rather than scattering.
func BenchmarkScatterGather(b *testing.B) {
	cfg := synth.Scaled(300)
	cfg.Seed = 42
	g := synth.Generate(cfg).Graph

	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl := NewCluster(g, ClusterConfig{Shards: shards, Opts: core.Options{}})
			defer cl.Close()
			h := cl.Handler()

			// One session, one submitted query; iterations re-read the
			// evaluated state (the dominant serving path).
			req := httptest.NewRequest(http.MethodPost, "/api/v1/ops",
				strings.NewReader(`{"ops":[{"op":"submit","keywords":"forrest gump"}]}`))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("setup submit: %d %s", rec.Code, rec.Body.String())
			}
			cookie := rec.Result().Cookies()[0]

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodGet, "/api/v1/state", nil)
				req.AddCookie(cookie)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("state: %d %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}
