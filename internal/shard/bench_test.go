package shard

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/synth"
)

// BenchmarkScatterGather measures the serving cost of the sharded read
// path end to end — router fan-out over the in-process transport,
// per-shard evaluation, k-way page merge, heat reassembly — against the
// degenerate single-shard cluster on the same synthetic graph. The
// in-run shards=4/shards=1 ratio is gated in benchgates.json: fanning
// to 4 replicated partitions costs roughly 4 evaluations plus merge, so
// a blowout means the router started serializing (retry storms, session
// repairs, generation re-read loops) rather than scattering.
func BenchmarkScatterGather(b *testing.B) {
	cfg := synth.Scaled(300)
	cfg.Seed = 42
	g := synth.Generate(cfg).Graph

	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cl := NewCluster(g, ClusterConfig{Shards: shards, Opts: core.Options{}})
			defer cl.Close()
			h := cl.Handler()

			// One session, one submitted query; iterations re-read the
			// evaluated state (the dominant serving path).
			req := httptest.NewRequest(http.MethodPost, "/api/v1/ops",
				strings.NewReader(`{"ops":[{"op":"submit","keywords":"forrest gump"}]}`))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("setup submit: %d %s", rec.Code, rec.Body.String())
			}
			cookie := rec.Result().Cookies()[0]

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodGet, "/api/v1/state", nil)
				req.AddCookie(cookie)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("state: %d %s", rec.Code, rec.Body.String())
				}
			}
		})
	}

	// Codec face-off on the same read path: the identical 4-shard fan
	// with the inter-node codec forced off (JSON hops) versus forced on
	// (binary wire hops into pooled scratch). The in-run wire/json
	// ratios are gated in benchgates.json on both ns/op and allocs/op —
	// the codec exists to cut the distribution tax, and the gate is what
	// keeps it cut.
	for _, codec := range []struct {
		name string
		c    Codec
	}{{"json", CodecJSON}, {"wire", CodecWire}} {
		b.Run(fmt.Sprintf("codec=%s/shards=4", codec.name), func(b *testing.B) {
			cl := NewCluster(g, ClusterConfig{Shards: 4, Opts: core.Options{}, Router: Options{Codec: codec.c}})
			defer cl.Close()
			h := cl.Handler()

			req := httptest.NewRequest(http.MethodPost, "/api/v1/ops",
				strings.NewReader(`{"ops":[{"op":"submit","keywords":"forrest gump"}]}`))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("setup submit: %d %s", rec.Code, rec.Body.String())
			}
			cookie := rec.Result().Cookies()[0]

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodGet, "/api/v1/state", nil)
				req.AddCookie(cookie)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("state: %d %s", rec.Code, rec.Body.String())
				}
			}
		})
	}

	// Replicated read path: 4 shards times M replicas, parallel
	// sessions. Each benchmark goroutine owns one router session (its
	// preferred replicas differ round-robin), so with M>1 concurrent
	// reads spread across the replica sets. In-process replicas share
	// the machine's CPUs, so the in-run replicas=3/replicas=1 gate in
	// benchgates.json asserts replication does not *serialize* the read
	// path (health table contention, failover detours) rather than a
	// linear throughput win — that needs real machines.
	for _, replicas := range []int{1, 3} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			cl := NewCluster(g, ClusterConfig{Shards: 4, Replicas: replicas, Opts: core.Options{}, Live: true})
			defer cl.Close()
			h := cl.Handler()

			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				req := httptest.NewRequest(http.MethodPost, "/api/v1/ops",
					strings.NewReader(`{"ops":[{"op":"submit","keywords":"forrest gump"}]}`))
				req.Header.Set("Content-Type", "application/json")
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Errorf("setup submit: %d %s", rec.Code, rec.Body.String())
					return
				}
				cookie := rec.Result().Cookies()[0]
				for pb.Next() {
					req := httptest.NewRequest(http.MethodGet, "/api/v1/state", nil)
					req.AddCookie(cookie)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Errorf("state: %d %s", rec.Code, rec.Body.String())
						return
					}
				}
			})
		})
	}
}
