// Package shard is the scatter-gather serving subsystem: one PivotE
// graph served by N shard nodes behind a router, with merged responses
// byte-identical to a single-process server.
//
// The design partitions at emission, not at storage. Every shard holds
// the full generation (dictionary, CSR store, search index with global
// statistics, feature catalog) and scores candidates globally; only the
// final result page is filtered to the entities the shard owns. Scores
// are therefore bit-identical to an unpartitioned engine's, and the
// router recovers the single-process page exactly by k-way-merging the
// per-shard pages under the engine's own total order (score descending,
// TermID ascending). Partitioning what a shard *emits* rather than what
// it *stores* trades disk for exactness: the global statistics that
// every ranking formula in the paper depends on (inverse extent
// frequency, collection language models, PPR over the full graph) never
// have to be approximated or gathered cross-shard.
//
// TermIDs are dense and stable across compaction swaps — all
// generations share one append-only dictionary — so a deterministic
// predicate over TermIDs partitions identically in every generation and
// sessions survive swaps under sharding.
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pivote/internal/errs"
	"pivote/internal/rdf"
)

// Partitioner assigns every TermID to exactly one of N shards. A
// partitioner must be deterministic and depend only on the TermID, so
// that every node of a cluster — and every generation within a node —
// agrees on ownership without coordination.
type Partitioner interface {
	// N is the shard count; ShardOf returns a value in [0, N).
	N() int
	ShardOf(id rdf.TermID) int
	// Spec serializes the partitioner so a shard snapshot can carry it
	// and ParseSpec can reconstruct it.
	Spec() string
}

// HashPartitioner is the default: multiplicative hashing over the
// TermID. The Fibonacci constant spreads the dense, sequential IDs the
// dictionary hands out across shards evenly regardless of N.
type HashPartitioner struct{ n int }

// NewHashPartitioner builds the default hash partitioner over n shards;
// n < 1 is pinned to 1.
func NewHashPartitioner(n int) HashPartitioner {
	if n < 1 {
		n = 1
	}
	return HashPartitioner{n: n}
}

func (p HashPartitioner) N() int { return p.n }

func (p HashPartitioner) ShardOf(id rdf.TermID) int {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(p.n))
}

func (p HashPartitioner) Spec() string { return "hash/" + strconv.Itoa(p.n) }

// RangePartitioner splits the TermID space at explicit bounds: shard k
// owns IDs in [bounds[k-1], bounds[k]), with bounds[-1] = 0 and
// bounds[N-1] = +inf. It exists for operators who want locality (IDs are
// assigned in ingest order, so ranges are temporal) and as proof that
// the partitioning strategy is pluggable.
type RangePartitioner struct {
	bounds []rdf.TermID // ascending, length N-1
}

// NewRangePartitioner builds a range partitioner from its upper bounds;
// the shard count is len(bounds)+1. Bounds must be strictly ascending.
func NewRangePartitioner(bounds []rdf.TermID) (RangePartitioner, error) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return RangePartitioner{}, errs.Errf(errs.KindInvalid, "shard: range bounds must be strictly ascending")
		}
	}
	return RangePartitioner{bounds: append([]rdf.TermID(nil), bounds...)}, nil
}

func (p RangePartitioner) N() int { return len(p.bounds) + 1 }

func (p RangePartitioner) ShardOf(id rdf.TermID) int {
	return sort.Search(len(p.bounds), func(i int) bool { return id < p.bounds[i] })
}

func (p RangePartitioner) Spec() string {
	parts := make([]string, len(p.bounds))
	for i, b := range p.bounds {
		parts[i] = strconv.FormatUint(uint64(b), 10)
	}
	return fmt.Sprintf("range/%d:%s", p.N(), strings.Join(parts, ","))
}

// ParseSpec reconstructs a partitioner from its Spec string:
//
//	hash/4            hash partitioner over 4 shards
//	range/3:100,2000  range partitioner, bounds 100 and 2000
func ParseSpec(spec string) (Partitioner, error) {
	kind, rest, _ := strings.Cut(spec, "/")
	switch kind {
	case "hash":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return nil, errs.Errf(errs.KindInvalid, "shard: bad hash spec %q", spec)
		}
		return NewHashPartitioner(n), nil
	case "range":
		nStr, boundsStr, ok := strings.Cut(rest, ":")
		n, err := strconv.Atoi(nStr)
		if !ok || err != nil || n < 2 {
			return nil, errs.Errf(errs.KindInvalid, "shard: bad range spec %q", spec)
		}
		fields := strings.Split(boundsStr, ",")
		if len(fields) != n-1 {
			return nil, errs.Errf(errs.KindInvalid, "shard: range spec %q needs %d bounds", spec, n-1)
		}
		bounds := make([]rdf.TermID, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, errs.Errf(errs.KindInvalid, "shard: bad range bound %q", f)
			}
			bounds[i] = rdf.TermID(v)
		}
		p, err := NewRangePartitioner(bounds)
		if err != nil {
			return nil, err
		}
		return p, nil
	default:
		return nil, errs.Errf(errs.KindInvalid, "shard: unknown partitioner spec %q", spec)
	}
}

// OwnerOf is the ownership predicate of one shard under a partitioner —
// the value that plugs into core.Options.Partition.
func OwnerOf(p Partitioner, shard int) func(rdf.TermID) bool {
	return func(id rdf.TermID) bool { return p.ShardOf(id) == shard }
}
