package shard

import (
	"errors"
	"io"
	"strings"
	"sync"

	"pivote/internal/server"
)

// Pooled response-body buffers for the scatter path. Every router↔shard
// hop used to burn one io.ReadAll growth chain per response; here the
// buffer comes out of a sync.Pool pre-sized from Content-Length (the
// in-process transport and net/http both set it), is handed to the
// shardResp, and goes back to the pool once the response is consumed.
// Oversized bodies (snapshot fetches can run to megabytes) are served
// but never pooled, so a burst of large transfers cannot pin memory.
//
// The same caps double as the router's defense against a misbehaving
// shard: an internal hop may not return more than the public surface
// would accept in the first place (4 MiB, the session/ops MaxBytesReader
// cap), except the snapshot fetch, which mirrors the 16 MiB ingest cap.

const (
	// maxHopBytes caps ordinary internal-hop response bodies.
	maxHopBytes = 4 << 20
	// maxSnapshotBytes caps GET /api/v1/snapshot responses.
	maxSnapshotBytes = 16 << 20
	// maxPooledBody bounds what a returned buffer may retain.
	maxPooledBody = 1 << 20
)

// errHopTooLarge marks a response that exceeded its cap; sendReplica
// converts it to a typed unavailable error without burning retries (the
// oversized answer is deterministic, not transient).
var errHopTooLarge = errors.New("response exceeds internal hop byte cap")

// limitFor picks the cap for one hop by path.
func limitFor(pathq string) int64 {
	if strings.HasPrefix(pathq, "/api/v1/snapshot") {
		return maxSnapshotBytes
	}
	return maxHopBytes
}

var bodyPool = sync.Pool{New: func() any { return new([]byte) }}

// readBody drains r into a pooled buffer, failing typed once more than
// limit bytes show up. contentLength < 0 means unknown. The returned
// pointer rides in the shardResp so free() can hand the buffer back.
func readBody(r io.Reader, contentLength, limit int64) ([]byte, *[]byte, error) {
	if contentLength > limit {
		return nil, nil, errHopTooLarge
	}
	bp := bodyPool.Get().(*[]byte)
	if cap(*bp) > 0 {
		mBodyPoolHit.Inc()
	} else {
		mBodyPoolMiss.Inc()
	}
	buf := (*bp)[:0]
	if contentLength > int64(cap(buf)) {
		buf = make([]byte, 0, contentLength)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		room := cap(buf) - len(buf)
		// Never read more than one byte past the cap: that byte is the
		// overflow detector, anything further is wasted work.
		if over := int64(len(buf)+room) - (limit + 1); over > 0 {
			room -= int(over)
		}
		if room <= 0 {
			*bp = buf[:0]
			bodyPool.Put(bp)
			return nil, nil, errHopTooLarge
		}
		n, err := r.Read(buf[len(buf) : len(buf)+room])
		buf = buf[:len(buf)+n]
		if int64(len(buf)) > limit {
			*bp = buf[:0]
			bodyPool.Put(bp)
			return nil, nil, errHopTooLarge
		}
		if err == io.EOF {
			return buf, bp, nil
		}
		if err != nil {
			*bp = buf[:0]
			bodyPool.Put(bp)
			return nil, nil, err
		}
	}
}

// free returns the response's body buffer to the pool. Callers own the
// responses they receive and free them after the last touch of
// body/header; free is nil-safe and idempotent, and nils the body so a
// late use fails loudly (empty) instead of silently reading a buffer
// another request now owns.
func (sr *shardResp) free() {
	if sr == nil || sr.bp == nil {
		return
	}
	if cap(sr.body) <= maxPooledBody {
		*sr.bp = sr.body[:0]
		bodyPool.Put(sr.bp)
	}
	sr.bp, sr.body = nil, nil
}

// freeOuts frees every outcome of a fan.
func freeOuts(outs []shardOutcome) {
	for k := range outs {
		outs[k].resp.free()
	}
}

// stateScratch is the pooled per-fan decode target: one StateV1DTO per
// shard, each element keeping its entity/feature/timeline slices and
// heat matrix across uses so steady-state decoding allocates nothing on
// the wire path. The merged response ALIASES element 0's slices
// (MergeStates reuses the first page's description, timeline and heat
// axes), so scratch release must happen strictly after the merged
// response is written — handlers defer putScratch for exactly that
// reason.
type stateScratch struct {
	states []server.StateV1DTO
}

var scratchPool = sync.Pool{New: func() any { return &stateScratch{} }}

func getScratch(n int) *stateScratch {
	sc := scratchPool.Get().(*stateScratch)
	if cap(sc.states) > 0 {
		mScratchPoolHit.Inc()
	} else {
		mScratchPoolMiss.Inc()
	}
	if cap(sc.states) < n {
		fresh := make([]server.StateV1DTO, n)
		copy(fresh, sc.states[:cap(sc.states)])
		sc.states = fresh
	}
	sc.states = sc.states[:n]
	return sc
}

func putScratch(sc *stateScratch) { scratchPool.Put(sc) }
