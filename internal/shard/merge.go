package shard

import (
	"pivote/internal/errs"
	"pivote/internal/heatmap"
	"pivote/internal/rdf"
	"pivote/internal/server"
	"pivote/internal/topk"
)

// MergeStates merges per-shard state responses into the response a
// single-process server would have produced, byte-for-byte once
// re-encoded. The rules, each anchored in an engine invariant:
//
//   - Entities: every shard scores candidates globally and emits only
//     its partition, so the per-shard pages are disjoint, sorted slices
//     of the single-process page's candidate pool. A k-way merge under
//     the engine's own total order (score descending, TermID ascending —
//     see expand.lessRanked and search.lessHit) reproduces the global
//     top-k exactly. k must equal the shard nodes' TopEntities: page
//     lengths alone cannot reveal it (seven shards of five hits each
//     might stand for a global page of twenty).
//
//   - Fallback: a shard whose SF extent page is empty falls back to PPR
//     locally even when the global engine would not have. Global SF
//     emptiness is the conjunction of per-shard emptiness, so fallback
//     pages are dropped unless EVERY shard fell back — then the global
//     engine fell back too and the per-shard PPR pages merge the same
//     way.
//
//   - Description, features, timeline: derived from the query and the
//     global statistics, identical on every shard; shard 0's copy is
//     authoritative.
//
//   - Heat map: each cell p(π|e)·r(π,Q) is computable by the entity's
//     owning shard, but the seven-level quantization thresholds are
//     quantiles over ALL merged cells, so the merged matrix reassembles
//     Values column-by-column from the owning shards and re-levels via
//     heatmap.Requantize.
func MergeStates(states []server.StateV1DTO, topEntities int) (server.StateV1DTO, error) {
	if len(states) == 0 {
		return server.StateV1DTO{}, errs.Errf(errs.KindInternal, "shard: merge of zero states")
	}
	merged := states[0]
	allFallback := true
	for _, st := range states {
		if !st.Fallback {
			allFallback = false
		}
	}
	use := make([]bool, len(states))
	for i := range states {
		use[i] = allFallback || !states[i].Fallback
	}
	merged.Fallback = allFallback && states[0].Fallback

	var pages [][]server.EntityDTO
	for i := range states {
		if use[i] {
			pages = append(pages, states[i].Entities)
		}
	}
	ents := topk.MergeSorted(pages, topEntities, func(a, b server.EntityDTO) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.ID < b.ID
	})
	if len(ents) == 0 {
		// A direct server builds its page with append, so an empty page
		// is nil and the omitempty field vanishes from the JSON; an empty
		// non-nil slice would serialize as "entities":[] and break
		// byte-identity.
		ents = nil
	}
	merged.Entities = ents

	if merged.Heat != nil {
		heat, err := mergeHeat(states, use, topEntities)
		if err != nil {
			return server.StateV1DTO{}, err
		}
		merged.Heat = heat
	}
	return merged, nil
}

// mergeHeat reassembles the explanation matrix from the per-shard
// matrices. Rows (features) are identical everywhere; columns belong to
// exactly one shard each, so the merged column order comes from merging
// the per-shard entity axes and every cell is copied from its owner.
func mergeHeat(states []server.StateV1DTO, use []bool, topEntities int) (*heatmap.Matrix, error) {
	base := states[0].Heat
	var axisPages [][]heatmap.EntityAxis
	type source struct{ shard, col int }
	origin := make(map[rdf.TermID]source)
	for i := range states {
		h := states[i].Heat
		if h == nil {
			return nil, errs.Errf(errs.KindInternal, "shard: shard %d returned no heat map", i)
		}
		if len(h.Features) != len(base.Features) || len(h.Values) != len(h.Features) {
			return nil, errs.Errf(errs.KindInternal, "shard: shard %d heat-map shape diverges", i)
		}
		if !use[i] {
			continue
		}
		axisPages = append(axisPages, h.Entities)
		for c, col := range h.Entities {
			origin[col.ID] = source{shard: i, col: c}
		}
	}
	axis := topk.MergeSorted(axisPages, topEntities, func(a, b heatmap.EntityAxis) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.ID < b.ID
	})
	if len(axis) == 0 {
		axis = nil
	}
	m := &heatmap.Matrix{
		Entities: axis,
		Features: base.Features,
		Values:   make([][]float64, len(base.Features)),
	}
	for ri := range m.Values {
		row := make([]float64, len(axis))
		for ci, col := range axis {
			src := origin[col.ID]
			vals := states[src.shard].Heat.Values[ri]
			if src.col >= len(vals) {
				return nil, errs.Errf(errs.KindInternal, "shard: shard %d heat-map row %d is short", src.shard, ri)
			}
			row[ci] = vals[src.col]
		}
		m.Values[ri] = row
	}
	m.Requantize()
	return m, nil
}
