package shard

import (
	"fmt"
	"net/http"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/server"
)

// ClusterConfig configures an in-process cluster.
type ClusterConfig struct {
	// Partitioner splits the TermID space; nil selects hash/N.
	Partitioner Partitioner
	// Shards is the shard count when Partitioner is nil (minimum 1).
	Shards int
	// Replicas is the replica count per shard (minimum 1). Every
	// replica of a shard runs the same partition; the router fans
	// writes to all of them and routes reads across the healthy ones.
	Replicas int
	// Opts are the engine options every shard node runs with (the
	// Partition field is overwritten per shard).
	Opts core.Options
	// Live enables the ingest path on every node. Replicas > 1 requires
	// it: write fan-out and snapshot adoption are live-path operations.
	Live bool
	// MaxSessions bounds each node's session LRU (<= 0 → 64).
	MaxSessions int
	// Router tunes the router; Transport and TopEntities are wired by
	// NewCluster.
	Router Options
	// Fault, when set, interposes the fault-injection transport between
	// the router and the nodes. The caller keeps the pointer and scripts
	// failures against hosts named "shard<k>r<r>.inproc".
	Fault *FaultTransport
	// JSONOnlyShards lists shards whose nodes simulate a pre-codec
	// version: the wire offer is stripped from their requests and the
	// advertisement from their responses, so the router's negotiation
	// falls back to JSON on exactly those hops. For mixed-cluster tests.
	JSONOnlyShards []int
}

// Cluster is N shard nodes (times M replicas) plus a router in one
// process, connected by the in-process transport. All nodes share one
// *kg.Graph — and therefore one append-only dictionary, so TermIDs (and
// the partitioning) agree across shards by construction; multi-process
// deployments get the same agreement from deterministic interning order
// (identical seed data, ingest batches serialized by the router).
type Cluster struct {
	Partitioner Partitioner
	Router      *Router
	// Nodes is indexed [shard][replica].
	Nodes [][]*server.Multi
}

// NewCluster builds the cluster. The caller serves c.Handler() and
// calls c.Close() on shutdown.
func NewCluster(g *kg.Graph, cfg ClusterConfig) *Cluster {
	p := cfg.Partitioner
	if p == nil {
		n := cfg.Shards
		if n < 1 {
			n = 1
		}
		p = NewHashPartitioner(n)
	}
	m := cfg.Replicas
	if m < 1 {
		m = 1
	}
	tr := NewInprocTransport()
	nodes := make([][]*server.Multi, p.N())
	urls := make([][]string, p.N())
	for k := 0; k < p.N(); k++ {
		nodes[k] = make([]*server.Multi, m)
		urls[k] = make([]string, m)
		jsonOnly := false
		for _, j := range cfg.JSONOnlyShards {
			if j == k {
				jsonOnly = true
			}
		}
		for r := 0; r < m; r++ {
			opts := cfg.Opts
			opts.Partition = OwnerOf(p, k)
			var sh *core.Shared
			if cfg.Live {
				sh = core.NewLiveShared(g, opts)
			} else {
				sh = core.NewShared(g, opts)
			}
			nodes[k][r] = server.NewMultiShared(sh, opts, cfg.MaxSessions)
			h := nodes[k][r].Handler()
			if jsonOnly {
				h = stripWire(h)
			}
			urls[k][r] = tr.Register(fmt.Sprintf("shard%dr%d.inproc", k, r), h)
		}
	}
	ro := cfg.Router
	ro.Transport = tr
	if cfg.Fault != nil {
		cfg.Fault.Wrap(tr)
		ro.Transport = cfg.Fault
	}
	if ro.TopEntities <= 0 {
		ro.TopEntities = cfg.Opts.TopEntities // zero → both default to 20
	}
	return &Cluster{
		Partitioner: p,
		Router:      NewReplicatedRouter(urls, ro),
		Nodes:       nodes,
	}
}

// stripWire makes a node look like a pre-codec version: the inbound
// Accept offer is removed (so the node answers JSON) and the outbound
// X-Pivote-Wire advertisement is suppressed (so the router records the
// replica as JSON-only).
func stripWire(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept")
		h.ServeHTTP(&stripWireWriter{ResponseWriter: w}, r)
	})
}

type stripWireWriter struct {
	http.ResponseWriter
}

func (sw *stripWireWriter) WriteHeader(code int) {
	sw.Header().Del(server.WireHeader)
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *stripWireWriter) Write(b []byte) (int, error) {
	sw.Header().Del(server.WireHeader)
	return sw.ResponseWriter.Write(b)
}

// Handler serves the router's API surface.
func (c *Cluster) Handler() http.Handler { return c.Router.Handler() }

// Close stops every node's background compactor (if any).
func (c *Cluster) Close() error {
	var first error
	for _, set := range c.Nodes {
		for _, n := range set {
			if err := n.Shared().Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
