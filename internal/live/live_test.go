package live

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pivote/internal/errs"
	"pivote/internal/kg"
	"pivote/internal/kgtest"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

// rebuild materializes the expected triple set into a from-scratch
// frozen store over the same dictionary — the reference every overlay
// read must be byte-identical to.
func rebuild(dict *rdf.Dictionary, triples map[rdf.Triple]bool) *rdf.Store {
	st := rdf.NewStore(dict)
	for t, present := range triples {
		if present {
			st.Add(t.S, t.P, t.O)
		}
	}
	st.Freeze()
	return st
}

// collect snapshots a store or view's full triple sequence in iteration
// order.
func collectStore(st *rdf.Store) []rdf.Triple {
	var out []rdf.Triple
	st.ForEachTriple(func(t rdf.Triple) { out = append(out, t) })
	return out
}

func collectView(v *View) []rdf.Triple {
	var out []rdf.Triple
	v.ForEachTriple(func(t rdf.Triple) { out = append(out, t) })
	return out
}

// assertEquivalent checks every read path of the overlay against the
// from-scratch rebuild: full iteration order, per-node adjacency in both
// directions, degrees, predicate extents and membership probes.
func assertEquivalent(t *testing.T, v *View, want *rdf.Store) {
	t.Helper()
	if got, exp := collectView(v), collectStore(want); !reflect.DeepEqual(got, exp) {
		t.Fatalf("ForEachTriple diverged: overlay %d triples, rebuild %d", len(got), len(exp))
	}
	if v.Len() != want.Len() {
		t.Fatalf("Len: overlay %d, rebuild %d", v.Len(), want.Len())
	}
	maxID := v.MaxTermID()
	if wantMax := want.MaxTermID(); maxID != wantMax {
		t.Fatalf("MaxTermID: overlay %d, rebuild %d", maxID, wantMax)
	}
	preds := map[rdf.TermID]bool{}
	for id := rdf.TermID(1); id <= maxID; id++ {
		out, in := v.Out(id), v.In(id)
		if wo := want.Out(id); !equalEdges(out, wo) {
			t.Fatalf("Out(%d): overlay %v, rebuild %v", id, out, wo)
		}
		if wi := want.In(id); !equalEdges(in, wi) {
			t.Fatalf("In(%d): overlay %v, rebuild %v", id, in, wi)
		}
		if v.OutDegree(id) != want.OutDegree(id) || v.InDegree(id) != want.InDegree(id) {
			t.Fatalf("degree mismatch at %d", id)
		}
		for _, e := range out {
			preds[e.P] = true
			if !v.Has(id, e.P, e.Node) {
				t.Fatalf("Has(%d,%d,%d) = false for present triple", id, e.P, e.Node)
			}
		}
	}
	for id := rdf.TermID(1); id <= maxID; id++ {
		for p := range preds {
			if got, exp := v.Objects(id, p), want.Objects(id, p); !equalIDs(got, exp) {
				t.Fatalf("Objects(%d,%d): overlay %v, rebuild %v", id, p, got, exp)
			}
			if got, exp := v.Subjects(p, id), want.Subjects(p, id); !equalIDs(got, exp) {
				t.Fatalf("Subjects(%d,%d): overlay %v, rebuild %v", p, id, got, exp)
			}
			if v.CountObjects(id, p) != want.CountObjects(id, p) {
				t.Fatalf("CountObjects(%d,%d) mismatch", id, p)
			}
			if v.CountSubjects(p, id) != want.CountSubjects(p, id) {
				t.Fatalf("CountSubjects(%d,%d) mismatch", p, id)
			}
		}
	}
}

func equalEdges(a, b []rdf.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalIDs(a, b []rdf.TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOverlayEquivalence drives random batches of adds and tombstones —
// including duplicates, re-adds of removed triples and removals of
// absent ones — and asserts after every batch that each overlay read is
// byte-identical to a from-scratch rebuild of the expected triple set.
func TestOverlayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dict := rdf.NewDictionary()
	const nodes = 40
	ids := make([]rdf.TermID, nodes)
	for i := range ids {
		ids[i] = dict.Intern(rdf.NewIRI(fmt.Sprintf("http://x/n%d", i)))
	}
	preds := make([]rdf.TermID, 4)
	for i := range preds {
		preds[i] = dict.Intern(rdf.NewIRI(fmt.Sprintf("http://x/p%d", i)))
	}
	randTriple := func() rdf.Triple {
		return rdf.Triple{
			S: ids[rng.Intn(nodes)],
			P: preds[rng.Intn(len(preds))],
			O: ids[rng.Intn(nodes)],
		}
	}

	expected := map[rdf.Triple]bool{}
	base := rdf.NewStore(dict)
	for i := 0; i < 200; i++ {
		tr := randTriple()
		base.Add(tr.S, tr.P, tr.O)
		expected[tr] = true
	}
	base.Freeze()

	s := NewStore(kg.NewGraph(base), Config{})
	for batch := 0; batch < 25; batch++ {
		var adds, dels []rdf.Triple
		for i := 0; i < 1+rng.Intn(12); i++ {
			adds = append(adds, randTriple())
		}
		for i := 0; i < rng.Intn(8); i++ {
			dels = append(dels, randTriple())
		}
		if _, err := s.Ingest(adds, dels); err != nil {
			t.Fatalf("ingest: %v", err)
		}
		for _, tr := range adds {
			expected[tr] = true
		}
		for _, tr := range dels {
			delete(expected, tr)
		}
		assertEquivalent(t, s.View(), rebuild(dict, expected))

		// Occasionally fold the delta into a new generation and re-check:
		// post-swap reads must match the same rebuild with an empty delta.
		if batch%7 == 6 {
			gen, swapped, err := s.CompactNow()
			if err != nil {
				t.Fatalf("compact: %v", err)
			}
			if !swapped {
				t.Fatal("compaction with pending delta reported no swap")
			}
			if s.Pending() != 0 {
				t.Fatalf("pending %d after compaction", s.Pending())
			}
			if gen.ID == 0 {
				t.Fatal("generation did not advance")
			}
			assertEquivalent(t, s.View(), rebuild(dict, expected))
		}
	}
}

// TestLastWriterWins checks add/remove sequences on the same triple
// inside and across batches.
func TestLastWriterWins(t *testing.T) {
	fx := kgtest.Build()
	s := NewStore(fx.Graph, Config{})
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()

	hanks := fx.E("Tom_Hanks")
	gump := fx.E("Forrest_Gump")
	starring := dict.LookupIRI("http://pivote.dev/ontology/starring")
	if starring == rdf.NoTerm {
		// The fixture may use a different namespace; find it from the graph.
		for _, e := range fx.Store.Out(gump) {
			if !voc.IsMeta(e.P) && e.Node == hanks {
				starring = e.P
			}
		}
	}
	if starring == rdf.NoTerm {
		t.Fatal("could not locate starring predicate")
	}
	tr := rdf.Triple{S: gump, P: starring, O: hanks}
	if !s.View().Has(tr.S, tr.P, tr.O) {
		t.Fatal("fixture triple missing")
	}

	// Add and remove the same triple in one batch: the log preserves call
	// order (Ingest appends adds before dels), so the tombstone wins.
	if _, err := s.Ingest([]rdf.Triple{tr}, []rdf.Triple{tr}); err != nil {
		t.Fatal(err)
	}
	if s.View().Has(tr.S, tr.P, tr.O) {
		t.Fatal("tombstone in the same batch should win over the add")
	}
	// Re-add in a later batch: back alive.
	if _, err := s.Ingest([]rdf.Triple{tr}, nil); err != nil {
		t.Fatal(err)
	}
	if !s.View().Has(tr.S, tr.P, tr.O) {
		t.Fatal("re-add after tombstone should resurrect the triple")
	}
	// Compact and confirm it survived the swap.
	if _, _, err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if !s.View().Has(tr.S, tr.P, tr.O) {
		t.Fatal("triple lost across compaction")
	}
}

// TestIngestValidation: malformed batches are typed invalid and leave
// the store and dictionary untouched.
func TestIngestValidation(t *testing.T) {
	fx := kgtest.Build()
	s := NewStore(fx.Graph, Config{})
	dict := fx.Store.Dict()

	if _, err := s.Ingest([]rdf.Triple{{S: rdf.NoTerm, P: 1, O: 1}}, nil); errs.KindOf(err) != errs.KindInvalid {
		t.Fatalf("NoTerm triple: got %v", err)
	}
	huge := rdf.TermID(dict.Len() + 100)
	if _, err := s.Ingest([]rdf.Triple{{S: huge, P: 1, O: 1}}, nil); errs.KindOf(err) != errs.KindInvalid {
		t.Fatalf("out-of-range triple: got %v", err)
	}
	before := dict.Len()
	_, err := s.IngestNTriples(strings.NewReader("<http://x/a> <http://x/b> garbage .\n"), nil)
	if errs.KindOf(err) != errs.KindInvalid {
		t.Fatalf("malformed N-Triples: got %v", err)
	}
	if dict.Len() != before {
		t.Fatalf("failed decode interned terms: %d -> %d", before, dict.Len())
	}
	// Mixed batch: a valid add side plus a malformed remove side rejects
	// as a unit — not even the add side's new terms may be interned.
	_, err = s.IngestNTriples(
		strings.NewReader("<http://x/brand-new-subject> <http://x/brand-new-pred> <http://x/brand-new-object> .\n"),
		strings.NewReader("not a triple"),
	)
	if errs.KindOf(err) != errs.KindInvalid {
		t.Fatalf("mixed batch: got %v", err)
	}
	if dict.Len() != before {
		t.Fatalf("rejected mixed batch interned terms: %d -> %d", before, dict.Len())
	}
	if s.Pending() != 0 {
		t.Fatalf("failed batches left %d pending triples", s.Pending())
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest([]rdf.Triple{{S: 1, P: 1, O: 1}}, nil); errs.KindOf(err) != errs.KindInvalid {
		t.Fatalf("ingest after close: got %v", err)
	}
}

// TestGenerationPinning: a view loaded before ingest and compaction
// keeps serving the old state forever.
func TestGenerationPinning(t *testing.T) {
	fx := kgtest.Build()
	s := NewStore(fx.Graph, Config{})
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()

	old := s.View()
	oldLen := old.Len()

	subj := dict.Intern(rdf.NewIRI("http://pivote.dev/resource/Brand_New_Film"))
	tr := rdf.Triple{S: subj, P: voc.Type, O: fx.Store.Objects(fx.E("Forrest_Gump"), voc.Type)[0]}
	if _, err := s.Ingest([]rdf.Triple{tr}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}

	if old.Len() != oldLen || old.Has(tr.S, tr.P, tr.O) {
		t.Fatal("pinned view observed a later write")
	}
	if !s.View().Has(tr.S, tr.P, tr.O) {
		t.Fatal("current view missing the ingested triple")
	}
	if s.Generation().ID != old.Gen.ID+1 {
		t.Fatalf("generation %d, want %d", s.Generation().ID, old.Gen.ID+1)
	}
}

// TestFeatureCacheCarry: after a swap, cache entries whose dependencies
// the delta did not touch are carried into the new generation, and
// carried values match a from-scratch recompute.
func TestFeatureCacheCarry(t *testing.T) {
	fx := kgtest.Build()
	s := NewStore(fx.Graph, Config{})
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()

	// Warm two extents on generation 0: one anchored far from the write,
	// one at the write target.
	gen0 := s.Generation()
	var starring rdf.TermID
	for _, e := range fx.Store.Out(fx.E("Forrest_Gump")) {
		if !voc.IsMeta(e.P) && e.Node == fx.E("Tom_Hanks") {
			starring = e.P
		}
	}
	if starring == rdf.NoTerm {
		t.Fatal("no starring predicate")
	}
	import0 := gen0.Features.Extent(featureOf(fx.E("Leonardo_DiCaprio"), starring))
	touchedExt := gen0.Features.Extent(featureOf(fx.E("Tom_Hanks"), starring))
	if len(touchedExt) == 0 {
		t.Fatal("Tom_Hanks starring extent empty")
	}

	// Ingest a new film starring Tom Hanks (typed, so it is an entity).
	film := dict.Intern(rdf.NewIRI("http://pivote.dev/resource/New_Hanks_Film"))
	filmType := fx.Store.Objects(fx.E("Forrest_Gump"), voc.Type)[0]
	batch := []rdf.Triple{
		{S: film, P: voc.Type, O: filmType},
		{S: film, P: starring, O: fx.E("Tom_Hanks")},
	}
	if _, err := s.Ingest(batch, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	gen1 := s.Generation()

	carry := gen1.Features.Carry()
	if carry.Gen != 1 {
		t.Fatalf("carry gen %d, want 1", carry.Gen)
	}
	if carry.Carried == 0 {
		t.Fatal("nothing carried: untouched extents should survive the swap")
	}

	// The untouched extent must be the carried slice (same backing array).
	got := gen1.Features.Extent(featureOf(fx.E("Leonardo_DiCaprio"), starring))
	if !equalIDs(got, import0) {
		t.Fatalf("carried extent changed: %v vs %v", got, import0)
	}
	// The touched extent must now include the new film.
	newExt := gen1.Features.Extent(featureOf(fx.E("Tom_Hanks"), starring))
	if len(newExt) != len(touchedExt)+1 || !rdf.ContainsSorted(newExt, film) {
		t.Fatalf("touched extent not recomputed: %v", newExt)
	}
	// And the carried value must equal what a cold cache computes over
	// the new generation's graph.
	coldCache := semfeat.NewFeatureCache(gen1.Graph)
	if coldExt := coldCache.Extent(featureOf(fx.E("Leonardo_DiCaprio"), starring)); !equalIDs(got, coldExt) {
		t.Fatalf("carried extent %v != cold recompute %v", got, coldExt)
	}
}

// featureOf builds the backward feature anchor:pred (entities with a
// pred-edge to anchor).
func featureOf(anchor, pred rdf.TermID) semfeat.Feature {
	return semfeat.Feature{Anchor: anchor, Pred: pred, Dir: semfeat.Backward}
}
