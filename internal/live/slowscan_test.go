package live_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"pivote/internal/core"
	"pivote/internal/kgtest"
	"pivote/internal/live"
)

// TestOpenGenerationNoSlowInputs hammers the opener with random
// mutations of a valid snapshot and fails on any input that takes
// longer than a generous bound — a watchdog for accidental quadratic
// (or unbounded) validation paths that coverage fuzzing would only
// surface as a mysterious stall.
func TestOpenGenerationNoSlowInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation sweep")
	}
	fx := kgtest.Build()
	sh := core.NewShared(fx.Graph, core.Options{TopEntities: 5, TopFeatures: 5})
	var buf bytes.Buffer
	if err := live.WriteGeneration(sh.Generation(), &buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	rng := rand.New(rand.NewSource(1))
	work := append([]byte(nil), valid...)
	for i := 0; i < 20000; i++ {
		copy(work, valid)
		data := work
		switch rng.Intn(3) {
		case 0: // flip 1-8 bytes
			for k := rng.Intn(8) + 1; k > 0; k-- {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate
			data = data[:rng.Intn(len(data))]
		case 2: // flip bytes then truncate
			for k := rng.Intn(4) + 1; k > 0; k-- {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
			data = data[:rng.Intn(len(data))]
		}
		start := time.Now()
		gen, err := live.OpenGenerationBytes(data)
		if d := time.Since(start); d > 250*time.Millisecond {
			t.Fatalf("iteration %d: open took %v (err=%v)", i, d, err)
		}
		if err == nil {
			gen.Mapping().Close()
		}
	}
}
