package live

import (
	"pivote/internal/rdf"
)

// View is one consistent read snapshot of the live graph: an immutable
// generation plus the immutable delta pending on top of it. Reads
// resolve through a merged overlay — the base CSR run and the sorted
// delta run are merged on the fly, tombstones subtracted — and are
// byte-identical to the same read against a from-scratch rebuild of the
// generation's triples plus the delta (the equivalence suite asserts
// exactly that). A View is obtained with Store.View and never blocks on
// or observes concurrent ingest: later writes publish later Views.
type View struct {
	// Gen is the generation this view is layered on.
	Gen *Generation
	// delta holds the pending writes; emptyDelta when none.
	delta *Delta
}

// Pending reports the number of pending delta triples in this view.
func (v *View) Pending() int { return v.delta.Pending() }

// Dict returns the shared term dictionary.
func (v *View) Dict() *rdf.Dictionary { return v.Gen.Store().Dict() }

// MaxTermID returns the largest addressable node ID: the dictionary
// bound, which covers both the base store and any delta-interned terms.
func (v *View) MaxTermID() rdf.TermID {
	return rdf.TermID(v.Dict().Len())
}

// Out returns the merged, sorted (p, o) edges leaving s in a fresh slice.
func (v *View) Out(s rdf.TermID) []rdf.Edge { return v.OutAppend(nil, s) }

// OutAppend appends the merged out-edges of s to dst and returns it.
func (v *View) OutAppend(dst []rdf.Edge, s rdf.TermID) []rdf.Edge {
	return mergeRuns(dst, v.Gen.Store().Out(s), v.delta.addsOut[s], v.delta.delsOut[s])
}

// In returns the merged, sorted (p, s) edges entering o in a fresh slice.
func (v *View) In(o rdf.TermID) []rdf.Edge { return v.InAppend(nil, o) }

// InAppend appends the merged in-edges of o to dst and returns it.
func (v *View) InAppend(dst []rdf.Edge, o rdf.TermID) []rdf.Edge {
	return mergeRuns(dst, v.Gen.Store().In(o), v.delta.addsIn[o], v.delta.delsIn[o])
}

// Objects returns the sorted objects o of triples (s, p, o).
func (v *View) Objects(s, p rdf.TermID) []rdf.TermID {
	return v.ObjectsAppend(nil, s, p)
}

// ObjectsAppend appends the objects of (s, p, *) to dst and returns it.
func (v *View) ObjectsAppend(dst []rdf.TermID, s, p rdf.TermID) []rdf.TermID {
	return nodesOf(dst, v.mergedPredRun(nil, v.Gen.Store().Out(s), v.delta.addsOut[s], v.delta.delsOut[s], p))
}

// Subjects returns the sorted subjects s of triples (s, p, o).
func (v *View) Subjects(p, o rdf.TermID) []rdf.TermID {
	return v.SubjectsAppend(nil, p, o)
}

// SubjectsAppend appends the subjects of (*, p, o) to dst and returns it.
func (v *View) SubjectsAppend(dst []rdf.TermID, p, o rdf.TermID) []rdf.TermID {
	return nodesOf(dst, v.mergedPredRun(nil, v.Gen.Store().In(o), v.delta.addsIn[o], v.delta.delsIn[o], p))
}

// CountObjects reports |{o : (s,p,o)}| without materializing the set.
func (v *View) CountObjects(s, p rdf.TermID) int {
	return v.mergedPredCount(v.Gen.Store().Out(s), v.delta.addsOut[s], v.delta.delsOut[s], p)
}

// CountSubjects reports |{s : (s,p,o)}| without materializing the set.
func (v *View) CountSubjects(p, o rdf.TermID) int {
	return v.mergedPredCount(v.Gen.Store().In(o), v.delta.addsIn[o], v.delta.delsIn[o], p)
}

// OutDegree reports the number of distinct outgoing edges of s.
func (v *View) OutDegree(s rdf.TermID) int {
	return mergedLen(v.Gen.Store().Out(s), v.delta.addsOut[s], v.delta.delsOut[s])
}

// InDegree reports the number of distinct incoming edges of o.
func (v *View) InDegree(o rdf.TermID) int {
	return mergedLen(v.Gen.Store().In(o), v.delta.addsIn[o], v.delta.delsIn[o])
}

// Has reports whether the triple (s, p, o) is present in the overlay:
// tombstones win over the base, delta adds count as present.
func (v *View) Has(s, p, o rdf.TermID) bool {
	e := rdf.Edge{P: p, Node: o}
	if containsEdge(v.delta.delsOut[s], e) {
		return false
	}
	if containsEdge(v.delta.addsOut[s], e) {
		return true
	}
	return v.Gen.Store().Has(s, p, o)
}

// Len reports the number of distinct triples in the overlay: the base
// count plus pending adds that are new, minus tombstones that hit.
func (v *View) Len() int {
	st := v.Gen.Store()
	n := st.Len()
	for s, run := range v.delta.addsOut {
		for _, e := range run {
			if !st.Has(s, e.P, e.Node) {
				n++
			}
		}
	}
	for s, run := range v.delta.delsOut {
		for _, e := range run {
			if st.Has(s, e.P, e.Node) {
				n--
			}
		}
	}
	return n
}

// ForEachTriple visits every overlay triple in (S, P, O) order — the
// same order a from-scratch frozen store iterates in. The compactor
// materializes the next generation through this iteration.
func (v *View) ForEachTriple(fn func(rdf.Triple)) {
	base := v.Gen.Store().NodesWithOut()
	delta := v.delta.subjects
	var scratch []rdf.Edge
	visit := func(s rdf.TermID) {
		scratch = v.OutAppend(scratch[:0], s)
		for _, e := range scratch {
			fn(rdf.Triple{S: s, P: e.P, O: e.Node})
		}
	}
	i, j := 0, 0
	for i < len(base) && j < len(delta) {
		switch {
		case base[i] == delta[j]:
			visit(base[i])
			i++
			j++
		case base[i] < delta[j]:
			visit(base[i])
			i++
		default:
			visit(delta[j])
			j++
		}
	}
	for ; i < len(base); i++ {
		visit(base[i])
	}
	for ; j < len(delta); j++ {
		visit(delta[j])
	}
}

// mergedPredRun merges only the predicate run of the three edge lists —
// binary searches locate the contiguous (p, *) slice of each sorted run
// before the merge, so cost scales with the run, not the node degree.
func (v *View) mergedPredRun(dst []rdf.Edge, base, adds, dels []rdf.Edge, p rdf.TermID) []rdf.Edge {
	return mergeRuns(dst, rdf.PredRun(base, p), rdf.PredRun(adds, p), rdf.PredRun(dels, p))
}

// mergedPredCount counts the merged predicate run without materializing.
func (v *View) mergedPredCount(base, adds, dels []rdf.Edge, p rdf.TermID) int {
	return mergedLen(rdf.PredRun(base, p), rdf.PredRun(adds, p), rdf.PredRun(dels, p))
}

// mergedLen counts the merge of base and adds minus dels without
// allocating.
func mergedLen(base, adds, dels []rdf.Edge) int {
	n := 0
	i, j := 0, 0
	count := func(e rdf.Edge) {
		for len(dels) > 0 && edgeLess(dels[0], e) {
			dels = dels[1:]
		}
		if len(dels) > 0 && dels[0] == e {
			return
		}
		n++
	}
	for i < len(base) && j < len(adds) {
		switch {
		case base[i] == adds[j]:
			count(base[i])
			i++
			j++
		case edgeLess(base[i], adds[j]):
			count(base[i])
			i++
		default:
			count(adds[j])
			j++
		}
	}
	for ; i < len(base); i++ {
		count(base[i])
	}
	for ; j < len(adds); j++ {
		count(adds[j])
	}
	return n
}

// nodesOf appends the Node of every edge to dst.
func nodesOf(dst []rdf.TermID, run []rdf.Edge) []rdf.TermID {
	for _, e := range run {
		dst = append(dst, e.Node)
	}
	return dst
}
