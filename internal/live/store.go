package live

import (
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pivote/internal/errs"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/search"
)

// Config tunes a live Store.
type Config struct {
	// SearchParams override the retrieval hyperparameters of every
	// generation's search index when non-nil.
	SearchParams *search.Params
	// CompactThreshold is the pending-triple count at which an ingest
	// kicks the background compactor (when started). <= 0 selects the
	// default of 2048.
	CompactThreshold int
	// SnapshotDir, when non-empty, makes every compaction swap persist
	// the new generation as a sectioned snapshot (gen-<id>.pvgen) in
	// this directory, written atomically. A later process restores it
	// with OpenGeneration + NewStoreFromGeneration. Snapshot write
	// failures never fail the compaction; LastSnapshot reports them.
	SnapshotDir string
	// SnapshotWrite, when non-nil, overrides how a compaction swap is
	// persisted into SnapshotDir: it returns the target path it wrote
	// (or tried to write). Shard nodes hook per-shard snapshot files
	// (gen-<id>-s<k>.pvgen, with the trailing ownership section) in
	// here; nil selects the plain WriteGenerationFile path.
	SnapshotWrite func(gen *Generation, dir string) (string, error)
	// Partition, when non-nil, restricts result emission of every
	// generation this store publishes to the entities it accepts — the
	// shard-node configuration. TermIDs are stable across compaction
	// swaps (all generations share one append-only dictionary), so a
	// deterministic predicate over TermIDs partitions identically in
	// every generation and sessions survive swaps under sharding.
	Partition func(rdf.TermID) bool
}

func (c Config) withDefaults() Config {
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = 2048
	}
	return c
}

// Store is the generational graph: an atomic current View (generation +
// delta) plus the pending write log. Reads are wait-free — View is one
// atomic load, and everything reachable from a View is immutable.
// Writes serialize behind a mutex and publish a fresh View; they never
// touch anything a reader holds. The compactor (a background goroutine
// when started, or CompactNow for synchronous control) folds the delta
// into the next generation and publishes it with an RCU pointer swap.
type Store struct {
	cfg  Config
	view atomic.Pointer[View]

	mu  sync.Mutex // guards log, final, closed, and view publication
	log []logEntry
	// final is the incrementally maintained fold of log (last writer
	// wins per triple); kept alongside it so a batch costs O(batch) to
	// fold plus O(pending) to index, instead of re-folding the whole log.
	final  map[rdf.Triple]bool
	closed bool

	compactMu sync.Mutex // serializes compactions (background or forced)
	started   atomic.Bool
	kick      chan struct{}
	stop      chan struct{}
	wg        sync.WaitGroup

	swaps     atomic.Uint64
	adoptions atomic.Uint64

	snapMu   sync.Mutex // guards the last-snapshot record
	snapPath string
	snapErr  error
}

// NewStore builds a live store over a frozen seed graph as generation 0.
// No goroutine is spawned until StartCompactor; a Store that never
// ingests behaves exactly like the frozen-only stack.
func NewStore(g *kg.Graph, cfg Config) *Store {
	s := &Store{
		cfg:   cfg.withDefaults(),
		final: map[rdf.Triple]bool{},
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	gen := newGeneration(0, g, s.cfg.SearchParams, nil, nil, s.cfg.Partition)
	s.view.Store(&View{Gen: gen, delta: emptyDelta})
	return s
}

// NewStoreFromGeneration builds a live store serving an already-opened
// generation — the snapshot restore path. The generation keeps its
// snapshot ID, so the next compaction publishes ID+1 and snapshot
// filenames stay monotone across restarts. Ingest and compaction work
// exactly as after NewStore; the shared dictionary grows past the
// mapped base region as new terms arrive.
func NewStoreFromGeneration(gen *Generation, cfg Config) *Store {
	s := &Store{
		cfg:   cfg.withDefaults(),
		final: map[rdf.Triple]bool{},
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
	}
	if cfg.Partition != nil && gen.Own == nil {
		gen.ApplyPartition(cfg.Partition)
	}
	s.view.Store(&View{Gen: gen, delta: emptyDelta})
	return s
}

// View returns the current consistent read snapshot. The returned view
// (and its generation) remains valid and immutable forever; holding it
// is what "pinning a generation" means.
func (s *Store) View() *View { return s.view.Load() }

// Generation returns the current generation.
func (s *Store) Generation() *Generation { return s.View().Gen }

// Swaps reports how many compaction swaps have been published.
func (s *Store) Swaps() uint64 { return s.swaps.Load() }

// Pending reports the number of distinct pending delta triples.
func (s *Store) Pending() int { return s.View().Pending() }

// IngestResult reports what one ingest batch did.
type IngestResult struct {
	// Added and Removed count the triples of the batch (pre-dedup).
	Added, Removed int
	// Pending is the distinct pending triple count after the batch.
	Pending int
	// Generation is the generation the batch is layered on; the batch
	// becomes part of generation Generation+1 at the next swap.
	Generation uint64
}

// Ingest appends a batch of adds and tombstones to the delta log and
// publishes a new View containing them. The batch is atomic: it is
// validated in full before anything is published, and a typed invalid
// error leaves the store unchanged. Readers never block — they keep the
// view they loaded; the new view is visible to every subsequent View
// call.
func (s *Store) Ingest(adds, dels []rdf.Triple) (IngestResult, error) {
	t0 := liveStart()
	dictLen := s.View().Dict().Len()
	check := func(ts []rdf.Triple) error {
		for _, t := range ts {
			if t.S == rdf.NoTerm || t.P == rdf.NoTerm || t.O == rdf.NoTerm {
				return errs.Errf(errs.KindInvalid, "live: triple references the NoTerm sentinel")
			}
			if int(t.S) > dictLen || int(t.P) > dictLen || int(t.O) > dictLen {
				return errs.Errf(errs.KindInvalid, "live: triple references unknown term id")
			}
		}
		return nil
	}
	if err := check(adds); err != nil {
		return IngestResult{}, err
	}
	if err := check(dels); err != nil {
		return IngestResult{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return IngestResult{}, errs.Errf(errs.KindInvalid, "live: store is closed")
	}
	for _, t := range adds {
		s.log = append(s.log, logEntry{t: t})
		s.final[t] = true
	}
	for _, t := range dels {
		s.log = append(s.log, logEntry{t: t, del: true})
		s.final[t] = false
	}
	delta := indexDelta(s.final)
	gen := s.view.Load().Gen
	s.view.Store(&View{Gen: gen, delta: delta})
	pending := delta.Pending()
	s.mu.Unlock()

	if s.started.Load() && pending >= s.cfg.CompactThreshold {
		select {
		case s.kick <- struct{}{}:
		default: // a kick is already queued
		}
	}
	if !t0.IsZero() {
		mIngestSeconds.Observe(time.Since(t0))
		mIngestBatches.Inc()
		mIngestTriples.Add(uint64(len(adds) + len(dels)))
		mIngestBatchSize.ObserveVal(uint64(len(adds) + len(dels)))
	}
	return IngestResult{Added: len(adds), Removed: len(dels), Pending: pending, Generation: gen.ID}, nil
}

// IngestNTriples decodes N-Triples batches (either reader may be nil)
// against the shared dictionary and ingests them. Both batches are
// parsed in full before any term is interned, so a parse error in
// either one is typed invalid and leaves both the dictionary and the
// store untouched.
func (s *Store) IngestNTriples(adds, dels io.Reader) (IngestResult, error) {
	var addP, delP []rdf.TermTriple
	var err error
	if adds != nil {
		if addP, err = rdf.ParseNTriples(adds); err != nil {
			return IngestResult{}, err
		}
	}
	if dels != nil {
		if delP, err = rdf.ParseNTriples(dels); err != nil {
			return IngestResult{}, err
		}
	}
	// Refuse before interning: a closed store must not grow the shared
	// dictionary (a close racing this check can still intern a batch's
	// terms, which is harmless — the batch itself is rejected).
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return IngestResult{}, errs.Errf(errs.KindInvalid, "live: store is closed")
	}
	dict := s.View().Dict()
	return s.Ingest(rdf.InternTriples(dict, addP), rdf.InternTriples(dict, delP))
}

// StartCompactor launches the background compactor: every kick (an
// ingest crossing the threshold, or TriggerCompact) folds the pending
// delta into a fresh generation off-thread. Idempotent.
func (s *Store) StartCompactor() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-s.stop:
				return
			case <-s.kick:
				_, _, _ = s.CompactNow()
			}
		}
	}()
}

// TriggerCompact kicks the background compactor without blocking. It is
// a no-op when the compactor is not running.
func (s *Store) TriggerCompact() {
	if !s.started.Load() {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// CompactNow synchronously folds the pending delta (as of call time)
// into a new generation and publishes it with an RCU swap. It returns
// the generation that is current afterwards and whether a swap happened
// (false when the delta was empty). Ingest continues concurrently:
// writes that arrive during the rebuild stay pending on top of the new
// generation.
func (s *Store) CompactNow() (*Generation, bool, error) {
	t0 := liveStart()
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Snapshot the view and the log prefix it covers. Views are published
	// under mu, so the pair is consistent.
	s.mu.Lock()
	v := s.view.Load()
	n := len(s.log)
	prefix := s.log[:n:n]
	s.mu.Unlock()
	if v.Pending() == 0 {
		return v.Gen, false, nil
	}

	// Rebuild off-thread: materialize the overlay through the merged
	// iteration into a fresh store sharing the append-only dictionary,
	// then rebuild every derived structure. Readers keep serving from the
	// current view throughout.
	next := rdf.NewStore(v.Dict())
	var addErr error
	v.ForEachTriple(func(t rdf.Triple) {
		if addErr == nil {
			addErr = next.TryAdd(t.S, t.P, t.O)
		}
	})
	if addErr != nil {
		return v.Gen, false, addErr
	}
	next.Freeze()
	g2 := kg.NewGraph(next)
	touched := touchedSet(prefix, next, g2.Voc().Type)
	gen2 := newGeneration(v.Gen.ID+1, g2, s.cfg.SearchParams, v.Gen.Features, touched, s.cfg.Partition)

	// Publish: the compacted prefix leaves the log; whatever arrived
	// since stays pending as the new generation's delta.
	s.mu.Lock()
	s.log = append([]logEntry(nil), s.log[n:]...)
	s.final = foldLog(s.log)
	delta := indexDelta(s.final)
	s.view.Store(&View{Gen: gen2, delta: delta})
	s.mu.Unlock()
	s.swaps.Add(1)

	// Persist the published generation while still holding compactMu, so
	// snapshots appear in ID order. Readers are already on gen2; a write
	// failure is recorded, never propagated — serving beats durability.
	if s.cfg.SnapshotDir != "" {
		var path string
		var err error
		if s.cfg.SnapshotWrite != nil {
			path, err = s.cfg.SnapshotWrite(gen2, s.cfg.SnapshotDir)
		} else {
			path = SnapshotPath(s.cfg.SnapshotDir, gen2.ID)
			err = WriteGenerationFile(gen2, path)
		}
		s.snapMu.Lock()
		s.snapPath, s.snapErr = path, err
		s.snapMu.Unlock()
	}
	if !t0.IsZero() {
		mCompactSeconds.Observe(time.Since(t0))
	}
	mSwapsTotal.Inc()
	mGeneration.Set(int64(gen2.ID))
	return gen2, true, nil
}

// Adoptions reports how many of the published swaps were adoptions of
// externally compacted generations (snapshot replication) rather than
// local compactions.
func (s *Store) Adoptions() uint64 { return s.adoptions.Load() }

// AdoptGeneration publishes an externally compacted generation — the
// snapshot-replication path: one replica of a shard compacts and writes
// the per-shard snapshot file, its peers open those bytes and adopt the
// result here through the same RCU swap a local compaction uses.
//
// Adoption asserts the snapshot SUPERSEDES local state: the pending
// delta log is discarded wholesale, because the coordinator (the
// scatter-gather router) serializes ingest against swaps, so at adopt
// time every pending triple this store holds is already folded into the
// adopted generation. Calling this outside such a protocol loses writes.
//
// A generation older than the current one is refused as a no-op (never
// an error — adoption is idempotent); an equal ID is also a no-op
// unless force is set, which replaces the state wholesale — the repair
// path for a replica that diverged (missed a write while unreachable)
// and may hold a same-ID generation with different content. Reports
// whether a swap was published.
func (s *Store) AdoptGeneration(gen *Generation, force bool) (bool, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errs.Errf(errs.KindInvalid, "live: store is closed")
	}
	cur := s.view.Load().Gen
	if gen.ID < cur.ID || (gen.ID == cur.ID && !force) {
		return false, nil
	}
	if s.cfg.Partition != nil && gen.Own == nil {
		gen.ApplyPartition(s.cfg.Partition)
	}
	s.log = nil
	s.final = map[rdf.Triple]bool{}
	s.view.Store(&View{Gen: gen, delta: emptyDelta})
	s.swaps.Add(1)
	s.adoptions.Add(1)
	mSwapsTotal.Inc()
	mAdoptionsTotal.Inc()
	mGeneration.Set(int64(gen.ID))
	return true, nil
}

// LastSnapshot reports the most recent snapshot publication attempt:
// the target path and its error (nil on success). Both are zero until
// the first compaction swap with SnapshotDir configured.
func (s *Store) LastSnapshot() (string, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapPath, s.snapErr
}

// Close stops accepting ingest and shuts the compactor down. Pending
// delta triples remain readable through the final view.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.started.Load() {
		close(s.stop)
		s.wg.Wait()
	}
	return nil
}

// touchedSet builds the delta's write set for cache invalidation: every
// S, P and O of the compacted prefix, expanded with the new-store
// neighbours of any node whose rdf:type set changed — gaining or losing
// entity status changes extents whose anchors are exactly those
// neighbours, so folding them in makes the anchor-only invalidation rule
// in semfeat.NewFeatureCacheFrom sound.
func touchedSet(prefix []logEntry, next *rdf.Store, typePred rdf.TermID) func(rdf.TermID) bool {
	set := make(map[rdf.TermID]struct{}, 3*len(prefix))
	mark := func(id rdf.TermID) { set[id] = struct{}{} }
	for _, e := range prefix {
		mark(e.t.S)
		mark(e.t.P)
		mark(e.t.O)
	}
	for _, e := range prefix {
		if e.t.P != typePred || typePred == rdf.NoTerm {
			continue
		}
		for _, edge := range next.Out(e.t.S) {
			mark(edge.Node)
		}
		for _, edge := range next.In(e.t.S) {
			mark(edge.Node)
		}
	}
	return func(id rdf.TermID) bool {
		_, ok := set[id]
		return ok
	}
}
