package live_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/live"
	"pivote/internal/rdf"
	"pivote/internal/synth"
)

// benchGraph builds the synthetic KG used by every live bench.
func benchGraph(scale int) *kg.Graph {
	cfg := synth.Scaled(scale)
	cfg.Seed = 42
	return synth.Generate(cfg).Graph
}

// benchBatch mints one batch of fresh film entities (type + label + a
// starring edge into the existing graph) against the shared dictionary.
func benchBatch(g *kg.Graph, tag string, n int) []rdf.Triple {
	dict := g.Dict()
	voc := g.Voc()
	var filmType, starring, anyActor rdf.TermID
	for _, e := range g.Entities() {
		if t := g.PrimaryType(e); t != rdf.NoTerm {
			if filmType == rdf.NoTerm {
				filmType = t
			}
			for _, edge := range g.Store().Out(e) {
				if !voc.IsMeta(edge.P) && g.IsEntity(edge.Node) {
					starring, anyActor = edge.P, edge.Node
					break
				}
			}
		}
		if filmType != rdf.NoTerm && starring != rdf.NoTerm {
			break
		}
	}
	batch := make([]rdf.Triple, 0, 3*n)
	for i := 0; i < n; i++ {
		f := dict.Intern(rdf.NewIRI(fmt.Sprintf("http://pivote.dev/resource/bench_%s_%d", tag, i)))
		lbl := dict.Intern(rdf.NewLiteral(fmt.Sprintf("bench %s film %d", tag, i)))
		batch = append(batch,
			rdf.Triple{S: f, P: voc.Type, O: filmType},
			rdf.Triple{S: f, P: voc.Label, O: lbl},
			rdf.Triple{S: f, P: starring, O: anyActor},
		)
	}
	return batch
}

// BenchmarkIngest measures the write path alone: one 64-triple batch
// into the delta log plus the immutable-view publication, with the log
// periodically folded so the per-batch delta rebuild stays bounded the
// way the threshold keeps it in production.
func BenchmarkIngest(b *testing.B) {
	g := benchGraph(200)
	s := live.NewStore(g, live.Config{})
	const batchSize = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := benchBatch(g, fmt.Sprintf("i%d", i), batchSize/3+1)
		if _, err := s.Ingest(batch, nil); err != nil {
			b.Fatal(err)
		}
		if s.Pending() >= 2048 {
			b.StopTimer()
			if _, _, err := s.CompactNow(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkCompactionSwap measures one full generation rebuild + RCU
// swap: materialize the overlay, Freeze, rebuild the KG tables and the
// search index, carry the feature cache, publish. This is the
// off-thread cost a swap imposes — readers never see it.
func BenchmarkCompactionSwap(b *testing.B) {
	g := benchGraph(200)
	s := live.NewStore(g, live.Config{})
	batch := benchBatch(g, "c", 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Re-ingesting the same batch keeps the graph size constant
		// across iterations (duplicates deduplicate at Freeze).
		if _, err := s.Ingest(batch, nil); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := s.CompactNow(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrozen is the baseline read: a full entity-ranking
// evaluation against a static shared core (no write path at all).
func BenchmarkReadFrozen(b *testing.B) {
	g := benchGraph(200)
	opts := core.Options{}
	sh := core.NewShared(g, opts)
	benchEvaluate(b, sh, g)
}

// BenchmarkReadUnderIngest is the same evaluation while a paced writer
// ingests batches (a batch every few milliseconds, a compaction swap
// every half second — thousands of triples per second sustained). The
// acceptance bar: steady-state reads regress < 10% vs
// BenchmarkReadFrozen, because reads pin a generation and never touch a
// lock the writer holds. (The writer is paced, not flat-out: an
// unthrottled writer measures CPU sharing — on a single-core runner it
// would steal half the wall clock by scheduling alone — whereas this
// benchmark exists to show reads don't *block* on writes.)
func BenchmarkReadUnderIngest(b *testing.B) {
	g := benchGraph(200)
	opts := core.Options{}
	sh := core.NewLiveShared(g, opts)
	defer sh.Close()
	ls := sh.Live()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			// Rotate the target entity so successive swaps don't keep
			// invalidating one cache line's worth of features.
			batch := benchBatch(g, fmt.Sprintf("u%d", i%97), 7)
			if _, err := ls.Ingest(batch, nil); err != nil {
				return
			}
			if i%100 == 99 {
				if _, _, err := ls.CompactNow(); err != nil {
					return
				}
			}
		}
	}()
	benchEvaluate(b, sh, g)
	close(stop)
	wg.Wait()
}

func benchEvaluate(b *testing.B, sh *core.Shared, g *kg.Graph) {
	eng := core.NewWithShared(sh, core.Options{})
	seed := g.Entities()[len(g.Entities())/2]
	if _, err := eng.Apply(context.Background(), core.OpAddSeed(seed)); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateCtx(ctx, core.FieldEntities|core.FieldFeatures); err != nil {
			b.Fatal(err)
		}
	}
}
