package live_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/live"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/synth"
)

// benchGraph builds the synthetic KG used by every live bench.
func benchGraph(scale int) *kg.Graph {
	cfg := synth.Scaled(scale)
	cfg.Seed = 42
	return synth.Generate(cfg).Graph
}

// benchBatch mints one batch of fresh film entities (type + label + a
// starring edge into the existing graph) against the shared dictionary.
func benchBatch(g *kg.Graph, tag string, n int) []rdf.Triple {
	dict := g.Dict()
	voc := g.Voc()
	var filmType, starring, anyActor rdf.TermID
	for _, e := range g.Entities() {
		if t := g.PrimaryType(e); t != rdf.NoTerm {
			if filmType == rdf.NoTerm {
				filmType = t
			}
			for _, edge := range g.Store().Out(e) {
				if !voc.IsMeta(edge.P) && g.IsEntity(edge.Node) {
					starring, anyActor = edge.P, edge.Node
					break
				}
			}
		}
		if filmType != rdf.NoTerm && starring != rdf.NoTerm {
			break
		}
	}
	batch := make([]rdf.Triple, 0, 3*n)
	for i := 0; i < n; i++ {
		f := dict.Intern(rdf.NewIRI(fmt.Sprintf("http://pivote.dev/resource/bench_%s_%d", tag, i)))
		lbl := dict.Intern(rdf.NewLiteral(fmt.Sprintf("bench %s film %d", tag, i)))
		batch = append(batch,
			rdf.Triple{S: f, P: voc.Type, O: filmType},
			rdf.Triple{S: f, P: voc.Label, O: lbl},
			rdf.Triple{S: f, P: starring, O: anyActor},
		)
	}
	return batch
}

// BenchmarkIngest measures the write path alone: one 64-triple batch
// into the delta log plus the immutable-view publication, with the log
// periodically folded so the per-batch delta rebuild stays bounded the
// way the threshold keeps it in production.
func BenchmarkIngest(b *testing.B) {
	g := benchGraph(200)
	s := live.NewStore(g, live.Config{})
	const batchSize = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := benchBatch(g, fmt.Sprintf("i%d", i), batchSize/3+1)
		if _, err := s.Ingest(batch, nil); err != nil {
			b.Fatal(err)
		}
		if s.Pending() >= 2048 {
			b.StopTimer()
			if _, _, err := s.CompactNow(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkCompactionSwap measures one full generation rebuild + RCU
// swap: materialize the overlay, Freeze, rebuild the KG tables and the
// search index, carry the feature cache, publish. This is the
// off-thread cost a swap imposes — readers never see it.
func BenchmarkCompactionSwap(b *testing.B) {
	g := benchGraph(200)
	s := live.NewStore(g, live.Config{})
	batch := benchBatch(g, "c", 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Re-ingesting the same batch keeps the graph size constant
		// across iterations (duplicates deduplicate at Freeze).
		if _, err := s.Ingest(batch, nil); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := s.CompactNow(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadFrozen is the baseline read: a full entity-ranking
// evaluation against a static shared core (no write path at all).
func BenchmarkReadFrozen(b *testing.B) {
	g := benchGraph(200)
	opts := core.Options{}
	sh := core.NewShared(g, opts)
	benchEvaluate(b, sh, g)
}

// BenchmarkReadUnderIngest is the same evaluation while a paced writer
// ingests batches (a batch every few milliseconds, a compaction swap
// every half second — thousands of triples per second sustained). The
// acceptance bar: steady-state reads regress < 10% vs
// BenchmarkReadFrozen, because reads pin a generation and never touch a
// lock the writer holds. (The writer is paced, not flat-out: an
// unthrottled writer measures CPU sharing — on a single-core runner it
// would steal half the wall clock by scheduling alone — whereas this
// benchmark exists to show reads don't *block* on writes.)
func BenchmarkReadUnderIngest(b *testing.B) {
	g := benchGraph(200)
	opts := core.Options{}
	sh := core.NewLiveShared(g, opts)
	defer sh.Close()
	ls := sh.Live()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			// Rotate the target entity so successive swaps don't keep
			// invalidating one cache line's worth of features.
			batch := benchBatch(g, fmt.Sprintf("u%d", i%97), 7)
			if _, err := ls.Ingest(batch, nil); err != nil {
				return
			}
			if i%100 == 99 {
				if _, _, err := ls.CompactNow(); err != nil {
					return
				}
			}
		}
	}()
	benchEvaluate(b, sh, g)
	close(stop)
	wg.Wait()
}

// coldStartFixture persists the scale-2000 bench graph both ways: the
// v1 triple snapshot (everything derived must be rebuilt on load) and
// the v2 sectioned generation snapshot (everything derived is mapped).
// Both files land in a bench-scoped temp dir; the OS page cache is warm
// for both, so the pair isolates CPU cost, not disk.
func coldStartFixture(b *testing.B) (v1Path, v2Path string) {
	b.Helper()
	dir := b.TempDir()
	g := benchGraph(2000)
	sh := core.NewShared(g, core.Options{})

	v1Path = dir + "/graph.snap"
	f, err := os.Create(v1Path)
	if err != nil {
		b.Fatal(err)
	}
	if err := rdf.WriteSnapshot(g.Store(), f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	v2Path = live.SnapshotPath(dir, 0)
	if err := live.WriteGenerationFile(sh.Generation(), v2Path); err != nil {
		b.Fatal(err)
	}
	return v1Path, v2Path
}

// coldStartQuery is the first query a just-booted server answers — the
// finish line of both cold-start benches, so lazily-deferred work (term
// lookup, posting traversal) counts toward the measured path.
func coldStartQuery(b *testing.B, sh *core.Shared) {
	b.Helper()
	hits := sh.Searcher().Search("forrest gump", 10, search.ModelMLM)
	if len(hits) == 0 {
		b.Fatal("cold-start query returned no hits")
	}
}

// BenchmarkColdStartRebuild is time-to-first-query from the v1 triple
// snapshot: parse the triples, rebuild the KG tables, the five-field
// search index and the feature catalog, then answer one query. This is
// what every restart cost before the sectioned format.
func BenchmarkColdStartRebuild(b *testing.B) {
	v1Path, _ := coldStartFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := os.Open(v1Path)
		if err != nil {
			b.Fatal(err)
		}
		st, err := rdf.ReadSnapshot(f)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		sh := core.NewShared(kg.NewGraph(st), core.Options{})
		coldStartQuery(b, sh)
	}
}

// BenchmarkColdStartMmap is time-to-first-query from the v2 sectioned
// generation snapshot: mmap, checksum + structural validation, answer
// one query. No rebuild of any derived structure — the headline number
// of the persistence layer.
func BenchmarkColdStartMmap(b *testing.B) {
	_, v2Path := coldStartFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen, err := live.OpenGeneration(v2Path)
		if err != nil {
			b.Fatal(err)
		}
		sh := core.NewSharedFromGeneration(gen, core.Options{})
		coldStartQuery(b, sh)
		b.StopTimer()
		if err := gen.Mapping().Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func benchEvaluate(b *testing.B, sh *core.Shared, g *kg.Graph) {
	eng := core.NewWithShared(sh, core.Options{})
	seed := g.Entities()[len(g.Entities())/2]
	if _, err := eng.Apply(context.Background(), core.OpAddSeed(seed)); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EvaluateCtx(ctx, core.FieldEntities|core.FieldFeatures); err != nil {
			b.Fatal(err)
		}
	}
}
