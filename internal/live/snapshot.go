package live

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pivote/internal/index"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
	"pivote/internal/snap"
)

// SectionGen holds the generation metadata: the generation ID and the
// search hyperparameters the generation was built with, so a restored
// process serves identically without any out-of-band configuration.
const SectionGen = "live.gen"

// SnapshotExt is the file extension of sectioned generation snapshots.
// The v1 varint format keeps ".snap"; the sectioned serving format uses
// its own extension so the two are never confused.
const SnapshotExt = ".pvgen"

// WriteGenerationFile atomically persists a generation: the snapshot is
// written to a temp file in the target directory and renamed into
// place, so a crash mid-write never leaves a half-written file where a
// restore would look.
func WriteGenerationFile(gen *Generation, path string) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pvgen-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = WriteGeneration(gen, tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	// CreateTemp opens 0600; published snapshots are ordinary data files.
	if err = os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteGeneration writes the complete sectioned snapshot of a frozen
// generation: metadata, dictionary, CSR store, kg tables, search index
// and feature catalog. The write is deterministic — the same generation
// always produces byte-identical output.
func WriteGeneration(gen *Generation, dst io.Writer) error {
	w := snap.NewWriter(dst)
	if err := AppendGenerationSections(gen, w); err != nil {
		return err
	}
	return w.Close()
}

// AppendGenerationSections appends the generation's sections to an open
// writer without closing it, so callers (per-shard snapshots) can append
// their own trailing sections to the same file.
func AppendGenerationSections(gen *Generation, w *snap.Writer) error {
	w.Begin(SectionGen)
	w.U64(gen.ID)
	p := gen.Searcher.Params()
	vals := make([]float64, 0, len(p.FieldWeights)+3)
	vals = append(vals, p.FieldWeights[:]...)
	vals = append(vals, p.Mu, p.K1, p.B)
	w.F64s(vals)
	if err := gen.Store().AppendSections(w); err != nil {
		return err
	}
	if err := gen.Graph.AppendSections(w); err != nil {
		return err
	}
	if err := gen.Searcher.Index().AppendSections(w); err != nil {
		return err
	}
	return gen.Catalog.AppendSections(w)
}

// OpenGeneration opens a generation snapshot. Every flat array of the
// returned generation aliases the file mapping (mmap where available),
// so the open cost is the checksum pass plus O(nodes) structural
// validation — no string materialization, no index or catalog rebuild.
// The mapping stays open for the generation's lifetime.
func OpenGeneration(path string) (*Generation, error) {
	m, err := snap.Open(path)
	if err != nil {
		return nil, err
	}
	gen, err := openGeneration(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	return gen, nil
}

// OpenGenerationBytes is OpenGeneration over an in-memory snapshot —
// the fuzz surface and the transport path.
func OpenGenerationBytes(data []byte) (*Generation, error) {
	m, err := snap.OpenBytes(data)
	if err != nil {
		return nil, err
	}
	gen, err := openGeneration(m)
	if err != nil {
		m.Close()
		return nil, err
	}
	return gen, nil
}

// OpenGenerationSections builds a generation from the sections of an
// already-open mapping. The caller owns the mapping's lifetime (the
// shard open path reads its own trailing sections from the same file
// before handing the mapping over); on success the generation aliases
// it and it must stay mapped.
func OpenGenerationSections(m *snap.Mapping) (*Generation, error) {
	return openGeneration(m)
}

func openGeneration(m *snap.Mapping) (*Generation, error) {
	c, err := m.Section(SectionGen)
	if err != nil {
		return nil, err
	}
	id := c.U64()
	vals := c.F64s()
	if err := c.Err(); err != nil {
		return nil, err
	}
	var params search.Params
	if len(vals) != len(params.FieldWeights)+3 {
		return nil, errors.Join(snap.ErrCorrupt,
			fmt.Errorf("live: snapshot: %d search params, want %d", len(vals), len(params.FieldWeights)+3))
	}
	copy(params.FieldWeights[:], vals)
	n := len(params.FieldWeights)
	params.Mu, params.K1, params.B = vals[n], vals[n+1], vals[n+2]

	st, err := rdf.OpenStoreSections(m)
	if err != nil {
		return nil, err
	}
	g, err := kg.OpenGraphSections(m, st)
	if err != nil {
		return nil, err
	}
	bound := rdf.TermID(st.Dict().Len()) + 1
	idx, err := index.OpenIndexSections(m, bound)
	if err != nil {
		return nil, err
	}
	cat, err := semfeat.OpenCatalogSections(m, g)
	if err != nil {
		return nil, err
	}
	gen := &Generation{
		ID:       id,
		Graph:    g,
		Searcher: search.NewEngineFromIndex(g, idx, params),
		Catalog:  cat,
		Features: semfeat.NewFeatureCacheFrom(g, cat, nil, id, nil),
		mapping:  m,
	}
	trackGeneration(gen)
	return gen, nil
}

// SnapshotPath names generation gen inside dir.
func SnapshotPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("gen-%016d%s", gen, SnapshotExt))
}

// FindNewestSnapshot returns the snapshot with the highest generation
// ID in dir, or "" when the directory holds none (or does not exist).
func FindNewestSnapshot(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, SnapshotExt) {
			continue
		}
		// Per-shard snapshots (gen-<id>-s<k>.pvgen) carry an ownership
		// section this opener would silently ignore; restoring one as an
		// unpartitioned generation would serve a partial result page as if
		// it were the whole graph's. Only plain gen-<id>.pvgen qualifies.
		if strings.ContainsRune(strings.TrimSuffix(name[len("gen-"):], SnapshotExt), '-') {
			continue
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return "", nil
	}
	// The zero-padded fixed-width generation number makes the
	// lexicographic maximum the newest generation.
	sort.Strings(names)
	return filepath.Join(dir, names[len(names)-1]), nil
}
