package live_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/kgtest"
	"pivote/internal/rdf"
)

// TestEngineEquivalenceAcrossSwap is the end-to-end acceptance check of
// the write path: after ingest batches and a compaction swap, a full
// interface evaluation (entities, features, heat map) through the
// live-backed shared core is byte-identical — float scores included — to
// a from-scratch build over the same triple set. The reference store
// shares the live dictionary, so TermIDs line up exactly and DeepEqual
// is a meaningful comparison.
func TestEngineEquivalenceAcrossSwap(t *testing.T) {
	fx := kgtest.Build()
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()
	opts := core.Options{TopEntities: 10, TopFeatures: 8}

	sh := core.NewShared(fx.Graph, opts)
	ls := sh.Live()

	// Ingest two batches: new films starring Tom Hanks plus a tombstone.
	filmType := fx.Store.Objects(fx.E("Forrest_Gump"), voc.Type)[0]
	starring := dict.LookupIRI("http://pivote.dev/ontology/starring")
	if starring == rdf.NoTerm {
		t.Fatal("fixture has no starring predicate")
	}
	var batch []rdf.Triple
	for i := 0; i < 3; i++ {
		f := dict.Intern(rdf.NewIRI(fmt.Sprintf("http://pivote.dev/resource/Live_Film_%d", i)))
		lbl := dict.Intern(rdf.NewLiteral(fmt.Sprintf("Live Film %d", i)))
		batch = append(batch,
			rdf.Triple{S: f, P: voc.Type, O: filmType},
			rdf.Triple{S: f, P: voc.Label, O: lbl},
			rdf.Triple{S: f, P: starring, O: fx.E("Tom_Hanks")},
		)
	}
	if _, err := ls.Ingest(batch, nil); err != nil {
		t.Fatal(err)
	}
	drop := rdf.Triple{S: fx.E("Apollo_13"), P: starring, O: fx.E("Kevin_Bacon")}
	if _, err := ls.Ingest(nil, []rdf.Triple{drop}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ls.CompactNow(); err != nil {
		t.Fatal(err)
	}

	// Reference: a from-scratch store holding exactly the view's triples.
	ref := rdf.NewStore(dict)
	ls.View().ForEachTriple(func(tr rdf.Triple) { ref.Add(tr.S, tr.P, tr.O) })
	ref.Freeze()
	refShared := core.NewShared(kg.NewGraph(ref), opts)

	ops := [][]core.Op{
		{core.OpSubmit("forrest gump")},
		{core.OpSubmit("live film"), core.OpAddSeed(fx.E("Forrest_Gump"))},
		{core.OpPivot(fx.E("Tom_Hanks"))},
	}
	for i, seq := range ops {
		liveEng := core.NewWithShared(sh, opts)
		refEng := core.NewWithShared(refShared, opts)
		gotRes, _, gotErr := liveEng.ApplyOps(context.Background(), seq, core.FieldsAll)
		wantRes, _, wantErr := refEng.ApplyOps(context.Background(), seq, core.FieldsAll)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("seq %d: err %v vs %v", i, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if !reflect.DeepEqual(gotRes.Entities, wantRes.Entities) {
			t.Fatalf("seq %d: entities diverge\nlive: %+v\nref:  %+v", i, gotRes.Entities, wantRes.Entities)
		}
		if !reflect.DeepEqual(gotRes.Features, wantRes.Features) {
			t.Fatalf("seq %d: features diverge\nlive: %+v\nref:  %+v", i, gotRes.Features, wantRes.Features)
		}
		if !reflect.DeepEqual(gotRes.Heat, wantRes.Heat) {
			t.Fatalf("seq %d: heat maps diverge", i)
		}
		if gotRes.Description != wantRes.Description {
			t.Fatalf("seq %d: descriptions diverge %q vs %q", i, gotRes.Description, wantRes.Description)
		}
	}

	// The tombstoned triple is gone from ranking inputs.
	if sh.Graph().Store().Has(drop.S, drop.P, drop.O) {
		t.Fatal("tombstoned triple survived compaction")
	}
}

// TestSessionSurvivesSwap: seeds recorded against generation 0 stay
// valid after a swap (TermIDs are stable across generations), and
// re-evaluation sees the new graph.
func TestSessionSurvivesSwap(t *testing.T) {
	fx := kgtest.Build()
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()
	opts := core.Options{TopEntities: 10, TopFeatures: 8}
	sh := core.NewShared(fx.Graph, opts)
	eng := core.NewWithShared(sh, opts)

	if _, err := eng.Apply(context.Background(), core.OpAddSeed(fx.E("Forrest_Gump"))); err != nil {
		t.Fatal(err)
	}

	starring := dict.LookupIRI("http://pivote.dev/ontology/starring")
	filmType := fx.Store.Objects(fx.E("Forrest_Gump"), voc.Type)[0]
	f := dict.Intern(rdf.NewIRI("http://pivote.dev/resource/Post_Swap_Film"))
	batch := []rdf.Triple{
		{S: f, P: voc.Type, O: filmType},
		{S: f, P: starring, O: fx.E("Tom_Hanks")},
		{S: f, P: dict.Intern(rdf.NewIRI("http://pivote.dev/ontology/director")), O: fx.E("Robert_Zemeckis")},
	}
	if _, err := sh.Live().Ingest(batch, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sh.Live().CompactNow(); err != nil {
		t.Fatal(err)
	}

	res, err := eng.EvaluateCtx(context.Background(), core.FieldsAll)
	if err != nil {
		t.Fatalf("evaluation after swap: %v", err)
	}
	found := false
	for _, r := range res.Entities {
		if r.Entity == f {
			found = true
		}
	}
	if !found {
		t.Fatalf("ingested film (shares cast+director with the seed) not recommended after swap: %+v", res.Entities)
	}
	// The old session op can still be re-applied (replay path).
	if _, err := eng.Apply(context.Background(), core.OpAddSeed(f)); err != nil {
		t.Fatalf("seeding an ingested entity: %v", err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
}
