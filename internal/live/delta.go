package live

import (
	"slices"
	"sort"

	"pivote/internal/rdf"
)

// logEntry is one pending write: a triple plus whether it is a tombstone.
// The log preserves arrival order so that add/remove sequences on the
// same triple resolve to last-writer-wins.
type logEntry struct {
	t   rdf.Triple
	del bool
}

// Delta is the immutable index over a prefix of the write log: per-node
// sorted (P, Node) edge runs for the pending adds (both directions,
// mirroring the CSR layout) plus per-node tombstone runs to subtract
// from the base. A Delta is built once under the writer mutex and then
// published inside a View; readers share it without any synchronization.
type Delta struct {
	addsOut map[rdf.TermID][]rdf.Edge
	addsIn  map[rdf.TermID][]rdf.Edge
	delsOut map[rdf.TermID][]rdf.Edge
	delsIn  map[rdf.TermID][]rdf.Edge

	// subjects is the ascending list of nodes with ≥1 pending out-add,
	// for merged full-graph iteration.
	subjects []rdf.TermID

	adds, dels int // distinct pending triples by final state
}

// emptyDelta is the shared zero delta published when the log is empty.
var emptyDelta = &Delta{}

// Pending reports the number of distinct pending triples (adds plus
// tombstones) this delta carries.
func (d *Delta) Pending() int { return d.adds + d.dels }

// foldLog collapses a log into final per-triple states: a triple added
// then removed (or vice versa) keeps its last state; duplicates collapse
// to one entry. The writer maintains this fold incrementally across
// batches (see Store.Ingest) so publishing a view costs O(pending), not
// O(log).
func foldLog(log []logEntry) map[rdf.Triple]bool {
	final := make(map[rdf.Triple]bool, len(log))
	for _, e := range log {
		final[e.t] = !e.del
	}
	return final
}

// indexDelta builds the immutable per-node sorted-run index over a
// folded final-state map.
func indexDelta(final map[rdf.Triple]bool) *Delta {
	if len(final) == 0 {
		return emptyDelta
	}
	d := &Delta{
		addsOut: map[rdf.TermID][]rdf.Edge{},
		addsIn:  map[rdf.TermID][]rdf.Edge{},
		delsOut: map[rdf.TermID][]rdf.Edge{},
		delsIn:  map[rdf.TermID][]rdf.Edge{},
	}
	for t, added := range final {
		if added {
			d.adds++
			d.addsOut[t.S] = append(d.addsOut[t.S], rdf.Edge{P: t.P, Node: t.O})
			d.addsIn[t.O] = append(d.addsIn[t.O], rdf.Edge{P: t.P, Node: t.S})
		} else {
			d.dels++
			d.delsOut[t.S] = append(d.delsOut[t.S], rdf.Edge{P: t.P, Node: t.O})
			d.delsIn[t.O] = append(d.delsIn[t.O], rdf.Edge{P: t.P, Node: t.S})
		}
	}
	for _, runs := range []map[rdf.TermID][]rdf.Edge{d.addsOut, d.addsIn, d.delsOut, d.delsIn} {
		for _, run := range runs {
			sortEdges(run)
		}
	}
	d.subjects = make([]rdf.TermID, 0, len(d.addsOut))
	for s := range d.addsOut {
		d.subjects = append(d.subjects, s)
	}
	slices.Sort(d.subjects)
	return d
}

// sortEdges orders a run by (P, Node) — the CSR adjacency order. Runs
// built from a map of final states carry no duplicates.
func sortEdges(run []rdf.Edge) {
	sort.Slice(run, func(i, j int) bool {
		if run[i].P != run[j].P {
			return run[i].P < run[j].P
		}
		return run[i].Node < run[j].Node
	})
}

// mergeRuns appends to dst the (P, Node)-sorted merge of the base run
// (already sorted and deduplicated by Freeze) with the delta add run,
// subtracting the tombstone run — the same k-way discipline as the PR 3
// posting merge, specialized to three runs. The result is byte-identical
// to the run a from-scratch Freeze of base+adds−dels would produce: adds
// already present in base deduplicate, tombstones for absent edges are
// no-ops.
func mergeRuns(dst, base, adds, dels []rdf.Edge) []rdf.Edge {
	i, j := 0, 0
	emit := func(e rdf.Edge) {
		for len(dels) > 0 && edgeLess(dels[0], e) {
			dels = dels[1:]
		}
		if len(dels) > 0 && dels[0] == e {
			return
		}
		dst = append(dst, e)
	}
	for i < len(base) && j < len(adds) {
		switch {
		case base[i] == adds[j]:
			emit(base[i])
			i++
			j++
		case edgeLess(base[i], adds[j]):
			emit(base[i])
			i++
		default:
			emit(adds[j])
			j++
		}
	}
	for ; i < len(base); i++ {
		emit(base[i])
	}
	for ; j < len(adds); j++ {
		emit(adds[j])
	}
	return dst
}

func edgeLess(a, b rdf.Edge) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	return a.Node < b.Node
}

// containsEdge reports whether the sorted run carries the edge.
func containsEdge(run []rdf.Edge, e rdf.Edge) bool {
	i := sort.Search(len(run), func(i int) bool { return !edgeLess(run[i], e) })
	return i < len(run) && run[i] == e
}
