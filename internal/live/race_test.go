package live_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/kgtest"
	"pivote/internal/rdf"
)

// TestLiveHammer is the -race stress test of the write path: concurrent
// engine readers, raw overlay readers and dictionary readers run against
// continuous ingest with both background (threshold-kicked) and forced
// compaction swaps. No read ever blocks on a write; the race detector
// proves the synchronization, and a final equivalence check proves no
// update was lost or duplicated across the swaps.
func TestLiveHammer(t *testing.T) {
	fx := kgtest.Build()
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()
	opts := core.Options{TopEntities: 8, TopFeatures: 6}

	sh := core.NewLiveShared(fx.Graph, opts) // starts the background compactor
	ls := sh.Live()

	starring := dict.LookupIRI("http://pivote.dev/ontology/starring")
	filmType := fx.Store.Objects(fx.E("Forrest_Gump"), voc.Type)[0]
	hanks := fx.E("Tom_Hanks")
	gump := fx.E("Forrest_Gump")

	const (
		readers   = 4
		batches   = 60
		batchSize = 5
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var evals atomic.Int64

	// Engine readers: full evaluations pinned per call.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eng := core.NewWithShared(sh, opts)
			if _, err := eng.Apply(context.Background(), core.OpAddSeed(gump)); err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.EvaluateCtx(context.Background(), core.FieldsAll); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				evals.Add(1)
			}
		}(r)
	}

	// Overlay readers: merged adjacency walks and membership probes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := ls.View()
			n := 0
			v.ForEachTriple(func(rdf.Triple) { n++ })
			if n < fx.Store.Len() {
				t.Errorf("overlay lost base triples: %d < %d", n, fx.Store.Len())
				return
			}
			_ = v.Subjects(starring, hanks)
			_ = v.In(hanks)
		}
	}()

	// Dictionary readers: decode every published term while ingest
	// interns new ones (exercises the lock-free chunked spine).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for id := rdf.TermID(1); int(id) <= dict.Len(); id++ {
				_ = dict.Term(id)
			}
		}
	}()

	// Forced compactions racing the threshold-kicked background ones.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := ls.CompactNow(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	// The single writer: ingest batches of brand-new films.
	expected := make([]rdf.Triple, 0, batches*batchSize*3)
	for b := 0; b < batches; b++ {
		var batch []rdf.Triple
		for i := 0; i < batchSize; i++ {
			f := dict.Intern(rdf.NewIRI(fmt.Sprintf("http://pivote.dev/resource/Hammer_Film_%d_%d", b, i)))
			lbl := dict.Intern(rdf.NewLiteral(fmt.Sprintf("Hammer Film %d %d", b, i)))
			batch = append(batch,
				rdf.Triple{S: f, P: voc.Type, O: filmType},
				rdf.Triple{S: f, P: voc.Label, O: lbl},
				rdf.Triple{S: f, P: starring, O: hanks},
			)
		}
		if _, err := ls.Ingest(batch, nil); err != nil {
			t.Fatal(err)
		}
		expected = append(expected, batch...)
	}
	// Keep the readers running until at least one full evaluation has
	// landed, so the test always exercises reads concurrent with the
	// swaps above.
	for evals.Load() == 0 {
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()

	// Fold everything and verify nothing was lost or duplicated.
	if _, _, err := ls.CompactNow(); err != nil {
		t.Fatal(err)
	}
	final := sh.Graph().Store()
	for _, tr := range expected {
		if !final.Has(tr.S, tr.P, tr.O) {
			t.Fatalf("triple %v lost across swaps", tr)
		}
	}
	ref := rdf.NewStore(dict)
	fx.Store.ForEachTriple(func(tr rdf.Triple) { ref.Add(tr.S, tr.P, tr.O) })
	for _, tr := range expected {
		ref.Add(tr.S, tr.P, tr.O)
	}
	ref.Freeze()
	if final.Len() != ref.Len() {
		t.Fatalf("final store %d triples, want %d", final.Len(), ref.Len())
	}
	refG := kg.NewGraph(ref)
	if got, want := len(sh.Graph().Entities()), len(refG.Entities()); got != want {
		t.Fatalf("entity universe %d, want %d", got, want)
	}
	if evals.Load() == 0 {
		t.Fatal("no evaluations completed under ingest")
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
}
