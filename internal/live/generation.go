// Package live is the write path of the PivotE stack: a generational
// graph layer that serves every read from an immutable generation while
// absorbing writes into an in-memory delta log.
//
// A Generation bundles the frozen read structures the rest of the system
// was built around — the CSR triple store, the entity-centric kg.Graph
// tables, the frozen term-dictionary search index, and the semantic-
// feature cache. Nothing inside a generation ever mutates, so one
// generation can serve any number of concurrent readers with the exact
// performance of the frozen-only stack.
//
// Writes (adds and tombstones) append to a log guarded by a writer mutex
// and are published as an immutable Delta — per-node sorted edge runs
// that mirror the CSR layout. A View pairs one generation with one delta
// and resolves reads by merging the base CSR run with the delta run,
// k-way style, exactly like the PR 3 posting merge. A background
// compactor materializes the view into a fresh store (reusing Freeze,
// index build and kg table construction), carries the feature cache
// forward entry-by-entry, and publishes the new generation with an
// atomic.Pointer swap — the RCU pattern: in-flight requests keep the
// *Generation they loaded, no read ever blocks on a write, and the old
// generation is reclaimed by the garbage collector once the last pinned
// reader drops it (Go's GC is the grace period).
//
// All generations of one Store share a single append-only rdf.Dictionary,
// so TermIDs are stable across swaps: session state (seeds, pinned
// features) minted against any generation remains valid in every later
// one.
package live

import (
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
	"pivote/internal/snap"
)

// Generation is one immutable graph generation: the frozen store plus
// every derived read structure, tagged with a monotonically increasing
// ID. Readers pin a generation by holding the pointer; everything
// reachable from it is safe for concurrent use and never changes.
type Generation struct {
	// ID is the generation number, starting at 0 for the seed graph and
	// incremented by every compaction swap.
	ID uint64
	// Graph is the entity-centric view (dense IsEntity/PrimaryType
	// tables) over this generation's frozen store.
	Graph *kg.Graph
	// Searcher is the keyword search engine over this generation's
	// entity universe (frozen term-dictionary index).
	Searcher *search.Engine
	// Catalog is this generation's frozen feature catalog: the dense
	// FeatureID space with flat extent/adjacency/back-off arrays that the
	// semantic-feature ranker scatters over. Built at the same point as
	// the search index (graph freeze / compaction).
	Catalog *semfeat.Catalog
	// Features is this generation's semantic-feature cache: a thin
	// serving wrapper over Catalog plus the lazy fallback maps, seeded
	// from the previous generation's surviving off-catalog entries.
	Features *semfeat.FeatureCache
	// Own restricts result emission to a shard's partition when non-nil:
	// search, expand and candidate conditioning drop entities it rejects
	// before they enter any top-k page. All frozen structures (store,
	// graph, index, catalog) still cover the full entity universe, so
	// every per-entity score is bit-identical to an unpartitioned
	// generation's and a scatter-gather merge of the per-shard pages
	// reproduces the single-process result byte for byte. Nil means the
	// generation serves everything — the single-shard degenerate case.
	Own func(rdf.TermID) bool

	// mapping backs a snapshot-opened generation: the frozen arrays
	// alias it, so it must stay mapped for the generation's lifetime.
	// Nil for generations built in memory.
	mapping *snap.Mapping
}

// Mapping returns the snapshot mapping this generation was opened from,
// or nil when it was built in memory. Diagnostics only — callers must
// not Close it while the generation is reachable.
func (gen *Generation) Mapping() *snap.Mapping { return gen.mapping }

// newGeneration builds a generation from a frozen graph. prev supplies
// the feature-cache entries to carry forward; touched is the delta's
// write set (nil means nothing to carry — a fresh cache). own, when
// non-nil, partitions the generation's serving paths (see Own).
func newGeneration(id uint64, g *kg.Graph, params *search.Params, prev *semfeat.FeatureCache, touched, own func(rdf.TermID) bool) *Generation {
	var searcher *search.Engine
	if params != nil {
		searcher = search.NewEngineWithParams(g, *params)
	} else {
		searcher = search.NewEngine(g)
	}
	catalog := semfeat.NewCatalog(g)
	var features *semfeat.FeatureCache
	if prev == nil {
		features = semfeat.NewFeatureCacheFrom(g, catalog, nil, id, nil)
	} else {
		features = semfeat.NewFeatureCacheFrom(g, catalog, prev, id, touched)
	}
	gen := &Generation{ID: id, Graph: g, Searcher: searcher, Catalog: catalog, Features: features}
	if own != nil {
		gen.ApplyPartition(own)
	}
	trackGeneration(gen)
	recordCarry(gen)
	return gen
}

// ApplyPartition installs the emission restriction on a generation that
// was built (or opened) unpartitioned. It must run before the generation
// is published to readers — it swaps the searcher for an owner-filtered
// twin sharing the same frozen index.
func (gen *Generation) ApplyPartition(own func(rdf.TermID) bool) {
	gen.Own = own
	gen.Searcher = gen.Searcher.WithOwner(own)
}

// Store returns the generation's frozen triple store.
func (gen *Generation) Store() *rdf.Store { return gen.Graph.Store() }
