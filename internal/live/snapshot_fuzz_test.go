package live_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
	"pivote/internal/live"
	"pivote/internal/snap"
)

// FuzzOpenGeneration feeds arbitrary (and mutated-valid) bytes to the
// sectioned-snapshot opener. The contract: OpenGenerationBytes either
// succeeds or returns a typed error (snap.ErrCorrupt or
// snap.ErrVersion) — never a panic. Counts are validated against the
// remaining payload before any slice is sized, so a corrupt length
// cannot force a large allocation, and a generation that does open must
// survive a real query (the structural validation actually guarantees
// the hot paths' invariants).
func FuzzOpenGeneration(f *testing.F) {
	fx := kgtest.Build()
	sh := core.NewShared(fx.Graph, core.Options{TopEntities: 5, TopFeatures: 5})
	var buf bytes.Buffer
	if err := live.WriteGeneration(sh.Generation(), &buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)

	// Truncations: inside the header, mid-section, inside the footer and
	// inside the fixed-size trailer.
	for _, cut := range []int{0, 4, 12, 16, 64, len(valid) / 2, len(valid) - 40, len(valid) - 12, len(valid) - 1} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Single-byte corruption sweep seeds: magic, version, layout marker,
	// a section length, payload bytes, a per-section checksum region, the
	// footer table and the trailing footer checksum.
	for _, mut := range []int{0, 8, 12, 20, 40, len(valid) / 3, len(valid) / 2, len(valid) - 30, len(valid) - 9, len(valid) - 1} {
		if mut >= 0 && mut < len(valid) {
			b := append([]byte(nil), valid...)
			b[mut] ^= 0xff
			f.Add(b)
		}
	}
	// A footer offset pointing past the file, and one pointing at itself.
	for _, off := range []uint64{1 << 60, uint64(len(valid))} {
		b := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint64(b[len(b)-28:], off)
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte("PVTESNAP"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		gen, err := live.OpenGenerationBytes(data)
		if err != nil {
			if !errors.Is(err, snap.ErrCorrupt) && !errors.Is(err, snap.ErrVersion) {
				t.Fatalf("untyped error %T: %v", err, err)
			}
			return
		}
		// Whatever opened must actually serve: the validation pass is the
		// only thing standing between CRC-colliding garbage and the
		// unchecked indexing in the scoring loops.
		defer gen.Mapping().Close()
		eng := core.NewWithShared(core.NewSharedFromGeneration(gen, core.Options{TopEntities: 5, TopFeatures: 5}), core.Options{TopEntities: 5, TopFeatures: 5})
		if _, _, err := eng.ApplyOps(t.Context(), []core.Op{core.OpSubmit("forrest gump")}, core.FieldsAll); err != nil {
			t.Fatalf("opened generation cannot serve: %v", err)
		}
	})
}
