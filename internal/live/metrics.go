package live

import (
	"runtime"
	"time"

	"pivote/internal/obs"
)

// Process-wide live-store metrics: every Store in the process (one per
// shard replica in an in-process cluster) records into the same
// series, so a scrape reflects the node's total write activity.
var (
	mIngestBatches = obs.Default.Counter("pivote_live_ingest_batches_total",
		"Ingest batches accepted.")
	mIngestTriples = obs.Default.Counter("pivote_live_ingest_triples_total",
		"Triples ingested (adds + tombstones).")
	mIngestSeconds = obs.Default.Histogram("pivote_live_ingest_seconds",
		"Ingest batch latency (validate + index + publish).")
	mIngestBatchSize = obs.Default.ValueHistogram("pivote_live_ingest_batch_triples",
		"Ingest batch size in triples.")
	mCompactSeconds = obs.Default.Histogram("pivote_live_compaction_seconds",
		"Compaction duration (rebuild + publish + snapshot write).")
	mSwapsTotal = obs.Default.Counter("pivote_live_swaps_total",
		"Generation swaps published (compactions + adoptions).")
	mAdoptionsTotal = obs.Default.Counter("pivote_live_adoptions_total",
		"Swaps that adopted an externally compacted generation.")
	mGeneration = obs.Default.Gauge("pivote_live_generation",
		"Most recently published generation ID.")
	mGenerationsActive = obs.Default.Gauge("pivote_live_generations_active",
		"Generations still reachable (current + pinned by readers).")
	mCacheCarried = obs.Default.Counter("pivote_live_cache_carried_total",
		"Feature-cache entries carried across swaps.")
	mCacheDropped = obs.Default.Counter("pivote_live_cache_dropped_total",
		"Feature-cache entries invalidated by swap deltas.")
)

// trackGeneration counts a generation as active until the GC proves no
// reader pins it. The finalizer fires one GC cycle after the last
// reference drops — a deliberate trade: the gauge lags collection
// slightly but requires no reference counting on the read path.
func trackGeneration(gen *Generation) {
	mGenerationsActive.Inc()
	runtime.SetFinalizer(gen, func(*Generation) { mGenerationsActive.Dec() })
}

// recordCarry publishes a new cache's carry statistics.
func recordCarry(gen *Generation) {
	if gen == nil || gen.Features == nil {
		return
	}
	c := gen.Features.Carry()
	if c.Carried > 0 {
		mCacheCarried.Add(uint64(c.Carried))
	}
	if c.Dropped > 0 {
		mCacheDropped.Add(uint64(c.Dropped))
	}
}

// liveStart returns the clock, or zero when instrumentation is off.
func liveStart() time.Time {
	if !obs.On() {
		return time.Time{}
	}
	return time.Now()
}
