package live_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
	"pivote/internal/live"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/synth"
)

// compareEvaluations runs the op sequences through both cores and
// requires byte-identical interface state — entities, features, heat
// map and description, float scores included.
func compareEvaluations(t *testing.T, label string, got, want *core.Shared, opts core.Options, ops [][]core.Op) {
	t.Helper()
	for i, seq := range ops {
		gotEng := core.NewWithShared(got, opts)
		wantEng := core.NewWithShared(want, opts)
		gotRes, _, gotErr := gotEng.ApplyOps(context.Background(), seq, core.FieldsAll)
		wantRes, _, wantErr := wantEng.ApplyOps(context.Background(), seq, core.FieldsAll)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s seq %d: err %v vs %v", label, i, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if !reflect.DeepEqual(gotRes.Entities, wantRes.Entities) {
			t.Fatalf("%s seq %d: entities diverge\nsnap: %+v\nmem:  %+v", label, i, gotRes.Entities, wantRes.Entities)
		}
		if !reflect.DeepEqual(gotRes.Features, wantRes.Features) {
			t.Fatalf("%s seq %d: features diverge\nsnap: %+v\nmem:  %+v", label, i, gotRes.Features, wantRes.Features)
		}
		if !reflect.DeepEqual(gotRes.Heat, wantRes.Heat) {
			t.Fatalf("%s seq %d: heat maps diverge", label, i)
		}
		if gotRes.Description != wantRes.Description {
			t.Fatalf("%s seq %d: descriptions diverge %q vs %q", label, i, gotRes.Description, wantRes.Description)
		}
	}
}

// TestSnapshotEquivalence is the acceptance check of the sectioned
// snapshot: a generation opened from its snapshot serves byte-identical
// results — search, expand, semantic features, heat map — to the
// in-memory generation it was written from, including after an ingest
// and compaction swap produced that generation.
func TestSnapshotEquivalence(t *testing.T) {
	fx := kgtest.Build()
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()
	opts := core.Options{TopEntities: 10, TopFeatures: 8}

	sh := core.NewShared(fx.Graph, opts)
	ls := sh.Live()

	// Make the persisted generation a compacted one (ID 1), so the
	// snapshot path covers post-ingest state, not just the seed build.
	filmType := fx.Store.Objects(fx.E("Forrest_Gump"), voc.Type)[0]
	starring := dict.LookupIRI("http://pivote.dev/ontology/starring")
	var batch []rdf.Triple
	for i := 0; i < 3; i++ {
		f := dict.Intern(rdf.NewIRI(fmt.Sprintf("http://pivote.dev/resource/Snap_Film_%d", i)))
		lbl := dict.Intern(rdf.NewLiteral(fmt.Sprintf("Snap Film %d", i)))
		batch = append(batch,
			rdf.Triple{S: f, P: voc.Type, O: filmType},
			rdf.Triple{S: f, P: voc.Label, O: lbl},
			rdf.Triple{S: f, P: starring, O: fx.E("Tom_Hanks")},
		)
	}
	if _, err := ls.Ingest(batch, nil); err != nil {
		t.Fatal(err)
	}
	gen, swapped, err := ls.CompactNow()
	if err != nil || !swapped {
		t.Fatalf("compact: swapped=%v err=%v", swapped, err)
	}

	var buf bytes.Buffer
	if err := live.WriteGeneration(gen, &buf); err != nil {
		t.Fatal(err)
	}
	opened, err := live.OpenGenerationBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if opened.ID != gen.ID {
		t.Fatalf("generation ID %d, want %d", opened.ID, gen.ID)
	}
	snapShared := core.NewSharedFromGeneration(opened, opts)

	ops := [][]core.Op{
		{core.OpSubmit("forrest gump")},
		{core.OpSubmit("snap film"), core.OpAddSeed(fx.E("Forrest_Gump"))},
		{core.OpPivot(fx.E("Tom_Hanks"))},
		{core.OpLookup(fx.E("Apollo_13"))},
	}
	compareEvaluations(t, "fixture", snapShared, sh, opts, ops)

	// The opened generation accepts new ingest: its dictionary grows
	// past the mapped base region and the next compaction works.
	snapLS := snapShared.Live()
	d2 := opened.Graph.Dict()
	nf := d2.Intern(rdf.NewIRI("http://pivote.dev/resource/Post_Restore_Film"))
	post := []rdf.Triple{
		{S: nf, P: voc.Type, O: filmType},
		{S: nf, P: starring, O: fx.E("Tom_Hanks")},
	}
	if _, err := snapLS.Ingest(post, nil); err != nil {
		t.Fatal(err)
	}
	gen2, swapped, err := snapLS.CompactNow()
	if err != nil || !swapped {
		t.Fatalf("post-restore compact: swapped=%v err=%v", swapped, err)
	}
	if gen2.ID != opened.ID+1 {
		t.Fatalf("post-restore generation ID %d, want %d", gen2.ID, opened.ID+1)
	}
	if !gen2.Graph.Store().Has(nf, starring, fx.E("Tom_Hanks")) {
		t.Fatal("post-restore ingest lost")
	}
}

// TestSnapshotEquivalenceSweep covers the option/seed matrix: different
// synthetic graphs and search hyperparameters must all round-trip to
// byte-identical rankings.
func TestSnapshotEquivalenceSweep(t *testing.T) {
	custom := search.DefaultParams()
	custom.Mu = 250
	custom.FieldWeights[0] = 0.6
	sweeps := []struct {
		name   string
		scale  int
		seed   int64
		params *search.Params
	}{
		{"scale40-seed1", 40, 1, nil},
		{"scale60-seed7", 60, 7, nil},
		{"scale40-custom-params", 40, 3, &custom},
	}
	for _, sw := range sweeps {
		t.Run(sw.name, func(t *testing.T) {
			cfg := synth.Scaled(sw.scale)
			cfg.Seed = sw.seed
			g := synth.Generate(cfg).Graph
			opts := core.Options{TopEntities: 12, TopFeatures: 10, SearchParams: sw.params}
			mem := core.NewShared(g, opts)

			var buf bytes.Buffer
			if err := live.WriteGeneration(mem.Generation(), &buf); err != nil {
				t.Fatal(err)
			}
			opened, err := live.OpenGenerationBytes(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			// Deliberately leave opts.SearchParams unset on the restore
			// side for the custom sweep: the snapshot itself carries the
			// hyperparameters, so the restored engine must match anyway.
			snap := core.NewSharedFromGeneration(opened, core.Options{TopEntities: 12, TopFeatures: 10})

			hanks := g.EntityByName("Tom_Hanks")
			ops := [][]core.Op{
				{core.OpSubmit("forrest gump")},
				{core.OpSubmit("tom hanks"), core.OpAddSeed(g.EntityByName("Forrest_Gump"))},
				{core.OpPivot(hanks)},
			}
			compareEvaluations(t, sw.name, snap, mem, opts, ops)
		})
	}
}

// TestSnapshotDeterministic: the same generation serializes to the same
// bytes, and a write→open→write cycle is a fixed point — the foundation
// of the byte-identical equivalence claims.
func TestSnapshotDeterministic(t *testing.T) {
	fx := kgtest.Build()
	opts := core.Options{TopEntities: 8, TopFeatures: 6}
	sh := core.NewShared(fx.Graph, opts)
	gen := sh.Generation()

	var a, b bytes.Buffer
	if err := live.WriteGeneration(gen, &a); err != nil {
		t.Fatal(err)
	}
	if err := live.WriteGeneration(gen, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of one generation differ")
	}
	opened, err := live.OpenGenerationBytes(a.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := live.WriteGeneration(opened, &c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("write→open→write is not a fixed point")
	}
}

// TestSnapshotDirPublication: a store configured with SnapshotDir
// persists every compaction swap, FindNewestSnapshot locates the
// latest, and OpenGeneration serves it from an mmapped file.
func TestSnapshotDirPublication(t *testing.T) {
	dir := t.TempDir()
	fx := kgtest.Build()
	dict := fx.Store.Dict()
	voc := fx.Graph.Voc()
	ls := live.NewStore(fx.Graph, live.Config{SnapshotDir: dir})

	filmType := fx.Store.Objects(fx.E("Forrest_Gump"), voc.Type)[0]
	for round := 0; round < 2; round++ {
		f := dict.Intern(rdf.NewIRI(fmt.Sprintf("http://pivote.dev/resource/Dir_Film_%d", round)))
		if _, err := ls.Ingest([]rdf.Triple{{S: f, P: voc.Type, O: filmType}}, nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ls.CompactNow(); err != nil {
			t.Fatal(err)
		}
		path, err := ls.LastSnapshot()
		if err != nil {
			t.Fatalf("round %d: snapshot publication failed: %v", round, err)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("round %d: published snapshot missing: %v", round, err)
		}
	}

	newest, err := live.FindNewestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := live.SnapshotPath(dir, 2); newest != want {
		t.Fatalf("newest = %q, want %q", newest, want)
	}
	opened, err := live.OpenGeneration(newest)
	if err != nil {
		t.Fatal(err)
	}
	if opened.ID != 2 {
		t.Fatalf("restored generation ID %d, want 2", opened.ID)
	}
	if m := opened.Mapping(); m == nil {
		t.Fatal("file-opened generation has no mapping")
	}
	// Empty and absent directories are "no snapshot", not an error.
	if p, err := live.FindNewestSnapshot(filepath.Join(dir, "missing")); err != nil || p != "" {
		t.Fatalf("missing dir: %q, %v", p, err)
	}
}
