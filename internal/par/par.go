// Package par is a minimal fork-join helper for the scoring hot paths:
// data-parallel loops over index ranges with no channels, no allocation
// per item, and a grain-size guard so small inputs stay on the calling
// goroutine.
package par

import (
	"runtime"
	"sync"
)

// For splits [0, n) into contiguous chunks and runs fn(lo, hi) on up to
// GOMAXPROCS goroutines. When n < grain the loop runs inline — the
// fork-join overhead (~µs) would dominate. fn must only touch state
// belonging to its own index range; results are then deterministic
// regardless of scheduling.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if n < grain || workers <= 1 {
		fn(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks < workers {
		workers = chunks
	}
	var wg sync.WaitGroup
	step := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
