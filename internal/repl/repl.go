// Package repl implements the terminal front-end of PivotE: a
// line-oriented command loop over the core engine that mirrors every
// interaction of the web interface. It exists as a package (rather than
// living inside cmd/pivote-repl) so the whole surface is unit-testable
// with piped input.
package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"pivote/internal/bgp"
	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/rdf"
	"pivote/internal/semfeat"
)

const helpText = `commands:
  search <keywords>      submit a keyword query
  seed <entity>          add an example entity (local name, e.g. Forrest_Gump)
  unseed <entity>        remove an example entity
  feature <A:p>          pin a semantic feature condition (e.g. Tom_Hanks:starring)
  unfeature <A:p>        unpin a condition
  pivot <entity>         switch the search domain through an entity
  profile <entity>       show an entity profile (the presentation area)
  show                   re-render the current interface state
  heat                   render the correlation heat map
  path                   render the exploratory path
  timeline               list the query history
  revisit <step>         restore a historical query
  typeview <Type>        show the coupled-type view of a type (e.g. Film)
  sparql <query>         run a basic-graph-pattern query, e.g.
                         sparql SELECT ?f WHERE { ?f starring Tom_Hanks }
  save <path>            save the session (timeline + query) as JSON
  load <path>            restore a saved session
  help                   this text
  quit                   exit`

// Run drives the engine with commands from in, writing renderings to
// out. Every mutating command goes through the op protocol
// (Engine.Apply); the repl is just a line-oriented op encoder. It
// returns when in is exhausted or the quit command arrives.
func Run(g *kg.Graph, eng *core.Engine, in io.Reader, out io.Writer) error {
	ctx := context.Background()
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 4096), 1024*1024)
	fmt.Fprintln(out, "PivotE explorer — type 'help' for commands")
	var last *core.Result
	render := func(res *core.Result) {
		last = res
		fmt.Fprint(out, res.RenderASCII())
	}
	apply := func(op core.Op) {
		res, err := eng.Apply(ctx, op)
		if err != nil {
			fmt.Fprintf(out, "%v\n", err)
			return
		}
		render(res)
	}
	for {
		fmt.Fprint(out, "pivote> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		cmd, arg := line, ""
		if i := strings.IndexByte(line, ' '); i >= 0 {
			cmd, arg = line[:i], strings.TrimSpace(line[i+1:])
		}
		switch cmd {
		case "quit", "exit":
			fmt.Fprintln(out, "bye")
			return nil
		case "help":
			fmt.Fprintln(out, helpText)
		case "search":
			apply(core.OpSubmit(arg))
		case "seed", "unseed", "pivot", "profile":
			id := g.EntityByName(arg)
			if id == rdf.NoTerm {
				fmt.Fprintf(out, "unknown entity %q\n", arg)
				continue
			}
			switch cmd {
			case "seed":
				apply(core.OpAddSeed(id))
			case "unseed":
				apply(core.OpRemoveSeed(id))
			case "pivot":
				apply(core.OpPivot(id))
			case "profile":
				fmt.Fprint(out, eng.Lookup(id).Render())
			}
		case "feature", "unfeature":
			f, err := semfeat.Parse(g, arg)
			if err != nil {
				fmt.Fprintf(out, "%v\n", err)
				continue
			}
			if cmd == "feature" {
				apply(core.OpAddFeature(f))
			} else {
				apply(core.OpRemoveFeature(f))
			}
		case "show":
			render(eng.Evaluate())
		case "heat":
			if last == nil || last.Heat == nil || len(last.Heat.Features) == 0 {
				fmt.Fprintln(out, "no heat map yet — run a query first")
				continue
			}
			fmt.Fprint(out, last.Heat.ASCII())
		case "path":
			fmt.Fprint(out, eng.Session().PathASCII())
		case "timeline":
			for _, a := range eng.Session().Timeline() {
				fmt.Fprintf(out, "[%d] %s\n", a.Step, a.Label)
			}
		case "revisit":
			step, err := strconv.Atoi(arg)
			if err != nil {
				fmt.Fprintf(out, "revisit needs a step number, got %q\n", arg)
				continue
			}
			apply(core.OpRevisit(step))
		case "typeview":
			t := g.Dict().LookupIRI("http://pivote.dev/ontology/class/" + arg)
			if t == rdf.NoTerm {
				t = g.Dict().LookupIRI(kg.ResourceIRI(arg))
			}
			if t == rdf.NoTerm {
				t = g.Dict().LookupIRI(arg)
			}
			if t == rdf.NoTerm || len(g.TypeMembers(t)) == 0 {
				fmt.Fprintf(out, "unknown type %q\n", arg)
				continue
			}
			fmt.Fprint(out, g.RenderTypeView(t, 500, 15))
		case "sparql":
			q, err := bgp.Parse(g, arg)
			if err != nil {
				fmt.Fprintf(out, "%v\n", err)
				continue
			}
			rows, err := bgp.Execute(g.Store(), q)
			if err != nil {
				fmt.Fprintf(out, "%v\n", err)
				continue
			}
			printBindings(out, g, q, rows)
		case "save":
			raw, err := eng.SaveSession()
			if err != nil {
				fmt.Fprintf(out, "%v\n", err)
				continue
			}
			if err := os.WriteFile(arg, raw, 0o644); err != nil {
				fmt.Fprintf(out, "%v\n", err)
				continue
			}
			fmt.Fprintf(out, "saved %d actions to %s\n", eng.Session().Len(), arg)
		case "load":
			raw, err := os.ReadFile(arg)
			if err != nil {
				fmt.Fprintf(out, "%v\n", err)
				continue
			}
			res, err := eng.LoadSession(raw)
			if err != nil {
				fmt.Fprintf(out, "%v\n", err)
				continue
			}
			fmt.Fprintf(out, "restored %d actions\n", eng.Session().Len())
			render(res)
		default:
			fmt.Fprintf(out, "unknown command %q — try 'help'\n", cmd)
		}
	}
}

// printBindings renders BGP results as an aligned table of decoded terms.
func printBindings(out io.Writer, g *kg.Graph, q bgp.Query, rows []bgp.Binding) {
	vars := q.Select
	if len(vars) == 0 && len(rows) > 0 {
		for v := range rows[0] {
			vars = append(vars, v)
		}
		sort.Strings(vars)
	}
	for _, v := range vars {
		fmt.Fprintf(out, "?%-24s", v)
	}
	fmt.Fprintln(out)
	for _, row := range rows {
		for _, v := range vars {
			fmt.Fprintf(out, "%-25s", g.Name(row[v]))
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "(%d rows)\n", len(rows))
}
