package repl

import (
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
)

func run(t *testing.T, script string) string {
	t.Helper()
	f := kgtest.Build()
	eng := core.New(f.Graph, core.Options{TopEntities: 8, TopFeatures: 6})
	var out strings.Builder
	if err := Run(f.Graph, eng, strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestSearchAndSeed(t *testing.T) {
	out := run(t, "search forrest gump\nseed Forrest_Gump\nquit\n")
	for _, want := range []string{"Forrest Gump", "entities (c)", "semantic features (e)", "bye"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestFeatureCondition(t *testing.T) {
	out := run(t, "feature Tom_Hanks:starring\nquit\n")
	if !strings.Contains(out, "Tom_Hanks:starring") {
		t.Fatalf("feature not echoed:\n%s", out)
	}
	if !strings.Contains(out, "Apollo 13") {
		t.Fatal("condition results missing a Hanks film")
	}
}

func TestProfile(t *testing.T) {
	out := run(t, "profile Forrest_Gump\nquit\n")
	if !strings.Contains(out, "142 minutes") {
		t.Fatalf("profile missing attribute:\n%s", out)
	}
}

func TestPivotAndPath(t *testing.T) {
	out := run(t, "search forrest gump\npivot Tom_Hanks\npath\nquit\n")
	if !strings.Contains(out, "pivot → Tom Hanks (Actor)") {
		t.Fatalf("pivot missing:\n%s", out)
	}
	if !strings.Contains(out, "exploratory path") {
		t.Fatal("path rendering missing")
	}
}

func TestTimelineAndRevisit(t *testing.T) {
	out := run(t, "search gump\nsearch apollo\ntimeline\nrevisit 1\nquit\n")
	if !strings.Contains(out, `[1] query "gump"`) {
		t.Fatalf("timeline missing:\n%s", out)
	}
	if !strings.Contains(out, `keywords="gump"`) {
		t.Fatal("revisit did not restore query 1")
	}
}

func TestHeat(t *testing.T) {
	out := run(t, "seed Forrest_Gump\nheat\nquit\n")
	if !strings.Contains(out, "levels: 0..6") {
		t.Fatalf("heat map missing:\n%s", out)
	}
	out = run(t, "heat\nquit\n")
	if !strings.Contains(out, "no heat map yet") {
		t.Fatal("empty heat not handled")
	}
}

func TestTypeView(t *testing.T) {
	out := run(t, "typeview Film\nquit\n")
	if !strings.Contains(out, "starring") {
		t.Fatalf("type view missing:\n%s", out)
	}
	out = run(t, "typeview Nonsense\nquit\n")
	if !strings.Contains(out, "unknown type") {
		t.Fatal("unknown type not reported")
	}
}

func TestErrorsAndUnknowns(t *testing.T) {
	out := run(t, "seed Nope\nfeature bogus\nrevisit abc\nrevisit 99\nfrobnicate\nhelp\nquit\n")
	for _, want := range []string{
		"unknown entity", "not in Anchor:predicate form", "needs a step number",
		"no step 99", "unknown command", "commands:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEOFTerminates(t *testing.T) {
	out := run(t, "search gump\n") // no quit; EOF ends the loop
	if !strings.Contains(out, "pivote>") {
		t.Fatal("prompt missing")
	}
}

func TestSparqlCommand(t *testing.T) {
	out := run(t, "sparql SELECT ?f WHERE { ?f starring Tom_Hanks . ?f director Robert_Zemeckis }\nquit\n")
	for _, want := range []string{"?f", "Forrest Gump", "Cast Away", "(2 rows)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sparql output missing %q:\n%s", want, out)
		}
	}
	out = run(t, "sparql not a query\nquit\n")
	if !strings.Contains(out, "bgp:") {
		t.Fatal("sparql error not reported")
	}
}

func TestSaveLoadCommands(t *testing.T) {
	path := t.TempDir() + "/session.json"
	out := run(t, "search forrest gump\nseed Forrest_Gump\nsave "+path+"\nquit\n")
	if !strings.Contains(out, "saved 2 actions") {
		t.Fatalf("save missing:\n%s", out)
	}
	out = run(t, "load "+path+"\ntimeline\nquit\n")
	if !strings.Contains(out, "restored 2 actions") || !strings.Contains(out, `query "forrest gump"`) {
		t.Fatalf("load missing:\n%s", out)
	}
	out = run(t, "load /nonexistent/nope.json\nquit\n")
	if !strings.Contains(out, "no such file") {
		t.Fatal("load error not reported")
	}
}
