package kg

import (
	"fmt"
	"sort"
	"strings"

	"pivote/internal/rdf"
)

// NeighborEdge is one edge of an extracted neighbourhood subgraph.
type NeighborEdge struct {
	From, To rdf.TermID
	Pred     rdf.TermID
}

// Neighborhood is the hop-bounded subgraph around a seed entity that
// Figure 1-a of the paper draws.
type Neighborhood struct {
	Seed  rdf.TermID
	Nodes []rdf.TermID // sorted, includes Seed
	Edges []NeighborEdge
}

// NeighborhoodOf extracts the subgraph within `hops` hops of seed over
// semantic predicates, visiting at most maxNodes nodes (breadth-first, so
// closer entities win). maxNodes <= 0 means unbounded.
func (g *Graph) NeighborhoodOf(seed rdf.TermID, hops, maxNodes int) Neighborhood {
	nb := Neighborhood{Seed: seed}
	visited := map[rdf.TermID]bool{seed: true}
	frontier := []rdf.TermID{seed}
	for depth := 0; depth < hops; depth++ {
		var next []rdf.TermID
		for _, e := range frontier {
			for _, edge := range g.store.Out(e) {
				if g.voc.IsMeta(edge.P) || !g.IsEntity(edge.Node) {
					continue
				}
				nb.Edges = append(nb.Edges, NeighborEdge{From: e, To: edge.Node, Pred: edge.P})
				if !visited[edge.Node] && (maxNodes <= 0 || len(visited) < maxNodes) {
					visited[edge.Node] = true
					next = append(next, edge.Node)
				}
			}
			for _, edge := range g.store.In(e) {
				if g.voc.IsMeta(edge.P) || !g.IsEntity(edge.Node) {
					continue
				}
				nb.Edges = append(nb.Edges, NeighborEdge{From: edge.Node, To: e, Pred: edge.P})
				if !visited[edge.Node] && (maxNodes <= 0 || len(visited) < maxNodes) {
					visited[edge.Node] = true
					next = append(next, edge.Node)
				}
			}
		}
		frontier = next
	}
	// Keep only edges whose two endpoints were admitted, then dedup.
	seenEdge := map[NeighborEdge]bool{}
	kept := nb.Edges[:0]
	for _, e := range nb.Edges {
		if visited[e.From] && visited[e.To] && !seenEdge[e] {
			seenEdge[e] = true
			kept = append(kept, e)
		}
	}
	nb.Edges = kept
	nb.Nodes = sortedIDs(visited)
	return nb
}

// DOT renders the neighbourhood in Graphviz DOT format, with the seed
// highlighted — the reproduction artifact for Figure 1-a.
func (g *Graph) DOT(nb Neighborhood) string {
	var b strings.Builder
	b.WriteString("digraph neighborhood {\n  rankdir=LR;\n  node [shape=box, style=rounded];\n")
	fmt.Fprintf(&b, "  %q [style=\"rounded,filled\", fillcolor=gold];\n", g.Name(nb.Seed))
	for _, n := range nb.Nodes {
		if n == nb.Seed {
			continue
		}
		fmt.Fprintf(&b, "  %q;\n", g.Name(n))
	}
	edges := append([]NeighborEdge(nil), nb.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Pred < edges[j].Pred
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n",
			g.Name(e.From), g.Name(e.To), g.Dict().Term(e.Pred).LocalName())
	}
	b.WriteString("}\n")
	return b.String()
}
