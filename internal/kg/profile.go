package kg

import (
	"fmt"
	"strings"

	"pivote/internal/rdf"
)

// Profile is the entity presentation area content (Fig. 3-d): everything
// PivotE shows when the user clicks an entity.
type Profile struct {
	ID         rdf.TermID
	IRI        string
	Name       string
	Abstract   string
	Types      []string
	Categories []string
	Facts      []Fact // outgoing semantic relations, entity objects
	Literals   []Fact // outgoing attributes (predicate → literal)
	InvertedIn []Fact // incoming semantic relations (subject → predicate)
}

// Fact is one displayed statement about the entity.
type Fact struct {
	Predicate string
	Value     string
}

// ProfileOf assembles the presentation-area content for e. maxFacts
// bounds each fact list (<=0 means unbounded).
func (g *Graph) ProfileOf(e rdf.TermID, maxFacts int) Profile {
	p := Profile{
		ID:       e,
		IRI:      g.Dict().Term(e).Value,
		Name:     g.Name(e),
		Abstract: g.Abstract(e),
	}
	for _, t := range g.TypesOf(e) {
		p.Types = append(p.Types, g.Name(t))
	}
	for _, c := range g.CategoriesOf(e) {
		p.Categories = append(p.Categories, g.Name(c))
	}
	capped := func(facts []Fact) []Fact {
		if maxFacts > 0 && len(facts) > maxFacts {
			return facts[:maxFacts]
		}
		return facts
	}
	for _, edge := range g.store.Out(e) {
		if g.voc.IsMeta(edge.P) {
			continue
		}
		t := g.Dict().Term(edge.Node)
		f := Fact{Predicate: g.Dict().Term(edge.P).LocalName()}
		if t.IsLiteral() {
			f.Value = t.Value
			p.Literals = append(p.Literals, f)
		} else {
			f.Value = g.Name(edge.Node)
			p.Facts = append(p.Facts, f)
		}
	}
	for _, edge := range g.store.In(e) {
		if g.voc.IsMeta(edge.P) {
			continue
		}
		p.InvertedIn = append(p.InvertedIn, Fact{
			Predicate: g.Dict().Term(edge.P).LocalName(),
			Value:     g.Name(edge.Node),
		})
	}
	p.Facts = capped(p.Facts)
	p.Literals = capped(p.Literals)
	p.InvertedIn = capped(p.InvertedIn)
	return p
}

// Render prints the profile as the text block shown in the presentation
// area.
func (p Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  <%s>\n", p.Name, p.IRI)
	if p.Abstract != "" {
		fmt.Fprintf(&b, "  %s\n", p.Abstract)
	}
	if len(p.Types) > 0 {
		fmt.Fprintf(&b, "  types: %s\n", strings.Join(p.Types, ", "))
	}
	if len(p.Categories) > 0 {
		fmt.Fprintf(&b, "  categories: %s\n", strings.Join(p.Categories, ", "))
	}
	for _, f := range p.Literals {
		fmt.Fprintf(&b, "  %s: %s\n", f.Predicate, f.Value)
	}
	for _, f := range p.Facts {
		fmt.Fprintf(&b, "  %s → %s\n", f.Predicate, f.Value)
	}
	for _, f := range p.InvertedIn {
		fmt.Fprintf(&b, "  %s ← %s\n", f.Predicate, f.Value)
	}
	return b.String()
}
