// Package kg layers a knowledge-graph view over the raw RDF store: it
// knows which predicates are metadata (types, labels, categories,
// redirects) and which are semantic relations, and exposes the
// entity-centric accessors PivotE is built from — labels, attributes,
// categories, similar-entity names, related entities (the five fields of
// Table 1 in the paper), 2-hop neighbourhoods (Fig. 1-a) and the coupled
// type view (Fig. 1-b).
package kg

import (
	"pivote/internal/rdf"
)

// Well-known predicate IRIs. The synthetic generator emits exactly these,
// and DBpedia dumps use them too, so a real DBpedia slice loads unchanged.
const (
	IRIType          = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	IRILabel         = "http://www.w3.org/2000/01/rdf-schema#label"
	IRISubject       = "http://purl.org/dc/terms/subject"
	IRIRedirects     = "http://dbpedia.org/ontology/wikiPageRedirects"
	IRIDisambiguates = "http://dbpedia.org/ontology/wikiPageDisambiguates"
	IRIAbstract      = "http://dbpedia.org/ontology/abstract"
)

// Vocab holds the interned IDs of the metadata predicates. Predicates not
// listed here are semantic relations and are eligible to form semantic
// features.
type Vocab struct {
	Type          rdf.TermID
	Label         rdf.TermID
	Subject       rdf.TermID
	Redirects     rdf.TermID
	Disambiguates rdf.TermID
	Abstract      rdf.TermID
}

// InternVocab interns the well-known predicates into d and returns the
// vocabulary. It is safe to call on a dictionary that already contains
// them.
func InternVocab(d *rdf.Dictionary) Vocab {
	return Vocab{
		Type:          d.Intern(rdf.NewIRI(IRIType)),
		Label:         d.Intern(rdf.NewIRI(IRILabel)),
		Subject:       d.Intern(rdf.NewIRI(IRISubject)),
		Redirects:     d.Intern(rdf.NewIRI(IRIRedirects)),
		Disambiguates: d.Intern(rdf.NewIRI(IRIDisambiguates)),
		Abstract:      d.Intern(rdf.NewIRI(IRIAbstract)),
	}
}

// IsMeta reports whether p is a metadata predicate (excluded from
// semantic features and from the related-entities field).
func (v Vocab) IsMeta(p rdf.TermID) bool {
	switch p {
	case v.Type, v.Label, v.Subject, v.Redirects, v.Disambiguates, v.Abstract:
		return true
	}
	return false
}
