package kg_test

import (
	"sort"
	"strings"
	"testing"

	"pivote/internal/kg"
	"pivote/internal/kgtest"
	"pivote/internal/rdf"
)

func TestEntityUniverse(t *testing.T) {
	f := kgtest.Build()
	g := f.Graph
	if !g.IsEntity(f.E("Forrest_Gump")) {
		t.Fatal("Forrest_Gump not recognized as entity")
	}
	if !g.IsEntity(f.E("Tom_Hanks")) {
		t.Fatal("Tom_Hanks not recognized as entity")
	}
	// Category nodes have no rdf:type in the fixture, so they are not
	// entities.
	if g.IsEntity(f.E("American_films")) {
		t.Fatal("category node wrongly classified as entity")
	}
	ents := g.Entities()
	if !sort.SliceIsSorted(ents, func(i, j int) bool { return ents[i] < ents[j] }) {
		t.Fatal("Entities() not sorted")
	}
}

func TestEntityByName(t *testing.T) {
	f := kgtest.Build()
	g := f.Graph
	if got := g.EntityByName("Forrest_Gump"); got != f.E("Forrest_Gump") {
		t.Fatalf("EntityByName(Forrest_Gump) = %d, want %d", got, f.E("Forrest_Gump"))
	}
	if got := g.EntityByName(kg.ResourceIRI("Apollo_13")); got != f.E("Apollo_13") {
		t.Fatal("EntityByName by full IRI failed")
	}
	if got := g.EntityByName("Nonexistent_Entity"); got != rdf.NoTerm {
		t.Fatalf("EntityByName(missing) = %d, want NoTerm", got)
	}
}

func TestNameAndLabels(t *testing.T) {
	f := kgtest.Build()
	g := f.Graph
	if got := g.Name(f.E("Forrest_Gump")); got != "Forrest Gump" {
		t.Fatalf("Name = %q, want %q", got, "Forrest Gump")
	}
	labels := g.Labels(f.E("Forrest_Gump"))
	if len(labels) != 1 || labels[0] != "Forrest Gump" {
		t.Fatalf("Labels = %v", labels)
	}
	// A node with no label falls back to the IRI local name.
	if got := g.Name(f.E("p:starring")); got != "starring" {
		t.Fatalf("Name of unlabeled predicate = %q, want starring", got)
	}
}

func TestTypesAndPrimaryType(t *testing.T) {
	f := kgtest.Build()
	g := f.Graph
	types := g.TypesOf(f.E("Tom_Hanks"))
	if len(types) != 2 {
		t.Fatalf("Tom_Hanks has %d types, want 2 (Actor, Person)", len(types))
	}
	// Actor is more specific than Person (fewer members).
	if got := g.PrimaryType(f.E("Tom_Hanks")); got != f.E("Actor") {
		t.Fatalf("PrimaryType(Tom_Hanks) = %s, want Actor", g.Name(got))
	}
	if got := g.PrimaryType(f.E("Forrest_Gump")); got != f.E("Film") {
		t.Fatalf("PrimaryType(Forrest_Gump) = %s, want Film", g.Name(got))
	}
}

func TestCategories(t *testing.T) {
	f := kgtest.Build()
	g := f.Graph
	cats := g.CategoriesOf(f.E("Forrest_Gump"))
	if len(cats) != 3 {
		t.Fatalf("Forrest_Gump has %d categories, want 3", len(cats))
	}
	members := g.CategoryMembers(f.E("American_films"))
	if len(members) != 8 {
		t.Fatalf("American_films has %d members, want 8", len(members))
	}
	zem := g.CategoryMembers(f.E("Films_directed_by_Robert_Zemeckis"))
	if len(zem) != 2 {
		t.Fatalf("Zemeckis category has %d members, want 2", len(zem))
	}
	// The dense size table agrees with the materialized member lists.
	for _, c := range g.Categories() {
		if g.CategorySize(c) != len(g.CategoryMembers(c)) {
			t.Fatalf("CategorySize(%d) = %d, want %d", c, g.CategorySize(c), len(g.CategoryMembers(c)))
		}
	}
	if g.CategorySize(f.E("Tom_Hanks")) != 0 {
		t.Fatal("non-category must have size 0")
	}
	if g.CategorySize(rdf.TermID(1<<25)) != 0 {
		t.Fatal("out-of-range id must have size 0")
	}
}

func TestTable1FiveFieldSources(t *testing.T) {
	// The raw material of Table 1 must be retrievable through the Graph.
	f := kgtest.Build()
	g := f.Graph
	gump := f.E("Forrest_Gump")

	attrs := g.Attributes(gump)
	joined := strings.Join(attrs, "|")
	if !strings.Contains(joined, "142 minutes") || !strings.Contains(joined, "55 million dollars") {
		t.Fatalf("attributes = %v, want runtime and budget literals", attrs)
	}

	similar := g.SimilarNames(gump)
	sort.Strings(similar)
	if len(similar) != 2 || similar[0] != "Geenbow" || similar[1] != "Gumpian" {
		t.Fatalf("similar names = %v, want [Geenbow Gumpian]", similar)
	}

	related := g.Names(g.Related(gump))
	joinedRel := strings.Join(related, "|")
	for _, want := range []string{"Tom Hanks", "Robert Zemeckis", "Gary Sinise", "Robin Wright", "Winston Groom"} {
		if !strings.Contains(joinedRel, want) {
			t.Fatalf("related = %v, missing %q", related, want)
		}
	}
	// Metadata neighbours (categories, redirect sources) are excluded.
	if strings.Contains(joinedRel, "Geenbow") || strings.Contains(joinedRel, "American films") {
		t.Fatalf("related = %v leaked metadata neighbours", related)
	}
}

func TestAbstract(t *testing.T) {
	f := kgtest.Build()
	if got := f.Graph.Abstract(f.E("Forrest_Gump")); !strings.Contains(got, "1994 American film") {
		t.Fatalf("Abstract = %q", got)
	}
	if got := f.Graph.Abstract(f.E("Apollo_13")); got != "" {
		t.Fatalf("Abstract of entity without abstract = %q, want empty", got)
	}
}

func TestProfileOf(t *testing.T) {
	f := kgtest.Build()
	p := f.Graph.ProfileOf(f.E("Forrest_Gump"), 0)
	if p.Name != "Forrest Gump" {
		t.Fatalf("profile name = %q", p.Name)
	}
	if len(p.Types) == 0 || p.Types[0] != "Film" {
		t.Fatalf("profile types = %v", p.Types)
	}
	if len(p.Literals) != 2 {
		t.Fatalf("profile literals = %v, want runtime+budget", p.Literals)
	}
	if len(p.Facts) != 5 { // 3 stars + director + writer
		t.Fatalf("profile facts = %d, want 5: %v", len(p.Facts), p.Facts)
	}
	text := p.Render()
	for _, want := range []string{"Forrest Gump", "142 minutes", "starring → Tom Hanks", "types: Film"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered profile missing %q:\n%s", want, text)
		}
	}
}

func TestProfileMaxFacts(t *testing.T) {
	f := kgtest.Build()
	p := f.Graph.ProfileOf(f.E("Forrest_Gump"), 2)
	if len(p.Facts) != 2 || len(p.Literals) != 2 {
		t.Fatalf("maxFacts not applied: facts=%d literals=%d", len(p.Facts), len(p.Literals))
	}
}

func TestProfileIncomingEdges(t *testing.T) {
	f := kgtest.Build()
	p := f.Graph.ProfileOf(f.E("Tom_Hanks"), 0)
	if len(p.InvertedIn) != 6 { // six films star Tom Hanks
		t.Fatalf("Tom_Hanks incoming facts = %d, want 6", len(p.InvertedIn))
	}
}

func TestTypeView(t *testing.T) {
	f := kgtest.Build()
	g := f.Graph
	view := g.TypeView(f.E("Film"), 0)
	if len(view) == 0 {
		t.Fatal("empty type view for Film")
	}
	// The strongest coupling of Film must be starring→Actor
	// (12 film-actor pairs, each counted once per actor type).
	top := view[0]
	if top.PredName != "starring" || !top.Outgoing || top.OtherType != f.E("Actor") {
		t.Fatalf("top coupling = %+v, want Film —starring→ Actor", top)
	}
	// Couplings must also include director→Director.
	found := false
	for _, c := range view {
		if c.PredName == "director" && c.Outgoing && c.OtherType == f.E("Director") {
			found = true
		}
	}
	if !found {
		t.Fatal("Film —director→ Director coupling missing")
	}
	text := g.RenderTypeView(f.E("Film"), 0, 5)
	if !strings.Contains(text, "starring") {
		t.Fatalf("rendered type view missing starring:\n%s", text)
	}
}

func TestTypeViewDirections(t *testing.T) {
	f := kgtest.Build()
	g := f.Graph
	view := g.TypeView(f.E("Actor"), 0)
	// Actors are coupled to films via an incoming starring edge.
	found := false
	for _, c := range view {
		if c.PredName == "starring" && !c.Outgoing && c.OtherType == f.E("Film") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Actor ←starring— Film coupling missing: %+v", view)
	}
}

func TestTypeHistogram(t *testing.T) {
	f := kgtest.Build()
	hist := f.Graph.TypeHistogram()
	if len(hist) == 0 {
		t.Fatal("empty histogram")
	}
	counts := map[string]int{}
	for _, h := range hist {
		counts[h.Name] = h.Count
	}
	if counts["Film"] != 8 {
		t.Fatalf("Film count = %d, want 8", counts["Film"])
	}
	if counts["Person"] != counts["Actor"]+counts["Director"]+1 { // +1 writer
		t.Fatalf("Person=%d Actor=%d Director=%d", counts["Person"], counts["Actor"], counts["Director"])
	}
	if !sort.SliceIsSorted(hist, func(i, j int) bool {
		if hist[i].Count != hist[j].Count {
			return hist[i].Count > hist[j].Count
		}
		return hist[i].Type < hist[j].Type
	}) {
		t.Fatal("histogram not sorted by descending count")
	}
}

func TestNeighborhood(t *testing.T) {
	f := kgtest.Build()
	g := f.Graph
	nb := g.NeighborhoodOf(f.E("Forrest_Gump"), 1, 0)
	// 1 hop: the 3 stars + director + writer = 6 nodes with seed.
	if len(nb.Nodes) != 6 {
		t.Fatalf("1-hop neighbourhood has %d nodes, want 6", len(nb.Nodes))
	}
	nb2 := g.NeighborhoodOf(f.E("Forrest_Gump"), 2, 0)
	if len(nb2.Nodes) <= len(nb.Nodes) {
		t.Fatal("2-hop neighbourhood not larger than 1-hop")
	}
	// 2 hops reaches Apollo_13 via Tom_Hanks.
	if !rdf.ContainsSorted(nb2.Nodes, f.E("Apollo_13")) {
		t.Fatal("Apollo_13 not reached in 2 hops")
	}
	// Every edge endpoint must be in Nodes.
	for _, e := range nb2.Edges {
		if !rdf.ContainsSorted(nb2.Nodes, e.From) || !rdf.ContainsSorted(nb2.Nodes, e.To) {
			t.Fatalf("edge %+v has endpoint outside node set", e)
		}
	}
}

func TestNeighborhoodMaxNodes(t *testing.T) {
	f := kgtest.Build()
	nb := f.Graph.NeighborhoodOf(f.E("Tom_Hanks"), 2, 4)
	if len(nb.Nodes) > 4 {
		t.Fatalf("maxNodes violated: %d nodes", len(nb.Nodes))
	}
}

func TestNeighborhoodDOT(t *testing.T) {
	f := kgtest.Build()
	nb := f.Graph.NeighborhoodOf(f.E("Forrest_Gump"), 1, 0)
	dot := f.Graph.DOT(nb)
	for _, want := range []string{"digraph", `"Forrest Gump"`, "starring", "fillcolor=gold"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestVocabIsMeta(t *testing.T) {
	d := rdf.NewDictionary()
	v := kg.InternVocab(d)
	if !v.IsMeta(v.Type) || !v.IsMeta(v.Label) || !v.IsMeta(v.Subject) ||
		!v.IsMeta(v.Redirects) || !v.IsMeta(v.Disambiguates) || !v.IsMeta(v.Abstract) {
		t.Fatal("metadata predicate not flagged as meta")
	}
	other := d.Intern(rdf.NewIRI("http://pivote.dev/ontology/starring"))
	if v.IsMeta(other) {
		t.Fatal("semantic predicate flagged as meta")
	}
}

func TestNewGraphPanicsOnUnfrozen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGraph on unfrozen store did not panic")
		}
	}()
	kg.NewGraph(rdf.NewStore(nil))
}
