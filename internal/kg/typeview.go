package kg

import (
	"fmt"
	"sort"
	"strings"

	"pivote/internal/rdf"
)

// TypeCoupling records that entities of one type are statistically
// coupled, via a predicate and a direction, to entities of another type —
// the structure Figure 1-b of the paper visualizes (e.g. Film —starring→
// Actor). Count is the number of (entity, neighbour) pairs observed.
type TypeCoupling struct {
	Pred      rdf.TermID
	PredName  string
	Outgoing  bool // true: type —pred→ other; false: other —pred→ type
	OtherType rdf.TermID
	OtherName string
	Count     int
}

// TypeView computes the couplings of type t, sorted by descending count.
// sample bounds how many members of t are scanned (<=0 scans all), which
// keeps the view interactive on large graphs exactly like PivotE's
// on-the-fly discovery.
func (g *Graph) TypeView(t rdf.TermID, sample int) []TypeCoupling {
	members := g.TypeMembers(t)
	if sample > 0 && len(members) > sample {
		members = members[:sample]
	}
	type key struct {
		p     rdf.TermID
		out   bool
		other rdf.TermID
	}
	counts := map[key]int{}
	for _, e := range members {
		for _, edge := range g.store.Out(e) {
			if g.voc.IsMeta(edge.P) || !g.IsEntity(edge.Node) {
				continue
			}
			for _, ot := range g.TypesOf(edge.Node) {
				counts[key{edge.P, true, ot}]++
			}
		}
		for _, edge := range g.store.In(e) {
			if g.voc.IsMeta(edge.P) || !g.IsEntity(edge.Node) {
				continue
			}
			for _, ot := range g.TypesOf(edge.Node) {
				counts[key{edge.P, false, ot}]++
			}
		}
	}
	out := make([]TypeCoupling, 0, len(counts))
	for k, c := range counts {
		out = append(out, TypeCoupling{
			Pred:      k.p,
			PredName:  g.Dict().Term(k.p).LocalName(),
			Outgoing:  k.out,
			OtherType: k.other,
			OtherName: g.Name(k.other),
			Count:     c,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		if out[i].Outgoing != out[j].Outgoing {
			return out[i].Outgoing
		}
		return out[i].OtherType < out[j].OtherType
	})
	return out
}

// RenderTypeView prints the coupled-type view for t, the textual
// equivalent of Figure 1-b.
func (g *Graph) RenderTypeView(t rdf.TermID, sample, limit int) string {
	var b strings.Builder
	name := g.Name(t)
	fmt.Fprintf(&b, "type %s (%d entities)\n", name, len(g.TypeMembers(t)))
	view := g.TypeView(t, sample)
	if limit > 0 && len(view) > limit {
		view = view[:limit]
	}
	for _, c := range view {
		if c.Outgoing {
			fmt.Fprintf(&b, "  %s —%s→ %s  (%d)\n", name, c.PredName, c.OtherName, c.Count)
		} else {
			fmt.Fprintf(&b, "  %s ←%s— %s  (%d)\n", name, c.PredName, c.OtherName, c.Count)
		}
	}
	return b.String()
}

// TypeHistogram returns (type, member count) pairs for the whole graph,
// descending — the overview panel of Figure 1-b.
func (g *Graph) TypeHistogram() []TypeCount {
	out := make([]TypeCount, 0, len(g.types))
	for _, t := range g.types {
		out = append(out, TypeCount{Type: t, Name: g.Name(t), Count: len(g.TypeMembers(t))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// TypeCount is one bar of the type histogram.
type TypeCount struct {
	Type  rdf.TermID
	Name  string
	Count int
}
