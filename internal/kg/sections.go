package kg

import (
	"errors"
	"fmt"

	"pivote/internal/rdf"
	"pivote/internal/snap"
)

// SectionGraph holds the entity-centric view: the interned vocabulary
// IDs, the three sorted universes and the dense per-term tables. With
// this section present, opening a graph never interns a term — the
// construction scan of NewGraph is replaced by bounds validation.
const SectionGraph = "kg.graph"

// AppendSections writes the graph tables (the underlying store writes
// its own sections separately).
func (g *Graph) AppendSections(w *snap.Writer) error {
	w.Begin(SectionGraph)
	w.U64(uint64(g.voc.Type))
	w.U64(uint64(g.voc.Label))
	w.U64(uint64(g.voc.Subject))
	w.U64(uint64(g.voc.Redirects))
	w.U64(uint64(g.voc.Disambiguates))
	w.U64(uint64(g.voc.Abstract))
	snap.PutU32Slice(w, g.entities)
	snap.PutU32Slice(w, g.types)
	snap.PutU32Slice(w, g.categories)
	snap.PutBoolSlice(w, g.isEntity)
	snap.PutU32Slice(w, g.primaryType)
	w.I32s(g.catSize)
	return nil
}

// OpenGraphSections reconstructs the graph view over an already-opened
// store. The dense tables alias the mapping; validation pins every ID
// inside the store's term range so later loads cannot go out of bounds.
func OpenGraphSections(m *snap.Mapping, st *rdf.Store) (*Graph, error) {
	c, err := m.Section(SectionGraph)
	if err != nil {
		return nil, err
	}
	g := &Graph{store: st}
	g.voc.Type = rdf.TermID(c.U64())
	g.voc.Label = rdf.TermID(c.U64())
	g.voc.Subject = rdf.TermID(c.U64())
	g.voc.Redirects = rdf.TermID(c.U64())
	g.voc.Disambiguates = rdf.TermID(c.U64())
	g.voc.Abstract = rdf.TermID(c.U64())
	g.entities = snap.U32Slice[rdf.TermID](c)
	g.types = snap.U32Slice[rdf.TermID](c)
	g.categories = snap.U32Slice[rdf.TermID](c)
	g.isEntity = snap.BoolSlice(c)
	g.primaryType = snap.U32Slice[rdf.TermID](c)
	g.catSize = c.I32s()
	if err := c.Err(); err != nil {
		return nil, err
	}
	n := int(st.MaxTermID()) + 1
	bound := rdf.TermID(st.Dict().Len()) + 1
	for _, v := range [...]rdf.TermID{g.voc.Type, g.voc.Label, g.voc.Subject,
		g.voc.Redirects, g.voc.Disambiguates, g.voc.Abstract} {
		if v == rdf.NoTerm || v >= bound {
			return nil, corruptGraph("vocabulary ID %d outside dictionary", v)
		}
	}
	for name, ids := range map[string][]rdf.TermID{
		"entities": g.entities, "types": g.types, "categories": g.categories,
	} {
		prev := rdf.NoTerm
		for i, id := range ids {
			if id == rdf.NoTerm || id >= bound || (i > 0 && id <= prev) {
				return nil, corruptGraph("%s list entry %d out of order or range", name, i)
			}
			prev = id
		}
	}
	if len(g.isEntity) != n || len(g.primaryType) != n || len(g.catSize) != n {
		return nil, corruptGraph("dense tables sized %d/%d/%d, want %d",
			len(g.isEntity), len(g.primaryType), len(g.catSize), n)
	}
	for i, t := range g.primaryType {
		if t >= bound {
			return nil, corruptGraph("primaryType[%d] = %d outside dictionary", i, t)
		}
	}
	return g, nil
}

func corruptGraph(format string, args ...any) error {
	return errors.Join(snap.ErrCorrupt, fmt.Errorf("kg: snapshot graph: "+format, args...))
}
