package kg

import (
	"sort"

	"pivote/internal/rdf"
)

// Graph is the entity-centric view over a frozen store. Construction
// scans the store once to identify the entity, type and category
// universes; all per-entity accessors afterwards are index lookups.
type Graph struct {
	store *rdf.Store
	voc   Vocab

	entities   []rdf.TermID // sorted: IRIs that have at least one rdf:type
	types      []rdf.TermID // sorted: objects of rdf:type
	categories []rdf.TermID // sorted: objects of dct:subject

	// Dense per-TermID tables, sized MaxTermID+1. isEntity makes the
	// membership probe in the scoring scatter loops a single load;
	// primaryType precomputes the most specific type of every entity
	// (NoTerm for non-entities), so the same-type candidate filter costs
	// one load per candidate instead of a types scan with per-type
	// member counts; catSize holds ‖E(c)‖ per category (0 for
	// non-categories), the denominator of every back-off probability and
	// the sort key of the most-specific-first category order, so neither
	// the feature-catalog build nor the lazy cache recounts members.
	isEntity    []bool
	primaryType []rdf.TermID
	catSize     []int32
}

// NewGraph builds the graph view. The store must already be frozen.
func NewGraph(st *rdf.Store) *Graph {
	if !st.Frozen() {
		panic("kg: store must be frozen before building a Graph")
	}
	g := &Graph{store: st, voc: InternVocab(st.Dict())}
	entSet := map[rdf.TermID]bool{}
	typeSet := map[rdf.TermID]bool{}
	catSet := map[rdf.TermID]bool{}
	for _, s := range st.NodesWithOut() {
		for _, e := range st.Out(s) {
			switch e.P {
			case g.voc.Type:
				entSet[s] = true
				typeSet[e.Node] = true
			case g.voc.Subject:
				catSet[e.Node] = true
			}
		}
	}
	g.entities = sortedIDs(entSet)
	g.types = sortedIDs(typeSet)
	g.categories = sortedIDs(catSet)

	n := int(st.MaxTermID()) + 1
	g.isEntity = make([]bool, n)
	for _, e := range g.entities {
		g.isEntity[e] = true
	}
	// Type sizes are shared across entities; count each type once.
	typeSize := make(map[rdf.TermID]int, len(g.types))
	for _, t := range g.types {
		typeSize[t] = st.CountSubjects(g.voc.Type, t)
	}
	g.catSize = make([]int32, n)
	for _, c := range g.categories {
		g.catSize[c] = int32(st.CountSubjects(g.voc.Subject, c))
	}
	g.primaryType = make([]rdf.TermID, n)
	for _, e := range g.entities {
		best := rdf.NoTerm
		bestN := int(^uint(0) >> 1)
		for _, t := range st.Objects(e, g.voc.Type) {
			if n := typeSize[t]; n < bestN || (n == bestN && t < best) {
				best, bestN = t, n
			}
		}
		g.primaryType[e] = best
	}
	return g
}

func sortedIDs(set map[rdf.TermID]bool) []rdf.TermID {
	out := make([]rdf.TermID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Store exposes the underlying triple store.
func (g *Graph) Store() *rdf.Store { return g.store }

// Dict exposes the term dictionary.
func (g *Graph) Dict() *rdf.Dictionary { return g.store.Dict() }

// Voc exposes the metadata vocabulary.
func (g *Graph) Voc() Vocab { return g.voc }

// Entities returns the sorted entity universe (shared slice; do not
// modify).
func (g *Graph) Entities() []rdf.TermID { return g.entities }

// Types returns the sorted set of entity types.
func (g *Graph) Types() []rdf.TermID { return g.types }

// Categories returns the sorted set of categories.
func (g *Graph) Categories() []rdf.TermID { return g.categories }

// IsEntity reports whether id is in the entity universe.
func (g *Graph) IsEntity(id rdf.TermID) bool {
	return int(id) < len(g.isEntity) && g.isEntity[id]
}

// EntityByName resolves an entity by the local name of its IRI under the
// DBpedia-style resource namespace used by the synthetic generator, or by
// exact IRI. It returns NoTerm if the entity is unknown.
func (g *Graph) EntityByName(name string) rdf.TermID {
	if id := g.Dict().LookupIRI(name); id != rdf.NoTerm && g.IsEntity(id) {
		return id
	}
	if id := g.Dict().LookupIRI(ResourceIRI(name)); id != rdf.NoTerm && g.IsEntity(id) {
		return id
	}
	return rdf.NoTerm
}

// ResourceIRI maps a local entity name to the resource namespace shared
// with the synthetic generator.
func ResourceIRI(name string) string {
	return "http://pivote.dev/resource/" + name
}

// Name returns the display identifier of any term: its first rdfs:label
// if present, otherwise the IRI local name or literal form.
func (g *Graph) Name(id rdf.TermID) string {
	for _, e := range g.store.Out(id) {
		if e.P == g.voc.Label {
			if t := g.Dict().Term(e.Node); t.IsLiteral() {
				return t.Value
			}
		}
	}
	return g.Dict().Term(id).LocalName()
}

// Labels returns all rdfs:label literal values of id.
func (g *Graph) Labels(id rdf.TermID) []string {
	var out []string
	for _, e := range g.store.Out(id) {
		if e.P == g.voc.Label {
			if t := g.Dict().Term(e.Node); t.IsLiteral() {
				out = append(out, t.Value)
			}
		}
	}
	return out
}

// TypesOf returns the sorted type IDs of the entity.
func (g *Graph) TypesOf(e rdf.TermID) []rdf.TermID {
	return g.store.Objects(e, g.voc.Type)
}

// PrimaryType returns the most specific type of e: the one with the
// fewest members (ties broken by ID for determinism), or NoTerm. The
// answer is precomputed at graph construction; this is a single load.
func (g *Graph) PrimaryType(e rdf.TermID) rdf.TermID {
	if int(e) >= len(g.primaryType) {
		return rdf.NoTerm
	}
	return g.primaryType[e]
}

// CategoriesOf returns the sorted category IDs of the entity.
func (g *Graph) CategoriesOf(e rdf.TermID) []rdf.TermID {
	return g.store.Objects(e, g.voc.Subject)
}

// TypeMembers returns the sorted entities of type t.
func (g *Graph) TypeMembers(t rdf.TermID) []rdf.TermID {
	return g.store.Subjects(g.voc.Type, t)
}

// CategoryMembers returns the sorted entities in category c.
func (g *Graph) CategoryMembers(c rdf.TermID) []rdf.TermID {
	return g.store.Subjects(g.voc.Subject, c)
}

// CategorySize returns ‖E(c)‖ — the member count of category c, 0 for
// non-categories. Precomputed at graph construction; a single load.
func (g *Graph) CategorySize(c rdf.TermID) int {
	if int(c) >= len(g.catSize) {
		return 0
	}
	return int(g.catSize[c])
}

// Attributes returns the literal values attached to e via non-metadata
// predicates plus the abstract — the "attributes" field of Table 1.
func (g *Graph) Attributes(e rdf.TermID) []string {
	var out []string
	for _, edge := range g.store.Out(e) {
		t := g.Dict().Term(edge.Node)
		if !t.IsLiteral() {
			continue
		}
		if edge.P == g.voc.Label {
			continue // labels are the names field
		}
		out = append(out, t.Value)
	}
	return out
}

// SimilarNames returns the labels of entities that redirect to or
// disambiguate to e — the "similar entity names" field of Table 1.
func (g *Graph) SimilarNames(e rdf.TermID) []string {
	var out []string
	for _, edge := range g.store.In(e) {
		if edge.P == g.voc.Redirects || edge.P == g.voc.Disambiguates {
			out = append(out, g.Name(edge.Node))
		}
	}
	return out
}

// Related returns the distinct entities connected to e by semantic
// (non-metadata) predicates in either direction, sorted by ID — the
// "related entity names" field of Table 1 uses their labels.
func (g *Graph) Related(e rdf.TermID) []rdf.TermID {
	seen := map[rdf.TermID]bool{}
	for _, edge := range g.store.Out(e) {
		if g.voc.IsMeta(edge.P) {
			continue
		}
		if g.IsEntity(edge.Node) {
			seen[edge.Node] = true
		}
	}
	for _, edge := range g.store.In(e) {
		if g.voc.IsMeta(edge.P) {
			continue
		}
		if g.IsEntity(edge.Node) {
			seen[edge.Node] = true
		}
	}
	return sortedIDs(seen)
}

// Abstract returns the first abstract literal of e, or "".
func (g *Graph) Abstract(e rdf.TermID) string {
	for _, edge := range g.store.Out(e) {
		if edge.P == g.voc.Abstract {
			if t := g.Dict().Term(edge.Node); t.IsLiteral() {
				return t.Value
			}
		}
	}
	return ""
}

// Names applies Name to each ID.
func (g *Graph) Names(ids []rdf.TermID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Name(id)
	}
	return out
}
