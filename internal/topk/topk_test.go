package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSelectMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	less := func(a, b int) bool { return a < b }
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(20) // plenty of ties
		}
		k := rng.Intn(n + 10)
		ref := append([]int(nil), items...)
		sort.Ints(ref)
		if k > 0 && k < len(ref) {
			ref = ref[:k]
		}
		got := Select(append([]int(nil), items...), k, less)
		if len(got) != len(ref) {
			t.Fatalf("n=%d k=%d: got %d items, want %d", n, k, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got, ref)
			}
		}
	}
}

func TestHeapMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	less := func(a, b int) bool { return a < b }
	var h Heap[int]
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(25)
		}
		k := rng.Intn(n + 10)
		want := Select(append([]int(nil), items...), k, less)
		h.Reset(k, less)
		for _, x := range items {
			h.Push(x)
		}
		got := h.Sorted()
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d: got %d items, want %d", n, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got, want)
			}
		}
	}
}

func TestHeapReuseAcrossResets(t *testing.T) {
	var h Heap[int]
	less := func(a, b int) bool { return a < b }
	h.Reset(2, less)
	for _, x := range []int{5, 1, 4, 2, 3} {
		h.Push(x)
	}
	if got := h.Sorted(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("first use: %v", got)
	}
	h.Reset(0, less)
	for _, x := range []int{9, 7, 8} {
		h.Push(x)
	}
	if got := h.Sorted(); len(got) != 3 || got[0] != 7 {
		t.Fatalf("k=0 reuse: %v", got)
	}
}

func TestSelectZeroAndOversizedK(t *testing.T) {
	items := []int{3, 1, 2}
	if got := Select(append([]int(nil), items...), 0, func(a, b int) bool { return a < b }); len(got) != 3 || got[0] != 1 {
		t.Fatalf("k=0 should full-sort, got %v", got)
	}
	if got := Select(append([]int(nil), items...), 10, func(a, b int) bool { return a < b }); len(got) != 3 || got[2] != 3 {
		t.Fatalf("k>len should full-sort, got %v", got)
	}
	if got := Select(nil, 5, func(a, b int) bool { return a < b }); len(got) != 0 {
		t.Fatalf("empty input, got %v", got)
	}
}
