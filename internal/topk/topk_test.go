package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSelectMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	less := func(a, b int) bool { return a < b }
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(20) // plenty of ties
		}
		k := rng.Intn(n + 10)
		ref := append([]int(nil), items...)
		sort.Ints(ref)
		if k > 0 && k < len(ref) {
			ref = ref[:k]
		}
		got := Select(append([]int(nil), items...), k, less)
		if len(got) != len(ref) {
			t.Fatalf("n=%d k=%d: got %d items, want %d", n, k, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got, ref)
			}
		}
	}
}

func TestHeapMatchesSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	less := func(a, b int) bool { return a < b }
	var h Heap[int]
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(60)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(25)
		}
		k := rng.Intn(n + 10)
		want := Select(append([]int(nil), items...), k, less)
		h.Reset(k, less)
		for _, x := range items {
			h.Push(x)
		}
		got := h.Sorted()
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d: got %d items, want %d", n, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got, want)
			}
		}
	}
}

func TestHeapReuseAcrossResets(t *testing.T) {
	var h Heap[int]
	less := func(a, b int) bool { return a < b }
	h.Reset(2, less)
	for _, x := range []int{5, 1, 4, 2, 3} {
		h.Push(x)
	}
	if got := h.Sorted(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("first use: %v", got)
	}
	h.Reset(0, less)
	for _, x := range []int{9, 7, 8} {
		h.Push(x)
	}
	if got := h.Sorted(); len(got) != 3 || got[0] != 7 {
		t.Fatalf("k=0 reuse: %v", got)
	}
}

func TestSelectZeroAndOversizedK(t *testing.T) {
	items := []int{3, 1, 2}
	if got := Select(append([]int(nil), items...), 0, func(a, b int) bool { return a < b }); len(got) != 3 || got[0] != 1 {
		t.Fatalf("k=0 should full-sort, got %v", got)
	}
	if got := Select(append([]int(nil), items...), 10, func(a, b int) bool { return a < b }); len(got) != 3 || got[2] != 3 {
		t.Fatalf("k>len should full-sort, got %v", got)
	}
	if got := Select(nil, 5, func(a, b int) bool { return a < b }); len(got) != 0 {
		t.Fatalf("empty input, got %v", got)
	}
}

// hit mirrors the scatter-gather merge element: a score with a dense-ID
// tie-break, so duplicate scores exercise the deterministic total order.
type hit struct {
	score float64
	id    uint32
}

func lessHit(a, b hit) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

func TestMergeSortedMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		nPages := 1 + rng.Intn(8)
		pages := make([][]hit, nPages)
		var all []hit
		id := uint32(0)
		for p := range pages {
			n := rng.Intn(12)
			page := make([]hit, 0, n)
			for i := 0; i < n; i++ {
				// Few distinct scores so duplicate-score ties across pages
				// are common; IDs are globally unique like disjoint shard
				// partitions.
				page = append(page, hit{score: float64(rng.Intn(5)), id: id})
				id++
			}
			sort.Slice(page, func(i, j int) bool { return lessHit(page[i], page[j]) })
			pages[p] = page
			all = append(all, page...)
		}
		k := rng.Intn(len(all) + 5)
		ref := append([]hit(nil), all...)
		sort.Slice(ref, func(i, j int) bool { return lessHit(ref[i], ref[j]) })
		if k > 0 && k < len(ref) {
			ref = ref[:k]
		}
		got := MergeSorted(pages, k, lessHit)
		if len(got) != len(ref) {
			t.Fatalf("pages=%d k=%d: got %d items, want %d", nPages, k, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("pages=%d k=%d: item %d: got %+v, want %+v", nPages, k, i, got[i], ref[i])
			}
		}
	}
}

// TestMergeSortedDuplicateTieBreak pins the backstop: elements that
// compare equal under less drain in page order, independent of input
// permutation of equal runs.
func TestMergeSortedDuplicateTieBreak(t *testing.T) {
	type tagged struct {
		score float64
		page  int
	}
	less := func(a, b tagged) bool { return a.score > b.score }
	pages := [][]tagged{
		{{2, 0}, {1, 0}, {1, 0}},
		{{2, 1}, {1, 1}},
		{{3, 2}, {1, 2}},
	}
	got := MergeSorted(pages, 0, less)
	want := []tagged{{3, 2}, {2, 0}, {2, 1}, {1, 0}, {1, 0}, {1, 1}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("item %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeSortedEmptyPages(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	if got := MergeSorted[int](nil, 5, less); len(got) != 0 {
		t.Fatalf("nil pages: got %v", got)
	}
	if got := MergeSorted([][]int{{}, {}, {}}, 5, less); len(got) != 0 {
		t.Fatalf("empty pages: got %v", got)
	}
	got := MergeSorted([][]int{{}, {1, 3}, {}, {2}}, 2, less)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}
