package topk

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSelectMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	less := func(a, b int) bool { return a < b }
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(20) // plenty of ties
		}
		k := rng.Intn(n + 10)
		ref := append([]int(nil), items...)
		sort.Ints(ref)
		if k > 0 && k < len(ref) {
			ref = ref[:k]
		}
		got := Select(append([]int(nil), items...), k, less)
		if len(got) != len(ref) {
			t.Fatalf("n=%d k=%d: got %d items, want %d", n, k, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("n=%d k=%d: got %v, want %v", n, k, got, ref)
			}
		}
	}
}

func TestSelectZeroAndOversizedK(t *testing.T) {
	items := []int{3, 1, 2}
	if got := Select(append([]int(nil), items...), 0, func(a, b int) bool { return a < b }); len(got) != 3 || got[0] != 1 {
		t.Fatalf("k=0 should full-sort, got %v", got)
	}
	if got := Select(append([]int(nil), items...), 10, func(a, b int) bool { return a < b }); len(got) != 3 || got[2] != 3 {
		t.Fatalf("k>len should full-sort, got %v", got)
	}
	if got := Select(nil, 5, func(a, b int) bool { return a < b }); len(got) != 0 {
		t.Fatalf("empty input, got %v", got)
	}
}
