// Package topk provides bounded partial selection: the k best elements
// of a slice under a caller-supplied ordering, in sorted order. For the
// typical k ≪ n serving case a size-k min-heap beats sorting the whole
// slice — O(n log k) comparisons and no allocation beyond the k-element
// result — which is why both keyword retrieval and entity expansion
// select their result pages through it.
package topk

import (
	"slices"
)

// Select returns the k smallest elements under less (i.e. the k "best"
// when less orders best-first), sorted best-first. k <= 0 or k >= len
// sorts items in place and returns it; otherwise items is left in
// unspecified order and a fresh k-element slice is returned.
func Select[T any](items []T, k int, less func(a, b T) bool) []T {
	if k <= 0 || k >= len(items) {
		slices.SortFunc(items, func(a, b T) int {
			switch {
			case less(a, b):
				return -1
			case less(b, a):
				return 1
			default:
				return 0
			}
		})
		return items
	}
	// Max-heap of the current k best: the root is the worst kept element,
	// evicted whenever a better one arrives.
	worse := func(a, b T) bool { return less(b, a) }
	h := make([]T, k)
	copy(h, items[:k])
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(h, i, worse)
	}
	for _, x := range items[k:] {
		if less(x, h[0]) {
			h[0] = x
			siftDown(h, 0, worse)
		}
	}
	slices.SortFunc(h, func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
	return h
}

// Heap is the streaming counterpart of Select: push candidates one at a
// time and read the k best at the end, without ever materializing the
// full candidate list. A zero Heap is unusable — call Reset first. The
// backing array is retained across Resets, so a pooled Heap adds zero
// allocations per query once warm.
type Heap[T any] struct {
	k     int
	less  func(a, b T) bool
	items []T
}

// Reset prepares the heap for a new selection of the k best under less
// (k <= 0 keeps everything), reusing the backing array.
func (h *Heap[T]) Reset(k int, less func(a, b T) bool) {
	h.k = k
	h.less = less
	h.items = h.items[:0]
}

// Push offers one candidate.
func (h *Heap[T]) Push(x T) {
	if h.k <= 0 || len(h.items) < h.k {
		h.items = append(h.items, x)
		if h.k > 0 && len(h.items) == h.k {
			// Full: heapify into a max-heap whose root is the worst kept
			// element (same shape Select builds in one shot).
			worse := func(a, b T) bool { return h.less(b, a) }
			for i := h.k/2 - 1; i >= 0; i-- {
				siftDown(h.items, i, worse)
			}
		}
		return
	}
	if h.less(x, h.items[0]) {
		h.items[0] = x
		siftDown(h.items, 0, func(a, b T) bool { return h.less(b, a) })
	}
}

// Len reports how many elements are currently kept.
func (h *Heap[T]) Len() int { return len(h.items) }

// Sorted sorts the kept elements best-first and returns them. The slice
// aliases the heap's backing array: copy it out if it must survive the
// next Reset.
func (h *Heap[T]) Sorted() []T {
	slices.SortFunc(h.items, func(a, b T) int {
		switch {
		case h.less(a, b):
			return -1
		case h.less(b, a):
			return 1
		default:
			return 0
		}
	})
	return h.items
}

// MergeSorted merges pages that are each already sorted best-first under
// less into one best-first slice of at most k elements (k <= 0 keeps
// everything). This is the scatter-gather merge: N shards each return a
// sorted top-k page, and only the page heads compete — O(k log N)
// comparisons instead of re-heaping every element.
//
// Determinism: when two heads compare equal under less, the one from the
// lower-indexed page wins, so the merged order never depends on
// goroutine scheduling. Callers that need a total order across pages
// (score, then TermID) encode it in less, which makes the page-index
// tie-break unreachable — it is a backstop, not a semantic.
func MergeSorted[T any](pages [][]T, k int, less func(a, b T) bool) []T {
	total := 0
	for _, p := range pages {
		total += len(p)
	}
	if k <= 0 || k > total {
		k = total
	}
	out := make([]T, 0, k)
	// Heap of page cursors ordered by their current head; ties break on
	// page index so equal elements drain in page order.
	type cursor struct {
		page int
		pos  int
	}
	head := func(c cursor) T { return pages[c.page][c.pos] }
	best := func(a, b cursor) bool {
		if less(head(a), head(b)) {
			return true
		}
		if less(head(b), head(a)) {
			return false
		}
		return a.page < b.page
	}
	h := make([]cursor, 0, len(pages))
	for i, p := range pages {
		if len(p) > 0 {
			h = append(h, cursor{page: i})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, best)
	}
	for len(out) < k && len(h) > 0 {
		c := h[0]
		out = append(out, head(c))
		if c.pos+1 < len(pages[c.page]) {
			h[0].pos++
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(h, 0, best)
	}
	return out
}

// siftDown restores the heap property at root i, where best(a, b) means a
// should be nearer the root.
func siftDown[T any](h []T, i int, best func(a, b T) bool) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && best(h[l], h[m]) {
			m = l
		}
		if r < n && best(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
