package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"pivote/internal/core"
	"pivote/internal/live"
	"pivote/internal/obs"
)

// The live-ingest surface of /api/v1:
//
//	POST /api/v1/ingest   apply a batch of adds/tombstones to the delta log
//	POST /api/v1/compact  force a compaction swap and wait for it
//	GET  /api/v1/live     generation / delta / cache-carry statistics
//
// Ingest is graph-global (every session reads the same generational
// store), requires the server to run in live mode (-live), and never
// blocks readers: the batch lands in the delta log, a new view is
// published atomically, and visibility in ranking results arrives with
// the next compaction swap. Errors use the same typed envelope as the
// op protocol; a malformed batch is rejected in full with no side
// effects, so a bad client cannot crash or corrupt the server.

// ingestRequest is the POST /api/v1/ingest body. A raw (non-JSON)
// request body is also accepted and treated as Add.
type ingestRequest struct {
	// Add and Remove are N-Triples batches.
	Add    string `json:"add,omitempty"`
	Remove string `json:"remove,omitempty"`
	// Compact forces a synchronous compaction after the batch: the
	// response's generation then already includes it (read-your-writes).
	Compact bool `json:"compact,omitempty"`
}

// IngestResponse reports the batch outcome.
type IngestResponse struct {
	Added      int    `json:"added"`
	Removed    int    `json:"removed"`
	Pending    int    `json:"pending"`
	Generation uint64 `json:"generation"`
	Compacted  bool   `json:"compacted,omitempty"`
}

// LiveStats is the GET /api/v1/live body.
type LiveStats struct {
	Enabled    bool   `json:"enabled"`
	Generation uint64 `json:"generation"`
	Pending    int    `json:"pending"`
	Swaps      uint64 `json:"swaps"`
	// Adoptions counts the swaps that adopted a replicated snapshot
	// instead of compacting locally (zero on unreplicated nodes).
	Adoptions uint64 `json:"adoptions,omitempty"`
	Triples   int    `json:"triples"`
	Entities  int    `json:"entities"`
	// CatalogFeatures is the size of the current generation's dense
	// FeatureID space — the frozen semantic-feature catalog.
	CatalogFeatures int `json:"catalogFeatures"`
	// CacheCarried / CacheDropped report how the current generation's
	// feature state was seeded from its predecessor (FeatureID-granular
	// when a catalog is present).
	CacheCarried int `json:"cacheCarried"`
	CacheDropped int `json:"cacheDropped"`
	// UptimeSeconds, GoVersion and Revision identify the serving
	// process: how long it has been up and exactly what it is running
	// (toolchain + VCS revision from the build stamp, empty when the
	// binary carries none).
	UptimeSeconds float64 `json:"uptimeSeconds"`
	GoVersion     string  `json:"goVersion,omitempty"`
	Revision      string  `json:"revision,omitempty"`
}

// liveStore returns the generational store when ingest is enabled, or a
// typed invalid error for static deployments.
func (s *Server) liveStore() (*live.Store, error) {
	sh := s.eng.Shared()
	if !sh.IngestEnabled() {
		return nil, core.Errf(core.KindInvalid, "live ingest is disabled; start the server with -live")
	}
	return sh.Live(), nil
}

func (s *Server) handleV1Ingest(w http.ResponseWriter, r *http.Request) {
	ls, err := s.liveStore()
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	var req ingestRequest
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeV1Err(w, core.Errf(core.KindInvalid, "bad request body: %v", err), nil)
			return
		}
	} else {
		// Raw N-Triples body: the curl-friendly spelling of {"add": ...}.
		raw, err := io.ReadAll(body)
		if err != nil {
			writeV1Err(w, core.Errf(core.KindInvalid, "read body: %v", err), nil)
			return
		}
		req.Add = string(raw)
	}

	var add, del io.Reader
	if req.Add != "" {
		add = strings.NewReader(req.Add)
	}
	if req.Remove != "" {
		del = strings.NewReader(req.Remove)
	}
	res, err := ls.IngestNTriples(add, del)
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	resp := IngestResponse{
		Added:      res.Added,
		Removed:    res.Removed,
		Pending:    res.Pending,
		Generation: res.Generation,
	}
	if req.Compact {
		gen, swapped, err := ls.CompactNow()
		if err != nil {
			writeV1Err(w, err, nil)
			return
		}
		resp.Generation = gen.ID
		resp.Pending = ls.Pending()
		resp.Compacted = swapped
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleV1Compact(w http.ResponseWriter, r *http.Request) {
	ls, err := s.liveStore()
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	gen, swapped, err := ls.CompactNow()
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		Generation: gen.ID,
		Pending:    ls.Pending(),
		Compacted:  swapped,
	})
}

func (s *Server) handleV1LiveStats(w http.ResponseWriter, r *http.Request) {
	sh := s.eng.Shared()
	v := sh.Live().View()
	carry := v.Gen.Features.Carry()
	nFeatures := 0
	if v.Gen.Catalog != nil {
		nFeatures = v.Gen.Catalog.NumFeatures()
	}
	goVer, rev := obs.BuildInfo()
	writeJSON(w, http.StatusOK, LiveStats{
		Enabled:         sh.IngestEnabled(),
		Generation:      v.Gen.ID,
		Pending:         v.Pending(),
		Swaps:           sh.Live().Swaps(),
		Adoptions:       sh.Live().Adoptions(),
		Triples:         v.Len(),
		Entities:        len(v.Gen.Graph.Entities()),
		CatalogFeatures: nFeatures,
		CacheCarried:    carry.Carried,
		CacheDropped:    carry.Dropped,
		UptimeSeconds:   obs.Uptime().Seconds(),
		GoVersion:       goVer,
		Revision:        rev,
	})
}
