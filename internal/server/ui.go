package server

// indexHTML is the embedded single-page UI: the five areas of the paper's
// Figure 3 rendered with vanilla JavaScript against the JSON API.
// Interactions mirror the demo: click an entity to look up its profile,
// "+" to add it as an example, double-click to pivot into its domain;
// click a feature to pin it as a condition, double-click to pivot to its
// anchor; the timeline revisits historical queries.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>PivotE — exploratory entity search</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 0; background:#f5f6f8; color:#222; }
  header { background:#08519c; color:#fff; padding:10px 16px; display:flex; gap:12px; align-items:center;}
  header h1 { font-size:18px; margin:0 16px 0 0; }
  #q { flex:1; max-width:480px; padding:6px 10px; border-radius:4px; border:none; font-size:14px;}
  button { cursor:pointer; border:1px solid #bbb; background:#fff; border-radius:4px; padding:3px 8px;}
  main { display:grid; grid-template-columns: 1fr 1fr 1.2fr; gap:10px; padding:10px;}
  section { background:#fff; border-radius:6px; padding:10px; box-shadow:0 1px 2px rgba(0,0,0,.08); overflow:auto; max-height:44vh;}
  section h2 { font-size:13px; text-transform:uppercase; letter-spacing:.05em; color:#555; margin:0 0 8px;}
  #desc { grid-column: 1 / -1; max-height:none; font-family:monospace; font-size:13px;}
  #heat { grid-column: 1 / -1; max-height:50vh; }
  ul { list-style:none; margin:0; padding:0; }
  li { padding:3px 4px; border-bottom:1px solid #eee; display:flex; gap:6px; align-items:center; font-size:13px;}
  li span.name { flex:1; cursor:pointer; }
  li span.name:hover { color:#08519c; text-decoration:underline;}
  li .score { color:#888; font-size:11px; font-family:monospace;}
  table.heat { border-collapse:collapse; font-size:11px;}
  table.heat td.cell { width:18px; height:18px; border:1px solid #fff;}
  table.heat th { font-weight:normal; padding:2px 6px; text-align:right; font-family:monospace; font-size:11px;}
  table.heat thead th { writing-mode:vertical-rl; transform:rotate(200deg); text-align:left; height:110px;}
  #profile pre { white-space:pre-wrap; font-size:12px;}
  #timeline li { cursor:pointer; }
  #timeline li:hover { background:#eef; }
  .hint { color:#999; font-size:11px; }
</style>
</head>
<body>
<header>
  <h1>PivotE</h1>
  <input id="q" placeholder="Type keywords, e.g. forrest gump — Enter to search">
  <button onclick="submitQuery()">Search</button>
  <span class="hint">entity: click=profile, +=add example, dblclick=pivot · feature: +=pin, dblclick=pivot to anchor</span>
</header>
<main>
  <section id="desc"><h2>Query (a/b)</h2><div id="descText">(empty)</div></section>
  <section><h2>Entities (c)</h2><ul id="entities"></ul></section>
  <section><h2>Semantic features (e)</h2><ul id="features"></ul></section>
  <section id="profile"><h2>Entity profile (d)</h2><pre id="profileText">(click an entity)</pre></section>
  <section id="heat"><h2>Explanation heat map (f)</h2><div id="heatDiv"></div></section>
  <section><h2>Timeline (g) — click to revisit</h2><ul id="timeline"></ul></section>
</main>
<script>
const COLORS = ["#f7fbff","#deebf7","#c6dbef","#9ecae1","#6baed6","#3182bd","#08519c"];
async function api(path, body) {
  const opts = body ? {method:"POST", headers:{"Content-Type":"application/json"}, body:JSON.stringify(body)} : {};
  const r = await fetch(path, opts);
  const data = await r.json();
  if (data.error) { alert(data.error); return null; }
  return data;
}
function render(st) {
  if (!st) return;
  document.getElementById("descText").textContent = st.description;
  const ents = document.getElementById("entities"); ents.innerHTML = "";
  (st.entities||[]).forEach(e => {
    const li = document.createElement("li");
    const name = document.createElement("span"); name.className="name";
    name.textContent = e.name + (e.type ? " ["+e.type+"]" : "");
    name.onclick = () => profile(e.id);
    name.ondblclick = () => post("/api/pivot", {id:e.id});
    const add = document.createElement("button"); add.textContent="+";
    add.title="add as example entity";
    add.onclick = () => post("/api/entity/add", {id:e.id});
    const sc = document.createElement("span"); sc.className="score"; sc.textContent = e.score.toFixed(4);
    li.append(add, name, sc); ents.append(li);
  });
  const feats = document.getElementById("features"); feats.innerHTML = "";
  (st.features||[]).forEach(f => {
    const li = document.createElement("li");
    const name = document.createElement("span"); name.className="name"; name.textContent = f.label;
    name.ondblclick = () => post("/api/pivot", {id:f.anchorId});
    const add = document.createElement("button"); add.textContent="+"; add.title="pin as condition";
    add.onclick = () => post("/api/feature/add", {label:f.label});
    const sc = document.createElement("span"); sc.className="score";
    sc.textContent = "r="+f.r.toExponential(2)+" |E|="+f.extentSize;
    li.append(add, name, sc); feats.append(li);
  });
  renderHeat(st.heat);
  const tl = document.getElementById("timeline"); tl.innerHTML = "";
  (st.timeline||[]).forEach(a => {
    const li = document.createElement("li");
    li.textContent = "["+a.step+"] "+a.label;
    if (a.changesQuery) li.onclick = () => post("/api/revisit", {step:a.step});
    tl.append(li);
  });
}
function renderHeat(h) {
  const div = document.getElementById("heatDiv"); div.innerHTML = "";
  if (!h || !h.features || !h.features.length) { div.textContent = "(empty)"; return; }
  const t = document.createElement("table"); t.className = "heat";
  const thead = document.createElement("thead"); const hr = document.createElement("tr");
  hr.append(document.createElement("th"));
  h.entities.forEach(e => { const th = document.createElement("th"); th.textContent = e.name; hr.append(th); });
  thead.append(hr); t.append(thead);
  h.features.forEach((f,i) => {
    const tr = document.createElement("tr");
    const th = document.createElement("th"); th.textContent = f.label; tr.append(th);
    h.level[i].forEach((lv,j) => {
      const td = document.createElement("td"); td.className="cell";
      td.style.background = COLORS[lv];
      td.title = f.label+" × "+h.entities[j].name+" (level "+lv+")";
      tr.append(td);
    });
    t.append(tr);
  });
  div.append(t);
}
async function post(path, body) { render(await api(path, body)); }
async function submitQuery() { render(await api("/api/query", {keywords: document.getElementById("q").value})); }
async function profile(id) {
  const p = await api("/api/profile?id="+id);
  if (!p) return;
  let txt = p.name + "\n" + (p.abstract||"") + "\ntypes: " + p.types.join(", ") +
    "\ncategories: " + (p.categories||[]).join(", ") + "\n";
  (p.literals||[]).forEach(f => txt += "\n" + f.predicate + ": " + f.value);
  (p.facts||[]).forEach(f => txt += "\n" + f.predicate + " → " + f.value);
  (p.incoming||[]).forEach(f => txt += "\n" + f.predicate + " ← " + f.value);
  document.getElementById("profileText").textContent = txt;
}
document.getElementById("q").addEventListener("keydown", e => { if (e.key === "Enter") submitQuery(); });
api("/api/state").then(render);
</script>
</body>
</html>
`
