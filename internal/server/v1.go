package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"pivote/internal/apidto"
	"pivote/internal/core"
	"pivote/internal/obs"
	"pivote/internal/wire"
)

// GenerationHeader carries the generation a state-bearing response was
// evaluated on. The scatter-gather router refuses to merge pages from
// different generations (no single-process server could have produced
// that mix) and uses this header to detect it; the body stays untouched
// so single-process responses remain byte-identical.
const GenerationHeader = "X-Pivote-Generation"

func setGenHeader(w http.ResponseWriter, res *core.Result) {
	w.Header().Set(GenerationHeader, strconv.FormatUint(res.GenID, 10))
}

// The /api/v1 surface is the versioned form of the operation protocol:
//
//	POST /api/v1/ops      apply a batch of ops atomically under one lock
//	GET  /api/v1/state    evaluate the current query (?include= selects areas)
//	GET  /api/v1/session  download the op log (the session file)
//	POST /api/v1/session  replace the session by replaying an op log
//
// Every error is a typed envelope {"error":{"kind","message","opIndex"}}
// whose kind maps 1:1 onto the HTTP status (not_found→404, invalid→400,
// canceled→499, internal→500). Ops travel as core.OpDTO — the same
// symbolic wire form the session file uses, so replaying a saved session
// is literally POSTing its "ops" array back.

// statusClientClosedRequest is the nginx convention for "the client went
// away while we were working" — there is no standard code for a canceled
// context.
const statusClientClosedRequest = 499

// V1Error is the typed error envelope body.
type V1Error struct {
	Kind    core.ErrKind `json:"kind"`
	Message string       `json:"message"`
	// OpIndex locates the failing op of a batch (0-based), absent
	// otherwise.
	OpIndex *int `json:"opIndex,omitempty"`
}

type V1ErrorEnvelope struct {
	Error V1Error `json:"error"`
}

// opsRequest is the POST /api/v1/ops body.
type opsRequest struct {
	Ops []core.OpDTO `json:"ops"`
	// Include selects result areas ("entities,features,heatmap,timeline");
	// empty means all. The ?include= query parameter takes precedence.
	Include string `json:"include,omitempty"`
}

// OpsResponse is the success body: how many ops were applied plus the
// final state, pruned to the requested fields. Defined in apidto so the
// binary codec encodes the identical struct.
type OpsResponse = apidto.OpsResponse

// StatusOf maps a typed error kind onto its HTTP status. Exported so the
// scatter-gather router reproduces the exact status a shard node (or the
// single-process server) would have written.
func StatusOf(kind core.ErrKind) int {
	switch kind {
	case core.KindNotFound:
		return http.StatusNotFound
	case core.KindInvalid:
		return http.StatusBadRequest
	case core.KindCanceled:
		return statusClientClosedRequest
	case core.KindUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeV1Err(w http.ResponseWriter, err error, opIndex *int) {
	kind := core.KindOf(err)
	writeJSON(w, StatusOf(kind), V1ErrorEnvelope{Error: V1Error{
		Kind:    kind,
		Message: err.Error(),
		OpIndex: opIndex,
	}})
}

// includeOf resolves the field selection of a request: the ?include=
// query parameter wins over the body value; empty selects everything.
func includeOf(r *http.Request, body string) (core.Fields, error) {
	sel := r.URL.Query().Get("include")
	if sel == "" {
		sel = body
	}
	return core.ParseFields(sel)
}

// handleV1Ops applies a batch of ops under a single lock acquisition.
// The batch is atomic: on any failure nothing is applied and the
// envelope names the offending op. Ops are resolved against the graph
// before the lock is taken, so malformed batches never serialize behind
// the session.
func (s *Server) handleV1Ops(w http.ResponseWriter, r *http.Request) {
	wantWire := negotiateWire(w, r)
	var req opsRequest
	// Same 4 MB cap as the session-load endpoints: a session replay is
	// "POST the ops array back", so the two paths must accept the same
	// sizes — and neither may buffer an unbounded body.
	if isWireBody(r) {
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
		if err != nil {
			writeV1Err(w, core.Errf(core.KindInvalid, "read body: %v", err), nil)
			return
		}
		ops, include, err := wire.DecodeOpsRequest(raw)
		if err != nil {
			writeV1Err(w, core.Errf(core.KindInvalid, "bad request body: %v", err), nil)
			return
		}
		req = opsRequest{Ops: ops, Include: include}
		mWireReqWire.Inc()
	} else {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
			writeV1Err(w, core.Errf(core.KindInvalid, "bad request body: %v", err), nil)
			return
		}
		mWireReqJSON.Inc()
	}
	fields, err := includeOf(r, req.Include)
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	// One graph capture for the whole batch: every op resolves against
	// the same generation.
	g := s.graph()
	ops := make([]core.Op, 0, len(req.Ops))
	for i, d := range req.Ops {
		op, err := core.DecodeOp(g, d)
		if err != nil {
			i := i
			writeV1Err(w, err, &i)
			return
		}
		ops = append(ops, op)
	}
	// Tag the request's stage recorder with the op kind so slow-query
	// entries say what kind of turn was slow, not just which route.
	if rec := obs.RecorderOf(r.Context()); rec != nil {
		switch len(ops) {
		case 0:
		case 1:
			rec.SetOp(string(ops[0].Kind))
		default:
			rec.SetOp("batch")
		}
	}
	s.mu.Lock()
	res, applied, err := s.eng.ApplyOps(r.Context(), ops, fields)
	s.mu.Unlock()
	if err != nil {
		if applied < len(ops) {
			writeV1Err(w, err, &applied)
		} else {
			writeV1Err(w, err, nil) // evaluation failed, not an op
		}
		return
	}
	setGenHeader(w, res)
	st := ToStateV1DTO(resultGraph(s, res), res)
	if wantWire {
		writeWireOps(w, applied, &st)
		return
	}
	mWireRespJSON.Inc()
	writeJSON(w, http.StatusOK, OpsResponse{Applied: applied, State: st})
}

// handleV1State evaluates the current query, assembling only the
// requested areas — ?include=entities skips heat-map construction
// entirely.
func (s *Server) handleV1State(w http.ResponseWriter, r *http.Request) {
	wantWire := negotiateWire(w, r)
	fields, err := includeOf(r, "")
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	s.mu.RLock()
	res, err := s.eng.EvaluateCtx(r.Context(), fields)
	s.mu.RUnlock()
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	setGenHeader(w, res)
	st := ToStateV1DTO(resultGraph(s, res), res)
	if wantWire {
		writeWireState(w, &st)
		return
	}
	mWireRespJSON.Inc()
	writeJSON(w, http.StatusOK, st)
}

// handleV1SessionSave downloads the op log. The body is exactly what
// POST /api/v1/session (and the repl's load command) accepts.
func (s *Server) handleV1SessionSave(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	raw, err := s.eng.SaveSession()
	s.mu.RUnlock()
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="pivote-session.json"`)
	_, _ = w.Write(raw)
}

// handleV1SessionLoad replaces the session by replaying an op log; a
// failed replay leaves the previous session untouched. The endpoint
// mirrors /api/v1/ops: ?include= prunes the response the same way, and
// op-scoped failures carry the offending op's index in the envelope —
// the router repairs stale shards through this endpoint, and a client
// must not be able to tell a repaired response from a direct one.
func (s *Server) handleV1SessionLoad(w http.ResponseWriter, r *http.Request) {
	wantWire := negotiateWire(w, r)
	fields, err := includeOf(r, "")
	if err != nil {
		writeV1Err(w, err, nil)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeV1Err(w, core.Errf(core.KindInvalid, "read body: %v", err), nil)
		return
	}
	var res *core.Result
	var idx int
	if isWireBody(r) {
		ver, dtos, derr := wire.DecodeSessionFile(raw)
		if derr != nil {
			writeV1Err(w, core.Errf(core.KindInvalid, "session: %v", derr), nil)
			return
		}
		if ver != 2 {
			writeV1Err(w, core.Errf(core.KindInvalid, "session: unsupported version %d", ver), nil)
			return
		}
		mWireReqWire.Inc()
		s.mu.Lock()
		res, idx, err = s.eng.ReplayDTOsCtx(r.Context(), dtos, fields)
		s.mu.Unlock()
	} else {
		mWireReqJSON.Inc()
		s.mu.Lock()
		res, idx, err = s.eng.ReplaySessionCtx(r.Context(), raw, fields)
		s.mu.Unlock()
	}
	if err != nil {
		if idx >= 0 {
			writeV1Err(w, err, &idx)
		} else {
			writeV1Err(w, err, nil)
		}
		return
	}
	setGenHeader(w, res)
	st := ToStateV1DTO(resultGraph(s, res), res)
	if wantWire {
		writeWireState(w, &st)
		return
	}
	mWireRespJSON.Inc()
	writeJSON(w, http.StatusOK, st)
}
