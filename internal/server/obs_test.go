package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pivote/internal/obs"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestMetricsSurface: the three observability endpoints are served by
// the Multi front door without minting sessions, and /metrics carries
// engine-stage, live-store and HTTP route series after traffic.
func TestMetricsSurface(t *testing.T) {
	ts, _, _ := newLiveServer(t)

	// Drive one query through the op protocol so stage histograms move.
	resp := postJSON(t, ts.URL+"/api/v1/ops", map[string]interface{}{
		"ops": []map[string]interface{}{{"op": "submit", "keywords": "forrest gump"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ops status %d", resp.StatusCode)
	}
	resp.Body.Close()

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, series := range []string{
		`pivote_engine_stage_seconds_count{stage="search"}`,
		`pivote_engine_stage_seconds_count{stage="rank"}`,
		`pivote_engine_stage_seconds_count{stage="heatmap"}`,
		`pivote_ops_total{kind="submit"}`,
		`pivote_http_request_seconds_count{route="POST /api/v1/ops"}`,
		`pivote_http_requests_total{route="POST /api/v1/ops",class="2xx"}`,
		"pivote_live_generation",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics missing series %q", series)
		}
	}

	code, body = getBody(t, ts.URL+"/api/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/api/v1/stats status %d", code)
	}
	var stats struct {
		UptimeSeconds float64           `json:"uptimeSeconds"`
		Series        []json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.UptimeSeconds <= 0 || len(stats.Series) == 0 {
		t.Fatalf("stats dto: uptime=%v series=%d", stats.UptimeSeconds, len(stats.Series))
	}

	code, _ = getBody(t, ts.URL+"/api/v1/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("/api/v1/debug/slow status %d", code)
	}
}

// TestMetricsNoSession: scraping must not mint session cookies — a
// Prometheus scraper polling every few seconds would otherwise evict
// interactive sessions from the LRU.
func TestMetricsNoSession(t *testing.T) {
	ts, _, _ := newLiveServer(t)
	for _, path := range []string{"/metrics", "/api/v1/stats", "/api/v1/debug/slow"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, c := range resp.Cookies() {
			if c.Name == sessionCookie {
				t.Errorf("%s minted a session cookie", path)
			}
		}
	}
}

// TestLiveStatsBuildInfo: the /api/v1/live satellite fields.
func TestLiveStatsBuildInfo(t *testing.T) {
	ts, _, _ := newLiveServer(t)
	code, body := getBody(t, ts.URL+"/api/v1/live")
	if code != http.StatusOK {
		t.Fatalf("/api/v1/live status %d", code)
	}
	var ls LiveStats
	if err := json.Unmarshal([]byte(body), &ls); err != nil {
		t.Fatal(err)
	}
	if ls.UptimeSeconds <= 0 {
		t.Fatalf("uptimeSeconds = %v, want > 0", ls.UptimeSeconds)
	}
	if ls.GoVersion == "" {
		t.Fatal("goVersion missing (ReadBuildInfo should always carry it)")
	}
}

// TestSlowQueryCapture: with the threshold at zero every request is
// captured with its stage breakdown and op tag.
func TestSlowQueryCapture(t *testing.T) {
	ts, _, _ := newLiveServer(t)
	old := obs.SlowQueries.Threshold()
	obs.SlowQueries.SetThreshold(0)
	defer obs.SlowQueries.SetThreshold(old)

	resp := postJSON(t, ts.URL+"/api/v1/ops", map[string]interface{}{
		"ops": []map[string]interface{}{{"op": "submit", "keywords": "forrest gump"}},
	})
	resp.Body.Close()

	code, body := getBody(t, ts.URL+"/api/v1/debug/slow")
	if code != http.StatusOK {
		t.Fatalf("slow status %d", code)
	}
	var dto struct {
		Entries []obs.SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &dto); err != nil {
		t.Fatal(err)
	}
	var found *obs.SlowEntry
	for i := range dto.Entries {
		if dto.Entries[i].Route == "POST /api/v1/ops" && dto.Entries[i].Op == "submit" {
			found = &dto.Entries[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no captured submit entry in %d slow entries", len(dto.Entries))
	}
	if found.Status != http.StatusOK || found.TotalMs <= 0 {
		t.Fatalf("slow entry: %+v", *found)
	}
	if found.Stages["search"] <= 0 {
		t.Fatalf("slow entry missing search stage: %+v", found.Stages)
	}
}

// TestMetricsScrapeHammer races /metrics + /api/v1/stats +
// /api/v1/debug/slow scrapes against concurrent ingest and forced
// compaction swaps. Run with -race this is the acceptance hammer for
// the scrape-vs-write paths.
func TestMetricsScrapeHammer(t *testing.T) {
	ts, _, _ := newLiveServer(t)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: ingest batches, forcing a compaction swap every few.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			nt := fmt.Sprintf(`<http://pivote.dev/resource/Hammer_%d> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pivote.dev/ontology/Film> .`, i)
			resp := postJSON(t, ts.URL+"/api/v1/ingest", map[string]interface{}{
				"add":     nt,
				"compact": i%5 == 4,
			})
			resp.Body.Close()
		}
	}()

	// Readers: queries keep the stage histograms hot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp := postJSON(t, ts.URL+"/api/v1/ops", map[string]interface{}{
				"ops": []map[string]interface{}{{"op": "submit", "keywords": "forrest gump"}},
			})
			resp.Body.Close()
		}
	}()

	// Scrapers.
	for _, path := range []string{"/metrics", "/api/v1/stats", "/api/v1/debug/slow", "/api/v1/live"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}

	time.Sleep(1500 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The scrape after the dust settles must show swap activity.
	_, body := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(body, "pivote_live_swaps_total") {
		t.Fatal("no swap series after hammer")
	}
}
