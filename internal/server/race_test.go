package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
)

// TestMultiConcurrentSessions drives a Multi front end from many
// concurrent clients: several distinct sessions issuing mutating
// operations plus read-only traffic hammering one shared session. Under
// -race this verifies the shared read core (graph, search index, feature
// cache) and the per-session RWMutex discipline: reads proceed
// concurrently, mutations serialize, and nothing needs a global lock.
func TestMultiConcurrentSessions(t *testing.T) {
	fx := kgtest.Build()
	m := NewMulti(fx.Graph, core.Options{}, 32)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	newClient := func() *http.Client {
		jar := &cookieJar{}
		return &http.Client{Jar: jar}
	}

	post := func(c *http.Client, path string, body interface{}) error {
		raw, _ := json.Marshal(body)
		resp, err := c.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
		}
		return nil
	}
	get := func(c *http.Client, path string) error {
		resp, err := c.Get(ts.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}

	const writers = 4
	const readers = 4
	const iters = 15

	// One shared session exercised by all the readers while one writer
	// mutates it.
	sharedClient := newClient()
	if err := post(sharedClient, "/api/query", map[string]string{"keywords": "forrest"}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers+1)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newClient() // distinct cookie → distinct session
			for i := 0; i < iters; i++ {
				if err := post(c, "/api/query", map[string]string{"keywords": "hanks"}); err != nil {
					errs <- err
					return
				}
				if err := post(c, "/api/entity/add", map[string]string{"name": "Forrest_Gump"}); err != nil {
					errs <- err
					return
				}
				if err := post(c, "/api/pivot", map[string]string{"name": "Tom_Hanks"}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() { // writer on the shared session
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := post(sharedClient, "/api/entity/add", map[string]string{"name": "Apollo_13"}); err != nil {
				errs <- err
				return
			}
			if err := post(sharedClient, "/api/entity/remove", map[string]string{"name": "Apollo_13"}); err != nil {
				errs <- err
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, p := range []string{"/api/state", "/api/heatmap.svg", "/api/path.svg", "/api/suggest?q=gump"} {
					if err := get(sharedClient, p); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if n := m.SessionCount(); n < 2 {
		t.Fatalf("expected multiple sessions, got %d", n)
	}
}

// cookieJar is a minimal concurrency-safe jar: it remembers the last
// cookies set and replays them on every request, which is all the
// session-cookie flow needs.
type cookieJar struct {
	mu      sync.Mutex
	cookies []*http.Cookie
}

func (j *cookieJar) SetCookies(_ *url.URL, cookies []*http.Cookie) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(cookies) > 0 {
		j.cookies = cookies
	}
}

func (j *cookieJar) Cookies(_ *url.URL) []*http.Cookie {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cookies
}
