package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/obs"
	"pivote/internal/rdf"
	"pivote/internal/search"
	"pivote/internal/semfeat"
)

// Server serves one PivotE session over HTTP.
//
// Concurrency model: each generation's graph, search index and feature
// cache are immutable or internally synchronized, so read-only handlers
// (state, heat map, path renderings, suggest, explain, session save)
// evaluate concurrently under a read lock. Only handlers that mutate the
// session timeline (query, entity/feature ops, pivot, revisit, profile
// lookup, session load) serialize behind the write lock. Live ingest
// never takes the session lock at all — it goes straight to the shared
// generational store, which synchronizes writers itself.
type Server struct {
	mu  sync.RWMutex
	eng *core.Engine
}

// graph resolves the current generation's graph. It is re-read per use
// rather than cached at construction so that entities ingested after a
// compaction swap resolve immediately.
func (s *Server) graph() *kg.Graph { return s.eng.Graph() }

// New wraps a fresh engine over the graph.
func New(g *kg.Graph, opts core.Options) *Server {
	return &Server{eng: core.New(g, opts)}
}

// NewWithShared wraps a fresh session engine over a shared read core —
// the multi-session configuration, where building the search index per
// session would be prohibitive.
func NewWithShared(sh *core.Shared, opts core.Options) *Server {
	return &Server{eng: core.NewWithShared(sh, opts)}
}

// Handler returns the HTTP handler: the versioned operation protocol
// under /api/v1/, the legacy single-op JSON API under /api/, the
// observability surface (/metrics, /api/v1/stats, /api/v1/debug/slow),
// and the embedded UI at /. Both API generations drive the same
// Engine.Apply entry point; the legacy routes survive as one-op
// conveniences. Every API route is wrapped in the obs middleware: a
// per-route latency histogram + status-class counter, a pooled stage
// Recorder on the request context, and slow-query capture.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, obs.Instrument(obs.Default, obs.SlowQueries, pattern, h))
	}
	mux.HandleFunc("GET /{$}", s.handleUI)
	handle("POST /api/v1/ops", s.handleV1Ops)
	handle("GET /api/v1/state", s.handleV1State)
	handle("POST /api/v1/ingest", s.handleV1Ingest)
	handle("POST /api/v1/compact", s.handleV1Compact)
	handle("GET /api/v1/snapshot", s.handleV1Snapshot)
	handle("POST /api/v1/adopt", s.handleV1Adopt)
	handle("GET /api/v1/live", s.handleV1LiveStats)
	handle("GET /api/v1/session", s.handleV1SessionSave)
	handle("POST /api/v1/session", s.handleV1SessionLoad)
	handle("GET /api/state", s.handleState)
	handle("POST /api/query", s.handleQuery)
	handle("POST /api/entity/add", s.entityOp(core.OpAddSeed))
	handle("POST /api/entity/remove", s.entityOp(core.OpRemoveSeed))
	handle("POST /api/pivot", s.entityOp(core.OpPivot))
	handle("POST /api/feature/add", s.featureOp(core.OpAddFeature))
	handle("POST /api/feature/remove", s.featureOp(core.OpRemoveFeature))
	handle("POST /api/revisit", s.handleRevisit)
	handle("GET /api/profile", s.handleProfile)
	handle("GET /api/heatmap.svg", s.handleHeatmapSVG)
	handle("GET /api/path.svg", s.handlePathSVG)
	handle("GET /api/path.dot", s.handlePathDOT)
	handle("GET /api/suggest", s.handleSuggest)
	handle("GET /api/explain", s.handleExplain)
	handle("GET /api/session/save", s.handleSessionSave)
	handle("POST /api/session/load", s.handleSessionLoad)
	obs.MetricsRoutes(mux, obs.Default, obs.SlowQueries)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteJSON writes a response exactly the way every handler in this
// package does (same encoder, same Content-Type, same trailing newline).
// The scatter-gather router serves merged responses through it so a
// router response is byte-identical to a direct one.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	writeJSON(w, status, v)
}

// WriteV1Error writes the typed /api/v1 error envelope with the status
// derived from the error's kind — the exported twin of the v1 handlers'
// own error path, for the router.
func WriteV1Error(w http.ResponseWriter, err error, opIndex *int) {
	writeV1Err(w, err, opIndex)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorDTO{Error: fmt.Sprintf(format, args...)})
}

// writeEngineErr renders a typed engine error in the legacy envelope,
// with the status derived from its kind.
func writeEngineErr(w http.ResponseWriter, err error) {
	writeErr(w, StatusOf(core.KindOf(err)), "%v", err)
}

func (s *Server) writeState(w http.ResponseWriter, res *core.Result) {
	// Render against the generation the result was computed on, not the
	// one current at write time — a swap between evaluation and
	// serialization must not mix generations in one response.
	writeJSON(w, http.StatusOK, toStateDTO(resultGraph(s, res), res))
}

// resultGraph picks the graph to render a result with: the result's own
// pinned generation when it has one, the current generation otherwise.
func resultGraph(s *Server, res *core.Result) *kg.Graph {
	if g := res.Graph(); g != nil {
		return g
	}
	return s.graph()
}

func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	res, err := s.eng.EvaluateCtx(r.Context(), core.FieldsAll)
	s.mu.RUnlock()
	if err != nil {
		writeEngineErr(w, err)
		return
	}
	s.writeState(w, res)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Keywords string `json:"keywords"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.Lock()
	res, err := s.eng.Apply(r.Context(), core.OpSubmit(body.Keywords))
	s.mu.Unlock()
	if err != nil {
		writeEngineErr(w, err)
		return
	}
	s.writeState(w, res)
}

// resolveEntity accepts {"id": N} or {"name": "Forrest_Gump"}. The
// graph is captured once so validation and resolution agree on one
// generation even if a compaction swap lands mid-request.
func (s *Server) resolveEntity(r *http.Request) (rdf.TermID, error) {
	g := s.graph()
	var body struct {
		ID   uint32 `json:"id"`
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		return rdf.NoTerm, fmt.Errorf("bad request body: %v", err)
	}
	if body.ID != 0 {
		id := rdf.TermID(body.ID)
		if !g.IsEntity(id) {
			return rdf.NoTerm, fmt.Errorf("id %d is not an entity", body.ID)
		}
		return id, nil
	}
	if body.Name != "" {
		if id := g.EntityByName(body.Name); id != rdf.NoTerm {
			return id, nil
		}
		return rdf.NoTerm, fmt.Errorf("unknown entity %q", body.Name)
	}
	return rdf.NoTerm, fmt.Errorf("need id or name")
}

func (s *Server) entityOp(mk func(rdf.TermID) core.Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, err := s.resolveEntity(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.mu.Lock()
		res, err := s.eng.Apply(r.Context(), mk(id))
		s.mu.Unlock()
		if err != nil {
			writeEngineErr(w, err)
			return
		}
		s.writeState(w, res)
	}
}

func (s *Server) featureOp(mk func(semfeat.Feature) core.Op) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Label string `json:"label"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		f, err := semfeat.Parse(s.graph(), body.Label)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.mu.Lock()
		res, err := s.eng.Apply(r.Context(), mk(f))
		s.mu.Unlock()
		if err != nil {
			writeEngineErr(w, err)
			return
		}
		s.writeState(w, res)
	}
}

func (s *Server) handleRevisit(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Step int `json:"step"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.Lock()
	res, err := s.eng.Apply(r.Context(), core.OpRevisit(body.Step))
	s.mu.Unlock()
	if err != nil {
		writeEngineErr(w, err)
		return
	}
	s.writeState(w, res)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	g := s.graph()
	idStr := r.URL.Query().Get("id")
	name := r.URL.Query().Get("name")
	var id rdf.TermID
	switch {
	case idStr != "":
		n, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad id %q", idStr)
			return
		}
		id = rdf.TermID(n)
		if !g.IsEntity(id) {
			writeErr(w, http.StatusNotFound, "id %d is not an entity", n)
			return
		}
	case name != "":
		id = g.EntityByName(name)
		if id == rdf.NoTerm {
			writeErr(w, http.StatusNotFound, "unknown entity %q", name)
			return
		}
	default:
		writeErr(w, http.StatusBadRequest, "need id or name")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, toProfileDTO(s.eng.Lookup(id)))
}

// emptySVG is the minimal valid document served when no heat map
// exists yet: an empty body is not well-formed SVG and breaks strict
// <img> consumers.
const emptySVG = `<svg xmlns="http://www.w3.org/2000/svg" width="1" height="1"/>` + "\n"

func (s *Server) handleHeatmapSVG(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	// Field selection: only the heat map is needed, so entities and
	// features are computed but never copied and the timeline is skipped.
	res, err := s.eng.EvaluateCtx(r.Context(), core.FieldHeatmap)
	s.mu.RUnlock()
	if err != nil {
		writeEngineErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	if res.Heat == nil || len(res.Heat.Features) == 0 {
		_, _ = w.Write([]byte(emptySVG))
		return
	}
	_, _ = w.Write([]byte(res.Heat.SVG()))
}

func (s *Server) handlePathSVG(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	svg := s.eng.Session().PathSVG()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "image/svg+xml")
	_, _ = w.Write([]byte(svg))
}

func (s *Server) handlePathDOT(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	dot := s.eng.Session().PathDOT()
	s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(dot))
}

// handleExplain answers "why does this entity correlate with this
// feature?" — the §3.2 explanation ("both performed by Tom Hanks and
// Gary Sinise"). Query params: entity id, feature label.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	// One graph capture for the whole request: validation, probability
	// and name rendering must agree on a single generation.
	g := s.graph()
	idStr := r.URL.Query().Get("entity")
	label := r.URL.Query().Get("feature")
	n, err := strconv.ParseUint(idStr, 10, 32)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad entity id %q", idStr)
		return
	}
	id := rdf.TermID(n)
	if !g.IsEntity(id) {
		writeErr(w, http.StatusNotFound, "id %d is not an entity", n)
		return
	}
	f, err := semfeat.Parse(g, label)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	fe := s.eng.Features()
	prob := fe.Prob(f, id)
	holds := fe.Holds(id, f)
	s.mu.RUnlock()
	explanation := ""
	switch {
	case holds:
		explanation = g.Name(id) + " matches " + label
	case prob > 0:
		explanation = g.Name(id) + " is related to " + label + " through its category"
	default:
		explanation = g.Name(id) + " has no correlation with " + label
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"entity":      g.Name(id),
		"feature":     label,
		"holds":       holds,
		"probability": prob,
		"explanation": explanation,
	})
}

func (s *Server) handleSessionSave(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	raw, err := s.eng.SaveSession()
	s.mu.RUnlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="pivote-session.json"`)
	_, _ = w.Write(raw)
}

func (s *Server) handleSessionLoad(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	s.mu.Lock()
	res, err := s.eng.LoadSessionCtx(r.Context(), raw)
	s.mu.Unlock()
	if err != nil {
		writeEngineErr(w, err)
		return
	}
	s.writeState(w, res)
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeJSON(w, http.StatusOK, []EntityDTO{})
		return
	}
	s.mu.RLock()
	hits, err := s.eng.Searcher().SearchCtx(r.Context(), q, 10, search.ModelMLM)
	s.mu.RUnlock()
	if err != nil {
		writeEngineErr(w, err)
		return
	}
	out := make([]EntityDTO, 0, len(hits))
	for _, h := range hits {
		out = append(out, EntityDTO{ID: uint32(h.Entity), Name: h.Name, Score: h.Score})
	}
	writeJSON(w, http.StatusOK, out)
}
