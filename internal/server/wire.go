package server

import (
	"net/http"
	"strconv"
	"strings"
	"sync"

	"pivote/internal/obs"
	"pivote/internal/wire"
)

// Inter-node content negotiation.
//
// The binary codec (internal/wire) is strictly an intra-cluster
// optimization: JSON stays the public contract, and nothing about a
// response a browser or curl sees changes. The handshake is plain HTTP
// content negotiation with one advertisement header:
//
//	request   Accept: application/x-pivote-wire     "I can read wire"
//	          Content-Type: application/x-pivote-wire  (body is wire)
//	response  X-Pivote-Wire: 1                      "I can speak wire"
//	          Content-Type: application/x-pivote-wire  (body is wire)
//
// Only the state-bearing /api/v1 routes negotiate (ops, state, session
// load); everything else — ingest reports, snapshots, the session
// download (a user-facing file) — stays exactly as it was. The
// advertisement rides on EVERY negotiated response including error
// envelopes, so a router learns a replica's capability from the first
// hop no matter how it ends. Error envelopes themselves are always
// JSON: the router relays them verbatim to public clients, and a typed
// JSON envelope is the public contract for failures.
//
// A node that predates the codec simply never sends the advertisement
// and never sees a wire body (the router only encodes after seeing
// X-Pivote-Wire), so mixed-version clusters degrade per-hop to JSON
// instead of breaking.

// WireHeader is the capability advertisement: a server that can decode
// and encode the binary codec sets it to wire.Version on every
// negotiated route. Exported for the router, which sniffs it to decide
// when to start sending wire-encoded request bodies.
const WireHeader = "X-Pivote-Wire"

// Codec traffic counters: which codec request bodies arrived in and
// responses left in, on the negotiated routes only.
var (
	mWireReqWire  = obs.Default.Counter("pivote_wire_requests_total", "State-bearing /api/v1 request bodies by codec.", obs.L("codec", "wire"))
	mWireReqJSON  = obs.Default.Counter("pivote_wire_requests_total", "State-bearing /api/v1 request bodies by codec.", obs.L("codec", "json"))
	mWireRespWire = obs.Default.Counter("pivote_wire_responses_total", "State-bearing /api/v1 responses by codec.", obs.L("codec", "wire"))
	mWireRespJSON = obs.Default.Counter("pivote_wire_responses_total", "State-bearing /api/v1 responses by codec.", obs.L("codec", "json"))

	mWireEncPoolHit  = obs.Default.Counter("pivote_wire_encode_pool_total", "Wire encode-buffer pool fetches.", obs.L("outcome", "hit"))
	mWireEncPoolMiss = obs.Default.Counter("pivote_wire_encode_pool_total", "Wire encode-buffer pool fetches.", obs.L("outcome", "miss"))
)

// negotiateWire advertises codec support on the response and reports
// whether the peer asked for a wire-encoded body. Called first thing in
// every negotiated handler, before any write, so even an error envelope
// carries the advertisement.
func negotiateWire(w http.ResponseWriter, r *http.Request) bool {
	w.Header().Set(WireHeader, strconv.Itoa(wire.Version))
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

// isWireBody reports whether the request body is wire-encoded.
func isWireBody(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == wire.ContentType || strings.HasPrefix(ct, wire.ContentType+";")
}

// wireEncPool recycles encode buffers across responses; state pages are
// a few KB, so steady-state serving stops allocating for them entirely.
var wireEncPool = sync.Pool{New: func() any { return new([]byte) }}

func wireEncBuf() *[]byte {
	bp := wireEncPool.Get().(*[]byte)
	if cap(*bp) > 0 {
		mWireEncPoolHit.Inc()
	} else {
		mWireEncPoolMiss.Inc()
	}
	return bp
}

// writeWire sends one encoded message. The explicit Content-Length lets
// the router size its pooled read buffer exactly.
func writeWire(w http.ResponseWriter, enc []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(enc)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(enc)
	mWireRespWire.Inc()
}

// writeWireState is the wire twin of writeJSON(StateV1DTO).
func writeWireState(w http.ResponseWriter, st *StateV1DTO) {
	bp := wireEncBuf()
	enc := wire.AppendState((*bp)[:0], st)
	writeWire(w, enc)
	*bp = enc[:0]
	wireEncPool.Put(bp)
}

// writeWireOps is the wire twin of writeJSON(OpsResponse).
func writeWireOps(w http.ResponseWriter, applied int, st *StateV1DTO) {
	bp := wireEncBuf()
	enc := wire.AppendOpsResponse((*bp)[:0], applied, st)
	writeWire(w, enc)
	*bp = enc[:0]
	wireEncPool.Put(bp)
}
