package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
)

// doV1 issues a request with a JSON string body (GET when body == "").
func doV1(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func decodeV1Err(t *testing.T, raw []byte) V1Error {
	t.Helper()
	var env V1ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error body is not a typed envelope: %v\n%s", err, raw)
	}
	if env.Error.Kind == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing kind/message: %s", raw)
	}
	return env.Error
}

// TestV1EndpointErrors is the table-driven status-code + envelope sweep
// over the whole v1 surface.
func TestV1EndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name    string
		method  string
		path    string
		body    string
		status  int
		kind    core.ErrKind
		opIndex *int
	}{
		{"ops: bad json", "POST", "/api/v1/ops", `{bad`, 400, core.KindInvalid, nil},
		{"ops: unknown op kind", "POST", "/api/v1/ops",
			`{"ops":[{"op":"explode"}]}`, 400, core.KindInvalid, intp(0)},
		{"ops: unknown entity", "POST", "/api/v1/ops",
			`{"ops":[{"op":"submit","keywords":"x"},{"op":"add-entity","entity":"Zzz_Nope"}]}`,
			404, core.KindNotFound, intp(1)},
		{"ops: bad entity id", "POST", "/api/v1/ops",
			`{"ops":[{"op":"pivot","entityId":999999}]}`, 404, core.KindNotFound, intp(0)},
		{"ops: bad feature", "POST", "/api/v1/ops",
			`{"ops":[{"op":"add-feature","feature":"garbage"}]}`, 400, core.KindInvalid, intp(0)},
		{"ops: bad revisit step", "POST", "/api/v1/ops",
			`{"ops":[{"op":"revisit","step":99}]}`, 400, core.KindInvalid, intp(0)},
		{"ops: bad include", "POST", "/api/v1/ops",
			`{"ops":[],"include":"entities,bogus"}`, 400, core.KindInvalid, nil},
		{"state: bad include", "GET", "/api/v1/state?include=bogus", "", 400, core.KindInvalid, nil},
		{"session: bad json", "POST", "/api/v1/session", `{bad`, 400, core.KindInvalid, nil},
		{"session: bad version", "POST", "/api/v1/session", `{"version":9}`, 400, core.KindInvalid, nil},
		// Session replay mirrors the ops endpoint: op-scoped failures
		// carry the offending op's index, so a router repairing a shard
		// through this endpoint serves indistinguishable envelopes.
		{"session: unknown entity", "POST", "/api/v1/session",
			`{"version":2,"ops":[{"op":"add-entity","entity":"Zzz_Nope"}]}`, 404, core.KindNotFound, intp(0)},
		{"session: bad include", "POST", "/api/v1/session?include=bogus",
			`{"version":2,"ops":[]}`, 400, core.KindInvalid, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := doV1(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, raw)
			}
			e := decodeV1Err(t, raw)
			if e.Kind != tc.kind {
				t.Fatalf("kind = %s, want %s", e.Kind, tc.kind)
			}
			switch {
			case tc.opIndex == nil && e.OpIndex != nil:
				t.Fatalf("unexpected opIndex %d", *e.OpIndex)
			case tc.opIndex != nil && (e.OpIndex == nil || *e.OpIndex != *tc.opIndex):
				t.Fatalf("opIndex = %v, want %d", e.OpIndex, *tc.opIndex)
			}
		})
	}
}

func intp(i int) *int { return &i }

// TestV1OpsSuccess covers the happy path of every op kind in one batch.
func TestV1OpsSuccess(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"ops":[
		{"op":"submit","keywords":"forrest gump"},
		{"op":"add-entity","entity":"Forrest_Gump"},
		{"op":"add-feature","feature":"Tom_Hanks:starring"},
		{"op":"remove-feature","feature":"Tom_Hanks:starring"},
		{"op":"lookup","entity":"Apollo_13"},
		{"op":"pivot","entity":"Tom_Hanks"},
		{"op":"remove-entity","entity":"Tom_Hanks"},
		{"op":"revisit","step":2}
	]}`
	resp, raw := doV1(t, "POST", ts.URL+"/api/v1/ops", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var out OpsResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Applied != 8 {
		t.Fatalf("applied = %d, want 8", out.Applied)
	}
	if len(out.State.Timeline) != 8 {
		t.Fatalf("timeline = %d actions, want 8", len(out.State.Timeline))
	}
	if !strings.Contains(out.State.Description, "Forrest Gump") {
		t.Fatalf("description = %q", out.State.Description)
	}
	if len(out.State.Entities) == 0 || out.State.Heat == nil {
		t.Fatal("full include did not assemble entities + heat map")
	}
}

// TestV1BatchEquivalence replays a session op log as one batch and
// asserts the final v1 state is byte-identical to the state reached by
// the equivalent sequence of legacy single-op calls.
func TestV1BatchEquivalence(t *testing.T) {
	legacyTS, _ := newTestServer(t)
	batchTS, _ := newTestServer(t)

	// Drive the legacy server op by op.
	postJSON(t, legacyTS.URL+"/api/query", map[string]string{"keywords": "forrest gump"})
	postJSON(t, legacyTS.URL+"/api/entity/add", map[string]string{"name": "Forrest_Gump"})
	postJSON(t, legacyTS.URL+"/api/feature/add", map[string]string{"label": "Tom_Hanks:starring"})
	postJSON(t, legacyTS.URL+"/api/pivot", map[string]string{"name": "Tom_Hanks"})
	postJSON(t, legacyTS.URL+"/api/revisit", map[string]int{"step": 2})

	// The same ops as one atomic batch (one lock acquisition, one
	// evaluation) on a fresh server.
	resp, raw := doV1(t, "POST", batchTS.URL+"/api/v1/ops", `{"ops":[
		{"op":"submit","keywords":"forrest gump"},
		{"op":"add-entity","entity":"Forrest_Gump"},
		{"op":"add-feature","feature":"Tom_Hanks:starring"},
		{"op":"pivot","entity":"Tom_Hanks"},
		{"op":"revisit","step":2}
	]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, raw)
	}

	_, legacyState := doV1(t, "GET", legacyTS.URL+"/api/v1/state", "")
	_, batchState := doV1(t, "GET", batchTS.URL+"/api/v1/state", "")
	if !bytes.Equal(legacyState, batchState) {
		t.Fatalf("batched replay diverged from sequential legacy calls:\nlegacy: %s\nbatch:  %s",
			legacyState, batchState)
	}

	// The op logs are byte-identical too: a session file saved from
	// either server replays on the other.
	_, legacyLog := doV1(t, "GET", legacyTS.URL+"/api/v1/session", "")
	_, batchLog := doV1(t, "GET", batchTS.URL+"/api/v1/session", "")
	if !bytes.Equal(legacyLog, batchLog) {
		t.Fatalf("op logs differ:\nlegacy: %s\nbatch: %s", legacyLog, batchLog)
	}
}

// TestV1BatchAtomicRollback: a failing op voids the whole batch.
func TestV1BatchAtomicRollback(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, raw := doV1(t, "POST", ts.URL+"/api/v1/ops", `{"ops":[
		{"op":"submit","keywords":"forrest gump"},
		{"op":"revisit","step":77}
	]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	e := decodeV1Err(t, raw)
	if e.OpIndex == nil || *e.OpIndex != 1 {
		t.Fatalf("opIndex = %v, want 1", e.OpIndex)
	}
	// Nothing applied: state is still the empty query.
	_, raw = doV1(t, "GET", ts.URL+"/api/v1/state?include=timeline", "")
	var st StateV1DTO
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Description != "(empty query)" || len(st.Timeline) != 0 {
		t.Fatalf("failed batch left state behind: %s", raw)
	}
}

// TestV1IncludeSkipsHeatmap: the acceptance criterion that
// ?include=entities demonstrably skips heat-map construction.
func TestV1IncludeSkipsHeatmap(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, raw := doV1(t, "POST", ts.URL+"/api/v1/ops",
		`{"ops":[{"op":"submit","keywords":"forrest gump"},{"op":"add-entity","entity":"Forrest_Gump"}],"include":"entities"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var out OpsResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.State.Entities) == 0 {
		t.Fatal("no entities")
	}
	if out.State.Heat != nil || out.State.Features != nil || out.State.Timeline != nil {
		t.Fatal("include=entities assembled unrequested areas")
	}
	if bytes.Contains(raw, []byte(`"heat"`)) || bytes.Contains(raw, []byte(`"features"`)) {
		t.Fatalf("payload carries unrequested keys: %s", raw)
	}

	// The same query via GET with explicit selections.
	_, entOnly := doV1(t, "GET", ts.URL+"/api/v1/state?include=entities", "")
	if bytes.Contains(entOnly, []byte(`"heat"`)) {
		t.Fatalf("state include=entities built a heat map: %s", entOnly)
	}
	_, withHeat := doV1(t, "GET", ts.URL+"/api/v1/state?include=entities,heatmap", "")
	if !bytes.Contains(withHeat, []byte(`"heat"`)) {
		t.Fatal("state include=heatmap did not build the heat map")
	}
}

// TestV1SessionRoundTrip: GET /api/v1/session is a replayable op log
// accepted verbatim by POST /api/v1/session on a fresh server.
func TestV1SessionRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	doV1(t, "POST", ts.URL+"/api/v1/ops",
		`{"ops":[{"op":"submit","keywords":"forrest gump"},{"op":"add-entity","entity":"Forrest_Gump"}]}`)
	resp, log := doV1(t, "GET", ts.URL+"/api/v1/session", "")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(log, []byte(`"version": 2`)) {
		t.Fatalf("session download = %d: %s", resp.StatusCode, log)
	}

	ts2, _ := newTestServer(t)
	resp, raw := doV1(t, "POST", ts2.URL+"/api/v1/session", string(log))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session load = %d: %s", resp.StatusCode, raw)
	}
	var st StateV1DTO
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.Description, "Forrest Gump") || len(st.Timeline) != 2 {
		t.Fatalf("replayed state = %s", raw)
	}
}

// TestHeatmapSVGBothBranches covers the empty and populated heat-map
// renderings: an empty session must still serve a valid SVG document.
func TestHeatmapSVGBothBranches(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, raw := doV1(t, "GET", ts.URL+"/api/heatmap.svg", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty-branch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(string(raw), "<svg") || !strings.Contains(string(raw), "xmlns") {
		t.Fatalf("empty branch is not a valid SVG document: %q", raw)
	}

	doV1(t, "POST", ts.URL+"/api/v1/ops", `{"ops":[{"op":"add-entity","entity":"Forrest_Gump"}]}`)
	resp, full := doV1(t, "GET", ts.URL+"/api/heatmap.svg", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(full), "<svg") {
		t.Fatalf("populated branch = %d: %.80s", resp.StatusCode, full)
	}
	if len(full) <= len(raw) {
		t.Fatal("populated heat map not larger than the empty placeholder")
	}
}

// TestMultiLRUTouch: an active session survives eviction pressure that
// removes an idle one (the O(1) recency list must actually track use).
func TestMultiLRUTouch(t *testing.T) {
	f := kgtest.Build()
	m := NewMulti(f.Graph, core.Options{TopEntities: 5, TopFeatures: 5}, 2)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()

	alice := clientWithJar(t)
	bob := clientWithJar(t)
	postQuery(t, alice, ts.URL, "gump")
	postQuery(t, bob, ts.URL, "apollo")

	// Touch alice so bob becomes least-recently-used, then let carol
	// force an eviction.
	getState(t, alice, ts.URL)
	carol := clientWithJar(t)
	postQuery(t, carol, ts.URL, "hanks")

	if got := m.SessionCount(); got != 2 {
		t.Fatalf("sessions = %d, want 2", got)
	}
	// Alice kept her session (timeline intact)...
	if st := getState(t, alice, ts.URL); len(st.Timeline) != 1 {
		t.Fatalf("alice evicted: timeline = %d", len(st.Timeline))
	}
	// ...while bob was evicted and restarts fresh.
	if st := getState(t, bob, ts.URL); len(st.Timeline) != 0 {
		t.Fatalf("bob not evicted: timeline = %d", len(st.Timeline))
	}
}
