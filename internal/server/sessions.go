package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"

	"pivote/internal/core"
	"pivote/internal/kg"
	"pivote/internal/obs"
)

// Multi serves independent PivotE sessions to multiple users over one
// shared read core (graph, search index, feature cache — built once).
// Each browser gets a cookie-keyed session engine, a few allocations to
// create; an LRU bound caps memory. Requests from different sessions
// never contend: the shared core is internally synchronized and each
// session carries its own lock.
type Multi struct {
	mu       sync.Mutex
	shared   *core.Shared
	opts     core.Options
	max      int
	sessions map[string]*sessionEntry
	// lru orders tokens most-recently-used first; each entry keeps its
	// own element so a touch is an O(1) MoveToFront instead of the O(n)
	// slice scan it replaced — per-request cost must not grow with the
	// session count.
	lru *list.List // of string tokens
}

type sessionEntry struct {
	srv     *Server
	handler http.Handler
	elem    *list.Element
}

const sessionCookie = "pivote_session"

// NewMulti creates a multi-session front end. maxSessions <= 0 defaults
// to 64.
func NewMulti(g *kg.Graph, opts core.Options, maxSessions int) *Multi {
	return NewMultiShared(core.NewShared(g, opts), opts, maxSessions)
}

// NewMultiShared creates a multi-session front end over an existing
// shared core — the live configuration builds the core with
// core.NewLiveShared first so that every session shares one generational
// store (and therefore sees every ingested triple after the next swap).
func NewMultiShared(sh *core.Shared, opts core.Options, maxSessions int) *Multi {
	if maxSessions <= 0 {
		maxSessions = 64
	}
	return &Multi{
		shared:   sh,
		opts:     opts,
		max:      maxSessions,
		sessions: map[string]*sessionEntry{},
		lru:      list.New(),
	}
}

// Shared exposes the shared read core (for pre-warming and diagnostics).
func (m *Multi) Shared() *core.Shared { return m.shared }

// SessionCount reports the number of live sessions.
func (m *Multi) SessionCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Handler returns the dispatching handler: it assigns a session cookie on
// first contact and routes every request to that session's engine.
func (m *Multi) Handler() http.Handler {
	metrics := obs.MetricsHandler(obs.Default)
	stats := obs.StatsHandler(obs.Default)
	slow := obs.SlowHandler(obs.SlowQueries)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The observability surface is session-free: a Prometheus
		// scraper hitting /metrics every few seconds must not mint
		// cookies and churn real sessions out of the LRU.
		if r.Method == http.MethodGet && obs.IsMetricsPath(r.URL.Path) {
			switch r.URL.Path {
			case "/metrics":
				metrics.ServeHTTP(w, r)
			case "/api/v1/stats":
				stats.ServeHTTP(w, r)
			default:
				slow.ServeHTTP(w, r)
			}
			return
		}
		token := ""
		if c, err := r.Cookie(sessionCookie); err == nil && c.Value != "" {
			token = c.Value
		}
		entry, token := m.getOrCreate(token)
		http.SetCookie(w, &http.Cookie{
			Name:     sessionCookie,
			Value:    token,
			Path:     "/",
			HttpOnly: true,
			SameSite: http.SameSiteLaxMode,
		})
		entry.handler.ServeHTTP(w, r)
	})
}

func (m *Multi) getOrCreate(token string) (*sessionEntry, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.sessions[token]; ok {
		m.lru.MoveToFront(e.elem)
		return e, token
	}
	// The early return above means token is unknown (or empty): always
	// mint a fresh one rather than adopting a client-supplied value.
	token = newToken()
	srv := NewWithShared(m.shared, m.opts)
	e := &sessionEntry{srv: srv, handler: srv.Handler()}
	e.elem = m.lru.PushFront(token)
	m.sessions[token] = e
	for len(m.sessions) > m.max {
		oldest := m.lru.Back()
		m.lru.Remove(oldest)
		delete(m.sessions, oldest.Value.(string))
	}
	return e, token
}

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; a panic is
		// more honest than serving predictable session tokens.
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
