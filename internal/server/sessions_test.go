package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
)

func newMultiServer(t *testing.T, maxSessions int) *httptest.Server {
	t.Helper()
	f := kgtest.Build()
	m := NewMulti(f.Graph, core.Options{TopEntities: 5, TopFeatures: 5}, maxSessions)
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func clientWithJar(t *testing.T) *http.Client {
	t.Helper()
	jar, err := cookiejar.New(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &http.Client{Jar: jar}
}

func postQuery(t *testing.T, c *http.Client, url, keywords string) stateDTO {
	t.Helper()
	raw, _ := json.Marshal(map[string]string{"keywords": keywords})
	resp, err := c.Post(url+"/api/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st stateDTO
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getState(t *testing.T, c *http.Client, url string) stateDTO {
	t.Helper()
	resp, err := c.Get(url + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st stateDTO
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMultiSessionIsolation(t *testing.T) {
	ts := newMultiServer(t, 8)
	alice := clientWithJar(t)
	bob := clientWithJar(t)

	postQuery(t, alice, ts.URL, "forrest gump")
	postQuery(t, bob, ts.URL, "apollo")

	aliceState := getState(t, alice, ts.URL)
	bobState := getState(t, bob, ts.URL)
	if !strings.Contains(aliceState.Description, "forrest gump") {
		t.Fatalf("alice sees %q", aliceState.Description)
	}
	if !strings.Contains(bobState.Description, "apollo") {
		t.Fatalf("bob sees %q", bobState.Description)
	}
	if len(aliceState.Timeline) != 1 || len(bobState.Timeline) != 1 {
		t.Fatal("timelines leaked between sessions")
	}
}

func TestMultiSessionCookiePersistence(t *testing.T) {
	ts := newMultiServer(t, 8)
	c := clientWithJar(t)
	postQuery(t, c, ts.URL, "gump")
	postQuery(t, c, ts.URL, "apollo")
	st := getState(t, c, ts.URL)
	if len(st.Timeline) != 2 {
		t.Fatalf("timeline = %d actions, want 2 (same session)", len(st.Timeline))
	}
}

func TestMultiSessionEviction(t *testing.T) {
	f := kgtest.Build()
	m := NewMulti(f.Graph, core.Options{}, 2)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		c := clientWithJar(t)
		postQuery(t, c, ts.URL, "gump")
	}
	if got := m.SessionCount(); got > 2 {
		t.Fatalf("sessions = %d, want <= 2", got)
	}
}

func TestSessionSaveLoadEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	postJSON(t, ts.URL+"/api/query", map[string]string{"keywords": "forrest gump"})
	postJSON(t, ts.URL+"/api/entity/add", map[string]string{"name": "Forrest_Gump"})

	resp, err := http.Get(ts.URL + "/api/session/save")
	if err != nil {
		t.Fatal(err)
	}
	saved := new(bytes.Buffer)
	_, _ = saved.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(saved.String(), "Forrest_Gump") {
		t.Fatal("saved session lacks the seed")
	}

	// Load into a fresh server.
	ts2, _ := newTestServer(t)
	resp2, err := http.Post(ts2.URL+"/api/session/load", "application/json", bytes.NewReader(saved.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	st := decodeState(t, resp2)
	if !strings.Contains(st.Description, "Forrest Gump") {
		t.Fatalf("loaded description = %q", st.Description)
	}
	if len(st.Timeline) != 2 {
		t.Fatalf("loaded timeline = %d actions", len(st.Timeline))
	}

	// Malformed load is rejected.
	resp3, err := http.Post(ts2.URL+"/api/session/load", "application/json", strings.NewReader("{bad"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad load status = %d", resp3.StatusCode)
	}
}
