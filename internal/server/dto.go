// Package server exposes a PivotE engine over HTTP: a JSON API mirroring
// every interaction of the paper's interface plus an embedded
// single-page web UI. One Server wraps one engine (one user session);
// requests are serialized with a mutex because the underlying session is
// stateful.
package server

import (
	"pivote/internal/core"
	"pivote/internal/heatmap"
	"pivote/internal/kg"
	"pivote/internal/session"
)

// stateDTO is the JSON form of a core.Result.
type stateDTO struct {
	Description string          `json:"description"`
	Entities    []entityDTO     `json:"entities"`
	Features    []featureDTO    `json:"features"`
	Heat        *heatmap.Matrix `json:"heat,omitempty"`
	Timeline    []timelineDTO   `json:"timeline"`
}

type entityDTO struct {
	ID    uint32  `json:"id"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
	Type  string  `json:"type,omitempty"`
}

type featureDTO struct {
	Label      string  `json:"label"`
	AnchorID   uint32  `json:"anchorId"`
	R          float64 `json:"r"`
	ExtentSize int     `json:"extentSize"`
}

type timelineDTO struct {
	Step         int    `json:"step"`
	Kind         string `json:"kind"`
	Label        string `json:"label"`
	RevisitOf    int    `json:"revisitOf,omitempty"`
	ChangesQuery bool   `json:"changesQuery"`
}

type profileDTO struct {
	ID         uint32    `json:"id"`
	IRI        string    `json:"iri"`
	Name       string    `json:"name"`
	Abstract   string    `json:"abstract,omitempty"`
	Types      []string  `json:"types"`
	Categories []string  `json:"categories"`
	Facts      []factDTO `json:"facts"`
	Literals   []factDTO `json:"literals"`
	Incoming   []factDTO `json:"incoming"`
}

type factDTO struct {
	Predicate string `json:"predicate"`
	Value     string `json:"value"`
}

type errorDTO struct {
	Error string `json:"error"`
}

// stateV1DTO is the /api/v1 state shape: identical to stateDTO except
// that unrequested areas are omitted entirely (the engine leaves them
// nil under field selection), so a ?include=entities response carries no
// feature, heat-map or timeline payload at all.
type stateV1DTO struct {
	Description string          `json:"description"`
	Entities    []entityDTO     `json:"entities,omitempty"`
	Features    []featureDTO    `json:"features,omitempty"`
	Heat        *heatmap.Matrix `json:"heat,omitempty"`
	Timeline    []timelineDTO   `json:"timeline,omitempty"`
}

func toStateV1DTO(g *kg.Graph, res *core.Result) stateV1DTO {
	full := toStateDTO(g, res)
	return stateV1DTO{
		Description: full.Description,
		Entities:    full.Entities,
		Features:    full.Features,
		Heat:        full.Heat,
		Timeline:    full.Timeline,
	}
}

func toStateDTO(g *kg.Graph, res *core.Result) stateDTO {
	dto := stateDTO{Description: res.Description, Heat: res.Heat}
	for _, e := range res.Entities {
		typeName := ""
		if t := g.PrimaryType(e.Entity); t != 0 {
			typeName = g.Name(t)
		}
		dto.Entities = append(dto.Entities, entityDTO{
			ID: uint32(e.Entity), Name: e.Name, Score: e.Score, Type: typeName,
		})
	}
	for _, f := range res.Features {
		dto.Features = append(dto.Features, featureDTO{
			Label:      f.Label,
			AnchorID:   uint32(f.Feature.Anchor),
			R:          f.R,
			ExtentSize: f.ExtentSize,
		})
	}
	dto.Timeline = toTimelineDTO(res.Timeline)
	return dto
}

func toTimelineDTO(actions []session.Action) []timelineDTO {
	out := make([]timelineDTO, 0, len(actions))
	for _, a := range actions {
		out = append(out, timelineDTO{
			Step:         a.Step,
			Kind:         a.Kind.String(),
			Label:        a.Label,
			RevisitOf:    a.RevisitOf,
			ChangesQuery: a.ChangesQuery,
		})
	}
	return out
}

func toProfileDTO(p kg.Profile) profileDTO {
	conv := func(fs []kg.Fact) []factDTO {
		out := make([]factDTO, 0, len(fs))
		for _, f := range fs {
			out = append(out, factDTO{Predicate: f.Predicate, Value: f.Value})
		}
		return out
	}
	return profileDTO{
		ID:         uint32(p.ID),
		IRI:        p.IRI,
		Name:       p.Name,
		Abstract:   p.Abstract,
		Types:      p.Types,
		Categories: p.Categories,
		Facts:      conv(p.Facts),
		Literals:   conv(p.Literals),
		Incoming:   conv(p.InvertedIn),
	}
}
