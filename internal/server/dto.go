// Package server exposes a PivotE engine over HTTP: a JSON API mirroring
// every interaction of the paper's interface plus an embedded
// single-page web UI. One Server wraps one engine (one user session);
// requests are serialized with a mutex because the underlying session is
// stateful.
package server

import (
	"pivote/internal/apidto"
	"pivote/internal/core"
	"pivote/internal/heatmap"
	"pivote/internal/kg"
	"pivote/internal/session"
)

// stateDTO is the JSON form of a core.Result.
type stateDTO struct {
	Description string          `json:"description"`
	Entities    []EntityDTO     `json:"entities"`
	Features    []FeatureDTO    `json:"features"`
	Heat        *heatmap.Matrix `json:"heat,omitempty"`
	Timeline    []TimelineDTO   `json:"timeline"`
}

// The v1 wire types live in internal/apidto (a leaf package shared with
// the inter-node binary codec in internal/wire) and are re-exported
// here under their historical names, so the server, the router and the
// codec all speak the exact same struct definitions.
type (
	EntityDTO   = apidto.EntityDTO
	FeatureDTO  = apidto.FeatureDTO
	TimelineDTO = apidto.TimelineDTO
)

type profileDTO struct {
	ID         uint32    `json:"id"`
	IRI        string    `json:"iri"`
	Name       string    `json:"name"`
	Abstract   string    `json:"abstract,omitempty"`
	Types      []string  `json:"types"`
	Categories []string  `json:"categories"`
	Facts      []factDTO `json:"facts"`
	Literals   []factDTO `json:"literals"`
	Incoming   []factDTO `json:"incoming"`
}

type factDTO struct {
	Predicate string `json:"predicate"`
	Value     string `json:"value"`
}

type errorDTO struct {
	Error string `json:"error"`
}

// StateV1DTO is the /api/v1 state shape: identical to stateDTO except
// that unrequested areas are omitted entirely (the engine leaves them
// nil under field selection), so a ?include=entities response carries no
// feature, heat-map or timeline payload at all. Exported (with the rest
// of the v1 wire types) so the scatter-gather router can decode, merge
// and re-encode shard responses without drifting from the shapes the
// shard nodes serve.
type StateV1DTO = apidto.StateV1DTO

// ToStateV1DTO renders a result in the v1 wire shape against the graph
// it was evaluated on.
func ToStateV1DTO(g *kg.Graph, res *core.Result) StateV1DTO {
	full := toStateDTO(g, res)
	return StateV1DTO{
		Description: full.Description,
		Entities:    full.Entities,
		Features:    full.Features,
		Heat:        full.Heat,
		Timeline:    full.Timeline,
		Fallback:    res.Fallback,
	}
}

func toStateDTO(g *kg.Graph, res *core.Result) stateDTO {
	dto := stateDTO{Description: res.Description, Heat: res.Heat}
	for _, e := range res.Entities {
		typeName := ""
		if t := g.PrimaryType(e.Entity); t != 0 {
			typeName = g.Name(t)
		}
		dto.Entities = append(dto.Entities, EntityDTO{
			ID: uint32(e.Entity), Name: e.Name, Score: e.Score, Type: typeName,
		})
	}
	for _, f := range res.Features {
		dto.Features = append(dto.Features, FeatureDTO{
			Label:      f.Label,
			AnchorID:   uint32(f.Feature.Anchor),
			R:          f.R,
			ExtentSize: f.ExtentSize,
		})
	}
	dto.Timeline = toTimelineDTO(res.Timeline)
	return dto
}

func toTimelineDTO(actions []session.Action) []TimelineDTO {
	out := make([]TimelineDTO, 0, len(actions))
	for _, a := range actions {
		out = append(out, TimelineDTO{
			Step:         a.Step,
			Kind:         a.Kind.String(),
			Label:        a.Label,
			RevisitOf:    a.RevisitOf,
			ChangesQuery: a.ChangesQuery,
		})
	}
	return out
}

func toProfileDTO(p kg.Profile) profileDTO {
	conv := func(fs []kg.Fact) []factDTO {
		out := make([]factDTO, 0, len(fs))
		for _, f := range fs {
			out = append(out, factDTO{Predicate: f.Predicate, Value: f.Value})
		}
		return out
	}
	return profileDTO{
		ID:         uint32(p.ID),
		IRI:        p.IRI,
		Name:       p.Name,
		Abstract:   p.Abstract,
		Types:      p.Types,
		Categories: p.Categories,
		Facts:      conv(p.Facts),
		Literals:   conv(p.Literals),
		Incoming:   conv(p.InvertedIn),
	}
}
