package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
)

// newLiveServer builds a Multi over a live-enabled shared core — the
// -live deployment shape — so the test exercises the same session-cookie
// routing real ingest traffic takes.
func newLiveServer(t *testing.T) (*httptest.Server, *core.Shared, *kgtest.Fixture) {
	t.Helper()
	f := kgtest.Build()
	opts := core.Options{TopEntities: 10, TopFeatures: 8}
	sh := core.NewLiveShared(f.Graph, opts)
	m := NewMultiShared(sh, opts, 8)
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = sh.Close()
	})
	return ts, sh, f
}

func decodeIngest(t *testing.T, resp *http.Response) IngestResponse {
	t.Helper()
	defer resp.Body.Close()
	var out IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode ingest response: %v", err)
	}
	return out
}

// TestIngestEndToEnd: a JSON batch with compact:true becomes searchable
// immediately — read-your-writes through a forced swap.
func TestIngestEndToEnd(t *testing.T) {
	ts, sh, _ := newLiveServer(t)

	nt := `<http://pivote.dev/resource/Ingested_Film> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pivote.dev/ontology/Film> .
<http://pivote.dev/resource/Ingested_Film> <http://www.w3.org/2000/01/rdf-schema#label> "Zanzibar Mystery Film" .
<http://pivote.dev/resource/Ingested_Film> <http://pivote.dev/ontology/starring> <http://pivote.dev/resource/Tom_Hanks> .
`
	resp := postJSON(t, ts.URL+"/api/v1/ingest", map[string]interface{}{
		"add":     nt,
		"compact": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	out := decodeIngest(t, resp)
	if out.Added != 3 || !out.Compacted || out.Generation == 0 || out.Pending != 0 {
		t.Fatalf("unexpected ingest response %+v", out)
	}

	// The new entity resolves by name and is searchable.
	if id := sh.Graph().EntityByName("Ingested_Film"); id == 0 {
		t.Fatal("ingested entity not in the new generation's universe")
	}
	sresp, err := http.Get(ts.URL + "/api/suggest?q=zanzibar+mystery")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var hits []EntityDTO
	if err := json.NewDecoder(sresp.Body).Decode(&hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Name != "Zanzibar Mystery Film" {
		t.Fatalf("search did not surface the ingested entity: %+v", hits)
	}
}

// TestIngestRawBody: a non-JSON body is treated as an N-Triples add
// batch (the curl-friendly path), staying pending until a compaction.
func TestIngestRawBody(t *testing.T) {
	ts, sh, _ := newLiveServer(t)
	nt := `<http://pivote.dev/resource/Raw_Film> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pivote.dev/ontology/Film> .`
	resp, err := http.Post(ts.URL+"/api/v1/ingest", "application/n-triples", strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw ingest status %d", resp.StatusCode)
	}
	out := decodeIngest(t, resp)
	if out.Added != 1 || out.Pending != 1 || out.Compacted {
		t.Fatalf("unexpected raw ingest response %+v", out)
	}

	// Force the swap over the API and confirm visibility.
	cresp, err := http.Post(ts.URL+"/api/v1/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cout := decodeIngest(t, cresp)
	if !cout.Compacted || cout.Pending != 0 {
		t.Fatalf("unexpected compact response %+v", cout)
	}
	if id := sh.Graph().EntityByName("Raw_Film"); id == 0 {
		t.Fatal("raw-ingested entity missing after compaction")
	}
}

// TestIngestRemove: tombstones delivered over the API take effect.
func TestIngestRemove(t *testing.T) {
	ts, sh, f := newLiveServer(t)
	drop := `<http://pivote.dev/resource/Apollo_13> <http://pivote.dev/ontology/starring> <http://pivote.dev/resource/Kevin_Bacon> .`
	resp := postJSON(t, ts.URL+"/api/v1/ingest", map[string]interface{}{
		"remove":  drop,
		"compact": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove status %d", resp.StatusCode)
	}
	out := decodeIngest(t, resp)
	if out.Removed != 1 {
		t.Fatalf("unexpected remove response %+v", out)
	}
	st := sh.Graph().Store()
	starring := st.Dict().LookupIRI("http://pivote.dev/ontology/starring")
	if st.Has(f.E("Apollo_13"), starring, f.E("Kevin_Bacon")) {
		t.Fatal("tombstoned triple still present after swap")
	}
}

// TestIngestErrors: malformed batches and disabled ingest produce the
// typed envelope and leave the server fully operational.
func TestIngestErrors(t *testing.T) {
	ts, _, _ := newLiveServer(t)

	// Malformed N-Triples: typed invalid, nothing applied.
	resp := postJSON(t, ts.URL+"/api/v1/ingest", map[string]interface{}{"add": "<a> nonsense"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed batch status %d, want 400", resp.StatusCode)
	}
	var env V1ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Error.Kind != core.KindInvalid {
		t.Fatalf("kind %q, want invalid", env.Error.Kind)
	}

	// The server still answers reads afterwards — a bad batch cannot
	// take it down.
	if sresp, err := http.Get(ts.URL + "/api/v1/state"); err != nil || sresp.StatusCode != http.StatusOK {
		t.Fatalf("state after bad batch: %v / %v", err, sresp)
	}

	// Static deployment: ingest is a typed invalid error.
	staticTS, _ := newTestServer(t)
	resp = postJSON(t, staticTS.URL+"/api/v1/ingest", map[string]interface{}{"add": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("disabled ingest status %d, want 400", resp.StatusCode)
	}
	var env2 V1ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(env2.Error.Message, "-live") {
		t.Fatalf("disabled message should point at -live: %q", env2.Error.Message)
	}
}

// TestLiveStats: the observability endpoint reports generation, pending
// and cache-carry numbers.
func TestLiveStats(t *testing.T) {
	ts, _, _ := newLiveServer(t)
	nt := `<http://pivote.dev/resource/Stats_Film> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://pivote.dev/ontology/Film> .`
	postJSON(t, ts.URL+"/api/v1/ingest", map[string]interface{}{"add": nt}).Body.Close()

	resp, err := http.Get(ts.URL + "/api/v1/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats LiveStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Enabled || stats.Pending != 1 || stats.Generation != 0 {
		t.Fatalf("unexpected stats %+v", stats)
	}
	if stats.Triples == 0 || stats.Entities == 0 {
		t.Fatalf("stats missing graph sizes: %+v", stats)
	}
	if stats.CatalogFeatures == 0 {
		t.Fatalf("stats missing the catalog feature count: %+v", stats)
	}
}
