package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pivote/internal/core"
	"pivote/internal/kgtest"
)

func newTestServer(t *testing.T) (*httptest.Server, *kgtest.Fixture) {
	t.Helper()
	f := kgtest.Build()
	srv := New(f.Graph, core.Options{TopEntities: 10, TopFeatures: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, f
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeState(t *testing.T, resp *http.Response) stateDTO {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		var e errorDTO
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d: %s", resp.StatusCode, e.Error)
	}
	var st stateDTO
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestUIServed(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PivotE") || !strings.Contains(buf.String(), "api/query") {
		t.Fatal("UI page malformed")
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	st := decodeState(t, postJSON(t, ts.URL+"/api/query", map[string]string{"keywords": "forrest gump"}))
	if len(st.Entities) == 0 || st.Entities[0].Name != "Forrest Gump" {
		t.Fatalf("entities = %+v", st.Entities)
	}
	if len(st.Timeline) != 1 {
		t.Fatalf("timeline = %+v", st.Timeline)
	}
	if st.Entities[0].Type != "Film" {
		t.Fatalf("type annotation = %q", st.Entities[0].Type)
	}
}

func TestEntityAddByNameAndID(t *testing.T) {
	ts, f := newTestServer(t)
	st := decodeState(t, postJSON(t, ts.URL+"/api/entity/add", map[string]string{"name": "Forrest_Gump"}))
	if !strings.Contains(st.Description, "Forrest Gump") {
		t.Fatalf("description = %q", st.Description)
	}
	st = decodeState(t, postJSON(t, ts.URL+"/api/entity/add",
		map[string]uint32{"id": uint32(f.E("Apollo_13"))}))
	if !strings.Contains(st.Description, "Apollo 13") {
		t.Fatalf("description = %q", st.Description)
	}
	if len(st.Entities) == 0 {
		t.Fatal("no recommendations after two seeds")
	}
}

func TestEntityAddErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := postJSON(t, ts.URL+"/api/entity/add", map[string]string{"name": "Nope_Nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/api/entity/add", map[string]uint32{"id": 999999})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/api/entity/add", map[string]string{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestFeatureAddRemove(t *testing.T) {
	ts, _ := newTestServer(t)
	st := decodeState(t, postJSON(t, ts.URL+"/api/feature/add", map[string]string{"label": "Tom_Hanks:starring"}))
	if len(st.Entities) != 6 {
		t.Fatalf("Tom_Hanks:starring = %d films, want 6", len(st.Entities))
	}
	st = decodeState(t, postJSON(t, ts.URL+"/api/feature/remove", map[string]string{"label": "Tom_Hanks:starring"}))
	if len(st.Entities) != 0 {
		t.Fatal("feature removal did not clear results")
	}
	resp := postJSON(t, ts.URL+"/api/feature/add", map[string]string{"label": "Bogus:nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPivotEndpoint(t *testing.T) {
	ts, f := newTestServer(t)
	postJSON(t, ts.URL+"/api/query", map[string]string{"keywords": "forrest gump"})
	st := decodeState(t, postJSON(t, ts.URL+"/api/pivot", map[string]uint32{"id": uint32(f.E("Tom_Hanks"))}))
	if !strings.Contains(st.Description, "Tom Hanks") {
		t.Fatalf("pivot description = %q", st.Description)
	}
	for _, e := range st.Entities {
		if e.Type != "Actor" {
			t.Fatalf("pivot produced %s of type %s", e.Name, e.Type)
		}
	}
}

func TestRevisitEndpoint(t *testing.T) {
	ts, f := newTestServer(t)
	postJSON(t, ts.URL+"/api/query", map[string]string{"keywords": "forrest gump"})
	postJSON(t, ts.URL+"/api/pivot", map[string]uint32{"id": uint32(f.E("Tom_Hanks"))})
	st := decodeState(t, postJSON(t, ts.URL+"/api/revisit", map[string]int{"step": 1}))
	if !strings.Contains(st.Description, "forrest gump") {
		t.Fatalf("revisit description = %q", st.Description)
	}
	resp := postJSON(t, ts.URL+"/api/revisit", map[string]int{"step": 99})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestProfileEndpoint(t *testing.T) {
	ts, f := newTestServer(t)
	resp, err := http.Get(fmt.Sprintf("%s/api/profile?id=%d", ts.URL, f.E("Forrest_Gump")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p profileDTO
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Name != "Forrest Gump" || len(p.Facts) == 0 || len(p.Literals) == 0 {
		t.Fatalf("profile = %+v", p)
	}

	resp2, err := http.Get(ts.URL + "/api/profile?name=Tom_Hanks")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("by-name status = %d", resp2.StatusCode)
	}

	for _, bad := range []string{"/api/profile", "/api/profile?id=abc", "/api/profile?id=999999", "/api/profile?name=Zzz"} {
		r, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			t.Fatalf("%s unexpectedly succeeded", bad)
		}
	}
}

func TestHeatmapAndPathArtifacts(t *testing.T) {
	ts, _ := newTestServer(t)
	postJSON(t, ts.URL+"/api/query", map[string]string{"keywords": "forrest gump"})
	postJSON(t, ts.URL+"/api/entity/add", map[string]string{"name": "Forrest_Gump"})
	for _, path := range []string{"/api/heatmap.svg", "/api/path.svg"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
			t.Fatalf("%s content type %q", path, ct)
		}
		if !strings.Contains(buf.String(), "<svg") {
			t.Fatalf("%s not SVG", path)
		}
	}
	resp, err := http.Get(ts.URL + "/api/path.dot")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "digraph") {
		t.Fatal("path.dot not DOT")
	}
}

func TestSuggestEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/suggest?q=tom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hits []EntityDTO
	if err := json.NewDecoder(resp.Body).Decode(&hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no suggestions for 'tom'")
	}
	resp2, err := http.Get(ts.URL + "/api/suggest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var empty []EntityDTO
	if err := json.NewDecoder(resp2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatal("empty query returned suggestions")
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts, f := newTestServer(t)
	get := func(query string) (int, map[string]interface{}) {
		resp, err := http.Get(ts.URL + "/api/explain?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]interface{}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	code, body := get(fmt.Sprintf("entity=%d&feature=Tom_Hanks:starring", f.E("Forrest_Gump")))
	if code != http.StatusOK || body["holds"] != true {
		t.Fatalf("member explain = %d %v", code, body)
	}
	if !strings.Contains(body["explanation"].(string), "matches") {
		t.Fatalf("explanation = %v", body["explanation"])
	}

	// Apollo_13 does not star Robin Wright but backs off via categories.
	code, body = get(fmt.Sprintf("entity=%d&feature=Robin_Wright:starring", f.E("Apollo_13")))
	if code != http.StatusOK || body["holds"] != false {
		t.Fatalf("backoff explain = %d %v", code, body)
	}
	if body["probability"].(float64) <= 0 {
		t.Fatal("backoff probability should be positive")
	}

	for _, bad := range []string{
		"entity=abc&feature=Tom_Hanks:starring",
		"entity=999999&feature=Tom_Hanks:starring",
		fmt.Sprintf("entity=%d&feature=garbage", f.E("Apollo_13")),
	} {
		code, _ = get(bad)
		if code == http.StatusOK {
			t.Fatalf("explain %q unexpectedly succeeded", bad)
		}
	}
}

func TestStateEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/state")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeState(t, resp)
	if st.Description != "(empty query)" {
		t.Fatalf("initial description = %q", st.Description)
	}
}

func TestBadJSONBodies(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/api/query", "/api/entity/add", "/api/feature/add", "/api/revisit"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with bad JSON: status %d", path, resp.StatusCode)
		}
	}
}
