package server

import (
	"io"
	"net/http"
	"strconv"

	"pivote/internal/core"
	"pivote/internal/live"
)

// The replication surface of /api/v1:
//
//	GET  /api/v1/snapshot  download the current generation as snapshot bytes
//	POST /api/v1/adopt     publish uploaded snapshot bytes as the current generation
//
// Together they are the wire form of snapshot-file replication: after a
// coordinated compaction the router fetches the compacting replica's
// generation through /snapshot (the same bytes its gen-<id>-s<k>.pvgen
// file holds, minus the trailing shard section — each peer re-applies
// its own partition) and pushes them into every peer through /adopt.
// Adoption swaps the generation in with the same RCU publication a
// local compaction uses; readers never block and sessions survive, just
// as they do across any other swap.

// AdoptResponse reports the outcome of POST /api/v1/adopt.
type AdoptResponse struct {
	// Generation is the generation current after the call — the adopted
	// ID on success, the (newer or equal) incumbent when the upload was
	// refused as stale.
	Generation uint64 `json:"generation"`
	// Adopted reports whether a swap was published.
	Adopted bool `json:"adopted"`
}

// handleV1Snapshot streams the current generation as sectioned snapshot
// bytes. Pending delta triples are NOT included — the replication
// protocol only calls this right after a coordinated compaction, when
// the delta is empty; the generation header lets the caller verify it
// fetched what it committed to.
func (s *Server) handleV1Snapshot(w http.ResponseWriter, r *http.Request) {
	gen := s.eng.Shared().Generation()
	w.Header().Set(GenerationHeader, strconv.FormatUint(gen.ID, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := live.WriteGeneration(gen, w); err != nil {
		// Headers are gone; all that remains is to stop writing. The
		// truncated body fails the client's checksum pass, which is the
		// detection path snapshot corruption already uses.
		return
	}
}

// handleV1Adopt opens the uploaded snapshot bytes and publishes them as
// the current generation. ?force=1 replaces even a same-ID generation —
// the repair path for a replica that diverged while unreachable. Like
// ingest, adoption requires the live write path.
func (s *Server) handleV1Adopt(w http.ResponseWriter, r *http.Request) {
	sh := s.eng.Shared()
	if !sh.IngestEnabled() {
		writeV1Err(w, core.Errf(core.KindInvalid, "live ingest is disabled; start the server with -live"), nil)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		writeV1Err(w, core.Errf(core.KindInvalid, "read body: %v", err), nil)
		return
	}
	_, adopted, err := sh.AdoptSnapshot(raw, r.URL.Query().Get("force") == "1")
	if err != nil {
		writeV1Err(w, core.Errf(core.KindInvalid, "adopt: %v", err), nil)
		return
	}
	writeJSON(w, http.StatusOK, AdoptResponse{
		Generation: sh.Generation().ID,
		Adopted:    adopted,
	})
}
