package text

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Forrest Gump", []string{"forrest", "gump"}},
		{"Forrest_Gump", []string{"forrest", "gump"}},
		{"Tom-Hanks (actor)", []string{"tom", "hanks", "actor"}},
		{"142 minutes", []string{"142", "minutes"}},
		{"", nil},
		{"...", nil},
		{"Café Müller", []string{"café", "müller"}},
		{"AC/DC's 1980s", []string{"ac", "dc", "s", "1980s"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAnalyzeRemovesStopwords(t *testing.T) {
	got := Analyze("The Green Mile is a film")
	want := []string{"green", "mile", "film"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Analyze = %v, want %v", got, want)
	}
}

func TestAnalyzeKeepsAllStopwordQueries(t *testing.T) {
	got := Analyze("The Who")
	// "the" is a stopword but "who" is not, so only "who" survives...
	if !reflect.DeepEqual(got, []string{"who"}) {
		t.Fatalf("Analyze(The Who) = %v", got)
	}
	// ...but an all-stopword string keeps its tokens rather than
	// vanishing.
	got = Analyze("The Of And")
	if len(got) != 3 {
		t.Fatalf("all-stopword input dropped: %v", got)
	}
}

func TestAnalyzeAll(t *testing.T) {
	got := AnalyzeAll([]string{"Tom Hanks", "the actor"})
	want := []string{"tom", "hanks", "actor"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("AnalyzeAll = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("gump") {
		t.Fatal("IsStopword misclassifies")
	}
}

func TestTokenizePropertyLowercaseAlnum(t *testing.T) {
	// Every emitted token is non-empty, fixed under lowercasing (some
	// letters, e.g. mathematical capitals, have no lowercase mapping —
	// "fixed point of ToLower" is the real invariant), and contains only
	// letters/digits.
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				if unicode.ToLower(r) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenizeIdempotentOnJoin(t *testing.T) {
	// Tokenizing the space-join of tokens reproduces the tokens.
	f := func(s string) bool {
		toks := Tokenize(s)
		joined := ""
		for i, tok := range toks {
			if i > 0 {
				joined += " "
			}
			joined += tok
		}
		return reflect.DeepEqual(Tokenize(joined), toks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}
