// Package text provides the lexical analysis used by PivotE's entity
// search engine: Unicode-aware tokenization, lowercasing and a small
// English stopword list. Analysis is deliberately simple (no stemming):
// the paper's retrieval model is a term-based mixture of language models
// and entity names in KGs are near-verbatim, so aggressive normalization
// would hurt precision.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase tokens at non-letter/digit boundaries.
// Underscores separate tokens too, so IRI local names such as
// "Forrest_Gump" analyze identically to their labels. Tokens are
// substrings of one shared lowercased copy: two passes (count, slice)
// instead of a string build per token keeps the query hot path at two
// allocations.
func Tokenize(s string) []string {
	lower := strings.ToLower(s)
	n := 0
	inTok := false
	for _, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if !inTok {
				n++
				inTok = true
			}
		} else {
			inTok = false
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	start := -1
	for i, r := range lower {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
		} else if start >= 0 {
			out = append(out, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, lower[start:])
	}
	return out
}

// IsStopword reports whether the lowercase token is one of a minimal
// English function-word list; the list is intentionally short because
// entity labels are title-like and rarely contain them. A string switch
// (compare tree) rather than a map keeps the query path free of hash
// probes.
func IsStopword(tok string) bool {
	switch tok {
	case "a", "an", "the", "of", "in", "on",
		"at", "by", "for", "to", "and", "or",
		"is", "was", "are", "be", "with", "as",
		"it", "its", "that", "this", "from":
		return true
	}
	return false
}

// Analyze tokenizes s and removes stopwords. If every token is a
// stopword the tokens are kept, so queries like "The Who" stay matchable.
func Analyze(s string) []string {
	toks := Tokenize(s)
	kept := make([]string, 0, len(toks))
	for _, t := range toks {
		if !IsStopword(t) {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		return toks
	}
	return kept
}

// AnalyzeAll analyzes each string and concatenates the token streams.
func AnalyzeAll(ss []string) []string {
	var out []string
	for _, s := range ss {
		out = append(out, Analyze(s)...)
	}
	return out
}
